package ramp_test

// Golden regression suite: renders the Table/Figure outputs that the
// ramptables and drmexplore binaries produce (quick options, fixed seed,
// coarse DVS grid) and byte-compares them against checked-in snapshots
// under results/golden/. Any change to the simulator, power, thermal or
// RAMP models that shifts a reported number — even in the last printed
// digit — fails here and forces a deliberate snapshot refresh:
//
//	go test -run TestGolden -update ./...
//	git diff results/golden/   # review every changed number
//
// The snapshots are generated with exp.QuickOptions so the suite stays
// fast enough for every CI run; full-length outputs live in results/.
import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/fleet"
	"ramp/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under results/golden/")

// goldenFreqStepHz keeps DVS sweeps small (7 points across 2.5-5 GHz)
// so the figure3 snapshot regenerates in seconds.
const goldenFreqStepHz = 0.5e9

type goldenCase struct {
	file string
	// render writes one snapshot into buf using env (a fresh
	// QuickOptions env per render; the obs golden suite passes an
	// instrumented one to prove observation changes no output byte).
	render func(*exp.Env, *bytes.Buffer) error
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"tables_quick.txt", renderTablesQuick},
		{"figure3_quick.txt", renderFigure3Quick},
		{"fleet_quick.txt", renderFleetQuick},
	}
}

// renderTablesQuick is the quick-mode equivalent of `ramptables -quick`:
// Table 1 (configuration), Table 2 (workload characterisation) and
// Figure 1 (the motivating FIT staircase).
func renderTablesQuick(env *exp.Env, buf *bytes.Buffer) error {
	figures.NewTable1(env).Write(buf)
	buf.WriteByte('\n')
	t2, err := figures.Table2(env)
	if err != nil {
		return fmt.Errorf("table 2: %w", err)
	}
	figures.WriteTable2(buf, t2)
	buf.WriteByte('\n')
	f1, err := figures.Figure1(env)
	if err != nil {
		return fmt.Errorf("figure 1: %w", err)
	}
	figures.WriteFigure1(buf, f1)
	return nil
}

// renderFigure3Quick is the quick-mode equivalent of drmexplore's
// Figure 3 lane: Arch vs DVS vs ArchDVS for bzip2 on a coarse DVS grid.
func renderFigure3Quick(env *exp.Env, buf *bytes.Buffer) error {
	app := trace.Bzip2()
	rows, err := figures.Figure3(env, app, goldenFreqStepHz)
	if err != nil {
		return fmt.Errorf("figure 3: %w", err)
	}
	figures.WriteFigure3(buf, app.Name, rows)
	return nil
}

// renderFleetQuick is a small fleet Monte Carlo survival table: two
// qualification policies over MP3dec with checkpointing and repair
// scenarios. The fleet engine is bitwise-deterministic at any worker
// count, so the snapshot pins both the sampling layer and the table
// formatting.
func renderFleetQuick(env *exp.Env, buf *bytes.Buffer) error {
	app := trace.MP3dec()
	res, err := env.Evaluate(app, env.Base, env.Qualification(400))
	if err != nil {
		return fmt.Errorf("fleet evaluate: %w", err)
	}
	var policies []fleet.Policy
	for _, tq := range []float64{400, 370} {
		a, err := env.Requalify(res, env.Qualification(tq))
		if err != nil {
			return fmt.Errorf("fleet requalify %g: %w", tq, err)
		}
		policies = append(policies, fleet.Policy{Name: fmt.Sprintf("tq%gK", tq), Assessment: a})
	}
	cfg := fleet.DefaultConfig(100_000, 1)
	cfg.Scenarios = []fleet.Scenario{
		fleet.NominalScenario(),
		{Name: "checkpoint", Duty: 0.8},
		{Name: "repair", Duty: 1, Spares: 2},
	}
	eng, err := fleet.New(cfg, policies)
	if err != nil {
		return fmt.Errorf("fleet new: %w", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		return fmt.Errorf("fleet run: %w", err)
	}
	rep.WriteTable(buf)
	return nil
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.render(exp.NewEnv(exp.QuickOptions()), &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("results", "golden", tc.file)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestGolden -update ./...` to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted from golden snapshot:\n%s\nif the change is intended, refresh with `go test -run TestGolden -update ./...` and review the diff",
					path, diffFirstLine(want, buf.Bytes()))
			}
		})
	}
}

// TestGoldenDeterministic renders each snapshot twice in-process and
// requires byte-identical output: parallel EvaluateAll, cache order and
// float formatting must not introduce run-to-run jitter, otherwise the
// byte-compare above would flake.
func TestGoldenDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering twice is slow; covered by the full lane")
	}
	for _, tc := range goldenCases() {
		t.Run(tc.file, func(t *testing.T) {
			var a, b bytes.Buffer
			if err := tc.render(exp.NewEnv(exp.QuickOptions()), &a); err != nil {
				t.Fatal(err)
			}
			if err := tc.render(exp.NewEnv(exp.QuickOptions()), &b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("two renders differ:\n%s", diffFirstLine(a.Bytes(), b.Bytes()))
			}
		})
	}
}

// diffFirstLine reports the first line where got differs from want, with
// one line of context — enough to locate a drift without a diff tool.
func diffFirstLine(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d vs got %d", len(wl), len(gl))
}
