package ramp_test

// Observability golden suite: the instrumentation contract is that
// tracing, metrics and logging observe the pipeline without perturbing
// it. This file proves it at the strongest granularity available — the
// checked-in golden snapshots: every snapshot rendered through a fully
// instrumented environment (tracer + registry + debug logger) must be
// byte-identical to the plain render, while the captured trace
// validates against the Chrome trace_event schema and the registry
// shows the run actually was observed.
import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/obs"
)

func TestGoldenInstrumentedIdentical(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("results", "golden", tc.file)
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test -run TestGolden -update ./...` first)", err)
			}

			tr := obs.NewTracer()
			reg := obs.NewRegistry()
			env := exp.NewEnv(exp.QuickOptions()).Instrument(tr, reg)
			var buf bytes.Buffer
			if err := tc.render(env, &buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("instrumented render of %s differs from golden snapshot:\n%s",
					path, diffFirstLine(want, buf.Bytes()))
			}

			// The observation side must be non-trivial and well-formed.
			if tr.Len() == 0 {
				t.Fatal("instrumented render recorded no spans")
			}
			var traceJSON bytes.Buffer
			if err := tr.WriteChromeTrace(&traceJSON); err != nil {
				t.Fatal(err)
			}
			n, err := obs.ValidateChromeTrace(traceJSON.Bytes())
			if err != nil {
				t.Errorf("captured trace invalid: %v", err)
			}
			if n < tr.Len() {
				t.Errorf("trace export lost events: %d exported < %d recorded", n, tr.Len())
			}

			if reg.Counter(exp.MetricEvaluations).Value() == 0 {
				t.Error("registry recorded no evaluations")
			}
			if reg.Counter(exp.MetricEpochs).Value() == 0 {
				t.Error("registry recorded no epochs")
			}
			var summary strings.Builder
			reg.WriteSummary(&summary)
			for _, name := range []string{exp.MetricEpochs, exp.MetricThermalSolves, "core_fit_compute_ns_em"} {
				if !strings.Contains(summary.String(), name) {
					t.Errorf("-stats summary missing %s:\n%s", name, summary.String())
				}
			}
		})
	}
}
