package ramp_test

// Golden equivalence for the manycore refactor, end to end at N=1: the
// tiled one-core DieModel reproduces the single-core Model's solves bit
// for bit on real evaluation data (so the results under results/golden/
// are exactly what the tiled path computes), and a one-core DieEngine
// reproduces a real evaluation's Assessment byte for byte.
import (
	"testing"

	"ramp/internal/core"
	"ramp/internal/exp"
	"ramp/internal/floorplan"
	"ramp/internal/power"
	"ramp/internal/thermal"
	"ramp/internal/trace"
)

func TestGoldenDieEquivalence(t *testing.T) {
	env := exp.NewEnv(exp.QuickOptions())
	qual := env.Qualification(400)
	app := trace.Bzip2()
	res, err := env.Evaluate(app, env.Base, qual)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) == 0 {
		t.Fatal("evaluation returned no epoch rows")
	}

	die := floorplan.MustNewDie(env.FP, 1)

	// Thermal: re-solving every epoch's stored power through the tiled
	// one-core model matches the single-core model bitwise.
	dm := thermal.MustNewDie(die, thermal.DieParams(env.Tech.AmbientK, 1))
	out := make([]float64, dm.NumBlocks())
	for i := range res.Epochs {
		row := &res.Epochs[i]
		want := env.Thermal.QuasiSteady(row.PowerW, res.SinkK)
		dm.QuasiSteadyInto(out, row.PowerW[:], res.SinkK)
		for s := range want {
			if out[s] != want[s] {
				t.Fatalf("epoch %d block %d: die solve %v, model solve %v", i, s, out[s], want[s])
			}
		}
	}

	// RAMP: replaying the evaluation's epoch rows through a one-core
	// DieEngine reproduces the evaluation's own Assessment byte for byte
	// (same accumulation order, same budget — TargetFIT/1 is exact).
	de := core.MustNewDieEngine(die, env.Params, qual)
	on := power.OnFractions(env.Base, env.Base)
	for i := range res.Epochs {
		row := &res.Epochs[i]
		iv := core.Interval{DurationSec: row.Sim.TimeSec}
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			iv.Structures[s] = core.Conditions{
				TempK:      row.TempK[s],
				VddV:       env.Base.VddV,
				FreqHz:     env.Base.FreqHz,
				Activity:   row.Sim.Activity[s],
				OnFraction: on[s],
			}
		}
		if err := de.ObserveCore(0, iv); err != nil {
			t.Fatal(err)
		}
	}
	da, err := de.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if da.Cores[0] != res.Assessment {
		t.Fatalf("one-core die assessment differs from the evaluation's:\n die:  %+v\n eval: %+v",
			da.Cores[0], res.Assessment)
	}
	if da.ChipFIT != res.Assessment.TotalFIT || da.MinCoreMTTFYears != res.Assessment.MTTFYears {
		t.Fatalf("chip rollup differs from single-core totals: %+v", da)
	}
}
