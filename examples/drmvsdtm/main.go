// DRM vs DTM: why neither subsumes the other (Section 7.3).
//
// Dynamic thermal management enforces an instantaneous temperature cap;
// dynamic reliability management budgets failure rate over time. This
// example runs both controllers on one application across a range of
// design temperatures and shows the two failure modes the paper
// identifies: at high temperatures DTM's choice violates the lifetime
// target, and at low temperatures DRM's choice violates the thermal cap.
package main

import (
	"fmt"
	"log"

	"ramp"
)

func main() {
	env := ramp.NewEnv(ramp.DefaultOptions())
	oracle := ramp.NewDRMOracle(env)
	oracle.FreqStepHz = 0.25e9

	app, err := ramp.AppByName("gzip")
	if err != nil {
		log.Fatal(err)
	}
	// One DVS sweep feeds both controllers: DRM selects on FIT, DTM on
	// peak temperature.
	sweep, err := oracle.Sweep(app, ramp.DVS)
	if err != nil {
		log.Fatal(err)
	}
	dtmSweep := ramp.DTMSweepFrom(sweep)

	fmt.Printf("%s under DRM (T as Tqual) vs DTM (T as Tmax):\n\n", app.Name)
	fmt.Printf("%6s  %12s %10s   %12s %12s\n",
		"T (K)", "DRM clock", "peak T", "DTM clock", "FIT @ Tqual")

	for _, tK := range []float64{325, 345, 360, 370, 400} {
		qual := env.Qualification(tK)
		drmChoice, err := sweep.Select(env, qual)
		if err != nil {
			log.Fatal(err)
		}
		dtmChoice, err := dtmSweep.Select(tK)
		if err != nil {
			log.Fatal(err)
		}
		dtmFit, err := env.Requalify(dtmChoice.Result, qual)
		if err != nil {
			log.Fatal(err)
		}

		thermalMark := " "
		if drmChoice.Result.MaxTempK > tK {
			thermalMark = "*" // DRM broke the thermal cap
		}
		relMark := " "
		if dtmFit.TotalFIT > ramp.StandardTargetFIT {
			relMark = "!" // DTM broke the lifetime target
		}
		fmt.Printf("%6.0f  %9.2f GHz %8.0f K%s  %9.2f GHz %11.0f%s\n",
			tK, drmChoice.Proc.FreqHz/1e9, drmChoice.Result.MaxTempK, thermalMark,
			dtmChoice.Proc.FreqHz/1e9, dtmFit.TotalFIT, relMark)
	}

	fmt.Println("\n'*' — DRM's pick exceeds the thermal cap at that temperature;")
	fmt.Println("'!' — DTM's pick exceeds the 4000-FIT lifetime target.")
	fmt.Println("A real system needs both constraints as first-class citizens.")
}
