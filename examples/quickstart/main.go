// Quickstart: evaluate one application on the base processor and read
// its performance, power, temperature and lifetime reliability.
//
// This is the library's smallest end-to-end flow: build the standard
// environment (Table 1 processor, R10000-like floorplan, 65 nm power and
// thermal models), pick a workload, pick a qualification point, and
// evaluate. The result carries everything RAMP tracks: IPC, watts, the
// per-structure temperature profile, and the FIT/MTTF verdict.
package main

import (
	"fmt"
	"log"

	"ramp"
)

func main() {
	env := ramp.NewEnv(ramp.DefaultOptions())

	app, err := ramp.AppByName("MP3dec")
	if err != nil {
		log.Fatal(err)
	}

	// Qualify for the worst case: T_qual = 400 K, the hottest temperature
	// any application reaches on this design (Section 7.1).
	qual := env.Qualification(400)

	res, err := env.Evaluate(app, env.Base, qual)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application     %s\n", res.App)
	fmt.Printf("IPC             %.2f\n", res.IPC)
	fmt.Printf("performance     %.2f BIPS at %.1f GHz\n", res.BIPS, res.Proc.FreqHz/1e9)
	fmt.Printf("average power   %.1f W\n", res.AvgW)
	fmt.Printf("peak temp       %.1f K\n", res.MaxTempK)
	fmt.Printf("FIT value       %.0f (target %d)\n", res.FIT(), ramp.StandardTargetFIT)
	fmt.Printf("projected MTTF  %.1f years\n", res.Assessment.MTTFYears)

	if res.FIT() <= ramp.StandardTargetFIT {
		slack := ramp.StandardTargetFIT / res.FIT()
		fmt.Printf("\nThe worst-case qualification leaves a %.1fx reliability margin —\n", slack)
		fmt.Println("headroom DRM can convert into performance (see examples/overdesign).")
	} else {
		fmt.Println("\nThis workload exceeds the reliability target; DRM would throttle it.")
	}
}
