// Underdesign: the commodity-processor scenario of Section 1.3.
//
// Instead of paying for a worst-case qualification, the designer
// qualifies the processor for the *average* application (a much cheaper
// T_qual). Most workloads still meet the lifetime target at full speed;
// the few that exceed it are throttled by DRM — trading a bounded
// performance loss on hot applications for lower qualification cost and
// higher yield on every shipped part.
package main

import (
	"fmt"
	"log"

	"ramp"
)

func main() {
	// Quick simulation settings keep the 9-app x 108-config sweep snappy;
	// switch to DefaultOptions for publication-quality numbers.
	env := ramp.NewEnv(ramp.QuickOptions())
	oracle := ramp.NewDRMOracle(env)
	oracle.FreqStepHz = 0.5e9

	cheap := env.Qualification(345) // qualified for the average app

	fmt.Println("Under-designed commodity processor (Tqual = 345 K):")
	fmt.Printf("%-8s  %10s %6s  %12s %9s\n",
		"app", "base FIT", "ok?", "DRM response", "perf")

	for _, app := range ramp.Apps() {
		sweep, err := oracle.Sweep(app, ramp.ArchDVS)
		if err != nil {
			log.Fatal(err)
		}
		base, err := env.Requalify(sweep.Base, cheap)
		if err != nil {
			log.Fatal(err)
		}
		choice, err := sweep.Select(env, cheap)
		if err != nil {
			log.Fatal(err)
		}
		ok := "yes"
		if base.TotalFIT > ramp.StandardTargetFIT {
			ok = "NO"
		}
		fmt.Printf("%-8s  %10.0f %6s  %12s %8.1f%%\n",
			app.Name, base.TotalFIT, ok, choice.Proc.Name, choice.RelPerf*100)
	}

	fmt.Println("\n'base FIT' is the unmanaged FIT on this cheap design; apps marked")
	fmt.Println("'NO' would wear the processor out early without intervention. The")
	fmt.Println("DRM response column shows the configuration (microarchitecture @")
	fmt.Println("clock) the oracle picks so each app meets the 4000-FIT target, and")
	fmt.Println("'perf' its throughput relative to the base machine.")
}
