// Lifetime distributions: beyond the mean.
//
// Section 3.5 warns that "the processor FIT value alone does not portray
// a complete picture... The time distribution of the lifetimes is also
// important", and footnote 1 explains why qualification targets a ~30
// year MTTF: so the ~11-year consumer service life falls far out in the
// tail of the lifetime distribution. This example builds the
// time-dependent (Weibull wear-out) lifetime model from a RAMP
// assessment of a mixed workload and reads exactly those tail numbers —
// for the model-ideal assessment and for one observed through emulated
// on-die sensors, hardware-RAMP style.
package main

import (
	"fmt"
	"log"

	"ramp"
)

func main() {
	env := ramp.NewEnv(ramp.DefaultOptions())
	qual := env.Qualification(400)

	// A day's workload mix: mostly media playback, some compression.
	mix := []struct {
		app    string
		weight float64
	}{
		{"MP3dec", 0.5}, {"MPGdec", 0.2}, {"bzip2", 0.2}, {"twolf", 0.1},
	}

	var components []ramp.WorkloadComponent
	var hottest ramp.Result
	for _, m := range mix {
		app, err := ramp.AppByName(m.app)
		if err != nil {
			log.Fatal(err)
		}
		r, err := env.Evaluate(app, env.Base, qual)
		if err != nil {
			log.Fatal(err)
		}
		components = append(components, ramp.WorkloadComponent{
			Name: m.app, Weight: m.weight, FIT: r.FIT(),
		})
		if hottest.App == "" || r.FIT() > hottest.FIT() {
			hottest = r
		}
	}
	workloadFIT, err := ramp.WorkloadFIT(components)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload FIT (Section 3.6 weighted average): %.0f\n", workloadFIT)

	// Time-dependent lifetime model from the hottest component's
	// assessment (the conservative choice for tail analysis).
	lm, err := ramp.NewLifetimeModel(hottest.Assessment, ramp.DefaultWeibullShapes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWeibull wear-out lifetime model (%d active components, worst app %s):\n",
		lm.Components(), hottest.App)
	fmt.Printf("  mean lifetime            %.1f years (SOFR mean: %.1f)\n",
		lm.MTTFYears(), hottest.Assessment.MTTFYears)
	for _, p := range []float64{0.01, 0.10, 0.50} {
		tq, err := lm.TimeToFailureFraction(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2.0f%% of parts failed by  %.1f years\n", p*100, tq/8760)
	}
	serviceLife := 11.0 * 8760
	fmt.Printf("  surviving 11-year service life: %.1f%%  (footnote 1's tail)\n",
		lm.Reliability(serviceLife)*100)
	ws, wm := lm.WeakestComponent()
	fmt.Printf("  expected first failure site: %v / %v\n", ws, wm)

	// The same assessment observed through hardware sensors.
	temps, err := ramp.NewTempSensors(ramp.DefaultTempSensors(), 7)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := ramp.NewEngine(env.FP, env.Params, qual)
	if err != nil {
		log.Fatal(err)
	}
	h, err := ramp.NewSensorHarness(temps, ramp.DefaultCounters(), engine)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range hottest.Epochs {
		iv := ramp.Interval{DurationSec: row.Sim.TimeSec}
		for s := range iv.Structures {
			iv.Structures[s] = ramp.Conditions{
				TempK: row.TempK[s], VddV: hottest.Proc.VddV,
				FreqHz: hottest.Proc.FreqHz, Activity: row.Sim.Activity[s], OnFraction: 1,
			}
		}
		if _, err := h.Observe(iv); err != nil {
			log.Fatal(err)
		}
	}
	sensed, err := engine.Assess()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhardware-RAMP check: sensed FIT %.0f vs model-ideal %.0f (%.1f%% error)\n",
		sensed.TotalFIT, hottest.FIT(),
		100*(sensed.TotalFIT-hottest.FIT())/hottest.FIT())
}
