// Overdesign: the server-class scenario of Section 1.3.
//
// A processor qualified for worst-case conditions (T_qual = 400 K) is
// over-designed for every real workload: applications run cooler and
// less utilised than the qualification point, so their FIT values sit
// far below the target. DRM harvests that reliability slack as clock
// frequency — each application is overclocked to the fastest DVS point
// that still meets the 4000-FIT lifetime target.
package main

import (
	"fmt"
	"log"

	"ramp"
)

func main() {
	env := ramp.NewEnv(ramp.DefaultOptions())
	oracle := ramp.NewDRMOracle(env)
	oracle.FreqStepHz = 0.25e9

	qual := env.Qualification(400) // expensive worst-case qualification

	fmt.Println("Worst-case qualified processor (Tqual = 400 K):")
	fmt.Printf("%-8s  %10s %12s %12s %10s\n",
		"app", "base FIT", "DRM clock", "DRM FIT", "speedup")

	for _, name := range []string{"MP3dec", "bzip2", "twolf", "art"} {
		app, err := ramp.AppByName(name)
		if err != nil {
			log.Fatal(err)
		}
		sweep, err := oracle.Sweep(app, ramp.DVS)
		if err != nil {
			log.Fatal(err)
		}
		base, err := env.Requalify(sweep.Base, qual)
		if err != nil {
			log.Fatal(err)
		}
		choice, err := sweep.Select(env, qual)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %10.0f %9.2f GHz %12.0f %+9.1f%%\n",
			name, base.TotalFIT, choice.Proc.FreqHz/1e9, choice.FIT,
			(choice.RelPerf-1)*100)
	}

	fmt.Println("\nEvery workload runs above the nominal 4 GHz while still meeting")
	fmt.Println("the lifetime target: the cooler the application, the more of the")
	fmt.Println("reliability margin DRM can convert into performance.")
}
