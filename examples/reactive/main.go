// Reactive DRM: online control without an oracle.
//
// The paper evaluates DRM with an oracle that knows each application in
// advance (Section 5) and names real control algorithms as future work.
// This example runs that future work: an interval-based controller that
// watches RAMP's running FIT estimate and nudges the DVS operating point
// each epoch, with no advance knowledge of the workload.
//
// It also demonstrates the paper's central observation about reliability
// versus temperature (Section 4): reliability can be banked over time.
// The Banked policy regulates the cumulative FIT average and lets cool
// program phases pay for hot ones; the Instantaneous policy must respect
// the target in every single interval and is strictly more conservative.
package main

import (
	"fmt"
	"log"

	"ramp"
)

func main() {
	env := ramp.NewEnv(ramp.QuickOptions())
	qual := env.Qualification(360) // a mid-cost qualification point

	app, err := ramp.AppByName("MPGdec") // phased: hot IDCT, cooler MC
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []ramp.ControlPolicy{ramp.Instantaneous, ramp.Banked} {
		ctrl := ramp.NewController(env, qual, policy)
		tr, err := ctrl.Run(app, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s control of %s (Tqual=%.0fK):\n", policy, app.Name, qual.TqualK)
		fmt.Printf("  clock trajectory (GHz):")
		for i, f := range tr.FreqGHz {
			if i%6 == 0 {
				fmt.Printf("\n   ")
			}
			fmt.Printf(" %5.2f", f)
		}
		fmt.Printf("\n  mean clock  %.2f GHz\n", tr.MeanGHz)
		fmt.Printf("  throughput  %.2f BIPS\n", tr.BIPS)
		fmt.Printf("  final FIT   %.0f (target %d, met: %v)\n\n",
			tr.FinalFIT, ramp.StandardTargetFIT, tr.Converged)
	}

	fmt.Println("Banked control regulates the cumulative FIT average — the thing")
	fmt.Println("RAMP actually qualifies — so cool phases bank budget that hot")
	fmt.Println("phases spend, keeping more performance at the same lifetime.")
}
