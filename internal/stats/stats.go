// Package stats provides small statistics utilities shared by the
// simulator, power, thermal and reliability models: event counters,
// running means, and series summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Add increments the counter by k.
func (c *Counter) Add(k uint64) { c.n += k }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Mean is a running (optionally weighted) arithmetic mean over float64
// samples. Add records samples with weight 1; AddWeighted records samples
// with an explicit weight, e.g. for time-weighted averaging.
type Mean struct {
	sum float64
	w   float64
	n   uint64
}

// Add records one sample with weight 1.
func (m *Mean) Add(x float64) { m.AddWeighted(x, 1) }

// AddWeighted records a sample with weight w (e.g. a time-weighted mean).
func (m *Mean) AddWeighted(x, w float64) {
	m.sum += x * w
	m.w += w
	m.n++
}

// Value returns the weighted mean of all samples, or 0 if no samples (or
// only zero-weight samples) were recorded.
func (m *Mean) Value() float64 {
	if m.w == 0 {
		return 0
	}
	return m.sum / m.w
}

// Count returns the number of samples recorded.
func (m *Mean) Count() uint64 { return m.n }

// Reset clears all samples.
func (m *Mean) Reset() { *m = Mean{} }

// Summary describes a float64 series.
type Summary struct {
	N         int
	Min, Max  float64
	Mean      float64
	Std       float64
	Median    float64
	P5, P95   float64
	Sum       float64
	FirstLast [2]float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty slice.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.N = len(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - s.Mean
		v += d * d
	}
	s.Std = math.Sqrt(v / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P5 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	s.FirstLast = [2]float64{xs[0], xs[len(xs)-1]}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted slice using
// linear interpolation. It panics if xs is empty or q is out of range.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AlmostEqual reports whether a and b are equal within a relative
// tolerance rel (and an absolute floor of rel for values near zero).
func AlmostEqual(a, b, rel float64) bool {
	// Exact-equality fast path: also the only correct answer for equal
	// infinities, where the difference below would be NaN.
	if a == b { //rampvet:ignore floatcmp epsilon comparator's own fast path

		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= rel*scale
}
