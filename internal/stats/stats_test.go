package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d", c.Value())
	}
}

func TestMeanUnweighted(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatalf("empty mean = %v", m.Value())
	}
	for _, x := range []float64{1, 2, 3, 4} {
		m.Add(x)
	}
	if got := m.Value(); got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
	if m.Count() != 4 {
		t.Fatalf("count = %d, want 4", m.Count())
	}
	m.Reset()
	if m.Value() != 0 || m.Count() != 0 {
		t.Fatalf("reset mean not empty")
	}
}

func TestMeanWeighted(t *testing.T) {
	var m Mean
	m.AddWeighted(10, 1)
	m.AddWeighted(20, 3)
	want := (10.0 + 60.0) / 4.0
	if got := m.Value(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted mean = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.Mean != 2.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
	if s.FirstLast != [2]float64{4, 2} {
		t.Fatalf("firstlast = %v", s.FirstLast)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatalf("geomean of empty should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on non-positive value")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatalf("clamp broken")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0) {
		t.Fatal("identical values must be equal")
	}
	if !AlmostEqual(100, 100.5, 0.01) {
		t.Fatal("0.5% off within 1% tolerance")
	}
	if AlmostEqual(100, 110, 0.01) {
		t.Fatal("10% off not within 1% tolerance")
	}
}

// Property: the mean of any non-empty sample lies within [min, max], and
// the summary's aggregates are internally consistent.
func TestSummarizeProperties(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Median >= s.Min-1e-9 && s.Median <= s.Max+1e-9 &&
			s.P5 <= s.P95+1e-9 && s.N == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Clamp always lands inside the interval.
func TestClampProperty(t *testing.T) {
	f := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		c := Clamp(x, lo, hi)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
