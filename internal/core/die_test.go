package core

import (
	"math"
	"testing"

	"ramp/internal/floorplan"
)

func dieInterval(tempK float64) Interval {
	iv := Interval{DurationSec: 3.0}
	for s := range iv.Structures {
		iv.Structures[s] = conds(tempK + 0.5*float64(s))
	}
	return iv
}

// TestDieEngineN1MatchesEngine pins the tentpole contract: a one-core
// DieEngine is the plain Engine bit for bit — same budget (TargetFIT/1
// is the identical float), same accumulators, same assessment.
func TestDieEngineN1MatchesEngine(t *testing.T) {
	fp := floorplan.R10000Like()
	e := MustNewEngine(fp, params(), qual())
	d := MustNewDieEngine(floorplan.MustNewDie(fp, 1), params(), qual())

	be, bd := e.Budget(), d.Core(0).Budget()
	if be.Alloc != bd.Alloc || be.QualRate != bd.QualRate {
		t.Fatal("N=1 die budget differs from single-core budget")
	}

	for _, temp := range []float64{345, 360, 372.5} {
		iv := dieInterval(temp)
		if err := e.Observe(iv); err != nil {
			t.Fatal(err)
		}
		if err := d.ObserveCore(0, iv); err != nil {
			t.Fatal(err)
		}
	}
	want := e.MustAssess()
	got, err := d.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cores) != 1 || got.Cores[0] != want {
		t.Fatalf("N=1 die assessment differs:\n die  %+v\n core %+v", got.Cores[0], want)
	}
	if got.ChipFIT != want.TotalFIT || got.ChipMTTFYears != want.MTTFYears ||
		got.MinCoreMTTFYears != want.MTTFYears || got.MaxTempK != want.MaxTempK {
		t.Fatalf("N=1 chip rollup differs: %+v vs %+v", got, want)
	}
	if e.WearFITSeconds() != d.CoreWear(0) {
		t.Fatal("N=1 wear accumulator differs")
	}
}

// TestDieEngineBudgetSplit checks the per-core qualification split: each
// core's budget is the chip budget divided by n, so the SOFR total at
// qualification conditions still meets the chip TargetFIT.
func TestDieEngineBudgetSplit(t *testing.T) {
	fp := floorplan.R10000Like()
	n := 4
	d := MustNewDieEngine(floorplan.MustNewDie(fp, n), params(), qual())
	chip := MustNewEngine(fp, params(), qual())

	var sum float64
	for k := 0; k < n; k++ {
		b := d.Core(k).Budget()
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			for _, m := range Mechanisms() {
				if want := chip.Budget().Alloc[s][m] / float64(n); math.Abs(b.Alloc[s][m]-want) > 1e-12 {
					t.Fatalf("core %d alloc[%v][%v] = %v, want %v", k, s, m, b.Alloc[s][m], want)
				}
				sum += b.Alloc[s][m]
			}
		}
	}
	if math.Abs(sum-qual().TargetFIT) > 1e-9 {
		t.Fatalf("per-core budgets sum to %v FIT, want %v", sum, qual().TargetFIT)
	}
}

// TestDieEngineSOFR checks the chip combination: ChipFIT is the sum of
// per-core totals (series failure system), the worst core sets
// MinCoreMTTFYears, and per-core wear accumulates independently.
func TestDieEngineSOFR(t *testing.T) {
	fp := floorplan.R10000Like()
	d := MustNewDieEngine(floorplan.MustNewDie(fp, 4), params(), qual())

	temps := []float64{350, 365, 380, 340} // core 2 runs hottest
	for e := 0; e < 5; e++ {
		for k := 0; k < 4; k++ {
			if err := d.ObserveCore(k, dieInterval(temps[k])); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, err := d.Assess()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, ca := range a.Cores {
		sum += ca.TotalFIT
	}
	if math.Abs(a.ChipFIT-sum) > 1e-12*sum {
		t.Fatalf("ChipFIT %v != sum of core FITs %v", a.ChipFIT, sum)
	}
	if a.WorstCore != 2 {
		t.Fatalf("worst core %d, want the hottest (2)", a.WorstCore)
	}
	if a.MinCoreMTTFYears != a.Cores[2].MTTFYears {
		t.Fatal("MinCoreMTTFYears not the worst core's MTTF")
	}
	if !(d.CoreWear(2) > d.CoreWear(3)) {
		t.Fatal("hotter core accumulated less wear")
	}
	if a.ChipMTTFYears >= a.MinCoreMTTFYears {
		t.Fatal("chip SOFR MTTF must be below the best single core's")
	}

	// Assessing an unobserved die fails per-core.
	d2 := MustNewDieEngine(floorplan.MustNewDie(fp, 2), params(), qual())
	if _, err := d2.Assess(); err == nil {
		t.Fatal("Assess on unobserved die should fail")
	}
}

// TestObserveCoreAllocFree pins the per-core observe hot path: zero heap
// allocations per interval.
func TestObserveCoreAllocFree(t *testing.T) {
	d := MustNewDieEngine(floorplan.MustNewDie(floorplan.R10000Like(), 4), params(), qual())
	iv := dieInterval(355)
	allocs := testing.AllocsPerRun(100, func() {
		if err := d.ObserveCore(1, iv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ObserveCore allocates %.1f times per interval, want 0", allocs)
	}
}
