package core

import "fmt"

// WorkloadComponent is one application's share of a workload mix.
type WorkloadComponent struct {
	Name string
	// Weight is the fraction of machine time the application runs
	// (normalised internally).
	Weight float64
	// FIT is the application's FIT value (from an Engine assessment).
	FIT float64
}

// WorkloadFIT combines application FIT values into a workload FIT value
// by time-weighted averaging, exactly as Section 3.6 prescribes: "To
// determine the FIT value for a workload, we can use a weighted average
// of the FIT values of the constituent applications."
func WorkloadFIT(components []WorkloadComponent) (float64, error) {
	if len(components) == 0 {
		return 0, fmt.Errorf("core: empty workload")
	}
	var wSum, fitSum float64
	for _, c := range components {
		if c.Weight < 0 {
			return 0, fmt.Errorf("core: negative weight for %s", c.Name)
		}
		if c.FIT < 0 {
			return 0, fmt.Errorf("core: negative FIT for %s", c.Name)
		}
		wSum += c.Weight
		fitSum += c.Weight * c.FIT
	}
	if wSum == 0 {
		return 0, fmt.Errorf("core: workload has zero total weight")
	}
	return fitSum / wSum, nil
}

// WorkloadMTTFYears converts a workload FIT value to mean time to
// failure in years.
func WorkloadMTTFYears(fit float64) float64 {
	if fit <= 0 {
		return 0
	}
	return 1e9 / fit / 8760
}
