// Package core implements RAMP, the paper's architecture-level lifetime
// reliability model (Section 3), and its reliability-qualification
// methodology (Section 3.7).
//
// RAMP tracks the four critical intrinsic (wear-out) failure mechanisms
// with state-of-the-art device models:
//
//   - Electromigration (Section 3.1): Black's equation,
//     MTTF ∝ (J − J_crit)^(−n) · e^(Ea/kT), with J ≫ J_crit and
//     J ∝ C·V·f·p/(W·H); the geometry terms fold into the
//     proportionality constant, leaving J ∝ V·f·a where a is the
//     structure's activity factor. n = 1.1, Ea = 0.9 eV for copper.
//   - Stress migration (Section 3.2): MTTF ∝ |T0 − T|^(−n) · e^(Ea/kT),
//     n = 2.5, Ea = 0.9 eV, T0 = 500 K (sputtered copper deposition).
//   - Time-dependent dielectric breakdown (Section 3.3), from Wu et
//     al.'s unified ultra-thin-oxide model:
//     MTTF ∝ (1/V)^(a−bT) · e^((X + Y/T + Z·T)/kT).
//   - Thermal cycling (Section 3.4): Coffin-Manson,
//     MTTF ∝ (1/(T_avg − T_ambient))^q with q = 2.35 for the package.
//
// Structure-level failure rates combine with the industry-standard
// sum-of-failure-rates (SOFR) model (Section 3.5): the processor is a
// series failure system and each mechanism has a constant failure rate,
// so processor FIT is the sum of per-structure, per-mechanism FITs, and
// application-level FIT is the time average of instantaneous FIT
// (Section 3.6).
//
// Qualification (Section 3.7): the proportionality constants in the
// device models encode reliability design cost and are never known
// absolutely. RAMP instead budgets the target FIT value (4000, a ~30
// year MTTF) evenly across the four mechanisms and across structures in
// proportion to area, anchored at qualification conditions (T_qual,
// V_qual, f_qual, A_qual). Instantaneous FIT is then the budget scaled
// by the ratio of the device-model failure rate at observed conditions
// to the rate at qualification conditions — the unknown constants
// cancel. T_qual serves as the designer's cost proxy: higher T_qual is a
// more expensive qualification.
package core

import (
	"fmt"
	"math"

	"ramp/internal/check"
	"ramp/internal/floorplan"
)

// BoltzmannEV is Boltzmann's constant in eV/K.
const BoltzmannEV = 8.617e-5

// TCAmbientK is the cold end of the modelled large thermal cycle. Large
// cycles happen a few times a day — power up/down and standby (Section
// 3.4) — so the package cycles between its operating temperature and the
// powered-off room temperature, not the in-chassis ambient.
const TCAmbientK = 293

// Mechanism identifies one wear-out failure mechanism.
type Mechanism int

// The four intrinsic failure mechanisms RAMP models.
const (
	EM            Mechanism = iota // electromigration
	SM                             // stress migration
	TDDB                           // time-dependent dielectric breakdown
	TC                             // thermal cycling
	NumMechanisms                  // count sentinel
)

var mechanismNames = [NumMechanisms]string{
	EM: "EM", SM: "SM", TDDB: "TDDB", TC: "TC",
}

// String returns the mechanism's short name.
func (m Mechanism) String() string {
	if m < 0 || m >= NumMechanisms {
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
	return mechanismNames[m]
}

// Mechanisms returns all mechanisms in order.
func Mechanisms() []Mechanism {
	return []Mechanism{EM, SM, TDDB, TC}
}

// Params holds the device-model constants. Zero value is not usable;
// start from DefaultParams.
type Params struct {
	// Electromigration (copper interconnect, JEDEC JEP122).
	EMExponent float64 // n in Black's equation
	EMEaEV     float64 // activation energy

	// Stress migration (sputtered copper).
	SMExponent float64 // n
	SMEaEV     float64 // activation energy
	SMT0K      float64 // stress-free (deposition) temperature

	// TDDB (Wu et al., IBM).
	// The TDDB voltage-acceleration exponent is (a - b*T): voltage
	// acceleration weakens as temperature rises (the "interplay" of Wu
	// et al.'s title). Around 390 K the exponent is ~46.
	TDDBA float64 // a: voltage-exponent intercept
	TDDBB float64 // b: voltage-exponent temperature slope, 1/K
	TDDBX float64 // X, eV
	TDDBY float64 // Y, eV·K
	TDDBZ float64 // Z, eV/K

	// Thermal cycling (package solder).
	TCExponent float64 // Coffin-Manson q
	AmbientK   float64 // cold-end temperature of the modelled cycle
}

// DefaultParams returns the constants the paper uses (Sections 3.1-3.4).
// ambientK is the thermal cycle's cold end; use TCAmbientK unless
// modelling a different duty cycle.
func DefaultParams(ambientK float64) Params {
	return Params{
		EMExponent: 1.1,
		EMEaEV:     0.9,
		SMExponent: 2.5,
		SMEaEV:     0.9,
		SMT0K:      500,
		TDDBA:      78,
		TDDBB:      0.081,
		TDDBX:      0.759,
		TDDBY:      -66.8,
		TDDBZ:      -8.37e-4,
		TCExponent: 2.35,
		AmbientK:   ambientK,
	}
}

// Validate checks the parameters for physical plausibility.
func (p Params) Validate() error {
	switch {
	case p.EMExponent <= 0 || p.EMEaEV <= 0:
		return fmt.Errorf("core: bad EM params n=%v Ea=%v", p.EMExponent, p.EMEaEV)
	case p.SMExponent <= 0 || p.SMEaEV <= 0 || p.SMT0K <= 0:
		return fmt.Errorf("core: bad SM params")
	case p.TCExponent <= 0:
		return fmt.Errorf("core: bad TC exponent %v", p.TCExponent)
	case p.AmbientK <= 0:
		return fmt.Errorf("core: bad ambient %v", p.AmbientK)
	}
	return nil
}

// Conditions describe one structure's operating point during an
// interval. Frequency and voltage are absolute; failure-rate computations
// only ever use ratios against qualification conditions, so units cancel.
type Conditions struct {
	TempK      float64
	VddV       float64
	FreqHz     float64
	Activity   float64 // switching probability / utilization, [0,1]
	OnFraction float64 // powered-on fraction of the structure, [0,1]
}

// EMRate returns a value proportional to the electromigration failure
// rate (1/MTTF) at the given conditions. Powered-down area carries no
// current, so the rate scales with OnFraction (Section 6.1).
func (p Params) EMRate(c Conditions) float64 {
	if c.TempK <= 0 {
		return 0 // caught by expguard: T=0 would silently yield e^(-Inf)
	}
	j := c.VddV * c.FreqHz * c.Activity // ∝ current density
	if j <= 0 {
		return 0
	}
	return math.Pow(j, p.EMExponent) *
		math.Exp(-p.EMEaEV/(BoltzmannEV*c.TempK)) * c.OnFraction
}

// SMRate returns a value proportional to the stress-migration failure
// rate. Stress depends only on the temperature differential against the
// deposition temperature, so gating does not reduce it.
func (p Params) SMRate(c Conditions) float64 {
	if c.TempK <= 0 {
		return 0 // caught by expguard: a negative T flips the exponent sign
	}
	dt := math.Abs(p.SMT0K - c.TempK)
	return math.Pow(dt, p.SMExponent) *
		math.Exp(-p.SMEaEV/(BoltzmannEV*c.TempK))
}

// TDDBRate returns a value proportional to the gate-oxide breakdown
// failure rate. The voltage exponent (a − bT) makes TDDB extremely
// voltage sensitive, which is what makes DVS such an effective DRM
// response (Section 7.2). Powered-down (supply-gated) area sees no field,
// so the rate scales with OnFraction.
func (p Params) TDDBRate(c Conditions) float64 {
	if c.TempK <= 0 {
		return 0 // same guard as EM/SM: keep 1/T out of the exponential
	}
	t := c.TempK
	exponent := p.TDDBA - p.TDDBB*t
	return math.Pow(c.VddV, exponent) *
		math.Exp(-(p.TDDBX+p.TDDBY/t+p.TDDBZ*t)/(BoltzmannEV*t)) * c.OnFraction
}

// TCRate returns a value proportional to the thermal-cycling failure
// rate for a cycle between avgTempK and the ambient (Section 3.4,
// Coffin-Manson with the cycle frequency folded into the constant).
func (p Params) TCRate(avgTempK float64) float64 {
	dt := avgTempK - p.AmbientK
	if dt <= 0 {
		return 0
	}
	return math.Pow(dt, p.TCExponent)
}

// Rate dispatches to the mechanism's rate model. For TC the relevant
// temperature is the run-average temperature, which callers put in
// c.TempK.
//
//ramp:hot
func (p Params) Rate(m Mechanism, c Conditions) float64 {
	var r float64
	switch m {
	case EM:
		r = p.EMRate(c)
	case SM:
		r = p.SMRate(c)
	case TDDB:
		r = p.TDDBRate(c)
	case TC:
		r = p.TCRate(c.TempK)
	default:
		panic(fmt.Sprintf("core: unknown mechanism %v", m))
	}
	// A failure rate is a frequency: finite and non-negative, whatever
	// the operating point.
	check.NonNegative("core.Params.Rate", r)
	return r
}

// Qualification describes a reliability qualification point: the
// operating conditions the processor is qualified at and the FIT target
// the qualification must meet. T_qual is the designer's cost proxy
// (Section 3.7).
type Qualification struct {
	TqualK    float64
	VqualV    float64
	FqualHz   float64
	Aqual     float64 // highest activity factor across the suite
	TargetFIT float64
}

// StandardTargetFIT is the paper's target: 4000 FIT, i.e. a mean time to
// failure around 30 years.
const StandardTargetFIT = 4000

// Validate checks the qualification point.
func (q Qualification) Validate() error {
	switch {
	case q.TqualK <= 0:
		return fmt.Errorf("core: non-positive Tqual %v", q.TqualK)
	case q.VqualV <= 0 || q.FqualHz <= 0:
		return fmt.Errorf("core: non-positive Vqual/Fqual")
	case q.Aqual <= 0 || q.Aqual > 1:
		return fmt.Errorf("core: Aqual %v out of (0,1]", q.Aqual)
	case q.TargetFIT <= 0:
		return fmt.Errorf("core: non-positive FIT target %v", q.TargetFIT)
	}
	return nil
}

// Conditions returns the qualification operating point as Conditions
// (fully powered on).
func (q Qualification) Conditions() Conditions {
	return Conditions{
		TempK:      q.TqualK,
		VddV:       q.VqualV,
		FreqHz:     q.FqualHz,
		Activity:   q.Aqual,
		OnFraction: 1,
	}
}

// Budget is the per-structure, per-mechanism FIT allocation produced by
// qualification: the target FIT split evenly across mechanisms and, per
// mechanism, across structures proportional to area (Section 3.7).
type Budget struct {
	Alloc    [floorplan.NumStructures][NumMechanisms]float64 // FIT
	QualRate [floorplan.NumStructures][NumMechanisms]float64 // λ at qual point
}

// NewBudget computes the qualification budget for a floorplan.
func NewBudget(fp *floorplan.Floorplan, p Params, q Qualification) (*Budget, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	b := &Budget{}
	perMech := q.TargetFIT / float64(NumMechanisms)
	qc := q.Conditions()
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		frac := fp.AreaFraction(s)
		for _, m := range Mechanisms() {
			b.Alloc[s][m] = perMech * frac
			c := qc
			if m == TC {
				c.TempK = q.TqualK // cycle to Tqual
			}
			r := p.Rate(m, c)
			if r <= 0 {
				return nil, fmt.Errorf("core: zero qualification rate for %v/%v", s, m)
			}
			b.QualRate[s][m] = r
		}
	}
	return b, nil
}

// InstantFIT returns the instantaneous FIT contribution of structure s
// under mechanism m at conditions c: the budgeted FIT scaled by the
// failure-rate ratio against qualification conditions.
//
//ramp:hot
func (b *Budget) InstantFIT(p Params, s floorplan.Structure, m Mechanism, c Conditions) float64 {
	fit := b.Alloc[s][m] * p.Rate(m, c) / b.QualRate[s][m]
	check.NonNegative("core.Budget.InstantFIT", fit)
	return fit
}
