package core

import (
	"time"

	"ramp/internal/floorplan"
	"ramp/internal/obs"
)

// FITTimers accumulates the time spent evaluating each failure
// mechanism's FIT model, in nanoseconds, across every Observe/Assess on
// every engine the timers are attached to. The counters answer the
// profiling question pprof flattens away: of the RAMP arithmetic, how
// much goes to EM vs SM vs TDDB vs TC?
type FITTimers struct {
	EM, SM, TDDB, TC *obs.Counter
}

// NewFITTimers resolves the per-mechanism timer counters from reg
// (core_fit_compute_ns_em and friends). A nil registry returns nil
// timers, which keep engines on the untimed fast path.
func NewFITTimers(reg *obs.Registry) *FITTimers {
	if reg == nil {
		return nil
	}
	return &FITTimers{
		EM:   reg.Counter("core_fit_compute_ns_em"),
		SM:   reg.Counter("core_fit_compute_ns_sm"),
		TDDB: reg.Counter("core_fit_compute_ns_tddb"),
		TC:   reg.Counter("core_fit_compute_ns_tc"),
	}
}

// SetTimers attaches per-mechanism FIT timers to the engine. With
// timers set, Observe runs mechanism-major so each mechanism's model
// evaluation can be timed as one block; each fitSum slot still receives
// exactly the same additions in exactly the same order as the untimed
// structure-major loop, so accumulated sums — and therefore Assess —
// stay bitwise identical (TestObserveTimedBitwiseIdentical).
func (e *Engine) SetTimers(t *FITTimers) { e.timers = t }

// observeTimed is Observe's mechanism-major body: one timed pass over
// all structures per mechanism. Inputs were already validated by
// Observe.
//
//ramp:hot
func (e *Engine) observeTimed(iv Interval, w float64) {
	start := time.Now()
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		e.fitSum[s][EM] += w * e.budget.InstantFIT(e.params, s, EM, iv.Structures[s])
	}
	t1 := time.Now()
	e.timers.EM.Add(t1.Sub(start).Nanoseconds())
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		e.fitSum[s][SM] += w * e.budget.InstantFIT(e.params, s, SM, iv.Structures[s])
	}
	t2 := time.Now()
	e.timers.SM.Add(t2.Sub(t1).Nanoseconds())
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		e.fitSum[s][TDDB] += w * e.budget.InstantFIT(e.params, s, TDDB, iv.Structures[s])
	}
	e.timers.TDDB.Add(time.Since(t2).Nanoseconds())
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		c := iv.Structures[s]
		e.tempSum[s] += w * c.TempK
		e.onSum[s] += w * c.OnFraction
		if c.TempK > e.maxTemp {
			e.maxTemp = c.TempK
		}
	}
}
