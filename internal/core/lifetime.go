// Time-dependent failure models.
//
// The SOFR model (Section 3.5) assumes every failure mechanism has a
// constant failure rate, which the paper itself calls "clearly
// inaccurate — a typical wear-out failure mechanism will have a low
// failure rate at the beginning of the component's lifetime and the
// value will grow as the component ages", and lists incorporating time
// dependence as future work (Section 8). This file implements that
// extension: each (structure, mechanism) component gets a Weibull
// lifetime distribution whose *mean* matches the MTTF implied by its
// RAMP FIT value, with a mechanism-specific shape parameter beta > 1
// expressing the increasing hazard of wear-out. The processor remains a
// series failure system: it fails at the first component failure, so
// its survival function is the product of component survivals.
//
// The paper's footnote 1 motivates why this matters: qualification
// targets a ~30-year MTTF so that the consumer service life (~11 years)
// falls "far out in the tails of the lifetime distribution curve".
// TimeToFailureFraction quantifies exactly that tail.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"ramp/internal/check"
	"ramp/internal/floorplan"
)

// WeibullShapes holds the per-mechanism Weibull shape parameters
// (beta). beta = 1 reduces to the SOFR exponential; beta > 1 models
// wear-out (increasing hazard).
type WeibullShapes [NumMechanisms]float64

// DefaultShapes returns representative wear-out shape parameters from
// the reliability-physics literature: electromigration and stress
// migration are strongly wear-out dominated, TDDB of ultra-thin oxides
// has a shallower (but still increasing) hazard, and solder-fatigue
// thermal cycling is sharply wear-out.
func DefaultShapes() WeibullShapes {
	var s WeibullShapes
	s[EM] = 2.0
	s[SM] = 2.2
	s[TDDB] = 1.5
	s[TC] = 2.5
	return s
}

// weibullComponent is one (structure, mechanism) lifetime distribution.
type weibullComponent struct {
	structure floorplan.Structure
	mechanism Mechanism
	shape     float64 // beta
	scale     float64 // eta, hours
}

// LifetimeModel is a series system of Weibull components.
type LifetimeModel struct {
	comps []weibullComponent
}

// NewLifetimeModel builds a time-dependent lifetime model from a RAMP
// assessment: each component's Weibull scale is chosen so its mean
// lifetime equals the MTTF implied by its FIT value
// (mean = eta * Gamma(1 + 1/beta)).
func NewLifetimeModel(a Assessment, shapes WeibullShapes) (*LifetimeModel, error) {
	for m, b := range shapes {
		if b <= 0 {
			return nil, fmt.Errorf("core: non-positive Weibull shape for %v", Mechanism(m))
		}
	}
	lm := &LifetimeModel{}
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		for _, m := range Mechanisms() {
			fit := a.FIT[s][m]
			if fit <= 0 {
				continue // mechanism inactive for this structure
			}
			mttfHours := 1e9 / fit
			beta := shapes[m]
			eta := mttfHours / math.Gamma(1+1/beta)
			lm.comps = append(lm.comps, weibullComponent{
				structure: s, mechanism: m, shape: beta, scale: eta,
			})
		}
	}
	if len(lm.comps) == 0 {
		return nil, fmt.Errorf("core: assessment has no active failure components")
	}
	return lm, nil
}

// Components returns the number of active failure components.
func (lm *LifetimeModel) Components() int { return len(lm.comps) }

// Component returns the i-th active component's identity and Weibull
// parameters (shape beta, scale eta in hours). The fleet Monte Carlo
// engine compiles the model into flat per-cell arrays through this
// accessor, so its samples are drawn from exactly the distributions
// Reliability integrates.
func (lm *LifetimeModel) Component(i int) (s floorplan.Structure, m Mechanism, shape, scaleHours float64) {
	c := lm.comps[i]
	return c.structure, c.mechanism, c.shape, c.scale
}

// Reliability returns the probability the processor survives past t
// hours: the product of component Weibull survivals (series system).
func (lm *LifetimeModel) Reliability(tHours float64) float64 {
	if tHours <= 0 {
		return 1
	}
	// Sum hazards in log space for numerical robustness.
	var cum float64
	for _, c := range lm.comps {
		cum += math.Pow(tHours/c.scale, c.shape)
	}
	r := math.Exp(-cum)
	check.Probability("core.LifetimeModel.Reliability", r)
	return r
}

// Hazard returns the instantaneous failure rate (per hour) at t hours —
// increasing over time for wear-out shapes, unlike SOFR's constant rate.
func (lm *LifetimeModel) Hazard(tHours float64) float64 {
	if tHours <= 0 {
		tHours = 1e-9
	}
	var h float64
	for _, c := range lm.comps {
		h += c.shape / c.scale * math.Pow(tHours/c.scale, c.shape-1)
	}
	return h
}

// MTTFHours integrates the survival function to get the mean lifetime.
func (lm *LifetimeModel) MTTFHours() float64 {
	// The series-minimum lifetime is bounded by the shortest component
	// scale; integrate R(t) with a trapezoid over an adaptive horizon.
	horizon := 0.0
	for _, c := range lm.comps {
		if c.scale > horizon {
			horizon = c.scale
		}
	}
	horizon *= 3
	const steps = 20000
	dt := horizon / steps
	sum := 0.5 // R(0) = 1, half weight
	prev := 1.0
	for i := 1; i < steps; i++ {
		r := lm.Reliability(float64(i) * dt)
		// A survival function cannot recover: R(t) is non-increasing.
		check.Assert(r <= prev, "core.LifetimeModel.MTTFHours", "reliability increased over time")
		prev = r
		sum += r
	}
	sum += 0.5 * lm.Reliability(horizon)
	mttf := sum * dt
	check.NonNegative("core.LifetimeModel.MTTFHours", mttf)
	return mttf
}

// MTTFYears is MTTFHours in years.
func (lm *LifetimeModel) MTTFYears() float64 { return lm.MTTFHours() / 8760 }

// TimeToFailureFraction returns the time (hours) by which a fraction p
// of parts has failed (the p-quantile of the lifetime distribution) via
// bisection on the survival function.
func (lm *LifetimeModel) TimeToFailureFraction(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("core: failure fraction %v out of (0,1)", p)
	}
	target := 1 - p
	lo, hi := 0.0, 1.0
	for lm.Reliability(hi) > target {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("core: quantile search diverged")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-6*hi; i++ {
		mid := (lo + hi) / 2
		if lm.Reliability(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Sample draws one processor lifetime (hours): the minimum of one draw
// per component (series system), using inverse-CDF sampling per Weibull.
func (lm *LifetimeModel) Sample(rng *rand.Rand) float64 {
	minT := math.Inf(1)
	for _, c := range lm.comps {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		t := c.scale * math.Pow(-math.Log(u), 1/c.shape)
		if t < minT {
			minT = t
		}
	}
	check.NonNegative("core.LifetimeModel.Sample", minT)
	return minT
}

// MonteCarloMTTFHours estimates the mean lifetime from n sampled
// processors (cross-check for the analytic integral).
func (lm *LifetimeModel) MonteCarloMTTFHours(n int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		sum += lm.Sample(rng)
	}
	return sum / float64(n)
}

// WeakestComponent returns the component with the smallest scale (the
// expected first failure site).
func (lm *LifetimeModel) WeakestComponent() (floorplan.Structure, Mechanism) {
	best := lm.comps[0]
	for _, c := range lm.comps[1:] {
		if c.scale < best.scale {
			best = c
		}
	}
	return best.structure, best.mechanism
}
