package core

import (
	"fmt"
	"math"

	"ramp/internal/floorplan"
)

// DieEngine owns one RAMP engine per core of a tiled die. Each core
// carries an independent wear accumulator — its own time-weighted FIT
// sums — because on a manycore die the scheduler, not the architecture,
// decides which core ages fastest; chip-level reliability is the SOFR
// combination across all structures of all cores (the chip is a series
// failure system, exactly like the structures within one core).
//
// The qualification budget splits across cores the same way it splits
// across mechanisms and structures: the chip's TargetFIT is divided
// evenly among the n identical cores, then each core's share splits
// per-mechanism and per-structure as in Section 3.7. A one-core
// DieEngine therefore carries exactly the single-core budget
// (TargetFIT/1 is the identical float), and its assessment is
// byte-identical to the plain Engine's.
type DieEngine struct {
	die   *floorplan.Die
	cores []*Engine
}

// NewDieEngine builds per-core engines over the die, splitting the
// qualification FIT target evenly across cores.
func NewDieEngine(die *floorplan.Die, p Params, q Qualification) (*DieEngine, error) {
	if die == nil || die.NCores < 1 {
		return nil, fmt.Errorf("core: die engine needs a die with at least one core")
	}
	qc := q
	qc.TargetFIT = q.TargetFIT / float64(die.NCores)
	d := &DieEngine{die: die, cores: make([]*Engine, die.NCores)}
	for k := range d.cores {
		e, err := NewEngine(die.Base, p, qc)
		if err != nil {
			return nil, err
		}
		d.cores[k] = e
	}
	return d, nil
}

// MustNewDieEngine is NewDieEngine, panicking on invalid inputs.
func MustNewDieEngine(die *floorplan.Die, p Params, q Qualification) *DieEngine {
	d, err := NewDieEngine(die, p, q)
	if err != nil {
		panic(err)
	}
	return d
}

// NCores returns the die's core count.
func (d *DieEngine) NCores() int { return len(d.cores) }

// Core returns core k's engine (its budget, wear state and assessments).
func (d *DieEngine) Core(k int) *Engine { return d.cores[k] }

// SetTimers attaches per-mechanism FIT timers to every core's engine.
func (d *DieEngine) SetTimers(t *FITTimers) {
	for _, e := range d.cores {
		e.SetTimers(t)
	}
}

// Reset clears every core's accumulated observations.
func (d *DieEngine) Reset() {
	for _, e := range d.cores {
		e.Reset()
	}
}

// ObserveCore folds one interval into core k's wear accumulator. This
// is the per-core observe path of the die evaluation loop — called once
// per core per epoch — and performs no heap allocation on success.
//
//ramp:hot
func (d *DieEngine) ObserveCore(k int, iv Interval) error {
	if k < 0 || k >= len(d.cores) {
		panic(fmt.Sprintf("core: ObserveCore core %d out of range [0,%d)", k, len(d.cores)))
	}
	return d.cores[k].Observe(iv)
}

// WearFITSeconds returns the engine's raw wear accumulator: the
// time-integral of instantaneous FIT (FIT·seconds) summed over every
// structure and the three per-interval mechanisms. It is monotone
// non-decreasing across observations, which is what a wear-leveling
// scheduler needs mid-run — unlike Assess, it is defined before the
// first observation (zero) and performs no model evaluation.
func (e *Engine) WearFITSeconds() float64 {
	var w float64
	for s := 0; s < int(floorplan.NumStructures); s++ {
		w += e.fitSum[s][EM] + e.fitSum[s][SM] + e.fitSum[s][TDDB]
	}
	return w
}

// CoreWear returns core k's wear accumulator (see Engine.WearFITSeconds).
func (d *DieEngine) CoreWear(k int) float64 { return d.cores[k].WearFITSeconds() }

// DieAssessment is the chip-level verdict: per-core assessments plus
// their SOFR combination.
type DieAssessment struct {
	Cores []Assessment

	// ChipFIT is the SOFR total across all structures of all cores; the
	// chip fails when any structure of any core fails.
	ChipFIT       float64
	ChipMTTFHours float64
	ChipMTTFYears float64

	// MinCoreMTTFYears is the expected lifetime to the first core
	// failure — the wear-lifetime metric the scheduler policies compete
	// on (a chip that cannot tolerate core loss dies with its weakest
	// core).
	MinCoreMTTFYears float64
	// WorstCore is the index attaining MinCoreMTTFYears.
	WorstCore int

	MaxTempK float64
}

// Assess combines every core's assessment under SOFR. It returns an
// error if any core has observed nothing.
func (d *DieEngine) Assess() (DieAssessment, error) {
	a := DieAssessment{Cores: make([]Assessment, len(d.cores)), MinCoreMTTFYears: math.Inf(1)}
	for k, e := range d.cores {
		ca, err := e.Assess()
		if err != nil {
			return DieAssessment{}, fmt.Errorf("core %d: %w", k, err)
		}
		a.Cores[k] = ca
		a.ChipFIT += ca.TotalFIT
		if ca.MTTFYears < a.MinCoreMTTFYears {
			a.MinCoreMTTFYears = ca.MTTFYears
			a.WorstCore = k
		}
		if ca.MaxTempK > a.MaxTempK {
			a.MaxTempK = ca.MaxTempK
		}
	}
	if a.ChipFIT > 0 {
		a.ChipMTTFHours = 1e9 / a.ChipFIT
		a.ChipMTTFYears = a.ChipMTTFHours / 8760
	} else {
		a.ChipMTTFHours = math.Inf(1)
		a.ChipMTTFYears = math.Inf(1)
	}
	return a, nil
}
