package core

import (
	"math"
	"testing"
	"testing/quick"

	"ramp/internal/floorplan"
)

// assessAt builds an Assessment by observing constant conditions.
func assessAt(t *testing.T, tempK float64) Assessment {
	t.Helper()
	e := MustNewEngine(floorplan.R10000Like(), params(), qual())
	iv := Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = conds(tempK)
	}
	if err := e.Observe(iv); err != nil {
		t.Fatal(err)
	}
	return e.MustAssess()
}

func TestWorkloadFIT(t *testing.T) {
	fit, err := WorkloadFIT([]WorkloadComponent{
		{Name: "a", Weight: 1, FIT: 1000},
		{Name: "b", Weight: 3, FIT: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit-2500) > 1e-9 {
		t.Fatalf("workload FIT = %v, want 2500", fit)
	}
	if y := WorkloadMTTFYears(4000); math.Abs(y-1e9/4000/8760) > 1e-9 {
		t.Fatalf("MTTF years = %v", y)
	}
	if WorkloadMTTFYears(0) != 0 {
		t.Fatal("zero FIT should give zero MTTF sentinel")
	}
}

func TestWorkloadFITErrors(t *testing.T) {
	cases := [][]WorkloadComponent{
		nil,
		{{Name: "a", Weight: -1, FIT: 10}},
		{{Name: "a", Weight: 1, FIT: -10}},
		{{Name: "a", Weight: 0, FIT: 10}},
	}
	for i, c := range cases {
		if _, err := WorkloadFIT(c); err == nil {
			t.Errorf("case %d: bad workload accepted", i)
		}
	}
}

func TestLifetimeExponentialReducesToSOFR(t *testing.T) {
	// With beta = 1 everywhere, the Weibull model IS the SOFR model:
	// the series of exponentials is exponential with the summed rate,
	// so MTTF must match 1e9/FIT.
	a := assessAt(t, 385)
	var shapes WeibullShapes
	for m := range shapes {
		shapes[m] = 1
	}
	lm, err := NewLifetimeModel(a, shapes)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e9 / a.TotalFIT
	got := lm.MTTFHours()
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("exponential lifetime MTTF %v, SOFR %v", got, want)
	}
}

func TestLifetimeWearOutTightensDistribution(t *testing.T) {
	// Wear-out (beta > 1) concentrates failures around the mean: the
	// early tail (1% failures) moves later and the late tail moves
	// earlier than the exponential with the same per-component means.
	a := assessAt(t, 385)
	expShapes := WeibullShapes{1, 1, 1, 1}
	wearShapes := DefaultShapes()

	exp, err := NewLifetimeModel(a, expShapes)
	if err != nil {
		t.Fatal(err)
	}
	wear, err := NewLifetimeModel(a, wearShapes)
	if err != nil {
		t.Fatal(err)
	}
	expEarly, err := exp.TimeToFailureFraction(0.01)
	if err != nil {
		t.Fatal(err)
	}
	wearEarly, err := wear.TimeToFailureFraction(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if wearEarly <= expEarly {
		t.Fatalf("wear-out 1%% failure time %v not later than exponential %v",
			wearEarly, expEarly)
	}
}

func TestLifetimePaperFootnote(t *testing.T) {
	// Footnote 1: a ~30-year MTTF qualification puts the ~11-year
	// consumer service life far in the tail. At the qualification point
	// (FIT = 4000) with wear-out shapes, fewer than ~15% of parts fail
	// within 11 years.
	a := assessAt(t, 400) // the qualification point itself
	if math.Abs(a.TotalFIT-4000) > 1 {
		t.Fatalf("expected target FIT at qual point, got %v", a.TotalFIT)
	}
	lm, err := NewLifetimeModel(a, DefaultShapes())
	if err != nil {
		t.Fatal(err)
	}
	serviceLife := 11.0 * 8760
	fracFailed := 1 - lm.Reliability(serviceLife)
	if fracFailed > 0.15 {
		t.Fatalf("%.1f%% failed within service life — tail not far enough", fracFailed*100)
	}
	if fracFailed <= 0 {
		t.Fatal("wear-out model reports zero failures at 11 years")
	}
}

func TestLifetimeHazardIncreases(t *testing.T) {
	a := assessAt(t, 385)
	lm, err := NewLifetimeModel(a, DefaultShapes())
	if err != nil {
		t.Fatal(err)
	}
	h1 := lm.Hazard(5 * 8760)
	h2 := lm.Hazard(25 * 8760)
	if h2 <= h1 {
		t.Fatalf("wear-out hazard not increasing: %v -> %v", h1, h2)
	}
}

func TestLifetimeMonteCarloMatchesAnalytic(t *testing.T) {
	a := assessAt(t, 390)
	lm, err := NewLifetimeModel(a, DefaultShapes())
	if err != nil {
		t.Fatal(err)
	}
	analytic := lm.MTTFHours()
	mc := lm.MonteCarloMTTFHours(20_000, 7)
	if math.Abs(mc-analytic) > 0.05*analytic {
		t.Fatalf("Monte Carlo MTTF %v vs analytic %v", mc, analytic)
	}
}

func TestLifetimeQuantileInvariants(t *testing.T) {
	a := assessAt(t, 385)
	lm, err := NewLifetimeModel(a, DefaultShapes())
	if err != nil {
		t.Fatal(err)
	}
	t10, err := lm.TimeToFailureFraction(0.10)
	if err != nil {
		t.Fatal(err)
	}
	t90, err := lm.TimeToFailureFraction(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if !(t10 < t90) {
		t.Fatalf("quantiles not ordered: %v %v", t10, t90)
	}
	// Survival at the p-quantile equals 1-p.
	if r := lm.Reliability(t10); math.Abs(r-0.9) > 1e-3 {
		t.Fatalf("R(t10) = %v, want 0.90", r)
	}
	if _, err := lm.TimeToFailureFraction(0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := lm.TimeToFailureFraction(1); err == nil {
		t.Fatal("p=1 accepted")
	}
}

func TestLifetimeWeakestComponent(t *testing.T) {
	a := assessAt(t, 385)
	lm, err := NewLifetimeModel(a, DefaultShapes())
	if err != nil {
		t.Fatal(err)
	}
	s, m := lm.WeakestComponent()
	if s < 0 || s >= floorplan.NumStructures || m < 0 || m >= NumMechanisms {
		t.Fatalf("weakest component out of range: %v %v", s, m)
	}
}

func TestLifetimeModelValidation(t *testing.T) {
	a := assessAt(t, 385)
	bad := DefaultShapes()
	bad[EM] = 0
	if _, err := NewLifetimeModel(a, bad); err == nil {
		t.Fatal("zero shape accepted")
	}
	if _, err := NewLifetimeModel(Assessment{}, DefaultShapes()); err == nil {
		t.Fatal("empty assessment accepted")
	}
}

// Property: hotter assessments produce strictly shorter lifetimes, and
// reliability is monotone decreasing in time.
func TestLifetimeMonotonicityQuick(t *testing.T) {
	shapes := DefaultShapes()
	f := func(r1, r2 uint16) bool {
		t1 := 340 + float64(r1%60)
		t2 := 340 + float64(r2%60)
		if t1 == t2 {
			return true
		}
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		cool, err1 := NewLifetimeModel(assessQuick(t1), shapes)
		hot, err2 := NewLifetimeModel(assessQuick(t2), shapes)
		if err1 != nil || err2 != nil {
			return false
		}
		at := 10.0 * 8760
		return cool.Reliability(at) >= hot.Reliability(at) &&
			cool.Reliability(at) >= cool.Reliability(at*2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func assessQuick(tempK float64) Assessment {
	e := MustNewEngine(floorplan.R10000Like(), params(), qual())
	iv := Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = conds(tempK)
	}
	if err := e.Observe(iv); err != nil {
		panic(err)
	}
	return e.MustAssess()
}
