package core

import (
	"testing"

	"ramp/internal/floorplan"
	"ramp/internal/obs"
)

// TestObserveTimedBitwiseIdentical proves the per-mechanism FIT timers
// are observational only: an engine with timers attached (mechanism-major
// Observe) produces a bitwise-identical assessment to the untimed
// structure-major engine over the same interval stream.
func TestObserveTimedBitwiseIdentical(t *testing.T) {
	fp := floorplan.R10000Like()
	plain := MustNewEngine(fp, params(), qual())
	timed := MustNewEngine(fp, params(), qual())
	timed.SetTimers(NewFITTimers(obs.NewRegistry()))

	// A varied interval stream: temperatures, activities and durations
	// all change so every fitSum slot accumulates several distinct values.
	for i := 0; i < 7; i++ {
		iv := Interval{DurationSec: 0.5 + 0.13*float64(i)}
		for s := range iv.Structures {
			iv.Structures[s] = Conditions{
				TempK:      345 + 3.7*float64(i) + 1.9*float64(s),
				VddV:       1.0 + 0.01*float64(i%3),
				FreqHz:     4e9 - 1e8*float64(i%4),
				Activity:   0.1 + 0.05*float64((i+s)%10),
				OnFraction: 1 - 0.03*float64(s%5),
			}
		}
		if err := plain.Observe(iv); err != nil {
			t.Fatal(err)
		}
		if err := timed.Observe(iv); err != nil {
			t.Fatal(err)
		}
	}
	pa := plain.MustAssess()
	ta := timed.MustAssess()
	if pa != ta {
		t.Errorf("timed assessment diverges from untimed:\nplain: %+v\ntimed: %+v", pa, ta)
	}
}

// TestFITTimersAccumulate checks the timers actually record time and
// survive Reset.
func TestFITTimersAccumulate(t *testing.T) {
	reg := obs.NewRegistry()
	e := MustNewEngine(floorplan.R10000Like(), params(), qual())
	e.SetTimers(NewFITTimers(reg))
	iv := Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = conds(360)
	}
	for i := 0; i < 50; i++ {
		if err := e.Observe(iv); err != nil {
			t.Fatal(err)
		}
	}
	e.MustAssess()
	for _, name := range []string{
		"core_fit_compute_ns_em", "core_fit_compute_ns_sm",
		"core_fit_compute_ns_tddb", "core_fit_compute_ns_tc",
	} {
		if reg.Counter(name).Value() <= 0 {
			t.Errorf("%s recorded no time", name)
		}
	}
	e.Reset()
	before := reg.Counter("core_fit_compute_ns_em").Value()
	if err := e.Observe(iv); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("core_fit_compute_ns_em").Value() <= before {
		t.Error("timers detached by Reset")
	}
}

func TestNewFITTimersNilRegistry(t *testing.T) {
	if NewFITTimers(nil) != nil {
		t.Error("nil registry should produce nil timers (untimed fast path)")
	}
}
