package core

import (
	"fmt"
	"math"
	"time"

	"ramp/internal/check"
	"ramp/internal/floorplan"
)

// Interval is one observation the engine folds into the application's
// FIT value: a duration (used only as an averaging weight) and each
// structure's operating conditions during it.
type Interval struct {
	DurationSec float64
	Structures  [floorplan.NumStructures]Conditions
}

// Engine computes application-level FIT values (Section 3.6): it
// evaluates instantaneous per-structure, per-mechanism FIT at every
// observed interval and averages over time; thermal cycling instead uses
// the run-average temperature, so it is evaluated once at the end.
//
// An Engine is the simulation-side realisation of RAMP; in hardware the
// same computation would be driven by temperature sensors and activity
// counters (Section 3).
type Engine struct {
	params Params
	budget *Budget
	timers *FITTimers // per-mechanism timing, nil = untimed fast path

	timeSum float64
	fitSum  [floorplan.NumStructures][3]float64 // EM, SM, TDDB time-weighted
	tempSum [floorplan.NumStructures]float64    // time-weighted temperature
	onSum   [floorplan.NumStructures]float64    // time-weighted on-fraction
	maxTemp float64
	n       int
}

// NewEngine builds an engine for a floorplan, parameter set and
// qualification point.
func NewEngine(fp *floorplan.Floorplan, p Params, q Qualification) (*Engine, error) {
	b, err := NewBudget(fp, p, q)
	if err != nil {
		return nil, err
	}
	return &Engine{params: p, budget: b}, nil
}

// MustNewEngine is NewEngine, panicking on invalid inputs.
func MustNewEngine(fp *floorplan.Floorplan, p Params, q Qualification) *Engine {
	e, err := NewEngine(fp, p, q)
	if err != nil {
		panic(err)
	}
	return e
}

// Budget exposes the engine's qualification budget.
func (e *Engine) Budget() *Budget { return e.budget }

// Params exposes the engine's device-model constants.
func (e *Engine) Params() Params { return e.params }

// Observe folds one interval into the running averages.
//
//ramp:hot
func (e *Engine) Observe(iv Interval) error {
	if iv.DurationSec <= 0 {
		return fmt.Errorf("core: non-positive interval duration %v", iv.DurationSec)
	}
	w := iv.DurationSec
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		c := iv.Structures[s]
		if c.TempK <= 0 {
			return fmt.Errorf("core: non-positive temperature for %v", s)
		}
		// The error above rejects the impossible; the debug checks also
		// reject the implausible (Celsius leaks, [0,1] violations).
		check.TempK("core.Engine.Observe", c.TempK)
		check.Probability("core.Engine.Observe.Activity", c.Activity)
		check.Probability("core.Engine.Observe.OnFraction", c.OnFraction)
	}
	if e.timers != nil {
		// Mechanism-major so each model's evaluation times as one block;
		// every fitSum slot receives the same additions in the same order
		// as the loop below, so the sums stay bitwise identical.
		e.observeTimed(iv, w)
		e.timeSum += w
		e.n++
		return nil
	}
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		c := iv.Structures[s]
		e.fitSum[s][EM] += w * e.budget.InstantFIT(e.params, s, EM, c)
		e.fitSum[s][SM] += w * e.budget.InstantFIT(e.params, s, SM, c)
		e.fitSum[s][TDDB] += w * e.budget.InstantFIT(e.params, s, TDDB, c)
		e.tempSum[s] += w * c.TempK
		e.onSum[s] += w * c.OnFraction
		if c.TempK > e.maxTemp {
			e.maxTemp = c.TempK
		}
	}
	e.timeSum += w
	e.n++
	return nil
}

// Reset clears all accumulated observations (timers stay attached).
func (e *Engine) Reset() {
	*e = Engine{params: e.params, budget: e.budget, timers: e.timers}
}

// Assessment is the engine's verdict for the observed run.
type Assessment struct {
	// FIT by structure and mechanism (time-averaged; TC from the
	// run-average temperature).
	FIT [floorplan.NumStructures][NumMechanisms]float64

	TotalFIT  float64
	MTTFHours float64
	MTTFYears float64

	AvgTempK [floorplan.NumStructures]float64
	MaxTempK float64

	Intervals int
	TimeSec   float64
}

// ByMechanism sums the assessment's FIT per mechanism.
func (a Assessment) ByMechanism() [NumMechanisms]float64 {
	var out [NumMechanisms]float64
	for s := 0; s < int(floorplan.NumStructures); s++ {
		for m := 0; m < int(NumMechanisms); m++ {
			out[m] += a.FIT[s][m]
		}
	}
	return out
}

// ByStructure sums the assessment's FIT per structure.
func (a Assessment) ByStructure() [floorplan.NumStructures]float64 {
	var out [floorplan.NumStructures]float64
	for s := 0; s < int(floorplan.NumStructures); s++ {
		for m := 0; m < int(NumMechanisms); m++ {
			out[s] += a.FIT[s][m]
		}
	}
	return out
}

// Assess computes the application FIT value from everything observed so
// far. It returns an error if nothing was observed.
func (e *Engine) Assess() (Assessment, error) {
	if e.timeSum <= 0 {
		return Assessment{}, fmt.Errorf("core: nothing observed")
	}
	var a Assessment
	a.Intervals = e.n
	a.TimeSec = e.timeSum
	a.MaxTempK = e.maxTemp
	var tcStart time.Time
	if e.timers != nil {
		tcStart = time.Now()
	}
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		avgT := e.tempSum[s] / e.timeSum
		a.AvgTempK[s] = avgT
		a.FIT[s][EM] = e.fitSum[s][EM] / e.timeSum
		a.FIT[s][SM] = e.fitSum[s][SM] / e.timeSum
		a.FIT[s][TDDB] = e.fitSum[s][TDDB] / e.timeSum
		// Thermal cycling: the modelled cycle is between the structure's
		// average temperature and ambient (Section 3.6).
		tcCond := Conditions{TempK: avgT}
		a.FIT[s][TC] = e.budget.InstantFIT(e.params, s, TC, tcCond)
		for m := 0; m < int(NumMechanisms); m++ {
			a.TotalFIT += a.FIT[s][m]
		}
	}
	if e.timers != nil {
		// TC is only evaluated here (it needs run-average temperatures);
		// the divisions sharing the loop are noise next to the model call.
		e.timers.TC.Add(time.Since(tcStart).Nanoseconds())
	}
	if a.TotalFIT > 0 {
		a.MTTFHours = 1e9 / a.TotalFIT
		a.MTTFYears = a.MTTFHours / 8760
		check.Finite("core.Engine.Assess.MTTFHours", a.MTTFHours)
	} else {
		a.MTTFHours = math.Inf(1)
		a.MTTFYears = math.Inf(1)
	}
	check.NonNegative("core.Engine.Assess.TotalFIT", a.TotalFIT)
	return a, nil
}

// MustAssess is Assess, panicking if nothing was observed.
func (e *Engine) MustAssess() Assessment {
	a, err := e.Assess()
	if err != nil {
		panic(err)
	}
	return a
}

// ConstantConditionsFIT is a convenience for steady-state analysis: the
// total FIT if every structure ran forever at the given conditions.
func ConstantConditionsFIT(fp *floorplan.Floorplan, p Params, q Qualification, c Conditions) (float64, error) {
	e, err := NewEngine(fp, p, q)
	if err != nil {
		return 0, err
	}
	iv := Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = c
	}
	if err := e.Observe(iv); err != nil {
		return 0, err
	}
	a, err := e.Assess()
	if err != nil {
		return 0, err
	}
	return a.TotalFIT, nil
}
