package core

import (
	"math"
	"testing"
	"testing/quick"

	"ramp/internal/floorplan"
)

func params() Params { return DefaultParams(TCAmbientK) }

func qual() Qualification {
	return Qualification{
		TqualK: 400, VqualV: 1.0, FqualHz: 4e9, Aqual: 0.5,
		TargetFIT: StandardTargetFIT,
	}
}

func conds(tempK float64) Conditions {
	return Conditions{TempK: tempK, VddV: 1.0, FreqHz: 4e9, Activity: 0.5, OnFraction: 1}
}

func TestMechanismString(t *testing.T) {
	if EM.String() != "EM" || TDDB.String() != "TDDB" || TC.String() != "TC" {
		t.Fatal("mechanism names broken")
	}
	if Mechanism(42).String() == "" {
		t.Fatal("out-of-range mechanism name empty")
	}
	if len(Mechanisms()) != int(NumMechanisms) {
		t.Fatal("Mechanisms() incomplete")
	}
}

func TestEMRateProperties(t *testing.T) {
	p := params()
	// Exponential acceleration with temperature.
	if p.EMRate(conds(380)) <= p.EMRate(conds(350)) {
		t.Fatal("EM not accelerated by temperature")
	}
	// Higher current density (V, f, a) raises the rate.
	c := conds(360)
	c.Activity = 0.8
	if p.EMRate(c) <= p.EMRate(conds(360)) {
		t.Fatal("EM not accelerated by activity")
	}
	c = conds(360)
	c.FreqHz = 5e9
	if p.EMRate(c) <= p.EMRate(conds(360)) {
		t.Fatal("EM not accelerated by frequency")
	}
	// No current, no electromigration.
	c = conds(360)
	c.Activity = 0
	if p.EMRate(c) != 0 {
		t.Fatal("EM without current flow")
	}
	// Gating scales the rate.
	c = conds(360)
	c.OnFraction = 0.5
	if math.Abs(p.EMRate(c)/p.EMRate(conds(360))-0.5) > 1e-12 {
		t.Fatal("EM gating broken")
	}
}

func TestSMRateProperties(t *testing.T) {
	p := params()
	// Near the deposition temperature the stress vanishes; the Arrhenius
	// term still grows, but the |T0-T|^n factor dominates close to T0.
	if p.SMRate(conds(499)) >= p.SMRate(conds(400)) {
		t.Fatal("SM should fall approaching the stress-free temperature")
	}
	// In the operating range, higher temperature accelerates SM: the
	// exponential wins over the shrinking differential (Section 3.2).
	if p.SMRate(conds(390)) <= p.SMRate(conds(340)) {
		t.Fatal("SM not accelerated by temperature in the operating range")
	}
	// SM is independent of gating, voltage and frequency.
	c := conds(360)
	c.OnFraction = 0.1
	c.VddV = 0.7
	c.FreqHz = 1e9
	if p.SMRate(c) != p.SMRate(conds(360)) {
		t.Fatal("SM should depend only on temperature")
	}
}

func TestTDDBRateProperties(t *testing.T) {
	p := params()
	// Strong voltage acceleration: the paper's reason DVS works so well.
	hi := conds(360)
	hi.VddV = 1.05
	lo := conds(360)
	lo.VddV = 0.95
	base := p.TDDBRate(conds(360))
	if p.TDDBRate(hi) < base*4 {
		t.Fatalf("TDDB voltage acceleration too weak: %v vs %v", p.TDDBRate(hi), base)
	}
	if p.TDDBRate(lo) > base/4 {
		t.Fatalf("TDDB voltage deceleration too weak: %v vs %v", p.TDDBRate(lo), base)
	}
	// Larger-than-exponential temperature dependence: rate grows with T.
	if p.TDDBRate(conds(390)) <= p.TDDBRate(conds(350)) {
		t.Fatal("TDDB not accelerated by temperature")
	}
	// Supply gating removes the field.
	g := conds(360)
	g.OnFraction = 0
	if p.TDDBRate(g) != 0 {
		t.Fatal("gated oxide still failing")
	}
}

func TestTCRateProperties(t *testing.T) {
	p := params()
	if p.TCRate(TCAmbientK) != 0 || p.TCRate(TCAmbientK-10) != 0 {
		t.Fatal("no cycle, no fatigue")
	}
	if p.TCRate(380) <= p.TCRate(340) {
		t.Fatal("TC not accelerated by larger cycles")
	}
	// Coffin-Manson with q=2.35: doubling the cycle multiplies the rate
	// by 2^2.35.
	r1 := p.TCRate(TCAmbientK + 20)
	r2 := p.TCRate(TCAmbientK + 40)
	if math.Abs(r2/r1-math.Pow(2, 2.35)) > 1e-9 {
		t.Fatalf("Coffin-Manson exponent broken: ratio %v", r2/r1)
	}
}

func TestRateDispatch(t *testing.T) {
	p := params()
	c := conds(360)
	if p.Rate(EM, c) != p.EMRate(c) || p.Rate(SM, c) != p.SMRate(c) ||
		p.Rate(TDDB, c) != p.TDDBRate(c) || p.Rate(TC, c) != p.TCRate(c.TempK) {
		t.Fatal("Rate dispatch broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown mechanism")
		}
	}()
	p.Rate(Mechanism(9), c)
}

func TestBudgetAllocation(t *testing.T) {
	fp := floorplan.R10000Like()
	b, err := NewBudget(fp, params(), qual())
	if err != nil {
		t.Fatal(err)
	}
	// Total allocation equals the FIT target; each mechanism gets an
	// even quarter; structures split by area (Section 3.7).
	var total float64
	var perMech [NumMechanisms]float64
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		for m := 0; m < int(NumMechanisms); m++ {
			total += b.Alloc[s][m]
			perMech[m] += b.Alloc[s][m]
		}
	}
	if math.Abs(total-StandardTargetFIT) > 1e-9 {
		t.Fatalf("total allocation %v", total)
	}
	for m, x := range perMech {
		if math.Abs(x-StandardTargetFIT/4) > 1e-9 {
			t.Fatalf("mechanism %v allocation %v", Mechanism(m), x)
		}
	}
	// Area proportionality: L1D (4.05 mm^2) gets 5x the BPred-sized
	// share of AGU (0.81 mm^2).
	ratio := b.Alloc[floorplan.L1D][EM] / b.Alloc[floorplan.AGU][EM]
	if math.Abs(ratio-5) > 1e-9 {
		t.Fatalf("area split ratio %v, want 5", ratio)
	}
}

func TestQualificationRoundTrip(t *testing.T) {
	// Running forever at exactly the qualification conditions must yield
	// exactly the target FIT value — the defining property of the
	// budget-ratio formulation.
	fp := floorplan.R10000Like()
	q := qual()
	e := MustNewEngine(fp, params(), q)
	iv := Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = q.Conditions()
	}
	if err := e.Observe(iv); err != nil {
		t.Fatal(err)
	}
	a := e.MustAssess()
	if math.Abs(a.TotalFIT-q.TargetFIT) > 1e-6 {
		t.Fatalf("FIT at qualification point = %v, want %v", a.TotalFIT, q.TargetFIT)
	}
	// MTTF at 4000 FIT is ~28.5 years (the paper's ~30-year target).
	if a.MTTFYears < 25 || a.MTTFYears > 32 {
		t.Fatalf("MTTF at target = %v years", a.MTTFYears)
	}
}

func TestCoolerRunBeatsTarget(t *testing.T) {
	fp := floorplan.R10000Like()
	fit, err := ConstantConditionsFIT(fp, params(), qual(), conds(360))
	if err != nil {
		t.Fatal(err)
	}
	if fit >= StandardTargetFIT {
		t.Fatalf("cooler-than-qual run FIT %v not below target", fit)
	}
}

func TestHotterRunMissesTarget(t *testing.T) {
	fp := floorplan.R10000Like()
	fit, err := ConstantConditionsFIT(fp, params(), qual(), conds(420))
	if err != nil {
		t.Fatal(err)
	}
	if fit <= StandardTargetFIT {
		t.Fatalf("hotter-than-qual run FIT %v not above target", fit)
	}
}

func TestTimeAveraging(t *testing.T) {
	// Section 3.6: the application FIT is the time-weighted average of
	// instantaneous FIT (for EM/SM/TDDB).
	fp := floorplan.R10000Like()
	p := params()
	q := qual()

	mkEngine := func() *Engine { return MustNewEngine(fp, p, q) }
	observe := func(e *Engine, temp, dur float64) {
		iv := Interval{DurationSec: dur}
		for s := range iv.Structures {
			iv.Structures[s] = conds(temp)
		}
		if err := e.Observe(iv); err != nil {
			t.Fatal(err)
		}
	}

	eHot := mkEngine()
	observe(eHot, 390, 1)
	hot := eHot.MustAssess()

	eCold := mkEngine()
	observe(eCold, 350, 1)
	cold := eCold.MustAssess()

	eMix := mkEngine()
	observe(eMix, 390, 1)
	observe(eMix, 350, 1)
	mix := eMix.MustAssess()

	for _, m := range []Mechanism{EM, SM, TDDB} {
		want := (hot.ByMechanism()[m] + cold.ByMechanism()[m]) / 2
		got := mix.ByMechanism()[m]
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("%v: mixed FIT %v, want average %v", m, got, want)
		}
	}
	// TC is NOT averaged: it uses the average temperature (370), which
	// is below the average of the rates (convexity).
	tcAvgRate := (hot.ByMechanism()[TC] + cold.ByMechanism()[TC]) / 2
	if mix.ByMechanism()[TC] >= tcAvgRate {
		t.Fatalf("TC should use average temperature, got %v >= %v",
			mix.ByMechanism()[TC], tcAvgRate)
	}
	if math.Abs(mix.AvgTempK[0]-370) > 1e-9 {
		t.Fatalf("average temperature %v, want 370", mix.AvgTempK[0])
	}
}

func TestEngineValidation(t *testing.T) {
	fp := floorplan.R10000Like()
	e := MustNewEngine(fp, params(), qual())
	if _, err := e.Assess(); err == nil {
		t.Fatal("Assess with no observations should error")
	}
	if err := e.Observe(Interval{DurationSec: 0}); err == nil {
		t.Fatal("zero-duration interval accepted")
	}
	iv := Interval{DurationSec: 1}
	if err := e.Observe(iv); err == nil {
		t.Fatal("zero-temperature interval accepted")
	}
}

func TestEngineReset(t *testing.T) {
	fp := floorplan.R10000Like()
	e := MustNewEngine(fp, params(), qual())
	iv := Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = conds(390)
	}
	if err := e.Observe(iv); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if _, err := e.Assess(); err == nil {
		t.Fatal("reset engine should have no observations")
	}
	if err := e.Observe(iv); err != nil {
		t.Fatal(err)
	}
	if e.MustAssess().Intervals != 1 {
		t.Fatal("reset did not clear interval count")
	}
}

func TestAssessmentBreakdownsSum(t *testing.T) {
	fp := floorplan.R10000Like()
	e := MustNewEngine(fp, params(), qual())
	iv := Interval{DurationSec: 2}
	for s := range iv.Structures {
		iv.Structures[s] = conds(380)
	}
	if err := e.Observe(iv); err != nil {
		t.Fatal(err)
	}
	a := e.MustAssess()
	var byMech, byStruct float64
	for _, x := range a.ByMechanism() {
		byMech += x
	}
	for _, x := range a.ByStructure() {
		byStruct += x
	}
	if math.Abs(byMech-a.TotalFIT) > 1e-9 || math.Abs(byStruct-a.TotalFIT) > 1e-9 {
		t.Fatalf("breakdowns disagree: %v %v vs %v", byMech, byStruct, a.TotalFIT)
	}
	if a.TimeSec != 2 || a.Intervals != 1 || a.MaxTempK != 380 {
		t.Fatalf("bookkeeping: %+v", a)
	}
}

func TestValidation(t *testing.T) {
	badParams := params()
	badParams.EMExponent = 0
	if badParams.Validate() == nil {
		t.Fatal("bad params accepted")
	}
	for _, mod := range []func(*Qualification){
		func(q *Qualification) { q.TqualK = 0 },
		func(q *Qualification) { q.VqualV = 0 },
		func(q *Qualification) { q.Aqual = 0 },
		func(q *Qualification) { q.Aqual = 1.5 },
		func(q *Qualification) { q.TargetFIT = 0 },
	} {
		q := qual()
		mod(&q)
		if q.Validate() == nil {
			t.Fatalf("bad qualification accepted: %+v", q)
		}
	}
	fp := floorplan.R10000Like()
	if _, err := NewEngine(fp, badParams, qual()); err == nil {
		t.Fatal("engine accepted bad params")
	}
}

// Property: total FIT is monotone in temperature — hotter intervals can
// never improve lifetime reliability (within the operating range, where
// every mechanism accelerates with temperature).
func TestFITMonotoneInTemperature(t *testing.T) {
	fp := floorplan.R10000Like()
	p := params()
	q := qual()
	f := func(r1, r2 uint16) bool {
		t1 := 320 + float64(r1%100)
		t2 := 320 + float64(r2%100)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		f1, err1 := ConstantConditionsFIT(fp, p, q, conds(t1))
		f2, err2 := ConstantConditionsFIT(fp, p, q, conds(t2))
		return err1 == nil && err2 == nil && f1 <= f2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: lowering the voltage at fixed temperature never raises FIT.
func TestFITMonotoneInVoltage(t *testing.T) {
	fp := floorplan.R10000Like()
	p := params()
	q := qual()
	f := func(r1, r2 uint16) bool {
		v1 := 0.7 + float64(r1%50)/100
		v2 := 0.7 + float64(r2%50)/100
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		c1, c2 := conds(370), conds(370)
		c1.VddV, c2.VddV = v1, v2
		f1, err1 := ConstantConditionsFIT(fp, p, q, c1)
		f2, err2 := ConstantConditionsFIT(fp, p, q, c2)
		return err1 == nil && err2 == nil && f1 <= f2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: gating part of the processor never raises FIT.
func TestFITMonotoneInGating(t *testing.T) {
	fp := floorplan.R10000Like()
	p := params()
	q := qual()
	f := func(raw uint16) bool {
		on := 0.1 + 0.9*float64(raw%100)/100
		c := conds(370)
		c.OnFraction = on
		partial, err1 := ConstantConditionsFIT(fp, p, q, c)
		full, err2 := ConstantConditionsFIT(fp, p, q, conds(370))
		return err1 == nil && err2 == nil && partial <= full+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQualConditions(t *testing.T) {
	q := qual()
	c := q.Conditions()
	if c.TempK != q.TqualK || c.VddV != q.VqualV || c.FreqHz != q.FqualHz ||
		c.Activity != q.Aqual || c.OnFraction != 1 {
		t.Fatalf("qual conditions %+v", c)
	}
}
