// Package profiling wires pprof CPU and heap profiling into the command
// binaries. Every experiment command registers the same two flags so a
// slow sweep can always be profiled the same way:
//
//	drmexplore -figure 2 -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package profiling

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// Config holds the profile destinations parsed from the command line.
type Config struct {
	CPUPath string
	MemPath string
}

// AddFlags registers -cpuprofile and -memprofile on fs and returns the
// Config that will receive their values after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.CPUPath, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&c.MemPath, "memprofile", "", "write a pprof heap profile to `file` on exit")
	return c
}

// Start begins CPU profiling if requested and returns a stop function
// that ends the CPU profile and writes the heap profile. The stop
// function is never nil and is safe to call when no profiling was
// requested.
func (c *Config) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if c.CPUPath != "" {
		cpuFile, err = os.Create(c.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := runtimepprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // the start error is the one worth reporting
			return nil, fmt.Errorf("profiling: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			runtimepprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close CPU profile: %w", err)
			}
		}
		if c.MemPath != "" {
			f, err := os.Create(c.MemPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := runtimepprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

// MustStart is Start for command mains: any error is fatal. Errors go
// through the process-default structured logger (internal/obs wires it
// in every binary).
func (c *Config) MustStart() (stop func()) {
	s, err := c.Start()
	if err != nil {
		slog.Error("profiling failed to start", "err", err)
		os.Exit(1)
	}
	return func() {
		if err := s(); err != nil {
			slog.Error("profile write failed", "err", err)
		}
	}
}

// RegisterHTTP mounts the net/http/pprof handlers under /debug/pprof/
// on mux, for resident processes (rampserve) where file-based
// -cpuprofile capture does not fit: profiles are pulled on demand with
// `go tool pprof http://host/debug/pprof/profile` while the service
// keeps serving.
func RegisterHTTP(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
