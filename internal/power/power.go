// Package power is an architecture-level power model in the spirit of
// Wattch (the paper's power simulator), extended with the paper's leakage
// model (Section 6.3).
//
// Dynamic power per structure follows the activity-based CV²f model with
// aggressive clock gating: an idle structure still draws 10% of its
// maximum dynamic power, exactly as the paper configures Wattch. Leakage
// power is area-based — 0.5 W/mm² at 383 K for the 65 nm process, from
// industry data — and scales exponentially with temperature,
// P(T) = P(Tref)·e^(β(T−Tref)) with β = 0.017 (Heo et al.), which is the
// feedback loop that couples the thermal and power models. Structures
// powered down by microarchitectural adaptation draw no dynamic or
// leakage power in their gated fraction (Section 6.1).
package power

import (
	"fmt"
	"math"

	"ramp/internal/check"
	"ramp/internal/config"
	"ramp/internal/floorplan"
)

// Vector holds one value per floorplan structure (typically watts).
type Vector [floorplan.NumStructures]float64

// Sum returns the total across all structures.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// IdleFraction is the fraction of maximum dynamic power a clock-gated
// structure draws when idle (Wattch-style aggressive gating, Section 6.3).
const IdleFraction = 0.10

// Model computes per-structure dynamic and leakage power.
type Model struct {
	fp     *floorplan.Floorplan
	tech   config.Tech
	maxDyn Vector // W at (VddNominal, BaseFreqHz), fully active
}

// DefaultMaxDynamic returns the per-structure maximum dynamic power
// budget (watts at the base operating point, fully active). The budget
// was calibrated so the nine-application suite lands near Table 2's base
// power column; densities are highest for the instruction window, ALUs
// and FPUs, as in Wattch-era cores.
func DefaultMaxDynamic() Vector {
	var v Vector
	v[floorplan.Fetch] = 6.75
	v[floorplan.BPred] = 2.4
	v[floorplan.Window] = 12.0
	v[floorplan.IntRF] = 6.75
	v[floorplan.FPRF] = 5.4
	v[floorplan.IntALU] = 9.45
	v[floorplan.AGU] = 4.05
	v[floorplan.FPU] = 10.8
	v[floorplan.LSQ] = 4.7
	v[floorplan.L1I] = 6.1
	v[floorplan.L1D] = 10.1
	return v
}

// NewModel builds a power model over the given floorplan and technology
// with the default dynamic budget.
func NewModel(fp *floorplan.Floorplan, tech config.Tech) *Model {
	return NewModelWithBudget(fp, tech, DefaultMaxDynamic())
}

// NewModelWithBudget builds a power model with an explicit per-structure
// maximum dynamic power budget.
func NewModelWithBudget(fp *floorplan.Floorplan, tech config.Tech, maxDyn Vector) *Model {
	return &Model{fp: fp, tech: tech, maxDyn: maxDyn}
}

// MaxDynamic returns the model's per-structure dynamic budget.
func (m *Model) MaxDynamic() Vector { return m.maxDyn }

// Dynamic returns structure s's dynamic power (W) at the given activity
// factor, operating point, and powered-on fraction.
//
//ramp:hot
func (m *Model) Dynamic(s floorplan.Structure, activity, vddV, freqHz, onFrac float64) float64 {
	if activity < 0 || activity > 1 {
		panic(fmt.Sprintf("power: activity %v out of [0,1] for %v", activity, s))
	}
	vr := vddV / m.tech.VddNominal
	fr := freqHz / m.tech.BaseFreqHz
	w := m.maxDyn[s] * (IdleFraction + (1-IdleFraction)*activity) * vr * vr * fr * onFrac
	check.NonNegative("power.Model.Dynamic", w)
	return w
}

// Leakage returns structure s's leakage power (W) at temperature tempK
// with the given powered-on fraction. The exponential temperature model
// follows Section 6.3; leakage also scales with V²/V² relative to nominal
// to first order, which we fold in for DVS operating points.
//
//ramp:hot
func (m *Model) Leakage(s floorplan.Structure, tempK, vddV, onFrac float64) float64 {
	area := m.fp.AreaMM2(s)
	vr := vddV / m.tech.VddNominal
	scale := math.Exp(m.tech.LeakageBeta * (tempK - m.tech.TLeakRefK))
	w := m.tech.LeakageWPerMM2 * area * scale * vr * vr * onFrac
	// NonNegative also rejects +Inf: a runaway exponential here means a
	// diverged leakage-temperature fixed point upstream.
	check.NonNegative("power.Model.Leakage", w)
	return w
}

// Compute returns per-structure total power (dynamic + leakage) for one
// interval.
//
// activity holds per-structure activity factors; temps per-structure
// temperatures (K); on per-structure powered-on fractions (use Ones() for
// the base machine).
//
//ramp:hot
func (m *Model) Compute(activity, on Vector, temps Vector, vddV, freqHz float64) Vector {
	var out Vector
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		out[s] = m.Dynamic(s, activity[s], vddV, freqHz, on[s]) +
			m.Leakage(s, temps[s], vddV, on[s])
	}
	return out
}

// ComputeInto is Compute writing into a caller-provided slice, with
// temperatures read from a slice of the same length. It exists for the
// manycore path, where per-block power and temperature live in flat
// n·NumStructures slices and each core's tile is a sub-slice: the die
// evaluation loop calls this once per core per leakage iteration with
// no copies and no heap allocation. The arithmetic is identical to
// Compute, so a one-core die reproduces the single-core numbers bit
// for bit.
//
//ramp:hot
func (m *Model) ComputeInto(out []float64, activity, on Vector, temps []float64, vddV, freqHz float64) {
	if len(out) != int(floorplan.NumStructures) || len(temps) != int(floorplan.NumStructures) {
		panic(fmt.Sprintf("power: ComputeInto needs %d-structure slices, got out=%d temps=%d",
			floorplan.NumStructures, len(out), len(temps)))
	}
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		out[s] = m.Dynamic(s, activity[s], vddV, freqHz, on[s]) +
			m.Leakage(s, temps[s], vddV, on[s])
	}
}

// Ones returns a Vector of all 1s (no power gating).
func Ones() Vector {
	var v Vector
	for i := range v {
		v[i] = 1
	}
	return v
}

// Uniform returns a Vector with every entry x.
func Uniform(x float64) Vector {
	var v Vector
	for i := range v {
		v[i] = x
	}
	return v
}

// OnFractions converts config-level powered-on fractions to a
// per-structure Vector. Structures the adaptations cannot gate stay at 1.
func OnFractions(p, base config.Proc) Vector {
	of := config.OnFractions(p, base)
	v := Ones()
	v[floorplan.Window] = of.Window
	v[floorplan.IntALU] = of.IntALU
	v[floorplan.FPU] = of.FPU
	v[floorplan.IntRF] = of.IntRF
	v[floorplan.FPRF] = of.FPRF
	v[floorplan.LSQ] = of.LSQ
	return v
}
