package power

import (
	"math"
	"testing"
	"testing/quick"

	"ramp/internal/config"
	"ramp/internal/floorplan"
)

func model() *Model {
	return NewModel(floorplan.R10000Like(), config.Tech65nm())
}

func TestDynamicIdleFloor(t *testing.T) {
	m := model()
	idle := m.Dynamic(floorplan.IntALU, 0, 1.0, 4e9, 1)
	full := m.Dynamic(floorplan.IntALU, 1, 1.0, 4e9, 1)
	if math.Abs(idle/full-IdleFraction) > 1e-12 {
		t.Fatalf("idle/full = %v, want %v", idle/full, IdleFraction)
	}
	if full != m.MaxDynamic()[floorplan.IntALU] {
		t.Fatalf("full-activity power %v != budget %v", full, m.MaxDynamic()[floorplan.IntALU])
	}
}

func TestDynamicScalesWithV2F(t *testing.T) {
	m := model()
	base := m.Dynamic(floorplan.Window, 0.5, 1.0, 4e9, 1)
	halfF := m.Dynamic(floorplan.Window, 0.5, 1.0, 2e9, 1)
	if math.Abs(halfF/base-0.5) > 1e-12 {
		t.Fatalf("frequency scaling broken: %v", halfF/base)
	}
	loV := m.Dynamic(floorplan.Window, 0.5, 0.8, 4e9, 1)
	if math.Abs(loV/base-0.64) > 1e-12 {
		t.Fatalf("voltage scaling broken: %v", loV/base)
	}
}

func TestDynamicGating(t *testing.T) {
	m := model()
	full := m.Dynamic(floorplan.FPU, 0.3, 1.0, 4e9, 1)
	half := m.Dynamic(floorplan.FPU, 0.3, 1.0, 4e9, 0.5)
	off := m.Dynamic(floorplan.FPU, 0.3, 1.0, 4e9, 0)
	if math.Abs(half/full-0.5) > 1e-12 || off != 0 {
		t.Fatalf("gating scaling broken: %v %v", half/full, off)
	}
}

func TestDynamicPanicsOnBadActivity(t *testing.T) {
	m := model()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Dynamic(floorplan.L1D, 1.5, 1.0, 4e9, 1)
}

func TestLeakageReference(t *testing.T) {
	m := model()
	fp := floorplan.R10000Like()
	// At the reference temperature (383 K) and nominal voltage the total
	// leakage is 0.5 W/mm^2 over the whole die (Section 6.3).
	var sum float64
	for _, s := range floorplan.Structures() {
		sum += m.Leakage(s, 383, 1.0, 1)
	}
	want := 0.5 * fp.TotalAreaMM2()
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("leakage at reference = %v, want %v", sum, want)
	}
}

func TestLeakageTemperatureExponential(t *testing.T) {
	m := model()
	l380 := m.Leakage(floorplan.L1D, 380, 1.0, 1)
	l390 := m.Leakage(floorplan.L1D, 390, 1.0, 1)
	wantRatio := math.Exp(0.017 * 10)
	if math.Abs(l390/l380-wantRatio) > 1e-9 {
		t.Fatalf("leakage ratio = %v, want %v", l390/l380, wantRatio)
	}
}

func TestComputeSumsDynamicAndLeakage(t *testing.T) {
	m := model()
	act := Uniform(0.3)
	temps := Uniform(360)
	on := Ones()
	total := m.Compute(act, on, temps, 1.0, 4e9)
	for _, s := range floorplan.Structures() {
		want := m.Dynamic(s, 0.3, 1.0, 4e9, 1) + m.Leakage(s, 360, 1.0, 1)
		if math.Abs(total[s]-want) > 1e-12 {
			t.Fatalf("Compute[%v] = %v, want %v", s, total[s], want)
		}
	}
}

func TestVectorSum(t *testing.T) {
	v := Uniform(2)
	if v.Sum() != 2*float64(floorplan.NumStructures) {
		t.Fatalf("sum = %v", v.Sum())
	}
}

func TestOnFractionsVector(t *testing.T) {
	base := config.Base()
	small := base
	small.WindowSize = 32
	small.IntALUs = 2
	small.FPUs = 1
	v := OnFractions(small, base)
	if v[floorplan.Window] != 0.25 || v[floorplan.FPU] != 0.25 {
		t.Fatalf("window/fpu fractions %v %v", v[floorplan.Window], v[floorplan.FPU])
	}
	// Non-adaptive structures stay fully on.
	for _, s := range []floorplan.Structure{floorplan.Fetch, floorplan.BPred, floorplan.L1I, floorplan.L1D, floorplan.AGU} {
		if v[s] != 1 {
			t.Fatalf("%v gated: %v", s, v[s])
		}
	}
}

// Property: total power is monotone in activity, voltage, frequency and
// temperature.
func TestPowerMonotonicity(t *testing.T) {
	m := model()
	f := func(a1, a2 float64, raw uint8) bool {
		a1 = clamp01(a1)
		a2 = clamp01(a2)
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		s := floorplan.Structure(int(raw) % int(floorplan.NumStructures))
		if m.Dynamic(s, a1, 1.0, 4e9, 1) > m.Dynamic(s, a2, 1.0, 4e9, 1)+1e-12 {
			return false
		}
		return m.Leakage(s, 350, 1.0, 1) <= m.Leakage(s, 360, 1.0, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	x = math.Abs(x)
	return x - math.Floor(x)
}

// TestComputeIntoMatchesCompute pins the manycore tile path: ComputeInto
// over a flat slice is bitwise identical to Compute, and allocation-free.
func TestComputeIntoMatchesCompute(t *testing.T) {
	m := model()
	var act, temps Vector
	for s := range act {
		act[s] = float64(s) / float64(len(act))
		temps[s] = 340.0 + 2.5*float64(s)
	}
	on := Ones()
	on[floorplan.FPU] = 0.5
	want := m.Compute(act, on, temps, 0.95, 3.5e9)
	out := make([]float64, floorplan.NumStructures)
	m.ComputeInto(out, act, on, temps[:], 0.95, 3.5e9)
	for s := range want {
		if out[s] != want[s] {
			t.Fatalf("ComputeInto[%d] = %v, Compute = %v", s, out[s], want[s])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.ComputeInto(out, act, on, temps[:], 0.95, 3.5e9)
	})
	if allocs != 0 {
		t.Fatalf("ComputeInto allocates %.1f times per call, want 0", allocs)
	}
}
