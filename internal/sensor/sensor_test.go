package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"ramp/internal/core"
	"ramp/internal/floorplan"
	"ramp/internal/power"
)

func engine(t *testing.T) *core.Engine {
	t.Helper()
	q := core.Qualification{
		TqualK: 400, VqualV: 1, FqualHz: 4e9, Aqual: 0.5,
		TargetFIT: core.StandardTargetFIT,
	}
	return core.MustNewEngine(floorplan.R10000Like(), core.DefaultParams(core.TCAmbientK), q)
}

func interval(tempK, activity float64) core.Interval {
	iv := core.Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = core.Conditions{
			TempK: tempK, VddV: 1, FreqHz: 4e9, Activity: activity, OnFraction: 1,
		}
	}
	return iv
}

func TestSpecValidation(t *testing.T) {
	bad := []TempSensorSpec{
		{QuantK: -1, FilterAlpha: 1},
		{NoiseStdK: -1, FilterAlpha: 1},
		{FilterAlpha: 0},
		{FilterAlpha: 1.5},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
	if (CounterSpec{Bits: 0}).Validate() == nil || (CounterSpec{Bits: 64}).Validate() == nil {
		t.Error("bad counter spec accepted")
	}
	if DefaultTempSensors().Validate() != nil || DefaultCounters().Validate() != nil {
		t.Error("default specs invalid")
	}
}

func TestPerfectSensorIsTransparent(t *testing.T) {
	spec := TempSensorSpec{QuantK: 0, BiasK: 0, NoiseStdK: 0, FilterAlpha: 1}
	a, err := NewTempArray(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	trueK := power.Uniform(365.25)
	got := a.Read(trueK)
	for s := range got {
		if got[s] != trueK[s] {
			t.Fatalf("perfect sensor altered reading: %v vs %v", got[s], trueK[s])
		}
	}
}

func TestQuantisation(t *testing.T) {
	spec := TempSensorSpec{QuantK: 2, FilterAlpha: 1}
	a, err := NewTempArray(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Read(power.Uniform(365.7))
	for s := range got {
		if got[s] != 366 {
			t.Fatalf("quantised reading %v, want 366", got[s])
		}
	}
}

func TestBiasIsFixedPerSensor(t *testing.T) {
	spec := TempSensorSpec{BiasK: 3, FilterAlpha: 1}
	a, err := NewTempArray(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	r1 := a.Read(power.Uniform(360))
	r2 := a.Read(power.Uniform(360))
	for s := range r1 {
		if r1[s] != r2[s] {
			t.Fatalf("bias-only sensor not repeatable: %v vs %v", r1[s], r2[s])
		}
		if math.Abs(r1[s]-360) > 3 {
			t.Fatalf("bias %v outside spec bound", r1[s]-360)
		}
	}
	// Different dies (seeds) get different calibration errors.
	b, _ := NewTempArray(spec, 43)
	rb := b.Read(power.Uniform(360))
	same := true
	for s := range r1 {
		if r1[s] != rb[s] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical bias vectors")
	}
}

func TestFilterLag(t *testing.T) {
	spec := TempSensorSpec{FilterAlpha: 0.5}
	a, err := NewTempArray(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Read(power.Uniform(350)) // initialise at 350
	got := a.Read(power.Uniform(370))
	for s := range got {
		if math.Abs(got[s]-360) > 1e-9 { // halfway to the step
			t.Fatalf("lagged reading %v, want 360", got[s])
		}
	}
}

func TestCounterQuantize(t *testing.T) {
	c := CounterSpec{Bits: 2} // 4 levels
	cases := []struct{ in, want float64 }{
		{0, 0}, {1, 1}, {0.24, 0.25}, {0.6, 0.5}, {0.88, 1.0},
	}
	for _, cse := range cases {
		if got := c.Quantize(cse.in); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("Quantize(%v) = %v, want %v", cse.in, got, cse.want)
		}
	}
	if c.Quantize(-0.3) != 0 || c.Quantize(1.4) != 1 {
		t.Error("quantizer not clamped")
	}
}

func TestHarnessSensedFITTracksIdeal(t *testing.T) {
	// With realistic sensors, the hardware-observed FIT should land
	// within a few percent of the model-ideal FIT.
	ideal := engine(t)
	iv := interval(375, 0.4)
	for i := 0; i < 20; i++ {
		if err := ideal.Observe(iv); err != nil {
			t.Fatal(err)
		}
	}
	idealFIT := ideal.MustAssess().TotalFIT

	temps, err := NewTempArray(DefaultTempSensors(), 5)
	if err != nil {
		t.Fatal(err)
	}
	sensedEngine := engine(t)
	h, err := NewHarness(temps, DefaultCounters(), sensedEngine)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := h.Observe(iv); err != nil {
			t.Fatal(err)
		}
	}
	sensedFIT := sensedEngine.MustAssess().TotalFIT
	relErr := math.Abs(sensedFIT-idealFIT) / idealFIT
	if relErr > 0.25 {
		t.Fatalf("sensed FIT %v vs ideal %v (%.1f%% error)", sensedFIT, idealFIT, relErr*100)
	}
	if sensedFIT == idealFIT {
		t.Fatal("sensors had no effect at all — emulation inert?")
	}
}

func TestHarnessCoarserSensorsHurt(t *testing.T) {
	iv := interval(375, 0.4)
	run := func(spec TempSensorSpec, seeds []int64) float64 {
		var worst float64
		for _, seed := range seeds {
			ideal := engine(t)
			sensed := engine(t)
			temps, err := NewTempArray(spec, seed)
			if err != nil {
				t.Fatal(err)
			}
			h, err := NewHarness(temps, DefaultCounters(), sensed)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				if err := ideal.Observe(iv); err != nil {
					t.Fatal(err)
				}
				if _, err := h.Observe(iv); err != nil {
					t.Fatal(err)
				}
			}
			e := math.Abs(sensed.MustAssess().TotalFIT-ideal.MustAssess().TotalFIT) /
				ideal.MustAssess().TotalFIT
			if e > worst {
				worst = e
			}
		}
		return worst
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	fine := run(TempSensorSpec{QuantK: 0.5, BiasK: 0.5, NoiseStdK: 0.2, FilterAlpha: 1}, seeds)
	coarse := run(TempSensorSpec{QuantK: 4, BiasK: 6, NoiseStdK: 2, FilterAlpha: 1}, seeds)
	if coarse <= fine {
		t.Fatalf("coarse sensors (err %.3f) not worse than fine (err %.3f)", coarse, fine)
	}
}

func TestHarnessValidation(t *testing.T) {
	temps, _ := NewTempArray(DefaultTempSensors(), 1)
	if _, err := NewHarness(nil, DefaultCounters(), engine(t)); err == nil {
		t.Fatal("nil temps accepted")
	}
	if _, err := NewHarness(temps, CounterSpec{Bits: 0}, engine(t)); err == nil {
		t.Fatal("bad counters accepted")
	}
	if _, err := NewHarness(temps, DefaultCounters(), nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

// Property: sensor readings stay within bias+noise+quantisation bounds
// of the truth once the filter has settled.
func TestSensorErrorBoundQuick(t *testing.T) {
	spec := TempSensorSpec{QuantK: 1, BiasK: 2, NoiseStdK: 0.3, FilterAlpha: 1}
	f := func(seed int64, raw uint16) bool {
		trueT := 330 + float64(raw%70)
		a, err := NewTempArray(spec, seed)
		if err != nil {
			return false
		}
		got := a.Read(power.Uniform(trueT))
		bound := spec.BiasK + 5*spec.NoiseStdK + spec.QuantK
		for s := range got {
			if math.Abs(got[s]-trueT) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
