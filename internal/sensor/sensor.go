// Package sensor models the hardware-side realisation of RAMP.
//
// Section 3 notes that "in real hardware, RAMP would require sensors and
// counters that provide information on processor operating conditions".
// This package emulates that instrumentation: per-structure thermal
// sensors with quantisation, calibration bias, noise and first-order lag
// (real thermal diodes respond slower than silicon), and saturating
// activity counters of finite width. A Harness feeds a core.Engine
// through these imperfect readings, so the difference between
// model-ideal FIT and hardware-observed FIT can be quantified — the
// error budget a real DRM controller has to absorb.
package sensor

import (
	"fmt"
	"math"
	"math/rand"

	"ramp/internal/core"
	"ramp/internal/floorplan"
	"ramp/internal/power"
)

// TempSensorSpec describes one class of on-die temperature sensor.
type TempSensorSpec struct {
	// QuantK is the quantisation step of the digital readout (K).
	QuantK float64
	// BiasK is a fixed per-sensor calibration offset bound: each sensor
	// draws its bias uniformly from [-BiasK, +BiasK] at build time.
	BiasK float64
	// NoiseStdK is the standard deviation of per-reading Gaussian noise.
	NoiseStdK float64
	// FilterAlpha is the first-order response per reading: the sensed
	// value moves alpha of the way to the true temperature each sample
	// (1 = instant, small = laggy diode).
	FilterAlpha float64
}

// DefaultTempSensors returns a realistic on-die thermal sensor: 1 K
// quantisation, ±1.5 K calibration, 0.5 K noise, fast-but-not-instant
// response.
func DefaultTempSensors() TempSensorSpec {
	return TempSensorSpec{QuantK: 1.0, BiasK: 1.5, NoiseStdK: 0.5, FilterAlpha: 0.7}
}

// Validate checks the spec.
func (s TempSensorSpec) Validate() error {
	if s.QuantK < 0 || s.BiasK < 0 || s.NoiseStdK < 0 {
		return fmt.Errorf("sensor: negative spec field: %+v", s)
	}
	if s.FilterAlpha <= 0 || s.FilterAlpha > 1 {
		return fmt.Errorf("sensor: FilterAlpha %v out of (0,1]", s.FilterAlpha)
	}
	return nil
}

// TempArray is a bank of per-structure temperature sensors.
type TempArray struct {
	spec  TempSensorSpec
	bias  power.Vector
	state power.Vector // filtered value; 0 = uninitialised
	init  bool
	rng   *rand.Rand
}

// NewTempArray builds a sensor bank; biases are drawn deterministically
// from seed (each physical die has its own fixed calibration error).
func NewTempArray(spec TempSensorSpec, seed int64) (*TempArray, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	a := &TempArray{spec: spec, rng: rng}
	for i := range a.bias {
		a.bias[i] = (2*rng.Float64() - 1) * spec.BiasK
	}
	return a, nil
}

// Read samples every sensor against the true temperatures and returns
// the digital readings.
func (a *TempArray) Read(trueK power.Vector) power.Vector {
	var out power.Vector
	for s := range trueK {
		if !a.init {
			a.state[s] = trueK[s]
		} else {
			a.state[s] += a.spec.FilterAlpha * (trueK[s] - a.state[s])
		}
		v := a.state[s] + a.bias[s] + a.rng.NormFloat64()*a.spec.NoiseStdK
		if q := a.spec.QuantK; q > 0 {
			v = math.Round(v/q) * q
		}
		out[s] = v
	}
	a.init = true
	return out
}

// CounterSpec describes the activity-counter hardware.
type CounterSpec struct {
	// Bits is the readout resolution: activity is quantised to 2^Bits
	// levels across [0,1].
	Bits int
}

// DefaultCounters returns 8-bit activity readouts.
func DefaultCounters() CounterSpec { return CounterSpec{Bits: 8} }

// Validate checks the spec.
func (c CounterSpec) Validate() error {
	if c.Bits < 1 || c.Bits > 32 {
		return fmt.Errorf("sensor: counter bits %d out of [1,32]", c.Bits)
	}
	return nil
}

// Quantize maps a true activity factor to its counter readout.
func (c CounterSpec) Quantize(activity float64) float64 {
	levels := float64(int64(1) << uint(c.Bits))
	q := math.Round(activity*levels) / levels
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// Harness drives a RAMP engine through the sensor stack: the engine only
// ever sees sensed temperatures and quantised activities, exactly as a
// hardware implementation would.
type Harness struct {
	Temps    *TempArray
	Counters CounterSpec
	Engine   *core.Engine
}

// NewHarness wires sensors to an engine.
func NewHarness(temps *TempArray, counters CounterSpec, engine *core.Engine) (*Harness, error) {
	if err := counters.Validate(); err != nil {
		return nil, err
	}
	if temps == nil || engine == nil {
		return nil, fmt.Errorf("sensor: nil harness component")
	}
	return &Harness{Temps: temps, Counters: counters, Engine: engine}, nil
}

// Observe converts one true interval into sensed readings and feeds the
// engine. It returns the sensed interval for inspection.
func (h *Harness) Observe(iv core.Interval) (core.Interval, error) {
	var trueK power.Vector
	for s := range iv.Structures {
		trueK[s] = iv.Structures[s].TempK
	}
	sensedK := h.Temps.Read(trueK)
	sensed := iv
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		sensed.Structures[s].TempK = sensedK[s]
		sensed.Structures[s].Activity = h.Counters.Quantize(iv.Structures[s].Activity)
	}
	if err := h.Engine.Observe(sensed); err != nil {
		return core.Interval{}, err
	}
	return sensed, nil
}
