// Technology-scaling support.
//
// Section 1.2 argues that scaling is the root of the lifetime
// reliability problem: smaller features raise power density, leakage
// grows exponentially and supply voltage does not scale with feature
// size, all of which accelerate wear-out. The paper quantifies this in
// its companion study ("The Impact of Scaling on Processor Lifetime
// Reliability", DSN 2004, reference [20]); this file provides the
// technology ladder needed to reproduce that trend with this
// repository's models (see the scaling study in internal/figures).
package config

import "fmt"

// TechNode describes one CMOS technology generation for the scaling
// study: the same microarchitecture ported across nodes.
type TechNode struct {
	// NodeNM is the feature size.
	NodeNM float64
	// VddV is the nominal supply voltage — note how slowly it scales
	// relative to feature size (the paper's point).
	VddV float64
	// FreqHz is the shipping clock for this core at this node.
	FreqHz float64
	// LeakageWPerMM2 is leakage density at 383 K — growing steeply with
	// scaling as thresholds drop.
	LeakageWPerMM2 float64
}

// TechLadder returns the four-generation ladder ending at the paper's
// 65 nm design point. Voltages and clocks follow the historical/ITRS
// trajectory for high-performance cores; leakage densities follow the
// exponential growth the paper cites.
func TechLadder() []TechNode {
	return []TechNode{
		{NodeNM: 180, VddV: 1.8, FreqHz: 1.0e9, LeakageWPerMM2: 0.01},
		{NodeNM: 130, VddV: 1.3, FreqHz: 2.0e9, LeakageWPerMM2: 0.05},
		{NodeNM: 90, VddV: 1.1, FreqHz: 3.0e9, LeakageWPerMM2: 0.20},
		{NodeNM: 65, VddV: 1.0, FreqHz: 4.0e9, LeakageWPerMM2: 0.50},
	}
}

// Validate checks the node's parameters.
func (n TechNode) Validate() error {
	if n.NodeNM <= 0 || n.VddV <= 0 || n.FreqHz <= 0 || n.LeakageWPerMM2 < 0 {
		return fmt.Errorf("config: invalid tech node %+v", n)
	}
	return nil
}

// LinearScale returns the node's linear feature-size ratio relative to
// the paper's 65 nm point.
func (n TechNode) LinearScale() float64 { return n.NodeNM / 65.0 }

// Tech returns the node's technology parameters (ambient and leakage
// temperature model shared with the 65 nm point).
func (n TechNode) Tech() Tech {
	t := Tech65nm()
	t.ProcessNM = n.NodeNM
	t.VddNominal = n.VddV
	t.BaseFreqHz = n.FreqHz
	t.LeakageWPerMM2 = n.LeakageWPerMM2
	return t
}

// Proc returns the paper's base microarchitecture ported to this node:
// identical structures and sizes, the node's voltage and clock, and the
// same wall-clock off-chip latencies (whose cycle cost therefore shrinks
// at slower clocks).
func (n TechNode) Proc() Proc {
	p := Base()
	p.Name = fmt.Sprintf("base-%.0fnm", n.NodeNM)
	p.FreqHz = n.FreqHz
	p.VddV = n.VddV
	return p
}
