// Package config defines the processor, technology and adaptation
// configuration used throughout the reproduction.
//
// The base non-adaptive processor is the paper's Table 1: a 65 nm, 4 GHz,
// 1.0 V, 8-wide out-of-order core resembling the MIPS R10000 with a
// unified 128-entry instruction window, 192+192 physical registers, 6
// integer ALUs, 4 FPUs and 2 address-generation units, a 64 KB L1D, 32 KB
// L1I, 1 MB off-chip L2 and 102-cycle (at 4 GHz) main memory.
package config

import (
	"fmt"
	"math"
)

// Tech holds the 65 nm technology-level parameters (Table 1 plus the
// leakage model of Section 6.3).
type Tech struct {
	ProcessNM float64 // feature size, nm

	VddNominal float64 // nominal supply voltage, V
	BaseFreqHz float64 // base clock, Hz

	// Leakage: density at TLeakRef with aggressive control (0.5 W/mm^2 at
	// 383 K, from industry per the paper), scaled with temperature as
	// P(T) = P(Tref) * e^(Beta*(T-Tref)) with Beta = 0.017 (Heo et al.).
	LeakageWPerMM2 float64
	TLeakRefK      float64
	LeakageBeta    float64

	AmbientK float64 // ambient (package inlet) temperature, K
}

// Tech65nm returns the paper's 65 nm technology point.
func Tech65nm() Tech {
	return Tech{
		ProcessNM:      65,
		VddNominal:     1.0,
		BaseFreqHz:     4.0e9,
		LeakageWPerMM2: 0.5,
		TLeakRefK:      383,
		LeakageBeta:    0.017,
		AmbientK:       313, // 40 C in-chassis ambient at the sink
	}
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	Assoc     int
	LineBytes int
	Ports     int
	MSHRs     int
	// HitLatencyCycles applies to on-chip caches and is in core cycles
	// (it scales with the clock). HitLatencySec applies to off-chip
	// structures and is fixed wall-clock time.
	HitLatencyCycles int
	HitLatencySec    float64
}

// Sets returns the number of sets in the cache.
func (c CacheConfig) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Assoc)
}

// Proc is a complete processor configuration: microarchitecture plus
// operating point (frequency/voltage). The zero value is not usable; start
// from Base().
type Proc struct {
	Name string

	// Operating point.
	FreqHz float64
	VddV   float64

	// Front end.
	FetchWidth   int
	RetireWidth  int
	FrontLatency int // fetch-to-rename pipeline depth, cycles

	// Window and registers. The instruction window integrates the issue
	// queue and reorder buffer (Section 6.1); the register file is
	// separate.
	WindowSize int
	IntRegs    int
	FPRegs     int

	// Functional units. Issue width equals the number of active
	// functional units (Section 6.1), so it is derived, not stored.
	IntALUs int
	FPUs    int
	AGUs    int

	// Latencies (cycles). FP divide is not pipelined.
	IntAddLat, IntMulLat, IntDivLat int
	FPLat, FPDivLat                 int

	MemQueueSize int

	// Branch prediction.
	BPredBytes int // bimodal agree predictor storage
	RASEntries int

	// Memory hierarchy.
	L1D, L1I, L2 CacheConfig
	// Main memory: fixed wall-clock latency (102 cycles at 4 GHz) and
	// bandwidth is abstracted away (the paper's 16B/cycle 4-way
	// interleaved memory is not a bottleneck for our traces).
	MemLatencySec float64
}

// Base returns the paper's Table 1 base non-adaptive processor at the
// 65 nm technology point.
func Base() Proc {
	t := Tech65nm()
	cyc := 1 / t.BaseFreqHz
	return Proc{
		Name:         "base",
		FreqHz:       t.BaseFreqHz,
		VddV:         t.VddNominal,
		FetchWidth:   8,
		RetireWidth:  8,
		FrontLatency: 3,
		WindowSize:   128,
		IntRegs:      192,
		FPRegs:       192,
		IntALUs:      6,
		FPUs:         4,
		AGUs:         2,
		IntAddLat:    1,
		IntMulLat:    7,
		IntDivLat:    12,
		FPLat:        4,
		FPDivLat:     12,
		MemQueueSize: 32,
		BPredBytes:   2048,
		RASEntries:   32,
		L1D: CacheConfig{
			SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64,
			Ports: 2, MSHRs: 12, HitLatencyCycles: 2,
		},
		L1I: CacheConfig{
			SizeBytes: 32 << 10, Assoc: 2, LineBytes: 64,
			Ports: 1, MSHRs: 4, HitLatencyCycles: 1,
		},
		L2: CacheConfig{
			SizeBytes: 1 << 20, Assoc: 4, LineBytes: 64,
			Ports: 1, MSHRs: 12,
			// Off-chip: 20 cycles at 4 GHz is fixed wall-clock time.
			HitLatencySec: 20 * cyc,
		},
		MemLatencySec: 102 * cyc,
	}
}

// IssueWidth returns the processor's issue width: the sum of all active
// functional units (Section 6.1).
func (p Proc) IssueWidth() int { return p.IntALUs + p.FPUs + p.AGUs }

// Validate checks the configuration for internal consistency.
func (p Proc) Validate() error {
	switch {
	case p.FreqHz <= 0:
		return fmt.Errorf("config: non-positive frequency %v", p.FreqHz)
	case p.VddV <= 0:
		return fmt.Errorf("config: non-positive Vdd %v", p.VddV)
	case p.FetchWidth <= 0 || p.RetireWidth <= 0:
		return fmt.Errorf("config: non-positive fetch/retire width")
	case p.WindowSize <= 0:
		return fmt.Errorf("config: non-positive window size")
	case p.IntALUs <= 0 || p.FPUs <= 0 || p.AGUs <= 0:
		return fmt.Errorf("config: each FU class needs at least one unit")
	case p.IntRegs < p.WindowSize/2 || p.FPRegs < p.WindowSize/2:
		return fmt.Errorf("config: too few physical registers for window %d", p.WindowSize)
	case p.MemQueueSize <= 0:
		return fmt.Errorf("config: non-positive memory queue size")
	case p.L1D.SizeBytes <= 0 || p.L1I.SizeBytes <= 0 || p.L2.SizeBytes <= 0:
		return fmt.Errorf("config: non-positive cache size")
	}
	return nil
}

// WithOperatingPoint returns a copy of p running at the given frequency
// with the voltage the DVS curve requires for it.
func (p Proc) WithOperatingPoint(freqHz float64) Proc {
	q := p
	q.FreqHz = freqHz
	q.VddV = VoltageForFreq(freqHz)
	q.Name = fmt.Sprintf("%s@%.2fGHz", baseName(p.Name), freqHz/1e9)
	return q
}

func baseName(n string) string {
	for i := 0; i < len(n); i++ {
		if n[i] == '@' {
			return n[:i]
		}
	}
	return n
}

// DVS parameters: the voltage-frequency relationship is extrapolated from
// the published Intel Pentium-M (Centrino) operating points, normalised to
// the base 4 GHz @ 1.0 V point (Section 6.1). The Pentium-M ladder's
// proportional fit is V/Vbase = 0.43 + 0.57*(f/fbase), but that 130 nm
// part spans 0.96-1.48 V; a 65 nm part's usable voltage window is much
// narrower, so the extrapolation compresses the slope while keeping the
// 4 GHz @ 1.0 V anchor: V/Vbase = 0.65 + 0.35*(f/fbase)
// (0.87 V @ 2.5 GHz ... 1.09 V @ 5 GHz).
const (
	dvsVIntercept = 0.65
	dvsVSlope     = 0.35

	// MinFreqHz and MaxFreqHz bound the DVS range explored for DRM
	// (Section 6.1: 2.5 GHz to 5.0 GHz).
	MinFreqHz = 2.5e9
	MaxFreqHz = 5.0e9

	// VMin and VMax clamp the extrapolated voltage to a physically
	// plausible 65 nm range.
	VMin = 0.70
	VMax = 1.20
)

// VoltageForFreq returns the supply voltage that supports frequency f,
// per the Pentium-M-extrapolated DVS curve.
func VoltageForFreq(freqHz float64) float64 {
	base := Tech65nm()
	v := base.VddNominal * (dvsVIntercept + dvsVSlope*freqHz/base.BaseFreqHz)
	return math.Min(VMax, math.Max(VMin, v))
}

// DVSFrequencies returns the frequency grid explored for DRM and DTM:
// 2.5 GHz to 5.0 GHz in stepHz increments (use 0.125e9 for the paper-like
// fine sweep, 0.25e9 for a faster one).
func DVSFrequencies(stepHz float64) []float64 {
	if stepHz <= 0 {
		stepHz = 0.25e9
	}
	var out []float64
	for f := MinFreqHz; f <= MaxFreqHz+1; f += stepHz {
		out = append(out, f)
	}
	return out
}

// ArchConfigs returns the paper's 18 microarchitectural adaptation
// configurations (Section 6.1): combinations of instruction window size
// and functional-unit counts ranging from the full 128-entry, 6-ALU,
// 4-FPU core down to a 16-entry, 2-ALU, 1-FPU core. All run at the base
// voltage and frequency. Register files and memory queue scale with the
// window so that no configuration is trivially register-starved.
func ArchConfigs() []Proc {
	base := Base()
	windows := []int{128, 96, 64, 48, 32, 16}
	fus := []struct{ alus, fpus int }{{6, 4}, {4, 2}, {2, 1}}
	var out []Proc
	for _, w := range windows {
		for _, fu := range fus {
			p := base
			p.WindowSize = w
			p.IntALUs = fu.alus
			p.FPUs = fu.fpus
			// Keep enough registers to rename the whole window, with the
			// base 1.5x cushion.
			p.IntRegs = w + w/2
			p.FPRegs = w + w/2
			if p.IntRegs > base.IntRegs {
				p.IntRegs = base.IntRegs
			}
			if p.FPRegs > base.FPRegs {
				p.FPRegs = base.FPRegs
			}
			if p.MemQueueSize > w {
				p.MemQueueSize = w
			}
			p.Name = fmt.Sprintf("w%d-a%d-f%d", w, fu.alus, fu.fpus)
			out = append(out, p)
		}
	}
	return out
}

// OnFraction returns, for each structure class that the microarchitectural
// adaptations can power down, the powered-on fraction of the structure
// relative to the base configuration. Powered-down area contributes no
// electromigration or TDDB failures (Section 6.1) and no power.
type OnFraction struct {
	Window float64
	IntALU float64
	FPU    float64
	IntRF  float64
	FPRF   float64
	LSQ    float64
}

// OnFractions computes the powered-on fractions of p relative to base.
func OnFractions(p, base Proc) OnFraction {
	frac := func(a, b int) float64 {
		if b == 0 {
			return 1
		}
		f := float64(a) / float64(b)
		if f > 1 {
			f = 1
		}
		return f
	}
	return OnFraction{
		Window: frac(p.WindowSize, base.WindowSize),
		IntALU: frac(p.IntALUs, base.IntALUs),
		FPU:    frac(p.FPUs, base.FPUs),
		IntRF:  frac(p.IntRegs, base.IntRegs),
		FPRF:   frac(p.FPRegs, base.FPRegs),
		LSQ:    frac(p.MemQueueSize, base.MemQueueSize),
	}
}
