package config

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBaseMatchesTable1(t *testing.T) {
	p := Base()
	if err := p.Validate(); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	if p.FreqHz != 4e9 || p.VddV != 1.0 {
		t.Fatalf("base operating point %v Hz %v V", p.FreqHz, p.VddV)
	}
	if p.FetchWidth != 8 || p.RetireWidth != 8 {
		t.Fatalf("fetch/retire %d/%d", p.FetchWidth, p.RetireWidth)
	}
	if p.WindowSize != 128 || p.IntRegs != 192 || p.FPRegs != 192 {
		t.Fatalf("window/regs %d/%d/%d", p.WindowSize, p.IntRegs, p.FPRegs)
	}
	if p.IntALUs != 6 || p.FPUs != 4 || p.AGUs != 2 {
		t.Fatalf("FUs %d/%d/%d", p.IntALUs, p.FPUs, p.AGUs)
	}
	if p.IntAddLat != 1 || p.IntMulLat != 7 || p.IntDivLat != 12 {
		t.Fatalf("int latencies")
	}
	if p.FPLat != 4 || p.FPDivLat != 12 {
		t.Fatalf("fp latencies")
	}
	if p.MemQueueSize != 32 || p.BPredBytes != 2048 || p.RASEntries != 32 {
		t.Fatalf("memq/bpred/ras")
	}
	if p.L1D.SizeBytes != 64<<10 || p.L1D.Assoc != 2 || p.L1D.Ports != 2 || p.L1D.MSHRs != 12 {
		t.Fatalf("L1D config %+v", p.L1D)
	}
	if p.L1I.SizeBytes != 32<<10 || p.L2.SizeBytes != 1<<20 || p.L2.Assoc != 4 {
		t.Fatalf("L1I/L2 config")
	}
	// Off-chip latencies are wall-clock: 20 and 102 cycles at 4 GHz.
	if math.Abs(p.L2.HitLatencySec*4e9-20) > 1e-9 {
		t.Fatalf("L2 latency = %v cycles at 4GHz", p.L2.HitLatencySec*4e9)
	}
	if math.Abs(p.MemLatencySec*4e9-102) > 1e-9 {
		t.Fatalf("memory latency = %v cycles at 4GHz", p.MemLatencySec*4e9)
	}
}

func TestIssueWidth(t *testing.T) {
	p := Base()
	if p.IssueWidth() != 12 {
		t.Fatalf("issue width = %d, want 6+4+2", p.IssueWidth())
	}
	p.IntALUs, p.FPUs = 2, 1
	if p.IssueWidth() != 5 {
		t.Fatalf("adapted issue width = %d, want 5", p.IssueWidth())
	}
}

func TestCacheSets(t *testing.T) {
	c := Base().L1D
	if c.Sets() != 64<<10/(64*2) {
		t.Fatalf("L1D sets = %d", c.Sets())
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Proc){
		func(p *Proc) { p.FreqHz = 0 },
		func(p *Proc) { p.VddV = -1 },
		func(p *Proc) { p.FetchWidth = 0 },
		func(p *Proc) { p.WindowSize = 0 },
		func(p *Proc) { p.IntALUs = 0 },
		func(p *Proc) { p.IntRegs = 4 },
		func(p *Proc) { p.MemQueueSize = 0 },
		func(p *Proc) { p.L1D.SizeBytes = 0 },
	}
	for i, mod := range mods {
		p := Base()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestVoltageForFreqAnchor(t *testing.T) {
	// The DVS curve is anchored at the base point: 4 GHz -> 1.0 V.
	if v := VoltageForFreq(4e9); math.Abs(v-1.0) > 1e-12 {
		t.Fatalf("V(4GHz) = %v, want 1.0", v)
	}
}

func TestVoltageForFreqMonotonicAndClamped(t *testing.T) {
	prev := 0.0
	for f := 1e9; f <= 8e9; f += 0.1e9 {
		v := VoltageForFreq(f)
		if v < prev {
			t.Fatalf("V(f) not monotone at %v", f)
		}
		if v < VMin || v > VMax {
			t.Fatalf("V(%v) = %v outside clamp", f, v)
		}
		prev = v
	}
	if VoltageForFreq(0.1e9) != VMin {
		t.Fatalf("low frequency should clamp to VMin")
	}
}

func TestDVSFrequencies(t *testing.T) {
	fs := DVSFrequencies(0.25e9)
	if fs[0] != MinFreqHz {
		t.Fatalf("first frequency %v", fs[0])
	}
	if fs[len(fs)-1] != MaxFreqHz {
		t.Fatalf("last frequency %v", fs[len(fs)-1])
	}
	if len(fs) != 11 {
		t.Fatalf("grid size %d, want 11", len(fs))
	}
	// Zero step falls back to the default.
	if len(DVSFrequencies(0)) != 11 {
		t.Fatalf("default grid broken")
	}
}

func TestArchConfigsMatchPaper(t *testing.T) {
	cfgs := ArchConfigs()
	// 6 window sizes x 3 FU settings = 18 configurations (Section 6.1).
	if len(cfgs) != 18 {
		t.Fatalf("got %d arch configs, want 18", len(cfgs))
	}
	base := Base()
	seen := map[string]bool{}
	var most, least Proc
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("config %s invalid: %v", c.Name, err)
		}
		if c.FreqHz != base.FreqHz || c.VddV != base.VddV {
			t.Errorf("config %s changed the operating point", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate config name %s", c.Name)
		}
		seen[c.Name] = true
		if c.WindowSize == 128 && c.IntALUs == 6 {
			most = c
		}
		if c.WindowSize == 16 && c.IntALUs == 2 {
			least = c
		}
	}
	if most.FPUs != 4 {
		t.Fatalf("most aggressive config missing (%+v)", most)
	}
	if least.FPUs != 1 {
		t.Fatalf("least aggressive config missing (%+v)", least)
	}
}

func TestWithOperatingPoint(t *testing.T) {
	p := Base().WithOperatingPoint(5e9)
	if p.FreqHz != 5e9 {
		t.Fatalf("freq not applied")
	}
	if p.VddV != VoltageForFreq(5e9) {
		t.Fatalf("voltage not from curve")
	}
	// Re-applying should not stack name suffixes.
	p2 := p.WithOperatingPoint(3e9)
	if p2.Name != "base@3.00GHz" {
		t.Fatalf("name = %q", p2.Name)
	}
}

func TestOnFractions(t *testing.T) {
	base := Base()
	of := OnFractions(base, base)
	if of.Window != 1 || of.IntALU != 1 || of.FPU != 1 {
		t.Fatalf("base on-fractions not 1: %+v", of)
	}
	small := base
	small.WindowSize = 32
	small.IntALUs = 2
	small.FPUs = 1
	of = OnFractions(small, base)
	if of.Window != 0.25 {
		t.Fatalf("window fraction = %v", of.Window)
	}
	if math.Abs(of.IntALU-2.0/6.0) > 1e-12 {
		t.Fatalf("ALU fraction = %v", of.IntALU)
	}
	if of.FPU != 0.25 {
		t.Fatalf("FPU fraction = %v", of.FPU)
	}
}

// Property: on-fractions are always in (0, 1] for valid adaptations.
func TestOnFractionsProperty(t *testing.T) {
	base := Base()
	f := func(w, a, fp uint8) bool {
		p := base
		p.WindowSize = 1 + int(w)%base.WindowSize
		p.IntALUs = 1 + int(a)%base.IntALUs
		p.FPUs = 1 + int(fp)%base.FPUs
		of := OnFractions(p, base)
		for _, x := range []float64{of.Window, of.IntALU, of.FPU, of.IntRF, of.FPRF, of.LSQ} {
			if x <= 0 || x > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
