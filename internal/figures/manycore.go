package figures

import (
	"context"
	"fmt"
	"io"

	"ramp/internal/exp"
	"ramp/internal/sched"
)

// ManycoreNCores is the standard die-size sweep of the manycore study.
var ManycoreNCores = []int{1, 2, 4, 8, 16}

// ManycoreRow is one (die size, policy) outcome at iso-performance.
type ManycoreRow struct {
	NCores int
	Policy sched.Policy

	LifetimeYears float64 // MTTF to first core failure
	ChipFIT       float64
	ChipMTTFYears float64
	AvgW          float64
	MaxTempK      float64
	BIPS          float64
	Migrations    int
}

// ManycoreTable is the lifetime-at-iso-performance policy comparison:
// every die size × policy, against the paper's single-core DRM
// baseline.
type ManycoreTable struct {
	TqualK      float64
	BaselineFIT float64 // single-core workload FIT (Section 3.6)
	BaselineYrs float64
	Rows        []ManycoreRow
}

// ManycoreSweep runs the three scheduling policies over the given die
// sizes at one qualification temperature. Within a die size the
// policies share one Simulator — identical workload groups, identical
// epochs — so lifetime is compared at identical performance; across die
// sizes the suite evaluations come from the env cache, so the whole
// sweep simulates each application once.
func ManycoreSweep(e *exp.Env, nCores []int, tqualK float64) (ManycoreTable, error) {
	return ManycoreSweepCtx(context.Background(), e, nCores, tqualK)
}

// ManycoreSweepEpochs is ManycoreSweep with an explicit scheduling-epoch
// count per die size (0 keeps the default of twice the evaluation
// epochs).
func ManycoreSweepEpochs(e *exp.Env, nCores []int, tqualK float64, epochs int) (ManycoreTable, error) {
	return manycoreSweepCtx(context.Background(), e, nCores, tqualK, epochs)
}

// ManycoreSweepCtx is ManycoreSweep with cancellation, checked per die
// size, per policy and per scheduling epoch.
func ManycoreSweepCtx(ctx context.Context, e *exp.Env, nCores []int, tqualK float64) (ManycoreTable, error) {
	return manycoreSweepCtx(ctx, e, nCores, tqualK, 0)
}

func manycoreSweepCtx(ctx context.Context, e *exp.Env, nCores []int, tqualK float64, epochs int) (ManycoreTable, error) {
	defer figSpan(e, "figures.manycore").End()
	t := ManycoreTable{TqualK: tqualK}
	var err error
	t.BaselineFIT, t.BaselineYrs, err = sched.SingleCoreDRMCtx(ctx, e, tqualK)
	if err != nil {
		return ManycoreTable{}, err
	}
	for _, n := range nCores {
		cfg := sched.DefaultConfig(n, e.Opts)
		cfg.TqualK = tqualK
		if epochs > 0 {
			cfg.Epochs = epochs
		}
		sim, err := sched.NewCtx(ctx, e, cfg)
		if err != nil {
			return ManycoreTable{}, fmt.Errorf("N=%d: %w", n, err)
		}
		for _, p := range sched.Policies() {
			r, err := sim.RunCtx(ctx, p)
			if err != nil {
				return ManycoreTable{}, fmt.Errorf("N=%d %v: %w", n, p, err)
			}
			t.Rows = append(t.Rows, ManycoreRow{
				NCores:        n,
				Policy:        p,
				LifetimeYears: r.LifetimeYears,
				ChipFIT:       r.ChipFIT,
				ChipMTTFYears: r.ChipMTTFYears,
				AvgW:          r.AvgW,
				MaxTempK:      r.MaxTempK,
				BIPS:          r.BIPS,
				Migrations:    r.Migrations,
			})
		}
	}
	return t, nil
}

// Write prints the policy-comparison table.
func (t ManycoreTable) Write(w io.Writer) {
	fmt.Fprintf(w, "Manycore lifetime at iso-performance (Tqual=%.0fK)\n", t.TqualK)
	fmt.Fprintf(w, "  single-core DRM baseline: %.0f FIT, MTTF %.1f years\n", t.BaselineFIT, t.BaselineYrs)
	fmt.Fprintf(w, "  lifetime = years to first core failure; BIPS identical across policies per N\n\n")
	fmt.Fprintf(w, "  %6s %-10s %12s %10s %10s %8s %8s %8s %6s\n",
		"cores", "policy", "lifetime(y)", "chipMTTF", "chipFIT", "avgW", "maxT(K)", "BIPS", "moves")
	prev := -1
	for _, r := range t.Rows {
		if prev != -1 && r.NCores != prev {
			fmt.Fprintln(w)
		}
		prev = r.NCores
		fmt.Fprintf(w, "  %6d %-10s %12.2f %10.2f %10.0f %8.1f %8.1f %8.3f %6d\n",
			r.NCores, r.Policy, r.LifetimeYears, r.ChipMTTFYears, r.ChipFIT,
			r.AvgW, r.MaxTempK, r.BIPS, r.Migrations)
	}
}
