package figures

import (
	"strings"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/trace"
)

func quickEnv() *exp.Env { return exp.NewEnv(exp.QuickOptions()) }

func TestTable1(t *testing.T) {
	var sb strings.Builder
	NewTable1(quickEnv()).Write(&sb)
	out := sb.String()
	for _, want := range []string{"65 nm", "4.0 GHz", "128 entries", "2KB bimodal agree", "20.25 mm^2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	env := quickEnv()
	rows, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		if r.IPC <= 0 || r.PowerW <= 0 {
			t.Errorf("%s: non-positive measurements %+v", r.App, r)
		}
		byName[r.App] = r
	}
	// The essential Table 2 shape: multimedia codes are hotter and
	// higher-IPC than the SpecInt/FP laggards.
	if byName["MP3dec"].IPC <= byName["twolf"].IPC {
		t.Error("multimedia IPC should exceed twolf")
	}
	if byName["MP3dec"].PowerW <= byName["twolf"].PowerW {
		t.Error("multimedia power should exceed twolf")
	}
	var sb strings.Builder
	WriteTable2(&sb, rows)
	if !strings.Contains(sb.String(), "MPGdec") {
		t.Error("Table 2 output missing applications")
	}
}

func TestFigure1(t *testing.T) {
	env := quickEnv()
	rows, err := Figure1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Figure 1 has %d rows, want 2 apps x 3 Tquals", len(rows))
	}
	// FIT grows as Tqual falls, for both applications.
	for app := 0; app < 2; app++ {
		base := app * 3
		if !(rows[base].FIT < rows[base+1].FIT && rows[base+1].FIT < rows[base+2].FIT) {
			t.Errorf("FIT not increasing with cheaper qualification: %+v", rows[base:base+3])
		}
	}
	// The hot app (MP3dec) has higher FIT than the cool app (twolf) at
	// every design point.
	for i := 0; i < 3; i++ {
		if rows[i].FIT <= rows[i+3].FIT {
			t.Errorf("hot app not above cool app at %vK", rows[i].TqualK)
		}
	}
	var sb strings.Builder
	WriteFigure1(&sb, rows)
	if !strings.Contains(sb.String(), "target") {
		t.Error("Figure 1 output missing target")
	}
}

func TestFigure2SingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	env := quickEnv()
	rows, err := Figure2(env, []trace.Profile{trace.Twolf()}, 0.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if len(r.RelPerf) != len(Figure2TqualsK) {
		t.Fatalf("series length %d", len(r.RelPerf))
	}
	// Monotone: cheaper qualification never improves performance.
	for i := 1; i < len(r.RelPerf); i++ {
		if r.RelPerf[i] > r.RelPerf[i-1]+1e-9 {
			t.Fatalf("RelPerf rose as Tqual fell: %v", r.RelPerf)
		}
	}
	// At the worst-case 400 K design point the app gains performance.
	if r.RelPerf[0] < 1 {
		t.Fatalf("no gain at Tqual=400K: %v", r.RelPerf[0])
	}
	var sb strings.Builder
	WriteFigure2(&sb, rows)
	if !strings.Contains(sb.String(), "twolf") {
		t.Error("Figure 2 output missing app")
	}
}

func TestFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	env := quickEnv()
	rows, err := Figure3(env, trace.Twolf(), 0.5e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d adaptation rows", len(rows))
	}
	byName := map[string][]float64{}
	for _, r := range rows {
		if len(r.RelPerf) != len(Figure3TqualsK) {
			t.Fatalf("series length %d", len(r.RelPerf))
		}
		byName[r.Adaptation] = r.RelPerf
	}
	// DVS and ArchDVS dominate Arch at every point (Section 7.2), and
	// ArchDVS is at least as good as DVS (it is a superset).
	for i := range Figure3TqualsK {
		if byName["Arch"][i] > byName["DVS"][i]+1e-9 {
			t.Errorf("Arch beat DVS at %vK", Figure3TqualsK[i])
		}
		if byName["DVS"][i] > byName["ArchDVS"][i]+1e-9 {
			t.Errorf("DVS beat ArchDVS at %vK", Figure3TqualsK[i])
		}
	}
	var sb strings.Builder
	WriteFigure3(&sb, "twolf", rows)
	if !strings.Contains(sb.String(), "ArchDVS") {
		t.Error("Figure 3 output missing adaptations")
	}
}

func TestFigure4SingleApp(t *testing.T) {
	env := quickEnv()
	rows, err := Figure4(env, []trace.Profile{trace.Gzip()}, 0.5e9)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if len(r.DRMFreqGHz) != len(Figure4TempsK) || len(r.DTMFreqGHz) != len(Figure4TempsK) {
		t.Fatalf("series lengths %d/%d", len(r.DRMFreqGHz), len(r.DTMFreqGHz))
	}
	// Both curves rise with temperature, and the DTM curve is steeper:
	// below the crossover DTM is slower, above it DTM is faster.
	dtmRange := r.DTMFreqGHz[len(r.DTMFreqGHz)-1] - r.DTMFreqGHz[0]
	drmRange := r.DRMFreqGHz[len(r.DRMFreqGHz)-1] - r.DRMFreqGHz[0]
	if dtmRange <= drmRange {
		t.Fatalf("DVS-Temp (%v GHz span) not steeper than DVS-Rel (%v GHz span)",
			dtmRange, drmRange)
	}
	if r.DTMFreqGHz[0] > r.DRMFreqGHz[0] {
		t.Fatalf("at the coldest point DTM should be the stricter constraint")
	}
	last := len(Figure4TempsK) - 1
	if r.DTMFreqGHz[last] < r.DRMFreqGHz[last] {
		t.Fatalf("at the hottest point DRM should be the stricter constraint")
	}
	var sb strings.Builder
	WriteFigure4(&sb, rows)
	if !strings.Contains(sb.String(), "DVS-Rel") || !strings.Contains(sb.String(), "DVS-Temp") {
		t.Error("Figure 4 output missing series")
	}
}
