// Technology-scaling study: the trend behind Section 1.2 and the
// paper's companion work ("The Impact of Scaling on Processor Lifetime
// Reliability", reference [20]). The same microarchitecture is ported
// across four process generations — die shrinking, clock and leakage
// rising, supply voltage barely moving — and each generation's lifetime
// reliability is evaluated with the identical RAMP methodology and an
// identical cooling solution.
package figures

import (
	"context"
	"fmt"
	"io"

	"ramp/internal/config"
	"ramp/internal/exp"
	"ramp/internal/obs"
	"ramp/internal/power"
	"ramp/internal/trace"
)

// ScalingRow is one technology generation's result, averaged over the
// sample applications.
type ScalingRow struct {
	NodeNM    float64
	DieMM2    float64
	VddV      float64
	FreqGHz   float64
	AvgPowerW float64
	DensityW  float64 // average power density, W/mm^2
	PeakTempK float64 // max across the sample apps
	AvgFIT    float64 // per-core suite-average FIT at the shared T_qual
	MTTFYears float64 // per-core MTTF
	PerfBIPS  float64 // suite-average throughput per core
	// FullDieFIT is the Section 1.2 "increasing transistor count" view:
	// a constant 155 mm^2 die (the 180 nm core's footprint) fully
	// populated with core instances at each node. Cores are a series
	// failure system (SOFR), so die FIT is per-core FIT times the
	// instance count (180/node)^2.
	FullDieFIT float64
}

// ScalingApps are the three contrasting sample applications used by the
// study (hot multimedia, mid int, cool int).
func ScalingApps() []trace.Profile {
	return []trace.Profile{trace.MP3dec(), trace.Bzip2(), trace.Twolf()}
}

// ScalingStudy runs the ladder. The qualification point (T_qual = 400 K
// with each node's own nominal V/f) and the package/cooling stack are
// held constant across generations, so the FIT trend isolates the
// technology effects: rising power density and leakage, non-scaling
// voltage.
func ScalingStudy(opts exp.Options) ([]ScalingRow, error) {
	return ScalingStudyObs(opts, nil, nil)
}

// ScalingStudyObs is ScalingStudy with observability: the study builds
// one environment per technology node internally, so callers cannot
// pre-instrument an Env — instead the tracer and registry passed here
// are attached to every per-node environment (nil disables either
// pillar, making this identical to ScalingStudy).
func ScalingStudyObs(opts exp.Options, tr *obs.Tracer, reg *obs.Registry) ([]ScalingRow, error) {
	base65 := config.Base()
	budget65 := power.DefaultMaxDynamic()
	ctx := context.Background()

	var rows []ScalingRow
	for _, node := range config.TechLadder() {
		if err := node.Validate(); err != nil {
			return nil, err
		}
		fp, err := exp.NewEnv(opts).FP.Scale(node.LinearScale())
		if err != nil {
			return nil, err
		}
		// Dynamic budget: switched capacitance scales with feature size,
		// power with C·V²·f.
		var budget power.Vector
		vr := node.VddV / base65.VddV
		fr := node.FreqHz / base65.FreqHz
		for i, w := range budget65 {
			budget[i] = w * node.LinearScale() * vr * vr * fr
		}
		env := exp.NewCustomEnv(node.Tech(), node.Proc(), fp, budget, opts).Instrument(tr, reg)
		qual := env.Qualification(400)
		_, nodeSpan := tr.Start(ctx, "figures.scaling.node")
		nodeSpan.Annotate(obs.Float("node_nm", node.NodeNM))

		row := ScalingRow{
			NodeNM:  node.NodeNM,
			DieMM2:  fp.TotalAreaMM2(),
			VddV:    node.VddV,
			FreqGHz: node.FreqHz / 1e9,
		}
		apps := ScalingApps()
		for _, app := range apps {
			r, err := env.Evaluate(app, env.Base, qual)
			if err != nil {
				return nil, fmt.Errorf("scaling %vnm/%s: %w", node.NodeNM, app.Name, err)
			}
			row.AvgPowerW += r.AvgW / float64(len(apps))
			row.AvgFIT += r.FIT() / float64(len(apps))
			row.PerfBIPS += r.BIPS / float64(len(apps))
			if r.MaxTempK > row.PeakTempK {
				row.PeakTempK = r.MaxTempK
			}
		}
		row.DensityW = row.AvgPowerW / row.DieMM2
		if row.AvgFIT > 0 {
			row.MTTFYears = 1e9 / row.AvgFIT / 8760
		}
		instances := (180.0 / node.NodeNM) * (180.0 / node.NodeNM)
		row.FullDieFIT = row.AvgFIT * instances
		nodeSpan.End()
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteScaling prints the study.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintf(w, "Technology scaling study (fixed microarchitecture, cooling and T_qual=400K)\n")
	fmt.Fprintf(w, "  %6s %8s %6s %7s %8s %9s %8s %10s %10s\n",
		"node", "die mm2", "Vdd", "GHz", "avg W", "W/mm2", "peak K", "core FIT", "die FIT")
	for _, r := range rows {
		fmt.Fprintf(w, "  %4.0fnm %8.1f %6.2f %7.1f %8.1f %9.2f %8.0f %10.0f %10.0f\n",
			r.NodeNM, r.DieMM2, r.VddV, r.FreqGHz, r.AvgPowerW, r.DensityW,
			r.PeakTempK, r.AvgFIT, r.FullDieFIT)
	}
	fmt.Fprintf(w, "  Per core, shrinking the same design helps (total power falls with C*V^2*f).\n")
	fmt.Fprintf(w, "  Per die, Section 1.2's transistor-count growth reverses the trend: a full\n")
	fmt.Fprintf(w, "  die packs (180/node)^2 cores whose failure rates add (SOFR), and past\n")
	fmt.Fprintf(w, "  ~90 nm the count growth plus leakage overwhelm the per-core gains.\n")
}
