// Package figures contains the experiment drivers: one function per
// table/figure of the paper's evaluation (Section 7). Each returns plain
// row data plus a Write function that prints the same rows/series the
// paper presents. The heavy lifting (simulate, power, thermal, RAMP,
// adaptation-space search) lives in exp, drm and dtm.
package figures

import (
	"context"
	"fmt"
	"io"
	"sort"

	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/exp"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
	"ramp/internal/trace"
)

// figSpan opens a root span for one figure/table regeneration on the
// environment's tracer (nil-safe: a disabled span when uninstrumented).
// Callers defer End on the result, so the span covers the whole driver.
func figSpan(e *exp.Env, name string) obs.Span {
	_, s := e.Trace.Start(context.Background(), name)
	return s
}

// Figure2TqualsK are the qualification temperatures of Figure 2.
var Figure2TqualsK = []float64{400, 370, 345, 325}

// Figure3TqualsK are the qualification temperatures swept in Figure 3.
var Figure3TqualsK = []float64{325, 335, 345, 360, 370, 400}

// Figure4TempsK are the temperatures of Figure 4 (T_qual for DRM, T_max
// for DTM).
var Figure4TempsK = []float64{325, 335, 345, 360, 370, 400}

// ---- Table 1 ----

// Table1 reproduces Table 1: the base processor's parameters. It is
// configuration, not measurement; regenerating it verifies the build's
// defaults against the paper.
type Table1 struct {
	Tech config.Tech
	Proc config.Proc
}

// NewTable1 returns the environment's Table 1.
func NewTable1(e *exp.Env) Table1 {
	return Table1{Tech: e.Tech, Proc: e.Base}
}

// Write prints the table.
func (t Table1) Write(w io.Writer) {
	p := t.Proc
	fmt.Fprintf(w, "Table 1: Base non-adaptive processor\n")
	fmt.Fprintf(w, "  Process technology            %.0f nm\n", t.Tech.ProcessNM)
	fmt.Fprintf(w, "  Vdd                           %.1f V\n", p.VddV)
	fmt.Fprintf(w, "  Processor frequency           %.1f GHz\n", p.FreqHz/1e9)
	fmt.Fprintf(w, "  Core size (no L2)             %.2f mm^2\n", floorplanArea())
	fmt.Fprintf(w, "  Leakage density @383K         %.1f W/mm^2\n", t.Tech.LeakageWPerMM2)
	fmt.Fprintf(w, "  Fetch/retire rate             %d per cycle\n", p.FetchWidth)
	fmt.Fprintf(w, "  Functional units              %d Int, %d FP, %d Addr gen\n", p.IntALUs, p.FPUs, p.AGUs)
	fmt.Fprintf(w, "  Int latencies                 %d/%d/%d add/mul/div\n", p.IntAddLat, p.IntMulLat, p.IntDivLat)
	fmt.Fprintf(w, "  FP latencies                  %d default, %d div (not pipelined)\n", p.FPLat, p.FPDivLat)
	fmt.Fprintf(w, "  Instruction window            %d entries\n", p.WindowSize)
	fmt.Fprintf(w, "  Register file                 %d int + %d FP\n", p.IntRegs, p.FPRegs)
	fmt.Fprintf(w, "  Memory queue                  %d entries\n", p.MemQueueSize)
	fmt.Fprintf(w, "  Branch prediction             %dKB bimodal agree, %d-entry RAS\n", p.BPredBytes/1024, p.RASEntries)
	fmt.Fprintf(w, "  L1D                           %dKB %d-way, %dB line, %d ports, %d MSHRs\n",
		p.L1D.SizeBytes/1024, p.L1D.Assoc, p.L1D.LineBytes, p.L1D.Ports, p.L1D.MSHRs)
	fmt.Fprintf(w, "  L1I                           %dKB %d-way\n", p.L1I.SizeBytes/1024, p.L1I.Assoc)
	fmt.Fprintf(w, "  L2 (off-chip)                 %dMB %d-way, hit %.0f cycles @4GHz\n",
		p.L2.SizeBytes/(1<<20), p.L2.Assoc, p.L2.HitLatencySec*4e9)
	fmt.Fprintf(w, "  Main memory                   %.0f cycles @4GHz\n", p.MemLatencySec*4e9)
}

func floorplanArea() float64 {
	return floorplan.R10000Like().TotalAreaMM2()
}

// ---- Table 2 ----

// Table2Row is one application's base-machine characterisation.
type Table2Row struct {
	App         string
	Class       string
	IPC         float64
	PowerW      float64
	PaperIPC    float64
	PaperPowerW float64
	MaxTempK    float64
}

// Table2 reproduces Table 2: per-application IPC and power (dynamic +
// leakage) on the base non-adaptive processor.
func Table2(e *exp.Env) ([]Table2Row, error) {
	defer figSpan(e, "figures.table2").End()
	apps := trace.Apps()
	qual := e.Qualification(400)
	jobs := make([]exp.EvalJob, len(apps))
	for i, a := range apps {
		jobs[i] = exp.EvalJob{App: a, Proc: e.Base, Qual: qual}
	}
	results, err := e.EvaluateAll(jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(apps))
	for i, a := range apps {
		rows[i] = Table2Row{
			App: a.Name, Class: a.Class,
			IPC: results[i].IPC, PowerW: results[i].AvgW,
			PaperIPC: a.PaperIPC, PaperPowerW: a.PaperPowerW,
			MaxTempK: results[i].MaxTempK,
		}
	}
	return rows, nil
}

// WriteTable2 prints Table 2 with paper reference columns.
func WriteTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: Workload description (base processor, 4 GHz)\n")
	fmt.Fprintf(w, "  %-8s %-11s %6s %6s   %9s %9s   %6s\n",
		"App", "Class", "IPC", "W", "IPC(ppr)", "W(ppr)", "Tmax K")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %-11s %6.2f %6.1f   %9.1f %9.1f   %6.0f\n",
			r.App, r.Class, r.IPC, r.PowerW, r.PaperIPC, r.PaperPowerW, r.MaxTempK)
	}
}

// ---- Figure 1 ----

// Figure1Row is one (application, T_qual) point: the application's FIT
// value on a processor qualified at that temperature.
type Figure1Row struct {
	App    string
	TqualK float64
	FIT    float64
	Meets  bool
}

// Figure1 reproduces the motivating figure: two contrasting applications
// (the hottest and one of the coolest) on three processors of decreasing
// qualification cost. On the expensive processor both meet the target;
// on the middle one only the cool application does; on the cheap one
// neither does.
func Figure1(e *exp.Env) ([]Figure1Row, error) {
	defer figSpan(e, "figures.figure1").End()
	apps := []trace.Profile{trace.MP3dec(), trace.Twolf()} // A: hot, B: cool
	// Three qualification cost points chosen so the paper's staircase
	// appears: on processor 1 both apps meet the target, on processor 2
	// only the cool app does, on processor 3 neither does.
	tquals := []float64{395, 353, 330}
	var rows []Figure1Row
	for _, app := range apps {
		r, err := e.Evaluate(app, e.Base, e.Qualification(400))
		if err != nil {
			return nil, err
		}
		for _, tq := range tquals {
			a, err := e.Requalify(r, e.Qualification(tq))
			if err != nil {
				return nil, err
			}
			rows = append(rows, Figure1Row{
				App: app.Name, TqualK: tq, FIT: a.TotalFIT,
				Meets: a.TotalFIT <= core.StandardTargetFIT,
			})
		}
	}
	return rows, nil
}

// WriteFigure1 prints the figure's data.
func WriteFigure1(w io.Writer, rows []Figure1Row) {
	fmt.Fprintf(w, "Figure 1: FIT vs qualification cost (target %d FIT)\n", core.StandardTargetFIT)
	fmt.Fprintf(w, "  %-8s %8s %10s %s\n", "App", "Tqual K", "FIT", "meets target?")
	for _, r := range rows {
		mark := "no (needs DRM throttling)"
		if r.Meets {
			mark = "yes (reliability slack)"
		}
		fmt.Fprintf(w, "  %-8s %8.0f %10.0f %s\n", r.App, r.TqualK, r.FIT, mark)
	}
}

// ---- sorting helpers shared by figure drivers ----

// SortRowsByAppOrder orders rows to match the paper's application order.
func appOrderIndex(name string) int {
	for i, a := range trace.Apps() {
		if a.Name == name {
			return i
		}
	}
	return len(trace.Apps())
}

// SortByAppOrder sorts any slice keyed by an App method via the given
// accessor.
func sortByApp[T any](rows []T, app func(T) string) {
	sort.SliceStable(rows, func(i, j int) bool {
		return appOrderIndex(app(rows[i])) < appOrderIndex(app(rows[j]))
	})
}
