package figures

import (
	"strings"
	"testing"

	"ramp/internal/exp"
)

func TestScalingStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	rows, err := ScalingStudy(exp.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ladder has %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.NodeNM >= prev.NodeNM {
			t.Fatal("ladder not ordered old->new")
		}
		if cur.DieMM2 >= prev.DieMM2 {
			t.Fatal("die not shrinking")
		}
		if cur.DensityW <= prev.DensityW {
			t.Fatalf("power density not rising with scaling: %v -> %v", prev.DensityW, cur.DensityW)
		}
		if cur.PerfBIPS <= prev.PerfBIPS {
			t.Fatalf("performance not rising with scaling: %v -> %v", prev.PerfBIPS, cur.PerfBIPS)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.NodeNM != 65 || first.NodeNM != 180 {
		t.Fatalf("ladder endpoints %v %v", first.NodeNM, last.NodeNM)
	}
	// Per-core FIT improves with the shrink; per constant-area die the
	// transistor-count growth must reverse the trend by 65 nm (the
	// Section 1.2 argument).
	if last.AvgFIT >= first.AvgFIT {
		t.Fatalf("per-core FIT did not improve: %v -> %v", first.AvgFIT, last.AvgFIT)
	}
	if last.FullDieFIT <= rows[2].FullDieFIT {
		t.Fatalf("die FIT did not turn upward at the newest node: %v -> %v",
			rows[2].FullDieFIT, last.FullDieFIT)
	}
	var sb strings.Builder
	WriteScaling(&sb, rows)
	if !strings.Contains(sb.String(), "65nm") {
		t.Fatal("output missing nodes")
	}
}
