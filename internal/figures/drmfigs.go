// Drivers for the DRM evaluation figures (Sections 7.1-7.3).
package figures

import (
	"fmt"
	"io"

	"ramp/internal/core"
	"ramp/internal/drm"
	"ramp/internal/dtm"
	"ramp/internal/exp"
	"ramp/internal/trace"
)

// Figure2Row is one application's DRM (ArchDVS) performance across
// qualification points, relative to the base non-adaptive processor.
type Figure2Row struct {
	App string
	// RelPerf[i] corresponds to Figure2TqualsK[i]. 1.0 = base performance.
	RelPerf []float64
	// Feasible[i] reports whether the FIT target was attainable at all;
	// when false, RelPerf holds the throttled-but-still-failing point.
	Feasible []bool
	// ChosenGHz[i] is the frequency of the selected configuration.
	ChosenGHz []float64
	// ChosenArch[i] names the selected microarchitecture.
	ChosenArch []string
}

// Figure2 reproduces Figure 2: ArchDVS DRM performance for all nine
// applications at T_qual in {400, 370, 345, 325} K.
// stepHz sets the DVS grid (0 = the oracle default of 0.125 GHz).
func Figure2(e *exp.Env, apps []trace.Profile, stepHz float64) ([]Figure2Row, error) {
	defer figSpan(e, "figures.figure2").End()
	if apps == nil {
		apps = trace.Apps()
	}
	oracle := drm.NewOracle(e)
	if stepHz > 0 {
		oracle.FreqStepHz = stepHz
	}
	rows := make([]Figure2Row, 0, len(apps))
	for _, app := range apps {
		sweep, err := oracle.Sweep(app, drm.ArchDVS)
		if err != nil {
			return nil, err
		}
		row := Figure2Row{
			App:        app.Name,
			RelPerf:    make([]float64, 0, len(Figure2TqualsK)),
			Feasible:   make([]bool, 0, len(Figure2TqualsK)),
			ChosenGHz:  make([]float64, 0, len(Figure2TqualsK)),
			ChosenArch: make([]string, 0, len(Figure2TqualsK)),
		}
		for _, tq := range Figure2TqualsK {
			choice, err := sweep.Select(e, e.Qualification(tq))
			if err != nil {
				return nil, err
			}
			row.RelPerf = append(row.RelPerf, choice.RelPerf)
			row.Feasible = append(row.Feasible, choice.Feasible)
			row.ChosenGHz = append(row.ChosenGHz, choice.Proc.FreqHz/1e9)
			row.ChosenArch = append(row.ChosenArch, choice.Proc.Name)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFigure2 prints the figure's series.
func WriteFigure2(w io.Writer, rows []Figure2Row) {
	fmt.Fprintf(w, "Figure 2: ArchDVS DRM performance relative to base (4 GHz)\n")
	fmt.Fprintf(w, "  %-8s", "App")
	for _, tq := range Figure2TqualsK {
		fmt.Fprintf(w, "  Tq=%3.0fK", tq)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s", r.App)
		for i, p := range r.RelPerf {
			mark := ' '
			if !r.Feasible[i] {
				mark = '!'
			}
			fmt.Fprintf(w, "  %6.3f%c", p, mark)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  ('!' = FIT target unattainable even fully throttled)\n")
}

// Figure3Row is one adaptation's performance across T_qual for a single
// application (the paper shows bzip2).
type Figure3Row struct {
	Adaptation string
	// RelPerf[i] corresponds to Figure3TqualsK[i].
	RelPerf  []float64
	Feasible []bool
}

// Figure3 reproduces Figure 3: Arch vs DVS vs ArchDVS for one
// application across qualification temperatures.
// stepHz sets the DVS grid (0 = the oracle default of 0.125 GHz).
func Figure3(e *exp.Env, app trace.Profile, stepHz float64) ([]Figure3Row, error) {
	defer figSpan(e, "figures.figure3").End()
	oracle := drm.NewOracle(e)
	if stepHz > 0 {
		oracle.FreqStepHz = stepHz
	}
	adaptations := []drm.Adaptation{drm.Arch, drm.DVS, drm.ArchDVS}
	rows := make([]Figure3Row, 0, len(adaptations))
	for _, a := range adaptations {
		sweep, err := oracle.Sweep(app, a)
		if err != nil {
			return nil, err
		}
		row := Figure3Row{
			Adaptation: a.String(),
			RelPerf:    make([]float64, 0, len(Figure3TqualsK)),
			Feasible:   make([]bool, 0, len(Figure3TqualsK)),
		}
		for _, tq := range Figure3TqualsK {
			choice, err := sweep.Select(e, e.Qualification(tq))
			if err != nil {
				return nil, err
			}
			row.RelPerf = append(row.RelPerf, choice.RelPerf)
			row.Feasible = append(row.Feasible, choice.Feasible)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFigure3 prints the figure's series.
func WriteFigure3(w io.Writer, app string, rows []Figure3Row) {
	fmt.Fprintf(w, "Figure 3: DRM adaptations compared (%s)\n", app)
	fmt.Fprintf(w, "  %-8s", "Tqual K")
	for _, tq := range Figure3TqualsK {
		fmt.Fprintf(w, " %8.0f", tq)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s", r.Adaptation)
		for i, p := range r.RelPerf {
			mark := ' '
			if !r.Feasible[i] {
				mark = '!'
			}
			fmt.Fprintf(w, " %7.3f%c", p, mark)
		}
		fmt.Fprintln(w)
	}
}

// Figure4Row holds, for one application, the DVS frequencies chosen by
// DRM (T_qual on the x-axis) and DTM (T_max on the x-axis).
type Figure4Row struct {
	App string
	// DRMFreqGHz[i] / DTMFreqGHz[i] correspond to Figure4TempsK[i].
	DRMFreqGHz []float64
	DTMFreqGHz []float64
	// DRMPeakK[i] is the peak temperature of the DRM choice — above the
	// x-axis temperature it violates the thermal constraint. DTMFit[i] is
	// the FIT of the DTM choice at qualification T — above the target it
	// violates the reliability constraint.
	DRMPeakK []float64
	DTMFit   []float64
}

// Figure4 reproduces Figure 4: the frequency chosen by DVS for DRM
// (DVS-Rel) and for DTM (DVS-Temp) at each temperature, for every
// application. The same DVS sweep feeds both controllers.
// stepHz sets the DVS grid (0 = the oracle default of 0.125 GHz).
func Figure4(e *exp.Env, apps []trace.Profile, stepHz float64) ([]Figure4Row, error) {
	defer figSpan(e, "figures.figure4").End()
	if apps == nil {
		apps = trace.Apps()
	}
	oracle := drm.NewOracle(e)
	if stepHz > 0 {
		oracle.FreqStepHz = stepHz
	}
	rows := make([]Figure4Row, 0, len(apps))
	for _, app := range apps {
		sweep, err := oracle.Sweep(app, drm.DVS)
		if err != nil {
			return nil, err
		}
		dtmSweep := &dtm.Sweep{App: app, Base: sweep.Base, Candidates: sweep.Candidates}
		row := Figure4Row{
			App:        app.Name,
			DRMFreqGHz: make([]float64, 0, len(Figure4TempsK)),
			DTMFreqGHz: make([]float64, 0, len(Figure4TempsK)),
			DRMPeakK:   make([]float64, 0, len(Figure4TempsK)),
			DTMFit:     make([]float64, 0, len(Figure4TempsK)),
		}
		for _, t := range Figure4TempsK {
			qual := e.Qualification(t)
			drmChoice, err := sweep.Select(e, qual)
			if err != nil {
				return nil, err
			}
			dtmChoice, err := dtmSweep.Select(t)
			if err != nil {
				return nil, err
			}
			row.DRMFreqGHz = append(row.DRMFreqGHz, drmChoice.Proc.FreqHz/1e9)
			row.DTMFreqGHz = append(row.DTMFreqGHz, dtmChoice.Proc.FreqHz/1e9)
			row.DRMPeakK = append(row.DRMPeakK, drmChoice.Result.MaxTempK)
			a, err := e.Requalify(dtmChoice.Result, qual)
			if err != nil {
				return nil, err
			}
			row.DTMFit = append(row.DTMFit, a.TotalFIT)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFigure4 prints the figure's series plus the cross-violation
// analysis the paper draws from it.
func WriteFigure4(w io.Writer, rows []Figure4Row) {
	fmt.Fprintf(w, "Figure 4: DVS frequency (GHz) chosen by DRM (Tqual) vs DTM (Tmax)\n")
	fmt.Fprintf(w, "  %-8s %-8s", "App", "policy")
	for _, t := range Figure4TempsK {
		fmt.Fprintf(w, " %7.0fK", t)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %-8s", r.App, "DVS-Rel")
		for _, f := range r.DRMFreqGHz {
			fmt.Fprintf(w, " %8.2f", f)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  %-8s %-8s", "", "DVS-Temp")
		for _, f := range r.DTMFreqGHz {
			fmt.Fprintf(w, " %8.2f", f)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n  Cross-violations (the paper's Section 7.3 argument):\n")
	for _, r := range rows {
		for i, t := range Figure4TempsK {
			if r.DRMPeakK[i] > t+0.01 {
				fmt.Fprintf(w, "  %-8s at %3.0fK: DRM choice %.2f GHz peaks at %.0fK — violates the thermal limit\n",
					r.App, t, r.DRMFreqGHz[i], r.DRMPeakK[i])
			}
			if r.DTMFit[i] > core.StandardTargetFIT {
				fmt.Fprintf(w, "  %-8s at %3.0fK: DTM choice %.2f GHz has FIT %.0f — violates the reliability target\n",
					r.App, t, r.DTMFreqGHz[i], r.DTMFit[i])
			}
		}
	}
}
