package figures

import (
	"strings"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/sched"
)

// TestManycoreSweep smoke-tests the driver on tiny die sizes: one row
// per (N, policy), a positive baseline, N=1 policies coinciding, and a
// rendered table mentioning every policy.
func TestManycoreSweep(t *testing.T) {
	env := exp.NewEnv(exp.QuickOptions())
	table, err := ManycoreSweepEpochs(env, []int{1, 2}, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2*len(sched.Policies()) {
		t.Fatalf("got %d rows, want %d", len(table.Rows), 2*len(sched.Policies()))
	}
	if table.BaselineFIT <= 0 || table.BaselineYrs <= 0 {
		t.Fatalf("bad baseline: %+v", table)
	}
	n1 := table.Rows[:len(sched.Policies())]
	for _, r := range n1[1:] {
		if r.LifetimeYears != n1[0].LifetimeYears || r.BIPS != n1[0].BIPS {
			t.Fatalf("N=1 policies differ: %+v vs %+v", r, n1[0])
		}
	}
	var sb strings.Builder
	table.Write(&sb)
	out := sb.String()
	for _, p := range sched.Policies() {
		if !strings.Contains(out, p.String()) {
			t.Fatalf("rendered table missing policy %v:\n%s", p, out)
		}
	}
}
