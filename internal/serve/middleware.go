// Request middleware: the one place every HTTP response — success,
// validation error, or load-shed — passes through. It owns the three
// per-request observability concerns so handlers stay pure:
//
//   - Request IDs: an inbound X-Request-ID is honored (after
//     sanitizing); otherwise one is minted from process-start time plus
//     an atomic sequence (no RNG — the repo's determinism lint forbids
//     non-test randomness). The ID is echoed on every response,
//     including 429/504 sheds, and threaded through the context for
//     spans and job logs.
//   - Spans: each request opens a fresh track on the env's tracer (nil
//     when the server is uninstrumented), annotated with method, path,
//     status and request ID.
//   - Access logs: one structured line per request on cfg.Log.
package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"ramp/internal/obs"
)

// requestIDHeader is the inbound/outbound request-ID header.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted inbound IDs; longer ones are replaced
// (not truncated, to avoid colliding distinct client IDs).
const maxRequestIDLen = 128

var (
	// reqEpoch + reqSeq make process-unique request IDs without randomness.
	reqEpoch = time.Now().UnixNano()
	reqSeq   atomic.Uint64
)

// nextRequestID mints a process-unique request ID.
func nextRequestID() string {
	return fmt.Sprintf("ramp-%x-%x", reqEpoch, reqSeq.Add(1))
}

// sanitizeRequestID reports whether an inbound ID is safe to echo:
// non-empty, bounded, and printable ASCII without spaces (header
// injection is already impossible through net/http, but log lines and
// trace attributes deserve the same hygiene).
func sanitizeRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// statusWriter captures the response status for the span and access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers
// (/v1/metrics/stream) can push frames through the middleware wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware wraps next with request-ID plumbing, a per-request span on
// the env's tracer, and an access log line.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()

		id := r.Header.Get(requestIDHeader)
		if !sanitizeRequestID(id) {
			id = nextRequestID()
		}
		// Set the echo header up front so every write path — including
		// writeJobError's 429/504/499 sheds — carries it.
		w.Header().Set(requestIDHeader, id)

		ctx := obs.WithRequestID(r.Context(), id)
		ctx, span := s.env.Trace.StartTrack(ctx, "serve.request")
		if span.Enabled() {
			span.Annotate(
				obs.Str("method", r.Method),
				obs.Str("path", r.URL.Path),
				obs.Str("request_id", id),
			)
		}

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}

		span.AnnotateInt("status", int64(sw.status))
		span.End()
		s.log.Info("request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1e3,
		)
	})
}
