package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ramp/internal/exp"
)

// fleetBody is a small, fast fleet request used across the tests: the
// minimum population with every scenario knob engaged.
const fleetBody = `{"app":"gzip","chips":2000,"tquals_k":[400,370],"duty":0.8,"spares":1}`

func TestFleetEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	status, body := post(t, hs.URL+"/v1/fleet", fleetBody)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp FleetResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.App != "gzip" || resp.Chips != 2000 || resp.Seed != 1 || resp.HorizonYears != 30 {
		t.Errorf("normalized fields wrong: %+v", resp)
	}
	// 2 tquals x 4 scenarios (nominal, checkpoint, repair, both).
	if len(resp.Results) != 8 {
		t.Fatalf("got %d result rows, want 8", len(resp.Results))
	}
	for _, row := range resp.Results {
		if row.MeanYears <= 0 {
			t.Errorf("%g/%s: mean_years %g not positive", row.TqualK, row.Scenario, row.MeanYears)
		}
		prev := 1.0
		for k, s := range row.Survival {
			if s < 0 || s > prev {
				t.Fatalf("%g/%s: survival not monotone at bin %d", row.TqualK, row.Scenario, k)
			}
			prev = s
		}
	}
	// Rows are policy-major in request order; a lower qualification
	// temperature means higher assessed FIT, so its fleet cannot return
	// fewer parts than the 400 K policy under the same scenario.
	if resp.Results[0].Scenario != "nominal" || resp.Results[4].Scenario != "nominal" {
		t.Fatalf("unexpected row order: %+v", resp.Results)
	}
	if resp.Results[4].ReturnRate11 < resp.Results[0].ReturnRate11 {
		t.Errorf("tq370 returns %g < tq400 returns %g", resp.Results[4].ReturnRate11, resp.Results[0].ReturnRate11)
	}
}

func TestFleetResponseCache(t *testing.T) {
	s, hs := newTestServer(t)
	_, first := post(t, hs.URL+"/v1/fleet", fleetBody)
	misses := s.Env().CacheStats().Misses
	_, second := post(t, hs.URL+"/v1/fleet", fleetBody)
	if first != second {
		t.Error("identical fleet requests returned different bodies")
	}
	if st := s.Env().CacheStats(); st.Misses != misses {
		t.Errorf("cached fleet repeat re-simulated (misses %d -> %d)", misses, st.Misses)
	}
	// A different spelling of the same simulation hits the same key.
	_, third := post(t, hs.URL+"/v1/fleet",
		`{"app":"gzip","chips":2000,"seed":1,"tquals_k":[400,370],"duty":0.8,"spares":1,"horizon_years":30}`)
	if third != first {
		t.Error("normalized-equal fleet requests returned different bodies")
	}
}

func TestFleetValidation(t *testing.T) {
	_, hs := newTestServer(t)
	for _, tc := range []struct{ name, body string }{
		{"unknown app", `{"app":"nonesuch"}`},
		{"unknown field", `{"app":"gzip","chip":5}`},
		{"chips too small", `{"app":"gzip","chips":10}`},
		{"chips too large", `{"app":"gzip","chips":99000000}`},
		{"bad tqual", `{"app":"gzip","tquals_k":[100]}`},
		{"too many tquals", `{"app":"gzip","tquals_k":[400,399,398,397,396,395,394,393,392]}`},
		{"bad duty", `{"app":"gzip","duty":1.5}`},
		{"bad spares", `{"app":"gzip","spares":10}`},
		{"bad horizon", `{"app":"gzip","horizon_years":1000}`},
	} {
		status, body := post(t, hs.URL+"/v1/fleet", tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, status, body)
		}
	}
}

func TestFleetMetricsExposed(t *testing.T) {
	s, hs := newTestServer(t)
	post(t, hs.URL+"/v1/fleet", fleetBody)
	snap := s.snapshotMetrics()
	if snap.RequestsTotal["fleet"] != 1 {
		t.Errorf("requests_total[fleet] = %d, want 1", snap.RequestsTotal["fleet"])
	}
	if snap.LatencyUS["fleet"].Count != 1 {
		t.Errorf("latency_us[fleet].count = %d, want 1", snap.LatencyUS["fleet"].Count)
	}
}

// FuzzFleetRequest drives the full decode→normalize path with
// arbitrary JSON: it must never panic, and normalization must be
// idempotent — normalizing an already-normalized request reproduces the
// same cache key, so equal simulations always share one cache row.
func FuzzFleetRequest(f *testing.F) {
	f.Add(fleetBody)
	f.Add(`{"app":"gzip"}`)
	f.Add(`{"app":"twolf","chips":1000,"seed":18446744073709551615,"tquals_k":[250,500]}`)
	f.Add(`{}`)
	f.Add(`{"app":"gzip","freq_hz":4.5e9,"window":32,"alus":2,"fpus":1}`)
	f.Add(`not json at all`)
	f.Add(`{"app":"gzip","duty":1e-9,"spares":4,"horizon_years":100}`)
	s := New(exp.NewEnv(tinyOptions()), tinyConfig())
	f.Fuzz(func(t *testing.T, body string) {
		r := httptest.NewRequest(http.MethodPost, "/v1/fleet", strings.NewReader(body))
		var req FleetRequest
		if err := decodeRequest(r, &req); err != nil {
			return
		}
		_, key1, err := s.normalizeFleet(&req)
		if err != nil {
			return
		}
		if key1 == "" {
			t.Fatal("accepted request produced an empty cache key")
		}
		_, key2, err := s.normalizeFleet(&req)
		if err != nil {
			t.Fatalf("re-normalizing a normalized request failed: %v", err)
		}
		if key1 != key2 {
			t.Fatalf("normalization not idempotent: %q vs %q", key1, key2)
		}
	})
}
