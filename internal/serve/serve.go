// Package serve exposes the evaluation pipeline as a long-running HTTP
// service: the first piece of the codebase that runs as a resident
// system rather than a batch CLI. One shared exp.Env backs every
// request, so the content-keyed result cache warms monotonically — the
// service answers repeated design-space queries (the way EM-aware
// design rules are consulted at design time) from memory, and
// concurrent identical requests collapse onto one simulation via the
// cache's singleflight.
//
// Endpoints:
//
//	POST /v1/evaluate  one (app, configuration, T_qual) evaluation
//	POST /v1/sweep     a DRM adaptation-space sweep with per-T_qual selection
//	POST /v1/fleet     a fleet-scale Monte Carlo lifetime simulation
//	GET  /v1/healthz   liveness + cache occupancy
//	GET  /metrics      expvar-style counters and latency histograms (JSON)
//	GET  /debug/pprof  live pprof (internal/profiling.RegisterHTTP)
//
// Concurrency model: requests are validated on the handler goroutine,
// then admitted to a bounded pool (workers + queue depth); admission
// failure is an immediate 429. Admitted jobs carry a per-request
// context deadline that threads all the way into the simulator's epoch
// loop, so abandoned requests stop burning simulation time. Shutdown is
// graceful: the listener closes, in-flight requests finish (bounded by
// the drain timeout), then Serve returns.
package serve

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"time"

	"ramp/internal/exp"
	"ramp/internal/obs"
	"ramp/internal/profiling"
)

// Config tunes the service. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Addr is the listen address (host:port; port 0 picks a free port).
	Addr string
	// Workers bounds concurrently running evaluations (minimum 1).
	Workers int
	// QueueDepth bounds admitted-but-waiting jobs; admission beyond
	// Workers+QueueDepth sheds with 429.
	QueueDepth int
	// RequestTimeout caps one job's wall-clock time (0 = no deadline;
	// the client's connection context still cancels).
	RequestTimeout time.Duration
	// DrainTimeout caps graceful shutdown: how long in-flight requests
	// get to finish after SIGTERM before the server gives up on them.
	DrainTimeout time.Duration
	// FreqStepHz is the default DVS grid for sweeps that don't set one.
	FreqStepHz float64
	// EnablePprof mounts /debug/pprof/ handlers.
	EnablePprof bool
	// Log receives per-request access logs and server lifecycle events
	// (nil = discard). Request logs carry the request ID, method, path,
	// status and duration.
	Log *slog.Logger
}

// DefaultConfig returns production-leaning defaults: one worker per
// core (the exp pool parallelizes internally per job, so a small worker
// count already saturates the machine), a shallow queue, and deadlines
// generous enough for a full ArchDVS sweep.
func DefaultConfig() Config {
	return Config{
		Addr:           ":8080",
		Workers:        4,
		QueueDepth:     64,
		RequestTimeout: 5 * time.Minute,
		DrainTimeout:   30 * time.Second,
		FreqStepHz:     0.125e9,
		EnablePprof:    true,
	}
}

// Server is the rampserve HTTP service. Create with New; it is safe for
// concurrent use and for one Serve call.
type Server struct {
	cfg     Config
	env     *exp.Env
	pool    *pool
	metrics *metrics
	fleet   fleetCache
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the request middleware
	log     *slog.Logger

	// addr publishes the bound listener address once Serve starts.
	addr chan net.Addr

	// draining closes when graceful shutdown begins, so long-lived
	// handlers (/v1/metrics/stream subscribers) return promptly and
	// http.Server.Shutdown never waits on them.
	draining chan struct{}
}

// New builds a Server over env (which owns the evaluation cache; pass a
// long-lived Env so the cache survives across requests). If env is
// instrumented (exp.Env.Instrument), every request gets a span on the
// env's tracer and /metrics exposes the pipeline registry alongside the
// server's own counters.
func New(env *exp.Env, cfg Config) *Server {
	m := newMetrics()
	log := cfg.Log
	if log == nil {
		log = obs.Discard()
	}
	s := &Server{
		cfg:      cfg,
		env:      env,
		pool:     newPool(cfg.Workers, cfg.QueueDepth, m),
		metrics:  m,
		mux:      http.NewServeMux(),
		log:      log,
		addr:     make(chan net.Addr, 1),
		draining: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/fleet", s.handleFleet)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/metrics/stream", s.handleMetricsStream)
	if cfg.EnablePprof {
		profiling.RegisterHTTP(s.mux)
	}
	s.handler = s.middleware(s.mux)
	return s
}

// Handler returns the routing handler wrapped in the request middleware
// — request-ID plumbing, per-request spans and access logs (for
// httptest and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// Env returns the server's evaluation environment (tests assert on its
// cache statistics).
func (s *Server) Env() *exp.Env { return s.env }

// Addr blocks until Serve has bound its listener and returns the bound
// address (useful with port 0).
func (s *Server) Addr() net.Addr {
	a := <-s.addr
	s.addr <- a
	return a
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled
// (SIGTERM in cmd/rampserve), then drains gracefully.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the HTTP service on ln until ctx is cancelled, then shuts
// down gracefully: stop accepting, let in-flight requests (and their
// queued jobs) finish within DrainTimeout, and return nil on a clean
// drain. It owns ln.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.handler}
	select {
	case s.addr <- ln.Addr():
	default:
	}

	// The goroutine terminates exactly when Serve returns — on listener
	// failure or on the Shutdown below — handing its result off through
	// the buffered channel either way (goroleak: the send is its escape
	// route).
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed on its own; nothing to drain.
		return err
	case <-ctx.Done():
	}

	// Unblock stream subscribers before Shutdown starts waiting on
	// in-flight connections; otherwise an open stream would pin the
	// drain until its client disconnected.
	close(s.draining)

	drainCtx := context.Background()
	var cancel context.CancelFunc = func() {}
	if s.cfg.DrainTimeout > 0 {
		drainCtx, cancel = context.WithTimeout(drainCtx, s.cfg.DrainTimeout)
	}
	defer cancel()
	err := hs.Shutdown(drainCtx)
	if serveRes := <-serveErr; serveRes != nil && !errors.Is(serveRes, http.ErrServerClosed) && err == nil {
		err = serveRes
	}
	return err
}
