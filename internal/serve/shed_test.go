// Shed-path observability: 429s and 504s must stay fully attributable —
// every shed response echoes (or mints) an X-Request-ID, bumps the
// right counters, and touches exactly the latency families its request
// actually exercised. A 429 never reached the pool, so no latency
// family moves; a 504's evaluation did run (to cancellation), so the
// compute family records it.
package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ramp/internal/exp"
)

func TestShed429MintsRequestIDAndSkipsLatency(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 0
	s := New(exp.NewEnv(tinyOptions()), cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Saturate admission deterministically by taking the only token.
	s.pool.admit <- struct{}{}
	defer func() { <-s.pool.admit }()

	// No inbound ID: the middleware must mint one even on the shed path.
	resp, err := http.Post(hs.URL+"/v1/evaluate", "application/json",
		strings.NewReader(`{"app":"twolf"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(id, "ramp-") {
		t.Errorf("429 did not mint a request ID: got %q", id)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("429 missing Retry-After")
	}

	if shed := s.metrics.shed.Load(); shed != 1 {
		t.Errorf("shed_total = %d, want 1", shed)
	}
	if r4 := s.metrics.responses4xx.Load(); r4 != 1 {
		t.Errorf("responses_4xx = %d, want 1", r4)
	}
	// The request never held a worker slot: no latency family may move.
	snap := s.snapshotMetrics()
	for _, family := range []string{"queue_wait", "evaluate", "sweep", "fleet"} {
		if n := snap.LatencyUS[family].Count; n != 0 {
			t.Errorf("latency_us[%s].count = %d after a pure shed, want 0", family, n)
		}
	}
}

func TestShed504RecordsComputeLatency(t *testing.T) {
	cfg := tinyConfig()
	cfg.RequestTimeout = time.Millisecond // expires mid-evaluation
	s := New(exp.NewEnv(exp.QuickOptions()), cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/evaluate",
		strings.NewReader(`{"app":"MPGdec"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "timeout-probe-9")
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "timeout-probe-9" {
		t.Errorf("504 lost the request ID: got %q", got)
	}

	if s.metrics.timeouts.Load() != 1 {
		t.Errorf("timeout_total = %d, want 1", s.metrics.timeouts.Load())
	}
	if r5 := s.metrics.responses5xx.Load(); r5 != 1 {
		t.Errorf("responses_5xx = %d, want 1", r5)
	}
	snap := s.snapshotMetrics()
	// The evaluation ran until the deadline canceled it: its (truncated)
	// compute time belongs in the evaluate family, and admission was
	// granted, so queue_wait observed too.
	if n := snap.LatencyUS["evaluate"].Count; n != 1 {
		t.Errorf("latency_us[evaluate].count = %d after 504, want 1", n)
	}
	if n := snap.LatencyUS["queue_wait"].Count; n != 1 {
		t.Errorf("latency_us[queue_wait].count = %d after 504, want 1", n)
	}
	// The other compute families saw nothing.
	for _, family := range []string{"sweep", "fleet"} {
		if n := snap.LatencyUS[family].Count; n != 0 {
			t.Errorf("latency_us[%s].count = %d, want 0", family, n)
		}
	}
}
