package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/obs"
)

// syncBuffer makes a bytes.Buffer safe to read from the test goroutine
// while the server goroutine is still logging.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	_, hs := newTestServer(t)

	// No inbound ID: the server mints one.
	resp, err := http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(gen, "ramp-") {
		t.Errorf("generated request ID = %q, want ramp- prefix", gen)
	}

	// A sane inbound ID is honored verbatim.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "client-abc.123")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-abc.123" {
		t.Errorf("inbound request ID not echoed: got %q", got)
	}

	// A hostile inbound ID (too long) is replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, hs.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", maxRequestIDLen+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "ramp-") {
		t.Errorf("oversized inbound ID should be replaced, got %q", got)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abc-123", true},
		{"A_b.C~", true},
		{"", false},
		{"has space", false},
		{"tab\there", false},
		{"café", false},
		{strings.Repeat("y", maxRequestIDLen), true},
		{strings.Repeat("y", maxRequestIDLen+1), false},
	}
	for _, c := range cases {
		if got := sanitizeRequestID(c.id); got != c.ok {
			t.Errorf("sanitizeRequestID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

// TestRequestIDOnShedResponses pins the middleware ordering: the echo
// header is set before the handler runs, so even 429 load-sheds (which
// write through writeJobError, not the success path) carry it.
func TestRequestIDOnShedResponses(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 0
	s := New(exp.NewEnv(tinyOptions()), cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	s.pool.admit <- struct{}{} // saturate admission
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/evaluate", strings.NewReader(`{"app":"twolf"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "shed-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-s.pool.admit
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "shed-probe-1" {
		t.Errorf("429 response lost the request ID: got %q", got)
	}
}

func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	cfg := tinyConfig()
	cfg.Log = obs.NewLogger(&buf, slog.LevelInfo, true)
	s := New(exp.NewEnv(tinyOptions()), cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "log-probe-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log is not one JSON line: %v (%q)", err, line)
	}
	if entry["request_id"] != "log-probe-7" ||
		entry["method"] != http.MethodGet ||
		entry["path"] != "/v1/healthz" ||
		entry["status"] != float64(http.StatusOK) {
		t.Errorf("access log fields wrong: %v", entry)
	}
	if d, ok := entry["dur_ms"].(float64); !ok || d < 0 {
		t.Errorf("access log duration missing/negative: %v", entry["dur_ms"])
	}
}

// TestRequestSpans checks a server over an instrumented env records one
// serve.request span per request, annotated with status and request ID.
func TestRequestSpans(t *testing.T) {
	tr := obs.NewTracer()
	env := exp.NewEnv(tinyOptions()).Instrument(tr, obs.NewRegistry())
	s := New(env, tinyConfig())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "span-probe-3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var reqSpans []obs.SpanEvent
	for _, ev := range tr.Events() {
		if ev.Name == "serve.request" {
			reqSpans = append(reqSpans, ev)
		}
	}
	if len(reqSpans) != 1 {
		t.Fatalf("serve.request spans = %d, want 1", len(reqSpans))
	}
	attrs := map[string]any{}
	for _, a := range reqSpans[0].Attrs {
		attrs[a.Key] = a.Value()
	}
	if attrs["path"] != "/v1/healthz" || attrs["request_id"] != "span-probe-3" {
		t.Errorf("span attrs wrong: %v", attrs)
	}
	if attrs["status"] != int64(http.StatusOK) {
		t.Errorf("span status = %v, want 200", attrs["status"])
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	env := exp.NewEnv(tinyOptions()).Instrument(tr, reg)
	s := New(env, tinyConfig())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	if status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"twolf"}`); status != http.StatusOK {
		t.Fatalf("evaluate: status %d, body %s", status, body)
	}

	// Default stays JSON.
	status, body := get(t, hs.URL+"/metrics")
	if status != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("default /metrics should be JSON: status %d, body %.80s", status, body)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Pipeline == nil || snap.Pipeline.Counters[exp.MetricEvaluations] != 1 {
		t.Errorf("instrumented JSON snapshot missing pipeline section: %+v", snap.Pipeline)
	}

	// ?format=prom switches to text exposition.
	status, body = get(t, hs.URL+"/metrics?format=prom")
	if status != http.StatusOK {
		t.Fatalf("prom scrape: status %d", status)
	}
	for _, want := range []string{
		"# TYPE rampserve_requests_total counter",
		`rampserve_requests_total{route="evaluate"} 1`,
		`rampserve_responses_total{class="2xx"}`,
		"# TYPE rampserve_latency_us histogram",
		`rampserve_latency_us_bucket{route="evaluate",le="+Inf"} 1`,
		`rampserve_latency_us_count{route="evaluate"} 1`,
		"# TYPE rampserve_cache_misses_total counter",
		"rampserve_cache_misses_total 1",
		// Pipeline registry rides along under the ramp_ prefix.
		"# TYPE ramp_" + exp.MetricEvaluations + " counter",
		"ramp_" + exp.MetricEvaluations + " 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// Accept: text/plain also negotiates the text format.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 64)
	n, _ := resp.Body.Read(b)
	resp.Body.Close()
	if !strings.HasPrefix(string(b[:n]), "# TYPE") {
		t.Errorf("Accept: text/plain should negotiate prom text, got %q", string(b[:n]))
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("prom content type = %q", ct)
	}
}
