// Coverage for GET /v1/metrics/stream: frame contents and formats,
// request-ID correlation, concurrent subscribers under load (the -race
// lane), goroutine hygiene after disconnect, and drain compliance on
// graceful shutdown.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ramp/internal/exp"
	"ramp/internal/obs"
)

// readStreamFrames subscribes and decodes n NDJSON frames.
func readStreamFrames(t *testing.T, baseURL, params string) (*http.Response, []streamFrame) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics/stream?" + params)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("subscribe: status %d: %s", resp.StatusCode, b)
	}
	var frames []streamFrame
	dec := json.NewDecoder(resp.Body)
	for {
		var f streamFrame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return resp, frames
			}
			t.Fatalf("decode frame %d: %v", len(frames), err)
		}
		frames = append(frames, f)
	}
}

func TestMetricsStreamNDJSON(t *testing.T) {
	_, hs := newTestServer(t)

	// Unbounded stream; the client disconnects when it has seen enough.
	resp, err := http.Get(hs.URL + "/v1/metrics/stream?window=50ms&format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("stream response missing X-Request-ID")
	}
	// If the handler wedges, unblock the decoder below.
	watchdog := time.AfterFunc(30*time.Second, func() { resp.Body.Close() })
	defer watchdog.Stop()

	dec := json.NewDecoder(resp.Body)
	next := func() streamFrame {
		t.Helper()
		var f streamFrame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		return f
	}

	// The first frame proves the stream is live and its baseline primed;
	// traffic sent after it MUST appear in later deltas.
	first := next()
	for i := 0; i < 3; i++ {
		post(t, hs.URL+"/v1/evaluate", `{"app":"twolf"}`)
	}

	var evals, resps, latCount int64
	seq := first.Seq
	for f := first; evals < 3 || latCount < 3; f = next() {
		if f.Seq != seq {
			t.Fatalf("frame seq %d, want %d (gap or reorder)", f.Seq, seq)
		}
		seq++
		if f.RequestID != reqID {
			t.Errorf("frame request_id = %q, want %q (header)", f.RequestID, reqID)
		}
		if f.WindowSec <= 0 {
			t.Errorf("frame %d window_sec = %g", f.Seq, f.WindowSec)
		}
		evals += f.Delta.Counters["requests_evaluate"]
		resps += f.Delta.Counters["responses_2xx"]
		latCount += f.Delta.Histograms["latency_us_evaluate"].Count
	}
	if evals != 3 {
		t.Errorf("streamed evaluate deltas sum to %d, want exactly 3", evals)
	}
	if resps < 3 {
		t.Errorf("streamed 2xx deltas sum to %d, want >= 3", resps)
	}
	if latCount != 3 {
		t.Errorf("latency_us_evaluate deltas sum to %d, want exactly 3", latCount)
	}
}

func TestMetricsStreamSSE(t *testing.T) {
	_, hs := newTestServer(t)
	resp, err := http.Get(hs.URL + "/v1/metrics/stream?window=50ms&n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events, datas int
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: metrics":
			events++
		case strings.HasPrefix(line, "data: "):
			datas++
			var f streamFrame
			if err := json.Unmarshal([]byte(line[len("data: "):]), &f); err != nil {
				t.Fatalf("bad SSE data line: %v\n%s", err, line)
			}
		case line == "":
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if events != 2 || datas != 2 {
		t.Errorf("got %d event lines and %d data lines, want 2 and 2", events, datas)
	}
}

func TestMetricsStreamBadParams(t *testing.T) {
	_, hs := newTestServer(t)
	for _, params := range []string{"window=banana", "n=-3", "n=x", "format=xml"} {
		resp, err := http.Get(hs.URL + "/v1/metrics/stream?" + params)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("params %q: status %d, want 400", params, resp.StatusCode)
		}
		if resp.Header.Get("X-Request-ID") == "" {
			t.Errorf("params %q: 400 response missing X-Request-ID", params)
		}
	}
}

// TestMetricsStreamConcurrentSubscribers opens 32 streams while a sweep
// hammer runs, asserts every subscriber gets its frames, and checks the
// subscriber goroutines are gone after disconnect.
func TestMetricsStreamConcurrentSubscribers(t *testing.T) {
	s, hs := newTestServer(t)
	time.Sleep(20 * time.Millisecond) // let unrelated runtime goroutines settle
	baseline := runtime.NumGoroutine()

	var hammerWG sync.WaitGroup
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		hammer(t, hs.URL+"/v1/sweep", []string{`{"app":"twolf","adaptation":"DVS","tquals_k":[400,345]}`})
	}()

	var subWG sync.WaitGroup
	frameCounts := make([]int, hammerGoroutines)
	for i := 0; i < hammerGoroutines; i++ {
		subWG.Add(1)
		go func(i int) {
			defer subWG.Done()
			resp, err := http.Get(hs.URL + "/v1/metrics/stream?window=50ms&n=3&format=ndjson")
			if err != nil {
				t.Errorf("subscriber %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			dec := json.NewDecoder(resp.Body)
			for {
				var f streamFrame
				if err := dec.Decode(&f); err != nil {
					if err != io.EOF {
						t.Errorf("subscriber %d: %v", i, err)
					}
					return
				}
				frameCounts[i]++
			}
		}(i)
	}
	subWG.Wait()
	hammerWG.Wait()

	for i, n := range frameCounts {
		if n != 3 {
			t.Errorf("subscriber %d got %d frames, want 3", i, n)
		}
	}
	if got := s.metrics.requestsStream.Load(); got != hammerGoroutines {
		t.Errorf("requests_total[stream] = %d, want %d", got, hammerGoroutines)
	}

	// All subscriber handler goroutines must unwind after disconnect.
	// Parked keep-alive connections hold goroutines on both sides, so
	// flush the idle pool while waiting — anything still alive after
	// that is a real leak.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsStreamDrainOnShutdown opens an unbounded stream and then
// cancels the serve context: the draining channel must end the stream
// and Serve must return promptly instead of waiting out the subscriber.
func TestMetricsStreamDrainOnShutdown(t *testing.T) {
	cfg := tinyConfig()
	cfg.DrainTimeout = 30 * time.Second
	s := New(exp.NewEnv(tinyOptions()), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	resp, err := http.Get(url + "/v1/metrics/stream?window=50ms") // n omitted: unbounded
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read one frame so we know the stream is live, then shut down.
	sc := bufio.NewScanner(resp.Body)
	foundData := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			foundData = true
			break
		}
	}
	if !foundData {
		t.Fatalf("stream never produced a frame: %v", sc.Err())
	}
	cancel()

	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v (want nil: stream must not pin the drain)", err)
		}
	case <-time.After(cfg.DrainTimeout):
		t.Fatal("Serve never returned: open stream pinned the drain")
	}
	// The subscriber's connection ends too.
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() {
		if time.Now().After(deadline) {
			t.Fatal("stream kept producing after drain")
		}
	}
}

// TestStreamPipelineMerge asserts an instrumented env's pipeline
// instruments ride along in stream frames.
func TestStreamPipelineMerge(t *testing.T) {
	reg := obs.NewRegistry()
	env := exp.NewEnv(tinyOptions()).Instrument(obs.NewTracer(), reg)
	s := New(env, tinyConfig())
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, hs.URL+"/v1/evaluate", `{"app":"gzip"}`)
	}()
	_, frames := readStreamFrames(t, hs.URL, "window=50ms&n=4&format=ndjson")
	<-done

	var epochs int64
	for _, f := range frames {
		for name, v := range f.Delta.Counters {
			if strings.Contains(name, "epoch") {
				epochs += v
			}
		}
	}
	if epochs == 0 {
		names := map[string]bool{}
		for _, f := range frames {
			for name := range f.Delta.Counters {
				names[name] = true
			}
		}
		t.Errorf("no pipeline epoch counters streamed; saw %v", names)
	}
}
