package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/drm"
	"ramp/internal/exp"
	"ramp/internal/trace"
)

// maxBodyBytes bounds request bodies; every valid request is a few
// hundred bytes of JSON.
const maxBodyBytes = 1 << 16

// EvaluateRequest asks for one (application, configuration,
// qualification) evaluation. Zero-valued fields mean "base machine":
// requests that describe the same configuration through different
// spellings (explicit base values vs. omitted fields) normalize to the
// same processor and therefore the same exp cache key, so they share
// one simulation.
type EvaluateRequest struct {
	App string `json:"app"`
	// FreqHz moves the operating point on the DVS curve (voltage
	// follows); 0 keeps the base 4 GHz point.
	FreqHz float64 `json:"freq_hz,omitempty"`
	// Window/ALUs/FPUs override the microarchitecture; 0 keeps base.
	Window int `json:"window,omitempty"`
	ALUs   int `json:"alus,omitempty"`
	FPUs   int `json:"fpus,omitempty"`
	// TqualK is the qualification temperature; 0 means 400 K.
	TqualK float64 `json:"tqual_k,omitempty"`
}

// EvaluateResponse reports one evaluation. Field order is fixed, so two
// identical requests receive byte-identical bodies.
type EvaluateResponse struct {
	App    string  `json:"app"`
	Proc   string  `json:"proc"`
	FreqHz float64 `json:"freq_hz"`
	VddV   float64 `json:"vdd_v"`
	TqualK float64 `json:"tqual_k"`

	IPC      float64 `json:"ipc"`
	BIPS     float64 `json:"bips"`
	AvgW     float64 `json:"avg_w"`
	MaxTempK float64 `json:"max_temp_k"`
	AvgTempK float64 `json:"avg_temp_k"`
	SinkK    float64 `json:"sink_k"`

	FIT         float64 `json:"fit"`
	TargetFIT   float64 `json:"target_fit"`
	MTTFYears   float64 `json:"mttf_years"`
	MeetsTarget bool    `json:"meets_target"`
}

// SweepRequest asks for a DRM adaptation-space sweep: evaluate every
// candidate once, then select the best configuration meeting the FIT
// target at each requested qualification temperature.
type SweepRequest struct {
	App        string    `json:"app"`
	Adaptation string    `json:"adaptation"` // "Arch", "DVS" or "ArchDVS"
	TqualsK    []float64 `json:"tquals_k"`
	// FreqStepHz sets the DVS grid (0 = the server's default).
	FreqStepHz float64 `json:"freq_step_hz,omitempty"`
}

// SweepChoice is the DRM oracle's decision at one qualification point.
type SweepChoice struct {
	TqualK   float64 `json:"tqual_k"`
	Proc     string  `json:"proc"`
	FreqHz   float64 `json:"freq_hz"`
	RelPerf  float64 `json:"rel_perf"`
	FIT      float64 `json:"fit"`
	Feasible bool    `json:"feasible"`
}

// SweepResponse reports a sweep: the base machine's absolutes plus one
// choice per requested qualification temperature, in request order.
type SweepResponse struct {
	App        string        `json:"app"`
	Adaptation string        `json:"adaptation"`
	Candidates int           `json:"candidates"`
	BaseBIPS   float64       `json:"base_bips"`
	BaseFIT    float64       `json:"base_fit"`
	Choices    []SweepChoice `json:"choices"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // a failed write means the client is gone
}

// writeError emits the uniform error body and counts the response.
func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
	s.metrics.countResponse(status)
}

// decodeRequest strictly decodes a JSON body into v: unknown fields,
// trailing garbage and oversized bodies are all 400s, so a typo'd field
// name can never silently fall back to the base value.
func decodeRequest(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing data after request object")
	}
	return nil
}

// normalizeEvaluate validates an EvaluateRequest and resolves it to the
// concrete (app, proc, qual) triple that feeds the exp cache key.
func (s *Server) normalizeEvaluate(req *EvaluateRequest) (trace.Profile, config.Proc, core.Qualification, error) {
	app, err := trace.AppByName(req.App)
	if err != nil {
		return trace.Profile{}, config.Proc{}, core.Qualification{}, err
	}
	proc := s.env.Base
	if req.Window != 0 {
		proc.WindowSize = req.Window
		proc.IntRegs = min(s.env.Base.IntRegs, req.Window+req.Window/2)
		proc.FPRegs = min(s.env.Base.FPRegs, req.Window+req.Window/2)
		proc.MemQueueSize = min(s.env.Base.MemQueueSize, req.Window)
	}
	if req.ALUs != 0 {
		proc.IntALUs = req.ALUs
	}
	if req.FPUs != 0 {
		proc.FPUs = req.FPUs
	}
	if req.FreqHz != 0 {
		if req.FreqHz < config.MinFreqHz || req.FreqHz > config.MaxFreqHz {
			return trace.Profile{}, config.Proc{}, core.Qualification{},
				fmt.Errorf("freq_hz %g outside the DVS window [%g, %g]", req.FreqHz, float64(config.MinFreqHz), float64(config.MaxFreqHz))
		}
		proc = proc.WithOperatingPoint(req.FreqHz)
	}
	proc.Name = fmt.Sprintf("w%d-a%d-f%d@%.3fGHz", proc.WindowSize, proc.IntALUs, proc.FPUs, proc.FreqHz/1e9)
	if err := proc.Validate(); err != nil {
		return trace.Profile{}, config.Proc{}, core.Qualification{}, err
	}
	tqual := req.TqualK
	if tqual == 0 {
		tqual = 400
	}
	qual := s.env.Qualification(tqual)
	if err := qual.Validate(); err != nil {
		return trace.Profile{}, config.Proc{}, core.Qualification{}, err
	}
	if tqual < 250 || tqual > 500 {
		return trace.Profile{}, config.Proc{}, core.Qualification{},
			fmt.Errorf("tqual_k %g outside the plausible qualification range [250, 500]", tqual)
	}
	return app, proc, qual, nil
}

// handleEvaluate serves POST /v1/evaluate.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsEvaluate.Add(1)
	var req EvaluateRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	app, proc, qual, err := s.normalizeEvaluate(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	var res exp.Result
	var evalErr error
	poolErr := s.pool.run(ctx, func() {
		start := time.Now()
		res, evalErr = s.env.EvaluateCtx(ctx, app, proc, qual)
		s.metrics.latEvaluate.observe(time.Since(start))
	})
	if err := s.jobError(poolErr, evalErr); err != nil {
		s.writeJobError(w, err)
		return
	}

	a := res.Assessment
	writeJSON(w, http.StatusOK, EvaluateResponse{
		App: app.Name, Proc: proc.Name,
		FreqHz: proc.FreqHz, VddV: proc.VddV, TqualK: qual.TqualK,
		IPC: res.IPC, BIPS: res.BIPS, AvgW: res.AvgW,
		MaxTempK: res.MaxTempK, AvgTempK: res.AvgTempK, SinkK: res.SinkK,
		FIT: a.TotalFIT, TargetFIT: qual.TargetFIT, MTTFYears: a.MTTFYears,
		MeetsTarget: a.TotalFIT <= qual.TargetFIT,
	})
	s.metrics.countResponse(http.StatusOK)
}

// handleSweep serves POST /v1/sweep.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsSweep.Add(1)
	var req SweepRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	app, err := trace.AppByName(req.App)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	adaptation, err := drm.AdaptationByName(req.Adaptation)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.TqualsK) == 0 {
		s.writeError(w, http.StatusBadRequest, "tquals_k must list at least one qualification temperature")
		return
	}
	if len(req.TqualsK) > 64 {
		s.writeError(w, http.StatusBadRequest, "tquals_k lists %d temperatures (max 64)", len(req.TqualsK))
		return
	}
	for _, tq := range req.TqualsK {
		if tq < 250 || tq > 500 {
			s.writeError(w, http.StatusBadRequest, "tquals_k %g outside the plausible qualification range [250, 500]", tq)
			return
		}
	}
	if req.FreqStepHz < 0 || (req.FreqStepHz > 0 && req.FreqStepHz < 0.02e9) {
		s.writeError(w, http.StatusBadRequest, "freq_step_hz %g too fine (min 0.02 GHz)", req.FreqStepHz)
		return
	}

	oracle := drm.NewOracle(s.env)
	if req.FreqStepHz > 0 {
		oracle.FreqStepHz = req.FreqStepHz
	} else if s.cfg.FreqStepHz > 0 {
		oracle.FreqStepHz = s.cfg.FreqStepHz
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	var resp SweepResponse
	var sweepErr error
	poolErr := s.pool.run(ctx, func() {
		start := time.Now()
		defer func() { s.metrics.latSweep.observe(time.Since(start)) }()
		var sweep *drm.Sweep
		sweep, sweepErr = oracle.SweepCtx(ctx, app, adaptation)
		if sweepErr != nil {
			return
		}
		resp = SweepResponse{
			App: app.Name, Adaptation: adaptation.String(),
			Candidates: len(sweep.Candidates),
			BaseBIPS:   sweep.Base.BIPS,
			BaseFIT:    sweep.Base.FIT(),
		}
		for _, tq := range req.TqualsK {
			var choice drm.Choice
			choice, sweepErr = sweep.SelectCtx(ctx, s.env, s.env.Qualification(tq))
			if sweepErr != nil {
				return
			}
			resp.Choices = append(resp.Choices, SweepChoice{
				TqualK: tq, Proc: choice.Proc.Name, FreqHz: choice.Proc.FreqHz,
				RelPerf: choice.RelPerf, FIT: choice.FIT, Feasible: choice.Feasible,
			})
		}
	})
	if err := s.jobError(poolErr, sweepErr); err != nil {
		s.writeJobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
	s.metrics.countResponse(http.StatusOK)
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsHealthz.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":             "ok",
		"uptime_sec":         time.Since(s.metrics.start).Seconds(),
		"cached_evaluations": s.env.CachedEvaluations(),
	})
	s.metrics.countResponse(http.StatusOK)
}

// requestContext derives the job context: the client's own context
// (cancelled when the connection drops) bounded by the server's
// per-request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// jobError folds the pool's admission error and the job's own error
// into the one the response should reflect.
func (s *Server) jobError(poolErr, jobErr error) error {
	if poolErr != nil {
		return poolErr
	}
	return jobErr
}

// writeJobError maps a job failure to a status code: queue-full → 429,
// deadline → 504, client-gone → 499 (best effort; the write is likely
// lost), anything else → 500.
func (s *Server) writeJobError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, "server saturated: %v", err)
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, "evaluation exceeded the request deadline")
	case errors.Is(err, context.Canceled):
		// The client went away; 499 in nginx convention. The body almost
		// certainly cannot be delivered, but account the response.
		s.writeError(w, 499, "request cancelled")
	default:
		s.writeError(w, http.StatusInternalServerError, "%v", err)
	}
}
