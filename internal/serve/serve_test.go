package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ramp/internal/exp"
)

// tinyOptions returns run lengths far below even QuickOptions: serve
// tests care about the HTTP/concurrency layer, not simulation fidelity,
// and they must stay fast under -race.
func tinyOptions() exp.Options {
	o := exp.QuickOptions()
	o.WarmupInstrs = 4_000
	o.EpochInstrs = 4_000
	o.Epochs = 2
	return o
}

// tinyConfig returns a test config; the httptest server ignores Addr.
func tinyConfig() Config {
	c := DefaultConfig()
	c.Workers = 4
	c.QueueDepth = 64
	c.RequestTimeout = time.Minute
	c.DrainTimeout = 10 * time.Second
	c.FreqStepHz = 1.25e9 // 3-point DVS ladder: keep sweeps small
	c.EnablePprof = false
	return c
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(exp.NewEnv(tinyOptions()), tinyConfig())
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(b)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(b)
}

func TestEvaluateEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"twolf","freq_hz":4.5e9,"tqual_k":370}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp EvaluateResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.App != "twolf" || resp.TqualK != 370 || resp.FreqHz != 4.5e9 {
		t.Errorf("echoed request fields wrong: %+v", resp)
	}
	if resp.IPC <= 0 || resp.BIPS <= 0 || resp.AvgW <= 0 || resp.FIT <= 0 {
		t.Errorf("implausible results: %+v", resp)
	}
	if resp.MeetsTarget != (resp.FIT <= resp.TargetFIT) {
		t.Errorf("meets_target inconsistent with fit/target: %+v", resp)
	}
}

func TestEvaluateNormalizationSharesCacheKey(t *testing.T) {
	s, hs := newTestServer(t)
	// The same configuration spelled three ways: omitted fields,
	// explicit base values, and explicit base frequency.
	bodies := []string{
		`{"app":"gzip"}`,
		`{"app":"gzip","window":128,"alus":6,"fpus":4}`,
		`{"app":"gzip","freq_hz":4e9,"tqual_k":400}`,
	}
	var first string
	for i, b := range bodies {
		status, body := post(t, hs.URL+"/v1/evaluate", b)
		if status != http.StatusOK {
			t.Fatalf("req %d: status %d, body %s", i, status, body)
		}
		if i == 0 {
			first = body
		} else if body != first {
			t.Errorf("req %d: body differs from first:\n%s\nvs\n%s", i, body, first)
		}
	}
	if st := s.Env().CacheStats(); st.Misses != 1 {
		t.Errorf("three spellings of one config simulated %d times (want 1)", st.Misses)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, hs := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown app", `{"app":"nope"}`},
		{"unknown field", `{"app":"twolf","bogus":1}`},
		{"malformed", `{"app":`},
		{"trailing data", `{"app":"twolf"} {"app":"gzip"}`},
		{"freq below window", `{"app":"twolf","freq_hz":1e9}`},
		{"freq above window", `{"app":"twolf","freq_hz":9e9}`},
		{"tqual implausible", `{"app":"twolf","tqual_k":100}`},
		{"bad window", `{"app":"twolf","window":-4}`},
		{"empty", ``},
	}
	for _, tc := range cases {
		if status, body := post(t, hs.URL+"/v1/evaluate", tc.body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, status, body)
		}
	}
	// Wrong method routes to 405 via the Go 1.22 method pattern.
	if status, _ := get(t, hs.URL+"/v1/evaluate"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate: status %d (want 405)", status)
	}
}

func TestSweepValidation(t *testing.T) {
	_, hs := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"unknown app", `{"app":"nope","adaptation":"DVS","tquals_k":[400]}`},
		{"unknown adaptation", `{"app":"twolf","adaptation":"Turbo","tquals_k":[400]}`},
		{"no tquals", `{"app":"twolf","adaptation":"DVS"}`},
		{"tqual implausible", `{"app":"twolf","adaptation":"DVS","tquals_k":[10]}`},
		{"step too fine", `{"app":"twolf","adaptation":"DVS","tquals_k":[400],"freq_step_hz":1e6}`},
	}
	for _, tc := range cases {
		if status, body := post(t, hs.URL+"/v1/sweep", tc.body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400), body %s", tc.name, status, body)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	s, hs := newTestServer(t)
	status, body := post(t, hs.URL+"/v1/sweep",
		`{"app":"twolf","adaptation":"DVS","tquals_k":[400,345]}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Candidates == 0 || len(resp.Choices) != 2 {
		t.Fatalf("unexpected sweep shape: %+v", resp)
	}
	if resp.Choices[0].TqualK != 400 || resp.Choices[1].TqualK != 345 {
		t.Errorf("choices out of request order: %+v", resp.Choices)
	}
	// A cheaper qualification can never be allowed a faster choice.
	if resp.Choices[1].RelPerf > resp.Choices[0].RelPerf+1e-12 {
		t.Errorf("rel_perf rose as T_qual fell: %+v", resp.Choices)
	}
	// The sweep evaluated base + ladder once each, nothing more.
	if st := s.Env().CacheStats(); int(st.Misses) != resp.Candidates+1 {
		t.Errorf("sweep simulated %d configs (want %d candidates + base)", st.Misses, resp.Candidates)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t)
	status, body := get(t, hs.URL+"/v1/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz: status %d, body %s", status, body)
	}

	if status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"twolf"}`); status != http.StatusOK {
		t.Fatalf("evaluate: status %d, body %s", status, body)
	}
	status, body = get(t, hs.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	var snap metricsSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("metrics decode: %v (%s)", err, body)
	}
	if snap.RequestsTotal["evaluate"] != 1 || snap.RequestsTotal["healthz"] != 1 {
		t.Errorf("request counters wrong: %+v", snap.RequestsTotal)
	}
	if snap.Cache.Misses != 1 {
		t.Errorf("cache misses = %d (want 1)", snap.Cache.Misses)
	}
	if h := snap.LatencyUS["evaluate"]; h.Count != 1 || h.SumUS <= 0 {
		t.Errorf("evaluate latency histogram wrong: %+v", h)
	}
	// The JSON document carries interpolated quantile estimates; with one
	// observation all three land in that observation's bucket.
	if h := snap.LatencyUS["evaluate"]; h.P50US <= 0 || h.P95US < h.P50US || h.P99US < h.P95US {
		t.Errorf("evaluate latency quantiles wrong: p50=%g p95=%g p99=%g", h.P50US, h.P95US, h.P99US)
	}
	if snap.InflightJobs != 0 || snap.QueuedJobs != 0 {
		t.Errorf("gauges should be zero at rest: %+v", snap)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	cfg := tinyConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 0
	s := New(exp.NewEnv(tinyOptions()), cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Deterministically saturate admission by taking the only token
	// directly (the test lives in package serve for exactly this).
	s.pool.admit <- struct{}{}
	status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"twolf"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d (want 429), body %s", status, body)
	}
	<-s.pool.admit

	// With the token back, the same request succeeds.
	if status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"twolf"}`); status != http.StatusOK {
		t.Fatalf("after release: status %d, body %s", status, body)
	}
	if shed := s.metrics.shed.Load(); shed != 1 {
		t.Errorf("shed_total = %d (want 1)", shed)
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	cfg := tinyConfig()
	cfg.RequestTimeout = time.Millisecond // expires during the evaluation
	s := New(exp.NewEnv(exp.QuickOptions()), cfg)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"MPGdec"}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (want 504), body %s", status, body)
	}
	if s.metrics.timeouts.Load() != 1 {
		t.Errorf("timeout_total = %d (want 1)", s.metrics.timeouts.Load())
	}
	// The abandoned flight must not poison the cache: with a sane
	// deadline the same request now succeeds.
	s.cfg.RequestTimeout = time.Minute
	if status, body := post(t, hs.URL+"/v1/evaluate", `{"app":"MPGdec"}`); status != http.StatusOK {
		t.Fatalf("after timeout: status %d, body %s", status, body)
	}
}

func TestPoolRunQueueFull(t *testing.T) {
	p := newPool(1, 1, newMetrics())
	block := make(chan struct{})
	done := make(chan error, 3)
	run := func() { <-block }
	go func() { done <- p.run(context.Background(), run) }() // takes the worker slot
	go func() { done <- p.run(context.Background(), run) }() // takes the queue slot

	// Wait until both tokens are held, then the third must shed.
	deadline := time.Now().Add(5 * time.Second)
	for len(p.admit) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("admission tokens never taken")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.run(context.Background(), func() {}); err != ErrQueueFull {
		t.Fatalf("third run: err = %v (want ErrQueueFull)", err)
	}
	close(block)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("blocked run %d: %v", i, err)
		}
	}
}

func TestPoolRunQueueWaitCancellable(t *testing.T) {
	p := newPool(1, 4, newMetrics())
	block := make(chan struct{})
	started := make(chan struct{})
	go p.run(context.Background(), func() { close(started); <-block })
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- p.run(ctx, func() {}) }()
	time.Sleep(10 * time.Millisecond) // let it enter the queue wait
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("queued run: err = %v (want context.Canceled)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queue wait never returned")
	}
	close(block)
}
