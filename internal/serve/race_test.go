// Race-lane coverage for the serve layer's concurrency: these tests
// hammer the endpoints from 32 goroutines and run in the CI
// `go test -race -short ./internal/...` lane, asserting the properties
// the architecture promises — identical requests get identical bodies
// and exactly one underlying simulation per distinct cache key
// (singleflight), and shutdown drains in-flight requests cleanly.
package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ramp/internal/exp"
)

const hammerGoroutines = 32

// hammer fires one POST per goroutine (bodies[i%len(bodies)]) and
// returns the response bodies grouped by request body.
func hammer(t *testing.T, url string, bodies []string) map[string][]string {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := make(map[string][]string)
	for i := 0; i < hammerGoroutines; i++ {
		reqBody := bodies[i%len(bodies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url, "application/json", strings.NewReader(reqBody))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			mu.Lock()
			got[reqBody] = append(got[reqBody], string(b))
			mu.Unlock()
		}()
	}
	wg.Wait()
	return got
}

// requireIdentical asserts every response within a request group is
// byte-identical.
func requireIdentical(t *testing.T, got map[string][]string, want int) {
	t.Helper()
	total := 0
	for req, responses := range got {
		total += len(responses)
		for i, r := range responses[1:] {
			if r != responses[0] {
				t.Fatalf("request %s: response %d differs:\n%s\nvs\n%s", req, i+1, r, responses[0])
			}
		}
	}
	if total != want {
		t.Fatalf("%d successful responses (want %d)", total, want)
	}
}

func TestConcurrentEvaluateSingleflight(t *testing.T) {
	s, hs := newTestServer(t)
	body := `{"app":"twolf","freq_hz":4.5e9,"tqual_k":370}`
	got := hammer(t, hs.URL+"/v1/evaluate", []string{body})
	requireIdentical(t, got, hammerGoroutines)
	st := s.Env().CacheStats()
	if st.Misses != 1 {
		t.Errorf("32 identical requests ran %d simulations (want exactly 1)", st.Misses)
	}
	if st.Hits != hammerGoroutines-1 {
		t.Errorf("cache hits = %d (want %d)", st.Hits, hammerGoroutines-1)
	}
}

func TestConcurrentEvaluateDistinctKeys(t *testing.T) {
	s, hs := newTestServer(t)
	bodies := []string{
		`{"app":"twolf"}`,
		`{"app":"twolf","freq_hz":4.5e9}`,
		`{"app":"gzip"}`,
		`{"app":"gzip","window":32,"alus":2,"fpus":1}`,
	}
	got := hammer(t, hs.URL+"/v1/evaluate", bodies)
	requireIdentical(t, got, hammerGoroutines)
	if st := s.Env().CacheStats(); st.Misses != int64(len(bodies)) {
		t.Errorf("%d distinct configs ran %d simulations (want exactly %d)",
			len(bodies), st.Misses, len(bodies))
	}
}

func TestConcurrentSweepSingleflight(t *testing.T) {
	s, hs := newTestServer(t)
	body := `{"app":"twolf","adaptation":"Arch","tquals_k":[400,345]}`
	got := hammer(t, hs.URL+"/v1/sweep", []string{body})
	requireIdentical(t, got, hammerGoroutines)
	// A sweep evaluates the base machine plus the 18 Arch candidates, but
	// the base IS one of those candidates (same cache key), so exactly 18
	// distinct simulations run across all 32 concurrent sweeps.
	if st := s.Env().CacheStats(); st.Misses != 18 {
		t.Errorf("32 identical sweeps ran %d simulations (want exactly 18)", st.Misses)
	}
}

// TestGracefulShutdownWithInflight cancels the serve context while a
// sweep is mid-flight and asserts (a) the in-flight request still
// completes with 200 and (b) Serve returns nil (clean drain).
func TestGracefulShutdownWithInflight(t *testing.T) {
	cfg := tinyConfig()
	// The assertion is about drain semantics, not drain speed: give the
	// in-flight sweep ample room to finish under -race.
	cfg.DrainTimeout = 2 * time.Minute
	s := New(exp.NewEnv(tinyOptions()), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	// An Arch sweep (18 simulations) is slow enough to still be running
	// when shutdown starts, yet drains quickly even under -race.
	type result struct {
		status int
		body   string
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/sweep", "application/json",
			strings.NewReader(`{"app":"twolf","adaptation":"Arch","tquals_k":[400]}`))
		if err != nil {
			t.Errorf("sweep during shutdown: %v", err)
			resc <- result{}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{resp.StatusCode, string(b)}
	}()

	// Wait until the request is actually in flight, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	res := <-resc
	if res.status != http.StatusOK {
		t.Errorf("in-flight sweep: status %d, body %s (want 200: drain must finish it)", res.status, res.body)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v (want nil on clean drain)", err)
		}
	case <-time.After(cfg.DrainTimeout + 5*time.Second):
		t.Fatal("Serve never returned after cancel")
	}

	// New connections are refused once drained.
	if _, err := http.Get(url + "/v1/healthz"); err == nil {
		t.Error("healthz after drain: connection unexpectedly succeeded")
	}
}

// TestConcurrentMixedTraffic interleaves evaluates, sweeps, healthz and
// metrics probes — the shape a dashboard plus CI clients produce — and
// checks nothing races (the -race lane) and counters stay coherent.
func TestConcurrentMixedTraffic(t *testing.T) {
	s, hs := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < hammerGoroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 4 {
			case 0:
				resp, err := http.Post(hs.URL+"/v1/evaluate", "application/json",
					strings.NewReader(`{"app":"twolf"}`))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			case 1:
				resp, err := http.Post(hs.URL+"/v1/sweep", "application/json",
					strings.NewReader(`{"app":"twolf","adaptation":"DVS","tquals_k":[370]}`))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			case 2:
				resp, err := http.Get(hs.URL + "/v1/healthz")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			case 3:
				resp, err := http.Get(hs.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := s.snapshotMetrics()
	wantReq := int64(hammerGoroutines)
	var gotReq int64
	for _, v := range snap.RequestsTotal {
		gotReq += v
	}
	// The final /metrics read below is not counted yet; the hammer's own
	// requests all are.
	if gotReq != wantReq {
		t.Errorf("requests_total sums to %d (want %d)", gotReq, wantReq)
	}
	if snap.InflightJobs != 0 || snap.QueuedJobs != 0 {
		t.Errorf("gauges nonzero at rest: %+v", snap)
	}
}
