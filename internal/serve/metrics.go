package serve

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"ramp/internal/obs"
)

// histBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations with latency < 2^i microseconds; the last bucket
// is a catch-all (2^21 µs ≈ 2.1 s and beyond land there), wide enough
// for a full-length ArchDVS sweep.
const histBuckets = 22

// histogram is a lock-free log2-scaled latency histogram (microsecond
// resolution). Writers only atomically increment; readers snapshot.
type histogram struct {
	count  atomic.Int64
	sumUS  atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// observe records one latency sample.
func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	i := 0
	for b := us; b > 0 && i < histBuckets-1; b >>= 1 {
		i++
	}
	h.bucket[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// histSnapshot is the JSON form of one histogram: cumulative counts per
// upper bound, expvar-style flat keys, plus interpolated quantile
// estimates (obs.HistogramSnapshot.Quantile over the same buckets).
type histSnapshot struct {
	Count   int64            `json:"count"`
	SumUS   int64            `json:"sum_us"`
	P50US   float64          `json:"p50_us,omitempty"`
	P95US   float64          `json:"p95_us,omitempty"`
	P99US   float64          `json:"p99_us,omitempty"`
	Buckets map[string]int64 `json:"buckets_le_us,omitempty"`
}

func (h *histogram) snapshot() histSnapshot {
	s := histSnapshot{Count: h.count.Load(), SumUS: h.sumUS.Load()}
	if s.Count == 0 {
		return s
	}
	s.Buckets = make(map[string]int64)
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.bucket[i].Load()
		if cum == 0 {
			continue
		}
		le := "+inf"
		if i < histBuckets-1 {
			le = strconv.FormatInt(1<<i, 10)
		}
		s.Buckets[le] = cum
	}
	q := toObsHistogram(s)
	s.P50US = q.Quantile(0.50)
	s.P95US = q.Quantile(0.95)
	s.P99US = q.Quantile(0.99)
	return s
}

// metrics is the server's expvar-style counter set, published as one
// JSON document at GET /metrics. All fields are atomics; there is no
// global expvar registration, so independent Servers (tests) never
// collide.
type metrics struct {
	start time.Time

	requestsEvaluate atomic.Int64
	requestsSweep    atomic.Int64
	requestsFleet    atomic.Int64
	requestsHealthz  atomic.Int64
	requestsMetrics  atomic.Int64
	requestsStream   atomic.Int64

	responses2xx atomic.Int64
	responses4xx atomic.Int64
	responses5xx atomic.Int64
	shed         atomic.Int64 // queue-full 429s (subset of responses4xx)
	timeouts     atomic.Int64 // deadline-exceeded 504s (subset of responses5xx)

	inflight atomic.Int64 // jobs currently holding a worker slot
	queued   atomic.Int64 // jobs admitted but waiting for a slot

	latQueueWait histogram // admission → worker slot acquired
	latEvaluate  histogram // /v1/evaluate compute time
	latSweep     histogram // /v1/sweep compute time (sweep + all selects)
	latFleet     histogram // /v1/fleet compute time (evaluate + Monte Carlo)
}

func newMetrics() *metrics { return &metrics{start: time.Now()} }

func (m *metrics) countResponse(status int) {
	switch {
	case status >= 500:
		m.responses5xx.Add(1)
	case status >= 400:
		m.responses4xx.Add(1)
	default:
		m.responses2xx.Add(1)
	}
}

// cacheCounters is the slice of exp.CacheStats surfaced in /metrics.
type cacheCounters struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// metricsSnapshot is the /metrics JSON document. Names are stable API:
// DESIGN.md §8 documents them.
type metricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	RequestsTotal map[string]int64 `json:"requests_total"`
	Responses     map[string]int64 `json:"responses_total"`
	ShedTotal     int64            `json:"shed_total"`
	TimeoutTotal  int64            `json:"timeout_total"`

	InflightJobs int64 `json:"inflight_jobs"`
	QueuedJobs   int64 `json:"queued_jobs"`

	Cache cacheCounters `json:"cache"`

	LatencyUS map[string]histSnapshot `json:"latency_us"`

	// Pipeline mirrors the env's obs registry when the server was built
	// over an instrumented environment; omitted otherwise, so the JSON
	// document is unchanged for uninstrumented servers.
	Pipeline *obs.Snapshot `json:"pipeline,omitempty"`
}

func (s *Server) snapshotMetrics() metricsSnapshot {
	m := s.metrics
	cs := s.env.CacheStats()
	var pipeline *obs.Snapshot
	if s.env.Metrics != nil {
		snap := s.env.Metrics.Snapshot()
		pipeline = &snap
	}
	return metricsSnapshot{
		Pipeline:  pipeline,
		UptimeSec: time.Since(m.start).Seconds(),
		RequestsTotal: map[string]int64{
			"evaluate": m.requestsEvaluate.Load(),
			"sweep":    m.requestsSweep.Load(),
			"fleet":    m.requestsFleet.Load(),
			"healthz":  m.requestsHealthz.Load(),
			"metrics":  m.requestsMetrics.Load(),
			"stream":   m.requestsStream.Load(),
		},
		Responses: map[string]int64{
			"2xx": m.responses2xx.Load(),
			"4xx": m.responses4xx.Load(),
			"5xx": m.responses5xx.Load(),
		},
		ShedTotal:    m.shed.Load(),
		TimeoutTotal: m.timeouts.Load(),
		InflightJobs: m.inflight.Load(),
		QueuedJobs:   m.queued.Load(),
		Cache:        cacheCounters{Hits: cs.Hits, Misses: cs.Misses, Entries: cs.Entries},
		LatencyUS: map[string]histSnapshot{
			"queue_wait": m.latQueueWait.snapshot(),
			"evaluate":   m.latEvaluate.snapshot(),
			"sweep":      m.latSweep.snapshot(),
			"fleet":      m.latFleet.snapshot(),
		},
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsMetrics.Add(1)
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.writePrometheus(w, s.snapshotMetrics())
		s.metrics.countResponse(http.StatusOK)
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotMetrics())
	s.metrics.countResponse(http.StatusOK)
}
