package serve

import (
	"context"
	"errors"
	"time"
)

// ErrQueueFull is returned when a request cannot even be queued: every
// worker slot is busy and the wait queue is at capacity. The handler
// maps it to 429 Too Many Requests (load shedding at the door beats
// stacking unbounded goroutines on a saturated simulator).
var ErrQueueFull = errors.New("serve: worker queue full")

// pool is a bounded execution gate for simulation jobs. Admission is a
// two-stage token scheme:
//
//   - admit (capacity workers+queueDepth): taken non-blockingly at the
//     door; failure is immediate shedding (429), so a traffic spike
//     costs each shed request only a channel poll.
//   - slots (capacity workers): taken blockingly by admitted requests;
//     at most `workers` evaluations run concurrently, the rest wait in
//     FIFO-ish order on the channel.
//
// Jobs execute on the caller's goroutine (the HTTP handler), so
// net/http.Server.Shutdown's active-request accounting is also the
// pool's drain accounting: a draining server finishes every admitted
// job before exiting.
type pool struct {
	slots   chan struct{}
	admit   chan struct{}
	metrics *metrics
}

func newPool(workers, queueDepth int, m *metrics) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &pool{
		slots:   make(chan struct{}, workers),
		admit:   make(chan struct{}, workers+queueDepth),
		metrics: m,
	}
}

// run executes fn under the pool's concurrency bound. It returns
// ErrQueueFull if the request cannot be admitted, ctx's error if the
// request is cancelled while waiting for a worker slot, and nil once fn
// has run (fn's own errors travel out of band — it is a closure).
func (p *pool) run(ctx context.Context, fn func()) error {
	select {
	case p.admit <- struct{}{}:
	default:
		p.metrics.shed.Add(1)
		return ErrQueueFull
	}
	defer func() { <-p.admit }()

	p.metrics.queued.Add(1)
	waitStart := time.Now()
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.metrics.queued.Add(-1)
		return ctx.Err()
	}
	p.metrics.queued.Add(-1)
	p.metrics.latQueueWait.observe(time.Since(waitStart))

	p.metrics.inflight.Add(1)
	defer func() {
		p.metrics.inflight.Add(-1)
		<-p.slots
	}()
	fn()
	return nil
}
