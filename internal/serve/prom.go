// Prometheus text exposition for GET /metrics. The JSON document stays
// the default (stable API, DESIGN.md §8); a scraper opts into the text
// format (version 0.0.4) with ?format=prom or an Accept header naming
// text/plain. Server-level families are prefixed rampserve_; when the
// environment is instrumented (exp.Env.Instrument), the pipeline
// registry's families follow under the ramp_ prefix, so one scrape sees
// both the service's request counters and the simulator's epoch/cache/
// FIT-time instruments.
package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"ramp/internal/obs"
)

// wantsPrometheus reports whether the request asked for the text
// exposition format rather than the JSON document.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

// promHist adapts the server's lock-free histogram snapshot to the obs
// rendering helper. The JSON form uses a lowercase "+inf" catch-all key;
// the Prometheus renderer derives the +Inf bucket from Count, so the
// catch-all is dropped rather than translated.
func promHist(h histSnapshot) obs.HistogramSnapshot {
	s := obs.HistogramSnapshot{Count: h.Count, Sum: h.SumUS}
	if len(h.Buckets) > 0 {
		s.Buckets = make(map[string]int64, len(h.Buckets))
		for le, v := range h.Buckets {
			if le != "+inf" {
				s.Buckets[le] = v
			}
		}
	}
	return s
}

func promSortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writePromLabeledCounters emits one counter family with a single label
// dimension (e.g. rampserve_requests_total{route="evaluate"}).
func writePromLabeledCounters(w io.Writer, family, label string, vals map[string]int64) {
	fmt.Fprintf(w, "# TYPE %s counter\n", family)
	for _, k := range promSortedKeys(vals) {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", family, label, k, vals[k])
	}
}

// writePrometheus renders one scrape of the server's metrics.
func (s *Server) writePrometheus(w io.Writer, snap metricsSnapshot) {
	fmt.Fprintf(w, "# TYPE rampserve_uptime_seconds gauge\nrampserve_uptime_seconds %g\n", snap.UptimeSec)
	writePromLabeledCounters(w, "rampserve_requests_total", "route", snap.RequestsTotal)
	writePromLabeledCounters(w, "rampserve_responses_total", "class", snap.Responses)
	fmt.Fprintf(w, "# TYPE rampserve_shed_total counter\nrampserve_shed_total %d\n", snap.ShedTotal)
	fmt.Fprintf(w, "# TYPE rampserve_timeout_total counter\nrampserve_timeout_total %d\n", snap.TimeoutTotal)
	fmt.Fprintf(w, "# TYPE rampserve_inflight_jobs gauge\nrampserve_inflight_jobs %d\n", snap.InflightJobs)
	fmt.Fprintf(w, "# TYPE rampserve_queued_jobs gauge\nrampserve_queued_jobs %d\n", snap.QueuedJobs)
	fmt.Fprintf(w, "# TYPE rampserve_cache_hits_total counter\nrampserve_cache_hits_total %d\n", snap.Cache.Hits)
	fmt.Fprintf(w, "# TYPE rampserve_cache_misses_total counter\nrampserve_cache_misses_total %d\n", snap.Cache.Misses)
	fmt.Fprintf(w, "# TYPE rampserve_cache_entries gauge\nrampserve_cache_entries %d\n", snap.Cache.Entries)
	fmt.Fprintf(w, "# TYPE rampserve_latency_us histogram\n")
	for _, route := range promSortedKeys(snap.LatencyUS) {
		obs.WritePromHistogram(w, "rampserve_latency_us", fmt.Sprintf("route=%q", route), promHist(snap.LatencyUS[route]))
	}
	if s.env.Metrics != nil {
		s.env.Metrics.WritePrometheus(w, "ramp_")
	}
}
