// POST /v1/fleet: fleet-scale Monte Carlo lifetime simulation over the
// service's shared evaluation environment. One request runs the
// (app, configuration) evaluation once — through the exp cache, so
// repeated fleet queries over the same design point never re-simulate —
// requalifies the assessment at each requested T_qual (each is one DRM
// policy), and hands the policies to the fleet engine. The simulated
// population is deterministic in (request, seed): identical requests
// produce byte-identical responses, which a small bounded response
// cache exploits to answer repeats without re-running the Monte Carlo.
package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"ramp/internal/fleet"
)

// Fleet request bounds. The chip ceiling keeps a single request's
// compute inside the same envelope as a full sweep.
const (
	fleetDefaultChips = 100_000
	fleetMinChips     = 1_000
	fleetMaxChips     = 2_000_000
	fleetMaxTquals    = 8
	fleetMaxSpares    = 4
	fleetCacheMax     = 512
)

// FleetRequest asks for one fleet simulation. Zero-valued fields take
// server defaults, so requests that spell the same simulation
// differently normalize to the same cache key.
type FleetRequest struct {
	App string `json:"app"`
	// Chips is the fleet population (0 = 100k).
	Chips int `json:"chips,omitempty"`
	// Seed roots the per-chip random streams (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// TqualsK lists qualification temperatures; each becomes one policy
	// row (empty = [400]).
	TqualsK []float64 `json:"tquals_k,omitempty"`
	// FreqHz / Window / ALUs / FPUs override the configuration exactly
	// as in /v1/evaluate.
	FreqHz float64 `json:"freq_hz,omitempty"`
	Window int     `json:"window,omitempty"`
	ALUs   int     `json:"alus,omitempty"`
	FPUs   int     `json:"fpus,omitempty"`
	// Duty < 1 adds a checkpointing scenario at that duty cycle.
	Duty float64 `json:"duty,omitempty"`
	// Spares > 0 adds an in-field repair scenario with that many spares.
	Spares int `json:"spares,omitempty"`
	// HorizonYears bounds the survival curve (0 = 30).
	HorizonYears float64 `json:"horizon_years,omitempty"`
}

// FleetScenarioResult is one (T_qual policy, scenario) row.
type FleetScenarioResult struct {
	TqualK        float64   `json:"tqual_k"`
	Scenario      string    `json:"scenario"`
	MeanYears     float64   `json:"mean_years"`
	StdYears      float64   `json:"std_years"`
	ReturnRate7   float64   `json:"return_rate_7y"`
	ReturnRate11  float64   `json:"return_rate_11y"`
	SurvivalYears []float64 `json:"survival_years"`
	Survival      []float64 `json:"survival"`
}

// FleetResponse reports one fleet simulation. Field order is fixed;
// identical requests receive byte-identical bodies.
type FleetResponse struct {
	App          string                `json:"app"`
	Proc         string                `json:"proc"`
	Chips        int                   `json:"chips"`
	Seed         uint64                `json:"seed"`
	HorizonYears float64               `json:"horizon_years"`
	Results      []FleetScenarioResult `json:"results"`
}

// fleetCache is a bounded response cache keyed by the normalized
// request. Fleet runs are deterministic, so a hit is exact; the cache
// simply clears when full (runs are cheap enough that eviction finesse
// is not worth the state).
type fleetCache struct {
	mu sync.Mutex
	m  map[string]*FleetResponse
}

func (c *fleetCache) get(key string) (*FleetResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *fleetCache) put(key string, r *FleetResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || len(c.m) >= fleetCacheMax {
		c.m = make(map[string]*FleetResponse)
	}
	c.m[key] = r
}

// normalizeFleet validates req in place, fills defaults, and returns
// the normalized evaluation request plus the fleet cache key.
// Normalization is idempotent: normalizing an already-normalized
// request is the identity, so the key is stable (FuzzFleetRequest).
func (s *Server) normalizeFleet(req *FleetRequest) (EvaluateRequest, string, error) {
	if req.Chips == 0 {
		req.Chips = fleetDefaultChips
	}
	if req.Chips < fleetMinChips || req.Chips > fleetMaxChips {
		return EvaluateRequest{}, "", fmt.Errorf("chips %d outside [%d, %d]", req.Chips, fleetMinChips, fleetMaxChips)
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if len(req.TqualsK) == 0 {
		req.TqualsK = []float64{400}
	}
	if len(req.TqualsK) > fleetMaxTquals {
		return EvaluateRequest{}, "", fmt.Errorf("tquals_k lists %d temperatures (max %d)", len(req.TqualsK), fleetMaxTquals)
	}
	for _, tq := range req.TqualsK {
		if tq < 250 || tq > 500 {
			return EvaluateRequest{}, "", fmt.Errorf("tquals_k %g outside the plausible qualification range [250, 500]", tq)
		}
	}
	if req.Duty == 0 {
		req.Duty = 1
	}
	if !(req.Duty > 0 && req.Duty <= 1) {
		return EvaluateRequest{}, "", fmt.Errorf("duty %g outside (0, 1]", req.Duty)
	}
	if req.Spares < 0 || req.Spares > fleetMaxSpares {
		return EvaluateRequest{}, "", fmt.Errorf("spares %d outside [0, %d]", req.Spares, fleetMaxSpares)
	}
	if req.HorizonYears == 0 {
		req.HorizonYears = 30
	}
	if req.HorizonYears < 1 || req.HorizonYears > 100 {
		return EvaluateRequest{}, "", fmt.Errorf("horizon_years %g outside [1, 100]", req.HorizonYears)
	}

	// The configuration half rides through the same normalization as
	// /v1/evaluate (first T_qual stands in; each is range-checked above).
	ev := EvaluateRequest{
		App: req.App, FreqHz: req.FreqHz,
		Window: req.Window, ALUs: req.ALUs, FPUs: req.FPUs,
		TqualK: req.TqualsK[0],
	}
	_, proc, _, err := s.normalizeEvaluate(&ev)
	if err != nil {
		return EvaluateRequest{}, "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "app=%s|proc=%s|chips=%d|seed=%d|duty=%g|spares=%d|horizon=%g|tq=",
		req.App, proc.Name, req.Chips, req.Seed, req.Duty, req.Spares, req.HorizonYears)
	for _, tq := range req.TqualsK {
		fmt.Fprintf(&sb, "%g,", tq)
	}
	return ev, sb.String(), nil
}

// fleetScenarios derives the scenario list: nominal always, plus
// checkpointing and/or repair variants when the request asks for them.
func fleetScenarios(req *FleetRequest) []fleet.Scenario {
	scs := []fleet.Scenario{fleet.NominalScenario()}
	if req.Duty < 1 {
		scs = append(scs, fleet.Scenario{Name: "checkpoint", Duty: req.Duty})
	}
	if req.Spares > 0 {
		scs = append(scs, fleet.Scenario{Name: "repair", Duty: 1, Spares: req.Spares})
	}
	if req.Duty < 1 && req.Spares > 0 {
		scs = append(scs, fleet.Scenario{Name: "checkpoint+repair", Duty: req.Duty, Spares: req.Spares})
	}
	return scs
}

// handleFleet serves POST /v1/fleet.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsFleet.Add(1)
	var req FleetRequest
	if err := decodeRequest(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ev, key, err := s.normalizeFleet(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if resp, ok := s.fleet.get(key); ok {
		writeJSON(w, http.StatusOK, resp)
		s.metrics.countResponse(http.StatusOK)
		return
	}

	app, proc, _, err := s.normalizeEvaluate(&ev)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	var resp *FleetResponse
	var jobErr error
	poolErr := s.pool.run(ctx, func() {
		start := time.Now()
		defer func() { s.metrics.latFleet.observe(time.Since(start)) }()

		// One simulation feeds every policy: the per-T_qual assessments
		// are requalifications of the same evaluated result.
		res, err := s.env.EvaluateCtx(ctx, app, proc, s.env.Qualification(req.TqualsK[0]))
		if err != nil {
			jobErr = err
			return
		}
		var policies []fleet.Policy
		for _, tq := range req.TqualsK {
			//rampvet:ignore ctxflow -- cancellation granularity is the job boundary: one Requalify over cached epoch rows is bounded CPU work (at most fleetMaxTquals of them), and fleet.Run checks ctx per shard immediately after
			a, err := s.env.Requalify(res, s.env.Qualification(tq))
			if err != nil {
				jobErr = err
				return
			}
			policies = append(policies, fleet.Policy{
				Name:       fmt.Sprintf("tq%gK", tq),
				Assessment: a,
			})
		}

		cfg := fleet.DefaultConfig(req.Chips, req.Seed)
		cfg.HorizonYears = req.HorizonYears
		cfg.Scenarios = fleetScenarios(&req)
		eng, err := fleet.New(cfg, policies)
		if err != nil {
			jobErr = err
			return
		}
		rep, err := eng.Run(ctx)
		if err != nil {
			jobErr = err
			return
		}

		resp = &FleetResponse{
			App: app.Name, Proc: proc.Name,
			Chips: req.Chips, Seed: req.Seed, HorizonYears: req.HorizonYears,
		}
		nscen := len(cfg.Scenarios)
		for i := range rep.Results {
			sr := &rep.Results[i]
			resp.Results = append(resp.Results, FleetScenarioResult{
				TqualK:        req.TqualsK[i/nscen],
				Scenario:      sr.Scenario,
				MeanYears:     sr.MeanYears,
				StdYears:      sr.StdYears,
				ReturnRate7:   sr.Return7,
				ReturnRate11:  sr.Return11,
				SurvivalYears: sr.SurvivalYears,
				Survival:      sr.Survival,
			})
		}
	})
	if err := s.jobError(poolErr, jobErr); err != nil {
		s.writeJobError(w, err)
		return
	}
	s.fleet.put(key, resp)
	writeJSON(w, http.StatusOK, resp)
	s.metrics.countResponse(http.StatusOK)
}
