// Race-lane coverage for POST /v1/fleet: 32-goroutine hammers over the
// deterministic Monte Carlo (identical requests must produce identical
// bodies with exactly one underlying evaluation), and client
// cancellation mid-simulation — the engine checks the request context
// at every shard boundary, so an abandoned fleet run stops burning CPU
// and leaks no goroutines.
package serve

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestConcurrentFleetIdenticalBodies(t *testing.T) {
	s, hs := newTestServer(t)
	got := hammer(t, hs.URL+"/v1/fleet", []string{fleetBody})
	requireIdentical(t, got, hammerGoroutines)
	// All 32 fleet runs share one (app, proc) evaluation: the exp
	// cache's singleflight collapses them onto a single simulation.
	if st := s.Env().CacheStats(); st.Misses != 1 {
		t.Errorf("32 identical fleet requests ran %d simulations (want exactly 1)", st.Misses)
	}
}

func TestConcurrentFleetDistinctSeeds(t *testing.T) {
	_, hs := newTestServer(t)
	bodies := []string{
		`{"app":"gzip","chips":2000,"seed":1}`,
		`{"app":"gzip","chips":2000,"seed":2}`,
		`{"app":"gzip","chips":2000,"seed":3}`,
		`{"app":"gzip","chips":2000,"seed":4}`,
	}
	got := hammer(t, hs.URL+"/v1/fleet", bodies)
	requireIdentical(t, got, hammerGoroutines)
	seen := make(map[string]bool)
	for _, responses := range got {
		seen[responses[0]] = true
	}
	if len(seen) != len(bodies) {
		t.Errorf("%d distinct seeds produced %d distinct bodies", len(bodies), len(seen))
	}
}

// TestFleetCancellationMidSimulation starts the largest admissible
// fleet run, cancels the client context once the job is in flight, and
// asserts the request fails fast and the worker goroutines drain.
func TestFleetCancellationMidSimulation(t *testing.T) {
	s, hs := newTestServer(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := `{"app":"gzip","chips":2000000,"tquals_k":[400,370,345],"spares":4}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/fleet", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Wait for the job to hold a worker slot, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fleet job never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-errc:
		if err == nil {
			t.Error("cancelled fleet request returned a complete response")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled fleet request never returned")
	}

	// The engine's shard workers observe the cancelled context at the
	// next shard boundary and exit; the pool job (running on the
	// server's handler goroutine) finishes with them. Poll until the
	// inflight gauge clears and the goroutine count returns to (near)
	// baseline — the client's error above races ahead of the server's
	// own teardown, so both are eventual, not immediate.
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(30 * time.Second)
	for {
		if s.metrics.inflight.Load() == 0 && runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet job did not drain: inflight %d, goroutines %d vs %d baseline",
				s.metrics.inflight.Load(), runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
