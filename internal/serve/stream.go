// GET /v1/metrics/stream — live windowed telemetry. Each subscriber
// gets its own clock: every window the handler snapshots the server's
// metrics (unified into an obs.Snapshot with the pipeline registry),
// subtracts the previous snapshot, and pushes one frame carrying the
// delta. Frames are Server-Sent Events by default (curl-friendly,
// EventSource-compatible) or bare NDJSON with ?format=ndjson.
//
// The stream honors graceful shutdown: Serve closes the draining
// channel before http.Server.Shutdown, so every subscriber loop returns
// and Shutdown never hangs on a long-lived connection. Client
// disconnects end the loop through the request context.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ramp/internal/obs"
)

// Stream window clamps: fine enough for tests to run fast, coarse
// enough that a subscriber can never turn snapshotting into load.
const (
	streamMinWindow = 50 * time.Millisecond
	streamMaxWindow = time.Minute
)

// streamFrame is one pushed window: the metric deltas observed between
// Start and End, tagged with the subscriber's request ID so a client
// can correlate a stream against the server's access logs.
type streamFrame struct {
	Seq       int64        `json:"seq"`
	RequestID string       `json:"request_id"`
	Start     time.Time    `json:"start"`
	End       time.Time    `json:"end"`
	WindowSec float64      `json:"window_sec"`
	Delta     obs.Snapshot `json:"delta"`
}

// obsSnapshot unifies the server's hand-rolled counters and the
// pipeline registry into one obs.Snapshot, so windowed deltas, quantile
// estimation and SLO math all run on the same Snapshot algebra the rest
// of the codebase uses.
func (s *Server) obsSnapshot() obs.Snapshot {
	m := s.metrics
	out := obs.Snapshot{
		Counters: map[string]int64{
			"requests_evaluate": m.requestsEvaluate.Load(),
			"requests_sweep":    m.requestsSweep.Load(),
			"requests_fleet":    m.requestsFleet.Load(),
			"requests_healthz":  m.requestsHealthz.Load(),
			"requests_metrics":  m.requestsMetrics.Load(),
			"requests_stream":   m.requestsStream.Load(),
			"responses_2xx":     m.responses2xx.Load(),
			"responses_4xx":     m.responses4xx.Load(),
			"responses_5xx":     m.responses5xx.Load(),
			"shed_total":        m.shed.Load(),
			"timeout_total":     m.timeouts.Load(),
		},
		Gauges: map[string]int64{
			"inflight_jobs": m.inflight.Load(),
			"queued_jobs":   m.queued.Load(),
		},
		Histograms: map[string]obs.HistogramSnapshot{
			"latency_us_queue_wait": toObsHistogram(m.latQueueWait.snapshot()),
			"latency_us_evaluate":   toObsHistogram(m.latEvaluate.snapshot()),
			"latency_us_sweep":      toObsHistogram(m.latSweep.snapshot()),
			"latency_us_fleet":      toObsHistogram(m.latFleet.snapshot()),
		},
	}
	if s.env.Metrics != nil {
		pipe := s.env.Metrics.Snapshot()
		for name, v := range pipe.Counters {
			out.Counters[name] = v
		}
		for name, v := range pipe.Gauges {
			out.Gauges[name] = v
		}
		for name, h := range pipe.Histograms {
			out.Histograms[name] = h
		}
	}
	return out
}

// toObsHistogram converts the server's JSON histogram form into the obs
// snapshot form (same cumulative le-keyed shape; only the catch-all key
// spelling differs).
func toObsHistogram(h histSnapshot) obs.HistogramSnapshot {
	out := obs.HistogramSnapshot{Count: h.Count, Sum: h.SumUS}
	if len(h.Buckets) > 0 {
		out.Buckets = make(map[string]int64, len(h.Buckets))
		for le, c := range h.Buckets {
			if le == "+inf" {
				le = "+Inf"
			}
			out.Buckets[le] = c
		}
	}
	return out
}

// parseStreamParams validates ?window, ?n and ?format.
func parseStreamParams(r *http.Request) (window time.Duration, limit int64, sse bool, err error) {
	window, sse = time.Second, true
	q := r.URL.Query()
	if v := q.Get("window"); v != "" {
		window, err = time.ParseDuration(v)
		if err != nil {
			return 0, 0, false, fmt.Errorf("bad window %q: %v", v, err)
		}
		if window < streamMinWindow {
			window = streamMinWindow
		}
		if window > streamMaxWindow {
			window = streamMaxWindow
		}
	}
	if v := q.Get("n"); v != "" {
		limit, err = strconv.ParseInt(v, 10, 64)
		if err != nil || limit < 0 {
			return 0, 0, false, fmt.Errorf("bad n %q (want a non-negative integer)", v)
		}
	}
	switch q.Get("format") {
	case "", "sse":
	case "ndjson":
		sse = false
	default:
		return 0, 0, false, fmt.Errorf("bad format %q (want sse or ndjson)", q.Get("format"))
	}
	return window, limit, sse, nil
}

func (s *Server) handleMetricsStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsStream.Add(1)
	window, limit, sse, err := parseStreamParams(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.metrics.countResponse(http.StatusOK)

	// The middleware set the echo header before we got here; carrying it
	// in every frame correlates the stream with the access log.
	reqID := w.Header().Get(requestIDHeader)

	prev := s.obsSnapshot()
	prevAt := time.Now()
	tick := time.NewTicker(window)
	defer tick.Stop()
	enc := json.NewEncoder(w)
	for seq := int64(0); limit == 0 || seq < limit; seq++ {
		select {
		case <-r.Context().Done():
			return
		case <-s.draining:
			return
		case <-tick.C:
		}
		cur := s.obsSnapshot()
		now := time.Now()
		frame := streamFrame{
			Seq:       seq,
			RequestID: reqID,
			Start:     prevAt,
			End:       now,
			WindowSec: now.Sub(prevAt).Seconds(),
			Delta:     cur.Delta(prev),
		}
		prev, prevAt = cur, now
		if sse {
			if _, err := fmt.Fprint(w, "event: metrics\ndata: "); err != nil {
				return
			}
		}
		if err := enc.Encode(frame); err != nil {
			return
		}
		if sse {
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
		}
		flusher.Flush()
	}
}
