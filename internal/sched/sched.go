// Package sched is the manycore lifetime-aware scheduler: it assigns
// the paper's nine-application suite to the cores of a tiled die each
// epoch and measures what the assignment policy does to chip lifetime.
//
// The paper qualifies one core against one workload; LifeSim-style
// follow-up work shows that on a manycore die reliability becomes a
// scheduling problem — wear accumulates per core, cores heat each
// other through shared silicon, and the policy that decides which core
// runs the hottest code decides which core dies first. This package
// compares three policies at identical performance:
//
//   - Static: workload group i runs on core i forever (the oracle-free
//     baseline every OS defaults to — also the best case for locality,
//     it never migrates).
//   - Coolest: each epoch the hottest group goes to the core that
//     measured coolest last epoch (temperature-reactive, wear-blind).
//   - WearLevel: each epoch the hottest group goes to the least-worn
//     core — equivalently, the most-worn core gets the coolest
//     workload — levelling accumulated damage rather than instantaneous
//     temperature.
//
// Iso-performance is by construction, not by measurement: the grouping
// of applications onto cores is computed once, before any policy runs
// (a snake deal of the suite by single-core average power into
// min(N, 9) groups), and every policy runs exactly those groups every
// epoch — only the group→core mapping differs. Total work, epoch
// durations and chip BIPS are therefore identical across policies, and
// lifetime is the only free variable.
package sched

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ramp/internal/core"
	"ramp/internal/exp"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
	"ramp/internal/power"
	"ramp/internal/thermal"
	"ramp/internal/trace"
)

// Policy selects the per-epoch group→core assignment rule.
type Policy int

// The three assignment policies.
const (
	Static      Policy = iota // group i pinned to core i
	Coolest                   // hottest group to the coolest core
	WearLevel                 // hottest group to the least-worn core
	NumPolicies               // count sentinel
)

var policyNames = [NumPolicies]string{
	Static: "static", Coolest: "coolest", WearLevel: "wearlevel",
}

// String returns the policy's short name.
func (p Policy) String() string {
	if p < 0 || p >= NumPolicies {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return policyNames[p]
}

// Policies returns all policies in comparison order.
func Policies() []Policy { return []Policy{Static, Coolest, WearLevel} }

// Config sizes one scheduling run.
type Config struct {
	NCores int
	// Epochs is the number of die scheduling epochs; each cycles through
	// the per-application epoch rows of the underlying evaluations.
	Epochs int
	// TqualK is the qualification temperature (the designer's cost
	// proxy, Section 3.7).
	TqualK float64
}

// DefaultConfig returns a run long enough for the policies to separate:
// twice around the suite's epoch rows.
func DefaultConfig(nCores int, opts exp.Options) Config {
	return Config{NCores: nCores, Epochs: 2 * max(1, opts.Epochs), TqualK: 400}
}

// Result is one policy's outcome on one die size.
type Result struct {
	Policy Policy
	NCores int

	Assessment core.DieAssessment

	// LifetimeYears is the wear lifetime the policies compete on: mean
	// time to the first core failure (the worst core's MTTF).
	LifetimeYears float64
	ChipFIT       float64
	ChipMTTFYears float64

	AvgW     float64
	MaxTempK float64
	BIPS     float64
	TimeSec  float64

	// Migrations counts group moves between consecutive epochs (Static
	// is always 0).
	Migrations int
	// CoreWear is each core's final wear accumulator (FIT·seconds).
	CoreWear []float64
}

// groupEpoch is one group's precomputed, policy-independent demand for
// one die epoch.
type groupEpoch struct {
	act     power.Vector // effective per-structure activity over the epoch
	heatW   float64      // single-core power proxy, orders groups hot→cold
	retired float64
}

// Simulator schedules the suite over one die size. Build it once per N
// with New and run each policy against it; the suite evaluations, die
// grouping and epoch demand tables are shared across policies (that
// sharing is the iso-performance guarantee).
type Simulator struct {
	env    *exp.Env
	cfg    Config
	die    *floorplan.Die
	model  *thermal.DieModel
	qual   core.Qualification
	groups [][]int // group -> suite app indices

	epochs  []float64      // per die epoch: duration (makespan), seconds
	demand  [][]groupEpoch // [epoch][group]
	retired float64
}

// New prepares a simulator: evaluates the suite on the base processor
// (cached across die sizes), groups the applications, and precomputes
// every epoch's per-group demand.
func New(env *exp.Env, cfg Config) (*Simulator, error) {
	return NewCtx(context.Background(), env, cfg)
}

// NewCtx is New with cancellation (the suite evaluation dominates).
func NewCtx(ctx context.Context, env *exp.Env, cfg Config) (*Simulator, error) {
	if cfg.NCores < 1 {
		return nil, fmt.Errorf("sched: need at least one core, got %d", cfg.NCores)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("sched: need at least one epoch, got %d", cfg.Epochs)
	}
	die, err := floorplan.NewDie(env.FP, cfg.NCores)
	if err != nil {
		return nil, err
	}
	qual := env.Qualification(cfg.TqualK)
	suite, err := env.EvaluateSuiteCtx(ctx, qual)
	if err != nil {
		return nil, err
	}
	for i := range suite {
		if len(suite[i].Epochs) == 0 {
			return nil, fmt.Errorf("sched: %s evaluation has no epoch rows (Options.DropEpochRows?)", suite[i].App)
		}
	}
	model, err := thermal.NewDie(die, thermal.DieParams(env.Tech.AmbientK, cfg.NCores))
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		env:    env,
		cfg:    cfg,
		die:    die,
		model:  model,
		qual:   qual,
		groups: groupApps(suite, cfg.NCores),
	}
	s.buildDemand(suite)
	return s, nil
}

// Groups returns the fixed app grouping (suite indices per group).
func (s *Simulator) Groups() [][]int { return s.groups }

// groupApps deals the suite into min(n, len(suite)) groups by a snake
// deal over descending single-core average power: the hottest app goes
// to group 0, then down the groups and back up, so group heat is as
// balanced as a fixed grouping can be. Ties break by suite order; the
// result depends only on the suite evaluation, never on a policy.
func groupApps(suite []exp.Result, n int) [][]int {
	g := min(n, len(suite))
	order := make([]int, len(suite))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return suite[order[a]].AvgW > suite[order[b]].AvgW
	})
	groups := make([][]int, g)
	for pos, app := range order {
		round, off := pos/g, pos%g
		k := off
		if round%2 == 1 {
			k = g - 1 - off // snake back
		}
		groups[k] = append(groups[k], app)
	}
	return groups
}

// buildDemand precomputes every die epoch's per-group activity, heat
// proxy and duration from the suite's epoch rows. Group members run
// sequentially within an epoch; the die epoch is the makespan across
// groups, and shorter groups idle the remainder (their activity is
// scaled by busy time, the clock-gated idle floor covers the rest).
func (s *Simulator) buildDemand(suite []exp.Result) {
	g := len(s.groups)
	s.epochs = make([]float64, s.cfg.Epochs)
	s.demand = make([][]groupEpoch, s.cfg.Epochs)
	for e := 0; e < s.cfg.Epochs; e++ {
		s.demand[e] = make([]groupEpoch, g)
		var makespan float64
		busy := make([]float64, g)
		for k, apps := range s.groups {
			for _, a := range apps {
				rows := suite[a].Epochs
				row := &rows[e%len(rows)]
				busy[k] += row.Sim.TimeSec
			}
			if busy[k] > makespan {
				makespan = busy[k]
			}
		}
		s.epochs[e] = makespan
		for k, apps := range s.groups {
			d := &s.demand[e][k]
			for _, a := range apps {
				rows := suite[a].Epochs
				row := &rows[e%len(rows)]
				w := row.Sim.TimeSec / makespan
				for st := range d.act {
					d.act[st] += row.Sim.Activity[st] * w
				}
				d.heatW += row.TotalW * w
				d.retired += float64(row.Sim.Retired)
			}
			s.retired += d.retired
		}
	}
}

// Run executes one policy over the configured epochs.
func (s *Simulator) Run(p Policy) (Result, error) {
	return s.RunCtx(context.Background(), p)
}

// RunCtx is Run with cancellation, checked at every epoch boundary.
// The run follows the paper's two-pass heat-sink methodology: pass one
// estimates average chip power to set the shared sink temperature, pass
// two re-runs the schedule against the settled sink; wear and policy
// decisions restart each pass (a fresh DieEngine), and the final pass
// is reported.
func (s *Simulator) RunCtx(ctx context.Context, p Policy) (Result, error) {
	if p < 0 || p >= NumPolicies {
		return Result{}, fmt.Errorf("sched: unknown policy %v", p)
	}
	ctx, span := s.env.Trace.StartTrack(ctx, "sched.run")
	if span.Enabled() {
		span.Annotate(obs.Str("policy", p.String()))
		span.AnnotateInt("cores", int64(s.cfg.NCores))
	}
	defer span.End()

	var (
		engine     *core.DieEngine
		res        Result
		sinkK      = s.env.Tech.AmbientK + 30 // initial guess, as in exp
		passes     = max(1, s.env.Opts.SinkPasses)
		migrations *obs.Counter
		epochsCtr  *obs.Counter
	)
	if s.env.Metrics != nil {
		migrations = s.env.Metrics.Counter("sched_migrations")
		epochsCtr = s.env.Metrics.Counter("sched_epochs")
	}
	for pass := 0; pass < passes; pass++ {
		var err error
		engine, err = core.NewDieEngine(s.die, s.env.Params, s.qual)
		if err != nil {
			return Result{}, err
		}
		passCtx, ps := s.env.Trace.Start(ctx, "sched.sinkpass")
		ps.AnnotateInt("pass", int64(pass))
		res = Result{Policy: p, NCores: s.cfg.NCores, CoreWear: make([]float64, s.cfg.NCores)}
		st := newRunState(s)
		var wSum float64
		for e := 0; e < s.cfg.Epochs; e++ {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			_, es := s.env.Trace.Start(passCtx, "sched.epoch")
			es.AnnotateInt("epoch", int64(e))
			moved := s.assign(p, e, st, engine)
			res.Migrations += moved
			migrations.Add(int64(moved))
			epochsCtr.Inc()
			totalW := s.epoch(e, st, sinkK)
			if err := s.observe(e, st, engine); err != nil {
				return Result{}, err
			}
			dur := s.epochs[e]
			wSum += totalW * dur
			res.TimeSec += dur
			if mt := st.maxTemp(); mt > res.MaxTempK {
				res.MaxTempK = mt
			}
			if es.Enabled() {
				es.AnnotateInt("migrations", int64(moved))
				worst, wear := st.worstWear(engine)
				es.AnnotateInt("worst_core", int64(worst))
				es.AnnotateInt("worst_wear_fits_x1000", int64(wear*1000))
			}
			es.End()
		}
		res.AvgW = wSum / res.TimeSec
		sinkK = s.model.SinkSteadyTemp(res.AvgW)
		ps.End()
	}
	a, err := engine.Assess()
	if err != nil {
		return Result{}, err
	}
	res.Assessment = a
	res.LifetimeYears = a.MinCoreMTTFYears
	res.ChipFIT = a.ChipFIT
	res.ChipMTTFYears = a.ChipMTTFYears
	res.BIPS = s.retired / res.TimeSec / 1e9
	for k := 0; k < s.cfg.NCores; k++ {
		res.CoreWear[k] = engine.CoreWear(k)
	}
	if s.env.Metrics != nil {
		s.env.Metrics.Gauge("sched_worst_core").Set(int64(a.WorstCore))
	}
	return res, nil
}

// runState is one pass's mutable scheduling state.
type runState struct {
	assigned  []int     // group -> core, -1 before the first epoch
	coreOf    []int     // core -> group, -1 if idle
	temps     []float64 // flat per-block temperatures, last solve
	prevTemps []float64 // previous fixed-point iterate (convergence test)
	pw        []float64 // flat per-block power scratch
	prevMax   []float64 // per-core max temp, last epoch
	ones      power.Vector
	zero      power.Vector
}

func newRunState(s *Simulator) *runState {
	st := &runState{
		assigned:  make([]int, len(s.groups)),
		coreOf:    make([]int, s.cfg.NCores),
		temps:     make([]float64, s.die.NumBlocks()),
		prevTemps: make([]float64, s.die.NumBlocks()),
		pw:        make([]float64, s.die.NumBlocks()),
		prevMax:   make([]float64, s.cfg.NCores),
		ones:      power.Ones(),
	}
	for k := range st.assigned {
		st.assigned[k] = -1
	}
	return st
}

// assign maps groups to cores for epoch e under policy p and returns
// the number of groups that moved. Every ordering ties deterministically
// (group index, then core index).
func (s *Simulator) assign(p Policy, e int, st *runState, engine *core.DieEngine) int {
	g := len(s.groups)
	for c := range st.coreOf {
		st.coreOf[c] = -1
	}
	next := make([]int, g)
	switch p {
	case Static:
		for k := 0; k < g; k++ {
			next[k] = k
		}
	case Coolest, WearLevel:
		// Hottest group first...
		order := make([]int, g)
		for k := range order {
			order[k] = k
		}
		dem := s.demand[e]
		sort.SliceStable(order, func(a, b int) bool {
			return dem[order[a]].heatW > dem[order[b]].heatW
		})
		// ...to the coolest / least-worn core first.
		cores := make([]int, s.cfg.NCores)
		for c := range cores {
			cores[c] = c
		}
		if p == Coolest {
			sort.SliceStable(cores, func(a, b int) bool {
				return st.prevMax[cores[a]] < st.prevMax[cores[b]]
			})
		} else {
			sort.SliceStable(cores, func(a, b int) bool {
				return engine.CoreWear(cores[a]) < engine.CoreWear(cores[b])
			})
		}
		for i, grp := range order {
			next[grp] = cores[i]
		}
	}
	moved := 0
	for k := 0; k < g; k++ {
		if st.assigned[k] >= 0 && st.assigned[k] != next[k] {
			moved++
		}
		st.assigned[k] = next[k]
		st.coreOf[next[k]] = k
	}
	return moved
}

// epoch runs the leakage-temperature fixed point for one die epoch —
// the manycore counterpart of exp's epochFixedPoint, on the tiled LU
// system — leaving per-block temperatures in st.temps and returning the
// converged total chip power.
func (s *Simulator) epoch(e int, st *runState, sinkK float64) float64 {
	nb := s.die.NumBlocks()
	ns := int(floorplan.NumStructures)
	for i := 0; i < nb; i++ {
		st.temps[i] = sinkK + 15
	}
	limit := max(1, s.env.Opts.LeakageIters)
	tol := s.env.Opts.TolK
	var totalW float64
	for it := 0; it < limit; it++ {
		totalW = 0
		for c := 0; c < s.cfg.NCores; c++ {
			act := &st.zero
			if grp := st.coreOf[c]; grp >= 0 {
				act = &s.demand[e][grp].act
			}
			lo := c * ns
			s.env.Power.ComputeInto(st.pw[lo:lo+ns], *act, st.ones, st.temps[lo:lo+ns], s.env.Base.VddV, s.env.Base.FreqHz)
		}
		for i := 0; i < nb; i++ {
			totalW += st.pw[i]
		}
		copy(st.prevTemps, st.temps)
		s.model.QuasiSteadyInto(st.temps, st.pw, sinkK)
		if tol > 0 && maxAbsDelta(st.temps, st.prevTemps) < tol {
			break
		}
	}
	for c := 0; c < s.cfg.NCores; c++ {
		st.prevMax[c] = s.model.MaxCoreTemp(st.temps, c)
	}
	return totalW
}

// maxAbsDelta returns the largest per-component absolute difference.
func maxAbsDelta(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// observe folds epoch e into every core's wear accumulator.
func (s *Simulator) observe(e int, st *runState, engine *core.DieEngine) error {
	ns := int(floorplan.NumStructures)
	dur := s.epochs[e]
	var iv core.Interval
	iv.DurationSec = dur
	for c := 0; c < s.cfg.NCores; c++ {
		var act *power.Vector
		if grp := st.coreOf[c]; grp >= 0 {
			act = &s.demand[e][grp].act
		} else {
			act = &st.zero
		}
		lo := c * ns
		for i := 0; i < ns; i++ {
			iv.Structures[i] = core.Conditions{
				TempK:      st.temps[lo+i],
				VddV:       s.env.Base.VddV,
				FreqHz:     s.env.Base.FreqHz,
				Activity:   act[i],
				OnFraction: 1,
			}
		}
		if err := engine.ObserveCore(c, iv); err != nil {
			return err
		}
	}
	return nil
}

func (st *runState) maxTemp() float64 {
	var m float64
	for _, t := range st.prevMax {
		if t > m {
			m = t
		}
	}
	return m
}

func (st *runState) worstWear(engine *core.DieEngine) (idx int, wear float64) {
	for c := 0; c < len(st.prevMax); c++ {
		if w := engine.CoreWear(c); w > wear {
			wear, idx = w, c
		}
	}
	return idx, wear
}

// SingleCoreDRM returns the paper's single-core baseline for the same
// suite: the workload FIT value (Section 3.6 time-weighted average over
// the nine applications on the base processor) and its MTTF in years.
func SingleCoreDRM(env *exp.Env, tqualK float64) (fitValue, mttfYears float64, err error) {
	return SingleCoreDRMCtx(context.Background(), env, tqualK)
}

// SingleCoreDRMCtx is SingleCoreDRM with cancellation.
func SingleCoreDRMCtx(ctx context.Context, env *exp.Env, tqualK float64) (float64, float64, error) {
	suite, err := env.EvaluateSuiteCtx(ctx, env.Qualification(tqualK))
	if err != nil {
		return 0, 0, err
	}
	comps := make([]core.WorkloadComponent, len(suite))
	for i, r := range suite {
		var t float64
		for e := range r.Epochs {
			t += r.Epochs[e].Sim.TimeSec
		}
		comps[i] = core.WorkloadComponent{Name: r.App, Weight: t, FIT: r.FIT()}
	}
	fit, err := core.WorkloadFIT(comps)
	if err != nil {
		return 0, 0, err
	}
	return fit, core.WorkloadMTTFYears(fit), nil
}

// Apps returns the suite profiles in the order the simulator's group
// indices refer to (trace.Apps order).
func Apps() []trace.Profile { return trace.Apps() }
