package sched

import (
	"math"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/trace"
)

func quickSim(t *testing.T, n int) *Simulator {
	t.Helper()
	env := exp.NewEnv(exp.QuickOptions())
	s, err := New(env, DefaultConfig(n, env.Opts))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGroupsPartitionSuite checks the fixed grouping: min(N, 9) groups,
// every application in exactly one group, identical across rebuilds.
func TestGroupsPartitionSuite(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16} {
		s := quickSim(t, n)
		want := min(n, len(trace.Apps()))
		if len(s.Groups()) != want {
			t.Fatalf("N=%d: %d groups, want %d", n, len(s.Groups()), want)
		}
		seen := make([]int, len(trace.Apps()))
		for _, apps := range s.Groups() {
			if len(apps) == 0 {
				t.Fatalf("N=%d: empty group", n)
			}
			for _, a := range apps {
				seen[a]++
			}
		}
		for a, c := range seen {
			if c != 1 {
				t.Fatalf("N=%d: app %d appears %d times", n, a, c)
			}
		}
	}
}

// TestRunDeterminism pins the acceptance criterion that the policy
// table is deterministic: two independent simulators produce bitwise
// identical lifetimes, migration counts and wear vectors.
func TestRunDeterminism(t *testing.T) {
	a := quickSim(t, 4)
	b := quickSim(t, 4)
	for _, p := range Policies() {
		ra, err := a.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if ra.LifetimeYears != rb.LifetimeYears || ra.ChipFIT != rb.ChipFIT ||
			ra.Migrations != rb.Migrations || ra.AvgW != rb.AvgW {
			t.Fatalf("%v: non-deterministic result:\n %+v\n %+v", p, ra, rb)
		}
		for k := range ra.CoreWear {
			if ra.CoreWear[k] != rb.CoreWear[k] {
				t.Fatalf("%v: core %d wear differs across runs", p, k)
			}
		}
	}
}

// TestIsoPerformance checks that the policies are compared at identical
// performance: same total time, same BIPS, bitwise.
func TestIsoPerformance(t *testing.T) {
	s := quickSim(t, 4)
	var first Result
	for i, p := range Policies() {
		r, err := s.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r
			continue
		}
		if r.TimeSec != first.TimeSec || r.BIPS != first.BIPS {
			t.Fatalf("%v: time/BIPS (%.9g, %.9g) differ from %v (%.9g, %.9g)",
				p, r.TimeSec, r.BIPS, first.Policy, first.TimeSec, first.BIPS)
		}
	}
}

// TestWearLevelBeatsStatic pins the headline acceptance criterion:
// wear-leveling strictly beats static assignment on lifetime at
// iso-performance for N ≥ 4.
func TestWearLevelBeatsStatic(t *testing.T) {
	for _, n := range []int{4, 8} {
		s := quickSim(t, n)
		st, err := s.Run(Static)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := s.Run(WearLevel)
		if err != nil {
			t.Fatal(err)
		}
		if !(wl.LifetimeYears > st.LifetimeYears) {
			t.Fatalf("N=%d: wearlevel lifetime %.4f y not strictly above static %.4f y",
				n, wl.LifetimeYears, st.LifetimeYears)
		}
		if st.Migrations != 0 {
			t.Fatalf("N=%d: static migrated %d times", n, st.Migrations)
		}
		if wl.Migrations == 0 {
			t.Fatalf("N=%d: wear-leveling never migrated", n)
		}
		// Leveling means a tighter wear spread than static pinning.
		spread := func(w []float64) float64 {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range w {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			return hi - lo
		}
		if !(spread(wl.CoreWear) < spread(st.CoreWear)) {
			t.Fatalf("N=%d: wear spread not reduced: wearlevel %.4g, static %.4g",
				n, spread(wl.CoreWear), spread(st.CoreWear))
		}
	}
}

// TestN1PoliciesCoincide checks the single-core special case: with one
// core and one group there is nothing to schedule, so every policy
// returns the identical result and never migrates.
func TestN1PoliciesCoincide(t *testing.T) {
	s := quickSim(t, 1)
	base, err := s.Run(Static)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{Coolest, WearLevel} {
		r, err := s.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.LifetimeYears != base.LifetimeYears || r.ChipFIT != base.ChipFIT ||
			r.Migrations != 0 || r.AvgW != base.AvgW {
			t.Fatalf("%v on N=1 differs from static: %+v vs %+v", p, r, base)
		}
	}
}

// TestSingleCoreDRM sanity-checks the paper's single-core baseline:
// positive workload FIT, MTTF in a plausible range.
func TestSingleCoreDRM(t *testing.T) {
	env := exp.NewEnv(exp.QuickOptions())
	fit, years, err := SingleCoreDRM(env, 400)
	if err != nil {
		t.Fatal(err)
	}
	if fit <= 0 || years <= 0 {
		t.Fatalf("baseline FIT %.1f / %.2f years not positive", fit, years)
	}
	if years < 1 || years > 500 {
		t.Fatalf("baseline MTTF %.2f years implausible", years)
	}
}
