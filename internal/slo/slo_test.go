package slo

import (
	"math"
	"strings"
	"testing"
	"time"

	"ramp/internal/obs"
)

// mkDelta builds one window delta with the given counters and an
// optional latency histogram holding `fast` obs at 10µs and `slow` obs
// at 10000µs.
func mkDelta(seq int64, counters map[string]int64, fast, slow int64) obs.WindowDelta {
	d := obs.WindowDelta{
		Seq:   seq,
		Start: time.Unix(seq, 0),
		End:   time.Unix(seq+1, 0),
	}
	d.Delta.Counters = counters
	if fast+slow > 0 {
		reg := obs.NewRegistry()
		rh := reg.Histogram("lat")
		for i := int64(0); i < fast; i++ {
			rh.Observe(10)
		}
		for i := int64(0); i < slow; i++ {
			rh.Observe(10000)
		}
		d.Delta.Histograms = reg.Snapshot().Histograms
	}
	return d
}

// sum builds the whole-run snapshot from deltas (counters add,
// histograms merge).
func sum(deltas []obs.WindowDelta) obs.Snapshot {
	var total obs.Snapshot
	total.Counters = map[string]int64{}
	var lat obs.HistogramSnapshot
	for _, d := range deltas {
		for k, v := range d.Delta.Counters {
			total.Counters[k] += v
		}
		lat = lat.Merge(d.Delta.Histograms["lat"])
	}
	total.Histograms = map[string]obs.HistogramSnapshot{"lat": lat}
	return total
}

func rateObj() Objective {
	return Objective{
		Name: "shed-rate", Bad: []string{"shed"}, Total: "reqs", MaxRatio: 0.05,
		FastWindows: 2, SlowWindows: 4, FastBurn: 10, SlowBurn: 2,
	}
}

func TestRateObjectiveCompliant(t *testing.T) {
	var deltas []obs.WindowDelta
	for i := int64(0); i < 6; i++ {
		deltas = append(deltas, mkDelta(i, map[string]int64{"reqs": 100, "shed": 1}, 0, 0))
	}
	res, err := Evaluate([]Objective{rateObj()}, sum(deltas), deltas)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Breached {
		t.Errorf("1%% shed under a 5%% budget breached: %+v", r)
	}
	if math.Abs(r.Overall-0.01) > 1e-12 {
		t.Errorf("overall = %g, want 0.01", r.Overall)
	}
	if math.Abs(r.Burn-0.2) > 1e-12 {
		t.Errorf("burn = %g, want 0.2", r.Burn)
	}
}

func TestRateObjectiveBudgetExhausted(t *testing.T) {
	deltas := []obs.WindowDelta{mkDelta(0, map[string]int64{"reqs": 100, "shed": 20}, 0, 0)}
	res, err := Evaluate([]Objective{rateObj()}, sum(deltas), deltas)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Breached || !strings.Contains(res[0].Reason, "budget exhausted") {
		t.Errorf("20%% shed under a 5%% budget did not breach: %+v", res[0])
	}
}

// TestBurnGateNeedsBothWindows: a short spike trips the fast window but
// not the slow one — no breach; a sustained burn trips both.
func TestBurnGateNeedsBothWindows(t *testing.T) {
	quiet := map[string]int64{"reqs": 100, "shed": 0}
	spike := map[string]int64{"reqs": 100, "shed": 80}

	// 10 quiet windows, 2 spiking ones at the end: fast burn is huge,
	// slow burn (last 4: 2 quiet + 2 spike = 160/400 = 40% → burn 8)...
	// use a longer quiet tail so the slow window stays under its 2×.
	var deltas []obs.WindowDelta
	for i := int64(0); i < 2; i++ {
		deltas = append(deltas, mkDelta(i, spike, 0, 0))
	}
	for i := int64(2); i < 12; i++ {
		deltas = append(deltas, mkDelta(i, quiet, 0, 0))
	}
	// Spikes at the START: the fast window (last 2) is quiet now.
	o := rateObj()
	o.MaxRatio = 0.2 // keep the overall 160/1200 ≈ 13% inside budget
	res, err := Evaluate([]Objective{o}, sum(deltas), deltas)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Breached {
		t.Errorf("old spike outside both windows breached: %+v", res[0])
	}

	// Sustained: every window sheds 80% → both windows burn 4× over a
	// 20% budget with FastBurn=3, SlowBurn=2.
	var hot []obs.WindowDelta
	for i := int64(0); i < 6; i++ {
		hot = append(hot, mkDelta(i, spike, 0, 0))
	}
	o2 := rateObj()
	o2.MaxRatio = 0.9 // overall 80% < 90%: compliance alone won't trip
	o2.FastBurn = 0.8 // measured burn is 0.8/0.9 ≈ 0.889 on both windows
	o2.SlowBurn = 0.8
	res, err = Evaluate([]Objective{o2}, sum(hot), hot)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Breached || !strings.Contains(res[0].Reason, "burn rate") {
		t.Errorf("sustained burn did not trip the multi-window gate: %+v", res[0])
	}
}

func TestLatencyObjective(t *testing.T) {
	// 99 fast (10µs) + 1 slow (10000µs) per window: p99 sits right at
	// the boundary; with a 1000µs bound exactly 1% of events are bad.
	var deltas []obs.WindowDelta
	for i := int64(0); i < 4; i++ {
		deltas = append(deltas, mkDelta(i, map[string]int64{"reqs": 100}, 99, 1))
	}
	o := Objective{Name: "p95-lat", Hist: "lat", P: 0.95, MaxUS: 1000}
	res, err := Evaluate([]Objective{o}, sum(deltas), deltas)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Kind != "latency" {
		t.Errorf("kind = %q", r.Kind)
	}
	if math.Abs(r.Budget-0.05) > 1e-12 {
		t.Errorf("budget = %g, want 0.05", r.Budget)
	}
	if r.Breached {
		t.Errorf("1%% slow under a 5%% budget breached: %+v", r)
	}
	if math.Abs(r.Overall-0.01) > 1e-9 {
		t.Errorf("overall bad fraction = %g, want 0.01", r.Overall)
	}

	// Tighten the quantile to p99 with the same traffic: exactly at
	// budget, not over — still compliant. Then make half the traffic
	// slow: breach.
	bad := []obs.WindowDelta{mkDelta(0, map[string]int64{"reqs": 100}, 50, 50)}
	res, err = Evaluate([]Objective{o}, sum(bad), bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Breached {
		t.Errorf("50%% slow under a 5%% budget did not breach: %+v", res[0])
	}
}

func TestEvaluateNoTraffic(t *testing.T) {
	res, err := Evaluate([]Objective{rateObj()}, obs.Snapshot{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Breached {
		t.Errorf("no traffic breached: %+v", res[0])
	}
}

func TestValidate(t *testing.T) {
	bad := []Objective{
		{},                            // no name
		{Name: "x"},                   // neither form
		{Name: "x", Hist: "h", P: 2},  // p out of range
		{Name: "x", Hist: "h", P: .9}, // no bound
		{Name: "x", Bad: []string{"b"}, Total: "t", MaxRatio: 1.5},
		{Name: "x", Hist: "h", P: .9, MaxUS: 10, Bad: []string{"b"}, Total: "t", MaxRatio: .1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, o)
		}
	}
	good := Objective{Name: "ok", Hist: "h", P: 0.99, MaxUS: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid objective rejected: %v", err)
	}
}

func TestParse(t *testing.T) {
	objs, err := Parse([]byte(`[
		{"name":"p99","hist":"load_latency_us","p":0.99,"max_us":200000},
		{"name":"shed","bad":["load_shed_total"],"total":"load_requests_total","max_ratio":0.05}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Kind() != "latency" || objs[1].Kind() != "rate" {
		t.Fatalf("parsed %+v", objs)
	}
	if _, err := Parse([]byte(`[{"name":"x","hist":"h","p":0.5,"max_us":1,"typo":true}]`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`[{"name":"x"}]`)); err == nil {
		t.Error("invalid objective accepted")
	}
	if _, err := Parse([]byte(`[] trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestBreachedAndTable(t *testing.T) {
	res := []Result{{Name: "a"}, {Name: "b", Breached: true, Reason: "why"}}
	if !Breached(res) {
		t.Error("Breached missed a breach")
	}
	if Breached(res[:1]) {
		t.Error("Breached false positive")
	}
	var sb strings.Builder
	WriteTable(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "BREACH") || !strings.Contains(out, "why") {
		t.Errorf("table missing verdict:\n%s", out)
	}
}
