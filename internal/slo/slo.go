// Package slo evaluates declarative service-level objectives over
// windowed metric deltas (internal/obs.WindowDelta) with multi-window
// burn-rate logic — the gate rampload uses to turn a load run into a CI
// verdict.
//
// An objective comes in two shapes that reduce to the same arithmetic:
//
//   - a rate objective names bad-event counters and a total counter
//     ("429 sheds must stay under 5% of requests"): budget = MaxRatio;
//   - a latency objective names a latency histogram, a quantile and a
//     bound ("p99 ≤ 200ms"): the bound converts to a countable bad
//     fraction via HistogramSnapshot.FractionAbove — "p99 ≤ 200ms" is
//     exactly "no more than 1% of requests slower than 200ms" — so the
//     budget is 1−P and the same burn-rate math applies.
//
// The burn rate is the classic SRE quantity: observed bad fraction
// divided by the budget. Burn 1 means the run is consuming its error
// budget exactly as fast as allowed; burn 10 means ten times too fast.
// Two trip wires per objective, both required to call a breach on burn
// alone (the multi-window pattern: the fast window catches the spike,
// the slow window proves it is sustained, and requiring both keeps
// one-window blips from flapping the gate):
//
//   - fast: burn over the last FastWindows deltas ≥ FastBurn,
//   - slow: burn over the last SlowWindows deltas ≥ SlowBurn.
//
// Independently, exhausting the budget over the whole run (overall bad
// fraction > budget) is always a breach — a CI load run is finite, so
// final compliance is decidable.
package slo

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"ramp/internal/obs"
)

// Default burn-gate geometry: with rampload's 1-second windows this is
// a 6 s fast window at 10× burn and a 30 s slow window at 2× burn.
const (
	DefaultFastWindows = 6
	DefaultSlowWindows = 30
	DefaultFastBurn    = 10
	DefaultSlowBurn    = 2
)

// Objective is one declarative SLO. Exactly one of the latency form
// (Hist/P/MaxUS) or the rate form (Bad/Total/MaxRatio) must be set.
type Objective struct {
	Name string `json:"name"`

	// Latency form: the named histogram's P-quantile must stay ≤ MaxUS
	// microseconds; equivalently, at most (1−P) of observations may
	// exceed MaxUS.
	Hist  string  `json:"hist,omitempty"`
	P     float64 `json:"p,omitempty"`
	MaxUS float64 `json:"max_us,omitempty"`

	// Rate form: the sum of the Bad counters must stay ≤ MaxRatio of
	// the Total counter.
	Bad      []string `json:"bad,omitempty"`
	Total    string   `json:"total,omitempty"`
	MaxRatio float64  `json:"max_ratio,omitempty"`

	// Burn-rate gate (0 → the Default* constants).
	FastWindows int     `json:"fast_windows,omitempty"`
	SlowWindows int     `json:"slow_windows,omitempty"`
	FastBurn    float64 `json:"fast_burn,omitempty"`
	SlowBurn    float64 `json:"slow_burn,omitempty"`
}

// Kind reports which form the objective takes ("latency" or "rate").
func (o *Objective) Kind() string {
	if o.Hist != "" {
		return "latency"
	}
	return "rate"
}

// Budget is the allowed bad fraction: 1−P for latency objectives,
// MaxRatio for rate objectives.
func (o *Objective) Budget() float64 {
	if o.Hist != "" {
		return 1 - o.P
	}
	return o.MaxRatio
}

// Validate rejects malformed objectives.
func (o *Objective) Validate() error {
	if o.Name == "" {
		return errors.New("slo: objective needs a name")
	}
	latency := o.Hist != ""
	rate := len(o.Bad) > 0 || o.Total != "" || o.MaxRatio > 0
	switch {
	case latency && rate:
		return fmt.Errorf("slo: %s sets both latency (hist) and rate (bad/total) fields", o.Name)
	case latency:
		if o.P <= 0 || o.P >= 1 {
			return fmt.Errorf("slo: %s quantile p=%g outside (0, 1)", o.Name, o.P)
		}
		if o.MaxUS <= 0 {
			return fmt.Errorf("slo: %s latency bound max_us=%g must be positive", o.Name, o.MaxUS)
		}
	case rate:
		if len(o.Bad) == 0 || o.Total == "" {
			return fmt.Errorf("slo: %s rate objective needs bad counters and a total counter", o.Name)
		}
		if o.MaxRatio <= 0 || o.MaxRatio >= 1 {
			return fmt.Errorf("slo: %s max_ratio=%g outside (0, 1)", o.Name, o.MaxRatio)
		}
	default:
		return fmt.Errorf("slo: %s sets neither latency nor rate fields", o.Name)
	}
	if o.FastWindows < 0 || o.SlowWindows < 0 || o.FastBurn < 0 || o.SlowBurn < 0 {
		return fmt.Errorf("slo: %s burn-gate fields must be non-negative", o.Name)
	}
	return nil
}

// gate returns the burn-gate geometry with defaults applied.
func (o *Objective) gate() (fastN, slowN int, fastBurn, slowBurn float64) {
	fastN, slowN = o.FastWindows, o.SlowWindows
	fastBurn, slowBurn = o.FastBurn, o.SlowBurn
	if fastN == 0 {
		fastN = DefaultFastWindows
	}
	if slowN == 0 {
		slowN = DefaultSlowWindows
	}
	if fastBurn == 0 {
		fastBurn = DefaultFastBurn
	}
	if slowBurn == 0 {
		slowBurn = DefaultSlowBurn
	}
	return fastN, slowN, fastBurn, slowBurn
}

// badFraction computes the objective's (bad, total) event counts over
// one snapshot (a window delta or a whole-run delta).
func (o *Objective) badFraction(s obs.Snapshot) (bad, total float64) {
	if o.Hist != "" {
		h := s.Histograms[o.Hist]
		total = float64(h.Count)
		bad = h.FractionAbove(o.MaxUS) * total
		return bad, total
	}
	for _, name := range o.Bad {
		bad += float64(s.Counters[name])
	}
	return bad, float64(s.Counters[o.Total])
}

// mergeTail folds the last n deltas into one snapshot view for the
// objective: counters sum, the objective's histogram merges.
func (o *Objective) mergeTail(deltas []obs.WindowDelta, n int) obs.Snapshot {
	if n > len(deltas) {
		n = len(deltas)
	}
	tail := deltas[len(deltas)-n:]
	var m obs.Snapshot
	m.Counters = make(map[string]int64)
	var h obs.HistogramSnapshot
	for _, d := range tail {
		for _, name := range o.Bad {
			m.Counters[name] += d.Delta.Counters[name]
		}
		if o.Total != "" {
			m.Counters[o.Total] += d.Delta.Counters[o.Total]
		}
		if o.Hist != "" {
			h = h.Merge(d.Delta.Histograms[o.Hist])
		}
	}
	if o.Hist != "" {
		m.Histograms = map[string]obs.HistogramSnapshot{o.Hist: h}
	}
	return m
}

// Result is one objective's verdict.
type Result struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Budget float64 `json:"budget"`

	// Overall is the whole-run bad fraction; Burn is Overall/Budget.
	Events  float64 `json:"events"`
	Overall float64 `json:"overall_bad_fraction"`
	Burn    float64 `json:"burn"`

	// FastBurn/SlowBurn are the measured tail-window burn rates;
	// Windows is how many deltas were available.
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	Windows  int     `json:"windows"`

	Breached bool   `json:"breached"`
	Reason   string `json:"reason,omitempty"`
}

// burn converts a (bad, total) pair into a burn rate against budget.
func burn(bad, total, budget float64) float64 {
	if total <= 0 || budget <= 0 {
		return 0
	}
	return (bad / total) / budget
}

// Evaluate scores every objective against the whole-run snapshot delta
// (overall compliance) and the retained window deltas (burn gate).
// Objectives are validated first; the first invalid one fails the call.
func Evaluate(objs []Objective, total obs.Snapshot, deltas []obs.WindowDelta) ([]Result, error) {
	results := make([]Result, 0, len(objs))
	for i := range objs {
		o := &objs[i]
		if err := o.Validate(); err != nil {
			return nil, err
		}
		budget := o.Budget()
		bad, n := o.badFraction(total)
		res := Result{
			Name: o.Name, Kind: o.Kind(), Budget: budget,
			Events: n, Windows: len(deltas),
		}
		if n > 0 {
			res.Overall = bad / n
			res.Burn = burn(bad, n, budget)
		}
		fastN, slowN, fastBurn, slowBurn := o.gate()
		if len(deltas) > 0 {
			fb, ft := o.badFraction(o.mergeTail(deltas, fastN))
			sb, st := o.badFraction(o.mergeTail(deltas, slowN))
			res.FastBurn = burn(fb, ft, budget)
			res.SlowBurn = burn(sb, st, budget)
		}
		switch {
		case res.Overall > budget:
			res.Breached = true
			res.Reason = fmt.Sprintf("budget exhausted: bad fraction %.4g > %.4g", res.Overall, budget)
		case len(deltas) >= fastN && res.FastBurn >= fastBurn && res.SlowBurn >= slowBurn:
			res.Breached = true
			res.Reason = fmt.Sprintf("burn rate: fast %.3g ≥ %.3g and slow %.3g ≥ %.3g",
				res.FastBurn, fastBurn, res.SlowBurn, slowBurn)
		}
		results = append(results, res)
	}
	return results, nil
}

// Breached reports whether any result breached.
func Breached(results []Result) bool {
	for _, r := range results {
		if r.Breached {
			return true
		}
	}
	return false
}

// Parse decodes a declarative objective list: a JSON array of
// Objective objects, strictly (unknown fields are errors, so a typo'd
// threshold can never silently vanish).
func Parse(data []byte) ([]Objective, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var objs []Objective
	if err := dec.Decode(&objs); err != nil {
		return nil, fmt.Errorf("slo: invalid objectives JSON: %v", err)
	}
	if dec.More() {
		return nil, errors.New("slo: trailing data after objectives array")
	}
	for i := range objs {
		if err := objs[i].Validate(); err != nil {
			return nil, err
		}
	}
	return objs, nil
}

// WriteTable prints one line per result — the rampload summary's SLO
// section.
func WriteTable(w io.Writer, results []Result) {
	for _, r := range results {
		verdict := "ok"
		if r.Breached {
			verdict = "BREACH"
		}
		fmt.Fprintf(w, "  %-24s %-8s budget=%-8.4g bad=%-8.4g burn=%-7.3g fast=%-7.3g slow=%-7.3g %s",
			r.Name, r.Kind, r.Budget, r.Overall, r.Burn, r.FastBurn, r.SlowBurn, verdict)
		if r.Reason != "" {
			fmt.Fprintf(w, "  (%s)", r.Reason)
		}
		fmt.Fprintln(w)
	}
}
