package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path, e.g. "ramp/internal/core"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages of the enclosing module
// using only the standard library: module-local imports are parsed and
// checked from source by the loader itself; all other imports (the
// standard library) are delegated to go/importer's source importer,
// which checks them from GOROOT.
//
// The loader parses with the default build configuration (current
// GOOS/GOARCH, no extra tags), so `rampdebug`-gated files are excluded
// exactly as in a normal `go build`. Test files are never loaded:
// rampvet's analyzers target production code, and several of them
// (floatcmp, seeddet) explicitly permit in tests what they flag outside
// them.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	tags map[string]bool
}

// NewLoader builds a loader for the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	return NewLoaderWithTags(dir)
}

// NewLoaderWithTags is NewLoader with extra build tags enabled on top
// of the default GOOS/GOARCH/gc set — e.g. "rampdebug" to analyze the
// runtime-invariant implementation files the default build excludes.
// Analyzers always see exactly the tree the compiler would build under
// the same tags.
func NewLoaderWithTags(dir string, extraTags ...string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	tags := map[string]bool{
		runtime.GOOS:   true,
		runtime.GOARCH: true,
		"gc":           true,
	}
	for _, t := range extraTags {
		if t != "" {
			tags[t] = true
		}
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		tags:       tags,
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
// FindModuleRoot returns the root directory of the module containing
// dir (the directory holding go.mod). The rampvet driver uses it to
// resolve the default baseline path before any package is loaded.
func FindModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	return root, err
}

func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// Import implements types.Importer over the module + standard library.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads the module package with the given import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	pkg, err := l.check(dir, path)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir loads and type-checks the package in dir (which must be
// inside the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path)
}

// check parses and type-checks the package in dir.
func (l *Loader) check(dir, path string) (*Package, error) {
	names, err := l.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goFiles returns the buildable non-test Go files in dir, respecting
// //go:build constraints under the loader's tag set.
func (l *Loader) goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := l.fileMatches(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// fileMatches evaluates the file's //go:build (or legacy // +build)
// constraint, if any, against the loader's tags.
func (l *Loader) fileMatches(path string) (bool, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return false, err
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			if !expr.Eval(func(tag string) bool { return l.tags[tag] }) {
				return false, nil
			}
		}
	}
	return true, nil
}

// ResolvePatterns expands command-line package patterns ("./...",
// "./internal/core", ".") relative to dir into package directories.
func (l *Loader) ResolvePatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := filepath.Join(dir, filepath.FromSlash(rest))
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				names, err := l.goFiles(p)
				if err != nil {
					return err
				}
				if len(names) > 0 {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(dir, filepath.FromSlash(pat)))
	}
	return out, nil
}

// Config controls a whole-module analysis run.
type Config struct {
	// Tags are extra build tags (e.g. "rampdebug") applied during
	// loading, so analyzers see the same tree the compiler would.
	Tags []string
	// Workers bounds the per-package analysis parallelism; <= 0 means
	// GOMAXPROCS. Loading/type-checking stays sequential (the loader's
	// package cache is shared), but analyzer execution — the AST
	// walks, CFG and call-graph construction — fans out per package.
	Workers int
}

// Run loads every package matched by patterns (relative to dir) and
// applies the analyzers with default configuration, returning all
// diagnostics sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunConfigured(Config{}, dir, patterns, analyzers)
}

// RunConfigured is Run with explicit tags and parallelism. Packages
// are analyzed concurrently and the per-package results merged in a
// deterministic order (the final sort is by position, so the output is
// identical regardless of worker count or completion order).
func RunConfigured(cfg Config, dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	l, err := NewLoaderWithTags(dir, cfg.Tags...)
	if err != nil {
		return nil, err
	}
	dirs, err := l.ResolvePatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, len(dirs))
	for i, d := range dirs {
		if pkgs[i], err = l.LoadDir(d); err != nil {
			return nil, err
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(pkgs))
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i], errs[i] = RunAnalyzers(pkgs[i], analyzers)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()

	var all []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		all = append(all, perPkg[i]...)
	}
	sortDiagnostics(all)
	return all, nil
}
