package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
	"unicode"
)

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isNumeric reports whether t's underlying type is any numeric type.
func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// constFloatValue returns e's compile-time numeric value, if it has one.
func constFloatValue(info *types.Info, e ast.Expr) (float64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return 0, false
	}
	f, _ := constant.Float64Val(v)
	return f, true
}

// tempDeltaWords mark identifiers that are Kelvin-denominated
// *differences* (sensor noise, bias, quantisation steps), not absolute
// temperatures; small values are legitimate for them.
var tempDeltaWords = []string{
	"Std", "std", "Noise", "noise", "Bias", "bias", "Quant", "quant",
	"Delta", "delta", "Diff", "diff", "Step", "step", "Sigma", "sigma",
}

// compoundUnitSuffixes are trailing unit compounds where K appears as a
// denominator (thermal conductivity W/(m·K), volumetric heat capacity
// J/(m³·K), heat capacity J/K) — not temperatures at all.
var compoundUnitSuffixes = []string{"WmK", "m3K", "JK"}

// isTempName reports whether an identifier names an absolute
// temperature by this codebase's conventions: it contains "Temp"/"temp"
// (TempK, tempK, avgTempK, sinkTempK) or carries the Kelvin suffix — a
// trailing capital 'K' preceded by a lower-case letter or digit
// (ambientK, TqualK, SMT0K). The preceding-character rule keeps
// all-caps acronyms that merely end in K (CJK, RKW) out; delta-valued
// names (NoiseStdK) and compound unit suffixes (KSiliconWmK) are
// excluded explicitly.
func isTempName(name string) bool {
	for _, w := range tempDeltaWords {
		if strings.Contains(name, w) {
			return false
		}
	}
	for _, suf := range compoundUnitSuffixes {
		if strings.HasSuffix(name, suf) {
			return false
		}
	}
	if strings.Contains(name, "Temp") || strings.Contains(name, "temp") {
		return true
	}
	if len(name) >= 2 && strings.HasSuffix(name, "K") {
		r := rune(name[len(name)-2])
		return unicode.IsLower(r) || unicode.IsDigit(r)
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil for
// indirect calls, conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name &&
		f.Type().(*types.Signature).Recv() == nil
}

// containsCallTo reports whether any call to pkgPath.name appears in
// the expression tree rooted at e.
func containsCallTo(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, pkgPath, name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// terminates reports whether a statement unconditionally leaves the
// enclosing function or loop iteration: return, panic, continue, break,
// or a block ending in one.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	}
	return false
}
