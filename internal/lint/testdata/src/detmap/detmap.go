package detmap

import (
	"fmt"
	"io"
	"sort"
)

// Positive cases: map iteration order reaching an order-sensitive sink.

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration order reaches floating-point accumulation`
		total += v
	}
	return total
}

func buildString(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order reaches string accumulation`
		out += k
	}
	return out
}

func printAll(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output via fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// accumulator holds shared floating-point state; observe accumulates
// into it, so calling observe per map entry is order-sensitive even
// though the loop body itself contains no arithmetic.
type accumulator struct{ sum float64 }

func (a *accumulator) observe(v float64) { a.sum += v }

func interprocedural(a *accumulator, m map[string]float64) {
	for _, v := range m { // want `map iteration order reaches an order-sensitive sink through observe`
		a.observe(v)
	}
}

// emit reaches a writer two hops down the call graph.
func emit(w io.Writer, k string) { emitInner(w, k) }

func emitInner(w io.Writer, k string) { fmt.Fprintln(w, k) }

func transitiveWriter(w io.Writer, m map[string]int) {
	for k := range m { // want `map iteration order reaches an order-sensitive sink through emit`
		emit(w, k)
	}
}

// Negative cases.

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collecting keys for sorting: order cannot escape
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func countEntries(m map[string]float64) int {
	n := 0
	for range m { // integer counting is order-independent
		n++
	}
	return n
}

func localAccumulation(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m {
		sum := 0.0
		for _, v := range vs { // inner accumulator is loop-local: ok
			sum += v
		}
		out = append(out, sum)
	}
	sort.Float64s(out)
	return out
}

func suppressed(m map[string]float64) float64 {
	var total float64
	//rampvet:ignore detmap -- commutative test data, drift is acceptable here
	for _, v := range m {
		total += v
	}
	return total
}
