package unitsafety

type Params struct {
	AmbientK float64
	Headroom float64
}

func SetAmbient(ambientK float64) {}

func Run(tempK float64, n int) {}

func Mix(label string, extras ...float64) {}

type Sensor struct {
	NoiseStdK   float64 // Kelvin-denominated delta, not an absolute temperature
	KSiliconWmK float64 // thermal conductivity W/(m·K), a compound unit
}

// Positive cases: sub-200 literals flowing into Kelvin-named slots.

func positives() {
	SetAmbient(25)            // want `temperature slot ambientK receives 25`
	SetAmbient(-40)           // want `Kelvin expected`
	Run(45.5, 3)              // want `temperature slot tempK receives 45.5`
	p := Params{AmbientK: 77} // want `temperature slot AmbientK receives 77`
	p.AmbientK = 150          // want `temperature slot AmbientK receives 150`
	var sinkTempK float64
	sinkTempK = 85 // want `temperature slot sinkTempK receives 85`
	_ = sinkTempK
	_ = p
}

// Negative cases.

func negatives() {
	SetAmbient(293)            // plausible Kelvin: ok
	SetAmbient(0)              // zero is the unset sentinel: ok
	Run(400, 150)              // n is a count, not a temperature: ok
	p := Params{Headroom: 0.9} // not a temperature slot: ok
	var tempK float64
	tempK = measured()                            // non-constant value: ok
	Mix("x", 1, 2)                                // variadic non-temperature params: ok
	s := Sensor{NoiseStdK: 0.5, KSiliconWmK: 100} // deltas and compound units: ok
	_ = s
	_ = tempK
	_ = p
}

func measured() float64 { return 300 }
