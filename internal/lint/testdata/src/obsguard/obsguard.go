package obsguard

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Positive cases: raw stderr prints inside an internal package.

func rawPrintf(err error) {
	fmt.Fprintf(os.Stderr, "warning: %v\n", err) // want `fmt.Fprintf to os.Stderr`
}

func rawPrintln(err error) {
	fmt.Fprintln(os.Stderr, err) // want `fmt.Fprintln to os.Stderr`
}

func rawPrint(msg string) {
	fmt.Fprint(os.Stderr, msg) // want `fmt.Fprint to os.Stderr`
}

// Negative cases.

func toWriter(w io.Writer, msg string) {
	fmt.Fprintf(w, "report: %s\n", msg) // caller-chosen writer: ok
}

func toStdout(msg string) {
	fmt.Fprintln(os.Stdout, msg) // results stream, not diagnostics: ok
}

func structured(err error) {
	slog.Default().Warn("recoverable", "err", err) // the sanctioned path: ok
}

func suppressed(err error) {
	//rampvet:ignore obsguard -- usage text straight to the tty by design
	fmt.Fprintln(os.Stderr, err)
}
