package floatcmp

// Positive cases: rounding-sensitive float equality.

func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func indexed(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x == xs[0] { // want `floating-point == comparison`
			n++
		}
	}
	return n
}

func narrow(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

func nonzeroConst(x float64) bool {
	return x == 0.3 // want `floating-point == comparison`
}

// Negative cases: exact-by-construction idioms and non-floats.

func zeroSentinel(g float64) bool { return g != 0 } // sparsity test against exact zero: ok

func zeroLHS(g float64) bool { return 0 == g } // ok

func nanTest(x float64) bool { return x != x } // portable NaN test: ok

func ints(a, b int) bool { return a == b } // not floating point: ok

func ordered(a, b float64) bool { return a < b } // ordering, not equality: ok

func suppressedTrailing(a, b float64) bool {
	return a == b //rampvet:ignore floatcmp fast path of an epsilon comparator
}

func suppressedStandalone(a, b float64) bool {
	//rampvet:ignore -- justified and reviewed
	return a == b
}

func suppressedOtherAnalyzer(a, b float64) bool {
	// The directive below names a different analyzer, so floatcmp fires.
	//rampvet:ignore errdrop
	return a == b // want `floating-point == comparison`
}
