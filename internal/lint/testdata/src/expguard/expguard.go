package expguard

import "math"

const (
	boltzmann = 8.617e-5
	ea        = 0.9
)

type conditions struct {
	TempK float64
}

// Positive cases: Arrhenius exponentials with unguarded temperature
// denominators.

func unguarded(tempK float64) float64 {
	return math.Exp(-ea / (boltzmann * tempK)) // want `tempK is not guarded`
}

func unguardedField(c conditions) float64 {
	return math.Exp(-ea / (boltzmann * c.TempK)) // want `c.TempK is not guarded`
}

func wrongGuard(j, tempK float64) float64 {
	if j <= 0 {
		return 0
	}
	// j is guarded; the temperature is not.
	return math.Pow(j, 1.1) * math.Exp(-ea/(boltzmann*tempK)) // want `tempK is not guarded`
}

func directDenominator(tempK float64) float64 {
	return math.Exp(ea / tempK) // want `tempK is not guarded`
}

// Negative cases.

func guarded(tempK float64) float64 {
	if tempK <= 0 {
		return 0
	}
	return math.Exp(-ea / (boltzmann * tempK)) // early-exit guard: ok
}

func guardedField(c conditions) float64 {
	if c.TempK <= 0 {
		return 0
	}
	return math.Exp(-ea / (boltzmann * c.TempK)) // ok
}

func positiveContext(tempK float64) float64 {
	if tempK > 0 {
		return math.Exp(-ea / (boltzmann * tempK)) // positive-context guard: ok
	}
	return 0
}

func guardedPanic(tempK float64) float64 {
	if tempK < 200 {
		panic("implausible temperature")
	}
	return math.Exp(-ea / (boltzmann * tempK)) // panic guard: ok
}

func noTemperature(x float64) float64 {
	return math.Exp(x / 2) // no temperature in the denominator: ok
}

func noDivision(tempK float64) float64 {
	return math.Exp(tempK * 1e-3) // no division: ok
}
