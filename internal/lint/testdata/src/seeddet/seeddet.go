package seeddet

import (
	"math/rand"
	"time"
)

// Positive cases: non-deterministic RNG construction.

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time.Now`
}

func timeSource() rand.Source {
	return rand.NewSource(int64(time.Now().Nanosecond())) // want `seeded from time.Now`
}

func globalFloat() float64 {
	return rand.Float64() // want `global rand.Float64`
}

func globalIntn(n int) int {
	return rand.Intn(n) // want `global rand.Intn`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

// Negative cases: explicit, config-plumbed seeds.

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok
}

func method(rng *rand.Rand) float64 {
	return rng.Float64() // method on an explicit *rand.Rand: ok
}

func derived(rng *rand.Rand, n int) int {
	return rng.Intn(n) // ok
}
