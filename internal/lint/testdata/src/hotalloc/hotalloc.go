package hotalloc

import (
	"fmt"
	"math"
)

// state is the reusable hot-path scratch a well-behaved kernel uses.
type state struct {
	buf  [64]float64
	temp float64
}

// Positive cases: allocation sources inside //ramp:hot functions.

// step advances one epoch.
//
//ramp:hot
func step(s *state, xs []float64) float64 {
	scratch := make([]float64, len(xs)) // want `make in //ramp:hot function allocates`
	for i, x := range xs {
		scratch[i] = x * 2
	}
	weights := []float64{0.25, 0.5, 0.25} // want `slice literal in //ramp:hot function allocates`
	total := 0.0
	for i := range scratch {
		total += scratch[i] * weights[i%3]
	}
	return total
}

//ramp:hot
func label(i int) string {
	return fmt.Sprintf("epoch-%d", i) // want `fmt.Sprintf in //ramp:hot function allocates`
}

//ramp:hot
func accumulate(dst []float64, x float64) []float64 {
	return append(dst, x) // want `append in //ramp:hot function may grow and reallocate`
}

//ramp:hot
func capture(s *state) func() float64 {
	return func() float64 { return s.temp } // want `function literal in //ramp:hot function captures`
}

//ramp:hot
func box(x float64) any {
	return any(x) // want `conversion to interface type .* boxes the value`
}

//ramp:hot
func fresh() *state {
	return &state{} // want `pointer composite literal allocates in //ramp:hot function`
}

// Negative cases.

//ramp:hot
func pureMath(s *state, x float64) float64 {
	s.temp = math.Exp(-x) // value arithmetic on reusable state: ok
	var local [8]float64  // array value lives on the stack: ok
	for i := range local {
		local[i] = x + float64(i)
	}
	return s.temp + local[3]
}

//ramp:hot
func failurePath(x float64) (float64, error) {
	if x < 0 {
		return 0, fmt.Errorf("negative input %v", x) // error path: exempt
	}
	if math.IsNaN(x) {
		panic(fmt.Sprintf("NaN input %v", x)) // panic path: exempt
	}
	return math.Sqrt(x), nil
}

// coldSetup is not marked hot; it may allocate freely.
func coldSetup(n int) []float64 {
	out := make([]float64, n)
	return out
}

//ramp:hot
func suppressed(n int) []float64 {
	//rampvet:ignore hotalloc -- one-time warmup allocation, amortized across the run
	return make([]float64, n)
}
