package errdrop

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

type engine struct{}

func (engine) Observe(x float64) error { return nil }

// Positive cases: statement-position calls dropping an error.

func positives(e engine) {
	work()               // want `error result of work is silently discarded`
	pair()               // want `error result of pair is silently discarded`
	e.Observe(1)         // want `error result of e.Observe is silently discarded`
	fmt.Errorf("x%d", 1) // want `error result of fmt.Errorf is silently discarded`
}

// Negative cases.

func negatives(e engine) {
	_ = work() // explicit discard is visible intent: ok
	if err := work(); err != nil {
		_ = err // handled: ok
	}
	fmt.Println("x")                   // stdout diagnostics allowlisted: ok
	fmt.Fprintln(os.Stderr, "x")       // print-family output allowlisted: ok
	fmt.Fprintf(os.Stderr, "x%d\n", 1) // ok
	var b strings.Builder
	b.WriteString("x") // strings.Builder never returns an error: ok
	noErr()            // no error result: ok
	_, _ = pair()      // ok
}

func noErr() {}
