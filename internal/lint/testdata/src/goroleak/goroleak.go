package goroleak

import (
	"context"
	"sync"
)

func poll()            {}
func sideEffect(n int) {}

// Positive cases.

func detached() {
	go func() { // want `goroutine has no ctx/done-channel/WaitGroup escape route`
		for i := 0; i < 10; i++ {
			poll()
		}
	}()
}

// spin loops forever touching nothing; spawning it is flagged at the
// go statement via the call graph (the body lives elsewhere).
func spin() {
	for i := 0; ; i++ {
		sideEffect(i)
	}
}

func detachedNamed() {
	go spin() // want `goroutine has no ctx/done-channel/WaitGroup escape route`
}

func joinableButInfinite(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for { // want `unbounded for loop in goroutine has no channel operation or ctx check`
			poll()
		}
	}()
}

// Negative cases.

func withContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				poll()
			}
		}
	}()
}

func withDoneChannel(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				poll()
			}
		}
	}()
}

func withWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			poll()
		}
	}()
}

// worker drains a channel; range over a channel ends when the parent
// closes it.
func worker(jobs chan int) {
	for j := range jobs {
		sideEffect(j)
	}
}

func withChannelHandoff(jobs chan int) {
	go worker(jobs)
}

func errHandoff(run func() error) chan error {
	errc := make(chan error, 1)
	go func() { errc <- run() }() // terminates with the handoff send: ok
	return errc
}

func suppressed() {
	//rampvet:ignore goroleak -- process-lifetime background ticker, dies with the process by design
	go func() {
		for i := 0; i < 1000; i++ {
			poll()
		}
	}()
}
