package ctxflow

import "context"

// The long-running entry points this fixture models, mirroring the
// repo's Evaluate/EvaluateCtx convention.

type Env struct{}

func (e *Env) Evaluate(app string) (float64, error) {
	return e.EvaluateCtx(context.Background(), app)
}

func (e *Env) EvaluateCtx(ctx context.Context, app string) (float64, error) {
	for i := 0; i < 1000; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	return 1, nil
}

func Sweep(points int) int { return points * 2 }

// helper buries a long-running call with no way to thread a context.
func helper(e *Env, app string) (float64, error) { return e.Evaluate(app) }

// Positive cases.

func severedCall(ctx context.Context, e *Env, app string) (float64, error) {
	return e.Evaluate(app) // want `calls Evaluate without the context; use EvaluateCtx`
}

func severedFunc(ctx context.Context, n int) int {
	return Sweep(n) // want `calls long-running Sweep without the context; thread ctx`
}

func severedChain(ctx context.Context, e *Env, app string) (float64, error) {
	return helper(e, app) // want `calls helper, whose call chain reaches long-running work, without the context`
}

// uncancellableLoop manufactures a fresh context per iteration — the
// call has a ctx argument, so it is not a severed call, but the loop
// as a whole can never be cancelled.
func uncancellableLoop(ctx context.Context, e *Env, apps []string) (float64, error) {
	var total float64
	for _, app := range apps { // want `loop makes long-running calls with no cancellation point`
		v, err := e.EvaluateCtx(context.Background(), app)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// Negative cases.

func threaded(ctx context.Context, e *Env, app string) (float64, error) {
	return e.EvaluateCtx(ctx, app) // ctx propagated: ok
}

func cancellableLoop(ctx context.Context, e *Env, apps []string) (float64, error) {
	var total float64
	for _, app := range apps {
		v, err := e.EvaluateCtx(ctx, app) // ctx inside the loop: ok
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

func noCtxParam(e *Env, app string) (float64, error) {
	return e.Evaluate(app) // nothing to propagate: ok
}

func shortLoop(ctx context.Context, xs []int) int {
	sum := 0
	for _, x := range xs { // no long-running calls: ok
		sum += x
	}
	return sum
}

func suppressed(ctx context.Context, e *Env, app string) (float64, error) {
	//rampvet:ignore ctxflow -- fire-and-forget warmup, cancellation is deliberate non-goal
	return e.Evaluate(app)
}
