package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineName is the conventional baseline filename at the module
// root. CI runs rampvet against it: findings recorded there are
// grandfathered (tracked for burn-down but non-fatal); anything new
// fails the lane.
const BaselineName = ".rampvet-baseline"

// A Baseline is a multiset of grandfathered findings. Entries are keyed
// by (module-relative file, analyzer, message) — deliberately *not* by
// line number, so unrelated edits that shift a grandfathered finding up
// or down the file don't resurrect it. The multiset semantics mean a
// file with two identical grandfathered findings absorbs exactly two;
// a third identical one is new.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	file     string // module-relative, slash-separated
	analyzer string
	message  string
}

// NewBaseline builds a baseline from diagnostics (used by
// -write-baseline and tests). root is the module root for
// relativizing file paths.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, d := range diags {
		b.counts[diagKey(root, d)]++
	}
	return b
}

// Len reports the number of grandfathered findings (multiset size).
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// diagKey relativizes and normalizes one diagnostic.
func diagKey(root string, d Diagnostic) baselineKey {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return baselineKey{
		file:     filepath.ToSlash(file),
		analyzer: d.Analyzer,
		message:  d.Message,
	}
}

// Filter splits diags into fresh findings (not covered by the
// baseline) and the count of grandfathered ones it absorbed. Absorption
// is per-occurrence: each baseline entry covers at most its recorded
// count.
func (b *Baseline) Filter(root string, diags []Diagnostic) (fresh []Diagnostic, grandfathered int) {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, c := range b.counts {
		remaining[k] = c
	}
	for _, d := range diags {
		k := diagKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			grandfathered++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, grandfathered
}

// baselineSep separates the key fields on a baseline line. Tab cannot
// appear in file paths or analyzer names, and messages have no reason
// to contain one.
const baselineSep = "\t"

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so a repo without one simply has nothing grandfathered.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: map[baselineKey]int{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, baselineSep, 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("lint: %s:%d: malformed baseline line (want file<TAB>analyzer<TAB>message)", path, lineno)
		}
		b.counts[baselineKey{file: parts[0], analyzer: parts[1], message: parts[2]}]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteBaseline writes the diagnostics as a baseline file, sorted for
// stable diffs, with a header documenting the contract.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	var lines []string
	for _, d := range diags {
		k := diagKey(root, d)
		lines = append(lines, k.file+baselineSep+k.analyzer+baselineSep+k.message)
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# rampvet baseline — grandfathered findings, one per line:\n")
	sb.WriteString("#   file<TAB>analyzer<TAB>message   (line numbers omitted on purpose)\n")
	sb.WriteString("# CI fails on any finding not recorded here. Burn entries down by\n")
	sb.WriteString("# fixing the code and regenerating with `rampvet -write-baseline ./...`.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// AnalyzerCount is one row of a per-analyzer finding tally.
type AnalyzerCount struct {
	Name  string
	Count int
}

// Stats counts diagnostics per analyzer, returning one row for every
// analyzer in the given suite — including zero counts, so burn-down
// logs show the full picture — in suite order.
func Stats(analyzers []*Analyzer, diags []Diagnostic) []AnalyzerCount {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	out := make([]AnalyzerCount, 0, len(analyzers))
	for _, a := range analyzers {
		out = append(out, AnalyzerCount{a.Name, counts[a.Name]})
	}
	return out
}
