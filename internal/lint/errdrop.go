package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags statement-position calls whose error result is silently
// discarded.
//
// Every constructor and accumulator in the model chain (core.NewEngine,
// Engine.Observe, exp.Evaluate, ...) reports invalid physics through an
// error return; dropping one turns a diagnosable misconfiguration into
// a silently wrong FIT value. A call used as a bare statement discards
// every result, so if any result is an error the call is flagged.
//
// Exemptions:
//
//   - the fmt print family (Print/Printf/Println/Fprint/Fprintf/
//     Fprintln): report and diagnostic output, where a failed write is
//     either unactionable (stdout/stderr) or surfaces through the
//     destination writer — the same convention the stdlib itself uses
//     (e.g. package flag's usage output);
//   - methods on strings.Builder and bytes.Buffer (documented to never
//     return a non-nil error).
//
// An explicit `_ = f()` assignment is visible intent and is not flagged.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags statement-position calls that silently discard an error result",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) error {
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
			if !ok {
				return true // conversion or built-in
			}
			results := sig.Results()
			returnsErr := false
			for i := 0; i < results.Len(); i++ {
				if types.Identical(results.At(i).Type(), errType) {
					returnsErr = true
					break
				}
			}
			if !returnsErr || errDropExempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "error result of %s is silently discarded; handle it or assign to _ explicitly", callName(call))
			return true
		})
	}
	return nil
}

// errDropExempt reports whether the call is on the documented
// never-fails allowlist.
func errDropExempt(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	case "strings", "bytes":
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			switch types.TypeString(recv.Type(), nil) {
			case "*strings.Builder", "*bytes.Buffer":
				return true
			}
		}
	}
	return false
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
