package lint

import (
	"go/ast"
	"go/types"
)

// minPlausibleConstK mirrors check.MinPlausibleK: no absolute silicon
// temperature in this model is below 200 K, so a literal under it
// flowing into a Kelvin-named slot is almost certainly Celsius.
const minPlausibleConstK = 200

// UnitSafety flags numeric literals below 200 flowing into
// temperature-typed slots: parameters, struct fields and variables
// whose names follow the codebase's Kelvin conventions (TempK, tempK,
// *Temp*, or a trailing-K identifier like ambientK or TqualK).
//
// This is the classic Celsius-into-Kelvin bug: `thermal.DefaultParams(45)`
// silently builds a package model whose ambient is 45 K, and the
// Arrhenius exponential e^(Ea/kT) turns that into a failure rate about
// twenty orders of magnitude off. Zero is exempt (the conventional
// "unset" sentinel, rejected at Validate time instead).
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "flags numeric literals below 200 passed to or assigned into Kelvin-named temperature slots",
	Run:  runUnitSafety,
}

func runUnitSafety(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTempArgs(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // x, y := f() — no literal RHS per LHS
					}
					if name, ok := tempLHSName(lhs); ok {
						checkTempValue(pass, n.Rhs[i], name)
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && isTempName(key.Name) {
					checkTempValue(pass, n.Value, key.Name)
				}
			}
			return true
		})
	}
	return nil
}

// checkTempArgs inspects a call's arguments against the callee's
// parameter names.
func checkTempArgs(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		p := params.At(pi)
		if isTempName(p.Name()) && isNumeric(p.Type()) {
			checkTempValue(pass, arg, p.Name())
		}
	}
}

// tempLHSName extracts a temperature-conventioned name from an
// assignment target.
func tempLHSName(lhs ast.Expr) (string, bool) {
	var name string
	switch l := lhs.(type) {
	case *ast.Ident:
		name = l.Name
	case *ast.SelectorExpr:
		name = l.Sel.Name
	default:
		return "", false
	}
	return name, isTempName(name)
}

// checkTempValue reports e if it is a nonzero numeric constant below
// the plausible Kelvin floor.
func checkTempValue(pass *Pass, e ast.Expr, slot string) {
	v, ok := constFloatValue(pass.Info, e)
	if !ok || v == 0 || v >= minPlausibleConstK {
		return
	}
	pass.Reportf(e.Pos(), "temperature slot %s receives %v — below %v K; Kelvin expected (Celsius value?)", slot, v, float64(minPlausibleConstK))
}
