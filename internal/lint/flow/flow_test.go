package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// load parses and type-checks a self-contained (import-free) source.
func load(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flowtest.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("flowtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info
}

// funcBody finds the named function's body in the file.
func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	f, _ := load(t, `package flowtest
func f() int {
	x := 1
	y := x + 2
	return y
}`)
	c := Build(funcBody(t, f, "f"))
	if len(c.Loops) != 0 {
		t.Fatalf("straight-line function has %d loops", len(c.Loops))
	}
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3 (two assigns + return)", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 0 {
		t.Fatalf("entry ending in return has successors %v", c.Entry.Succs)
	}
}

func TestCFGIf(t *testing.T) {
	f, _ := load(t, `package flowtest
func f(b bool) int {
	x := 0
	if b {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	c := Build(funcBody(t, f, "f"))
	// Entry (assign + cond) must branch two ways and rejoin.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("if dispatch has %d successors, want 2", len(c.Entry.Succs))
	}
	join := c.Entry.Succs[1].Succs[0] // then-block's successor is the join... order varies; find common
	a, b := c.Entry.Succs[0], c.Entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Fatalf("if branches do not rejoin: %v vs %v", a.Succs, b.Succs)
	}
	_ = join
}

func TestCFGForLoop(t *testing.T) {
	f, _ := load(t, `package flowtest
func f(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}`)
	c := Build(funcBody(t, f, "f"))
	if len(c.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(c.Loops))
	}
	loop := c.Loops[0]
	if _, ok := loop.Stmt.(*ast.ForStmt); !ok {
		t.Fatalf("loop stmt is %T", loop.Stmt)
	}
	// The loop must contain its accumulation but not the return.
	if !loop.Contains(func(n ast.Node) bool { _, ok := n.(*ast.AssignStmt); return ok }) {
		t.Error("loop does not contain its body assignment")
	}
	if loop.Contains(func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok }) {
		t.Error("loop claims the function's return statement")
	}
	// Back edge: some block in the loop must have the header as successor.
	hasBackEdge := false
	for _, b := range loop.Blocks {
		for _, s := range b.Succs {
			if s == loop.Header {
				hasBackEdge = true
			}
		}
	}
	if !hasBackEdge {
		t.Error("loop has no back edge to its header")
	}
}

func TestCFGNestedLoops(t *testing.T) {
	f, _ := load(t, `package flowtest
func f(m [][]int) int {
	sum := 0
	for _, row := range m {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}`)
	c := Build(funcBody(t, f, "f"))
	if len(c.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(c.Loops))
	}
	outer, inner := c.Loops[0], c.Loops[1]
	// The outer loop owns every block of the inner loop.
	owned := map[*Block]bool{}
	for _, b := range outer.Blocks {
		owned[b] = true
	}
	for _, b := range inner.Blocks {
		if !owned[b] {
			t.Fatalf("inner loop block %d not owned by outer loop", b.Index)
		}
	}
}

func TestCFGBreakContinue(t *testing.T) {
	f, _ := load(t, `package flowtest
func f(xs []int) int {
	sum := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		sum += x
	}
	return sum
}`)
	c := Build(funcBody(t, f, "f"))
	if len(c.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(c.Loops))
	}
	// Both branch statements live inside the loop.
	n := 0
	c.Loops[0].Contains(func(m ast.Node) bool {
		if _, ok := m.(*ast.BranchStmt); ok {
			n++
		}
		return false
	})
	if n != 2 {
		t.Fatalf("loop contains %d branch statements, want 2", n)
	}
}

func TestCFGSelect(t *testing.T) {
	f, _ := load(t, `package flowtest
func f(a, b chan int) int {
	for {
		select {
		case v := <-a:
			return v
		case <-b:
			return 0
		}
	}
}`)
	c := Build(funcBody(t, f, "f"))
	if len(c.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(c.Loops))
	}
	if !c.Loops[0].Contains(func(n ast.Node) bool { _, ok := n.(*ast.SelectStmt); return ok }) {
		// The select dispatch lives in a loop block even though its
		// cases are their own blocks.
		if !c.Loops[0].Contains(func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok }) {
			t.Error("loop contains neither the select nor its case bodies")
		}
	}
}

func TestCallGraph(t *testing.T) {
	f, info := load(t, `package flowtest

func leaf() {}

//ramp:hot
func hot() { leaf() }

func mid() { hot() }

func top() { mid() }

func island() {}
`)
	g := BuildGraph([]*ast.File{f}, info)
	if len(g.Decls) != 5 {
		t.Fatalf("graph has %d decls, want 5", len(g.Decls))
	}
	byName := map[string]*FuncInfo{}
	for _, fi := range g.Decls {
		byName[fi.Obj.Name()] = fi
	}
	if !byName["hot"].Hot {
		t.Error("hot() missing //ramp:hot marking")
	}
	if byName["mid"].Hot || byName["leaf"].Hot {
		t.Error("unmarked functions claim //ramp:hot")
	}
	isLeaf := func(c *types.Func, _ *FuncInfo) bool { return c.Name() == "leaf" }
	if !g.Reaches(byName["top"].Obj, isLeaf) {
		t.Error("top does not reach leaf through mid → hot")
	}
	if g.Reaches(byName["island"].Obj, isLeaf) {
		t.Error("island reaches leaf")
	}
	if g.Reaches(byName["leaf"].Obj, isLeaf) {
		t.Error("Reaches applied the predicate to the start function itself")
	}
	if !g.CallOrReaches(byName["leaf"].Obj, isLeaf) {
		t.Error("CallOrReaches must apply the predicate to the start function")
	}
}

func TestCallGraphClosureAttribution(t *testing.T) {
	f, info := load(t, `package flowtest

func callee() {}

func outer() {
	f := func() { callee() }
	f()
}
`)
	g := BuildGraph([]*ast.File{f}, info)
	var outer *FuncInfo
	for _, fi := range g.Decls {
		if fi.Obj.Name() == "outer" {
			outer = fi
		}
	}
	// Calls inside the literal are attributed to outer.
	if !g.CallOrReaches(outer.Obj, func(c *types.Func, _ *FuncInfo) bool { return c.Name() == "callee" }) {
		t.Error("closure call not attributed to enclosing declaration")
	}
}
