// Package flow is the flow-analysis layer under rampvet's analyzers: a
// per-function control-flow graph builder (this file) and a
// package-level call graph with interprocedural reachability queries
// (flow.go). Like the rest of internal/lint it is built on the standard
// library only — go/ast and go/types — reimplementing the slice of
// golang.org/x/tools/go/cfg and /callgraph that RAMP's analyzers need.
//
// The CFG is statement-granular and pragmatic rather than SSA-precise:
// it exists so analyzers can ask structural questions — "which
// statements execute inside this loop?", "is there a back edge here?",
// "does any block of this loop contain a cancellation check?" — without
// every analyzer re-deriving loop extents from raw syntax. Function
// literals are deliberately *not* inlined into the enclosing CFG; a
// closure runs on its own schedule (possibly a different goroutine), so
// each analyzer decides explicitly whether to descend into one.
package flow

import "go/ast"

// Block is one basic block: a maximal run of nodes that execute
// together, plus the control-flow successors. Nodes holds leaf
// statements and the control expressions of compound statements (an
// if's condition, a range's operand); the branches of compound
// statements live in their own blocks.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// addSucc appends s to b's successors (deduplicated).
func (b *Block) addSucc(s *Block) {
	for _, have := range b.Succs {
		if have == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// Loop is one natural loop of the function: the for/range statement,
// its header block (the back-edge target holding the condition or range
// operand), and every block that executes under the loop — including
// the blocks of nested loops.
type Loop struct {
	Stmt   ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Header *Block
	Blocks []*Block
}

// Contains reports whether pred matches any node inside any block of
// the loop (the walk descends into nested expressions and statements
// via ast.Inspect, including function literals — callers that want to
// exclude closures check for *ast.FuncLit in pred).
func (l *Loop) Contains(pred func(ast.Node) bool) bool {
	found := false
	for _, b := range l.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if found || m == nil {
					return false
				}
				if pred(m) {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Blocks []*Block
	Loops  []*Loop
}

// Build constructs the CFG of a function (or function literal) body.
// A nil body (declaration without body) yields an empty graph.
func Build(body *ast.BlockStmt) *CFG {
	c := &CFG{}
	b := &cfgBuilder{cfg: c, labels: map[string]*labelTarget{}}
	c.Entry = b.newBlock()
	b.cur = c.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	return c
}

// labelTarget records where a labeled break/continue lands.
type labelTarget struct {
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	breakTo    *Block
	continueTo *Block
	fallNext   *Block  // next case block, the target of a fallthrough
	loops      []*Loop // enclosing loops, innermost last
	labels     map[string]*labelTarget
	// pendingLabel names the label attached to the next loop/switch
	// statement, so `break L` / `continue L` resolve to it.
	pendingLabel string
}

// newBlock creates a block, registering it with every enclosing loop.
func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	for _, l := range b.loops {
		l.Blocks = append(l.Blocks, blk)
	}
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt extends the graph with one statement.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.branch(s)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		cond.addSucc(thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.cur.addSucc(after)
		if s.Else != nil {
			elseB := b.newBlock()
			cond.addSucc(elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.cur.addSucc(after)
		} else {
			cond.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		header := b.newBlock()
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
		}
		b.cur.addSucc(header)
		after := b.newBlock()
		if s.Cond != nil {
			header.addSucc(after) // condition false exits
		}
		loop := &Loop{Stmt: s, Header: header, Blocks: []*Block{header}}
		b.cfg.Loops = append(b.cfg.Loops, loop)
		b.inLoop(loop, after, func() {
			post := header
			if s.Post != nil {
				post = b.newBlock()
				post.Nodes = append(post.Nodes, s.Post)
				post.addSucc(header)
			}
			b.continueTo = post
			body := b.newBlock()
			header.addSucc(body)
			b.cur = body
			b.stmtList(s.Body.List)
			b.cur.addSucc(post) // back edge (possibly via post)
		})
		b.cur = after

	case *ast.RangeStmt:
		header := b.newBlock()
		header.Nodes = append(header.Nodes, s.X)
		b.cur.addSucc(header)
		after := b.newBlock()
		header.addSucc(after) // range exhausted
		loop := &Loop{Stmt: s, Header: header, Blocks: []*Block{header}}
		b.cfg.Loops = append(b.cfg.Loops, loop)
		b.inLoop(loop, after, func() {
			body := b.newBlock()
			header.addSucc(body)
			b.cur = body
			b.stmtList(s.Body.List)
			b.cur.addSucc(header) // back edge
		})
		b.cur = after

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		// The type-switch guard (x := y.(type)) evaluates before any
		// case; record it in the dispatch block.
		if s.Assign != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		}
		b.switchLike(s.Init, nil, s.Body)

	case *ast.SelectStmt:
		dispatch := b.cur
		after := b.newBlock()
		label := b.takeLabel(after, nil)
		oldBreak := b.breakTo
		b.breakTo = after
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			caseB := b.newBlock()
			dispatch.addSucc(caseB)
			b.cur = caseB
			if comm.Comm != nil {
				b.cur.Nodes = append(b.cur.Nodes, comm.Comm)
			}
			b.stmtList(comm.Body)
			b.cur.addSucc(after)
		}
		b.breakTo = oldBreak
		b.releaseLabel(label)
		b.cur = after

	default:
		// Leaf statements: assignments, declarations, expression
		// statements, go/defer/send/incdec/empty.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchLike builds switch and type-switch bodies.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	dispatch := b.cur
	after := b.newBlock()
	label := b.takeLabel(after, nil)
	oldBreak := b.breakTo
	b.breakTo = after
	var caseBlocks []*Block
	hasDefault := false
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		caseB := b.newBlock()
		dispatch.addSucc(caseB)
		for _, e := range cc.List {
			caseB.Nodes = append(caseB.Nodes, e)
		}
		caseBlocks = append(caseBlocks, caseB)
	}
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		b.cur = caseBlocks[i]
		// fallthrough edges are wired by branch() via fallNext.
		if i+1 < len(caseBlocks) {
			b.fallNext = caseBlocks[i+1]
		} else {
			b.fallNext = after
		}
		b.stmtList(cc.Body)
		b.cur.addSucc(after)
	}
	b.fallNext = nil
	if !hasDefault {
		dispatch.addSucc(after)
	}
	b.breakTo = oldBreak
	b.releaseLabel(label)
	b.cur = after
}

// inLoop runs f with break/continue targets bound to the loop. f may
// retarget continueTo once it has created a post block.
func (b *cfgBuilder) inLoop(loop *Loop, after *Block, f func()) {
	oldBreak, oldCont := b.breakTo, b.continueTo
	b.breakTo = after
	b.continueTo = loop.Header
	label := b.takeLabel(after, loop.Header)
	b.loops = append(b.loops, loop)
	f()
	b.loops = b.loops[:len(b.loops)-1]
	b.releaseLabel(label)
	b.breakTo, b.continueTo = oldBreak, oldCont
}

// takeLabel binds the pending label (if any) to the given targets.
func (b *cfgBuilder) takeLabel(breakTo, continueTo *Block) string {
	name := b.pendingLabel
	if name != "" {
		b.labels[name] = &labelTarget{breakTo: breakTo, continueTo: continueTo}
		b.pendingLabel = ""
	}
	return name
}

func (b *cfgBuilder) releaseLabel(name string) {
	if name != "" {
		delete(b.labels, name)
	}
}

// branch wires a break/continue/fallthrough edge. goto is treated as
// terminating (no edge): the repo contains none, and a missing edge
// only makes queries conservative.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok.String() {
	case "break":
		target = b.breakTo
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil {
				target = lt.breakTo
			}
		}
	case "continue":
		target = b.continueTo
		if s.Label != nil {
			if lt := b.labels[s.Label.Name]; lt != nil && lt.continueTo != nil {
				target = lt.continueTo
			}
		}
	case "fallthrough":
		target = b.fallNext
	}
	if target != nil {
		b.cur.addSucc(target)
	}
}
