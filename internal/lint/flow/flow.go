package flow

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotDirective marks a function as being on the allocation-sensitive
// hot path (the per-epoch simulate→power→thermal→FIT pipeline). The
// hotalloc analyzer flags allocation sources inside marked functions.
const HotDirective = "//ramp:hot"

// FuncInfo is one declared function in the package's call graph.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl

	// Hot records a //ramp:hot directive in the doc comment.
	Hot bool

	// Callees are the statically resolvable functions this function
	// calls, in source order, deduplicated. Calls made inside function
	// literals declared in the body are attributed to the enclosing
	// declaration: the closure cannot run unless the declaration
	// created it, so attributing them keeps reachability conservative.
	Callees []*types.Func

	// CallSites maps each callee to its call expressions, for
	// analyzers that need positions or arguments.
	CallSites map[*types.Func][]*ast.CallExpr

	cfg *CFG
}

// CFG lazily builds and caches the function's control-flow graph.
func (f *FuncInfo) CFG() *CFG {
	if f.cfg == nil {
		var body *ast.BlockStmt
		if f.Decl != nil {
			body = f.Decl.Body
		}
		f.cfg = Build(body)
	}
	return f.cfg
}

// Graph is the call graph of one type-checked package. Edges to
// functions outside the package (other module packages, the standard
// library) are present as *types.Func callees without a FuncInfo body.
type Graph struct {
	Info  *types.Info
	Funcs map[*types.Func]*FuncInfo
	Decls []*FuncInfo // declaration order across the package's files
}

// BuildGraph constructs the call graph for a package's files.
func BuildGraph(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{Info: info, Funcs: map[*types.Func]*FuncInfo{}}
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{
				Obj:       obj,
				Decl:      fd,
				Hot:       hasDirective(fd.Doc, HotDirective),
				CallSites: map[*types.Func][]*ast.CallExpr{},
			}
			if fd.Body != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := Callee(info, call)
					if callee == nil {
						return true
					}
					if _, seen := fi.CallSites[callee]; !seen {
						fi.Callees = append(fi.Callees, callee)
					}
					fi.CallSites[callee] = append(fi.CallSites[callee], call)
					return true
				})
			}
			g.Funcs[obj] = fi
			g.Decls = append(g.Decls, fi)
		}
	}
	return g
}

// Callee resolves the *types.Func a call statically invokes, or nil for
// indirect calls, conversions and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// hasDirective reports whether the doc comment carries the directive as
// its own comment line (optionally followed by a space and free text).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// Reaches reports whether any function transitively callable from
// `from` satisfies pred. pred is applied to every callee edge: callee
// is the called function's type object; local is its FuncInfo when the
// body is in this package, nil for external functions (which are leaves
// of the walk — their callees are invisible). pred is not applied to
// `from` itself.
func (g *Graph) Reaches(from *types.Func, pred func(callee *types.Func, local *FuncInfo) bool) bool {
	seen := map[*types.Func]bool{from: true}
	work := []*types.Func{from}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		fi := g.Funcs[fn]
		if fi == nil {
			continue
		}
		for _, callee := range fi.Callees {
			if seen[callee] {
				continue
			}
			seen[callee] = true
			if pred(callee, g.Funcs[callee]) {
				return true
			}
			work = append(work, callee)
		}
	}
	return false
}

// CallOrReaches reports whether fn itself satisfies pred or any
// function transitively callable from it does.
func (g *Graph) CallOrReaches(fn *types.Func, pred func(callee *types.Func, local *FuncInfo) bool) bool {
	if pred(fn, g.Funcs[fn]) {
		return true
	}
	return g.Reaches(fn, pred)
}
