package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ExpGuard flags Arrhenius-style exponentials whose temperature
// denominator is not provably guarded against zero or negative values.
//
// The device models all contain the shape e^(±Ea/kT) (core.Params.EMRate
// and friends). For T = 0 the quotient is ±Inf — one sign silently
// produces rate 0, the other +Inf — and for T < 0 the sign of the whole
// exponent flips, turning a vanishing failure rate into an exploding
// one. Both are silent: no panic, no NaN, just a FIT value that is
// wrong by hundreds of orders of magnitude.
//
// The analyzer inspects every math.Exp call whose argument contains a
// division with a temperature-named factor (per the same naming
// conventions unitsafety uses) in the denominator, and requires the
// enclosing function to guard that factor: either an early-exit check
// (`if T <= 0 { return ... }` — any comparison proving the value small
// with a terminating body) or a positive-context condition (`if T > 0`)
// somewhere in the function. Guards are matched by expression text, so
// `c.TempK <= 0` guards a later `.../ (BoltzmannEV * c.TempK)`.
var ExpGuard = &Analyzer{
	Name: "expguard",
	Doc:  "flags math.Exp(... x/T ...) where temperature T is not guarded against zero/negative",
	Run:  runExpGuard,
}

func runExpGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			guarded := collectGuards(fd.Body)
			checkExpCalls(pass, fd.Body, guarded)
		}
	}
	return nil
}

// collectGuards gathers the expressions the function proves positive:
// lower-bound checks with terminating bodies and positive if-conditions.
func collectGuards(body *ast.BlockStmt) map[string]bool {
	guarded := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok {
			return true
		}
		// Normalise to expr OP literal.
		x, op, y := cond.X, cond.Op, cond.Y
		if isNumericLiteralish(x) && !isNumericLiteralish(y) {
			x, y = y, x
			op = flipCmp(op)
		}
		if !isNumericLiteralish(y) {
			return true
		}
		switch op {
		case token.LEQ, token.LSS:
			// if expr <= C { return/panic/... } proves expr above C on
			// the fall-through path.
			if terminates(ifs.Body) {
				guarded[types.ExprString(x)] = true
			}
		case token.GTR, token.GEQ:
			// if expr > C { ...exp lives here... } — positive context.
			guarded[types.ExprString(x)] = true
		}
		return true
	})
	return guarded
}

// isNumericLiteralish reports whether e looks like a constant bound: a
// basic literal, possibly negated, or a plain identifier (named
// constant or variable threshold).
func isNumericLiteralish(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.UnaryExpr:
		return isNumericLiteralish(e.X)
	case *ast.Ident:
		return !isTempName(e.Name)
	}
	return false
}

// flipCmp mirrors a comparison operator for operand swap.
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// checkExpCalls reports unguarded temperature denominators inside
// math.Exp arguments.
func checkExpCalls(pass *Pass, body *ast.BlockStmt, guarded map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPkgFunc(pass.Info, call, "math", "Exp") || len(call.Args) != 1 {
			return true
		}
		ast.Inspect(call.Args[0], func(m ast.Node) bool {
			div, ok := m.(*ast.BinaryExpr)
			if !ok || div.Op != token.QUO {
				return true
			}
			for _, factor := range tempFactors(div.Y) {
				s := types.ExprString(factor)
				if !guarded[s] && !guarded[types.ExprString(ast.Unparen(div.Y))] {
					pass.Reportf(div.OpPos, "Arrhenius denominator %s is not guarded against zero/negative temperature before math.Exp", s)
				}
			}
			return true
		})
		return true
	})
}

// tempFactors returns the temperature-named identifiers and selector
// expressions that multiply into e.
func tempFactors(e ast.Expr) []ast.Expr {
	var out []ast.Expr
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if e.Op == token.MUL || e.Op == token.ADD {
				walk(e.X)
				walk(e.Y)
			}
		case *ast.Ident:
			if isTempName(e.Name) {
				out = append(out, e)
			}
		case *ast.SelectorExpr:
			if isTempName(e.Sel.Name) {
				out = append(out, e)
			}
		}
	}
	walk(e)
	return out
}
