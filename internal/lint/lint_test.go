package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted patterns of a `// want `x` `y“ comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one expected diagnostic from a fixture comment.
type expectation struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseExpectations scans a fixture file for `// want` comments.
func parseExpectations(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		_, rest, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		quoted := wantRE.FindAllStringSubmatch(rest, -1)
		if len(quoted) == 0 {
			t.Fatalf("%s:%d: want comment without backquoted pattern", path, i+1)
		}
		for _, q := range quoted {
			rx, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, q[1], err)
			}
			out = append(out, &expectation{line: i + 1, pattern: rx})
		}
	}
	return out
}

// runFixture loads testdata/src/<name> and checks the analyzer's
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	expects := map[string][]*expectation{}
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, path := range matches {
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		es := parseExpectations(t, path)
		expects[abs] = es
		total += len(es)
	}
	if total == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	for _, d := range diags {
		abs, err := filepath.Abs(d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range expects[abs] {
			if !e.matched && e.line == d.Pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for path, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q not reported", path, e.line, e.pattern)
			}
		}
	}
}

func TestFloatCmp(t *testing.T)   { runFixture(t, FloatCmp) }
func TestUnitSafety(t *testing.T) { runFixture(t, UnitSafety) }
func TestExpGuard(t *testing.T)   { runFixture(t, ExpGuard) }
func TestSeedDet(t *testing.T)    { runFixture(t, SeedDet) }
func TestErrDrop(t *testing.T)    { runFixture(t, ErrDrop) }
func TestObsGuard(t *testing.T)   { runFixture(t, ObsGuard) }
func TestDetMap(t *testing.T)     { runFixture(t, DetMap) }
func TestCtxFlow(t *testing.T)    { runFixture(t, CtxFlow) }
func TestHotAlloc(t *testing.T)   { runFixture(t, HotAlloc) }
func TestGoroLeak(t *testing.T)   { runFixture(t, GoroLeak) }

// TestByName covers analyzer lookup.
func TestByName(t *testing.T) {
	as, err := ByName([]string{"floatcmp", "errdrop"})
	if err != nil || len(as) != 2 || as[0].Name != "floatcmp" || as[1].Name != "errdrop" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
}

// TestRepoIsClean runs the full suite over the whole module and
// filters through the committed baseline — the same gate CI applies
// with `go run ./cmd/rampvet ./...`. Skipped in -short mode: it
// type-checks the entire module plus the stdlib from source.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(loader.ModuleRoot, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(filepath.Join(loader.ModuleRoot, BaselineName))
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := bl.Filter(loader.ModuleRoot, diags)
	for _, d := range fresh {
		t.Errorf("%s", d)
	}
}

// parseOnlyPackage parses source into a Package with no type checking —
// enough for filterIgnored, which reads only comments and positions.
func parseOnlyPackage(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignoretest.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "ignoretest", Fset: fset, Files: []*ast.File{f}}
}

// diagAt fabricates a diagnostic for filterIgnored tests.
func diagAt(pkg *Package, line int, analyzer string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "ignoretest.go", Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  "synthetic",
	}
}

// TestFilterIgnoredStacked covers consecutive-line directives: each
// directive claims its own line and the line below, so a stack of two
// reaches one statement with both analyzer lists while the statement
// two lines below the first directive only gets the second's.
func TestFilterIgnoredStacked(t *testing.T) {
	pkg := parseOnlyPackage(t, `package ignoretest

//rampvet:ignore floatcmp
//rampvet:ignore errdrop
var x = 1
`)
	// Line 3: floatcmp directive. Line 4: errdrop directive (also
	// covered by floatcmp's spill-down). Line 5: the statement —
	// covered by errdrop's spill-down only.
	kept := filterIgnored(pkg, []Diagnostic{
		diagAt(pkg, 4, "floatcmp"), // suppressed: directive line 3 covers 4
		diagAt(pkg, 4, "errdrop"),  // suppressed: directive on its own line
		diagAt(pkg, 5, "errdrop"),  // suppressed: directive line 4 covers 5
		diagAt(pkg, 5, "floatcmp"), // kept: floatcmp's reach ended at line 4
	})
	if len(kept) != 1 || kept[0].Analyzer != "floatcmp" || kept[0].Pos.Line != 5 {
		t.Fatalf("stacked directives: kept %v, want only floatcmp at line 5", kept)
	}
}

// TestFilterIgnoredJustification covers the `--` form: a directive
// whose first field is the justification separator suppresses all
// analyzers, with the free text ignored.
func TestFilterIgnoredJustification(t *testing.T) {
	pkg := parseOnlyPackage(t, `package ignoretest

//rampvet:ignore -- iteration order provably irrelevant here
var x = 1
`)
	kept := filterIgnored(pkg, []Diagnostic{
		diagAt(pkg, 4, "detmap"),
		diagAt(pkg, 4, "floatcmp"),
	})
	if len(kept) != 0 {
		t.Fatalf("`--` directive: kept %v, want all suppressed", kept)
	}
}

// TestFilterIgnoredMergeAllWins covers merging when one directive
// ignores everything and another names analyzers for the same line:
// ignore-all must win regardless of the order the directives are seen.
func TestFilterIgnoredMergeAllWins(t *testing.T) {
	for name, src := range map[string]string{
		"all-then-named": `package ignoretest

//rampvet:ignore
var x = 1 //rampvet:ignore floatcmp
`,
		"named-then-all": `package ignoretest

//rampvet:ignore floatcmp
var x = 1 //rampvet:ignore
`,
	} {
		pkg := parseOnlyPackage(t, src)
		kept := filterIgnored(pkg, []Diagnostic{
			diagAt(pkg, 4, "floatcmp"),
			diagAt(pkg, 4, "errdrop"), // only the ignore-all directive covers this
		})
		if len(kept) != 0 {
			t.Errorf("%s: kept %v, want ignore-all to win", name, kept)
		}
	}
}

// TestFilterIgnoredNamedMerge covers merging two named lists onto one
// line: both analyzer lists apply, others stay reported.
func TestFilterIgnoredNamedMerge(t *testing.T) {
	pkg := parseOnlyPackage(t, `package ignoretest

//rampvet:ignore floatcmp
var x = 1 //rampvet:ignore errdrop -- justification text
`)
	kept := filterIgnored(pkg, []Diagnostic{
		diagAt(pkg, 4, "floatcmp"),
		diagAt(pkg, 4, "errdrop"),
		diagAt(pkg, 4, "detmap"), // named by neither directive
	})
	if len(kept) != 1 || kept[0].Analyzer != "detmap" {
		t.Fatalf("named merge: kept %v, want only detmap", kept)
	}
}

// TestLoaderBuildTags proves analyzers see the same tree the compiler
// does: internal/check's rampdebug-gated implementation is excluded by
// the default loader and included (with its no-op twin excluded) when
// the tag is set. The `enabled` constant differs between the two
// files, so its value identifies which file was loaded.
func TestLoaderBuildTags(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/check + stdlib in -short mode")
	}
	load := func(tags ...string) string {
		l, err := NewLoaderWithTags(".", tags...)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, "internal", "check"))
		if err != nil {
			t.Fatal(err)
		}
		obj := pkg.Types.Scope().Lookup("enabled")
		c, ok := obj.(*types.Const)
		if !ok {
			t.Fatalf("internal/check has no `enabled` const (got %v)", obj)
		}
		return c.Val().ExactString()
	}
	if got := load(); got != "false" {
		t.Errorf("default build: enabled = %s, want false (check_on.go must be excluded)", got)
	}
	if got := load("rampdebug"); got != "true" {
		t.Errorf("rampdebug build: enabled = %s, want true (check_off.go must be excluded)", got)
	}
}

// TestBaselineRoundTrip covers write → load → filter: grandfathered
// findings are absorbed per-occurrence, fresh ones surface, and line
// numbers do not participate in matching.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	mk := func(line int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: filepath.Join(root, "pkg", "f.go"), Line: line, Column: 1},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	old := []Diagnostic{
		mk(10, "detmap", "map iteration order reaches output"),
		mk(20, "hotalloc", "make allocates"),
		mk(21, "hotalloc", "make allocates"), // duplicate message, distinct occurrence
	}
	path := filepath.Join(root, BaselineName)
	if err := WriteBaseline(path, root, old); err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Len() != 3 {
		t.Fatalf("baseline Len = %d, want 3", bl.Len())
	}

	now := []Diagnostic{
		mk(99, "detmap", "map iteration order reaches output"), // moved: still grandfathered
		mk(20, "hotalloc", "make allocates"),
		mk(21, "hotalloc", "make allocates"),
		mk(22, "hotalloc", "make allocates"),                // third occurrence: fresh
		mk(30, "goroleak", "goroutine has no escape route"), // new analyzer finding: fresh
	}
	fresh, grandfathered := bl.Filter(root, now)
	if grandfathered != 3 {
		t.Errorf("grandfathered = %d, want 3", grandfathered)
	}
	if len(fresh) != 2 || fresh[0].Pos.Line != 22 || fresh[1].Analyzer != "goroleak" {
		t.Errorf("fresh = %v, want the third hotalloc occurrence and the goroleak finding", fresh)
	}

	// A missing baseline file is an empty baseline.
	empty, err := LoadBaseline(filepath.Join(root, "nonexistent"))
	if err != nil {
		t.Fatal(err)
	}
	if f, g := must2(empty.Filter(root, now)); len(f) != len(now) || g != 0 {
		t.Errorf("empty baseline: fresh=%d grandfathered=%d, want all fresh", len(f), g)
	}
}

func must2(fresh []Diagnostic, grandfathered int) ([]Diagnostic, int) {
	return fresh, grandfathered
}

// TestSeededDefectsFailGate is the CI-gate self-test the acceptance
// criteria ask for: each flow analyzer's fixture package contains
// seeded defects, and running the suite against the repo's committed
// baseline must produce fresh findings — i.e. introducing any of these
// defect classes into the tree makes `rampvet ./...` (and the ci.sh
// rampvet lane) exit non-zero. Uses the real baseline so a future
// baseline entry can never mask a fixture-class defect silently.
func TestSeededDefectsFailGate(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks fixtures + stdlib in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	bl, err := LoadBaseline(filepath.Join(loader.ModuleRoot, BaselineName))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Analyzer{DetMap, CtxFlow, HotAlloc, GoroLeak} {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatal(err)
		}
		diags, err := RunAnalyzers(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := bl.Filter(loader.ModuleRoot, diags)
		if len(fresh) == 0 {
			t.Errorf("%s: seeded defects produced no fresh findings; the CI gate would pass a %s regression", a.Name, a.Name)
		}
	}
}

// TestStats covers the per-analyzer tally used by -stats and
// scripts/lintstats.sh: every analyzer appears, in suite order, with
// zero counts preserved.
func TestStats(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "detmap"}, {Analyzer: "detmap"}, {Analyzer: "goroleak"},
	}
	rows := Stats(All(), diags)
	if len(rows) != len(All()) {
		t.Fatalf("Stats rows = %d, want %d", len(rows), len(All()))
	}
	byName := map[string]int{}
	for _, r := range rows {
		byName[r.Name] = r.Count
	}
	if byName["detmap"] != 2 || byName["goroleak"] != 1 || byName["hotalloc"] != 0 {
		t.Fatalf("Stats counts = %v", byName)
	}
}
