package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted patterns of a `// want `x` `y“ comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one expected diagnostic from a fixture comment.
type expectation struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseExpectations scans a fixture file for `// want` comments.
func parseExpectations(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		_, rest, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		quoted := wantRE.FindAllStringSubmatch(rest, -1)
		if len(quoted) == 0 {
			t.Fatalf("%s:%d: want comment without backquoted pattern", path, i+1)
		}
		for _, q := range quoted {
			rx, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, q[1], err)
			}
			out = append(out, &expectation{line: i + 1, pattern: rx})
		}
	}
	return out
}

// runFixture loads testdata/src/<name> and checks the analyzer's
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	expects := map[string][]*expectation{}
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, path := range matches {
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		es := parseExpectations(t, path)
		expects[abs] = es
		total += len(es)
	}
	if total == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}

	for _, d := range diags {
		abs, err := filepath.Abs(d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range expects[abs] {
			if !e.matched && e.line == d.Pos.Line && e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for path, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q not reported", path, e.line, e.pattern)
			}
		}
	}
}

func TestFloatCmp(t *testing.T)   { runFixture(t, FloatCmp) }
func TestUnitSafety(t *testing.T) { runFixture(t, UnitSafety) }
func TestExpGuard(t *testing.T)   { runFixture(t, ExpGuard) }
func TestSeedDet(t *testing.T)    { runFixture(t, SeedDet) }
func TestErrDrop(t *testing.T)    { runFixture(t, ErrDrop) }
func TestObsGuard(t *testing.T)   { runFixture(t, ObsGuard) }

// TestByName covers analyzer lookup.
func TestByName(t *testing.T) {
	as, err := ByName([]string{"floatcmp", "errdrop"})
	if err != nil || len(as) != 2 || as[0].Name != "floatcmp" || as[1].Name != "errdrop" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate CI applies with `go run ./cmd/rampvet ./...`. Skipped in -short
// mode: it type-checks the entire module plus the stdlib from source.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in -short mode")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(loader.ModuleRoot, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
