package lint

import (
	"go/ast"
	"go/types"

	"ramp/internal/lint/flow"
)

// GoroLeak flags goroutines spawned with no escape route.
//
// rampserve drains gracefully on SIGTERM and the test suite runs a
// 32-goroutine race lane; both depend on every spawned goroutine being
// joinable or cancellable. A goroutine whose body touches none of the
// coordination primitives — no context value, no channel operation, no
// sync.WaitGroup — is fire-and-forget: nothing can stop it, nothing
// can wait for it, and under repeated spawning it is a leak. Two
// checks:
//
//   - detached goroutine: the spawned function (literal or locally
//     declared, including its local callees) references no context, no
//     channel and no WaitGroup, and the call's arguments carry none
//     either;
//   - unbounded loop: the goroutine contains a `for { }` loop with no
//     channel operation and no context use inside the loop — even a
//     WaitGroup cannot help when the loop never exits.
//
// Goroutines whose body is invisible (a method value from another
// package) are only checked via their arguments. Deliberate detachment
// takes a `//rampvet:ignore goroleak` with justification.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flags goroutines with no ctx/channel/WaitGroup escape route and goroutine loops that can never be cancelled",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	g := flow.BuildGraph(pass.Files, pass.Info)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g, gs)
			return true
		})
	}
	return nil
}

// checkGoStmt applies both goroleak checks to one go statement.
func checkGoStmt(pass *Pass, g *flow.Graph, gs *ast.GoStmt) {
	body := goBody(pass, g, gs.Call)
	escapes := false
	for _, arg := range gs.Call.Args {
		if isCoordinationExpr(pass, arg) {
			escapes = true
		}
	}
	if body != nil && bodyEscapes(pass, g, body, map[*types.Func]bool{}) {
		escapes = true
	}
	if !escapes {
		pass.Reportf(gs.Pos(), "goroutine has no ctx/done-channel/WaitGroup escape route; nothing can stop or join it")
	}
	// Even a joinable goroutine must not contain an uncancellable
	// infinite loop: the join never happens. Checked for goroutine
	// literals only, where the loop position is at the spawn site;
	// a named function's loops are its own (synchronous) business.
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	for _, loop := range flow.Build(lit.Body).Loops {
		fs, ok := loop.Stmt.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			continue
		}
		cancellable := loop.Contains(func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt, *ast.SendStmt, *ast.ReturnStmt:
				return true
			case *ast.UnaryExpr:
				return n.Op.String() == "<-"
			case ast.Expr:
				return isContextType(pass.TypeOf(n)) || isChanType(pass.TypeOf(n))
			}
			return false
		})
		if !cancellable {
			pass.Reportf(loop.Stmt.Pos(), "unbounded for loop in goroutine has no channel operation or ctx check; it can never be cancelled")
		}
	}
}

// goBody resolves the spawned function's body: a function literal's
// own body, or the body of a locally declared function. nil when the
// body is outside the package.
func goBody(pass *Pass, g *flow.Graph, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if callee := flow.Callee(pass.Info, call); callee != nil {
		if fi := g.Funcs[callee]; fi != nil && fi.Decl != nil {
			return fi.Decl.Body
		}
	}
	return nil
}

// bodyEscapes reports whether a goroutine body references a
// coordination primitive, directly or through locally declared callees.
func bodyEscapes(pass *Pass, g *flow.Graph, body *ast.BlockStmt, seen map[*types.Func]bool) bool {
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			escapes = true
			return false
		case *ast.RangeStmt:
			if isChanType(pass.TypeOf(n.X)) {
				escapes = true
				return false
			}
		case *ast.CallExpr:
			if callee := flow.Callee(pass.Info, n); callee != nil {
				if isWaitGroupMethod(callee) {
					escapes = true
					return false
				}
				if fi := g.Funcs[callee]; fi != nil && fi.Decl != nil && fi.Decl.Body != nil && !seen[callee] {
					seen[callee] = true
					if bodyEscapes(pass, g, fi.Decl.Body, seen) {
						escapes = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				escapes = true
				return false
			}
		case *ast.Ident:
			t := pass.TypeOf(n)
			if isContextType(t) || isChanType(t) {
				escapes = true
				return false
			}
		}
		return true
	})
	return escapes
}

// isCoordinationExpr reports whether an argument hands the goroutine a
// coordination primitive: a context, a channel, or a *sync.WaitGroup.
func isCoordinationExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if isContextType(t) || isChanType(t) {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return t != nil && types.TypeString(t, nil) == "sync.WaitGroup"
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isWaitGroupMethod reports whether fn is a method on sync.WaitGroup.
func isWaitGroupMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return types.TypeString(t, nil) == "sync.WaitGroup"
}
