// Package lint is a small, pluggable static-analysis framework for the
// RAMP codebase, built entirely on the standard library's go/ast,
// go/parser, go/types and go/build/constraint packages (the repo's
// stdlib-only rule rules out golang.org/x/tools/go/analysis, so this
// package reimplements the slice of it RAMP needs).
//
// The framework has four parts:
//
//   - Analyzer: a named check with a Run function over a type-checked
//     package (this file), plus the baseline/grandfathering machinery
//     (baseline.go) the CI gate runs against.
//   - Loader: resolves "./..."-style patterns to module packages,
//     parses them with build-constraint filtering, and type-checks them
//     with a stdlib-only importer chain (load.go). Analysis fans out
//     across packages with a deterministic merge (RunConfigured).
//   - flow (internal/lint/flow): per-function control-flow graphs and
//     a package-level call graph with interprocedural reachability —
//     the engine under the flow-aware analyzers.
//   - The domain analyzers. Per-statement pattern checks (floatcmp.go,
//     unitsafety.go, expguard.go, seeddet.go, errdrop.go, obsguard.go):
//     float equality, Celsius-into-Kelvin constants, unguarded
//     Arrhenius denominators, non-deterministic RNG seeding, dropped
//     errors, and raw stderr prints bypassing the structured logger.
//     Flow-aware checks (detmap.go, ctxflow.go, hotalloc.go,
//     goroleak.go): map iteration order leaking into output or
//     floating-point accumulation, severed context cancellation chains,
//     allocation sources on //ramp:hot paths, and unjoinable
//     goroutines.
//
// cmd/rampvet is the command-line driver; analyzer golden tests live in
// lint_test.go against fixtures under testdata/src.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers do:
// file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Analyzer is one static check.
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "floatcmp"
	Doc  string // one-line description
	Run  func(*Pass) error
}

// All returns the full analyzer suite in stable order. The first six
// are per-statement pattern checks; the last four are flow-aware,
// built on the internal/lint/flow CFG and call-graph engine.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		UnitSafety,
		ExpGuard,
		SeedDet,
		ErrDrop,
		ObsGuard,
		DetMap,
		CtxFlow,
		HotAlloc,
		GoroLeak,
	}
}

// ByName returns the named analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	index := map[string]*Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies the analyzers to one loaded package and returns
// the diagnostics sorted by position, with //rampvet:ignore-suppressed
// findings removed.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = filterIgnored(pkg, diags)
	sortDiagnostics(diags)
	return diags, nil
}

// ignoreDirective is the comment prefix that suppresses diagnostics.
const ignoreDirective = "//rampvet:ignore"

// filterIgnored drops diagnostics suppressed by an `//rampvet:ignore
// [analyzers]` comment. A directive applies to findings on its own line
// (trailing comment) and on the line directly below it (standalone
// comment above the offending statement). With no analyzer list it
// suppresses everything on those lines; with a comma-separated list,
// only the named analyzers. Everything after the first space-separated
// field is free-form justification.
func filterIgnored(pkg *Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	ignores := map[key][]string{} // nil slice = ignore all analyzers
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok || (rest != "" && rest[0] != ' ') {
					continue
				}
				var names []string
				if fields := strings.Fields(rest); len(fields) > 0 && fields[0] != "--" {
					names = strings.Split(fields[0], ",")
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := key{pos.Filename, line}
					if names == nil {
						ignores[k] = nil
						continue
					}
					if cur, seen := ignores[k]; !seen || cur != nil {
						ignores[k] = append(cur, names...)
					}
				}
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		names, ok := ignores[key{d.Pos.Filename, d.Pos.Line}]
		if ok && (names == nil || slices.Contains(names, d.Analyzer)) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// sortDiagnostics orders diagnostics by file, line, column, analyzer.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
