package lint

import (
	"go/ast"
	"go/types"
)

// SeedDet flags non-deterministic RNG construction outside tests.
//
// RAMP's Monte Carlo lifetime estimates
// (core.LifetimeModel.MonteCarloMTTFHours), trace generation and sensor
// noise models are all specified to be reproducible: the same seed must
// produce the same lifetime distribution, or results cannot be compared
// across runs, machines or CI. Two patterns break that contract:
//
//   - seeding from the clock: rand.New(rand.NewSource(time.Now()...)),
//   - the global math/rand functions (rand.Float64, rand.Intn, ...),
//     which share an unseeded (Go ≥1.20: randomly-seeded) global state.
//
// Both must instead construct rand.New(rand.NewSource(seed)) with a
// seed plumbed from configuration (exp.Options.Seed). The loader never
// parses _test.go files, so tests may do what they like.
var SeedDet = &Analyzer{
	Name: "seeddet",
	Doc:  "flags time-seeded or global math/rand usage outside tests; seeds must come from config",
	Run:  runSeedDet,
}

// randGlobalFuncs are the top-level math/rand functions backed by the
// shared global source. Constructors and helpers that take an explicit
// source or produce no randomness are excluded.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Intn": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func runSeedDet(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // methods on *rand.Rand are fine
			}
			switch {
			case fn.Name() == "New" || fn.Name() == "NewSource":
				for _, arg := range call.Args {
					// A rand.New(rand.NewSource(...)) chain is reported
					// once, at the inner NewSource call.
					if fn.Name() == "New" && containsCallTo(pass.Info, arg, "math/rand", "NewSource") {
						continue
					}
					if containsCallTo(pass.Info, arg, "time", "Now") {
						pass.Reportf(call.Pos(), "RNG seeded from time.Now is not reproducible; plumb a config seed (exp.Options.Seed)")
						break
					}
				}
			case randGlobalFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "global rand.%s uses shared non-deterministic state; construct rand.New(rand.NewSource(seed)) with a config-plumbed seed", fn.Name())
			}
			return true
		})
	}
	return nil
}
