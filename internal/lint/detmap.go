package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"ramp/internal/lint/flow"
)

// DetMap flags map-range loops whose iteration order can leak into
// program output or floating-point accumulation.
//
// Go randomizes map iteration order on purpose; this repo's golden
// suite byte-compares every table and figure against committed
// snapshots, and RAMP's FIT sums are floating-point — addition is not
// associative, so summing map values in a random order produces
// run-to-run ULP drift that the golden compare reports as corruption.
// The two sinks that make a map range order-sensitive are therefore:
//
//   - accumulation: a `+=`-family assignment of float (order-dependent
//     rounding) or string (order-dependent content) into state declared
//     outside the loop;
//   - emission: a call that writes — the fmt print family, Write*
//     methods, json.Encoder.Encode — directly in the loop body or
//     transitively through the package call graph (a call into a local
//     function that accumulates into shared state — receiver fields,
//     pointer parameters, package variables — counts the same way).
//
// Map ranges that only read, count into integers, or collect keys for
// sorting are left alone. Deliberately order-insensitive loops take a
// `//rampvet:ignore detmap` directive with justification.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc:  "flags map-range loops whose iteration order reaches output or floating-point accumulation",
	Run:  runDetMap,
}

func runDetMap(pass *Pass) error {
	g := flow.BuildGraph(pass.Files, pass.Info)
	for _, fi := range g.Decls {
		if fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if sink := detMapSink(pass, g, rs); sink != "" {
				pass.Reportf(rs.For, "map iteration order reaches %s; iterate sorted keys on deterministic paths", sink)
			}
			return true
		})
	}
	return nil
}

// detMapSink scans a map-range body for an order-sensitive sink and
// describes the first one found ("" if none).
func detMapSink(pass *Pass, g *flow.Graph, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if s := accumulationSink(pass, rs, n); s != "" {
				sink = s
				return false
			}
		case *ast.CallExpr:
			callee := flow.Callee(pass.Info, n)
			if callee == nil {
				return true
			}
			if isWriterFunc(callee) {
				sink = "output via " + callee.FullName()
				return false
			}
			if g.CallOrReaches(callee, func(c *types.Func, local *flow.FuncInfo) bool {
				return isWriterFunc(c) || accumulatesShared(pass.Info, local)
			}) {
				sink = "an order-sensitive sink through " + callee.Name()
				return false
			}
		}
		return true
	})
	return sink
}

// accumulationSink reports a compound float/string accumulation into
// state declared outside the range statement.
func accumulationSink(pass *Pass, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return ""
	}
	lhs := as.Lhs[0]
	t := pass.TypeOf(lhs)
	kind := ""
	switch {
	case isFloat(t):
		kind = "floating-point accumulation"
	case isString(t):
		kind = "string accumulation"
	default:
		return ""
	}
	if obj := baseObject(pass.Info, lhs); obj != nil &&
		obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return "" // loop-local accumulator: order cannot escape
	}
	return kind + " into " + types.ExprString(lhs)
}

// accumulatesShared reports whether a local function's body contains a
// compound float accumulation into state visible outside the call:
// receiver/pointer fields, indexed state, or package-level variables.
func accumulatesShared(info *types.Info, fi *flow.FuncInfo) bool {
	if fi == nil || fi.Decl == nil || fi.Decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(info.TypeOf(lhs)) {
			return true
		}
		if sharedLHS(info, lhs) {
			found = true
			return false
		}
		return true
	})
	return found
}

// sharedLHS reports whether an assignment target denotes state visible
// outside the enclosing function: a field selection, a dereference, or
// a package-level variable.
func sharedLHS(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return sharedLHS(info, e.X)
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil {
			return v.Parent() == v.Pkg().Scope()
		}
	}
	return false
}

// baseObject resolves the variable at the base of an assignable
// expression (x, x[i], x.f → x's object), or nil when the base is not a
// simple identifier.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isWriterFunc reports whether fn emits bytes whose order the caller
// observes: the fmt print family, Write* methods (io.Writer
// implementations, strings.Builder, bytes.Buffer, bufio.Writer), and
// json.Encoder.Encode.
func isWriterFunc(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return fn.Type().(*types.Signature).Recv() != nil
	case "Encode":
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return types.TypeString(recv.Type(), nil) == "*encoding/json.Encoder"
		}
	}
	return false
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
