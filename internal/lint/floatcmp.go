package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions.
//
// RAMP's lifetime math is a chain of float computations (Arrhenius
// exponentials, FIT averaging, Weibull quantiles); exact equality on
// their results is almost always a rounding-sensitive bug — two
// mathematically equal FIT values rarely compare equal after different
// evaluation orders. Callers should compare against an epsilon instead.
//
// Two idioms stay legal because they are exact by construction:
//
//   - comparison against a constant zero (`g != 0`, `pmax == 0`):
//     sparsity and sentinel tests on values that are exactly zero, a
//     pattern the thermal solver and RNG rejection loops rely on;
//   - self-comparison (`x != x`): the portable NaN test.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floating-point expressions (except exact-zero and NaN-test idioms)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if isConstZero(pass.Info, be.X) || isConstZero(pass.Info, be.Y) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true // x != x: NaN test
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison is rounding-sensitive; compare against an epsilon", be.Op)
			return true
		})
	}
	return nil
}

// isConstZero reports whether e is a compile-time constant equal to 0.
func isConstZero(info *types.Info, e ast.Expr) bool {
	v, ok := constFloatValue(info, e)
	return ok && v == 0
}
