package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsGuard flags raw fmt.Fprint/Fprintf/Fprintln calls writing to
// os.Stderr inside internal packages.
//
// The observability layer (internal/obs) gives every binary a shared
// structured logger: levelled, machine-parseable, and redirectable.
// A bare fmt.Fprintf(os.Stderr, ...) bypasses all of that — the line
// carries no level, no fields, ignores RAMP_LOG/RAMP_LOG_FORMAT, and is
// invisible to anything consuming the JSON stream. Library code should
// log through log/slog (obs wires the default logger) or return errors;
// printing straight to stderr is reserved for package main, where usage
// and flag errors legitimately bypass logging.
//
// The check is path-gated to packages under internal/ so cmd/ mains
// stay free to print. Deliberate exceptions take a `//rampvet:ignore
// obsguard` directive with justification.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "flags raw fmt.Fprint*(os.Stderr, ...) in internal packages; diagnostics belong on the structured logger",
	Run:  runObsGuard,
}

func runObsGuard(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") && !strings.HasSuffix(path, "/internal") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var fn string
			for _, name := range []string{"Fprint", "Fprintf", "Fprintln"} {
				if isPkgFunc(pass.Info, call, "fmt", name) {
					fn = name
					break
				}
			}
			if fn == "" || !isOSStderr(pass.Info, call.Args[0]) {
				return true
			}
			pass.Reportf(call.Pos(), "fmt.%s to os.Stderr in internal package; log through log/slog (internal/obs) or return an error", fn)
			return true
		})
	}
	return nil
}

// isOSStderr reports whether e is the os.Stderr variable (not an
// arbitrary io.Writer that happens to alias it — only the literal
// selector defeats the structured logger knowably at compile time).
func isOSStderr(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stderr" {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os"
}
