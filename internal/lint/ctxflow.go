package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"ramp/internal/lint/flow"
)

// CtxFlow flags broken cancellation plumbing in functions that accept a
// context.Context.
//
// The rampserve deadlines only work because cancellation is threaded
// from the HTTP handler down to the epoch boundary: EvaluateCtx,
// SweepCtx and RequalifyAllCtx all check ctx and stop simulating within
// one epoch. A function that takes a ctx and then calls a long-running
// entry point through its non-ctx variant (Evaluate instead of
// EvaluateCtx) silently severs that chain — the caller's deadline
// expires but the simulation burns to completion. Two checks:
//
//   - severed call: a ctx-bearing function calls a long-running
//     function (name-prefixed Evaluate/Sweep/Requalify/Simulate, or a
//     local helper whose call graph reaches one) without passing any
//     context argument; when a "<name>Ctx" sibling exists the message
//     names it.
//   - uncancellable loop: a CFG loop in a ctx-bearing function that
//     makes long-running calls but contains no cancellation point — no
//     ctx.Err()/ctx.Done() check, no select, and no call that receives
//     a context. Each iteration extends the uncancellable window.
//
// Both checks are scoped to functions that already accept a ctx: those
// are exactly the functions on the serve path (handlers thread ctx by
// construction), and a function without a ctx parameter has nothing to
// propagate.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags ctx-bearing functions that sever cancellation: non-ctx calls to long-running work, loops without a cancellation point",
	Run:  runCtxFlow,
}

// longRunPrefixes name this repo's long-running entry points: full
// evaluations, adaptation-space sweeps, batch requalifications and raw
// simulation runs — everything that loops over epochs or candidates.
var longRunPrefixes = []string{"Evaluate", "Sweep", "Requalify", "Simulate"}

func runCtxFlow(pass *Pass) error {
	g := flow.BuildGraph(pass.Files, pass.Info)
	for _, fi := range g.Decls {
		if fi.Decl.Body == nil || !hasCtxParam(fi.Obj) {
			continue
		}
		// Severed calls anywhere in the body.
		flagged := map[*ast.CallExpr]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := flow.Callee(pass.Info, call)
			if callee == nil || callHasCtxArg(pass, call) {
				return true
			}
			if isLongRunningName(callee.Name()) {
				flagged[call] = true
				if sib := ctxSibling(callee); sib != nil {
					pass.Reportf(call.Pos(), "ctx-bearing function calls %s without the context; use %s to propagate cancellation", callee.Name(), sib.Name())
				} else {
					pass.Reportf(call.Pos(), "ctx-bearing function calls long-running %s without the context; thread ctx through it", callee.Name())
				}
				return true
			}
			if g.Reaches(callee, func(c *types.Func, _ *flow.FuncInfo) bool {
				return isLongRunningName(c.Name())
			}) {
				flagged[call] = true
				pass.Reportf(call.Pos(), "ctx-bearing function calls %s, whose call chain reaches long-running work, without the context", callee.Name())
			}
			return true
		})

		// Uncancellable loops, via the control-flow graph.
		for _, loop := range fi.CFG().Loops {
			if loopHasCancellation(pass, loop) {
				continue
			}
			hasSevered := false
			hasLongRun := loop.Contains(func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return false
				}
				if flagged[call] {
					hasSevered = true
				}
				callee := flow.Callee(pass.Info, call)
				if callee == nil {
					return false
				}
				return g.CallOrReaches(callee, func(c *types.Func, _ *flow.FuncInfo) bool {
					return isLongRunningName(c.Name())
				})
			})
			if hasLongRun && !hasSevered {
				// A severed call inside the loop was already reported
				// above; don't double-report the enclosing loop.
				pass.Reportf(loop.Stmt.Pos(), "loop makes long-running calls with no cancellation point; check ctx.Err() or pass ctx into the loop body")
			}
		}
	}
	return nil
}

// isLongRunningName reports whether name denotes a long-running entry
// point. Ctx variants match too — they are just as long-running; the
// severed-call check never fires on them because they cannot be called
// without a context argument, while the loop check needs them to count
// (an EvaluateCtx fed context.Background() inside a loop is exactly an
// uncancellable loop).
func isLongRunningName(name string) bool {
	for _, p := range longRunPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// hasCtxParam reports whether fn's signature carries a cancellation
// source: a context.Context or an *http.Request (whose Context() the
// serve handlers thread downward).
func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isCtxCarrier(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// callHasCtxArg reports whether any argument of the call carries a
// context (a context.Context value or an *http.Request).
func callHasCtxArg(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isCtxCarrier(pass.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isCtxCarrier reports whether t is context.Context or *http.Request.
func isCtxCarrier(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ctxSibling looks up the "<name>Ctx" variant of fn — a package-level
// function or a method on the same receiver type whose first parameter
// is a context.Context — and returns it, or nil.
func ctxSibling(fn *types.Func) *types.Func {
	name := fn.Name() + "Ctx"
	sig := fn.Type().(*types.Signature)
	var cand types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		cand = obj
	} else if fn.Pkg() != nil {
		cand = fn.Pkg().Scope().Lookup(name)
	}
	sib, ok := cand.(*types.Func)
	if !ok {
		return nil
	}
	sibSig, ok := sib.Type().(*types.Signature)
	if !ok || sibSig.Params().Len() == 0 || !isContextType(sibSig.Params().At(0).Type()) {
		return nil
	}
	return sib
}

// loopHasCancellation reports whether any block of the loop contains a
// cancellation point: a reference to a live context *variable*
// (ctx.Err(), ctx.Done(), passing ctx onward, an *http.Request in
// hand) or a select statement (which waits on channels the parent
// controls). A context.Context-typed call result is deliberately not
// enough — `EvaluateCtx(context.Background(), …)` manufactures a
// context precisely to sever cancellation, and must not count.
func loopHasCancellation(pass *Pass, loop *flow.Loop) bool {
	return loop.Contains(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			return true
		case *ast.Ident:
			return isCtxCarrier(pass.TypeOf(n))
		}
		return false
	})
}
