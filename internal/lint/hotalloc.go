package lint

import (
	"go/ast"
	"go/types"

	"ramp/internal/lint/flow"
)

// HotAlloc flags allocation sources inside functions marked with a
// `//ramp:hot` doc-comment directive.
//
// The directive marks the per-epoch hot path — the fixed-point loop,
// power and thermal evaluation, FIT accumulation — where the ROADMAP's
// allocation-free-evaluate target demands zero allocations per
// operation. Go's escape analysis is opaque at review time; this check
// makes the allocation sources themselves visible so they are hoisted
// into reusable state or consciously justified:
//
//   - map, slice and pointer composite literals (&T{...});
//   - make, new and append (growth reallocates);
//   - function literals (closures capture and escape);
//   - explicit conversions to interface types (boxing);
//   - fmt.Sprint/Sprintf/Sprintln (allocate their result and box
//     every operand).
//
// Failure paths are exempt: allocation inside a panic(...) argument or
// a fmt.Errorf/errors.New call happens only when the hot loop is
// already dead. Everything else takes a `//rampvet:ignore hotalloc`
// with justification or loses the //ramp:hot marking.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation sources (composite literals, make/new/append, closures, interface boxing, fmt.Sprint*) in //ramp:hot functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	g := flow.BuildGraph(pass.Files, pass.Info)
	for _, fi := range g.Decls {
		if !fi.Hot || fi.Decl.Body == nil {
			continue
		}
		checkHotBody(pass, fi.Decl.Body)
	}
	return nil
}

// checkHotBody reports allocation sources in one hot function body,
// skipping failure-path subtrees.
func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isFailurePathCall(pass, n) {
				return false // allocation on a dead hot path is fine
			}
			reportCallAlloc(pass, n)
		case *ast.CompositeLit:
			reportCompositeAlloc(pass, n)
		case *ast.UnaryExpr:
			// &T{...} allocates wherever the pointer escapes.
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "pointer composite literal allocates in //ramp:hot function; hoist into reusable state")
					return false
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in //ramp:hot function captures and allocates; hoist the closure out of the hot path")
			return false // the closure body runs elsewhere
		}
		return true
	})
}

// isFailurePathCall reports whether call is panic(...) or an error
// constructor — the subtrees hotalloc exempts.
func isFailurePathCall(pass *Pass, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true // the builtin, not a shadowing function
		}
	}
	return isPkgFunc(pass.Info, call, "fmt", "Errorf") ||
		isPkgFunc(pass.Info, call, "errors", "New")
}

// reportCallAlloc flags allocating calls: make, new, append, the
// fmt.Sprint family, and explicit conversions to interface types.
func reportCallAlloc(pass *Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltinUse := pass.Info.Uses[id].(*types.Builtin); isBuiltinUse {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make in //ramp:hot function allocates; hoist the buffer into reusable state")
			case "new":
				pass.Reportf(call.Pos(), "new in //ramp:hot function allocates; hoist into reusable state")
			case "append":
				pass.Reportf(call.Pos(), "append in //ramp:hot function may grow and reallocate; preallocate outside the hot path")
			}
			return
		}
	}
	for _, name := range []string{"Sprint", "Sprintf", "Sprintln"} {
		if isPkgFunc(pass.Info, call, "fmt", name) {
			pass.Reportf(call.Pos(), "fmt.%s in //ramp:hot function allocates its result and boxes operands; precompute or log off the hot path", name)
			return
		}
	}
	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if argT := pass.TypeOf(call.Args[0]); argT != nil && !types.IsInterface(argT) {
				pass.Reportf(call.Pos(), "conversion to interface type %s in //ramp:hot function boxes the value; keep hot-path data concrete", types.TypeString(tv.Type, nil))
			}
		}
	}
}

// reportCompositeAlloc flags map and slice composite literals, which
// always allocate; array and struct value literals live on the stack.
func reportCompositeAlloc(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal in //ramp:hot function allocates; hoist into reusable state")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal in //ramp:hot function allocates; hoist into reusable state")
	}
}
