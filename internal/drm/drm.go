// Package drm implements Dynamic Reliability Management (Section 4): the
// processor adapts to the running application so that its lifetime
// reliability (FIT value) meets the qualification target, throttling
// performance on under-designed processors (cheap T_qual) and harvesting
// extra performance on over-designed ones (expensive T_qual).
//
// As in the paper's evaluation (Section 5), the controller here is an
// oracle that adapts once per application: it explores the adaptation
// space, evaluates each configuration's performance and FIT with full
// knowledge of the application, and picks the best-performing
// configuration that still meets the target. Three adaptation spaces are
// modelled:
//
//   - Arch: the 18 microarchitectural configurations (instruction window
//     size, ALU count, FPU count) at the base voltage and frequency; the
//     base machine is already the most aggressive configuration, so Arch
//     can only reduce performance (relative performance <= 1).
//   - DVS: dynamic voltage and frequency scaling from 2.5 to 5.0 GHz on
//     the most aggressive microarchitecture.
//   - ArchDVS: the cross product.
package drm

import (
	"context"
	"fmt"
	"sort"

	"ramp/internal/check"
	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/exp"
	"ramp/internal/obs"
	"ramp/internal/trace"
)

// Metric names the DRM oracle registers on an instrumented Env.
const (
	MetricSweepPoints = "drm_sweep_points_total" // configurations queued by sweeps
	MetricSelects     = "drm_selects_total"      // qualification-point selections
)

// Adaptation selects a DRM adaptation space.
type Adaptation int

// The paper's three adaptation spaces (Section 5).
const (
	Arch Adaptation = iota
	DVS
	ArchDVS
)

var adaptationNames = map[Adaptation]string{
	Arch: "Arch", DVS: "DVS", ArchDVS: "ArchDVS",
}

// String returns the adaptation's paper name.
func (a Adaptation) String() string {
	if n, ok := adaptationNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Adaptation(%d)", int(a))
}

// Oracle is the once-per-application oracular DRM controller.
type Oracle struct {
	Env *exp.Env
	// FreqStepHz is the DVS exploration grid (default 0.125 GHz).
	FreqStepHz float64
}

// NewOracle returns an oracle over env with the default DVS grid.
func NewOracle(env *exp.Env) *Oracle {
	return &Oracle{Env: env, FreqStepHz: 0.125e9}
}

// Candidates returns the adaptation space's configurations.
func (o *Oracle) Candidates(a Adaptation) []config.Proc {
	switch a {
	case Arch:
		return config.ArchConfigs()
	case DVS:
		var out []config.Proc
		for _, f := range config.DVSFrequencies(o.FreqStepHz) {
			out = append(out, o.Env.Base.WithOperatingPoint(f))
		}
		return out
	case ArchDVS:
		var out []config.Proc
		for _, arch := range config.ArchConfigs() {
			for _, f := range config.DVSFrequencies(o.FreqStepHz) {
				out = append(out, arch.WithOperatingPoint(f))
			}
		}
		return out
	default:
		panic(fmt.Sprintf("drm: unknown adaptation %v", a))
	}
}

// Sweep holds the evaluated adaptation space for one application,
// reusable across qualification points (the expensive part — simulation,
// power, thermal — does not depend on T_qual).
type Sweep struct {
	App        trace.Profile
	Base       exp.Result
	Candidates []exp.Result
}

// Sweep evaluates the base machine and every candidate configuration for
// app. The qualification used here only fills the initial assessments;
// Select requalifies against the point of interest.
func (o *Oracle) Sweep(app trace.Profile, a Adaptation) (*Sweep, error) {
	return o.SweepCtx(context.Background(), app, a)
}

// SweepCtx is Sweep with cancellation: once ctx is done, queued
// candidate evaluations never start and in-flight ones stop at their
// next epoch boundary (a full ArchDVS sweep is the most expensive
// request the serve layer accepts, so abandoned sweeps must not burn
// simulation time).
func (o *Oracle) SweepCtx(ctx context.Context, app trace.Profile, a Adaptation) (*Sweep, error) {
	qual := o.Env.Qualification(400) // placeholder; Select requalifies
	cands := o.Candidates(a)
	ctx, span := o.Env.Trace.Start(ctx, "drm.sweep")
	if span.Enabled() {
		span.Annotate(obs.Str("app", app.Name), obs.Str("space", a.String()), obs.Int("points", int64(len(cands)+1)))
	}
	defer span.End()
	o.Env.Metrics.Counter(MetricSweepPoints).Add(int64(len(cands) + 1))
	jobs := make([]exp.EvalJob, 0, len(cands)+1)
	jobs = append(jobs, exp.EvalJob{App: app, Proc: o.Env.Base, Qual: qual})
	for _, c := range cands {
		jobs = append(jobs, exp.EvalJob{App: app, Proc: c, Qual: qual})
	}
	results, err := o.Env.EvaluateAllCtx(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return &Sweep{App: app, Base: results[0], Candidates: results[1:]}, nil
}

// Choice is the oracle's decision for one qualification point.
type Choice struct {
	Proc    config.Proc
	Result  exp.Result
	FIT     float64
	RelPerf float64 // BIPS relative to the base non-adaptive machine
	// Feasible reports whether any configuration met the FIT target; if
	// none did, the choice is the configuration with the lowest FIT (the
	// processor throttles as far as it can and still fails its
	// qualification — an unacceptable design point, Section 4).
	Feasible bool
}

// Select picks the best-performing candidate meeting the FIT target at
// the given qualification point. Requalification — the expensive part —
// runs on the environment's worker pool; the selection itself scans the
// assessments serially in candidate order, so the outcome (including
// tie-breaking towards the earlier candidate) is identical to a fully
// sequential pass.
func (s *Sweep) Select(env *exp.Env, qual core.Qualification) (Choice, error) {
	return s.SelectCtx(context.Background(), env, qual)
}

// SelectCtx is Select with cancellation; the batched requalification
// stops picking up candidates once ctx is done.
func (s *Sweep) SelectCtx(ctx context.Context, env *exp.Env, qual core.Qualification) (Choice, error) {
	if len(s.Candidates) == 0 {
		return Choice{}, fmt.Errorf("drm: empty candidate set")
	}
	ctx, span := env.Trace.Start(ctx, "drm.select")
	if span.Enabled() {
		span.Annotate(obs.Str("app", s.App.Name), obs.Float("tqual_k", qual.TqualK), obs.Int("candidates", int64(len(s.Candidates))))
	}
	defer span.End()
	env.Metrics.Counter(MetricSelects).Inc()
	assessments, err := env.RequalifyAllCtx(ctx, s.Candidates, qual)
	if err != nil {
		return Choice{}, err
	}
	best, fallback := -1, -1
	var bestRel, fallbackFIT float64
	for i := range s.Candidates {
		fit := assessments[i].TotalFIT
		rel := s.Candidates[i].BIPS / s.Base.BIPS
		check.NonNegative("drm.Sweep.Select.FIT", fit)
		check.NonNegative("drm.Sweep.Select.RelPerf", rel)
		if fit <= qual.TargetFIT && (best < 0 || rel > bestRel) {
			best, bestRel = i, rel
		}
		if fallback < 0 || fit < fallbackFIT {
			fallback, fallbackFIT = i, fit
		}
	}
	pick, feasible := fallback, false
	if best >= 0 {
		pick, feasible = best, true
	}
	r := s.Candidates[pick]
	return Choice{
		Proc:     r.Proc,
		Result:   r,
		FIT:      assessments[pick].TotalFIT,
		RelPerf:  r.BIPS / s.Base.BIPS,
		Feasible: feasible,
	}, nil
}

// Best runs a full sweep and selects for one qualification point.
func (o *Oracle) Best(app trace.Profile, a Adaptation, qual core.Qualification) (Choice, error) {
	return o.BestCtx(context.Background(), app, a, qual)
}

// BestCtx is Best with cancellation across both the sweep and the
// selection.
func (o *Oracle) BestCtx(ctx context.Context, app trace.Profile, a Adaptation, qual core.Qualification) (Choice, error) {
	s, err := o.SweepCtx(ctx, app, a)
	if err != nil {
		return Choice{}, err
	}
	return s.SelectCtx(ctx, o.Env, qual)
}

// AdaptationByName parses a paper adaptation-space name ("Arch", "DVS",
// "ArchDVS"; used by the serve layer's request validation).
func AdaptationByName(name string) (Adaptation, error) {
	for a, n := range adaptationNames {
		if n == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("drm: unknown adaptation %q (want Arch, DVS or ArchDVS)", name)
}

// FrequencyChoice returns, for a DVS-only sweep, the frequency the
// oracle picks at the given qualification point (used by the DRM-vs-DTM
// comparison, Figure 4).
func (s *Sweep) FrequencyChoice(env *exp.Env, qual core.Qualification) (float64, Choice, error) {
	c, err := s.Select(env, qual)
	if err != nil {
		return 0, Choice{}, err
	}
	return c.Proc.FreqHz, c, nil
}

// SortedByPerf returns the sweep's results ordered by descending BIPS
// (diagnostic helper).
func (s *Sweep) SortedByPerf() []exp.Result {
	out := append([]exp.Result(nil), s.Candidates...)
	sort.Slice(out, func(i, j int) bool { return out[i].BIPS > out[j].BIPS })
	return out
}
