// Reactive DRM control.
//
// The paper evaluates DRM with a once-per-application oracle (Section 5)
// and names real adaptive control algorithms as future work. This file
// implements that next step: an interval-based feedback controller that
// watches RAMP's FIT estimate online and steps the DVS operating point
// up or down, with no advance knowledge of the application.
//
// Two policies capture the paper's key observation that "like energy,
// but unlike temperature, reliability is a long-term phenomenon and can
// be budgeted over time" (Section 4):
//
//   - Instantaneous: every interval's FIT must respect the target on its
//     own. Simple, but over-conservative — a hot phase forces a slowdown
//     even when the surrounding phases have banked plenty of margin.
//   - Banked: the controller regulates the *cumulative time-averaged*
//     FIT, which is what RAMP actually qualifies (Section 3.6). Cool
//     phases bank failure-rate budget that hot phases may spend.
package drm

import (
	"fmt"

	"ramp/internal/check"
	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/exp"
	"ramp/internal/floorplan"
	"ramp/internal/power"
	"ramp/internal/sim"
	"ramp/internal/trace"
)

// ControlPolicy selects how the reactive controller interprets the FIT
// target.
type ControlPolicy int

// Reactive control policies.
const (
	// Instantaneous keeps every interval's own FIT at or below target.
	Instantaneous ControlPolicy = iota
	// Banked keeps the cumulative time-averaged FIT at or below target,
	// letting cool intervals bank budget for hot ones.
	Banked
)

// String returns the policy name.
func (p ControlPolicy) String() string {
	switch p {
	case Instantaneous:
		return "Instantaneous"
	case Banked:
		return "Banked"
	default:
		return fmt.Sprintf("ControlPolicy(%d)", int(p))
	}
}

// Controller is a reactive, interval-based DRM controller: it runs an
// application epoch by epoch, measures each epoch's reliability impact
// with RAMP, and nudges the DVS operating point to hold the FIT target.
type Controller struct {
	Env    *exp.Env
	Qual   core.Qualification
	Policy ControlPolicy

	// StepHz is the frequency increment per control action.
	StepHz float64
	// Headroom is the fraction of the target below which the controller
	// speeds up (hysteresis band: speed up under Headroom*target, slow
	// down above target).
	Headroom float64

	// scratch is the engine intervalFIT resets and reuses every epoch;
	// its budget depends only on Qual, which is fixed per controller. A
	// Controller is not safe for concurrent Run calls (Run itself is a
	// single stateful control loop), so one scratch engine suffices.
	scratch *core.Engine
}

// NewController returns a reactive controller with sensible defaults.
func NewController(env *exp.Env, qual core.Qualification, policy ControlPolicy) *Controller {
	return &Controller{
		Env:      env,
		Qual:     qual,
		Policy:   policy,
		StepHz:   0.125e9,
		Headroom: 0.90,
	}
}

// ControlTrace records one controlled run.
type ControlTrace struct {
	Policy ControlPolicy

	// Per-epoch records.
	FreqGHz  []float64
	EpochFIT []float64 // instantaneous FIT of each epoch
	CumFIT   []float64 // cumulative time-averaged FIT after each epoch

	// Aggregates.
	FinalFIT  float64 // cumulative FIT of the whole run
	BIPS      float64
	MeanGHz   float64
	Retired   uint64
	TimeSec   float64
	Converged bool // FinalFIT <= target
}

// Run executes app for the given number of epochs under reactive
// control, starting at the base operating point.
func (c *Controller) Run(app trace.Profile, epochs int) (ControlTrace, error) {
	if epochs <= 0 {
		return ControlTrace{}, fmt.Errorf("drm: non-positive epoch count %d", epochs)
	}
	if c.StepHz <= 0 {
		return ControlTrace{}, fmt.Errorf("drm: non-positive control step")
	}
	env := c.Env
	gen, err := trace.NewGenerator(app, env.Opts.Seed)
	if err != nil {
		return ControlTrace{}, err
	}
	proc := env.Base
	cpu, err := sim.New(proc, gen)
	if err != nil {
		return ControlTrace{}, err
	}
	if env.Opts.WarmupInstrs > 0 {
		cpu.Run(env.Opts.WarmupInstrs)
	}
	engine, err := core.NewEngine(env.FP, env.Params, c.Qual)
	if err != nil {
		return ControlTrace{}, err
	}

	on := power.Ones() // reactive control here scales V/f only
	tr := ControlTrace{
		Policy:   c.Policy,
		FreqGHz:  make([]float64, 0, epochs),
		EpochFIT: make([]float64, 0, epochs),
		CumFIT:   make([]float64, 0, epochs),
	}
	freq := proc.FreqHz
	sinkK := env.Tech.AmbientK + 25 // adapts from the running power average
	var wSum, tSum float64
	var freqTimeSum float64

	for i := 0; i < epochs; i++ {
		proc = proc.WithOperatingPoint(freq)
		// The controller must never command an operating point outside
		// the paper's DVS window (Section 6.1).
		check.InRange("drm.Controller.Run.freq", proc.FreqHz, config.MinFreqHz, config.MaxFreqHz)
		check.InRange("drm.Controller.Run.vdd", proc.VddV, config.VMin, config.VMax)
		cpu.SetOperatingPoint(proc.FreqHz, proc.VddV)
		r := cpu.Run(env.Opts.EpochInstrs)

		temps, pw := env.EpochConditions(r.Activity, on, proc, sinkK)
		// The sink follows the running average power (its time constant
		// spans many epochs).
		wSum += pw.Sum() * r.TimeSec
		tSum += r.TimeSec
		sinkK = env.Thermal.SinkSteadyTemp(wSum / tSum)

		iv := core.Interval{DurationSec: r.TimeSec}
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			iv.Structures[s] = core.Conditions{
				TempK:      temps[s],
				VddV:       proc.VddV,
				FreqHz:     proc.FreqHz,
				Activity:   r.Activity[s],
				OnFraction: 1,
			}
		}
		epochFIT, err := c.intervalFIT(iv)
		if err != nil {
			return ControlTrace{}, err
		}
		if err := engine.Observe(iv); err != nil {
			return ControlTrace{}, err
		}
		cum, err := engine.Assess()
		if err != nil {
			return ControlTrace{}, err
		}

		tr.FreqGHz = append(tr.FreqGHz, freq/1e9)
		tr.EpochFIT = append(tr.EpochFIT, epochFIT)
		tr.CumFIT = append(tr.CumFIT, cum.TotalFIT)
		tr.Retired += r.Retired
		tr.TimeSec += r.TimeSec
		freqTimeSum += freq * r.TimeSec

		// Control action for the next epoch.
		target := c.Qual.TargetFIT
		switch c.Policy {
		case Instantaneous:
			switch {
			case epochFIT > target:
				freq -= c.StepHz
			case epochFIT < c.Headroom*target:
				freq += c.StepHz
			}
		default: // Banked
			// Regulate the cumulative average inside a safety band: slow
			// down before the average actually reaches the target (the
			// cumulative signal reacts slowly), and only spend banked
			// budget while the current phase is not drastically over it.
			downAt := target * (1 + c.Headroom) / 2
			upAt := target * c.Headroom * c.Headroom
			switch {
			case cum.TotalFIT > downAt:
				freq -= c.StepHz
			case cum.TotalFIT < upAt && epochFIT < target/c.Headroom:
				freq += c.StepHz
			}
		}
		if freq < config.MinFreqHz {
			freq = config.MinFreqHz
		}
		if freq > config.MaxFreqHz {
			freq = config.MaxFreqHz
		}
	}

	final, err := engine.Assess()
	if err != nil {
		return ControlTrace{}, err
	}
	tr.FinalFIT = final.TotalFIT
	tr.BIPS = float64(tr.Retired) / tr.TimeSec / 1e9
	tr.MeanGHz = freqTimeSum / tr.TimeSec / 1e9
	tr.Converged = final.TotalFIT <= c.Qual.TargetFIT
	return tr, nil
}

// intervalFIT computes the FIT value this one interval would have if
// sustained forever (the instantaneous control signal). The scratch
// engine is built once and reset per call, so the per-epoch control
// path allocates nothing here.
func (c *Controller) intervalFIT(iv core.Interval) (float64, error) {
	e := c.scratch
	if e == nil {
		var err error
		e, err = core.NewEngine(c.Env.FP, c.Env.Params, c.Qual)
		if err != nil {
			return 0, err
		}
		c.scratch = e
	} else {
		e.Reset()
	}
	if err := e.Observe(iv); err != nil {
		return 0, err
	}
	a, err := e.Assess()
	if err != nil {
		return 0, err
	}
	return a.TotalFIT, nil
}
