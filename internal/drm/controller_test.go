package drm

import (
	"testing"

	"ramp/internal/config"
	"ramp/internal/exp"
	"ramp/internal/trace"
)

func quickController(tqual float64, policy ControlPolicy) *Controller {
	env := exp.NewEnv(exp.QuickOptions())
	return NewController(env, env.Qualification(tqual), policy)
}

func TestControllerPolicyString(t *testing.T) {
	if Instantaneous.String() != "Instantaneous" || Banked.String() != "Banked" {
		t.Fatal("policy names broken")
	}
	if ControlPolicy(7).String() == "" {
		t.Fatal("unknown policy name empty")
	}
}

func TestControllerRejectsBadInputs(t *testing.T) {
	c := quickController(370, Banked)
	if _, err := c.Run(trace.Gzip(), 0); err == nil {
		t.Fatal("zero epochs accepted")
	}
	c.StepHz = 0
	if _, err := c.Run(trace.Gzip(), 4); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestControllerHoldsTargetOnCheapDesign(t *testing.T) {
	// Tqual=345K: the base point exceeds the target for MP3dec (the
	// hottest app), so the controller must throttle until the cumulative
	// FIT meets it.
	c := quickController(345, Banked)
	tr, err := c.Run(trace.MP3dec(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("controller did not meet the target: final FIT %.0f", tr.FinalFIT)
	}
	if tr.MeanGHz >= 4.0 {
		t.Fatalf("cheap design not throttled: mean %.2f GHz", tr.MeanGHz)
	}
	for _, f := range tr.FreqGHz {
		if f < config.MinFreqHz/1e9-1e-9 || f > config.MaxFreqHz/1e9+1e-9 {
			t.Fatalf("frequency %v out of DVS range", f)
		}
	}
}

func TestControllerHarvestsSlackOnExpensiveDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	// Tqual=400K: plenty of margin; the controller should settle above
	// the base clock while keeping the cumulative FIT under target.
	c := quickController(400, Banked)
	tr, err := c.Run(trace.Twolf(), 24)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged {
		t.Fatalf("final FIT %.0f exceeds target", tr.FinalFIT)
	}
	last := tr.FreqGHz[len(tr.FreqGHz)-1]
	if last <= 4.0 {
		t.Fatalf("reliability slack not harvested: settled at %.2f GHz", last)
	}
}

func TestControllerTracksOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	// The reactive controller (no oracle knowledge) should settle near
	// the oracle's once-per-application DVS choice.
	env := exp.NewEnv(exp.QuickOptions())
	qual := env.Qualification(370)

	oracle := NewOracle(env)
	oracle.FreqStepHz = 0.25e9
	sweep, err := oracle.Sweep(trace.Equake(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	best, err := sweep.Select(env, qual)
	if err != nil {
		t.Fatal(err)
	}

	ctrl := NewController(env, qual, Banked)
	tr, err := ctrl.Run(trace.Equake(), 30)
	if err != nil {
		t.Fatal(err)
	}
	// Settle window: the last third of the run.
	tail := tr.FreqGHz[len(tr.FreqGHz)*2/3:]
	var mean float64
	for _, f := range tail {
		mean += f
	}
	mean /= float64(len(tail))
	oracleGHz := best.Proc.FreqHz / 1e9
	if mean < oracleGHz-0.5 || mean > oracleGHz+0.5 {
		t.Fatalf("controller settled at %.2f GHz, oracle chose %.2f GHz", mean, oracleGHz)
	}
}

func TestBankedBeatsInstantaneousOnPhasedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	// MPGdec alternates hot and cool phases. Instantaneous control must
	// throttle for the hottest interval; banked control spends budget
	// banked in the cool phases, retaining more performance at the same
	// cumulative reliability.
	env := exp.NewEnv(exp.QuickOptions())
	qual := env.Qualification(360)

	inst := NewController(env, qual, Instantaneous)
	trI, err := inst.Run(trace.MPGdec(), 30)
	if err != nil {
		t.Fatal(err)
	}
	bank := NewController(env, qual, Banked)
	trB, err := bank.Run(trace.MPGdec(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if !trB.Converged {
		t.Fatalf("banked controller missed the target: %.0f", trB.FinalFIT)
	}
	if trB.BIPS < trI.BIPS*0.98 {
		t.Fatalf("banking lost performance: banked %.2f vs instantaneous %.2f BIPS",
			trB.BIPS, trI.BIPS)
	}
}

func TestControllerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	run := func() ControlTrace {
		c := quickController(370, Banked)
		tr, err := c.Run(trace.Art(), 12)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if a.FinalFIT != b.FinalFIT || a.BIPS != b.BIPS || a.MeanGHz != b.MeanGHz {
		t.Fatalf("controller not deterministic: %+v vs %+v", a, b)
	}
}

func TestControlTraceBookkeeping(t *testing.T) {
	c := quickController(370, Instantaneous)
	tr, err := c.Run(trace.Bzip2(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.FreqGHz) != 8 || len(tr.EpochFIT) != 8 || len(tr.CumFIT) != 8 {
		t.Fatalf("trace lengths: %d %d %d", len(tr.FreqGHz), len(tr.EpochFIT), len(tr.CumFIT))
	}
	if tr.Retired == 0 || tr.TimeSec <= 0 || tr.BIPS <= 0 {
		t.Fatalf("aggregates: %+v", tr)
	}
	if tr.CumFIT[len(tr.CumFIT)-1] != tr.FinalFIT {
		t.Fatal("final FIT != last cumulative sample")
	}
}
