package drm

import (
	"testing"

	"ramp/internal/config"
	"ramp/internal/exp"
	"ramp/internal/trace"
)

func quickOracle() *Oracle {
	o := NewOracle(exp.NewEnv(exp.QuickOptions()))
	o.FreqStepHz = 0.5e9 // 6-point DVS grid keeps tests fast
	return o
}

func TestAdaptationString(t *testing.T) {
	if Arch.String() != "Arch" || DVS.String() != "DVS" || ArchDVS.String() != "ArchDVS" {
		t.Fatal("adaptation names broken")
	}
	if Adaptation(9).String() == "" {
		t.Fatal("unknown adaptation name empty")
	}
}

func TestCandidateSpaces(t *testing.T) {
	o := quickOracle()
	arch := o.Candidates(Arch)
	if len(arch) != 18 {
		t.Fatalf("Arch candidates = %d, want 18 (Section 6.1)", len(arch))
	}
	for _, c := range arch {
		if c.FreqHz != o.Env.Base.FreqHz || c.VddV != o.Env.Base.VddV {
			t.Fatalf("Arch candidate %s changed the operating point", c.Name)
		}
	}
	dvs := o.Candidates(DVS)
	if len(dvs) != 6 {
		t.Fatalf("DVS candidates = %d, want 6 at 0.5GHz step", len(dvs))
	}
	for _, c := range dvs {
		if c.WindowSize != o.Env.Base.WindowSize || c.IntALUs != o.Env.Base.IntALUs {
			t.Fatalf("DVS candidate %s changed the microarchitecture", c.Name)
		}
	}
	both := o.Candidates(ArchDVS)
	if len(both) != 18*6 {
		t.Fatalf("ArchDVS candidates = %d, want %d", len(both), 18*6)
	}
}

func TestDVSSweepSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	sweep, err := o.Sweep(trace.Twolf(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	// Generous qualification: the oracle must exploit the slack and pick
	// a frequency above base.
	hi, err := sweep.Select(o.Env, o.Env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	if !hi.Feasible {
		t.Fatal("twolf at Tqual=400K should be feasible")
	}
	if hi.Proc.FreqHz < o.Env.Base.FreqHz {
		t.Fatalf("over-designed processor not exploited: %v GHz", hi.Proc.FreqHz/1e9)
	}
	if hi.RelPerf <= 0.99 {
		t.Fatalf("no performance harvested: %v", hi.RelPerf)
	}
	if hi.FIT > o.Env.Qualification(400).TargetFIT {
		t.Fatalf("selected config violates target: %v", hi.FIT)
	}

	// Harsh qualification: the oracle must throttle below base.
	lo, err := sweep.Select(o.Env, o.Env.Qualification(330))
	if err != nil {
		t.Fatal(err)
	}
	if lo.Proc.FreqHz >= hi.Proc.FreqHz {
		t.Fatalf("harsher Tqual did not throttle: %v vs %v", lo.Proc.FreqHz, hi.Proc.FreqHz)
	}
}

func TestSelectMonotoneInTqual(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	sweep, err := o.Sweep(trace.Gzip(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, tq := range []float64{325, 345, 370, 400} {
		c, err := sweep.Select(o.Env, o.Env.Qualification(tq))
		if err != nil {
			t.Fatal(err)
		}
		if c.RelPerf < prev-1e-9 {
			t.Fatalf("RelPerf not monotone in Tqual at %vK: %v < %v", tq, c.RelPerf, prev)
		}
		prev = c.RelPerf
	}
}

func TestArchCappedAtBasePerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	// The base machine is already the most aggressive configuration, so
	// Arch can never exceed 1.0 relative performance (Section 6.1).
	o := quickOracle()
	sweep, err := o.Sweep(trace.Twolf(), Arch)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sweep.Select(o.Env, o.Env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	if c.RelPerf > 1.005 {
		t.Fatalf("Arch exceeded base performance: %v", c.RelPerf)
	}
}

func TestDVSBeatsArchWhenThrottling(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	// Section 7.2: voltage scaling is the more effective DRM response.
	o := quickOracle()
	qual := o.Env.Qualification(345)
	archSweep, err := o.Sweep(trace.Bzip2(), Arch)
	if err != nil {
		t.Fatal(err)
	}
	dvsSweep, err := o.Sweep(trace.Bzip2(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	archChoice, err := archSweep.Select(o.Env, qual)
	if err != nil {
		t.Fatal(err)
	}
	dvsChoice, err := dvsSweep.Select(o.Env, qual)
	if err != nil {
		t.Fatal(err)
	}
	if !dvsChoice.Feasible {
		t.Fatal("DVS should find a feasible point at 345K")
	}
	if archChoice.Feasible && archChoice.RelPerf > dvsChoice.RelPerf+1e-9 {
		t.Fatalf("Arch (%v) beat DVS (%v) — contradicts Section 7.2",
			archChoice.RelPerf, dvsChoice.RelPerf)
	}
}

func TestInfeasibleFallsBackToMinFIT(t *testing.T) {
	o := quickOracle()
	sweep, err := o.Sweep(trace.MP3dec(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	// A qualification temperature so low no DVS point can meet it (the
	// FIT target is scale-invariant, so infeasibility comes from T_qual).
	qual := o.Env.Qualification(316)
	c, err := sweep.Select(o.Env, qual)
	if err != nil {
		t.Fatal(err)
	}
	if c.Feasible {
		t.Fatal("impossible target reported feasible")
	}
	// The fallback must be the lowest-FIT candidate: the minimum
	// operating point.
	if c.Proc.FreqHz != config.MinFreqHz {
		t.Fatalf("fallback is %v GHz, want the coolest point %v",
			c.Proc.FreqHz/1e9, config.MinFreqHz/1e9)
	}
}

func TestSelectEmptySweepErrors(t *testing.T) {
	s := &Sweep{}
	if _, err := s.Select(exp.NewEnv(exp.QuickOptions()), exp.NewEnv(exp.QuickOptions()).Qualification(400)); err == nil {
		t.Fatal("empty sweep did not error")
	}
}

func TestFrequencyChoice(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	sweep, err := o.Sweep(trace.Art(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	f, c, err := sweep.FrequencyChoice(o.Env, o.Env.Qualification(370))
	if err != nil {
		t.Fatal(err)
	}
	if f != c.Proc.FreqHz {
		t.Fatalf("frequency %v != choice %v", f, c.Proc.FreqHz)
	}
}

func TestSortedByPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	sweep, err := o.Sweep(trace.Twolf(), DVS)
	if err != nil {
		t.Fatal(err)
	}
	sorted := sweep.SortedByPerf()
	for i := 1; i < len(sorted); i++ {
		if sorted[i].BIPS > sorted[i-1].BIPS {
			t.Fatal("not sorted by descending BIPS")
		}
	}
}
