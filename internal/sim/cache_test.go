package sim

import (
	"testing"

	"ramp/internal/config"
)

func smallCache() *Cache {
	return NewCache(config.CacheConfig{
		SizeBytes: 1024, Assoc: 2, LineBytes: 64, Ports: 1, MSHRs: 4,
	}) // 8 sets x 2 ways
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x100, true) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x100, true) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x13f, true) {
		t.Fatal("same-line access missed")
	}
	if c.Accesses() != 3 || c.Misses() != 1 {
		t.Fatalf("counters: %d accesses %d misses", c.Accesses(), c.Misses())
	}
}

func TestCacheNoAllocate(t *testing.T) {
	c := smallCache()
	c.Access(0x100, false)
	if c.Contains(0x100) {
		t.Fatal("no-allocate access installed the line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines mapping to the same set (set stride = 8 sets * 64B = 512B).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, true)
	c.Access(b, true)
	c.Access(a, true) // a is now MRU
	c.Access(d, true) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Contains(d) {
		t.Fatal("newly installed line missing")
	}
}

func TestCacheMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Fatal("fresh cache miss rate should be 0")
	}
	c.Access(0, true)
	c.Access(0, true)
	if mr := c.MissRate(); mr != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", mr)
	}
}

func TestCacheLine(t *testing.T) {
	c := smallCache()
	if c.Line(0) != c.Line(63) {
		t.Fatal("same-line addresses differ")
	}
	if c.Line(0) == c.Line(64) {
		t.Fatal("different lines collide")
	}
	if c.LineBytes() != 64 {
		t.Fatalf("line bytes = %d", c.LineBytes())
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-power-of-two sets")
		}
	}()
	NewCache(config.CacheConfig{SizeBytes: 1000, Assoc: 2, LineBytes: 64})
}

func TestMSHRCoalesceAndFull(t *testing.T) {
	m := newMSHRFile(2)
	if m.full(0) {
		t.Fatal("empty MSHR file reported full")
	}
	m.add(10, 100)
	m.add(11, 120)
	if !m.full(0) {
		t.Fatal("2-entry file with 2 misses should be full")
	}
	if ready, ok := m.lookup(10); !ok || ready != 100 {
		t.Fatalf("lookup(10) = %v %v", ready, ok)
	}
	if _, ok := m.lookup(99); ok {
		t.Fatal("lookup found absent line")
	}
	// At cycle 100 the first fill completed; one slot frees.
	if m.full(100) {
		t.Fatal("expired entry not pruned")
	}
	if m.occupancy(100) != 1 {
		t.Fatalf("occupancy = %d, want 1", m.occupancy(100))
	}
	if m.full(200) {
		t.Fatal("all entries should have expired")
	}
	if m.occupancy(200) != 0 {
		t.Fatal("occupancy should be 0")
	}
}
