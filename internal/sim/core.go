// Package sim is a trace-driven, cycle-level out-of-order processor
// timing simulator in the spirit of RSIM (the paper's timing simulator).
//
// The model: an 8-wide front end with a bimodal-agree branch predictor
// and return address stack feeding, after a short pipeline delay, a
// unified instruction window (issue queue + reorder buffer, Section 6.1)
// with a separate physical register file. Instructions issue oldest-first
// to per-class functional units (integer ALUs, FPUs, address-generation
// units), loads and stores flow through a memory queue and a two-ported
// L1D with a finite MSHR file, misses go to an off-chip L2 and then main
// memory with fixed wall-clock latencies (so their cycle cost scales with
// the clock under DVS), and completed instructions retire in order.
//
// Because the simulator is trace-driven, branch mispredictions are
// modelled as fetch stalls from the mispredicted branch until one cycle
// after it resolves (plus the front-end refill depth) rather than by
// executing wrong-path instructions.
//
// Alongside timing, the simulator counts per-structure events and
// converts them into the activity factors that drive the power model and
// RAMP's electromigration model.
package sim

import (
	"fmt"
	"math"

	"ramp/internal/config"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
	"ramp/internal/trace"
)

const farFuture = math.MaxUint64 / 2

// Result summarises one simulated run (or epoch).
type Result struct {
	Cycles  uint64
	Retired uint64

	// TimeSec is Cycles at the configured clock.
	TimeSec float64

	// IPC is Retired/Cycles.
	IPC float64

	// Activity factors per structure, in [0,1]: the utilisation of each
	// structure's per-cycle capacity. These drive dynamic power and the
	// electromigration model.
	Activity [floorplan.NumStructures]float64

	// Diagnostics.
	BranchAccuracy  float64
	L1DMissRate     float64
	L1IMissRate     float64
	L2MissRate      float64
	WindowOccupancy float64 // mean occupied window entries
	FPShare         float64 // fraction of retired instructions that are FP
}

// BIPS returns billions of instructions per second for the run.
func (r Result) BIPS() float64 {
	if r.TimeSec == 0 {
		return 0
	}
	return float64(r.Retired) / r.TimeSec / 1e9
}

type entry struct {
	instr  trace.Instr
	seq    uint64
	dep1   uint64 // absolute producer seq; 0 = none
	dep2   uint64
	finish uint64 // cycle the result is available; farFuture until issued
	issued bool
}

type fetchedInstr struct {
	instr   trace.Instr
	seq     uint64
	availAt uint64 // cycle the instruction reaches rename
}

// counters collects raw per-structure event counts for one epoch.
type counters struct {
	fetched       uint64
	bpredAccesses uint64
	winDispatch   uint64
	winIssue      uint64
	winRetire     uint64
	intRFReads    uint64
	intRFWrites   uint64
	fpRFReads     uint64
	fpRFWrites    uint64
	intOps        uint64
	aguOps        uint64
	fpOps         uint64
	lsqOps        uint64
	l1iAccesses   uint64
	l1dAccesses   uint64
	occupancySum  uint64
	fpRetired     uint64

	branchLookups0    uint64
	branchWrong0      uint64
	l1dAcc0, l1dMiss0 uint64
	l1iAcc0, l1iMiss0 uint64
	l2Acc0, l2Miss0   uint64
}

// Source produces the dynamic instruction stream a Core executes.
// *trace.Generator is the production implementation.
type Source interface {
	Next(*trace.Instr)
}

// Core is one simulated processor executing one application trace.
type Core struct {
	cfg config.Proc
	gen Source

	cycle uint64
	seq   uint64 // next sequence number to assign at fetch (first is 1)

	// Fetch queue: a fixed-capacity ring buffer (capacity fetchQCap).
	// Fetched instructions are generated directly into the tail slot, so
	// the fetch loop performs no allocation and no copying beyond the
	// generator's own write.
	fq           []fetchedInstr
	fqHead       int
	fqLen        int
	fetchQCap    int
	fetchBlocked uint64 // seq of unresolved mispredicted branch; 0 = none
	fetchStallTo uint64 // cycle until which fetch is stalled (I-miss / redirect)
	lastLine     uint64 // last I-cache line touched (+1; 0 = none)

	bpred *BPred

	// Window.
	win      []entry
	winHead  int
	winCount int
	memQUsed int

	// Completion-time history, indexed by seq. Large enough to cover any
	// dependency distance plus the window.
	hist [2048]uint64

	// Functional-unit non-pipelined busy tracking.
	intBusyUntil []uint64
	fpBusyUntil  []uint64

	// Memory hierarchy.
	l1d, l1i, l2 *Cache
	dMSHR        *mshrFile
	iMSHR        *mshrFile
	l2Cycles     uint64
	memCycles    uint64

	c counters

	retiredTotal uint64

	// Observability counters (nil = uncounted; see Instrument).
	obsRetired *obs.Counter
	obsCycles  *obs.Counter
}

// Instrument attaches pipeline-wide counters that Run feeds after every
// epoch: instructions retired and cycles simulated. Nil counters (the
// default) cost a nil-check no-op per epoch, nothing per cycle.
func (c *Core) Instrument(retired, cycles *obs.Counter) {
	c.obsRetired = retired
	c.obsCycles = cycles
}

// New builds a core for cfg running the given source's trace.
func New(cfg config.Proc, gen Source) (*Core, error) {
	c := &Core{}
	if err := c.Reset(cfg, gen); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset reinitialises the core in place for a (possibly different)
// configuration and trace source, producing a core whose subsequent
// behaviour is bit-identical to a freshly constructed one. Buffers are
// reused whenever their shape is unchanged — the instruction window,
// functional-unit trackers, fetch ring, caches, MSHR files and branch
// predictor all keep their allocations across evaluations of different
// applications and configurations — so pooled cores make steady-state
// evaluation allocation-free. Observability counters attached with
// Instrument survive a Reset (re-attach to change them).
func (c *Core) Reset(cfg config.Proc, gen Source) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	old := c.cfg
	c.cfg = cfg
	c.gen = gen

	c.cycle = 0
	c.seq = 0
	c.fetchBlocked = 0
	c.fetchStallTo = 0
	c.lastLine = 0
	c.winHead = 0
	c.winCount = 0
	c.memQUsed = 0
	c.retiredTotal = 0
	c.c = counters{}
	clear(c.hist[:]) // everything "already finished" before the run

	c.fetchQCap = cfg.FetchWidth * (cfg.FrontLatency + 2)
	if cap(c.fq) < c.fetchQCap {
		c.fq = make([]fetchedInstr, c.fetchQCap)
	}
	c.fq = c.fq[:c.fetchQCap]
	c.fqHead, c.fqLen = 0, 0

	if c.bpred == nil || old.BPredBytes != cfg.BPredBytes || old.RASEntries != cfg.RASEntries {
		c.bpred = NewBPred(cfg.BPredBytes, cfg.RASEntries)
	} else {
		c.bpred.Reset()
	}
	if len(c.win) != cfg.WindowSize {
		c.win = make([]entry, cfg.WindowSize)
	}
	if len(c.intBusyUntil) != cfg.IntALUs {
		c.intBusyUntil = make([]uint64, cfg.IntALUs)
	} else {
		clear(c.intBusyUntil)
	}
	if len(c.fpBusyUntil) != cfg.FPUs {
		c.fpBusyUntil = make([]uint64, cfg.FPUs)
	} else {
		clear(c.fpBusyUntil)
	}
	c.l1d = resetCache(c.l1d, old.L1D, cfg.L1D)
	c.l1i = resetCache(c.l1i, old.L1I, cfg.L1I)
	c.l2 = resetCache(c.l2, old.L2, cfg.L2)
	if c.dMSHR == nil {
		c.dMSHR = newMSHRFile(cfg.L1D.MSHRs)
	} else {
		c.dMSHR.reset(cfg.L1D.MSHRs)
	}
	if c.iMSHR == nil {
		c.iMSHR = newMSHRFile(cfg.L1I.MSHRs)
	} else {
		c.iMSHR.reset(cfg.L1I.MSHRs)
	}
	c.l2Cycles = uint64(math.Ceil(cfg.L2.HitLatencySec * cfg.FreqHz))
	c.memCycles = uint64(math.Ceil(cfg.MemLatencySec * cfg.FreqHz))
	return nil
}

// resetCache reuses c when the geometry is unchanged, else builds a
// fresh cache.
func resetCache(c *Cache, old, next config.CacheConfig) *Cache {
	if c == nil || old != next {
		return NewCache(next)
	}
	c.Reset()
	return c
}

// MustNew is New, panicking on config errors.
func MustNew(cfg config.Proc, gen Source) *Core {
	c, err := New(cfg, gen)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *Core) Config() config.Proc { return c.cfg }

// SetOperatingPoint changes the clock and supply voltage between epochs
// (dynamic voltage and frequency scaling). Microarchitectural and cache
// state is preserved — only the cycle cost of the fixed-wall-clock
// off-chip latencies changes. Latencies of requests already in flight
// keep their old cycle counts, which mirrors a real DVS transition
// closely enough at epoch granularity.
func (c *Core) SetOperatingPoint(freqHz, vddV float64) {
	c.cfg.FreqHz = freqHz
	c.cfg.VddV = vddV
	c.l2Cycles = uint64(math.Ceil(c.cfg.L2.HitLatencySec * freqHz))
	c.memCycles = uint64(math.Ceil(c.cfg.MemLatencySec * freqHz))
}

// Retired returns the total instructions retired since construction.
func (c *Core) Retired() uint64 { return c.retiredTotal }

// Run simulates until at least n more instructions retire and returns
// the stats for that span (whole cycles complete, so the span may
// overshoot n by up to RetireWidth-1 instructions). Microarchitectural
// and cache state carries over between calls, so consecutive calls
// behave like consecutive epochs of one long run.
//
//ramp:hot
func (c *Core) Run(n uint64) Result {
	if n == 0 {
		return Result{}
	}
	startCycle := c.cycle
	target := c.retiredTotal + n
	c.snapshotDiagBases()

	maxCycles := c.cycle + n*200 + 1_000_000 // deadlock guard
	for c.retiredTotal < target {
		c.step()
		if c.cycle > maxCycles {
			panic(fmt.Sprintf("sim: no forward progress after %d cycles (retired %d of %d)",
				c.cycle-startCycle, c.retiredTotal, target))
		}
	}
	res := c.makeResult(startCycle)
	c.obsRetired.Add(int64(res.Retired))
	c.obsCycles.Add(int64(res.Cycles))
	return res
}

// step advances the core by one cycle.
//
//ramp:hot
func (c *Core) step() {
	c.retire()
	c.issue()
	c.dispatch()
	c.fetch()
	c.c.occupancySum += uint64(c.winCount)
	c.cycle++
}

// ---- Retire ----

//ramp:hot
func (c *Core) retire() {
	for k := 0; k < c.cfg.RetireWidth && c.winCount > 0; k++ {
		e := &c.win[c.winHead]
		if !e.issued || e.finish > c.cycle {
			return
		}
		if e.instr.Op.IsMem() {
			c.memQUsed--
		}
		if e.instr.Op.IsFP() {
			c.c.fpRetired++
		}
		c.c.winRetire++
		c.winHead = (c.winHead + 1) % len(c.win)
		c.winCount--
		c.retiredTotal++
	}
}

// ---- Issue ----

//ramp:hot
func (c *Core) issue() {
	intSlots := c.freeUnits(c.intBusyUntil)
	fpSlots := c.freeUnits(c.fpBusyUntil)
	aguSlots := c.cfg.AGUs
	dPorts := c.cfg.L1D.Ports

	for k := 0; k < c.winCount; k++ {
		if intSlots == 0 && fpSlots == 0 && (aguSlots == 0 || dPorts == 0) {
			return
		}
		idx := (c.winHead + k) % len(c.win)
		e := &c.win[idx]
		if e.issued {
			continue
		}
		if !c.depDone(e.dep1) || !c.depDone(e.dep2) {
			continue
		}
		op := e.instr.Op
		switch {
		case op == trace.Load || op == trace.Store:
			if aguSlots == 0 || dPorts == 0 {
				continue
			}
			lat, ok := c.memLatency(e)
			if !ok {
				continue // MSHRs full; retry next cycle
			}
			aguSlots--
			dPorts--
			c.c.aguOps++
			c.c.lsqOps++
			c.c.l1dAccesses++
			c.c.intRFReads += 2
			c.complete(e, c.cycle+lat)
			if op == trace.Load {
				c.c.intRFWrites++
			}
		case op.IsFP():
			if fpSlots == 0 {
				continue
			}
			fpSlots--
			c.c.fpOps++
			c.c.fpRFReads += 2
			c.c.fpRFWrites++
			lat := uint64(c.cfg.FPLat)
			if op == trace.FPDiv {
				lat = uint64(c.cfg.FPDivLat)
				c.occupyUnit(c.fpBusyUntil, c.cycle+lat)
			}
			c.complete(e, c.cycle+lat)
		default: // integer ALU ops and branches
			if intSlots == 0 {
				continue
			}
			intSlots--
			c.c.intOps++
			c.c.intRFReads += 2
			lat := uint64(c.cfg.IntAddLat)
			switch op {
			case trace.IntMul:
				lat = uint64(c.cfg.IntMulLat)
			case trace.IntDiv:
				lat = uint64(c.cfg.IntDivLat)
				c.occupyUnit(c.intBusyUntil, c.cycle+lat)
			}
			if !op.IsBranch() {
				c.c.intRFWrites++
			}
			c.complete(e, c.cycle+lat)
		}
	}
}

// depDone reports whether the producer with sequence number d (0 = no
// dependence) has its result available this cycle.
func (c *Core) depDone(d uint64) bool {
	if d == 0 {
		return true
	}
	return c.hist[d%uint64(len(c.hist))] <= c.cycle
}

func (c *Core) complete(e *entry, finish uint64) {
	e.issued = true
	e.finish = finish
	c.hist[e.seq%uint64(len(c.hist))] = finish
	c.c.winIssue++
}

func (c *Core) freeUnits(busy []uint64) int {
	n := 0
	for _, b := range busy {
		if b <= c.cycle {
			n++
		}
	}
	return n
}

func (c *Core) occupyUnit(busy []uint64, until uint64) {
	for i, b := range busy {
		if b <= c.cycle {
			busy[i] = until
			return
		}
	}
}

// memLatency returns the completion latency for a memory op, or ok=false
// if it cannot start this cycle (MSHRs exhausted).
func (c *Core) memLatency(e *entry) (uint64, bool) {
	addr := e.instr.Addr
	hitLat := uint64(c.cfg.L1D.HitLatencyCycles)
	if e.instr.Op == trace.Store {
		// Stores drain through a store buffer: they update cache state and
		// complete quickly without holding an MSHR. This keeps them off
		// the critical path, as in the paper's base machine.
		if !c.l1d.Access(addr, true) {
			c.l2.Access(addr, true)
		}
		return hitLat, true
	}
	// Store-to-load forwarding: an older in-flight store to the same
	// 8-byte word satisfies the load at hit latency.
	if c.forwardFromStore(e) {
		c.l1d.Access(addr, true) // still occupies the port and warms the line
		return hitLat, true
	}
	if c.l1d.Contains(addr) {
		c.l1d.Access(addr, true)
		return hitLat, true
	}
	line := c.l1d.Line(addr)
	if ready, ok := c.dMSHR.lookup(line); ok {
		// Coalesce with the outstanding miss.
		c.l1d.Access(addr, true)
		if ready <= c.cycle {
			return hitLat, true
		}
		return ready - c.cycle + hitLat, true
	}
	if c.dMSHR.full(c.cycle) {
		return 0, false // cannot even start the miss; retry next cycle
	}
	c.l1d.Access(addr, true) // records the miss and installs the line
	var missLat uint64
	if c.l2.Access(addr, true) {
		missLat = c.l2Cycles
	} else {
		missLat = c.memCycles
	}
	c.dMSHR.add(line, c.cycle+missLat)
	return missLat + hitLat, true
}

// forwardFromStore scans older window entries for an in-flight store to
// the same 8-byte word.
func (c *Core) forwardFromStore(load *entry) bool {
	word := load.instr.Addr &^ 7
	// Scan backwards from the load towards the window head.
	for k := 0; k < c.winCount; k++ {
		idx := (c.winHead + k) % len(c.win)
		e := &c.win[idx]
		if e.seq >= load.seq {
			break
		}
		if e.instr.Op == trace.Store && e.instr.Addr&^7 == word {
			return true
		}
	}
	return false
}

// ---- Dispatch (rename) ----

//ramp:hot
func (c *Core) dispatch() {
	for k := 0; k < c.cfg.FetchWidth; k++ {
		if c.fqLen == 0 || c.winCount == len(c.win) {
			return
		}
		f := &c.fq[c.fqHead]
		if f.availAt > c.cycle {
			return
		}
		if f.instr.Op.IsMem() && c.memQUsed >= c.cfg.MemQueueSize {
			return
		}
		e := entry{
			instr:  f.instr,
			seq:    f.seq,
			finish: farFuture,
		}
		if d := f.instr.Dep1; d > 0 && uint64(d) < e.seq {
			e.dep1 = e.seq - uint64(d)
		}
		if d := f.instr.Dep2; d > 0 && uint64(d) < e.seq {
			e.dep2 = e.seq - uint64(d)
		}
		c.hist[e.seq%uint64(len(c.hist))] = farFuture
		idx := (c.winHead + c.winCount) % len(c.win)
		c.win[idx] = e
		c.winCount++
		if f.instr.Op.IsMem() {
			c.memQUsed++
			c.c.lsqOps++
		}
		c.c.winDispatch++
		c.fqHead = (c.fqHead + 1) % len(c.fq)
		c.fqLen--
	}
}

// ---- Fetch ----

// fetch generates up to FetchWidth instructions directly into the fetch
// ring's tail slots. Writing through the slot pointer (rather than a
// local trace.Instr passed through the Source interface) keeps the per
// instruction generator handoff off the heap: this loop runs once per
// fetched instruction and performs zero allocations.
//
//ramp:hot
func (c *Core) fetch() {
	if c.cycle < c.fetchStallTo {
		return
	}
	if c.fetchBlocked != 0 {
		fin := c.hist[c.fetchBlocked%uint64(len(c.hist))]
		if fin > c.cycle {
			return
		}
		// Redirect: fetch resumes next cycle.
		c.fetchBlocked = 0
		c.fetchStallTo = c.cycle + 1
		return
	}
	for k := 0; k < c.cfg.FetchWidth; k++ {
		if c.fqLen >= c.fetchQCap {
			return
		}
		slot := &c.fq[(c.fqHead+c.fqLen)%len(c.fq)]
		in := &slot.instr
		c.gen.Next(in)
		c.seq++
		slot.seq = c.seq
		slot.availAt = c.cycle + uint64(c.cfg.FrontLatency)
		// Mark the instruction in flight from fetch onwards, so a
		// mispredicted branch blocks fetch until it actually executes
		// (not until its stale history slot is consulted).
		c.hist[c.seq%uint64(len(c.hist))] = farFuture
		c.c.fetched++

		// I-cache: account one access per new line touched.
		line := c.l1i.Line(in.PC) + 1
		if line != c.lastLine {
			c.lastLine = line
			c.c.l1iAccesses++
			if !c.l1i.Access(in.PC, true) {
				var lat uint64
				il := c.l1i.Line(in.PC)
				if ready, ok := c.iMSHR.lookup(il); ok && ready > c.cycle {
					lat = ready - c.cycle
				} else if c.l2.Access(in.PC, true) {
					lat = c.l2Cycles
				} else {
					lat = c.memCycles
				}
				if !c.iMSHR.full(c.cycle) {
					c.iMSHR.add(il, c.cycle+lat)
				}
				c.fetchStallTo = c.cycle + lat
				// The missing instruction reaches rename only after the fill.
				slot.availAt = c.fetchStallTo + uint64(c.cfg.FrontLatency)
				c.fqLen++
				return
			}
		}

		op := in.Op
		if op.IsBranch() {
			c.c.bpredAccesses++
			correct := true
			switch op {
			case trace.Branch:
				correct = c.bpred.PredictBranch(in.PC, in.Taken)
			case trace.Call:
				c.bpred.Call(in.PC + 4)
			case trace.Ret:
				correct = c.bpred.Ret(in.Target)
			}
			c.fqLen++
			if !correct {
				c.fetchBlocked = c.seq
				return
			}
			if in.Taken {
				// Fetch group ends at a predicted-taken branch.
				return
			}
			continue
		}
		c.fqLen++
	}
}

// ---- Stats ----

func (c *Core) snapshotDiagBases() {
	c.c = counters{
		branchLookups0: c.bpred.Lookups(),
		branchWrong0:   c.bpred.Mispredicts(),
		l1dAcc0:        c.l1d.Accesses(), l1dMiss0: c.l1d.Misses(),
		l1iAcc0: c.l1i.Accesses(), l1iMiss0: c.l1i.Misses(),
		l2Acc0: c.l2.Accesses(), l2Miss0: c.l2.Misses(),
	}
}

func (c *Core) makeResult(startCycle uint64) Result {
	cycles := c.cycle - startCycle
	if cycles == 0 {
		cycles = 1
	}
	fc := float64(cycles)
	cc := &c.c
	retired := cc.winRetire

	var r Result
	r.Cycles = cycles
	r.Retired = retired
	r.TimeSec = fc / c.cfg.FreqHz
	r.IPC = float64(retired) / fc

	iw := float64(c.cfg.IssueWidth())
	act := func(events uint64, perCycle float64) float64 {
		if perCycle <= 0 {
			return 0
		}
		a := float64(events) / (fc * perCycle)
		if a > 1 {
			a = 1
		}
		return a
	}
	r.Activity[floorplan.Fetch] = act(cc.fetched, float64(c.cfg.FetchWidth))
	r.Activity[floorplan.BPred] = act(cc.bpredAccesses, 2)
	r.Activity[floorplan.Window] = act(cc.winDispatch+cc.winIssue+cc.winRetire,
		float64(c.cfg.FetchWidth+c.cfg.RetireWidth)+iw)
	r.Activity[floorplan.IntRF] = act(cc.intRFReads+cc.intRFWrites,
		3*float64(c.cfg.IntALUs+c.cfg.AGUs))
	r.Activity[floorplan.FPRF] = act(cc.fpRFReads+cc.fpRFWrites, 3*float64(c.cfg.FPUs))
	r.Activity[floorplan.IntALU] = act(cc.intOps, float64(c.cfg.IntALUs))
	r.Activity[floorplan.AGU] = act(cc.aguOps, float64(c.cfg.AGUs))
	r.Activity[floorplan.FPU] = act(cc.fpOps, float64(c.cfg.FPUs))
	r.Activity[floorplan.LSQ] = act(cc.lsqOps, 4)
	r.Activity[floorplan.L1I] = act(cc.l1iAccesses, 2)
	r.Activity[floorplan.L1D] = act(cc.l1dAccesses, float64(c.cfg.L1D.Ports))

	lookups := c.bpred.Lookups() - cc.branchLookups0
	if lookups > 0 {
		r.BranchAccuracy = 1 - float64(c.bpred.Mispredicts()-cc.branchWrong0)/float64(lookups)
	} else {
		r.BranchAccuracy = 1
	}
	r.L1DMissRate = missRate(c.l1d.Accesses()-cc.l1dAcc0, c.l1d.Misses()-cc.l1dMiss0)
	r.L1IMissRate = missRate(c.l1i.Accesses()-cc.l1iAcc0, c.l1i.Misses()-cc.l1iMiss0)
	r.L2MissRate = missRate(c.l2.Accesses()-cc.l2Acc0, c.l2.Misses()-cc.l2Miss0)
	r.WindowOccupancy = float64(cc.occupancySum) / fc
	if retired > 0 {
		r.FPShare = float64(cc.fpRetired) / float64(retired)
	}
	return r
}

func missRate(acc, miss uint64) float64 {
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}
