package sim

import (
	"testing"

	"ramp/internal/config"
	"ramp/internal/floorplan"
	"ramp/internal/trace"
)

// scriptSource is a deterministic Source for microarchitecture tests: it
// cycles through a fixed pattern of instructions, assigning sequential
// PCs within a small code footprint.
type scriptSource struct {
	pattern []trace.Instr
	idx     int
	pc      uint64
}

func newScript(pattern []trace.Instr) *scriptSource {
	return &scriptSource{pattern: pattern, pc: 1 << 20}
}

func (s *scriptSource) Next(out *trace.Instr) {
	*out = s.pattern[s.idx%len(s.pattern)]
	s.idx++
	out.PC = s.pc
	if out.Taken {
		// Loop within a 4 KB footprint so the I-cache stays warm.
		out.Target = 1 << 20
		s.pc = out.Target
	} else {
		s.pc += 4
		if s.pc >= 1<<20+4096 {
			s.pc = 1 << 20
		}
	}
}

func run(t *testing.T, pattern []trace.Instr, n uint64) Result {
	t.Helper()
	c := MustNew(config.Base(), newScript(pattern))
	c.Run(n / 4) // warmup
	return c.Run(n)
}

func TestIndependentIntOpsBoundByALUs(t *testing.T) {
	// Independent single-cycle integer ops: throughput should approach
	// the 6 integer ALUs (fetch is 8-wide, so ALUs are the bottleneck).
	r := run(t, []trace.Instr{{Op: trace.IntAlu}}, 60_000)
	if r.IPC < 5.3 || r.IPC > 6.01 {
		t.Fatalf("independent int IPC = %v, want ~6", r.IPC)
	}
}

func TestSerialChainBoundByLatency(t *testing.T) {
	// Every op depends on the previous one: IPC ~ 1 (1-cycle latency).
	r := run(t, []trace.Instr{{Op: trace.IntAlu, Dep1: 1}}, 30_000)
	if r.IPC < 0.9 || r.IPC > 1.1 {
		t.Fatalf("serial chain IPC = %v, want ~1", r.IPC)
	}
}

func TestSerialMulChain(t *testing.T) {
	// Dependent multiplies: IPC ~ 1/7.
	r := run(t, []trace.Instr{{Op: trace.IntMul, Dep1: 1}}, 10_000)
	want := 1.0 / 7.0
	if r.IPC < want*0.85 || r.IPC > want*1.15 {
		t.Fatalf("mul chain IPC = %v, want ~%v", r.IPC, want)
	}
}

func TestFPDivNotPipelined(t *testing.T) {
	// Independent FP divides: 4 FPUs, each blocked 12 cycles per divide,
	// so throughput caps at 4/12 per cycle.
	r := run(t, []trace.Instr{{Op: trace.FPDiv}}, 10_000)
	want := 4.0 / 12.0
	if r.IPC > want*1.15 {
		t.Fatalf("FP div IPC = %v, exceeds non-pipelined cap %v", r.IPC, want)
	}
	if r.IPC < want*0.8 {
		t.Fatalf("FP div IPC = %v, far below cap %v", r.IPC, want)
	}
}

func TestSerialLoadChainHitLatency(t *testing.T) {
	// Dependent loads hitting L1D: IPC ~ 1/2 (2-cycle hits).
	r := run(t, []trace.Instr{{Op: trace.Load, Dep1: 1, Addr: 1 << 30}}, 20_000)
	want := 0.5
	if r.IPC < want*0.85 || r.IPC > want*1.15 {
		t.Fatalf("load chain IPC = %v, want ~%v", r.IPC, want)
	}
	if r.L1DMissRate > 0.01 {
		t.Fatalf("repeated-address loads missing: %v", r.L1DMissRate)
	}
}

// stridedMissSource emits loads marching through memory so that every
// load touches a new line (guaranteed miss).
type stridedMissSource struct {
	addr uint64
	dep  uint16
	pc   uint64
}

func (s *stridedMissSource) Next(out *trace.Instr) {
	s.addr += 4096 // new line and new L2 set every time
	s.pc += 4
	if s.pc >= 4096 {
		s.pc = 0
	}
	*out = trace.Instr{Op: trace.Load, Addr: s.addr, Dep1: s.dep, PC: 1<<21 + s.pc}
}

func TestSerialMissChainSeesMemoryLatency(t *testing.T) {
	c := MustNew(config.Base(), &stridedMissSource{dep: 1})
	r := c.Run(2_000)
	// Dependent always-miss loads: ~104 cycles each (102 memory + 2 L1).
	cpi := 1 / r.IPC
	if cpi < 95 || cpi > 120 {
		t.Fatalf("dependent miss chain CPI = %v, want ~104", cpi)
	}
}

func TestIndependentMissesOverlapViaMSHRs(t *testing.T) {
	c := MustNew(config.Base(), &stridedMissSource{})
	r := c.Run(5_000)
	// Independent misses: limited by 12 MSHRs over ~102 cycles, far
	// better than the serial chain but well below 1 IPC.
	if r.IPC < 0.08 {
		t.Fatalf("MSHR overlap missing: IPC = %v", r.IPC)
	}
	maxIPC := 12.0 / 102.0 * 1.3
	if r.IPC > maxIPC {
		t.Fatalf("IPC %v exceeds MSHR bandwidth cap %v", r.IPC, maxIPC)
	}
}

func TestStoreForwardingHidesMiss(t *testing.T) {
	// A store to a far (missing) address immediately followed by a
	// dependent-free load of the same address: forwarding should keep
	// throughput near hit latency despite the cold lines.
	fwd := []trace.Instr{
		{Op: trace.Store, Addr: 3 << 30},
		{Op: trace.Load, Addr: 3 << 30},
		{Op: trace.IntAlu}, {Op: trace.IntAlu},
	}
	r := run(t, fwd, 20_000)
	if r.IPC < 2.0 {
		t.Fatalf("forwarded loads too slow: IPC = %v", r.IPC)
	}
}

// branchSource emits blocks of ALU work ended by a single static branch
// whose outcome either stays fixed or alternates each execution.
type branchSource struct {
	alternate bool
	taken     bool
	slot      int
}

func (s *branchSource) Next(out *trace.Instr) {
	base := uint64(1 << 22)
	if s.slot < 3 {
		*out = trace.Instr{Op: trace.IntAlu, PC: base + uint64(s.slot)*4}
		s.slot++
		return
	}
	s.slot = 0
	taken := true
	if s.alternate {
		taken = s.taken
		s.taken = !s.taken
	}
	*out = trace.Instr{Op: trace.Branch, PC: base + 12, Taken: taken, Target: base}
}

func TestMispredictionCostsThroughput(t *testing.T) {
	runSrc := func(alt bool) Result {
		c := MustNew(config.Base(), &branchSource{alternate: alt})
		c.Run(10_000)
		return c.Run(40_000)
	}
	rs := runSrc(false) // one static branch, always taken
	ra := runSrc(true)  // same static branch, alternating outcome
	if rs.BranchAccuracy < 0.99 {
		t.Fatalf("steady branch should predict perfectly: %v", rs.BranchAccuracy)
	}
	if ra.BranchAccuracy > 0.75 {
		t.Fatalf("alternating branch should confuse bimodal: %v", ra.BranchAccuracy)
	}
	if ra.IPC > rs.IPC*0.8 {
		t.Fatalf("mispredictions too cheap: %v vs %v", ra.IPC, rs.IPC)
	}
}

func TestActivitiesInRange(t *testing.T) {
	g := trace.MustNewGenerator(trace.Bzip2(), 1)
	c := MustNew(config.Base(), g)
	r := c.Run(50_000)
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		a := r.Activity[s]
		if a < 0 || a > 1 {
			t.Errorf("activity[%v] = %v out of range", s, a)
		}
	}
	if r.Activity[floorplan.IntALU] <= 0 || r.Activity[floorplan.L1D] <= 0 {
		t.Error("expected non-zero integer and cache activity")
	}
}

func TestIntOnlyWorkloadHasNoFPActivity(t *testing.T) {
	r := run(t, []trace.Instr{{Op: trace.IntAlu}}, 10_000)
	if r.Activity[floorplan.FPU] != 0 || r.Activity[floorplan.FPRF] != 0 {
		t.Fatalf("int-only run has FP activity: %v %v",
			r.Activity[floorplan.FPU], r.Activity[floorplan.FPRF])
	}
	if r.FPShare != 0 {
		t.Fatalf("FP share = %v", r.FPShare)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		g := trace.MustNewGenerator(trace.Gzip(), 42)
		c := MustNew(config.Base(), g)
		c.Run(20_000)
		return c.Run(50_000)
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestRunAccumulates(t *testing.T) {
	g := trace.MustNewGenerator(trace.Twolf(), 1)
	c := MustNew(config.Base(), g)
	r1 := c.Run(10_000)
	r2 := c.Run(10_000)
	// Run completes whole cycles, so it may overshoot by up to one
	// retire group per call.
	slack := uint64(config.Base().RetireWidth - 1)
	if c.Retired() < 20_000 || c.Retired() > 20_000+2*slack {
		t.Fatalf("retired = %d", c.Retired())
	}
	if r1.Retired < 10_000 || r1.Retired > 10_000+slack ||
		r2.Retired < 10_000 || r2.Retired > 10_000+slack {
		t.Fatalf("epoch retire counts: %d %d", r1.Retired, r2.Retired)
	}
	if r1.Cycles == 0 || r2.Cycles == 0 {
		t.Fatal("zero cycle epochs")
	}
}

func TestWindowOccupancyBounded(t *testing.T) {
	g := trace.MustNewGenerator(trace.Art(), 1)
	cfg := config.Base()
	c := MustNew(cfg, g)
	r := c.Run(30_000)
	if r.WindowOccupancy > float64(cfg.WindowSize) {
		t.Fatalf("occupancy %v exceeds window %d", r.WindowOccupancy, cfg.WindowSize)
	}
	if r.WindowOccupancy <= 0 {
		t.Fatal("zero occupancy")
	}
}

func TestSmallerWindowNeverFaster(t *testing.T) {
	ipc := func(w int) float64 {
		g := trace.MustNewGenerator(trace.MPGdec(), 1)
		cfg := config.Base()
		cfg.WindowSize = w
		c := MustNew(cfg, g)
		c.Run(50_000)
		return c.Run(100_000).IPC
	}
	big, small := ipc(128), ipc(16)
	if small > big*1.02 { // 2% tolerance for path noise
		t.Fatalf("16-entry window (%v) beat 128-entry (%v)", small, big)
	}
	if small > big*0.9 {
		t.Fatalf("window scaling too weak: %v vs %v", small, big)
	}
}

func TestFrequencyScalingHurtsIPC(t *testing.T) {
	// Memory latency is wall-clock, so higher clocks see more cycles of
	// memory latency and IPC must drop for a memory-bound app.
	ipc := func(f float64) float64 {
		g := trace.MustNewGenerator(trace.Art(), 1)
		c := MustNew(config.Base().WithOperatingPoint(f), g)
		c.Run(50_000)
		return c.Run(100_000).IPC
	}
	slow, fast := ipc(2.5e9), ipc(5e9)
	if fast >= slow {
		t.Fatalf("IPC did not drop with frequency: %v @2.5GHz vs %v @5GHz", slow, fast)
	}
}

func TestTimeSecUsesFrequency(t *testing.T) {
	g := trace.MustNewGenerator(trace.Gzip(), 1)
	c := MustNew(config.Base().WithOperatingPoint(2.5e9), g)
	r := c.Run(10_000)
	want := float64(r.Cycles) / 2.5e9
	if r.TimeSec != want {
		t.Fatalf("TimeSec = %v, want %v", r.TimeSec, want)
	}
	if r.BIPS() <= 0 {
		t.Fatal("BIPS should be positive")
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := config.Base()
	cfg.WindowSize = 0
	if _, err := New(cfg, newScript([]trace.Instr{{Op: trace.IntAlu}})); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestICacheFootprintMatters(t *testing.T) {
	// Identical workloads except for static code size: a footprint far
	// beyond the 32 KB L1I must fetch-stall and lose throughput.
	mk := func(codeBytes uint64) float64 {
		p := trace.Profile{
			Name: "icache", Class: "t", PhaseLen: 100_000,
			Phases: []trace.Phase{{
				Name: "p", Weight: 1,
				Mix:      trace.Mix{IntAlu: 0.85, Load: 0.05, Store: 0.02, Branch: 0.08},
				DepGeomP: 0.3, NoDepFrac: 0.5,
				CodeBytes: codeBytes,
				Streams: []trace.Stream{
					{Kind: trace.Strided, WorkingSet: 4 << 10, StrideBytes: 8, Weight: 1},
				},
				PredictableFrac: 0.95, CallFrac: 0.05,
			}},
		}
		g := trace.MustNewGenerator(p, 1)
		c := MustNew(config.Base(), g)
		c.Run(50_000)
		return c.Run(100_000).IPC
	}
	smallCode, bigCode := mk(8<<10), mk(512<<10)
	if bigCode >= smallCode*0.95 {
		t.Fatalf("I-cache pressure had no effect: %v vs %v", smallCode, bigCode)
	}
}
