package sim

// BPred is the branch predictor of Table 1: a 2 KB bimodal (agree-style)
// predictor of 2-bit saturating counters indexed by PC, plus a 32-entry
// return address stack. Prediction and update both happen at fetch, which
// is the usual trace-driven simplification for a bimodal table.
type BPred struct {
	counters []uint8
	mask     uint64

	ras    []uint64
	rasTop int // number of valid entries

	lookups     uint64
	mispredicts uint64
}

// NewBPred builds a predictor with the given table storage (bytes; four
// 2-bit counters per byte) and RAS depth.
func NewBPred(tableBytes, rasEntries int) *BPred {
	n := tableBytes * 4 // 2-bit counters
	if n <= 0 {
		n = 4
	}
	// Round down to a power of two for cheap indexing.
	for n&(n-1) != 0 {
		n &= n - 1
	}
	return &BPred{
		counters: make([]uint8, n),
		mask:     uint64(n - 1),
		ras:      make([]uint64, rasEntries),
	}
}

// Reset clears the counter table, the RAS and the accuracy counters,
// restoring the predictor to its just-constructed state without
// reallocating. RAS entries above rasTop are never consulted, so only
// the top needs resetting for bit-identical behaviour.
func (b *BPred) Reset() {
	clear(b.counters)
	b.rasTop = 0
	b.lookups = 0
	b.mispredicts = 0
}

// PredictBranch predicts the direction of a conditional branch at pc,
// updates the table with the actual outcome, and reports whether the
// prediction was correct.
func (b *BPred) PredictBranch(pc uint64, taken bool) bool {
	b.lookups++
	idx := (pc >> 2) & b.mask
	c := b.counters[idx]
	pred := c >= 2
	if taken && c < 3 {
		b.counters[idx] = c + 1
	} else if !taken && c > 0 {
		b.counters[idx] = c - 1
	}
	if pred != taken {
		b.mispredicts++
		return false
	}
	return true
}

// Call records a call's return address on the RAS. A full RAS wraps,
// overwriting the oldest entry (which later manifests as a return
// misprediction).
func (b *BPred) Call(returnPC uint64) {
	b.lookups++
	if b.rasTop == len(b.ras) {
		copy(b.ras, b.ras[1:])
		b.rasTop--
	}
	b.ras[b.rasTop] = returnPC
	b.rasTop++
}

// Ret pops the RAS and reports whether the predicted return address
// matches the actual target.
func (b *BPred) Ret(target uint64) bool {
	b.lookups++
	if b.rasTop == 0 {
		b.mispredicts++
		return false
	}
	b.rasTop--
	if b.ras[b.rasTop] != target {
		b.mispredicts++
		return false
	}
	return true
}

// Flush clears the RAS (e.g. on a pipeline flush); the bimodal table is
// history and survives.
func (b *BPred) Flush() { b.rasTop = 0 }

// Lookups returns the number of predictor accesses.
func (b *BPred) Lookups() uint64 { return b.lookups }

// Mispredicts returns the number of wrong predictions.
func (b *BPred) Mispredicts() uint64 { return b.mispredicts }

// Accuracy returns the fraction of correct predictions (1.0 if no
// lookups yet).
func (b *BPred) Accuracy() float64 {
	if b.lookups == 0 {
		return 1
	}
	return 1 - float64(b.mispredicts)/float64(b.lookups)
}
