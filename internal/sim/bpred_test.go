package sim

import "testing"

func TestBPredLearnsBiasedBranch(t *testing.T) {
	b := NewBPred(2048, 32)
	pc := uint64(0x1000)
	// Train: always taken.
	for i := 0; i < 10; i++ {
		b.PredictBranch(pc, true)
	}
	if !b.PredictBranch(pc, true) {
		t.Fatal("trained always-taken branch mispredicted")
	}
	// Two wrong outcomes flip a 2-bit counter.
	b.PredictBranch(pc, false)
	b.PredictBranch(pc, false)
	if !b.PredictBranch(pc, false) {
		t.Fatal("counter did not retrain to not-taken")
	}
}

func TestBPredSaturatingCounter(t *testing.T) {
	b := NewBPred(2048, 32)
	pc := uint64(0x42 << 2)
	for i := 0; i < 100; i++ {
		b.PredictBranch(pc, true)
	}
	// One not-taken must not flip a saturated counter.
	b.PredictBranch(pc, false)
	if !b.PredictBranch(pc, true) {
		t.Fatal("saturated counter flipped after one opposite outcome")
	}
}

func TestBPredDistinctPCs(t *testing.T) {
	b := NewBPred(2048, 32)
	// Two non-aliasing PCs learn opposite directions.
	a, c := uint64(4), uint64(8)
	for i := 0; i < 4; i++ {
		b.PredictBranch(a, true)
		b.PredictBranch(c, false)
	}
	if !b.PredictBranch(a, true) || !b.PredictBranch(c, false) {
		t.Fatal("independent branches interfere")
	}
}

func TestRASRoundTrip(t *testing.T) {
	b := NewBPred(2048, 4)
	b.Call(100)
	b.Call(200)
	if !b.Ret(200) {
		t.Fatal("RAS top mismatch")
	}
	if !b.Ret(100) {
		t.Fatal("RAS second entry mismatch")
	}
	if b.Ret(300) {
		t.Fatal("empty RAS should mispredict")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	b := NewBPred(2048, 2)
	b.Call(1)
	b.Call(2)
	b.Call(3) // evicts 1
	if !b.Ret(3) || !b.Ret(2) {
		t.Fatal("recent entries should survive overflow")
	}
	if b.Ret(1) {
		t.Fatal("evicted entry should mispredict")
	}
}

func TestRASFlush(t *testing.T) {
	b := NewBPred(2048, 8)
	b.Call(7)
	b.Flush()
	if b.Ret(7) {
		t.Fatal("flushed RAS should mispredict")
	}
}

func TestBPredStats(t *testing.T) {
	b := NewBPred(2048, 4)
	if b.Accuracy() != 1 {
		t.Fatal("fresh predictor accuracy should be 1")
	}
	b.PredictBranch(4, true) // cold counter (weakly not-taken) -> wrong
	b.PredictBranch(4, true) // now weakly taken? counter was 0 -> 1 -> predicts false again
	b.PredictBranch(4, true) // counter 2 -> predicts taken, correct
	if b.Lookups() != 3 {
		t.Fatalf("lookups = %d", b.Lookups())
	}
	if b.Mispredicts() == 0 || b.Mispredicts() >= 3 {
		t.Fatalf("mispredicts = %d", b.Mispredicts())
	}
	if acc := b.Accuracy(); acc <= 0 || acc >= 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestBPredTableSizeRoundsDown(t *testing.T) {
	// 3000 bytes -> 12000 counters -> rounds down to 8192.
	b := NewBPred(3000, 4)
	if len(b.counters) != 8192 {
		t.Fatalf("counters = %d, want 8192", len(b.counters))
	}
	if b.mask != 8191 {
		t.Fatalf("mask = %d", b.mask)
	}
}
