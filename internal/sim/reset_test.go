package sim

import (
	"testing"

	"ramp/internal/config"
	"ramp/internal/trace"
)

// TestResetBitIdenticalAcrossProfiles drives one pooled core through all
// nine workload profiles via Reset and checks every epoch Result against
// a fresh core: reuse must be observationally indistinguishable from
// construction (this is the contract the exp arena relies on).
func TestResetBitIdenticalAcrossProfiles(t *testing.T) {
	reused := MustNew(config.Base(), newScript([]trace.Instr{{Op: trace.IntAlu}}))
	reused.Run(5_000) // dirty every structure before the first Reset
	for _, app := range trace.Apps() {
		fresh := MustNew(config.Base(), trace.MustNewGenerator(app, 7))
		fresh.Run(20_000)
		var want [3]Result
		for i := range want {
			want[i] = fresh.Run(30_000)
		}

		if err := reused.Reset(config.Base(), trace.MustNewGenerator(app, 7)); err != nil {
			t.Fatalf("%s: Reset: %v", app.Name, err)
		}
		reused.Run(20_000)
		for i := range want {
			if got := reused.Run(30_000); got != want[i] {
				t.Fatalf("%s epoch %d: reused core diverged from fresh:\n got %+v\nwant %+v",
					app.Name, i, got, want[i])
			}
		}
	}
}

// TestResetBitIdenticalAcrossConfigs resets one core across every
// microarchitectural configuration of the adaptation space — different
// window sizes, issue widths and cache geometries — and checks each run
// against a fresh core, covering the buffer-resize paths of Reset.
func TestResetBitIdenticalAcrossConfigs(t *testing.T) {
	app := trace.Gzip()
	reused := MustNew(config.Base(), trace.MustNewGenerator(app, 3))
	reused.Run(5_000)
	for _, proc := range config.ArchConfigs() {
		fresh := MustNew(proc, trace.MustNewGenerator(app, 3))
		fresh.Run(10_000)
		want := fresh.Run(20_000)

		if err := reused.Reset(proc, trace.MustNewGenerator(app, 3)); err != nil {
			t.Fatalf("%s: Reset: %v", proc.Name, err)
		}
		reused.Run(10_000)
		if got := reused.Run(20_000); got != want {
			t.Fatalf("%s: reused core diverged from fresh:\n got %+v\nwant %+v",
				proc.Name, got, want)
		}
	}
}

// TestResetRejectsInvalidConfig checks that Reset validates like New and
// leaves no half-reset state behind on error paths callers might retry.
func TestResetRejectsInvalidConfig(t *testing.T) {
	c := MustNew(config.Base(), newScript([]trace.Instr{{Op: trace.IntAlu}}))
	bad := config.Base()
	bad.WindowSize = 0
	if err := c.Reset(bad, newScript([]trace.Instr{{Op: trace.IntAlu}})); err == nil {
		t.Fatal("Reset accepted an invalid config")
	}
}

// TestCoreRunSteadyStateZeroAlloc is the allocation budget for the inner
// simulation loop: once warmed, Run must not allocate at all. This holds
// the line on the fetch-path escape the ring-buffer fetch queue removed.
func TestCoreRunSteadyStateZeroAlloc(t *testing.T) {
	g := trace.MustNewGenerator(trace.Gzip(), 1)
	c := MustNew(config.Base(), g)
	c.Run(50_000) // warm caches, predictor, MSHR backing arrays
	if allocs := testing.AllocsPerRun(5, func() { c.Run(10_000) }); allocs != 0 {
		t.Fatalf("steady-state Run allocated %.0f objects/op, want 0", allocs)
	}
}

// TestCoreResetZeroAlloc is the allocation budget for core reuse: a
// same-shape Reset must reuse every buffer.
func TestCoreResetZeroAlloc(t *testing.T) {
	g := trace.MustNewGenerator(trace.Gzip(), 1)
	c := MustNew(config.Base(), g)
	c.Run(10_000)
	if allocs := testing.AllocsPerRun(10, func() {
		if err := c.Reset(config.Base(), g); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("same-shape Reset allocated %.0f objects/op, want 0", allocs)
	}
}
