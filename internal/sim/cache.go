package sim

import (
	"math/bits"

	"ramp/internal/config"
)

// Cache is a set-associative cache with true-LRU replacement. It is a
// timing-only model: it tracks tags, not data.
type Cache struct {
	tags  []uint64 // sets*assoc entries; tag 0 with valid bit packed separately
	valid []bool
	lru   []uint64 // per-entry access stamps

	assoc     int
	setShift  uint // line-offset bits
	setMask   uint64
	setBits   int
	stamp     uint64
	accesses  uint64
	misses    uint64
	lineBytes uint64
}

// NewCache builds a cache from a config. Sizes must be powers of two.
func NewCache(cfg config.CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("sim: cache set count must be a positive power of two")
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("sim: cache line size must be a power of two")
	}
	n := sets * cfg.Assoc
	return &Cache{
		tags:      make([]uint64, n),
		valid:     make([]bool, n),
		lru:       make([]uint64, n),
		assoc:     cfg.Assoc,
		setShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		setBits:   bits.Len64(uint64(sets - 1)),
		lineBytes: uint64(cfg.LineBytes),
	}
}

// Reset invalidates every line and clears the access counters, restoring
// the cache to its just-constructed state without reallocating. Tags and
// LRU stamps of invalidated entries are left in place: lookups and
// victim selection only consult them for valid entries, so subsequent
// behaviour is bit-identical to a fresh cache.
func (c *Cache) Reset() {
	clear(c.valid)
	c.stamp = 0
	c.accesses = 0
	c.misses = 0
}

// Line returns the line address (address with offset bits stripped).
func (c *Cache) Line(addr uint64) uint64 { return addr >> c.setShift }

// LineBytes returns the cache's line size.
func (c *Cache) LineBytes() uint64 { return c.lineBytes }

// Access looks up addr; on a miss with allocate set it installs the line,
// evicting the set's LRU entry. It reports whether the access hit.
func (c *Cache) Access(addr uint64, allocate bool) bool {
	c.accesses++
	c.stamp++
	line := addr >> c.setShift
	set := int(line&c.setMask) * c.assoc
	tag := line >> c.setBits

	victim := set
	for i := set; i < set+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.lru[i] = c.stamp
			return true
		}
		if !c.valid[i] {
			victim = i
		} else if c.valid[victim] && c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.misses++
	if allocate {
		c.tags[victim] = tag
		c.valid[victim] = true
		c.lru[victim] = c.stamp
	}
	return false
}

// Contains reports whether addr's line is present without touching LRU or
// counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.setShift
	set := int(line&c.setMask) * c.assoc
	tag := line >> c.setBits
	for i := set; i < set+c.assoc; i++ {
		if c.valid[i] && c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Accesses returns the number of lookups performed.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of lookups that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses/accesses (0 if never accessed).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// mshrFile models a bank of miss-status holding registers: outstanding
// line misses with their fill-completion cycles. Misses to a line that is
// already outstanding coalesce onto the existing entry.
type mshrFile struct {
	lines []uint64
	ready []uint64
	max   int
}

func newMSHRFile(n int) *mshrFile {
	return &mshrFile{max: n}
}

// reset empties the file (keeping its backing arrays) and re-sizes it.
func (m *mshrFile) reset(n int) {
	m.lines = m.lines[:0]
	m.ready = m.ready[:0]
	m.max = n
}

// prune drops entries whose fills have completed.
func (m *mshrFile) prune(now uint64) {
	out := 0
	for i, r := range m.ready {
		if r > now {
			m.lines[out] = m.lines[i]
			m.ready[out] = r
			out++
		}
	}
	m.lines = m.lines[:out]
	m.ready = m.ready[:out]
}

// lookup returns the fill-completion cycle for line if it is outstanding.
func (m *mshrFile) lookup(line uint64) (uint64, bool) {
	for i, l := range m.lines {
		if l == line {
			return m.ready[i], true
		}
	}
	return 0, false
}

// full reports whether all MSHRs are occupied at cycle now.
func (m *mshrFile) full(now uint64) bool {
	m.prune(now)
	return len(m.lines) >= m.max
}

// add allocates an MSHR for line, filling at cycle ready.
func (m *mshrFile) add(line, ready uint64) {
	m.lines = append(m.lines, line)
	m.ready = append(m.ready, ready)
}

// occupancy returns the number of live entries at cycle now.
func (m *mshrFile) occupancy(now uint64) int {
	m.prune(now)
	return len(m.lines)
}
