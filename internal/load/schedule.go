// Deterministic arrival schedules and request sampling for the load
// harness. Everything here is a pure function of (seed, profile, mix):
// the same flags produce the same arrival offsets, the same route
// choices and the same request bodies on every run — which is what lets
// scripts/loadcheck.sh byte-compare two plan renders and lets a load
// run be replayed against a changed server.
//
// The PRNG is the same splitmix64 idiom internal/fleet uses (the
// repo's seeddet lint forbids time-seeded math/rand): independent
// salted substreams for arrivals and for body sampling, so adding a
// draw to one never perturbs the other.
package load

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// golden is the splitmix64 stream increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// Substream salts (arbitrary odd constants, distinct from fleet's).
const (
	saltArrivals uint64 = 0x10ad_a11a_1111_0001
	saltSampler  uint64 = 0x10ad_5a3b_1e55_0003
)

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type rng struct{ s uint64 }

func newRNG(seed int64, salt uint64) rng {
	return rng{s: mix64(uint64(seed)*golden ^ salt)}
}

func (r *rng) next() uint64 {
	r.s += golden
	return mix64(r.s)
}

// uniform returns a draw in the open interval (0, 1).
func (r *rng) uniform() float64 {
	return (float64(r.next()>>11) + 0.5) / (1 << 53)
}

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Profile is an arrival-rate shape for the open-loop generator.
//
//	constant:R          R arrivals/s, evenly spaced
//	poisson:R           R arrivals/s, exponential gaps (seeded)
//	step:R1,R2@T        R1 until offset T, R2 afterwards
//	spike:R1,R2@T+D     R1 baseline with a R2 burst during [T, T+D)
type Profile struct {
	Kind string        // "constant", "poisson", "step" or "spike"
	RPS  float64       // base rate (arrivals per second)
	RPS2 float64       // step: post-switch rate; spike: burst rate
	At   time.Duration // step switch / spike start offset
	Dur  time.Duration // spike duration
}

// ParseProfile parses the -profile flag syntax documented on Profile.
func ParseProfile(s string) (Profile, error) {
	kind, rest, found := strings.Cut(s, ":")
	if !found {
		return Profile{}, fmt.Errorf("load: profile %q: want kind:args (e.g. constant:2000)", s)
	}
	p := Profile{Kind: kind}
	fail := func(msg string) (Profile, error) {
		return Profile{}, fmt.Errorf("load: profile %q: %s", s, msg)
	}
	parseRate := func(v string) (float64, error) {
		r, err := strconv.ParseFloat(v, 64)
		if err != nil || r <= 0 || math.IsInf(r, 0) || r > 10e6 {
			return 0, fmt.Errorf("bad rate %q (want 0 < r ≤ 10M/s)", v)
		}
		return r, nil
	}
	switch kind {
	case "constant", "poisson":
		r, err := parseRate(rest)
		if err != nil {
			return fail(err.Error())
		}
		p.RPS = r
	case "step", "spike":
		rates, when, found := strings.Cut(rest, "@")
		if !found {
			return fail("want R1,R2@T (step) or R1,R2@T+D (spike)")
		}
		r1s, r2s, found := strings.Cut(rates, ",")
		if !found {
			return fail("want two comma-separated rates")
		}
		var err error
		if p.RPS, err = parseRate(r1s); err != nil {
			return fail(err.Error())
		}
		if p.RPS2, err = parseRate(r2s); err != nil {
			return fail(err.Error())
		}
		if kind == "spike" {
			at, dur, found := strings.Cut(when, "+")
			if !found {
				return fail("spike wants T+D (start offset + duration)")
			}
			if p.At, err = time.ParseDuration(at); err != nil || p.At < 0 {
				return fail(fmt.Sprintf("bad offset %q", at))
			}
			if p.Dur, err = time.ParseDuration(dur); err != nil || p.Dur <= 0 {
				return fail(fmt.Sprintf("bad duration %q", dur))
			}
		} else {
			if p.At, err = time.ParseDuration(when); err != nil || p.At < 0 {
				return fail(fmt.Sprintf("bad offset %q", when))
			}
		}
	default:
		return fail("unknown kind (want constant, poisson, step or spike)")
	}
	return p, nil
}

// String renders the profile back in flag syntax (plans print it).
func (p Profile) String() string {
	switch p.Kind {
	case "step":
		return fmt.Sprintf("step:%g,%g@%s", p.RPS, p.RPS2, p.At)
	case "spike":
		return fmt.Sprintf("spike:%g,%g@%s+%s", p.RPS, p.RPS2, p.At, p.Dur)
	default:
		return fmt.Sprintf("%s:%g", p.Kind, p.RPS)
	}
}

// rate returns the instantaneous arrival rate at offset t.
func (p Profile) rate(t time.Duration) float64 {
	switch p.Kind {
	case "step":
		if t >= p.At {
			return p.RPS2
		}
	case "spike":
		if t >= p.At && t < p.At+p.Dur {
			return p.RPS2
		}
	}
	return p.RPS
}

// schedule iterates deterministic arrival offsets for a profile.
type schedule struct {
	p Profile
	r rng
	t time.Duration // offset of the previous arrival
}

func newSchedule(p Profile, seed int64) *schedule {
	return &schedule{p: p, r: newRNG(seed, saltArrivals)}
}

// next returns the next arrival offset. Deterministic profiles space
// arrivals exactly 1/rate apart at the instantaneous rate; poisson
// draws exponential gaps from the seeded stream.
func (s *schedule) next() time.Duration {
	rate := s.p.rate(s.t)
	gap := 1 / rate
	if s.p.Kind == "poisson" {
		gap = -math.Log(s.r.uniform()) / rate
	}
	s.t += time.Duration(gap * float64(time.Second))
	return s.t
}

// Routes the harness drives, in mix order.
const (
	RouteEvaluate = "evaluate"
	RouteSweep    = "sweep"
	RouteFleet    = "fleet"
)

// Mix weights the three request routes. Zero-weight routes are never
// sampled.
type Mix struct {
	Evaluate float64
	Sweep    float64
	Fleet    float64
}

// ParseMix parses "evaluate=8,sweep=1,fleet=1" (omitted routes get 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		name, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return Mix{}, fmt.Errorf("load: mix %q: want route=weight pairs", s)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 || math.IsInf(w, 0) {
			return Mix{}, fmt.Errorf("load: mix %q: bad weight %q", s, val)
		}
		switch name {
		case RouteEvaluate:
			m.Evaluate = w
		case RouteSweep:
			m.Sweep = w
		case RouteFleet:
			m.Fleet = w
		default:
			return Mix{}, fmt.Errorf("load: mix %q: unknown route %q", s, name)
		}
	}
	if m.Evaluate+m.Sweep+m.Fleet <= 0 {
		return Mix{}, fmt.Errorf("load: mix %q: total weight must be positive", s)
	}
	return m, nil
}

// String renders the mix back in flag syntax.
func (m Mix) String() string {
	parts := make([]string, 0, 3)
	if m.Evaluate > 0 {
		parts = append(parts, fmt.Sprintf("evaluate=%g", m.Evaluate))
	}
	if m.Sweep > 0 {
		parts = append(parts, fmt.Sprintf("sweep=%g", m.Sweep))
	}
	if m.Fleet > 0 {
		parts = append(parts, fmt.Sprintf("fleet=%g", m.Fleet))
	}
	return strings.Join(parts, ",")
}

// request is one sampled unit of work.
type request struct {
	route string
	app   string
	body  string
}

// The body grids. Every combination normalizes to a distinct exp cache
// key on the server, so a long run settles into a bounded working set
// (9 apps × 5 tquals × 3 operating points for evaluates) — the cache-
// warm steady state a resident reliability service actually serves.
var (
	tqualGrid = []float64{400, 385, 370, 355, 345}
	freqGrid  = []float64{0, 4.5e9, 3.5e9} // 0 keeps the base 4 GHz point
	fleetSeed = []int{1, 2, 3, 4}
)

// corpusApps is the nine-application suite the bodies draw from; the
// load package hard-codes the names (matching internal/trace.Apps) so
// it never imports the simulator — the harness must stay a pure HTTP
// client.
var corpusApps = []string{
	"MPGdec", "MP3dec", "H263enc",
	"bzip2", "gzip", "twolf",
	"art", "equake", "ammp",
}

// sampler draws (route, body) pairs from the seeded sampler stream.
type sampler struct {
	r    rng
	mix  Mix
	apps []string
}

func newSampler(m Mix, seed int64, apps []string) *sampler {
	if len(apps) == 0 {
		apps = corpusApps
	}
	return &sampler{r: newRNG(seed, saltSampler), mix: m, apps: apps}
}

// sample draws the next request. Draw order is fixed (route, app, then
// route-specific knobs) so the stream is stable under mix changes that
// keep a route's weight nonzero.
func (s *sampler) sample() request {
	total := s.mix.Evaluate + s.mix.Sweep + s.mix.Fleet
	u := s.r.uniform() * total
	app := s.apps[s.r.intn(len(s.apps))]
	switch {
	case u < s.mix.Evaluate:
		tq := tqualGrid[s.r.intn(len(tqualGrid))]
		f := freqGrid[s.r.intn(len(freqGrid))]
		body := fmt.Sprintf(`{"app":%q,"tqual_k":%g}`, app, tq)
		if f > 0 {
			body = fmt.Sprintf(`{"app":%q,"freq_hz":%g,"tqual_k":%g}`, app, f, tq)
		}
		return request{route: RouteEvaluate, app: app, body: body}
	case u < s.mix.Evaluate+s.mix.Sweep:
		tq := tqualGrid[s.r.intn(len(tqualGrid))]
		return request{
			route: RouteSweep, app: app,
			body: fmt.Sprintf(`{"app":%q,"adaptation":"DVS","tquals_k":[400,%g]}`, app, tq),
		}
	default:
		seed := fleetSeed[s.r.intn(len(fleetSeed))]
		return request{
			route: RouteFleet, app: app,
			body: fmt.Sprintf(`{"app":%q,"chips":2000,"seed":%d}`, app, seed),
		}
	}
}
