// Report assembly for a load run: per-window NDJSON frames, the final
// summary table, client/server reconciliation and the deterministic
// -plan render that loadcheck.sh byte-compares.
package load

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"ramp/internal/obs"
	"ramp/internal/slo"
)

// WindowFrame is one NDJSON telemetry line: the client-side counter and
// latency deltas for a single window.
type WindowFrame struct {
	Seq     int64   `json:"seq"`
	Seconds float64 `json:"seconds"`

	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Timeout  int64 `json:"timeout"`
	Canceled int64 `json:"canceled"`
	HTTPErr  int64 `json:"http_err"`
	NetErr   int64 `json:"net_err"`
	Dropped  int64 `json:"dropped"`

	RPS   float64 `json:"rps"`
	P50US float64 `json:"p50_us"`
	P95US float64 `json:"p95_us"`
	P99US float64 `json:"p99_us"`
}

func frameFromDelta(d obs.WindowDelta) WindowFrame {
	c := d.Delta.Counters
	f := WindowFrame{
		Seq:     d.Seq,
		Seconds: d.Seconds(),

		Sent:     c[MetricSent],
		OK:       c[MetricOK],
		Shed:     c[MetricShed],
		Timeout:  c[MetricTimeout],
		Canceled: c[MetricCanceled],
		HTTPErr:  c[MetricHTTPErr],
		NetErr:   c[MetricNetErr],
		Dropped:  c[MetricDropped],
	}
	if f.Seconds > 0 {
		f.RPS = float64(f.Sent) / f.Seconds
	}
	if h := d.Delta.Histograms[MetricLatency]; h.Count > 0 {
		f.P50US = h.Quantile(0.50)
		f.P95US = h.Quantile(0.95)
		f.P99US = h.Quantile(0.99)
	}
	return f
}

// LatencyStats summarizes one latency histogram for the report.
type LatencyStats struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

func latencyStats(h obs.HistogramSnapshot) LatencyStats {
	if h.Count == 0 {
		return LatencyStats{}
	}
	return LatencyStats{
		Count:  h.Count,
		MeanUS: float64(h.Sum) / float64(h.Count),
		P50US:  h.Quantile(0.50),
		P95US:  h.Quantile(0.95),
		P99US:  h.Quantile(0.99),
	}
}

// Reconciliation cross-checks the client's view against the server's
// /metrics counters: every request the client believes reached the wire
// (sent − dropped − transport errors) must show up in the server's
// route counters, within tolerance. A mismatch means one side is
// miscounting — exactly the bug a telemetry harness exists to catch.
type Reconciliation struct {
	// Enabled is false when the server's /metrics was unreachable at
	// either end of the run (the check is skipped, not failed).
	Enabled bool `json:"enabled"`

	ClientReached int64 `json:"client_reached"`
	ServerHandled int64 `json:"server_handled"`
	Diff          int64 `json:"diff"`

	TolerancePct float64 `json:"tolerance_pct"`
	Pass         bool    `json:"pass"`
}

// ReconcileTolerancePct is the default allowed divergence. Transport
// races (a client-side timeout whose request the server still served)
// make exact equality too strict for large runs.
const ReconcileTolerancePct = 0.1

// Report is one load run's full result — the document LOAD_<n>.json
// serializes next to the BENCH_<n>.json lineage.
type Report struct {
	Target   string `json:"target"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	Profile  string `json:"profile"`
	Mix      string `json:"mix"`
	Mode     string `json:"mode"` // "open" or "closed"

	WallSeconds float64 `json:"wall_seconds"`
	AchievedRPS float64 `json:"achieved_rps"`

	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Timeout  int64 `json:"timeout"`
	Canceled int64 `json:"canceled"`
	HTTPErr  int64 `json:"http_err"`
	NetErr   int64 `json:"net_err"`
	Dropped  int64 `json:"dropped"`

	Latency      LatencyStats            `json:"latency"`
	LatencyRoute map[string]LatencyStats `json:"latency_by_route"`

	Reconcile Reconciliation `json:"reconcile"`

	Windows []WindowFrame `json:"windows"`

	// SLO holds the objective verdicts when rampload ran with -slo.
	SLO []slo.Result `json:"slo,omitempty"`
}

func (r *Runner) buildReport(wall time.Duration, before, after serverMetrics, reconOK bool) *Report {
	s := r.reg.Snapshot()
	c := s.Counters
	mode := "open"
	if r.cfg.Closed {
		mode = "closed"
	}
	rep := &Report{
		Target:   r.cfg.BaseURL,
		Seed:     r.cfg.Seed,
		Requests: r.cfg.Requests,
		Profile:  r.cfg.Profile.String(),
		Mix:      r.cfg.Mix.String(),
		Mode:     mode,

		WallSeconds: wall.Seconds(),

		Sent:     c[MetricSent],
		OK:       c[MetricOK],
		Shed:     c[MetricShed],
		Timeout:  c[MetricTimeout],
		Canceled: c[MetricCanceled],
		HTTPErr:  c[MetricHTTPErr],
		NetErr:   c[MetricNetErr],
		Dropped:  c[MetricDropped],

		Latency:      latencyStats(s.Histograms[MetricLatency]),
		LatencyRoute: make(map[string]LatencyStats, 3),
	}
	if rep.WallSeconds > 0 {
		rep.AchievedRPS = float64(rep.Sent) / rep.WallSeconds
	}
	for _, route := range []string{RouteEvaluate, RouteSweep, RouteFleet} {
		rep.LatencyRoute[route] = latencyStats(s.Histograms[MetricLatency+"_"+route])
	}

	r.mu.Lock()
	rep.Windows = append([]WindowFrame(nil), r.frames...)
	r.mu.Unlock()

	rec := Reconciliation{Enabled: reconOK, TolerancePct: ReconcileTolerancePct}
	rec.ClientReached = rep.Sent - rep.Dropped - rep.NetErr
	if reconOK {
		for _, route := range []string{RouteEvaluate, RouteSweep, RouteFleet} {
			rec.ServerHandled += after.RequestsTotal[route] - before.RequestsTotal[route]
		}
		rec.Diff = rec.ServerHandled - rec.ClientReached
		slack := int64(float64(rec.ClientReached) * rec.TolerancePct / 100)
		if slack < 1 {
			slack = 1
		}
		rec.Pass = rec.Diff >= -slack && rec.Diff <= slack
	}
	rep.Reconcile = rec
	return rep
}

// Snapshot returns the whole-run metric delta (the registry was fresh
// at Run start) — what the SLO gate scores overall compliance against.
func (r *Runner) Snapshot() obs.Snapshot { return r.reg.Snapshot() }

// Deltas returns the retained window deltas for the SLO burn gate.
func (r *Runner) Deltas() []obs.WindowDelta { return r.win.Deltas() }

// WriteSummary renders the human-readable run summary.
func (rep *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "rampload: %s  profile=%s  mix=%s  seed=%d  mode=%s\n",
		rep.Target, rep.Profile, rep.Mix, rep.Seed, rep.Mode)
	fmt.Fprintf(w, "  wall %.2fs  sent %d (%.1f/s)  windows %d\n",
		rep.WallSeconds, rep.Sent, rep.AchievedRPS, len(rep.Windows))
	fmt.Fprintf(w, "  ok %d  shed(429) %d  timeout(504) %d  canceled(499) %d  http_err %d  net_err %d  dropped %d\n",
		rep.OK, rep.Shed, rep.Timeout, rep.Canceled, rep.HTTPErr, rep.NetErr, rep.Dropped)
	writeLat := func(name string, ls LatencyStats) {
		if ls.Count == 0 {
			return
		}
		fmt.Fprintf(w, "  %-10s count=%-9d mean=%-10.1f p50=%-9g p95=%-9g p99=%g (µs)\n",
			name, ls.Count, ls.MeanUS, ls.P50US, ls.P95US, ls.P99US)
	}
	writeLat("latency", rep.Latency)
	for _, route := range []string{RouteEvaluate, RouteSweep, RouteFleet} {
		writeLat("  "+route, rep.LatencyRoute[route])
	}
	if rep.Reconcile.Enabled {
		verdict := "ok"
		if !rep.Reconcile.Pass {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "  reconcile client_reached=%d server_handled=%d diff=%d (tol %.2f%%) %s\n",
			rep.Reconcile.ClientReached, rep.Reconcile.ServerHandled,
			rep.Reconcile.Diff, rep.Reconcile.TolerancePct, verdict)
	} else {
		fmt.Fprintf(w, "  reconcile skipped (server /metrics unavailable)\n")
	}
	if len(rep.SLO) > 0 {
		fmt.Fprintf(w, "  slo:\n")
		slo.WriteTable(w, rep.SLO)
	}
}

// DefaultObjectives is the built-in SLO set rampload gates on when no
// objectives file is given: tail latency bounded at two seconds, load
// shedding (server 429s plus client-side drops) under 5%, and hard
// errors (transport failures, unexpected statuses, 504s) under 1%.
func DefaultObjectives() []slo.Objective {
	return []slo.Objective{
		{Name: "p99-latency", Hist: MetricLatency, P: 0.99, MaxUS: 2e6},
		{Name: "shed-ratio", Bad: []string{MetricShed, MetricDropped}, Total: MetricSent, MaxRatio: 0.05},
		{Name: "error-ratio", Bad: []string{MetricHTTPErr, MetricNetErr, MetricTimeout}, Total: MetricSent, MaxRatio: 0.01},
	}
}

// planShownWindows caps the per-window arrival listing in plan output.
const planShownWindows = 12

// WritePlan renders the run's deterministic shape — what WOULD be sent —
// without any HTTP: per-route and per-app counts, per-second arrival
// counts and an FNV-1a hash over the entire (offset, route, body)
// stream. Two renders with the same seed/profile/mix/requests are
// byte-identical; loadcheck.sh compares them to pin determinism.
func WritePlan(w io.Writer, seed int64, requests int, p Profile, m Mix) error {
	if requests <= 0 {
		return fmt.Errorf("load: plan requests must be positive (got %d)", requests)
	}
	if m.Evaluate+m.Sweep+m.Fleet <= 0 {
		return fmt.Errorf("load: plan mix must have positive total weight")
	}
	sched := newSchedule(p, seed)
	smp := newSampler(m, seed, nil)
	h := fnv.New64a()
	routeCount := map[string]int{}
	appCount := map[string]int{}
	var winCounts []int
	var last time.Duration
	for i := 0; i < requests; i++ {
		off := sched.next()
		req := smp.sample()
		fmt.Fprintf(h, "%d %s %s\n", off.Nanoseconds(), req.route, req.body)
		routeCount[req.route]++
		appCount[req.app]++
		win := int(off / time.Second)
		for len(winCounts) <= win {
			winCounts = append(winCounts, 0)
		}
		winCounts[win]++
		last = off
	}
	fmt.Fprintf(w, "rampload plan: seed=%d requests=%d profile=%s mix=%s\n",
		seed, requests, p.String(), m.String())
	fmt.Fprintf(w, "  span %.3fs over %d windows\n", last.Seconds(), len(winCounts))
	fmt.Fprintf(w, "  routes:")
	for _, route := range []string{RouteEvaluate, RouteSweep, RouteFleet} {
		fmt.Fprintf(w, " %s=%d", route, routeCount[route])
	}
	fmt.Fprintln(w)
	apps := make([]string, 0, len(appCount))
	for app := range appCount {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	fmt.Fprintf(w, "  apps:")
	for _, app := range apps {
		fmt.Fprintf(w, " %s=%d", app, appCount[app])
	}
	fmt.Fprintln(w)
	shown := len(winCounts)
	if shown > planShownWindows {
		shown = planShownWindows
	}
	fmt.Fprintf(w, "  arrivals/s:")
	for _, n := range winCounts[:shown] {
		fmt.Fprintf(w, " %d", n)
	}
	if shown < len(winCounts) {
		fmt.Fprintf(w, " … (+%d windows)", len(winCounts)-shown)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  stream fnv64a %016x\n", h.Sum64())
	return nil
}
