package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ramp/internal/exp"
	"ramp/internal/serve"
	"ramp/internal/slo"
)

func TestParseProfile(t *testing.T) {
	cases := []struct {
		in   string
		want Profile
	}{
		{"constant:2000", Profile{Kind: "constant", RPS: 2000}},
		{"poisson:50.5", Profile{Kind: "poisson", RPS: 50.5}},
		{"step:100,400@2s", Profile{Kind: "step", RPS: 100, RPS2: 400, At: 2 * time.Second}},
		{"spike:100,5000@1s+500ms", Profile{Kind: "spike", RPS: 100, RPS2: 5000, At: time.Second, Dur: 500 * time.Millisecond}},
	}
	for _, c := range cases {
		got, err := ParseProfile(c.in)
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseProfile(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := ParseProfile(got.String())
		if err != nil || back != got {
			t.Errorf("String round-trip of %q gave %+v (%v)", c.in, back, err)
		}
	}
	for _, bad := range []string{
		"", "constant", "constant:0", "constant:-5", "constant:2e9",
		"warble:9", "step:100@2s", "step:100,200", "spike:100,200@1s",
		"spike:100,200@1s+0s", "step:100,200@-1s",
	} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

func TestScheduleDeterministicSpacing(t *testing.T) {
	// constant:1000 → arrivals exactly 1ms apart.
	s := newSchedule(Profile{Kind: "constant", RPS: 1000}, 42)
	for i := 1; i <= 5; i++ {
		got := s.next()
		want := time.Duration(i) * time.Millisecond
		if got != want {
			t.Fatalf("arrival %d at %s, want %s", i, got, want)
		}
	}

	// Two poisson schedules with one seed agree; a different seed differs.
	a := newSchedule(Profile{Kind: "poisson", RPS: 1000}, 7)
	b := newSchedule(Profile{Kind: "poisson", RPS: 1000}, 7)
	c := newSchedule(Profile{Kind: "poisson", RPS: 1000}, 8)
	var diverged bool
	for i := 0; i < 100; i++ {
		av, bv, cv := a.next(), b.next(), c.next()
		if av != bv {
			t.Fatalf("same-seed poisson diverged at draw %d: %s vs %s", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical poisson schedules")
	}
}

func TestScheduleShapes(t *testing.T) {
	// step:10,1000@1s — sparse first second, dense afterwards.
	s := newSchedule(Profile{Kind: "step", RPS: 10, RPS2: 1000, At: time.Second}, 1)
	var before, after int
	for i := 0; i < 1020; i++ {
		off := s.next()
		if off <= time.Second {
			before++
		} else if off <= 2*time.Second {
			after++
		}
	}
	if before > 11 || after < 900 {
		t.Errorf("step profile: %d arrivals before the step, %d in the second after", before, after)
	}

	// spike:10,1000@1s+1s — dense only inside the burst.
	s = newSchedule(Profile{Kind: "spike", RPS: 10, RPS2: 1000, At: time.Second, Dur: time.Second}, 1)
	counts := map[int]int{}
	for i := 0; i < 1030; i++ {
		counts[int(s.next()/time.Second)]++
	}
	if counts[0] > 11 || counts[1] < 900 || counts[2] > 15 {
		t.Errorf("spike profile window counts: %v", counts)
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("evaluate=8,sweep=1,fleet=1")
	if err != nil || m != (Mix{Evaluate: 8, Sweep: 1, Fleet: 1}) {
		t.Fatalf("ParseMix = %+v, %v", m, err)
	}
	m, err = ParseMix("sweep=2")
	if err != nil || m != (Mix{Sweep: 2}) {
		t.Fatalf("ParseMix single = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "evaluate", "evaluate=x", "bogus=1", "evaluate=0,sweep=0,fleet=0", "evaluate=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestSamplerDeterministicAndWeighted(t *testing.T) {
	mix := Mix{Evaluate: 8, Sweep: 1, Fleet: 1}
	a, b := newSampler(mix, 5, nil), newSampler(mix, 5, nil)
	counts := map[string]int{}
	appSet := map[string]bool{}
	for _, app := range corpusApps {
		appSet[app] = true
	}
	const n = 5000
	for i := 0; i < n; i++ {
		ra, rb := a.sample(), b.sample()
		if ra != rb {
			t.Fatalf("same-seed samplers diverged at draw %d: %+v vs %+v", i, ra, rb)
		}
		counts[ra.route]++
		if !appSet[ra.app] {
			t.Fatalf("sampled unknown app %q", ra.app)
		}
		if !json.Valid([]byte(ra.body)) {
			t.Fatalf("invalid body JSON: %s", ra.body)
		}
		if !strings.Contains(ra.body, fmt.Sprintf("%q", ra.app)) {
			t.Fatalf("body %s does not mention app %q", ra.body, ra.app)
		}
	}
	// 8:1:1 weights → ~80%/10%/10%, generous ±5-point slop.
	frac := func(route string) float64 { return float64(counts[route]) / n }
	if math.Abs(frac(RouteEvaluate)-0.8) > 0.05 ||
		math.Abs(frac(RouteSweep)-0.1) > 0.05 ||
		math.Abs(frac(RouteFleet)-0.1) > 0.05 {
		t.Errorf("route mix off: %v", counts)
	}

	// A zero-weight route is never drawn.
	s := newSampler(Mix{Evaluate: 1}, 5, nil)
	for i := 0; i < 200; i++ {
		if r := s.sample(); r.route != RouteEvaluate {
			t.Fatalf("zero-weight route %q sampled", r.route)
		}
	}
}

func TestWritePlanDeterministic(t *testing.T) {
	p := Profile{Kind: "poisson", RPS: 500}
	m := Mix{Evaluate: 8, Sweep: 1, Fleet: 1}
	render := func(seed int64) string {
		var sb strings.Builder
		if err := WritePlan(&sb, seed, 2000, p, m); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	one, two := render(3), render(3)
	if one != two {
		t.Errorf("same-seed plans differ:\n%s\nvs\n%s", one, two)
	}
	if other := render(4); other == one {
		t.Error("different seeds produced identical plans")
	}
	for _, want := range []string{"seed=3", "requests=2000", "stream fnv64a", "routes:", "apps:"} {
		if !strings.Contains(one, want) {
			t.Errorf("plan missing %q:\n%s", want, one)
		}
	}
}

// fakeRampserve mimics the slice of rampserve's contract the harness
// depends on: the three POST routes plus the /metrics JSON counters.
// status picks the response code for the i-th handled request.
type fakeRampserve struct {
	mu      sync.Mutex
	handled map[string]int64
	status  func(i int64, route string) int
}

func newFakeRampserve(status func(i int64, route string) int) *fakeRampserve {
	if status == nil {
		status = func(int64, string) int { return http.StatusOK }
	}
	return &fakeRampserve{handled: map[string]int64{}, status: status}
}

func (f *fakeRampserve) handler() http.Handler {
	mux := http.NewServeMux()
	route := func(name string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			f.mu.Lock()
			i := f.handled["total"]
			f.handled["total"]++
			f.handled[name]++
			f.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(f.status(i, name))
			fmt.Fprint(w, `{}`)
		}
	}
	mux.HandleFunc("POST /v1/evaluate", route(RouteEvaluate))
	mux.HandleFunc("POST /v1/sweep", route(RouteSweep))
	mux.HandleFunc("POST /v1/fleet", route(RouteFleet))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		snap := map[string]any{"requests_total": map[string]int64{
			RouteEvaluate: f.handled[RouteEvaluate],
			RouteSweep:    f.handled[RouteSweep],
			RouteFleet:    f.handled[RouteFleet],
		}}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			t := http.StatusInternalServerError
			w.WriteHeader(t)
		}
	})
	return mux
}

func testConfig(url string, n int) Config {
	return Config{
		BaseURL:     url,
		Seed:        11,
		Requests:    n,
		Profile:     Profile{Kind: "constant", RPS: 2000},
		Mix:         Mix{Evaluate: 8, Sweep: 1, Fleet: 1},
		MaxInflight: 256,
		Timeout:     10 * time.Second,
		WindowEvery: 50 * time.Millisecond,
		WindowCap:   100,
	}
}

func TestRunnerOpenLoopAgainstFake(t *testing.T) {
	fake := newFakeRampserve(nil)
	hs := httptest.NewServer(fake.handler())
	defer hs.Close()

	var ndjson bytes.Buffer
	cfg := testConfig(hs.URL, 400)
	cfg.NDJSON = &ndjson
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if rep.Sent != 400 {
		t.Errorf("sent = %d, want 400", rep.Sent)
	}
	reached := rep.Sent - rep.Dropped - rep.NetErr
	if rep.OK != reached {
		t.Errorf("ok = %d, want every reached request (%d)", rep.OK, reached)
	}
	if rep.Latency.Count != reached {
		t.Errorf("latency count = %d, want %d", rep.Latency.Count, reached)
	}
	if !rep.Reconcile.Enabled || !rep.Reconcile.Pass {
		t.Errorf("reconciliation failed: %+v", rep.Reconcile)
	}
	if rep.Mode != "open" || rep.Profile != "constant:2000" {
		t.Errorf("report config echo wrong: mode=%q profile=%q", rep.Mode, rep.Profile)
	}

	// Per-route latency counts sum to the overall count.
	var perRoute int64
	for _, route := range []string{RouteEvaluate, RouteSweep, RouteFleet} {
		perRoute += rep.LatencyRoute[route].Count
	}
	if perRoute != rep.Latency.Count {
		t.Errorf("per-route latency counts sum to %d, overall %d", perRoute, rep.Latency.Count)
	}

	// NDJSON frames parse and their counter sums match the report.
	var framesSent int64
	for _, line := range strings.Split(strings.TrimSpace(ndjson.String()), "\n") {
		if line == "" {
			continue
		}
		var f WindowFrame
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		framesSent += f.Sent
	}
	if framesSent != rep.Sent {
		t.Errorf("window frames sum to %d sent, report says %d", framesSent, rep.Sent)
	}
	if len(rep.Windows) == 0 {
		t.Error("report retained no windows")
	}
}

func TestRunnerClassifiesOutcomes(t *testing.T) {
	// Every 4th request sheds, every 10th times out, one 500.
	fake := newFakeRampserve(func(i int64, _ string) int {
		switch {
		case i%10 == 9:
			return http.StatusGatewayTimeout
		case i%4 == 3:
			return http.StatusTooManyRequests
		case i == 0:
			return http.StatusInternalServerError
		default:
			return http.StatusOK
		}
	})
	hs := httptest.NewServer(fake.handler())
	defer hs.Close()

	r, err := New(testConfig(hs.URL, 200))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reached := rep.Sent - rep.Dropped - rep.NetErr
	if got := rep.OK + rep.Shed + rep.Timeout + rep.Canceled + rep.HTTPErr; got != reached {
		t.Errorf("outcome tallies sum to %d, want %d", got, reached)
	}
	if rep.Shed == 0 || rep.Timeout == 0 || rep.HTTPErr == 0 {
		t.Errorf("expected mixed outcomes, got %+v", rep)
	}
	if rep.Latency.Count != reached {
		t.Errorf("latency histogram counts %d, want every response (%d)", rep.Latency.Count, reached)
	}
}

func TestRunnerClosedLoop(t *testing.T) {
	fake := newFakeRampserve(nil)
	hs := httptest.NewServer(fake.handler())
	defer hs.Close()

	cfg := testConfig(hs.URL, 300)
	cfg.Closed = true
	cfg.Workers = 8
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "closed" || rep.Sent != 300 || rep.OK != 300 || rep.Dropped != 0 {
		t.Errorf("closed loop: %+v", rep)
	}
	if !rep.Reconcile.Pass {
		t.Errorf("closed-loop reconciliation failed: %+v", rep.Reconcile)
	}
}

func TestRunnerCancellation(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	hs := httptest.NewServer(slow)
	defer hs.Close()

	cfg := testConfig(hs.URL, 1_000_000)
	cfg.Profile = Profile{Kind: "constant", RPS: 100}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rep, err := r.Run(ctx)
	if err != nil {
		t.Fatalf("canceled run should report, not fail: %v", err)
	}
	if rep.Sent >= 1_000_000 {
		t.Error("cancellation did not stop the schedule")
	}
}

func TestRunnerSLOGate(t *testing.T) {
	// A healthy fake passes the default objectives; an always-shedding
	// one breaches the shed-ratio objective.
	healthy := newFakeRampserve(nil)
	hsOK := httptest.NewServer(healthy.handler())
	defer hsOK.Close()
	run := func(url string) []slo.Result {
		r, err := New(testConfig(url, 300))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, err := slo.Evaluate(DefaultObjectives(), r.Snapshot(), r.Deltas())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(hsOK.URL); slo.Breached(res) {
		t.Errorf("healthy run breached: %+v", res)
	}

	shedding := newFakeRampserve(func(int64, string) int { return http.StatusTooManyRequests })
	hsBad := httptest.NewServer(shedding.handler())
	defer hsBad.Close()
	if res := run(hsBad.URL); !slo.Breached(res) {
		t.Errorf("100%% shed run did not breach: %+v", res)
	}
}

// TestRunnerAgainstRealServe drives the actual rampserve handler stack
// end to end: the sampled bodies must be accepted by the real
// normalizers and the reconciliation must line up with the server's own
// counters.
func TestRunnerAgainstRealServe(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation integration run")
	}
	opts := exp.QuickOptions()
	opts.WarmupInstrs = 4_000
	opts.EpochInstrs = 4_000
	opts.Epochs = 2
	cfg := serve.DefaultConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 64
	cfg.RequestTimeout = time.Minute
	cfg.EnablePprof = false
	srv := serve.New(exp.NewEnv(opts), cfg)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	lcfg := testConfig(hs.URL, 60)
	lcfg.Profile = Profile{Kind: "constant", RPS: 500}
	lcfg.Mix = Mix{Evaluate: 8, Sweep: 1, Fleet: 1}
	r, err := New(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HTTPErr != 0 {
		t.Errorf("real server rejected %d sampled bodies (%+v)", rep.HTTPErr, rep)
	}
	if rep.OK == 0 {
		t.Errorf("no successful requests: %+v", rep)
	}
	if !rep.Reconcile.Enabled || !rep.Reconcile.Pass {
		t.Errorf("reconciliation vs real rampserve failed: %+v", rep.Reconcile)
	}
}
