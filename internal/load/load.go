// Package load is rampserve's load-generation harness: a deterministic
// open-loop client that drives the service's three POST routes at a
// seeded arrival schedule, records client-side latency and outcome
// tallies into internal/obs instruments, streams per-window NDJSON
// telemetry, and reconciles what it saw against the server's own
// /metrics counters — the measurement substrate every scaling change to
// the serving layer is judged with (and the in-service telemetry loop
// the paper's dynamic reliability management argument presumes).
//
// Open loop means the arrival process does not slow down when the
// server does: arrivals keep their scheduled times and only a bounded
// in-flight budget protects the client itself (arrivals that find the
// budget exhausted are counted as dropped, never silently stretched —
// the coordinated-omission mistake closed-loop harnesses make). The
// closed-loop fallback (Config.Closed) exists for saturation probing,
// where "as fast as the server allows" is the point.
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"ramp/internal/obs"
)

// Client-side instrument names (all in the harness's own registry —
// the load client never shares a registry with the server it measures).
const (
	// MetricSent counts scheduled arrivals — including dropped ones; an
	// open-loop arrival happens whether or not the client can carry it.
	MetricSent     = "load_requests_total"
	MetricOK       = "load_ok_total"
	MetricShed     = "load_shed_total"     // server 429
	MetricTimeout  = "load_timeout_total"  // server 504
	MetricCanceled = "load_canceled_total" // server 499
	MetricHTTPErr  = "load_error_http_total"
	MetricNetErr   = "load_error_net_total"
	MetricDropped  = "load_dropped_total" // open-loop in-flight budget hit
	MetricLatency  = "load_latency_us"
)

// Config tunes one load run. Zero fields take the documented defaults.
type Config struct {
	// BaseURL is the server under test (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Seed drives both the arrival schedule and the request sampler.
	Seed int64
	// Requests is the total number of arrivals to schedule.
	Requests int
	// Profile shapes the arrival schedule.
	Profile Profile
	// Mix weights the three routes.
	Mix Mix
	// MaxInflight bounds concurrently outstanding requests in open-loop
	// mode (default 256); arrivals beyond it are counted dropped.
	MaxInflight int
	// Closed switches to the closed-loop fallback: Workers goroutines
	// issue requests back to back, ignoring the schedule's timing (the
	// schedule still supplies the deterministic request stream).
	Closed bool
	// Workers is the closed-loop concurrency (default 32).
	Workers int
	// Timeout caps one request (default 60s).
	Timeout time.Duration
	// WindowEvery is the telemetry window length (default 1s; < 0
	// disables windowed telemetry).
	WindowEvery time.Duration
	// WindowCap bounds retained windows for the SLO gate and the report
	// (default 600 — ten minutes of 1 s windows).
	WindowCap int
	// NDJSON, when non-nil, receives one JSON line per window.
	NDJSON io.Writer
	// Log receives progress diagnostics (nil = discard).
	Log *slog.Logger
	// Registry, when non-nil, hosts the harness's instruments (rampload
	// passes the obs runtime registry so -stats prints them); it must be
	// fresh — the whole-run report reads absolute counter values.
	Registry *obs.Registry
}

func (c *Config) normalize() error {
	if c.BaseURL == "" {
		return errors.New("load: BaseURL required")
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.Requests <= 0 {
		return errors.New("load: Requests must be positive")
	}
	if c.Profile.Kind == "" {
		return errors.New("load: Profile required")
	}
	if c.Mix.Evaluate+c.Mix.Sweep+c.Mix.Fleet <= 0 {
		return errors.New("load: Mix must have positive total weight")
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.WindowEvery == 0 {
		c.WindowEvery = time.Second
	}
	if c.WindowCap <= 0 {
		c.WindowCap = 600
	}
	if c.Log == nil {
		c.Log = obs.Discard()
	}
	return nil
}

// instruments caches resolved registry pointers so the per-request path
// never takes the registry lock.
type instruments struct {
	sent, ok, shed, timeout, canceled *obs.Counter
	httpErr, netErr, dropped          *obs.Counter
	sentRoute                         map[string]*obs.Counter
	lat                               *obs.Histogram
	latRoute                          map[string]*obs.Histogram
}

func newInstruments(reg *obs.Registry) *instruments {
	ins := &instruments{
		sent:      reg.Counter(MetricSent),
		ok:        reg.Counter(MetricOK),
		shed:      reg.Counter(MetricShed),
		timeout:   reg.Counter(MetricTimeout),
		canceled:  reg.Counter(MetricCanceled),
		httpErr:   reg.Counter(MetricHTTPErr),
		netErr:    reg.Counter(MetricNetErr),
		dropped:   reg.Counter(MetricDropped),
		lat:       reg.Histogram(MetricLatency),
		sentRoute: make(map[string]*obs.Counter, 3),
		latRoute:  make(map[string]*obs.Histogram, 3),
	}
	for _, route := range []string{RouteEvaluate, RouteSweep, RouteFleet} {
		ins.sentRoute[route] = reg.Counter(MetricSent + "_" + route)
		ins.latRoute[route] = reg.Histogram(MetricLatency + "_" + route)
	}
	return ins
}

// Runner drives one load run. Construct with New; Run may be called
// once.
type Runner struct {
	cfg    Config
	reg    *obs.Registry
	ins    *instruments
	win    *obs.Window
	client *http.Client

	mu     sync.Mutex
	frames []WindowFrame
}

// New validates cfg and builds a Runner.
func New(cfg Config) (*Runner, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Runner{
		cfg: cfg,
		reg: reg,
		ins: newInstruments(reg),
		win: obs.NewWindow(cfg.WindowCap, nil),
		client: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.MaxInflight * 2,
				MaxIdleConnsPerHost: cfg.MaxInflight * 2,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}, nil
}

// Registry exposes the harness's client-side instruments (tests and the
// -stats flag read it).
func (r *Runner) Registry() *obs.Registry { return r.reg }

// do issues one request and classifies the outcome. The latency
// histograms record every request that produced an HTTP response;
// transport failures only count. The sent counters are bumped at
// arrival time by the dispatchers (dropped arrivals count as sent —
// open loop means the arrival happened whether or not the client could
// carry it).
func (r *Runner) do(ctx context.Context, req request) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.cfg.BaseURL+"/v1/"+req.route, strings.NewReader(req.body))
	if err != nil {
		r.ins.netErr.Inc()
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.client.Do(httpReq)
	if err != nil {
		r.ins.netErr.Inc()
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	us := time.Since(start).Microseconds()
	r.ins.lat.Observe(us)
	r.ins.latRoute[req.route].Observe(us)
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		r.ins.ok.Inc()
	case resp.StatusCode == http.StatusTooManyRequests:
		r.ins.shed.Inc()
	case resp.StatusCode == http.StatusGatewayTimeout:
		r.ins.timeout.Inc()
	case resp.StatusCode == 499:
		r.ins.canceled.Inc()
	default:
		r.ins.httpErr.Inc()
	}
}

// emitWindow advances the telemetry window, retains the frame and
// writes the NDJSON line.
func (r *Runner) emitWindow(enc *json.Encoder) {
	d := r.win.Observe(r.reg)
	f := frameFromDelta(d)
	r.mu.Lock()
	r.frames = append(r.frames, f)
	r.mu.Unlock()
	if enc != nil {
		_ = enc.Encode(f) // a failed telemetry write never fails the run
	}
}

// Run executes the configured load run and returns its report. The
// context cancels the run early (the report covers what completed).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	before, beforeErr := fetchServerMetrics(ctx, r.client, r.cfg.BaseURL)
	if beforeErr != nil {
		r.cfg.Log.Warn("server /metrics baseline unavailable; reconciliation disabled", "err", beforeErr)
	}

	var enc *json.Encoder
	if r.cfg.NDJSON != nil {
		enc = json.NewEncoder(r.cfg.NDJSON)
	}
	// The window ticker goroutine exits via stopWin; the final partial
	// window is flushed after the senders drain.
	var winWG sync.WaitGroup
	stopWin := make(chan struct{})
	if r.cfg.WindowEvery > 0 {
		r.win.Prime(r.reg.Snapshot())
		tick := time.NewTicker(r.cfg.WindowEvery)
		winWG.Add(1)
		go func() {
			defer winWG.Done()
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					r.emitWindow(enc)
				case <-stopWin:
					return
				}
			}
		}()
	}

	start := time.Now()
	var runErr error
	if r.cfg.Closed {
		runErr = r.runClosed(ctx)
	} else {
		runErr = r.runOpen(ctx)
	}
	wall := time.Since(start)

	close(stopWin)
	winWG.Wait()
	if r.cfg.WindowEvery > 0 {
		r.emitWindow(enc) // final partial window
	}

	after, afterErr := fetchServerMetrics(ctx, r.client, r.cfg.BaseURL)
	rep := r.buildReport(wall, before, after, beforeErr == nil && afterErr == nil)
	// A canceled or deadline-bounded run still reports what completed.
	if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
		return rep, runErr
	}
	return rep, nil
}

// runOpen paces arrivals on the schedule, never letting server slowness
// stretch the arrival process. A sender goroutine per admitted arrival,
// bounded by the in-flight budget.
func (r *Runner) runOpen(ctx context.Context) error {
	sched := newSchedule(r.cfg.Profile, r.cfg.Seed)
	smp := newSampler(r.cfg.Mix, r.cfg.Seed, nil)
	sem := make(chan struct{}, r.cfg.MaxInflight)
	var wg sync.WaitGroup
	defer wg.Wait()

	start := time.Now()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for i := 0; i < r.cfg.Requests; i++ {
		off := sched.next()
		req := smp.sample()
		r.ins.sent.Inc()
		r.ins.sentRoute[req.route].Inc()
		// Sleep until the scheduled arrival; if the client is behind,
		// fire immediately (open loop catches up, it never re-times).
		if wait := time.Until(start.Add(off)); wait > 200*time.Microsecond {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				return ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				r.do(ctx, req)
			}()
		default:
			// In-flight budget exhausted: the arrival happened (open
			// loop!) but the client refuses to stack more connections.
			r.ins.dropped.Inc()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// runClosed issues the same deterministic request stream from Workers
// back-to-back loops (saturation probing; timing is server-paced).
func (r *Runner) runClosed(ctx context.Context) error {
	smp := newSampler(r.cfg.Mix, r.cfg.Seed, nil)
	work := make(chan request, r.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				r.do(ctx, req)
			}
		}()
	}
	var err error
fill:
	for i := 0; i < r.cfg.Requests; i++ {
		req := smp.sample()
		select {
		case work <- req:
			r.ins.sent.Inc()
			r.ins.sentRoute[req.route].Inc()
		case <-ctx.Done():
			err = ctx.Err()
			break fill
		}
	}
	close(work)
	wg.Wait()
	return err
}

// serverMetrics is the slice of rampserve's /metrics JSON document the
// reconciliation reads.
type serverMetrics struct {
	RequestsTotal map[string]int64 `json:"requests_total"`
	ShedTotal     int64            `json:"shed_total"`
	TimeoutTotal  int64            `json:"timeout_total"`
}

func fetchServerMetrics(ctx context.Context, client *http.Client, baseURL string) (serverMetrics, error) {
	var m serverMetrics
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return m, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("load: GET /metrics: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("load: decode /metrics: %v", err)
	}
	return m, nil
}
