package exp

import (
	"ramp/internal/core"
	"ramp/internal/obs"
)

// Metric names an instrumented Env registers. Units ride in the names:
// _total counters are event counts, _us histograms are microseconds,
// and the core_fit_compute_ns_* counters resolved by core.NewFITTimers
// are nanoseconds.
const (
	MetricEvaluations    = "exp_evaluations_total"      // uncached pipeline runs
	MetricEpochs         = "exp_epochs_simulated_total" // simulated measurement epochs
	MetricFixedpointIter = "exp_fixedpoint_iters"       // leakage fixed-point iterations per epoch-pass
	MetricEvaluateUS     = "exp_evaluate_us"            // wall time per uncached evaluation
	MetricCacheHits      = "exp_evalcache_hits_total"   // evaluations served from cache
	MetricCacheMisses    = "exp_evalcache_misses_total" // evaluations that simulated
	MetricCacheEntries   = "exp_evalcache_entries"      // distinct cached points
	MetricSimRetired     = "sim_instructions_retired_total"
	MetricSimCycles      = "sim_cycles_total"
	MetricThermalSolves  = "thermal_solves_total" // linear-system solves
)

// expInstruments holds the Env's pre-resolved instrument pointers so
// the per-epoch hot path never touches the registry. The zero value
// (all nil) is the uninstrumented state: every update is a nil-check
// no-op.
type expInstruments struct {
	evaluations  *obs.Counter
	epochs       *obs.Counter
	fpIters      *obs.Histogram
	evalUS       *obs.Histogram
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheEntries *obs.Gauge
	simRetired   *obs.Counter
	simCycles    *obs.Counter
}

// Instrument attaches an observability runtime to the environment:
// spans from tr wrap every pipeline stage (evaluation, warmup, epoch,
// sink pass, fixed point, RAMP assessment) and the pipeline metrics
// register into reg. Either argument may be nil to enable only the
// other pillar. Call it once, after construction and before the first
// Evaluate — instrumentation must not race the concurrent evaluations
// the Env is otherwise safe for. It returns e for chaining.
//
// Instrumentation is observational only: it never changes evaluation
// results (the golden suite runs byte-identical with everything
// enabled, TestGoldenInstrumented).
func (e *Env) Instrument(tr *obs.Tracer, reg *obs.Registry) *Env {
	e.Trace = tr
	e.Metrics = reg
	e.obs = expInstruments{
		evaluations:  reg.Counter(MetricEvaluations),
		epochs:       reg.Counter(MetricEpochs),
		fpIters:      reg.Histogram(MetricFixedpointIter),
		evalUS:       reg.Histogram(MetricEvaluateUS),
		cacheHits:    reg.Counter(MetricCacheHits),
		cacheMisses:  reg.Counter(MetricCacheMisses),
		cacheEntries: reg.Gauge(MetricCacheEntries),
		simRetired:   reg.Counter(MetricSimRetired),
		simCycles:    reg.Counter(MetricSimCycles),
	}
	e.fitTimers = core.NewFITTimers(reg)
	e.Thermal.CountSolves(reg.Counter(MetricThermalSolves))
	return e
}
