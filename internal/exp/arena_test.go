package exp

import (
	"reflect"
	"testing"

	"ramp/internal/floorplan"
	"ramp/internal/power"
	"ramp/internal/trace"
)

// TestArenaReuseBitIdentical checks the arena's core promise: an Env
// whose arena has already evaluated other points (dirty core, warm
// generators, recycled epoch rows) produces Results bit-identical to a
// fresh Env's. Distinct procs defeat the evaluation cache, so every
// Evaluate below really runs the pipeline.
func TestArenaReuseBitIdentical(t *testing.T) {
	warm := quickEnv()
	qual := warm.Qualification(360)
	// Dirty the arena with evaluations of other apps and configurations.
	for _, app := range []trace.Profile{trace.Twolf(), trace.Gzip()} {
		if _, err := warm.Evaluate(app, warm.Base, qual); err != nil {
			t.Fatal(err)
		}
	}
	slow := warm.Base.WithOperatingPoint(3.5e9)
	for _, app := range trace.Apps() {
		fresh := quickEnv()
		want, err := fresh.Evaluate(app, slow, qual)
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.Evaluate(app, slow, qual)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: warm-arena result diverged from fresh env:\n got %+v\nwant %+v",
				app.Name, got, want)
		}
	}
}

// TestCachedEpochRowsSurviveArenaReuse pins the aliasing contract of the
// arena: a cached Result's epoch rows are a compact copy the cache owns,
// so later evaluations that recycle the arena's scratch rows must not
// disturb them.
func TestCachedEpochRowsSurviveArenaReuse(t *testing.T) {
	env := quickEnv()
	qual := env.Qualification(370)
	first, err := env.Evaluate(trace.Gzip(), env.Base, qual)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]EpochRow(nil), first.Epochs...)

	// Recycle the arena through every other profile and a second config.
	for _, app := range trace.Apps() {
		if _, err := env.Evaluate(app, env.Base.WithOperatingPoint(3e9), qual); err != nil {
			t.Fatal(err)
		}
	}

	again, err := env.Evaluate(trace.Gzip(), env.Base, qual) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Epochs, snapshot) {
		t.Fatal("cached epoch rows changed after the arena was reused for other evaluations")
	}
}

// TestRequalifyDoesNotMutateCachedRows enforces the read-only contract
// on cached Result.Epochs: requalifying — directly and via the cache
// fallback for stripped results — must leave the rows untouched.
func TestRequalifyDoesNotMutateCachedRows(t *testing.T) {
	env := quickEnv()
	res, err := env.Evaluate(trace.Bzip2(), env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]EpochRow(nil), res.Epochs...)

	for _, tq := range []float64{325, 345, 370, 400} {
		if _, err := env.Requalify(res, env.Qualification(tq)); err != nil {
			t.Fatal(err)
		}
	}
	// Stripped result: Requalify falls back to the cache-retained rows.
	stripped := res
	stripped.Epochs = nil
	if _, err := env.Requalify(stripped, env.Qualification(345)); err != nil {
		t.Fatal(err)
	}

	again, err := env.Evaluate(trace.Bzip2(), env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Epochs, snapshot) {
		t.Fatal("Requalify mutated cached epoch rows")
	}
	if !reflect.DeepEqual(res.Epochs, snapshot) {
		t.Fatal("Requalify mutated the caller's epoch rows")
	}
}

// TestEpochFixedPointZeroAlloc is the allocation budget for the per-epoch
// power/thermal fixed point: the Env-owned scratch state must make
// EpochConditions (and the epochFixedPoint under it) allocation-free,
// since reactive controllers call it every control epoch.
func TestEpochFixedPointZeroAlloc(t *testing.T) {
	env := quickEnv()
	var activity [floorplan.NumStructures]float64
	for i := range activity {
		activity[i] = 0.3
	}
	on := power.Ones()
	if allocs := testing.AllocsPerRun(100, func() {
		env.EpochConditions(activity, on, env.Base, 330)
	}); allocs != 0 {
		t.Fatalf("EpochConditions allocated %.0f objects/op, want 0", allocs)
	}
}

// TestArenaEpochRowsZeroed checks that recycled scratch rows come back
// zeroed — a stale Sim or TempK from a previous evaluation must never
// leak into a new one.
func TestArenaEpochRowsZeroed(t *testing.T) {
	a := &evalArena{}
	rows := a.epochRows(4)
	rows[2].TotalW = 99
	rows = a.epochRows(4)
	var zero EpochRow
	for i, r := range rows {
		if r != zero {
			t.Fatalf("recycled row %d not zeroed: %+v", i, r)
		}
	}
}
