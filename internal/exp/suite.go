package exp

import (
	"context"

	"ramp/internal/core"
	"ramp/internal/trace"
)

// EvaluateSuite evaluates the full nine-application suite on the base
// processor at one qualification point, returning results in the
// paper's suite order (trace.Apps). The manycore scheduler consumes
// these per-application epoch rows as its workload profiles; everything
// comes out of the evaluation cache, so a policy sweep over many die
// sizes simulates each application exactly once.
func (e *Env) EvaluateSuite(qual core.Qualification) ([]Result, error) {
	return e.EvaluateSuiteCtx(context.Background(), qual)
}

// EvaluateSuiteCtx is EvaluateSuite with cancellation, delegating to
// EvaluateAllCtx's bounded worker pool.
func (e *Env) EvaluateSuiteCtx(ctx context.Context, qual core.Qualification) ([]Result, error) {
	apps := trace.Apps()
	jobs := make([]EvalJob, len(apps))
	for i, app := range apps {
		jobs[i] = EvalJob{App: app, Proc: e.Base, Qual: qual}
	}
	return e.EvaluateAllCtx(ctx, jobs)
}
