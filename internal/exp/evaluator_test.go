package exp

import (
	"math"
	"testing"

	"ramp/internal/core"
	"ramp/internal/floorplan"
	"ramp/internal/trace"
)

func quickEnv() *Env { return NewEnv(QuickOptions()) }

func TestEvaluateBaseRun(t *testing.T) {
	env := quickEnv()
	r, err := env.Evaluate(trace.Gzip(), env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.BIPS <= 0 {
		t.Fatalf("non-positive performance: %+v", r)
	}
	if r.AvgW <= 5 || r.AvgW > 80 {
		t.Fatalf("implausible power %v W", r.AvgW)
	}
	if r.MaxTempK <= env.Tech.AmbientK || r.MaxTempK > 450 {
		t.Fatalf("implausible max temperature %v K", r.MaxTempK)
	}
	if r.SinkK <= env.Tech.AmbientK {
		t.Fatalf("sink at/below ambient: %v", r.SinkK)
	}
	if r.AvgTempK <= r.SinkK {
		t.Fatalf("die average %v not above sink %v", r.AvgTempK, r.SinkK)
	}
	if r.FIT() <= 0 {
		t.Fatal("zero FIT")
	}
	if len(r.Epochs) != env.Opts.Epochs {
		t.Fatalf("epoch count %d", len(r.Epochs))
	}
	if r.Assessment.Intervals != env.Opts.Epochs {
		t.Fatalf("assessment intervals %d", r.Assessment.Intervals)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	env := quickEnv()
	q := env.Qualification(370)
	r1, err := env.Evaluate(trace.Twolf(), env.Base, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := env.Evaluate(trace.Twolf(), env.Base, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPC != r2.IPC || r1.FIT() != r2.FIT() || r1.AvgW != r2.AvgW {
		t.Fatalf("evaluation not deterministic: %v/%v %v/%v", r1.IPC, r2.IPC, r1.FIT(), r2.FIT())
	}
}

func TestLowerTqualRaisesFIT(t *testing.T) {
	env := quickEnv()
	r, err := env.Evaluate(trace.Equake(), env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	a370, err := env.Requalify(r, env.Qualification(370))
	if err != nil {
		t.Fatal(err)
	}
	a345, err := env.Requalify(r, env.Qualification(345))
	if err != nil {
		t.Fatal(err)
	}
	if !(r.FIT() < a370.TotalFIT && a370.TotalFIT < a345.TotalFIT) {
		t.Fatalf("FIT not increasing as Tqual drops: %v %v %v",
			r.FIT(), a370.TotalFIT, a345.TotalFIT)
	}
}

func TestRequalifyMatchesEvaluate(t *testing.T) {
	env := quickEnv()
	q400 := env.Qualification(400)
	q345 := env.Qualification(345)
	r400, err := env.Evaluate(trace.Ammp(), env.Base, q400)
	if err != nil {
		t.Fatal(err)
	}
	r345, err := env.Evaluate(trace.Ammp(), env.Base, q345)
	if err != nil {
		t.Fatal(err)
	}
	requal, err := env.Requalify(r400, q345)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(requal.TotalFIT-r345.FIT()) > 1e-6*r345.FIT() {
		t.Fatalf("Requalify %v != direct Evaluate %v", requal.TotalFIT, r345.FIT())
	}
}

func TestDVSReducesPowerAndTemperature(t *testing.T) {
	env := quickEnv()
	q := env.Qualification(400)
	fast, err := env.Evaluate(trace.Bzip2(), env.Base, q)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := env.Evaluate(trace.Bzip2(), env.Base.WithOperatingPoint(2.5e9), q)
	if err != nil {
		t.Fatal(err)
	}
	if slow.AvgW >= fast.AvgW {
		t.Fatalf("DVS down did not cut power: %v vs %v", slow.AvgW, fast.AvgW)
	}
	if slow.MaxTempK >= fast.MaxTempK {
		t.Fatalf("DVS down did not cool: %v vs %v", slow.MaxTempK, fast.MaxTempK)
	}
	if slow.FIT() >= fast.FIT() {
		t.Fatalf("DVS down did not improve reliability: %v vs %v", slow.FIT(), fast.FIT())
	}
	if slow.BIPS >= fast.BIPS {
		t.Fatalf("DVS down did not cost performance: %v vs %v", slow.BIPS, fast.BIPS)
	}
}

func TestGatedConfigDrawsLessPower(t *testing.T) {
	env := quickEnv()
	q := env.Qualification(400)
	full, err := env.Evaluate(trace.Twolf(), env.Base, q)
	if err != nil {
		t.Fatal(err)
	}
	small := env.Base
	small.WindowSize = 16
	small.IntALUs = 2
	small.FPUs = 1
	small.Name = "w16-a2-f1"
	gated, err := env.Evaluate(trace.Twolf(), small, q)
	if err != nil {
		t.Fatal(err)
	}
	if gated.AvgW >= full.AvgW {
		t.Fatalf("gated config not cheaper: %v vs %v W", gated.AvgW, full.AvgW)
	}
}

func TestEvaluateAllPreservesOrder(t *testing.T) {
	env := quickEnv()
	q := env.Qualification(400)
	jobs := []EvalJob{
		{App: trace.Twolf(), Proc: env.Base, Qual: q},
		{App: trace.Gzip(), Proc: env.Base, Qual: q},
		{App: trace.Art(), Proc: env.Base, Qual: q},
	}
	results, err := env.EvaluateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, want := range []string{"twolf", "gzip", "art"} {
		if results[i].App != want {
			t.Fatalf("result %d is %s, want %s", i, results[i].App, want)
		}
	}
}

func TestEvaluateRejectsBadInputs(t *testing.T) {
	env := quickEnv()
	if _, err := env.Evaluate(trace.Profile{}, env.Base, env.Qualification(400)); err == nil {
		t.Fatal("empty profile accepted")
	}
	bad := env.Base
	bad.WindowSize = 0
	if _, err := env.Evaluate(trace.Gzip(), bad, env.Qualification(400)); err == nil {
		t.Fatal("invalid processor accepted")
	}
	badQual := env.Qualification(400)
	badQual.TargetFIT = -1
	if _, err := env.Evaluate(trace.Gzip(), env.Base, badQual); err == nil {
		t.Fatal("invalid qualification accepted")
	}
}

func TestEpochTemperaturesPerStructure(t *testing.T) {
	env := quickEnv()
	r, err := env.Evaluate(trace.MP3dec(), env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Epochs {
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			if row.TempK[s] <= env.Tech.AmbientK {
				t.Fatalf("epoch temp for %v at/below ambient: %v", s, row.TempK[s])
			}
		}
		if row.TotalW <= 0 {
			t.Fatal("epoch without power")
		}
	}
}

func TestSuiteMaxActivityConstant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep; skipped in -short (race lane)")
	}
	// A_qual must upper-bound the per-structure activities the suite
	// actually reaches on the base machine (Section 3.7 sets it to the
	// observed maximum; the constant must not fall below reality).
	env := quickEnv()
	q := env.Qualification(400)
	maxAct := 0.0
	for _, app := range trace.Apps() {
		r, err := env.Evaluate(app, env.Base, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Epochs {
			for _, a := range row.Sim.Activity {
				if a > maxAct {
					maxAct = a
				}
			}
		}
	}
	if maxAct > SuiteMaxActivity+0.05 {
		t.Fatalf("observed suite max activity %v exceeds A_qual constant %v — recalibrate",
			maxAct, SuiteMaxActivity)
	}
	if maxAct < SuiteMaxActivity-0.15 {
		t.Fatalf("A_qual constant %v far above observed %v — recalibrate", SuiteMaxActivity, maxAct)
	}
}

func TestQualificationUsesBaseOperatingPoint(t *testing.T) {
	env := quickEnv()
	q := env.Qualification(370)
	if q.TqualK != 370 || q.VqualV != env.Base.VddV || q.FqualHz != env.Base.FreqHz {
		t.Fatalf("qualification point %+v", q)
	}
	if q.TargetFIT != core.StandardTargetFIT {
		t.Fatalf("target FIT %v", q.TargetFIT)
	}
}
