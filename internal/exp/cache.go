package exp

import (
	"sync"
	"sync/atomic"

	"ramp/internal/config"
	"ramp/internal/core"
)

// evalKey identifies the qualification-independent part of one
// evaluation: what ran (application, seed, run lengths, methodology
// knobs) and on what hardware (every numeric field of the processor
// configuration). Proc.Name is cleared before keying — naming is
// cosmetic, so the base machine and the identically-configured DVS grid
// point "w128-a6-f4@4.00GHz" memoize to the same simulation. The
// qualification point is deliberately absent: simulation, power and
// temperature do not depend on it, and Requalify derives any T_qual's
// assessment from the cached epoch rows.
type evalKey struct {
	app  string
	proc config.Proc
	opts Options // includes Seed; fixed per Env, kept for content-keying
}

// cacheEntry memoizes one evaluation. The first Evaluate for a key runs
// the simulation inside once; concurrent callers for the same key block
// on once rather than duplicating the work (singleflight). ready flips
// after once completes so lock-free readers (Requalify's fallback) know
// res/err are safe to read.
type cacheEntry struct {
	once  sync.Once
	ready atomic.Bool
	res   Result             // Epochs retained even under DropEpochRows
	qual  core.Qualification // qualification res.Assessment was computed for
	err   error
}

// evalCache is the concurrency-safe memo table hanging off an Env. The
// zero value is ready to use.
type evalCache struct {
	mu sync.Mutex
	m  map[evalKey]*cacheEntry
}

// entry returns the entry for k, creating it if absent.
func (c *evalCache) entry(k evalKey) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[evalKey]*cacheEntry)
	}
	e := c.m[k]
	if e == nil {
		e = &cacheEntry{}
		c.m[k] = e
	}
	return e
}

// lookup returns the completed entry for k, or nil if the key is absent
// or still being computed.
func (c *evalCache) lookup(k evalKey) *cacheEntry {
	c.mu.Lock()
	e := c.m[k]
	c.mu.Unlock()
	if e == nil || !e.ready.Load() {
		return nil
	}
	return e
}

// Len reports how many distinct evaluations have been memoized
// (completed or in flight); exported for tests and diagnostics.
func (c *evalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
