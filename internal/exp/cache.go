package exp

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"ramp/internal/config"
	"ramp/internal/core"
)

// evalKey identifies the qualification-independent part of one
// evaluation: what ran (application, seed, run lengths, methodology
// knobs) and on what hardware (every numeric field of the processor
// configuration). Proc.Name is cleared before keying — naming is
// cosmetic, so the base machine and the identically-configured DVS grid
// point "w128-a6-f4@4.00GHz" memoize to the same simulation. The
// qualification point is deliberately absent: simulation, power and
// temperature do not depend on it, and Requalify derives any T_qual's
// assessment from the cached epoch rows.
type evalKey struct {
	app  string
	proc config.Proc
	opts Options // includes Seed; fixed per Env, kept for content-keying
}

// cacheEntry memoizes one evaluation. The first Evaluate for a key
// becomes the leader and runs the simulation; concurrent callers for the
// same key wait on done rather than duplicating the work (singleflight).
// Unlike a sync.Once flight, a leader whose context is cancelled does
// not burn the entry: the cancelled entry is dropped from the map before
// done closes, so one of the waiters (or a later caller) retakes
// leadership and the configuration still gets simulated exactly once by
// a caller that actually wants it. ready flips before done closes so
// lock-free readers (Requalify's fallback) know res/err are safe.
type cacheEntry struct {
	done  chan struct{} // closed when the flight finishes (or is abandoned)
	ready atomic.Bool   // res/err valid (flight completed, not abandoned)
	res   Result        // Epochs retained even under DropEpochRows
	qual  core.Qualification
	err   error
}

// CacheStats is a point-in-time snapshot of the evaluation cache's
// effectiveness counters, exported for the serve layer's /metrics
// endpoint and for singleflight assertions in tests.
type CacheStats struct {
	// Hits counts Evaluate calls served without starting a simulation:
	// either from a completed entry or by joining an in-flight one.
	Hits int64
	// Misses counts Evaluate calls that started a simulation (took
	// leadership of a flight). With no cancellations, Misses equals the
	// number of distinct keys evaluated.
	Misses int64
	// Entries is the number of distinct keys resident (completed or in
	// flight).
	Entries int
}

// evalCache is the concurrency-safe memo table hanging off an Env. The
// zero value is ready to use.
type evalCache struct {
	mu     sync.Mutex
	m      map[evalKey]*cacheEntry
	hits   atomic.Int64
	misses atomic.Int64
}

// acquire returns the entry for k and whether the caller became the
// flight's leader. A leader must call either complete or abandon.
func (c *evalCache) acquire(k evalKey) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[evalKey]*cacheEntry)
	}
	if e = c.m[k]; e != nil {
		c.hits.Add(1)
		return e, false
	}
	e = &cacheEntry{done: make(chan struct{})}
	c.m[k] = e
	c.misses.Add(1)
	return e, true
}

// complete publishes a leader's finished flight.
func (c *evalCache) complete(e *cacheEntry) {
	e.ready.Store(true)
	close(e.done)
}

// abandon drops a cancelled leader's flight so the key can be retried;
// waiters see done close with ready still false and re-acquire.
func (c *evalCache) abandon(k evalKey, e *cacheEntry) {
	c.mu.Lock()
	if c.m[k] == e {
		delete(c.m, k)
	}
	c.mu.Unlock()
	close(e.done)
}

// lookup returns the completed entry for k, or nil if the key is absent
// or still being computed.
func (c *evalCache) lookup(k evalKey) *cacheEntry {
	c.mu.Lock()
	e := c.m[k]
	c.mu.Unlock()
	if e == nil || !e.ready.Load() {
		return nil
	}
	return e
}

// Len reports how many distinct evaluations have been memoized
// (completed or in flight); exported for tests and diagnostics.
func (c *evalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the cache counters.
func (c *evalCache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.Len(),
	}
}

// isCtxErr reports whether err is a context cancellation or deadline —
// the class of error that abandons (rather than poisons) a flight.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
