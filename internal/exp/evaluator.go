// Package exp is the experiment harness: it glues the timing simulator,
// power model, thermal model and RAMP together exactly as Section 6.3
// describes, and regenerates every table and figure of the paper's
// evaluation (Section 7).
//
// One Evaluate call reproduces the paper's per-run methodology:
//
//  1. Simulate the application in epochs, collecting per-epoch activity.
//  2. First pass: average power at an assumed temperature initialises
//     the heat-sink steady-state temperature (the sink's RC constant is
//     far larger than any simulated run).
//  3. Second pass: per-epoch block temperatures from the quasi-steady
//     thermal solve with the sink pinned, iterating the
//     leakage-temperature feedback to a fixed point per epoch.
//  4. RAMP folds every epoch's conditions into the application FIT value.
package exp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
	"ramp/internal/power"
	"ramp/internal/sim"
	"ramp/internal/stats"
	"ramp/internal/thermal"
	"ramp/internal/trace"
)

// Options controls simulation length and methodology knobs.
type Options struct {
	WarmupInstrs uint64 // instructions simulated before measurement
	EpochInstrs  uint64 // instructions per epoch
	Epochs       int    // measured epochs
	Seed         int64

	// LeakageIters is the number of power<->temperature fixed-point
	// iterations per epoch; SinkPasses the number of heat-sink passes
	// (the paper uses two).
	LeakageIters int
	SinkPasses   int

	// TolK enables adaptive convergence in the per-epoch fixed point:
	// iteration stops as soon as the largest per-block temperature update
	// falls below TolK kelvin (never exceeding LeakageIters). The
	// feedback is a contraction, so an early exit perturbs temperatures
	// by at most ~TolK and cuts iterations on cool/low-power
	// configurations. 0 disables the early exit (always run LeakageIters,
	// bitwise-identical to the fixed-count behaviour).
	TolK float64

	// DropEpochRows strips the per-epoch rows from returned Results,
	// keeping only aggregates. Sweeps over hundreds of candidates hold
	// every Result alive; the rows dominate that memory and most callers
	// only read aggregates. The evaluation cache retains the rows
	// internally, so Requalify still works on a stripped Result.
	DropEpochRows bool
}

// DefaultOptions returns run lengths that reach cache steady state for
// the built-in workloads while keeping full adaptation sweeps tractable.
func DefaultOptions() Options {
	return Options{
		WarmupInstrs: 300_000,
		EpochInstrs:  100_000,
		Epochs:       6,
		Seed:         1,
		LeakageIters: 4,
		SinkPasses:   2,
		//rampvet:ignore unitsafety -- TolK is a temperature *difference*, not an absolute temperature
		TolK: DefaultTolK,
	}
}

// DefaultTolK is the default fixed-point convergence tolerance (kelvin).
// It is far below any physically meaningful temperature difference and
// below the precision of every reported figure, so enabling it preserves
// all results; see DESIGN.md §7.
const DefaultTolK = 1e-5

// QuickOptions returns much shorter runs for tests and benchmarks.
func QuickOptions() Options {
	return Options{
		WarmupInstrs: 60_000,
		EpochInstrs:  40_000,
		Epochs:       3,
		Seed:         1,
		LeakageIters: 3,
		SinkPasses:   2,
		//rampvet:ignore unitsafety -- TolK is a temperature *difference*, not an absolute temperature
		TolK: DefaultTolK,
	}
}

// Env bundles the shared models of one experimental setup. It is
// immutable after construction (the internal result cache is
// concurrency-safe) and safe for concurrent Evaluate calls.
type Env struct {
	Tech    config.Tech
	Base    config.Proc
	FP      *floorplan.Floorplan
	Power   *power.Model
	Thermal *thermal.Model
	Params  core.Params
	Opts    Options

	// Trace and Metrics are the observability hooks installed by
	// Instrument; both are nil by default, which makes every span and
	// metric update in the pipeline a nil-check no-op (zero-alloc on the
	// epoch hot path).
	Trace   *obs.Tracer
	Metrics *obs.Registry

	obs       expInstruments
	fitTimers *core.FITTimers

	// cache memoizes evaluations by (app, proc, Options) so sweeps that
	// revisit a configuration — the base machine inside every adaptation
	// sweep, overlapping Arch/DVS/ArchDVS candidate sets, repeated
	// figure regenerations — simulate each distinct point once.
	cache evalCache

	// arenas pools per-worker evaluation scratch — simulator core,
	// per-profile generators, epoch-row buffer — so steady-state
	// evaluations reuse buffers instead of reallocating them (see
	// evalArena for the aliasing rules).
	arenas arenaPool
}

// NewEnv builds the standard environment: 65 nm technology, Table 1 base
// processor, R10000-like floorplan, default power budget and package.
func NewEnv(opts Options) *Env {
	tech := config.Tech65nm()
	fp := floorplan.R10000Like()
	return &Env{
		Tech:    tech,
		Base:    config.Base(),
		FP:      fp,
		Power:   power.NewModel(fp, tech),
		Thermal: thermal.MustNew(fp, thermal.DefaultParams(tech.AmbientK)),
		Params:  core.DefaultParams(core.TCAmbientK),
		Opts:    opts,
	}
}

// NewCustomEnv builds an environment from explicit parts — used by the
// technology-scaling study, which ports the base microarchitecture
// across process nodes with scaled floorplans and power budgets.
func NewCustomEnv(tech config.Tech, base config.Proc, fp *floorplan.Floorplan, budget power.Vector, opts Options) *Env {
	return &Env{
		Tech:    tech,
		Base:    base,
		FP:      fp,
		Power:   power.NewModelWithBudget(fp, tech, budget),
		Thermal: thermal.MustNew(fp, thermal.DefaultParams(tech.AmbientK)),
		Params:  core.DefaultParams(core.TCAmbientK),
		Opts:    opts,
	}
}

// Qualification returns the qualification point for a given T_qual using
// the environment's base operating point and suite activity (Section
// 3.7: V_qual and f_qual are the base processor's, A_qual is the highest
// activity factor across the suite).
func (e *Env) Qualification(tqualK float64) core.Qualification {
	return core.Qualification{
		TqualK:    tqualK,
		VqualV:    e.Base.VddV,
		FqualHz:   e.Base.FreqHz,
		Aqual:     SuiteMaxActivity,
		TargetFIT: core.StandardTargetFIT,
	}
}

// SuiteMaxActivity is A_qual: the highest per-structure activity factor
// observed across the nine-application suite on the base processor
// (measured by TestSuiteMaxActivity; the AGU/LSQ/L1D cluster of the
// highest-IPC multimedia codes sets it).
const SuiteMaxActivity = 0.52

// EpochRow records one epoch's observables.
type EpochRow struct {
	Sim      sim.Result
	PowerW   power.Vector
	TempK    power.Vector
	TotalW   float64
	MaxTempK float64
}

// Result is the outcome of evaluating one (application, configuration)
// pair.
type Result struct {
	App  string
	Proc config.Proc

	IPC      float64
	BIPS     float64
	AvgW     float64
	MaxTempK float64
	AvgTempK float64 // area-weighted average die temperature
	SinkK    float64

	Assessment core.Assessment
	Epochs     []EpochRow
}

// FIT returns the run's total FIT value.
func (r Result) FIT() float64 { return r.Assessment.TotalFIT }

// Evaluate runs app on proc and returns performance, power, thermal and
// reliability results. qual sets the RAMP qualification point.
//
// Results are memoized: the first call for a given (app, proc, Options)
// simulates; subsequent calls return the cached outcome, re-deriving
// only the RAMP assessment when qual differs (Requalify — simulation,
// power and temperature are qualification-independent). Concurrent
// calls for the same key share one simulation. Cached Results share
// their epoch-row backing array; callers must treat Epochs as
// read-only.
func (e *Env) Evaluate(app trace.Profile, proc config.Proc, qual core.Qualification) (Result, error) {
	return e.EvaluateCtx(context.Background(), app, proc, qual)
}

// EvaluateCtx is Evaluate with cancellation: the simulation checks ctx
// at every epoch boundary, so an abandoned caller (a closed HTTP
// request, an expired deadline) stops burning simulation time within
// one epoch. A cancelled flight never poisons the cache — the entry is
// dropped and the next caller for the same key simulates afresh; a
// waiter that joined a flight whose leader was cancelled retakes
// leadership itself.
func (e *Env) EvaluateCtx(ctx context.Context, app trace.Profile, proc config.Proc, qual core.Qualification) (Result, error) {
	key := e.keyFor(app.Name, proc)
	var ent *cacheEntry
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		var leader bool
		ent, leader = e.cache.acquire(key)
		if leader {
			e.obs.cacheMisses.Inc()
			ent.res, ent.err = e.evaluate(ctx, app, proc, qual)
			ent.qual = qual
			if ent.err != nil && isCtxErr(ent.err) {
				e.cache.abandon(key, ent)
				return Result{}, ent.err
			}
			e.cache.complete(ent)
			e.obs.cacheEntries.Set(int64(e.cache.Len()))
			break
		}
		select {
		case <-ent.done:
			if ent.ready.Load() {
				// Completed flight (success or a real error).
				e.obs.cacheHits.Inc()
			} else {
				// The leader was cancelled; retry (possibly as leader).
				continue
			}
		case <-ctx.Done():
			return Result{}, ctx.Err()
		}
		break
	}
	if ent.err != nil {
		return Result{}, ent.err
	}
	res := ent.res
	if qual != ent.qual {
		//rampvet:ignore ctxflow -- single-result requalification is bounded CPU over cached epoch rows; cancellation already happened at the evaluate/cache-wait stage above
		a, err := e.Requalify(ent.res, qual)
		if err != nil {
			return Result{}, err
		}
		res.Assessment = a
	}
	// The stored result may carry a different cosmetic Proc.Name for the
	// same configuration; report the caller's.
	res.App = app.Name
	res.Proc = proc
	if e.Opts.DropEpochRows {
		res.Epochs = nil
	}
	return res, nil
}

// keyFor builds the cache key for an (application, configuration) pair.
func (e *Env) keyFor(app string, proc config.Proc) evalKey {
	proc.Name = ""
	return evalKey{app: app, proc: proc, opts: e.Opts}
}

// CachedEvaluations reports how many distinct (app, proc) points have
// been simulated (diagnostic).
func (e *Env) CachedEvaluations() int { return e.cache.Len() }

// CacheStats snapshots the evaluation cache's hit/miss/entry counters
// (consumed by the rampserve /metrics endpoint and by singleflight
// assertions in tests).
func (e *Env) CacheStats() CacheStats { return e.cache.Stats() }

// evaluate is the uncached evaluation pipeline. ctx is checked at every
// epoch boundary of both the timing simulation and the thermal passes.
// Evaluations run concurrently on the worker pool, so the evaluation
// span opens a fresh track; everything below it nests on that track.
func (e *Env) evaluate(ctx context.Context, app trace.Profile, proc config.Proc, qual core.Qualification) (Result, error) {
	evalStart := time.Now()
	ctx, evalSpan := e.Trace.StartTrack(ctx, "exp.evaluate")
	if evalSpan.Enabled() {
		evalSpan.Annotate(obs.Str("app", app.Name), obs.Str("proc", proc.Name))
	}
	defer evalSpan.End()

	ar := e.getArena()
	defer e.putArena(ar)
	gen, err := ar.generator(app, e.Opts.Seed)
	if err != nil {
		return Result{}, err
	}
	c, err := ar.coreFor(proc, gen)
	if err != nil {
		return Result{}, err
	}
	c.Instrument(e.obs.simRetired, e.obs.simCycles)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if e.Opts.WarmupInstrs > 0 {
		_, ws := e.Trace.Start(ctx, "sim.warmup")
		c.Run(e.Opts.WarmupInstrs)
		ws.End()
	}
	epochs := ar.epochRows(e.Opts.Epochs)
	for i := range epochs {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		_, es := e.Trace.Start(ctx, "sim.epoch")
		es.AnnotateInt("epoch", int64(i))
		epochs[i].Sim = c.Run(e.Opts.EpochInstrs)
		es.End()
		e.obs.epochs.Inc()
	}

	on := power.OnFractions(proc, e.Base)

	// Heat-sink passes: estimate average power, derive the sink
	// steady-state temperature, recompute temperatures, repeat.
	sinkK := e.Tech.AmbientK + 30 // initial guess
	var avgW float64
	for pass := 0; pass < max(1, e.Opts.SinkPasses); pass++ {
		passCtx, ps := e.Trace.Start(ctx, "thermal.sinkpass")
		ps.AnnotateInt("pass", int64(pass))
		var wSum, tSum float64
		for i := range epochs {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			row := &epochs[i]
			_, fs := e.Trace.Start(passCtx, "exp.fixedpoint")
			var iters int
			row.TempK, row.PowerW, iters = e.epochFixedPoint(row.Sim.Activity, on, proc, sinkK)
			fs.AnnotateInt("epoch", int64(i))
			fs.AnnotateInt("iters", int64(iters))
			fs.End()
			e.obs.fpIters.Observe(int64(iters))
			row.TotalW = row.PowerW.Sum()
			_, row.MaxTempK = thermal.MaxBlock(row.TempK)
			wSum += row.TotalW * row.Sim.TimeSec
			tSum += row.Sim.TimeSec
		}
		avgW = wSum / tSum
		sinkK = e.Thermal.SinkSteadyTemp(avgW)
		ps.End()
	}

	// RAMP accumulation.
	_, as := e.Trace.Start(ctx, "ramp.assess")
	engine, err := core.NewEngine(e.FP, e.Params, qual)
	if err != nil {
		return Result{}, err
	}
	engine.SetTimers(e.fitTimers)
	var res Result
	res.App = app.Name
	res.Proc = proc
	var ipcMean, dieTempMean stats.Mean
	var timeSum, retired float64
	for i := range epochs {
		row := &epochs[i]
		iv := core.Interval{DurationSec: row.Sim.TimeSec}
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			iv.Structures[s] = core.Conditions{
				TempK:      row.TempK[s],
				VddV:       proc.VddV,
				FreqHz:     proc.FreqHz,
				Activity:   row.Sim.Activity[s],
				OnFraction: on[s],
			}
		}
		if err := engine.Observe(iv); err != nil {
			return Result{}, err
		}
		timeSum += row.Sim.TimeSec
		retired += float64(row.Sim.Retired)
		ipcMean.AddWeighted(row.Sim.IPC, row.Sim.TimeSec)
		if row.MaxTempK > res.MaxTempK {
			res.MaxTempK = row.MaxTempK
		}
		var at float64
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			at += row.TempK[s] * e.FP.AreaFraction(s)
		}
		dieTempMean.AddWeighted(at, row.Sim.TimeSec)
	}
	res.IPC = ipcMean.Value()
	res.BIPS = retired / timeSum / 1e9
	res.AvgW = avgW
	res.AvgTempK = dieTempMean.Value()
	res.SinkK = sinkK
	res.Assessment, err = engine.Assess()
	if err != nil {
		return Result{}, err
	}
	as.End()
	// The rows filled above are arena scratch; the Result — and through
	// it the cache — gets one compact copy it owns forever.
	res.Epochs = append([]EpochRow(nil), epochs...)
	e.obs.evaluations.Inc()
	e.obs.evalUS.Observe(time.Since(evalStart).Microseconds())
	return res, nil
}

// EpochConditions iterates the leakage-temperature feedback for one
// epoch — temperatures determine leakage, leakage determines power,
// power determines temperatures — and returns the per-structure
// temperatures and powers. It is the building block reactive controllers
// use to evaluate epochs online.
func (e *Env) EpochConditions(activity [floorplan.NumStructures]float64, on power.Vector, proc config.Proc, sinkK float64) (temps, pw power.Vector) {
	temps, pw, _ = e.epochFixedPoint(activity, on, proc, sinkK)
	return temps, pw
}

// epochFixedPoint iterates the leakage-temperature feedback for one
// epoch: temperatures determine leakage, leakage determines power,
// power determines temperatures. With Options.TolK > 0 the loop exits as
// soon as the update is converged below the tolerance; LeakageIters is
// always an upper bound, so the adaptive exit can only skip iterations
// whose effect would be under TolK. The returned iteration count feeds
// the exp_fixedpoint_iters histogram and span annotations.
//
//ramp:hot
func (e *Env) epochFixedPoint(activity [floorplan.NumStructures]float64, on power.Vector, proc config.Proc, sinkK float64) (temps, pw power.Vector, iters int) {
	var act power.Vector
	copy(act[:], activity[:])
	temps = power.Uniform(sinkK + 15)
	limit := max(1, e.Opts.LeakageIters)
	tol := e.Opts.TolK
	for i := 0; i < limit; i++ {
		pw = e.Power.Compute(act, on, temps, proc.VddV, proc.FreqHz)
		next := e.Thermal.QuasiSteady(pw, sinkK)
		converged := tol > 0 && maxAbsDelta(next, temps) < tol
		temps = next
		iters = i + 1
		if converged {
			break
		}
	}
	return temps, pw, iters
}

// maxAbsDelta returns the largest per-component absolute difference.
//
//ramp:hot
func maxAbsDelta(a, b power.Vector) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Requalify recomputes the RAMP assessment of an existing Result under a
// different qualification point, reusing the stored per-epoch simulation
// and thermal data. Simulation, power and temperature do not depend on
// the qualification point, so exploring many T_qual values only needs one
// Evaluate per (application, configuration). A Result whose epoch rows
// were stripped (Options.DropEpochRows) is requalified from the rows the
// evaluation cache retains.
func (e *Env) Requalify(r Result, qual core.Qualification) (core.Assessment, error) {
	rows := r.Epochs
	if len(rows) == 0 {
		if ent := e.cache.lookup(e.keyFor(r.App, r.Proc)); ent != nil && ent.err == nil {
			rows = ent.res.Epochs
		}
	}
	if len(rows) == 0 {
		return core.Assessment{}, fmt.Errorf("exp: Requalify %s/%s: no epoch rows (result predates this Env or was never evaluated here)", r.App, r.Proc.Name)
	}
	engine, err := core.NewEngine(e.FP, e.Params, qual)
	if err != nil {
		return core.Assessment{}, err
	}
	engine.SetTimers(e.fitTimers)
	on := power.OnFractions(r.Proc, e.Base)
	for i := range rows {
		row := &rows[i]
		iv := core.Interval{DurationSec: row.Sim.TimeSec}
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			iv.Structures[s] = core.Conditions{
				TempK:      row.TempK[s],
				VddV:       r.Proc.VddV,
				FreqHz:     r.Proc.FreqHz,
				Activity:   row.Sim.Activity[s],
				OnFraction: on[s],
			}
		}
		if err := engine.Observe(iv); err != nil {
			return core.Assessment{}, err
		}
	}
	return engine.Assess()
}

// RequalifyAll requalifies every result against one qualification point
// and returns the assessments in input order. Requalification is
// independent per result (each call builds its own RAMP engine over
// read-only epoch rows), so the batch runs on the same bounded worker
// pool as EvaluateAll; a Select over a full ArchDVS sweep re-assesses
// hundreds of candidates per T_qual and this is its hot loop.
func (e *Env) RequalifyAll(results []Result, qual core.Qualification) ([]core.Assessment, error) {
	return e.RequalifyAllCtx(context.Background(), results, qual)
}

// RequalifyAllCtx is RequalifyAll with cancellation: workers stop
// picking up candidates once ctx is done and the batch returns ctx's
// error instead of partial assessments.
func (e *Env) RequalifyAllCtx(ctx context.Context, results []Result, qual core.Qualification) ([]core.Assessment, error) {
	assessments := make([]core.Assessment, len(results))
	errs := make([]error, len(results))
	//rampvet:ignore ctxflow -- cancellation granularity is the job boundary: runPool checks ctx between candidates, and one Requalify is bounded CPU work
	run := func(i int) { assessments[i], errs[i] = e.Requalify(results[i], qual) }
	if err := runPool(ctx, len(results), run); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: requalify %d (%s/%s): %w", i, results[i].App, results[i].Proc.Name, err)
		}
	}
	return assessments, nil
}

// runPool drains n indexed jobs through a bounded worker pool — never
// more goroutines than can run — stopping early (without waiting for
// unstarted jobs) when ctx is cancelled. It returns ctx's error if the
// pool shut down early, nil once every job has run.
func runPool(ctx context.Context, n int, run func(i int)) error {
	workers := min(n, max(1, runtime.GOMAXPROCS(0)))
	idx := make(chan int)
	var wg sync.WaitGroup
	// Each worker is triply covered for goroleak's purposes: joined via
	// the WaitGroup, bounded by the range over idx (closed by the feeder
	// below), and cancelled by the per-job ctx check.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				run(i)
			}
		}()
	}
	var err error
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}

// EvalJob names one (application, processor, qualification) evaluation.
type EvalJob struct {
	App  trace.Profile
	Proc config.Proc
	Qual core.Qualification
}

// EvaluateAll runs the jobs concurrently (they are independent) and
// returns results in job order. A bounded worker pool — never more
// goroutines than can run — drains a job channel; a full ArchDVS sweep
// queues thousands of jobs without spawning thousands of blocked
// goroutines. The first error (in job order) aborts the batch.
func (e *Env) EvaluateAll(jobs []EvalJob) ([]Result, error) {
	return e.EvaluateAllCtx(context.Background(), jobs)
}

// EvaluateAllCtx is EvaluateAll with cancellation: unstarted jobs are
// never picked up once ctx is done, in-flight simulations stop at their
// next epoch boundary, and the batch returns ctx's error.
func (e *Env) EvaluateAllCtx(ctx context.Context, jobs []EvalJob) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	run := func(i int) { results[i], errs[i] = e.EvaluateCtx(ctx, jobs[i].App, jobs[i].Proc, jobs[i].Qual) }
	if err := runPool(ctx, len(jobs), run); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: job %d (%s/%s): %w", i, jobs[i].App.Name, jobs[i].Proc.Name, err)
		}
	}
	return results, nil
}
