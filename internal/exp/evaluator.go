// Package exp is the experiment harness: it glues the timing simulator,
// power model, thermal model and RAMP together exactly as Section 6.3
// describes, and regenerates every table and figure of the paper's
// evaluation (Section 7).
//
// One Evaluate call reproduces the paper's per-run methodology:
//
//  1. Simulate the application in epochs, collecting per-epoch activity.
//  2. First pass: average power at an assumed temperature initialises
//     the heat-sink steady-state temperature (the sink's RC constant is
//     far larger than any simulated run).
//  3. Second pass: per-epoch block temperatures from the quasi-steady
//     thermal solve with the sink pinned, iterating the
//     leakage-temperature feedback to a fixed point per epoch.
//  4. RAMP folds every epoch's conditions into the application FIT value.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/floorplan"
	"ramp/internal/power"
	"ramp/internal/sim"
	"ramp/internal/stats"
	"ramp/internal/thermal"
	"ramp/internal/trace"
)

// Options controls simulation length and methodology knobs.
type Options struct {
	WarmupInstrs uint64 // instructions simulated before measurement
	EpochInstrs  uint64 // instructions per epoch
	Epochs       int    // measured epochs
	Seed         int64

	// LeakageIters is the number of power<->temperature fixed-point
	// iterations per epoch; SinkPasses the number of heat-sink passes
	// (the paper uses two).
	LeakageIters int
	SinkPasses   int
}

// DefaultOptions returns run lengths that reach cache steady state for
// the built-in workloads while keeping full adaptation sweeps tractable.
func DefaultOptions() Options {
	return Options{
		WarmupInstrs: 300_000,
		EpochInstrs:  100_000,
		Epochs:       6,
		Seed:         1,
		LeakageIters: 4,
		SinkPasses:   2,
	}
}

// QuickOptions returns much shorter runs for tests and benchmarks.
func QuickOptions() Options {
	return Options{
		WarmupInstrs: 60_000,
		EpochInstrs:  40_000,
		Epochs:       3,
		Seed:         1,
		LeakageIters: 3,
		SinkPasses:   2,
	}
}

// Env bundles the shared models of one experimental setup. It is
// immutable after construction and safe for concurrent Evaluate calls.
type Env struct {
	Tech    config.Tech
	Base    config.Proc
	FP      *floorplan.Floorplan
	Power   *power.Model
	Thermal *thermal.Model
	Params  core.Params
	Opts    Options
}

// NewEnv builds the standard environment: 65 nm technology, Table 1 base
// processor, R10000-like floorplan, default power budget and package.
func NewEnv(opts Options) *Env {
	tech := config.Tech65nm()
	fp := floorplan.R10000Like()
	return &Env{
		Tech:    tech,
		Base:    config.Base(),
		FP:      fp,
		Power:   power.NewModel(fp, tech),
		Thermal: thermal.MustNew(fp, thermal.DefaultParams(tech.AmbientK)),
		Params:  core.DefaultParams(core.TCAmbientK),
		Opts:    opts,
	}
}

// NewCustomEnv builds an environment from explicit parts — used by the
// technology-scaling study, which ports the base microarchitecture
// across process nodes with scaled floorplans and power budgets.
func NewCustomEnv(tech config.Tech, base config.Proc, fp *floorplan.Floorplan, budget power.Vector, opts Options) *Env {
	return &Env{
		Tech:    tech,
		Base:    base,
		FP:      fp,
		Power:   power.NewModelWithBudget(fp, tech, budget),
		Thermal: thermal.MustNew(fp, thermal.DefaultParams(tech.AmbientK)),
		Params:  core.DefaultParams(core.TCAmbientK),
		Opts:    opts,
	}
}

// Qualification returns the qualification point for a given T_qual using
// the environment's base operating point and suite activity (Section
// 3.7: V_qual and f_qual are the base processor's, A_qual is the highest
// activity factor across the suite).
func (e *Env) Qualification(tqualK float64) core.Qualification {
	return core.Qualification{
		TqualK:    tqualK,
		VqualV:    e.Base.VddV,
		FqualHz:   e.Base.FreqHz,
		Aqual:     SuiteMaxActivity,
		TargetFIT: core.StandardTargetFIT,
	}
}

// SuiteMaxActivity is A_qual: the highest per-structure activity factor
// observed across the nine-application suite on the base processor
// (measured by TestSuiteMaxActivity; the AGU/LSQ/L1D cluster of the
// highest-IPC multimedia codes sets it).
const SuiteMaxActivity = 0.52

// EpochRow records one epoch's observables.
type EpochRow struct {
	Sim      sim.Result
	PowerW   power.Vector
	TempK    power.Vector
	TotalW   float64
	MaxTempK float64
}

// Result is the outcome of evaluating one (application, configuration)
// pair.
type Result struct {
	App  string
	Proc config.Proc

	IPC      float64
	BIPS     float64
	AvgW     float64
	MaxTempK float64
	AvgTempK float64 // area-weighted average die temperature
	SinkK    float64

	Assessment core.Assessment
	Epochs     []EpochRow
}

// FIT returns the run's total FIT value.
func (r Result) FIT() float64 { return r.Assessment.TotalFIT }

// Evaluate runs app on proc and returns performance, power, thermal and
// reliability results. qual sets the RAMP qualification point.
func (e *Env) Evaluate(app trace.Profile, proc config.Proc, qual core.Qualification) (Result, error) {
	gen, err := trace.NewGenerator(app, e.Opts.Seed)
	if err != nil {
		return Result{}, err
	}
	c, err := sim.New(proc, gen)
	if err != nil {
		return Result{}, err
	}
	if e.Opts.WarmupInstrs > 0 {
		c.Run(e.Opts.WarmupInstrs)
	}
	epochs := make([]EpochRow, e.Opts.Epochs)
	for i := range epochs {
		epochs[i].Sim = c.Run(e.Opts.EpochInstrs)
	}

	on := power.OnFractions(proc, e.Base)

	// Heat-sink passes: estimate average power, derive the sink
	// steady-state temperature, recompute temperatures, repeat.
	sinkK := e.Tech.AmbientK + 30 // initial guess
	var avgW float64
	for pass := 0; pass < max(1, e.Opts.SinkPasses); pass++ {
		var wSum, tSum float64
		for i := range epochs {
			row := &epochs[i]
			row.TempK, row.PowerW = e.epochFixedPoint(row.Sim.Activity, on, proc, sinkK)
			row.TotalW = row.PowerW.Sum()
			_, row.MaxTempK = thermal.MaxBlock(row.TempK)
			wSum += row.TotalW * row.Sim.TimeSec
			tSum += row.Sim.TimeSec
		}
		avgW = wSum / tSum
		sinkK = e.Thermal.SinkSteadyTemp(avgW)
	}

	// RAMP accumulation.
	engine, err := core.NewEngine(e.FP, e.Params, qual)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.App = app.Name
	res.Proc = proc
	var ipcMean, dieTempMean stats.Mean
	var timeSum, retired float64
	for i := range epochs {
		row := &epochs[i]
		iv := core.Interval{DurationSec: row.Sim.TimeSec}
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			iv.Structures[s] = core.Conditions{
				TempK:      row.TempK[s],
				VddV:       proc.VddV,
				FreqHz:     proc.FreqHz,
				Activity:   row.Sim.Activity[s],
				OnFraction: on[s],
			}
		}
		if err := engine.Observe(iv); err != nil {
			return Result{}, err
		}
		timeSum += row.Sim.TimeSec
		retired += float64(row.Sim.Retired)
		ipcMean.AddWeighted(row.Sim.IPC, row.Sim.TimeSec)
		if row.MaxTempK > res.MaxTempK {
			res.MaxTempK = row.MaxTempK
		}
		var at float64
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			at += row.TempK[s] * e.FP.AreaFraction(s)
		}
		dieTempMean.AddWeighted(at, row.Sim.TimeSec)
	}
	res.IPC = ipcMean.Value()
	res.BIPS = retired / timeSum / 1e9
	res.AvgW = avgW
	res.AvgTempK = dieTempMean.Value()
	res.SinkK = sinkK
	res.Assessment, err = engine.Assess()
	if err != nil {
		return Result{}, err
	}
	res.Epochs = epochs
	return res, nil
}

// EpochConditions iterates the leakage-temperature feedback for one
// epoch — temperatures determine leakage, leakage determines power,
// power determines temperatures — and returns the per-structure
// temperatures and powers. It is the building block reactive controllers
// use to evaluate epochs online.
func (e *Env) EpochConditions(activity [floorplan.NumStructures]float64, on power.Vector, proc config.Proc, sinkK float64) (temps, pw power.Vector) {
	return e.epochFixedPoint(activity, on, proc, sinkK)
}

// epochFixedPoint iterates the leakage-temperature feedback for one
// epoch: temperatures determine leakage, leakage determines power,
// power determines temperatures.
func (e *Env) epochFixedPoint(activity [floorplan.NumStructures]float64, on power.Vector, proc config.Proc, sinkK float64) (temps, pw power.Vector) {
	var act power.Vector
	copy(act[:], activity[:])
	temps = power.Uniform(sinkK + 15)
	iters := max(1, e.Opts.LeakageIters)
	for i := 0; i < iters; i++ {
		pw = e.Power.Compute(act, on, temps, proc.VddV, proc.FreqHz)
		temps = e.Thermal.QuasiSteady(pw, sinkK)
	}
	return temps, pw
}

// Requalify recomputes the RAMP assessment of an existing Result under a
// different qualification point, reusing the stored per-epoch simulation
// and thermal data. Simulation, power and temperature do not depend on
// the qualification point, so exploring many T_qual values only needs one
// Evaluate per (application, configuration).
func (e *Env) Requalify(r Result, qual core.Qualification) (core.Assessment, error) {
	engine, err := core.NewEngine(e.FP, e.Params, qual)
	if err != nil {
		return core.Assessment{}, err
	}
	on := power.OnFractions(r.Proc, e.Base)
	for i := range r.Epochs {
		row := &r.Epochs[i]
		iv := core.Interval{DurationSec: row.Sim.TimeSec}
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			iv.Structures[s] = core.Conditions{
				TempK:      row.TempK[s],
				VddV:       r.Proc.VddV,
				FreqHz:     r.Proc.FreqHz,
				Activity:   row.Sim.Activity[s],
				OnFraction: on[s],
			}
		}
		if err := engine.Observe(iv); err != nil {
			return core.Assessment{}, err
		}
	}
	return engine.Assess()
}

// EvalJob names one (application, processor, qualification) evaluation.
type EvalJob struct {
	App  trace.Profile
	Proc config.Proc
	Qual core.Qualification
}

// EvaluateAll runs the jobs concurrently (they are independent) and
// returns results in job order. The first error aborts the batch.
func (e *Env) EvaluateAll(jobs []EvalJob) ([]Result, error) {
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = e.Evaluate(jobs[i].App, jobs[i].Proc, jobs[i].Qual)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exp: job %d (%s/%s): %w", i, jobs[i].App.Name, jobs[i].Proc.Name, err)
		}
	}
	return results, nil
}
