package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"ramp/internal/trace"
)

// cancelOptions returns many tiny epochs so a cancelled context is
// noticed quickly (the epoch boundary is the cancellation check point)
// while the full run still takes long enough to cancel mid-flight.
func cancelOptions() Options {
	o := QuickOptions()
	o.WarmupInstrs = 5_000
	o.EpochInstrs = 10_000
	o.Epochs = 40
	return o
}

func TestEvaluateCtxAlreadyCancelled(t *testing.T) {
	env := NewEnv(cancelOptions())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := env.EvaluateCtx(ctx, trace.Twolf(), env.Base, env.Qualification(400))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (want context.Canceled)", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancelled call took %v (want immediate return)", d)
	}
	if st := env.CacheStats(); st.Entries != 0 {
		t.Errorf("cancelled call left %d cache entries", st.Entries)
	}
}

func TestEvaluateCtxCancelMidRunReturnsPromptly(t *testing.T) {
	env := NewEnv(cancelOptions())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := env.EvaluateCtx(ctx, trace.Twolf(), env.Base, env.Qualification(400))
		errc <- err
	}()
	// Let the simulation get going, then cancel. The check runs at every
	// epoch boundary (10k instructions), so the return must be fast.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v (want context.Canceled)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled evaluation never returned")
	}

	// The abandoned flight must not poison the cache: a fresh call
	// simulates successfully.
	if _, err := env.Evaluate(trace.Twolf(), env.Base, env.Qualification(400)); err != nil {
		t.Fatalf("evaluate after cancellation: %v", err)
	}
	st := env.CacheStats()
	if st.Entries != 1 {
		t.Errorf("cache entries = %d (want 1)", st.Entries)
	}
}

// TestEvaluateCtxWaiterSurvivesLeaderCancellation joins a second caller
// onto an in-flight evaluation, cancels the leader, and requires the
// waiter to retake leadership and finish the job.
func TestEvaluateCtxWaiterSurvivesLeaderCancellation(t *testing.T) {
	env := NewEnv(cancelOptions())
	qual := env.Qualification(400)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	leaderErr := make(chan error, 1)
	go func() {
		_, err := env.EvaluateCtx(leaderCtx, trace.Twolf(), env.Base, qual)
		leaderErr <- err
	}()
	// Wait for the leader's flight to appear in the cache.
	deadline := time.Now().Add(10 * time.Second)
	for env.CacheStats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader flight never started")
		}
		time.Sleep(time.Millisecond)
	}

	waiterRes := make(chan error, 1)
	go func() {
		_, err := env.EvaluateCtx(context.Background(), trace.Twolf(), env.Base, qual)
		waiterRes <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the flight
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v (want context.Canceled)", err)
	}
	select {
	case err := <-waiterRes:
		if err != nil {
			t.Fatalf("waiter err = %v (want success after retaking leadership)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter never completed")
	}
	if st := env.CacheStats(); st.Entries != 1 {
		t.Errorf("cache entries = %d (want 1 completed flight)", st.Entries)
	}
}

func TestEvaluateAllCtxCancelledAbortsBatch(t *testing.T) {
	env := NewEnv(cancelOptions())
	qual := env.Qualification(400)
	var jobs []EvalJob
	for _, app := range trace.Apps() {
		jobs = append(jobs, EvalJob{App: app, Proc: env.Base, Qual: qual})
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := env.EvaluateAllCtx(ctx, jobs)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v (want context.Canceled)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch never returned")
	}
}

func TestRequalifyAllCtxCancelled(t *testing.T) {
	env := NewEnv(QuickOptions())
	res, err := env.Evaluate(trace.Twolf(), env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := []Result{res, res, res}
	if _, err := env.RequalifyAllCtx(ctx, results, env.Qualification(345)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v (want context.Canceled)", err)
	}
}

func TestEvaluateDeadlineExceeded(t *testing.T) {
	env := NewEnv(cancelOptions())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := env.EvaluateCtx(ctx, trace.Twolf(), env.Base, env.Qualification(400))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (want context.DeadlineExceeded)", err)
	}
}
