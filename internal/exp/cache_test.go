package exp

import (
	"math"
	"testing"

	"ramp/internal/trace"
)

// sameAggregates compares every scalar aggregate bitwise (==, no
// epsilon): the cache must return exactly what a cold run computes.
func sameAggregates(t *testing.T, label string, a, b Result) {
	t.Helper()
	pairs := [][2]float64{
		{a.IPC, b.IPC},
		{a.BIPS, b.BIPS},
		{a.AvgW, b.AvgW},
		{a.MaxTempK, b.MaxTempK},
		{a.AvgTempK, b.AvgTempK},
		{a.SinkK, b.SinkK},
		{a.Assessment.TotalFIT, b.Assessment.TotalFIT},
	}
	for i, p := range pairs {
		if p[0] != p[1] {
			t.Fatalf("%s: aggregate %d differs: %v vs %v", label, i, p[0], p[1])
		}
	}
	if a.Assessment.FIT != b.Assessment.FIT {
		t.Fatalf("%s: per-structure/mechanism FIT matrix differs", label)
	}
}

func TestCacheHitBitwiseIdenticalToColdRun(t *testing.T) {
	app := trace.Twolf()
	coldEnv := quickEnv()
	qual := coldEnv.Qualification(400)
	cold, err := coldEnv.Evaluate(app, coldEnv.Base, qual)
	if err != nil {
		t.Fatal(err)
	}

	env := quickEnv()
	if _, err := env.Evaluate(app, env.Base, qual); err != nil {
		t.Fatal(err)
	}
	hit, err := env.Evaluate(app, env.Base, qual)
	if err != nil {
		t.Fatal(err)
	}
	if env.CachedEvaluations() != 1 {
		t.Fatalf("cached evaluations = %d, want 1", env.CachedEvaluations())
	}
	sameAggregates(t, "same qual", cold, hit)
}

func TestCacheHitRequalifiesBitwiseIdentically(t *testing.T) {
	// A cache hit at a different T_qual must equal a cold run at that
	// T_qual: the requalification path re-derives the assessment from
	// the cached epoch rows through the same engine code.
	app := trace.Gzip()
	coldEnv := quickEnv()
	cold, err := coldEnv.Evaluate(app, coldEnv.Base, coldEnv.Qualification(345))
	if err != nil {
		t.Fatal(err)
	}

	env := quickEnv()
	if _, err := env.Evaluate(app, env.Base, env.Qualification(400)); err != nil {
		t.Fatal(err)
	}
	hit, err := env.Evaluate(app, env.Base, env.Qualification(345))
	if err != nil {
		t.Fatal(err)
	}
	if env.CachedEvaluations() != 1 {
		t.Fatalf("cached evaluations = %d, want 1", env.CachedEvaluations())
	}
	sameAggregates(t, "cross qual", cold, hit)
}

func TestCacheKeyIgnoresCosmeticName(t *testing.T) {
	// The base machine reappears in DVS/ArchDVS candidate lists under a
	// grid-point name; the identical configuration must not simulate
	// twice.
	env := quickEnv()
	qual := env.Qualification(400)
	app := trace.Bzip2()
	r1, err := env.Evaluate(app, env.Base, qual)
	if err != nil {
		t.Fatal(err)
	}
	renamed := env.Base.WithOperatingPoint(env.Base.FreqHz)
	if renamed.VddV != env.Base.VddV {
		t.Fatalf("operating point changed voltage: %v vs %v", renamed.VddV, env.Base.VddV)
	}
	r2, err := env.Evaluate(app, renamed, qual)
	if err != nil {
		t.Fatal(err)
	}
	if env.CachedEvaluations() != 1 {
		t.Fatalf("cached evaluations = %d, want 1 (rename must not re-simulate)", env.CachedEvaluations())
	}
	if r2.Proc.Name != renamed.Name {
		t.Fatalf("hit reports stored name %q, want caller's %q", r2.Proc.Name, renamed.Name)
	}
	sameAggregates(t, "renamed config", r1, r2)
}

func TestDropEpochRows(t *testing.T) {
	opts := QuickOptions()
	opts.DropEpochRows = true
	env := NewEnv(opts)
	app := trace.Art()
	r, err := env.Evaluate(app, env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs != nil {
		t.Fatalf("DropEpochRows left %d epoch rows on the result", len(r.Epochs))
	}

	// Requalify must still work, fed from the cache's retained rows, and
	// match a full-rows environment bitwise.
	a, err := env.Requalify(r, env.Qualification(345))
	if err != nil {
		t.Fatal(err)
	}
	full := quickEnv()
	rf, err := full.Evaluate(app, full.Base, full.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Requalify(rf, full.Qualification(345))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFIT != want.TotalFIT {
		t.Fatalf("requalified FIT %v != %v from full-rows env", a.TotalFIT, want.TotalFIT)
	}
}

func TestRequalifyForeignResultErrors(t *testing.T) {
	env := quickEnv()
	r := Result{App: "gzip", Proc: env.Base} // no rows, never evaluated here
	if _, err := env.Requalify(r, env.Qualification(400)); err == nil {
		t.Fatal("Requalify of a rowless foreign result should error")
	}
}

func TestAdaptiveFixedPointPreservesResults(t *testing.T) {
	// The default tolerance may only perturb results far below reported
	// precision; compare against the exact fixed-iteration run.
	exact := QuickOptions()
	exact.TolK = 0
	exactEnv := NewEnv(exact)
	adaptEnv := quickEnv() // default TolK
	app := trace.MP3dec()
	qual := exactEnv.Qualification(400)
	re, err := exactEnv.Evaluate(app, exactEnv.Base, qual)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := adaptEnv.Evaluate(app, adaptEnv.Base, qual)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(re.MaxTempK - ra.MaxTempK); d > 10*DefaultTolK {
		t.Fatalf("adaptive exit moved max temperature by %v K", d)
	}
	if re.FIT() == 0 {
		t.Fatal("zero FIT")
	}
	if rel := math.Abs(re.FIT()-ra.FIT()) / re.FIT(); rel > 1e-6 {
		t.Fatalf("adaptive exit moved FIT by %v relative", rel)
	}
	if re.BIPS != ra.BIPS {
		t.Fatal("fixed point must not affect performance")
	}
}

func TestEvaluateAllEmptyAndDuplicates(t *testing.T) {
	env := quickEnv()
	if res, err := env.EvaluateAll(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	qual := env.Qualification(400)
	app := trace.Twolf()
	jobs := []EvalJob{
		{App: app, Proc: env.Base, Qual: qual},
		{App: app, Proc: env.Base, Qual: qual},
		{App: app, Proc: env.Base, Qual: qual},
		{App: app, Proc: env.Base.WithOperatingPoint(3e9), Qual: qual},
	}
	res, err := env.EvaluateAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if env.CachedEvaluations() != 2 {
		t.Fatalf("cached evaluations = %d, want 2 (duplicates must share)", env.CachedEvaluations())
	}
	sameAggregates(t, "duplicate jobs", res[0], res[1])
	sameAggregates(t, "duplicate jobs", res[0], res[2])
	if res[3].Proc.FreqHz != 3e9 {
		t.Fatalf("job order broken: %v", res[3].Proc.Name)
	}
}
