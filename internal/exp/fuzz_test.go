package exp

// Fuzz coverage for the evaluation-cache key: key equality must hold
// exactly when two (application, configuration) pairs are semantically
// identical — i.e. same app and same Proc after clearing the cosmetic
// Name field. A false merge would return one configuration's reliability
// numbers for another; a false split would silently duplicate
// simulations and break the serve layer's singleflight guarantee.
//
//	go test -fuzz FuzzCacheKey -fuzztime 30s ./internal/exp/
import (
	"testing"

	"ramp/internal/config"
)

// fuzzProc perturbs the base processor along the same axes the Arch/DVS
// adaptation space explores, plus the cosmetic Name.
func fuzzProc(name string, freqCode uint8, window uint8, alus, fpus uint8) config.Proc {
	p := config.Base()
	p.Name = name
	// Frequency on the DVS grid shape: 2.5 + k*0.125 GHz.
	p.FreqHz = 2.5e9 + float64(freqCode%21)*0.125e9
	p.VddV = config.VoltageForFreq(p.FreqHz)
	p.WindowSize = 16 * (1 + int(window%8)) // 16..128
	p.IntRegs = p.WindowSize + p.WindowSize/2
	p.FPRegs = p.IntRegs
	p.IntALUs = 1 + int(alus%6)
	p.FPUs = 1 + int(fpus%4)
	return p
}

func FuzzCacheKey(f *testing.F) {
	f.Add("twolf", "base", "w128", uint8(12), uint8(7), uint8(5), uint8(3), uint8(12), uint8(7), uint8(5), uint8(3))
	f.Add("twolf", "twolf", "", uint8(0), uint8(0), uint8(0), uint8(0), uint8(20), uint8(3), uint8(1), uint8(0))
	f.Add("gzip", "a", "b", uint8(4), uint8(2), uint8(2), uint8(1), uint8(4), uint8(2), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, app1, name1, name2 string,
		freq1, win1, alu1, fpu1 uint8,
		freq2, win2, alu2, fpu2 uint8) {

		env := NewEnv(QuickOptions())
		p1 := fuzzProc(name1, freq1, win1, alu1, fpu1)
		p2 := fuzzProc(name2, freq2, win2, alu2, fpu2)

		k1 := env.keyFor(app1, p1)
		k2 := env.keyFor(app1, p2)

		p1.Name, p2.Name = "", ""
		semEqual := p1 == p2
		if (k1 == k2) != semEqual {
			t.Fatalf("key equality %v but semantic equality %v\np1=%+v\np2=%+v",
				k1 == k2, semEqual, p1, p2)
		}

		// Name must never influence the key: the base machine and the
		// identically-configured sweep point must memoize together.
		renamed := p1
		renamed.Name = name2 + "-renamed"
		if env.keyFor(app1, p1) != env.keyFor(app1, renamed) {
			t.Fatal("cosmetic Name change altered the cache key")
		}

		// Distinct applications must never share a key, even on identical
		// hardware.
		if app1 != app1+"x" {
			if env.keyFor(app1, p1) == env.keyFor(app1+"x", p1) {
				t.Fatal("distinct apps share a cache key")
			}
		}

		// Options are part of the key: the same point evaluated under
		// different run lengths or seeds is a different simulation.
		longer := QuickOptions()
		longer.Seed++
		env2 := NewEnv(longer)
		if env.keyFor(app1, p1) == env2.keyFor(app1, p1) {
			t.Fatal("different seeds share a cache key")
		}
	})
}
