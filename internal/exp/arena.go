package exp

import (
	"sync"

	"ramp/internal/config"
	"ramp/internal/sim"
	"ramp/internal/trace"
)

// evalArena is the per-worker scratch state of one uncached evaluation:
// a pooled simulator core, one trace generator per application profile,
// and a reusable epoch-row buffer. Arenas live in the Env's sync.Pool,
// so concurrent EvaluateAll workers each hold their own arena and the
// buffers are reused — not reallocated — across the hundreds of
// evaluations of a sweep.
//
// Aliasing rules:
//
//   - Everything in the arena is scratch owned by exactly one in-flight
//     evaluate call; nothing here may be referenced by a returned or
//     cached Result.
//   - The epoch rows the evaluation pipeline fills are arena scratch;
//     the Result (and therefore the cache) receives a compact copy, so
//     cached Result.Epochs have no live aliases and stay valid forever.
//     Callers (and Requalify) must still treat them as read-only.
//   - Generators are keyed by profile name: within one Env, equal names
//     must mean equal profiles — the same assumption the evaluation
//     cache already makes by keying on app.Name.
type evalArena struct {
	core *sim.Core
	gens map[string]*trace.Generator
	rows []EpochRow
}

// getArena pops an arena from the Env's pool, building one on first use
// (the pool's zero value needs no constructor).
func (e *Env) getArena() *evalArena {
	if a, _ := e.arenas.Get().(*evalArena); a != nil {
		return a
	}
	return &evalArena{gens: make(map[string]*trace.Generator)}
}

// putArena returns an arena to the pool once its evaluation finished.
func (e *Env) putArena(a *evalArena) { e.arenas.Put(a) }

// generator returns a generator for app positioned at the start of its
// stream: the pooled one reset in place when this arena has evaluated
// app before (allocation-free), a fresh one otherwise.
//
//ramp:hot
func (a *evalArena) generator(app trace.Profile, seed int64) (*trace.Generator, error) {
	if g := a.gens[app.Name]; g != nil {
		if err := g.Reset(app, seed); err != nil {
			return nil, err
		}
		return g, nil
	}
	g, err := trace.NewGenerator(app, seed)
	if err != nil {
		return nil, err
	}
	a.gens[app.Name] = g
	return g, nil
}

// coreFor returns a simulator core for (proc, gen): the pooled one
// reset in place when the arena has one (reusing every buffer whose
// shape matches proc), a fresh one on first use.
//
//ramp:hot
func (a *evalArena) coreFor(proc config.Proc, gen sim.Source) (*sim.Core, error) {
	if a.core != nil {
		if err := a.core.Reset(proc, gen); err != nil {
			return nil, err
		}
		return a.core, nil
	}
	c, err := sim.New(proc, gen)
	if err != nil {
		return nil, err
	}
	a.core = c
	return c, nil
}

// epochRows returns a zeroed n-row scratch slice backed by the arena.
// The rows are valid only until the evaluation returns; results must
// copy them (see the aliasing rules above).
//
//ramp:hot
func (a *evalArena) epochRows(n int) []EpochRow {
	if cap(a.rows) < n {
		a.grow(n)
	}
	rows := a.rows[:n]
	clear(rows)
	return rows
}

// grow is epochRows' cold path, split out so the hot path stays free of
// allocation sites.
func (a *evalArena) grow(n int) { a.rows = make([]EpochRow, n) }

// arenaPool is the Env field type; a named type keeps the Env struct
// declaration readable.
type arenaPool = sync.Pool
