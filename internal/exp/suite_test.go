package exp

import (
	"testing"

	"ramp/internal/trace"
)

// TestEvaluateSuite checks the suite helper: nine results in paper
// order, each matching a direct Evaluate of the same application (the
// cache guarantees one simulation per app either way).
func TestEvaluateSuite(t *testing.T) {
	env := NewEnv(QuickOptions())
	qual := env.Qualification(400)
	results, err := env.EvaluateSuite(qual)
	if err != nil {
		t.Fatal(err)
	}
	apps := trace.Apps()
	if len(results) != len(apps) {
		t.Fatalf("suite returned %d results, want %d", len(results), len(apps))
	}
	for i, app := range apps {
		if results[i].App != app.Name {
			t.Fatalf("result %d is %s, want %s", i, results[i].App, app.Name)
		}
		direct, err := env.Evaluate(app, env.Base, qual)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].FIT() != direct.FIT() || results[i].IPC != direct.IPC {
			t.Fatalf("%s: suite result differs from direct Evaluate", app.Name)
		}
	}
	if got := env.CachedEvaluations(); got != len(apps) {
		t.Fatalf("suite simulated %d points, want %d", got, len(apps))
	}
}
