package exp

import (
	"bytes"
	"testing"

	"ramp/internal/obs"
	"ramp/internal/trace"
)

// TestInstrumentedEvaluateIdentical proves instrumentation is purely
// observational: an instrumented environment produces the same Result
// as an uninstrumented one, while recording spans and metrics.
func TestInstrumentedEvaluateIdentical(t *testing.T) {
	app := trace.MP3dec()

	plainEnv := NewEnv(QuickOptions())
	want, err := plainEnv.Evaluate(app, plainEnv.Base, plainEnv.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	env := NewEnv(QuickOptions()).Instrument(tr, reg)
	got, err := env.Evaluate(app, env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}

	if got.Assessment != want.Assessment {
		t.Errorf("instrumented assessment diverges:\nplain: %+v\ninstr: %+v", want.Assessment, got.Assessment)
	}
	if got.IPC != want.IPC || got.BIPS != want.BIPS || got.AvgW != want.AvgW ||
		got.MaxTempK != want.MaxTempK || got.AvgTempK != want.AvgTempK || got.SinkK != want.SinkK {
		t.Errorf("instrumented scalars diverge:\nplain: %+v\ninstr: %+v", want, got)
	}

	// Spans: one evaluation, warmup, per-epoch sim spans, per-pass
	// fixed-point spans, assessment.
	names := map[string]int{}
	for _, ev := range tr.Events() {
		names[ev.Name]++
	}
	opts := QuickOptions()
	wantSpans := map[string]int{
		"exp.evaluate":     1,
		"sim.warmup":       1,
		"sim.epoch":        opts.Epochs,
		"thermal.sinkpass": opts.SinkPasses,
		"exp.fixedpoint":   opts.Epochs * opts.SinkPasses,
		"ramp.assess":      1,
	}
	for name, want := range wantSpans {
		if names[name] != want {
			t.Errorf("span %q count = %d, want %d (all: %v)", name, names[name], want, names)
		}
	}

	// The exported trace must satisfy the Chrome schema contract.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Errorf("evaluation trace invalid: %v", err)
	}

	// Metrics: counts must match the run shape.
	if got := reg.Counter(MetricEpochs).Value(); got != int64(opts.Epochs) {
		t.Errorf("epochs counter = %d, want %d", got, opts.Epochs)
	}
	if got := reg.Counter(MetricEvaluations).Value(); got != 1 {
		t.Errorf("evaluations counter = %d, want 1", got)
	}
	if got := reg.Histogram(MetricFixedpointIter).Count(); got != int64(opts.Epochs*opts.SinkPasses) {
		t.Errorf("fixed-point histogram count = %d, want %d", got, opts.Epochs*opts.SinkPasses)
	}
	if reg.Histogram(MetricFixedpointIter).Sum() <= 0 {
		t.Error("fixed-point histogram recorded no iterations")
	}
	if reg.Counter(MetricSimRetired).Value() <= 0 || reg.Counter(MetricSimCycles).Value() <= 0 {
		t.Error("sim counters empty")
	}
	if reg.Counter(MetricThermalSolves).Value() <= 0 {
		t.Error("thermal solve counter empty")
	}
	if reg.Histogram(MetricEvaluateUS).Count() != 1 {
		t.Error("evaluate latency histogram not recorded")
	}
	for _, name := range []string{
		"core_fit_compute_ns_em", "core_fit_compute_ns_sm",
		"core_fit_compute_ns_tddb", "core_fit_compute_ns_tc",
	} {
		if reg.Counter(name).Value() <= 0 {
			t.Errorf("%s recorded no time", name)
		}
	}
}

func TestCacheCounters(t *testing.T) {
	reg := obs.NewRegistry()
	env := NewEnv(QuickOptions()).Instrument(nil, reg)
	app := trace.Twolf()
	qual := env.Qualification(400)
	if _, err := env.Evaluate(app, env.Base, qual); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Evaluate(app, env.Base, qual); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricCacheMisses).Value(); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	if got := reg.Counter(MetricCacheHits).Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := reg.Gauge(MetricCacheEntries).Value(); got != 1 {
		t.Errorf("cache entries = %d, want 1", got)
	}
}

// TestUninstrumentedEnvRecordsNothing pins the default: a plain NewEnv
// must not require Instrument and must not record anywhere.
func TestUninstrumentedEnvRecordsNothing(t *testing.T) {
	env := NewEnv(QuickOptions())
	if env.Trace != nil || env.Metrics != nil {
		t.Fatal("fresh env unexpectedly instrumented")
	}
	if _, err := env.Evaluate(trace.Twolf(), env.Base, env.Qualification(400)); err != nil {
		t.Fatal(err)
	}
}
