// Package check is RAMP's runtime invariant layer: executable
// assertions for the physics invariants the lifetime math depends on —
// temperatures in plausible Kelvin range, probabilities in [0,1], FIT
// values non-negative and finite, DVS operating points within bounds.
//
// The package has two personalities selected by the `rampdebug` build
// tag:
//
//   - Default build: every function is an empty no-op that the compiler
//     inlines away. Instrumented hot paths (core.Rate,
//     thermal.QuasiSteady, power.Compute, ...) pay nothing — zero time,
//     zero allocations (verified by TestNoOpAllocs).
//   - `go build -tags rampdebug` / `go test -tags rampdebug`: every
//     function verifies its invariant and panics with the failing site
//     and value on violation.
//
// The static half of this contract is cmd/rampvet: rampvet proves at
// analysis time what it can (unguarded Arrhenius denominators, Celsius
// constants flowing into Kelvin parameters), and check verifies at run
// time what static analysis cannot (values computed from data).
//
// Convention: `site` is a short dotted path naming the instrumented
// location ("core.Params.Rate", "thermal.QuasiSteady") so a violation
// panic identifies the site without a debugger.
package check

// Plausible silicon/package temperature bounds (Kelvin) enforced by
// TempK. The model's coldest point is a powered-off package at room
// temperature (~293 K) and the paper's hottest runs peak near 400 K;
// anything outside [MinPlausibleK, MaxPlausibleK] means a unit error
// (Celsius leaking into a Kelvin path) or a diverged solver.
const (
	MinPlausibleK = 200
	MaxPlausibleK = 1200
)

// Enabled reports whether invariant checking is compiled in (true only
// under the rampdebug build tag).
const Enabled = enabled
