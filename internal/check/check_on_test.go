//go:build rampdebug

package check_test

import (
	"math"
	"strings"
	"testing"

	"ramp/internal/check"
)

// mustPanic runs f and asserts it panics with a message containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestEnabled(t *testing.T) {
	if !check.Enabled {
		t.Fatal("check.Enabled false under the rampdebug build tag")
	}
}

func TestValidValuesPass(t *testing.T) {
	check.Assert(true, "t", "fine")
	check.Finite("t", 1.5)
	check.NonNegative("t", 0)
	check.Probability("t", 0)
	check.Probability("t", 1)
	check.TempK("t", 293)
	check.TempK("t", 400)
	check.InRange("t", 3.0e9, 2.5e9, 5.0e9)
}

func TestViolationsFire(t *testing.T) {
	mustPanic(t, "assertion failed", func() { check.Assert(false, "site.a", "boom") })
	mustPanic(t, "non-finite", func() { check.Finite("site.f", math.NaN()) })
	mustPanic(t, "non-finite", func() { check.Finite("site.f", math.Inf(-1)) })
	mustPanic(t, "non-negative", func() { check.NonNegative("site.n", -0.001) })
	mustPanic(t, "non-negative", func() { check.NonNegative("site.n", math.NaN()) })
	mustPanic(t, "out of [0,1]", func() { check.Probability("site.p", -0.1) })
	mustPanic(t, "out of [0,1]", func() { check.Probability("site.p", math.NaN()) })
	mustPanic(t, "implausible temperature", func() { check.TempK("site.t", 25) })
	mustPanic(t, "implausible temperature", func() { check.TempK("site.t", 5000) })
	mustPanic(t, "out of", func() { check.InRange("site.r", 6.0e9, 2.5e9, 5.0e9) })
}

// TestSiteInMessage verifies the panic names the instrumented site, the
// property that makes a field failure diagnosable without a debugger.
func TestSiteInMessage(t *testing.T) {
	mustPanic(t, "thermal.QuasiSteady", func() { check.TempK("thermal.QuasiSteady", 25) })
}
