//go:build !rampdebug

package check

const enabled = false

// Assert does nothing in the default build.
func Assert(cond bool, site, msg string) {}

// Finite does nothing in the default build.
func Finite(site string, v float64) {}

// NonNegative does nothing in the default build.
func NonNegative(site string, v float64) {}

// Probability does nothing in the default build.
func Probability(site string, v float64) {}

// TempK does nothing in the default build.
func TempK(site string, v float64) {}

// InRange does nothing in the default build.
func InRange(site string, v, lo, hi float64) {}
