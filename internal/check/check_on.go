//go:build rampdebug

package check

import (
	"fmt"
	"math"
)

const enabled = true

// Assert panics with site and msg if cond is false.
func Assert(cond bool, site, msg string) {
	if !cond {
		panic(fmt.Sprintf("check: %s: assertion failed: %s", site, msg))
	}
}

// Finite panics if v is NaN or ±Inf.
func Finite(site string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("check: %s: non-finite value %v", site, v))
	}
}

// NonNegative panics if v is negative, NaN or +Inf. Failure rates, FIT
// values, power draws and sampled lifetimes must all satisfy this.
func NonNegative(site string, v float64) {
	if !(v >= 0) || math.IsInf(v, 1) {
		panic(fmt.Sprintf("check: %s: expected finite non-negative value, got %v", site, v))
	}
}

// Probability panics unless v is in [0, 1]. Survival functions,
// activity factors and on-fractions must all satisfy this.
func Probability(site string, v float64) {
	if !(v >= 0 && v <= 1) {
		panic(fmt.Sprintf("check: %s: probability %v out of [0,1]", site, v))
	}
}

// TempK panics unless v is a plausible absolute temperature in
// [MinPlausibleK, MaxPlausibleK] — the guard against Celsius values (or
// diverged thermal solves) reaching an Arrhenius exponential.
func TempK(site string, v float64) {
	if !(v >= MinPlausibleK && v <= MaxPlausibleK) {
		panic(fmt.Sprintf("check: %s: implausible temperature %v K (want [%v, %v])", site, v, float64(MinPlausibleK), float64(MaxPlausibleK)))
	}
}

// InRange panics unless lo <= v <= hi. Used for operating-point bounds
// (DVS voltage and frequency windows).
func InRange(site string, v, lo, hi float64) {
	if !(v >= lo && v <= hi) {
		panic(fmt.Sprintf("check: %s: value %v out of [%v, %v]", site, v, lo, hi))
	}
}
