//go:build !rampdebug

package check_test

import (
	"math"
	"testing"

	"ramp/internal/check"
)

// violate exercises every check with violating values; in the default
// build all of them must be silent no-ops.
func violate() {
	check.Assert(false, "test.site", "should not fire")
	check.Finite("test.site", math.NaN())
	check.Finite("test.site", math.Inf(1))
	check.NonNegative("test.site", -1)
	check.Probability("test.site", 1.5)
	check.TempK("test.site", 25) // the classic Celsius bug
	check.InRange("test.site", 99, 0, 1)
}

func TestDisabledByDefault(t *testing.T) {
	if check.Enabled {
		t.Fatal("check.Enabled true without the rampdebug build tag")
	}
	violate() // must not panic
}

// TestNoOpAllocs proves the disabled checks cost nothing on hot paths:
// the empty bodies inline and the argument lists allocate nothing.
func TestNoOpAllocs(t *testing.T) {
	if n := testing.AllocsPerRun(1000, violate); n != 0 {
		t.Fatalf("disabled checks allocated %v times per run, want 0", n)
	}
}

func BenchmarkDisabledChecks(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		check.NonNegative("bench.site", float64(i))
		check.TempK("bench.site", 350)
		check.Probability("bench.site", 0.5)
	}
}
