package thermal

import (
	"math"
	"math/rand"
	"testing"

	"ramp/internal/floorplan"
	"ramp/internal/power"
)

// The production solves run against matrices factorized once at New
// time. These tests check every factorized path against the original
// one-shot Gaussian elimination (the retained dense type), assembling
// the same systems the pre-factorization code assembled per call.

// refQuasiSteady solves the pinned-sink system with the dense oracle.
func refQuasiSteady(m *Model, blockPower power.Vector, sinkTempK float64) power.Vector {
	n := m.n - 1
	a := newDense(n)
	b := make([]float64, n)
	sink := m.sinkIndex()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			g := m.g[i][j]
			if g != 0 {
				a.add(i, i, g)
				a.add(i, j, -g)
			}
		}
		if g := m.g[i][sink]; g != 0 {
			a.add(i, i, g)
			b[i] += g * sinkTempK
		}
	}
	for s := 0; s < int(floorplan.NumStructures); s++ {
		b[s] += blockPower[s]
	}
	t := a.solve(b)
	var out power.Vector
	copy(out[:], t[:floorplan.NumStructures])
	return out
}

// refSteadyState solves the full network with the dense oracle.
func refSteadyState(m *Model, blockPower power.Vector) []float64 {
	a := newDense(m.n)
	b := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j {
				continue
			}
			g := m.g[i][j]
			if g != 0 {
				a.add(i, i, g)
				a.add(i, j, -g)
			}
		}
	}
	sink := m.sinkIndex()
	a.add(sink, sink, m.gSinkA)
	b[sink] += m.gSinkA * m.p.AmbientK
	for s := 0; s < int(floorplan.NumStructures); s++ {
		b[s] += blockPower[s]
	}
	return a.solve(b)
}

// randomPower draws a power vector with per-block draws spanning idle to
// well above budget, so pivoting sees varied right-hand sides.
func randomPower(rng *rand.Rand) power.Vector {
	var pw power.Vector
	for i := range pw {
		pw[i] = 8 * rng.Float64()
	}
	return pw
}

func TestPrefactorizedQuasiSteadyMatchesGaussianElimination(t *testing.T) {
	m := model()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pw := randomPower(rng)
		sinkK := 320 + 80*rng.Float64()
		got := m.QuasiSteady(pw, sinkK)
		want := refQuasiSteady(m, pw, sinkK)
		for s := range got {
			if d := math.Abs(got[s] - want[s]); d > 1e-9 {
				t.Fatalf("trial %d block %d: LU %v vs GE %v (|Δ| = %v)", trial, s, got[s], want[s], d)
			}
		}
	}
}

func TestPrefactorizedSteadyStateMatchesGaussianElimination(t *testing.T) {
	m := model()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		pw := randomPower(rng)
		got := m.SteadyState(pw)
		want := refSteadyState(m, pw)
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("trial %d node %d: LU %v vs GE %v (|Δ| = %v)", trial, i, got[i], want[i], d)
			}
		}
	}
}

// refStep advances one implicit-Euler step with the dense oracle,
// mirroring the pre-factorization Step implementation.
func refStep(m *Model, temps []float64, blockPower power.Vector, dt float64) []float64 {
	a := newDense(m.n)
	b := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j {
				continue
			}
			g := m.g[i][j]
			if g != 0 {
				a.add(i, i, g)
				a.add(i, j, -g)
			}
		}
	}
	sink := m.sinkIndex()
	a.add(sink, sink, m.gSinkA)
	b[sink] += m.gSinkA * m.p.AmbientK
	for i := 0; i < m.n; i++ {
		cd := m.c[i] / dt
		a.add(i, i, cd)
		b[i] += cd * temps[i]
	}
	for s := 0; s < int(floorplan.NumStructures); s++ {
		b[s] += blockPower[s]
	}
	return a.solve(b)
}

func TestStepMatchesGaussianElimination(t *testing.T) {
	m := model()
	rng := rand.New(rand.NewSource(3))
	st := m.NewState(330)
	want := append([]float64(nil), st.Temps()...)
	// Alternate two step sizes so the cached factorization is exercised
	// both on reuse and on dt-change refactorization.
	dts := []float64{1e-3, 1e-3, 5e-2, 5e-2, 1e-3}
	for trial, dt := range dts {
		pw := randomPower(rng)
		st.Step(pw, dt)
		want = refStep(m, want, pw, dt)
		got := st.Temps()
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("step %d node %d: LU %v vs GE %v (|Δ| = %v)", trial, i, got[i], want[i], d)
			}
		}
	}
}

func TestQuasiSteadyDoesNotAllocate(t *testing.T) {
	m := model()
	pw := power.Uniform(2.5)
	allocs := testing.AllocsPerRun(100, func() {
		m.QuasiSteady(pw, 340)
	})
	if allocs != 0 {
		t.Fatalf("QuasiSteady allocates %v objects per call, want 0", allocs)
	}
}
