package thermal

import (
	"fmt"

	"ramp/internal/check"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
)

// DieModel is the RC thermal model of a tiled manycore die: one node
// per (core, structure) block — flat index core·NumStructures +
// structure, as assigned by floorplan.Die.Index — plus one heat
// spreader and one heat sink shared by the whole die. Cores couple
// laterally through the tile seams, so a hot core raises its
// neighbours' temperatures; that coupling is what the aging-aware
// scheduler exploits and what a placement-blind policy pays for.
//
// Like Model, the conductance matrices are fixed at construction and
// LU-factorized once (partial pivoting); every QuasiSteadyInto or
// SteadyState call is a pair of O(n²) triangular substitutions with no
// matrix assembly and no heap allocation — the same fast path, now on
// an n·NumStructures system. Unlike Model, whose scratch lives in
// fixed-size stack arrays, a DieModel's solve scratch is sized at
// construction and owned by the model, so one DieModel must not run
// concurrent solves; give each worker its own (construction is a few
// hundred microseconds even at 16 cores).
type DieModel struct {
	die    *floorplan.Die
	p      Params
	nb     int // die blocks: cores · NumStructures
	n      int // total nodes: blocks + spreader + sink
	g      [][]float64
	c      []float64
	gSinkA float64

	quasi   lu
	full    lu
	fullA   []float64
	gToSink []float64

	sb, sx []float64 // solve scratch (owned; solves are single-goroutine)

	solves *obs.Counter
}

// DieParams returns package constants for an n-core die: the silicon
// stack is unchanged (per-block vertical resistance already scales with
// block area), but the spreader and sink grow with the die — n times
// the heat flows through them, so their resistances drop and their
// capacities rise by the core count. DieParams(ambientK, 1) is exactly
// DefaultParams(ambientK).
func DieParams(ambientK float64, nCores int) Params {
	p := DefaultParams(ambientK)
	if nCores > 1 {
		f := float64(nCores)
		p.SpreaderRKW /= f
		p.SinkRKW /= f
		p.SpreaderCJK *= f
		p.SinkCJK *= f
	}
	return p
}

// NewDie assembles and factorizes the thermal network of a tiled die.
func NewDie(die *floorplan.Die, p Params) (*DieModel, error) {
	g, c, err := assembleNetwork(die, p)
	if err != nil {
		return nil, err
	}
	m := &DieModel{
		die:    die,
		p:      p,
		nb:     die.NumBlocks(),
		n:      die.NumBlocks() + 2,
		g:      g,
		c:      c,
		gSinkA: 1 / p.SinkRKW,
	}
	m.full, m.quasi, m.fullA, m.gToSink, err = factorizeNetwork(m.g, m.n, m.gSinkA)
	if err != nil {
		return nil, err
	}
	m.sb = make([]float64, m.n)
	m.sx = make([]float64, m.n)
	return m, nil
}

// MustNewDie is NewDie, panicking on bad parameters.
func MustNewDie(die *floorplan.Die, p Params) *DieModel {
	m, err := NewDie(die, p)
	if err != nil {
		panic(err)
	}
	return m
}

// CountSolves attaches a counter incremented once per linear-system
// solve (nil disables counting).
func (m *DieModel) CountSolves(c *obs.Counter) { m.solves = c }

// Die returns the floorplan die the model was built from.
func (m *DieModel) Die() *floorplan.Die { return m.die }

// NumBlocks returns the die's block count (cores · NumStructures); the
// power and temperature slices the solves exchange have this length.
func (m *DieModel) NumBlocks() int { return m.nb }

// Nodes returns the total node count (blocks + spreader + sink).
func (m *DieModel) Nodes() int { return m.n }

// Ambient returns the model's ambient temperature (K).
func (m *DieModel) Ambient() float64 { return m.p.AmbientK }

// SinkSteadyTemp returns the sink temperature reached under a constant
// total die power (the first pass of the paper's two-pass
// initialisation, unchanged on a manycore die — the sink is shared).
func (m *DieModel) SinkSteadyTemp(totalPowerW float64) float64 {
	return m.p.AmbientK + totalPowerW*m.p.SinkRKW
}

// QuasiSteadyInto solves per-block temperatures with the sink pinned at
// sinkTempK and writes them into out (length NumBlocks, indexed by
// Die.Index). blockPower carries per-block powers in the same layout.
// This is the manycore counterpart of Model.QuasiSteady: no assembly,
// no elimination, no heap allocation — but the scratch is the model's,
// so solves must not run concurrently on one DieModel.
//
//ramp:hot
func (m *DieModel) QuasiSteadyInto(out []float64, blockPower []float64, sinkTempK float64) {
	if len(out) != m.nb || len(blockPower) != m.nb {
		panic(fmt.Sprintf("thermal: DieModel solve needs %d-block slices, got out=%d power=%d",
			m.nb, len(out), len(blockPower)))
	}
	nq := m.n - 1 // exclude the pinned sink
	b := m.sb[:nq]
	x := m.sx[:nq]
	for i := 0; i < nq; i++ {
		b[i] = m.gToSink[i] * sinkTempK
	}
	for i := 0; i < m.nb; i++ {
		b[i] += blockPower[i]
	}
	m.quasi.solveInto(x, b)
	m.solves.Inc()
	copy(out, x[:m.nb])
	for i := 0; i < m.nb; i++ {
		// A block temperature outside plausible silicon range means the
		// power input or the pinned sink temperature carried a unit bug.
		check.TempK("thermal.DieModel.QuasiSteadyInto", out[i])
	}
}

// SteadyState solves the full network for constant per-block power and
// returns all node temperatures (blocks, then spreader, then sink).
func (m *DieModel) SteadyState(blockPower []float64) []float64 {
	if len(blockPower) != m.nb {
		panic(fmt.Sprintf("thermal: DieModel SteadyState needs %d block powers, got %d", m.nb, len(blockPower)))
	}
	b := m.sb[:m.n]
	for i := range b {
		b[i] = 0
	}
	b[m.n-1] = m.gSinkA * m.p.AmbientK
	for i := 0; i < m.nb; i++ {
		b[i] += blockPower[i]
	}
	t := make([]float64, m.n)
	m.full.solveInto(t, b)
	m.solves.Inc()
	for _, v := range t {
		check.TempK("thermal.DieModel.SteadyState", v)
	}
	return t
}

// MaxCoreTemp returns the hottest block temperature of one core within
// a flat per-block temperature slice.
func (m *DieModel) MaxCoreTemp(temps []float64, core int) float64 {
	lo := m.die.Index(core, 0)
	hi := lo + int(floorplan.NumStructures)
	maxT := temps[lo]
	for i := lo + 1; i < hi; i++ {
		if temps[i] > maxT {
			maxT = temps[i]
		}
	}
	return maxT
}
