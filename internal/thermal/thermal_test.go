package thermal

import (
	"math"
	"testing"

	"ramp/internal/floorplan"
	"ramp/internal/power"
)

func model() *Model {
	return MustNew(floorplan.R10000Like(), DefaultParams(313))
}

func TestZeroPowerIsAmbient(t *testing.T) {
	m := model()
	temps := m.SteadyState(power.Vector{})
	for i, temp := range temps {
		if math.Abs(temp-313) > 1e-6 {
			t.Fatalf("node %d at %v K with zero power", i, temp)
		}
	}
}

func TestSinkTempEnergyConservation(t *testing.T) {
	m := model()
	// In steady state all generated heat flows through the sink's
	// convection resistance: T_sink = T_amb + P_total * R_sink.
	pw := power.Uniform(2.0) // 22 W total
	temps := m.SteadyState(pw)
	sink := temps[len(temps)-1]
	want := m.SinkSteadyTemp(pw.Sum())
	if math.Abs(sink-want) > 1e-6 {
		t.Fatalf("sink temp = %v, want %v", sink, want)
	}
}

func TestTemperatureOrdering(t *testing.T) {
	m := model()
	pw := power.Uniform(2.0)
	temps := m.SteadyState(pw)
	sink := temps[len(temps)-1]
	spreader := temps[len(temps)-2]
	if !(spreader > sink && sink > 313) {
		t.Fatalf("ordering broken: spreader %v sink %v", spreader, sink)
	}
	for s := 0; s < int(floorplan.NumStructures); s++ {
		if temps[s] <= spreader {
			t.Fatalf("powered block %v cooler than spreader", floorplan.Structure(s))
		}
	}
}

func TestPowerDensityDrivesHotspots(t *testing.T) {
	m := model()
	fp := floorplan.R10000Like()
	// Equal power into a small block vs a large one: the small block
	// (higher density) must run hotter.
	var pw power.Vector
	pw[floorplan.AGU] = 3 // 0.81 mm^2
	pw[floorplan.L1D] = 3 // 4.05 mm^2
	temps := m.SteadyState(pw)
	if temps[floorplan.AGU] <= temps[floorplan.L1D] {
		t.Fatalf("denser block not hotter: AGU %v (%.2fmm2) vs L1D %v (%.2fmm2)",
			temps[floorplan.AGU], fp.AreaMM2(floorplan.AGU),
			temps[floorplan.L1D], fp.AreaMM2(floorplan.L1D))
	}
}

func TestLateralCouplingWarmsNeighbours(t *testing.T) {
	m := model()
	var pw power.Vector
	pw[floorplan.IntALU] = 10
	temps := m.SteadyState(pw)
	// AGU is adjacent to IntALU; BPred is across the die.
	if temps[floorplan.AGU] <= temps[floorplan.BPred] {
		t.Fatalf("adjacent block not warmer: AGU %v vs BPred %v",
			temps[floorplan.AGU], temps[floorplan.BPred])
	}
}

func TestQuasiSteadyMatchesSteadyState(t *testing.T) {
	m := model()
	pw := power.Uniform(2.5)
	full := m.SteadyState(pw)
	sink := full[len(full)-1]
	qs := m.QuasiSteady(pw, sink)
	for s := 0; s < int(floorplan.NumStructures); s++ {
		if math.Abs(qs[s]-full[s]) > 1e-6 {
			t.Fatalf("block %v: quasi %v vs full %v", floorplan.Structure(s), qs[s], full[s])
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m := model()
	pw := power.Uniform(2.0)
	want := m.SteadyState(pw)
	st := m.NewState(313)
	// Sink time constant is ~R*C = 0.6*140 = 84 s; integrate well past it.
	for i := 0; i < 3000; i++ {
		st.Step(pw, 0.5)
	}
	got := st.Temps()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("node %d: transient %v vs steady %v", i, got[i], want[i])
		}
	}
}

func TestTransientBlocksFasterThanSink(t *testing.T) {
	m := model()
	pw := power.Uniform(2.0)
	st := m.NewState(313)
	for i := 0; i < 100; i++ {
		st.Step(pw, 0.001) // 100 ms total
	}
	blocks := st.BlockTemps()
	// Blocks warm within milliseconds; the sink barely moves.
	if blocks[floorplan.Window]-313 < 1 {
		t.Fatalf("blocks did not warm: %v", blocks[floorplan.Window])
	}
	if st.SinkTemp()-313 > 1 {
		t.Fatalf("sink warmed too fast: %v", st.SinkTemp())
	}
	if st.SpreaderTemp() <= st.SinkTemp() {
		t.Fatalf("spreader/sink ordering: %v %v", st.SpreaderTemp(), st.SinkTemp())
	}
}

func TestImplicitEulerStableWithHugeStep(t *testing.T) {
	m := model()
	pw := power.Uniform(2.0)
	st := m.NewState(313)
	st.Step(pw, 1e6) // one enormous step lands on the steady state
	want := m.SteadyState(pw)
	got := st.Temps()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.2 {
			t.Fatalf("node %d after huge step: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestStepPanicsOnBadDt(t *testing.T) {
	st := model().NewState(313)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Step(power.Vector{}, 0)
}

func TestNewStateFrom(t *testing.T) {
	m := model()
	if _, err := m.NewStateFrom([]float64{1, 2}); err == nil {
		t.Fatal("wrong-length state accepted")
	}
	init := m.SteadyState(power.Uniform(1))
	st, err := m.NewStateFrom(init)
	if err != nil {
		t.Fatal(err)
	}
	// Already at steady state: a step must not move it.
	st.Step(power.Uniform(1), 1.0)
	got := st.Temps()
	for i := range init {
		if math.Abs(got[i]-init[i]) > 1e-6 {
			t.Fatalf("steady state drifted at node %d: %v vs %v", i, got[i], init[i])
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	p := DefaultParams(313)
	p.SinkRKW = 0
	if _, err := New(floorplan.R10000Like(), p); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestMaxBlock(t *testing.T) {
	var v power.Vector
	v[floorplan.FPU] = 400
	v[floorplan.L1I] = 350
	s, temp := MaxBlock(v)
	if s != floorplan.FPU || temp != 400 {
		t.Fatalf("MaxBlock = %v %v", s, temp)
	}
}

func TestMoreCoolingLowersTemps(t *testing.T) {
	p1 := DefaultParams(313)
	p2 := p1
	p2.SinkRKW = p1.SinkRKW / 2
	m1 := MustNew(floorplan.R10000Like(), p1)
	m2 := MustNew(floorplan.R10000Like(), p2)
	pw := power.Uniform(3)
	t1 := m1.SteadyState(pw)
	t2 := m2.SteadyState(pw)
	for i := range t1 {
		if t2[i] >= t1[i] {
			t.Fatalf("better sink did not cool node %d: %v vs %v", i, t2[i], t1[i])
		}
	}
}
