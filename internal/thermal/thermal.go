// Package thermal is a compact RC thermal model in the spirit of HotSpot
// (the paper's thermal simulator).
//
// The network has one node per floorplan block (the silicon die), one
// node for the heat spreader, and one node for the heat sink:
//
//	block i --Rv(i)--> spreader --Rsp--> sink --Rconv--> ambient
//	block i --Rlat(i,j)--> block j        (shared-edge neighbours)
//
// Vertical resistances follow conduction through the die and thermal
// interface (t/(k·A)); lateral resistances follow conduction along the
// die between block centres through the shared edge cross-section. Every
// node has a heat capacity, so the model supports both steady-state
// solves and transient integration (implicit Euler, unconditionally
// stable).
//
// The conductance matrices never change after construction — only the
// power vector and the pinned sink temperature (the right-hand side) do —
// so New factorizes both steady-state systems once (LU with partial
// pivoting) and every QuasiSteady/SteadyState call is a pair of O(n²)
// triangular substitutions with no matrix assembly and no heap
// allocation. See DESIGN.md §7.
//
// The paper's two-pass heat-sink initialisation (Section 6.3) is exposed
// directly: the sink's RC time constant (~minutes) is far larger than a
// simulated run, so a first pass measures average power, SinkSteadyTemp
// converts it to the sink's steady temperature, and the second pass runs
// with the sink pinned there. QuasiSteady then gives per-block
// temperatures for an interval, which is valid because block time
// constants (~ms) are far below the interval lengths RAMP samples.
package thermal

import (
	"fmt"
	"math"

	"ramp/internal/check"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
	"ramp/internal/power"
)

// numNodes is the (compile-time) total node count: blocks + spreader +
// sink. Solver scratch lives in fixed-size stack arrays of this length so
// the hot solves never touch the heap.
const numNodes = int(floorplan.NumStructures) + 2

// Params holds the physical constants of the package stack.
type Params struct {
	DieThicknessM  float64 // silicon die thickness
	KSiliconWmK    float64 // silicon thermal conductivity
	CSiliconJm3K   float64 // silicon volumetric heat capacity
	RVertExtraKWm2 float64 // extra vertical resistance (TIM), K·m²/W

	SpreaderRKW float64 // spreader -> sink resistance
	SpreaderCJK float64 // spreader heat capacity
	SinkRKW     float64 // sink -> ambient (convection) resistance
	SinkCJK     float64 // sink heat capacity

	AmbientK float64
}

// DefaultParams returns HotSpot-like constants for the paper's package:
// a 0.5 mm die, copper spreader, and a sink sized so the hottest
// application peaks near 400 K, as in Section 7.1.
func DefaultParams(ambientK float64) Params {
	return Params{
		DieThicknessM:  0.5e-3,
		KSiliconWmK:    100,
		CSiliconJm3K:   1.75e6,
		RVertExtraKWm2: 8.0e-6,
		SpreaderRKW:    0.12,
		SpreaderCJK:    12,
		SinkRKW:        0.60,
		SinkCJK:        140,
		AmbientK:       ambientK,
	}
}

// Model is the assembled RC network with its pre-factorized solvers.
// Since the manycore refactor it is the n = 1 special case of the tiled
// DieModel: the assembly is provably identical (the tile offset is
// exactly zero; TestDieModelN1MatchesModel pins it bit for bit), but
// Model keeps the fixed-size stack scratch that makes its solves safe
// for concurrent use across evaluation workers.
type Model struct {
	fp     *floorplan.Floorplan
	p      Params
	n      int         // total nodes: blocks + spreader + sink
	g      [][]float64 // conductance between node pairs (symmetric)
	c      []float64   // per-node heat capacity
	gSinkA float64     // sink -> ambient conductance

	// Pre-factorized systems (the matrices depend only on geometry and
	// package constants, fixed at construction).
	quasi   lu        // (n-1)-node quasi-steady system, sink pinned
	full    lu        // n-node full network with sink->ambient coupling
	fullA   []float64 // pristine copy of the full matrix, for Step's C/dt refactorization
	gToSink []float64 // per-node conductance into the pinned sink (RHS assembly)

	// solves counts linear-system solves (observability; nil = uncounted).
	solves *obs.Counter
}

// CountSolves attaches a counter incremented once per linear-system
// solve — SteadyState, QuasiSteady and transient Step all count. The
// counter is atomic, so counting stays safe under concurrent solves;
// a nil counter (the default) keeps the hot path increment-free in
// spirit (a nil-check no-op).
func (m *Model) CountSolves(c *obs.Counter) { m.solves = c }

// New assembles the thermal network for a floorplan and factorizes its
// steady-state systems. The assembly is the n = 1 special case of the
// tiled assembleNetwork — same block order, same adjacency order, same
// accumulation — inlined against the bare floorplan so constructing a
// Model allocates nothing beyond its own matrices (Env construction is
// on several benchmark hot paths). TestDieModelN1MatchesModel pins the
// two assemblies bit for bit.
func New(fp *floorplan.Floorplan, p Params) (*Model, error) {
	if p.DieThicknessM <= 0 || p.KSiliconWmK <= 0 || p.SinkRKW <= 0 || p.SpreaderRKW <= 0 {
		return nil, fmt.Errorf("thermal: non-positive physical parameter: %+v", p)
	}
	nb := int(floorplan.NumStructures)
	n := nb + 2
	m := &Model{
		fp:     fp,
		p:      p,
		n:      n,
		g:      make([][]float64, n),
		c:      make([]float64, n),
		gSinkA: 1 / p.SinkRKW,
	}
	for i := range m.g {
		m.g[i] = make([]float64, n)
	}
	spreader := nb
	sink := nb + 1

	for s := 0; s < nb; s++ {
		areaM2 := fp.AreaMM2(floorplan.Structure(s)) * 1e-6
		// Vertical: die conduction plus TIM, block -> spreader.
		r := p.DieThicknessM/(p.KSiliconWmK*areaM2) + p.RVertExtraKWm2/areaM2
		gv := 1 / r
		m.g[s][spreader] += gv
		m.g[spreader][s] += gv
		// Block heat capacity.
		m.c[s] = p.CSiliconJm3K * areaM2 * p.DieThicknessM
	}
	// Lateral conduction between adjacent blocks.
	for _, adj := range fp.Adjacencies() {
		sharedM := adj.SharedMM * 1e-3
		distM := adj.CenterDist * 1e-3
		if distM <= 0 {
			continue
		}
		gl := p.KSiliconWmK * p.DieThicknessM * sharedM / distM
		a, b := int(adj.A), int(adj.B)
		m.g[a][b] += gl
		m.g[b][a] += gl
	}
	// Spreader -> sink.
	gss := 1 / p.SpreaderRKW
	m.g[spreader][sink] += gss
	m.g[sink][spreader] += gss
	m.c[spreader] = p.SpreaderCJK
	m.c[sink] = p.SinkCJK

	var err error
	m.full, m.quasi, m.fullA, m.gToSink, err = factorizeNetwork(m.g, m.n, m.gSinkA)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// assembleNetwork builds the conductance graph and heat capacities of a
// tiled die: one node per (core, structure) block — flat index
// core·NumStructures + structure — plus one spreader and one sink node
// shared by the whole die. Returns the symmetric pairwise conductance
// matrix and the per-node heat capacities.
func assembleNetwork(die *floorplan.Die, p Params) (g [][]float64, c []float64, err error) {
	if p.DieThicknessM <= 0 || p.KSiliconWmK <= 0 || p.SinkRKW <= 0 || p.SpreaderRKW <= 0 {
		return nil, nil, fmt.Errorf("thermal: non-positive physical parameter: %+v", p)
	}
	nb := die.NumBlocks()
	n := nb + 2
	g = make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	c = make([]float64, n)
	spreader := nb
	sink := nb + 1

	for i := 0; i < nb; i++ {
		core, s := die.CoreOf(i)
		areaM2 := die.AreaMM2(core, s) * 1e-6
		// Vertical: die conduction plus TIM, block -> spreader.
		r := p.DieThicknessM/(p.KSiliconWmK*areaM2) + p.RVertExtraKWm2/areaM2
		gv := 1 / r
		g[i][spreader] += gv
		g[spreader][i] += gv
		// Block heat capacity.
		c[i] = p.CSiliconJm3K * areaM2 * p.DieThicknessM
	}
	// Lateral conduction between adjacent blocks — intra-core and across
	// tile seams alike.
	for _, adj := range die.Adjacencies() {
		sharedM := adj.SharedMM * 1e-3
		distM := adj.CenterDist * 1e-3
		if distM <= 0 {
			continue
		}
		gl := p.KSiliconWmK * p.DieThicknessM * sharedM / distM
		a, b := die.Index(adj.CoreA, adj.A), die.Index(adj.CoreB, adj.B)
		g[a][b] += gl
		g[b][a] += gl
	}
	// Spreader -> sink.
	gss := 1 / p.SpreaderRKW
	g[spreader][sink] += gss
	g[sink][spreader] += gss
	c[spreader] = p.SpreaderCJK
	c[sink] = p.SinkCJK
	return g, c, nil
}

// factorizeNetwork assembles and LU-factorizes the two steady-state
// systems of a conductance graph, and keeps a pristine copy of the full
// matrix for transient refactorization. The sink is node n-1.
func factorizeNetwork(g [][]float64, n int, gSinkA float64) (full, quasi lu, fullA, gToSink []float64, err error) {
	sink := n - 1

	// Full network: conductance Laplacian plus the sink->ambient leg.
	fullA = make([]float64, n*n)
	fillConductance(g, fullA, n)
	fullA[sink*n+sink] += gSinkA
	if err = full.factorize(n, append([]float64(nil), fullA...)); err != nil {
		return
	}

	// Quasi-steady network: the sink row/column is removed (pinned
	// temperature); conductances into the sink stay on the diagonal and
	// feed the RHS.
	nq := n - 1
	qa := make([]float64, nq*nq)
	fillConductance(g, qa, nq)
	gToSink = make([]float64, nq)
	for i := 0; i < nq; i++ {
		gs := g[i][sink]
		gToSink[i] = gs
		qa[i*nq+i] += gs
	}
	err = quasi.factorize(nq, qa)
	return
}

// fillConductance writes the Laplacian of the first dim nodes of the
// conductance graph into the row-major dim×dim matrix a.
func fillConductance(g [][]float64, a []float64, dim int) {
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			if i == j {
				continue
			}
			gv := g[i][j]
			if gv != 0 {
				a[i*dim+i] += gv
				a[i*dim+j] -= gv
			}
		}
	}
}

// MustNew is New, panicking on bad parameters.
func MustNew(fp *floorplan.Floorplan, p Params) *Model {
	m, err := New(fp, p)
	if err != nil {
		panic(err)
	}
	return m
}

// Nodes returns the total node count (blocks + spreader + sink).
func (m *Model) Nodes() int { return m.n }

// Ambient returns the model's ambient temperature (K).
func (m *Model) Ambient() float64 { return m.p.AmbientK }

// sinkIndex returns the sink node index.
func (m *Model) sinkIndex() int { return m.n - 1 }

// spreaderIndex returns the spreader node index.
func (m *Model) spreaderIndex() int { return m.n - 2 }

// SteadyState solves the full network for constant per-block power and
// returns all node temperatures (blocks, then spreader, then sink).
func (m *Model) SteadyState(blockPower power.Vector) []float64 {
	var b [numNodes]float64
	sink := m.sinkIndex()
	b[sink] = m.gSinkA * m.p.AmbientK
	for s := 0; s < int(floorplan.NumStructures); s++ {
		b[s] += blockPower[s]
	}
	t := make([]float64, m.n)
	m.full.solveInto(t, b[:m.n])
	m.solves.Inc()
	for _, v := range t {
		check.TempK("thermal.SteadyState", v)
	}
	return t
}

// SinkSteadyTemp returns the sink temperature reached under a constant
// total power (the first pass of the paper's two-pass initialisation).
func (m *Model) SinkSteadyTemp(totalPowerW float64) float64 {
	return m.p.AmbientK + totalPowerW*m.p.SinkRKW
}

// QuasiSteady solves block and spreader temperatures with the sink pinned
// at sinkTempK. This is the second-pass operating mode: block and
// spreader time constants are milliseconds, far below RAMP's sampling
// interval, so each interval sees its steady temperatures; the sink
// integrates over the whole run.
//
// This is the innermost call of every evaluation (once per leakage
// iteration per epoch); against the pre-factorized system it performs no
// assembly, no elimination, and no heap allocation.
//
//ramp:hot
func (m *Model) QuasiSteady(blockPower power.Vector, sinkTempK float64) power.Vector {
	n := m.n - 1 // exclude the pinned sink
	var b, x [numNodes]float64
	for i := 0; i < n; i++ {
		b[i] = m.gToSink[i] * sinkTempK
	}
	for s := 0; s < int(floorplan.NumStructures); s++ {
		b[s] += blockPower[s]
	}
	m.quasi.solveInto(x[:n], b[:n])
	m.solves.Inc()
	var out power.Vector
	copy(out[:], x[:floorplan.NumStructures])
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		// A block temperature outside plausible silicon range means the
		// power input or the pinned sink temperature carried a unit bug.
		check.TempK("thermal.QuasiSteady", out[s])
	}
	return out
}

// State integrates the network through time (implicit Euler). It caches
// the factorization of (C/dt + G), refactorizing only when dt changes, so
// fixed-step integration factorizes once. A State belongs to one
// goroutine; the underlying Model stays shareable.
type State struct {
	m     *Model
	temps []float64

	dt          float64 // dt the cached factorization was built for (0 = none)
	step        lu
	stepA, b, x []float64
}

// NewState returns a transient state with every node at temp0.
func (m *Model) NewState(temp0 float64) *State {
	t := make([]float64, m.n)
	for i := range t {
		t[i] = temp0
	}
	return &State{m: m, temps: t}
}

// NewStateFrom returns a transient state with explicit node temperatures
// (blocks, spreader, sink — as returned by SteadyState).
func (m *Model) NewStateFrom(temps []float64) (*State, error) {
	if len(temps) != m.n {
		return nil, fmt.Errorf("thermal: NewStateFrom needs %d temperatures, got %d", m.n, len(temps))
	}
	return &State{m: m, temps: append([]float64(nil), temps...)}, nil
}

// Step advances the network by dt seconds under the given block powers
// using implicit Euler: (C/dt + G) T' = C/dt·T + P. Unconditionally
// stable for any dt.
func (st *State) Step(blockPower power.Vector, dt float64) {
	if dt <= 0 {
		panic("thermal: non-positive dt")
	}
	m := st.m
	n := m.n
	//rampvet:ignore floatcmp -- exact match decides factorization reuse; any differing dt must refactorize
	if st.dt != dt {
		if st.stepA == nil {
			st.stepA = make([]float64, n*n)
			st.b = make([]float64, n)
			st.x = make([]float64, n)
		}
		copy(st.stepA, m.fullA)
		for i := 0; i < n; i++ {
			st.stepA[i*n+i] += m.c[i] / dt
		}
		if err := st.step.factorize(n, st.stepA); err != nil {
			// Cannot happen: C/dt only strengthens the diagonal of an
			// already non-singular matrix.
			panic(err)
		}
		st.dt = dt
	}
	b := st.b
	for i := range b {
		b[i] = m.c[i] / dt * st.temps[i]
	}
	b[m.sinkIndex()] += m.gSinkA * m.p.AmbientK
	for s := 0; s < int(floorplan.NumStructures); s++ {
		b[s] += blockPower[s]
	}
	st.step.solveInto(st.x, b)
	m.solves.Inc()
	copy(st.temps, st.x)
}

// BlockTemps returns the current per-block temperatures.
func (st *State) BlockTemps() power.Vector {
	var out power.Vector
	copy(out[:], st.temps[:floorplan.NumStructures])
	return out
}

// SinkTemp returns the current heat-sink temperature.
func (st *State) SinkTemp() float64 { return st.temps[st.m.sinkIndex()] }

// SpreaderTemp returns the current spreader temperature.
func (st *State) SpreaderTemp() float64 { return st.temps[st.m.spreaderIndex()] }

// Temps returns all node temperatures (blocks, spreader, sink).
func (st *State) Temps() []float64 { return append([]float64(nil), st.temps...) }

// MaxBlock returns the hottest block and its temperature.
//
//ramp:hot
func MaxBlock(t power.Vector) (floorplan.Structure, float64) {
	best := floorplan.Structure(0)
	maxT := math.Inf(-1)
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		if t[s] > maxT {
			maxT = t[s]
			best = s
		}
	}
	return best, maxT
}

// lu is an LU factorization with partial pivoting of a dense row-major
// matrix: unit-lower multipliers below the diagonal, U on and above it.
// The thermal systems are factorized once and solved millions of times,
// so solveInto is written to be allocation-free.
type lu struct {
	n   int
	a   []float64 // factors, row-major n×n (owns the backing array)
	piv []int     // piv[k]: row swapped with row k at elimination step k
}

// factorize computes the factorization of the n×n matrix a in place,
// taking ownership of a. Reusing a previously factorized receiver reuses
// its pivot storage.
func (f *lu) factorize(n int, a []float64) error {
	f.n = n
	f.a = a
	if cap(f.piv) < n {
		f.piv = make([]int, n)
	}
	f.piv = f.piv[:n]
	for col := 0; col < n; col++ {
		// Partial pivot: largest remaining entry in this column.
		p := col
		pmax := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				pmax = v
				p = r
			}
		}
		if pmax == 0 {
			return fmt.Errorf("thermal: singular conductance matrix")
		}
		f.piv[col] = p
		if p != col {
			// Swap whole rows; L multipliers travel with their row.
			for k := 0; k < n; k++ {
				a[col*n+k], a[p*n+k] = a[p*n+k], a[col*n+k]
			}
		}
		pivInv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			mult := a[r*n+col] * pivInv
			a[r*n+col] = mult
			if mult == 0 {
				continue
			}
			for k := col + 1; k < n; k++ {
				a[r*n+k] -= mult * a[col*n+k]
			}
		}
	}
	return nil
}

// solveInto writes A⁻¹·b into x (len n each) with two triangular
// substitutions. It performs no allocation; b is not modified unless x
// aliases it.
//
//ramp:hot
func (f *lu) solveInto(x, b []float64) {
	n := f.n
	a := f.a
	copy(x, b)
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution against unit-lower L.
	for r := 1; r < n; r++ {
		s := x[r]
		for k := 0; k < r; k++ {
			s -= a[r*n+k] * x[k]
		}
		x[r] = s
	}
	// Back substitution against U.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for k := r + 1; k < n; k++ {
			s -= a[r*n+k] * x[k]
		}
		x[r] = s / a[r*n+r]
	}
}

// dense is the original one-shot Gaussian-elimination solver. The
// production paths all use the pre-factorized lu; dense is retained as
// the independent oracle the equivalence tests compare against.
type dense struct {
	n int
	a []float64 // row-major n x n
}

func newDense(n int) *dense {
	return &dense{n: n, a: make([]float64, n*n)}
}

func (d *dense) add(i, j int, v float64) {
	d.a[i*d.n+j] += v
}

// solve solves d·x = b, destroying d and b.
func (d *dense) solve(b []float64) []float64 {
	n := d.n
	a := d.a
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		pmax := math.Abs(a[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r*n+col]); v > pmax {
				pmax = v
				p = r
			}
		}
		if pmax == 0 {
			panic("thermal: singular conductance matrix")
		}
		if p != col {
			for k := 0; k < n; k++ {
				a[col*n+k], a[p*n+k] = a[p*n+k], a[col*n+k]
			}
			b[col], b[p] = b[p], b[col]
		}
		pivInv := 1 / a[col*n+col]
		for r := col + 1; r < n; r++ {
			f := a[r*n+col] * pivInv
			if f == 0 {
				continue
			}
			a[r*n+col] = 0
			for k := col + 1; k < n; k++ {
				a[r*n+k] -= f * a[col*n+k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for k := r + 1; k < n; k++ {
			s -= a[r*n+k] * x[k]
		}
		x[r] = s / a[r*n+r]
	}
	return x
}
