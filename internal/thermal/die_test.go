package thermal

import (
	"math"
	"testing"

	"ramp/internal/floorplan"
	"ramp/internal/power"
)

// TestDieModelN1MatchesModel pins the acceptance criterion that the
// N=1 tiled matrix matches the single-die matrix: the conductance
// graph, factorization inputs and solve outputs of a one-core DieModel
// must equal the legacy Model's bit for bit (stronger than the ≤1e-9
// bound the issue asks for).
func TestDieModelN1MatchesModel(t *testing.T) {
	fp := floorplan.R10000Like()
	p := DefaultParams(318.15)
	m := MustNew(fp, p)
	dm := MustNewDie(floorplan.MustNewDie(fp, 1), p)

	if dm.n != m.n || dm.nb != int(floorplan.NumStructures) {
		t.Fatalf("N=1 die model has %d nodes / %d blocks, Model has %d nodes", dm.n, dm.nb, m.n)
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if dm.g[i][j] != m.g[i][j] {
				t.Fatalf("g[%d][%d]: die %v, model %v", i, j, dm.g[i][j], m.g[i][j])
			}
		}
		if dm.c[i] != m.c[i] {
			t.Fatalf("c[%d]: die %v, model %v", i, dm.c[i], m.c[i])
		}
	}
	for i := range m.fullA {
		if dm.fullA[i] != m.fullA[i] {
			t.Fatalf("fullA[%d]: die %v, model %v", i, dm.fullA[i], m.fullA[i])
		}
	}
	for i := range m.gToSink {
		if dm.gToSink[i] != m.gToSink[i] {
			t.Fatalf("gToSink[%d]: die %v, model %v", i, dm.gToSink[i], m.gToSink[i])
		}
	}

	var pw power.Vector
	for s := range pw {
		pw[s] = 0.8 + 0.3*float64(s)
	}
	sinkT := 345.0
	want := m.QuasiSteady(pw, sinkT)
	got := make([]float64, dm.nb)
	dm.QuasiSteadyInto(got, pw[:], sinkT)
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("QuasiSteady[%d]: die %v, model %v", s, got[s], want[s])
		}
	}
	wantSS := m.SteadyState(pw)
	gotSS := dm.SteadyState(pw[:])
	for i := range wantSS {
		if gotSS[i] != wantSS[i] {
			t.Fatalf("SteadyState[%d]: die %v, model %v", i, gotSS[i], wantSS[i])
		}
	}
}

// TestDieModelDenseOracle checks the LU fast path on a genuinely tiled
// system (N=4, 46 nodes) against the dense Gaussian-elimination oracle.
func TestDieModelDenseOracle(t *testing.T) {
	die := floorplan.MustNewDie(floorplan.R10000Like(), 4)
	p := DieParams(318.15, 4)
	m := MustNewDie(die, p)

	bp := make([]float64, m.nb)
	for i := range bp {
		bp[i] = 0.5 + 0.07*float64(i%11) + 0.4*float64(i/11)
	}

	// Quasi-steady: sink pinned.
	sinkT := 352.0
	nq := m.n - 1
	dq := newDense(nq)
	for i := 0; i < nq; i++ {
		for j := 0; j < nq; j++ {
			if i == j || m.g[i][j] == 0 {
				continue
			}
			dq.add(i, i, m.g[i][j])
			dq.add(i, j, -m.g[i][j])
		}
		dq.add(i, i, m.gToSink[i])
	}
	b := make([]float64, nq)
	for i := 0; i < nq; i++ {
		b[i] = m.gToSink[i] * sinkT
	}
	for i := 0; i < m.nb; i++ {
		b[i] += bp[i]
	}
	want := dq.solve(b)
	got := make([]float64, m.nb)
	m.QuasiSteadyInto(got, bp, sinkT)
	for i := range got {
		if diff := math.Abs(got[i] - want[i]); diff > 1e-9 {
			t.Fatalf("quasi block %d: LU %v, dense %v (diff %g)", i, got[i], want[i], diff)
		}
	}

	// Full steady state: sink connected to ambient.
	df := newDense(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j || m.g[i][j] == 0 {
				continue
			}
			df.add(i, i, m.g[i][j])
			df.add(i, j, -m.g[i][j])
		}
	}
	df.add(m.n-1, m.n-1, m.gSinkA)
	bf := make([]float64, m.n)
	bf[m.n-1] = m.gSinkA * p.AmbientK
	for i := 0; i < m.nb; i++ {
		bf[i] += bp[i]
	}
	wantSS := df.solve(bf)
	gotSS := m.SteadyState(bp)
	for i := range gotSS {
		if diff := math.Abs(gotSS[i] - wantSS[i]); diff > 1e-9 {
			t.Fatalf("steady node %d: LU %v, dense %v (diff %g)", i, gotSS[i], wantSS[i], diff)
		}
	}
}

// TestDieModelCrossCoreCoupling checks that tile-seam conductances are
// real: on a 1×2 die with only core 0 powered, core 1's blocks rise
// above the pinned sink temperature (heat arrives laterally through the
// seam), and blocks of core 1 nearest the seam are warmer than the
// average of its far blocks.
func TestDieModelCrossCoreCoupling(t *testing.T) {
	die := floorplan.MustNewDie(floorplan.R10000Like(), 2)
	m := MustNewDie(die, DieParams(318.15, 2))

	bp := make([]float64, m.nb)
	for s := 0; s < int(floorplan.NumStructures); s++ {
		bp[s] = 2.0 // core 0 busy, core 1 idle
	}
	sinkT := 340.0
	temps := make([]float64, m.nb)
	m.QuasiSteadyInto(temps, bp, sinkT)

	hot := m.MaxCoreTemp(temps, 0)
	idleMax := m.MaxCoreTemp(temps, 1)
	idleMin := temps[m.die.Index(1, 0)]
	for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
		if v := temps[m.die.Index(1, s)]; v < idleMin {
			idleMin = v
		}
	}
	if hot <= idleMax {
		t.Fatalf("powered core (%.3f K) not hotter than idle core (%.3f K)", hot, idleMax)
	}
	if idleMin <= sinkT {
		t.Fatalf("idle core at %.6f K did not rise above pinned sink %.1f K — no cross-core coupling", idleMin, sinkT)
	}
}

// TestDieModelQuasiSteadyAllocFree pins the hot-path contract: a
// QuasiSteadyInto solve performs zero heap allocations.
func TestDieModelQuasiSteadyAllocFree(t *testing.T) {
	die := floorplan.MustNewDie(floorplan.R10000Like(), 4)
	m := MustNewDie(die, DieParams(318.15, 4))
	bp := make([]float64, m.nb)
	for i := range bp {
		bp[i] = 1.0
	}
	out := make([]float64, m.nb)
	allocs := testing.AllocsPerRun(100, func() {
		m.QuasiSteadyInto(out, bp, 350.0)
	})
	if allocs != 0 {
		t.Fatalf("QuasiSteadyInto allocates %.1f times per solve, want 0", allocs)
	}
}

// TestDieParamsN1 pins DieParams(ambient, 1) == DefaultParams(ambient):
// the single-core package is unchanged by the manycore scaling.
func TestDieParamsN1(t *testing.T) {
	if DieParams(318.15, 1) != DefaultParams(318.15) {
		t.Fatal("DieParams(·, 1) differs from DefaultParams")
	}
	p4 := DieParams(318.15, 4)
	d := DefaultParams(318.15)
	if p4.SinkRKW != d.SinkRKW/4 || p4.SpreaderRKW != d.SpreaderRKW/4 ||
		p4.SinkCJK != d.SinkCJK*4 || p4.SpreaderCJK != d.SpreaderCJK*4 {
		t.Fatalf("DieParams(·, 4) scaling wrong: %+v", p4)
	}
	if p4.DieThicknessM != d.DieThicknessM || p4.KSiliconWmK != d.KSiliconWmK {
		t.Fatal("DieParams must not touch the silicon stack")
	}
}
