// Compiled per-policy lifetime model.
//
// The engine flattens each policy's core.LifetimeModel into a fixed
// (structure × mechanism) cell grid so the per-chip hot loop is plain
// array arithmetic. The grid shape is identical for every policy — a
// cell that is inactive under one policy keeps its slot with an
// infinite Weibull scale — which is what makes common random numbers
// work: the same per-cell uniform draw feeds the same cell under every
// policy, so cross-policy survival deltas are differences in the model,
// not in the noise.
package fleet

import (
	"fmt"
	"math"

	"ramp/internal/core"
	"ramp/internal/floorplan"
)

// numCells is the fixed cell-grid size: one slot per
// (structure, mechanism) pair, active or not.
const numCells = int(floorplan.NumStructures) * int(core.NumMechanisms)

// cellIndex flattens (structure, mechanism) mechanism-minor.
func cellIndex(s floorplan.Structure, m core.Mechanism) int {
	return int(s)*int(core.NumMechanisms) + int(m)
}

// cellMechanism recovers the mechanism of a flat cell index.
func cellMechanism(c int) core.Mechanism {
	return core.Mechanism(c % int(core.NumMechanisms))
}

// compiledPolicy is one DRM policy's lifetime model on the cell grid.
type compiledPolicy struct {
	name string
	// eta is the Weibull scale (hours) per cell; +Inf marks a cell with
	// no active failure component, so eta·z can never be the minimum.
	eta [numCells]float64
}

// compilePolicy builds the grid form of one policy from its RAMP
// assessment, going through core.NewLifetimeModel so the sampled
// distributions are exactly the ones Reliability integrates.
func compilePolicy(name string, a core.Assessment, shapes core.WeibullShapes) (compiledPolicy, *core.LifetimeModel, error) {
	lm, err := core.NewLifetimeModel(a, shapes)
	if err != nil {
		return compiledPolicy{}, nil, fmt.Errorf("fleet: policy %q: %w", name, err)
	}
	cp := compiledPolicy{name: name}
	for c := range cp.eta {
		cp.eta[c] = math.Inf(1)
	}
	for i := 0; i < lm.Components(); i++ {
		s, m, _, scale := lm.Component(i)
		cp.eta[cellIndex(s, m)] = scale
	}
	return cp, lm, nil
}

// invBetaGrid precomputes 1/beta per cell from the per-mechanism
// shapes. Shapes are policy-independent, which is what lets the engine
// share the per-chip draw transform z = (−ln u)^(1/beta) / k across
// every policy.
func invBetaGrid(shapes core.WeibullShapes) (g [numCells]float64, err error) {
	for m, b := range shapes {
		if b <= 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return g, fmt.Errorf("fleet: non-positive Weibull shape for %v", core.Mechanism(m))
		}
	}
	for c := range g {
		g[c] = 1 / shapes[cellMechanism(c)]
	}
	return g, nil
}
