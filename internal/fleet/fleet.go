// Package fleet scales the paper's single-chip lifetime model to
// populations: a deterministic, sharded Monte Carlo engine that samples
// per-chip process variation, draws every chip's time to first failure
// by inverse-CDF Weibull sampling from a perturbed core.LifetimeModel,
// and reports policy-conditioned fleet survival curves and
// warranty-return rates.
//
// The paper's qualification argument (Section 3.7) is really a
// population claim — a 4000-FIT budget is chosen so the consumer
// service life falls far out in the tails of the lifetime distribution.
// This engine quantifies those tails directly: what fraction of a
// million shipped parts fails inside the 7- and 11-year horizons under
// a given DRM policy, and how failure-response scenarios move that
// fraction — in-field spare-unit repair (Ghahroodi & Zwolinski)
// resamples the failed component, and checkpointing modes (Prabakaran
// et al.) scale the effective stress duty cycle.
//
// Determinism contract: a chip's outcome is a pure function of
// (Config.Seed, chip index) — see rng.go — and shards are fixed-size
// blocks of the chip index space whose partial sums merge in shard
// order. Results are therefore bitwise identical at any worker count.
// ShardSize is part of the contract (it fixes the float summation
// grouping), which is why it is a config knob and not derived from the
// worker count.
package fleet

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"ramp/internal/core"
	"ramp/internal/obs"
)

// HoursPerYear converts Weibull scales (hours) to reported years.
const HoursPerYear = 8760

// Warranty horizons (years): the paper's footnote 1 cites ~7 years of
// server-class service life and ~11 years for the long tail of consumer
// use; the report carries exact failed-fractions at both.
const (
	Warranty7Years  = 7
	Warranty11Years = 11
)

// Policy names one DRM operating policy by the RAMP assessment it
// produces (e.g. the base machine at T_qual = 400 K, or the DVS
// configuration a DRM oracle picked at 370 K). The engine turns each
// assessment into a Weibull lifetime model via core.NewLifetimeModel.
type Policy struct {
	Name       string
	Assessment core.Assessment
}

// Scenario is one failure-response mode layered on top of every policy.
type Scenario struct {
	Name string
	// Duty is the fraction of calendar time the chip spends under full
	// stress, in (0, 1]. Checkpointing modes spend the remainder in a
	// low-stress checkpoint/restore state with negligible wear, so a
	// chip whose intrinsic (stress-time) lifetime is t fails at
	// calendar time t/Duty.
	Duty float64
	// Spares is the number of in-field spare units: each repair
	// replaces the component that failed with a fresh one (its
	// lifetime is resampled from the component's own distribution,
	// aging from zero at the repair instant) and the chip runs on. The
	// chip fails when a failure occurs with no spare left.
	Spares int
}

// NominalScenario is continuous full-stress operation with no repair.
func NominalScenario() Scenario { return Scenario{Name: "nominal", Duty: 1} }

// Config sizes and seeds one fleet simulation.
type Config struct {
	// Chips is the fleet population size.
	Chips int
	// Seed roots every per-chip random stream.
	Seed uint64
	// Workers bounds concurrent shard workers (0 = GOMAXPROCS).
	// Results do not depend on it.
	Workers int
	// ShardSize is the fixed number of chips per shard. Part of the
	// determinism contract: it fixes the float-summation grouping, so
	// two runs agree bitwise only when their ShardSize agrees.
	ShardSize int
	// HorizonYears is the survival-curve horizon.
	HorizonYears float64
	// Bins is the number of survival-curve bins across the horizon.
	Bins int
	// Shapes are the per-mechanism Weibull wear-out shapes shared by
	// every policy.
	Shapes core.WeibullShapes
	// Variation is the per-chip process-variation model.
	Variation VariationParams
	// Scenarios are the failure-response modes evaluated for every
	// policy; each (policy, scenario) pair gets its own report row.
	Scenarios []Scenario
}

// DefaultConfig returns a production-shaped configuration: 8192-chip
// shards, a 30-year horizon at half-year resolution, the default
// wear-out shapes and variation model, and the nominal scenario.
func DefaultConfig(chips int, seed uint64) Config {
	return Config{
		Chips:        chips,
		Seed:         seed,
		ShardSize:    8192,
		HorizonYears: 30,
		Bins:         60,
		Shapes:       core.DefaultShapes(),
		Variation:    DefaultVariation(),
		Scenarios:    []Scenario{NominalScenario()},
	}
}

// Metric names an instrumented Engine registers.
const (
	MetricRuns    = "fleet_runs_total"   // completed fleet simulations
	MetricChips   = "fleet_chips_total"  // chips simulated to failure
	MetricShards  = "fleet_shards_total" // shards processed
	MetricShardUS = "fleet_shard_us"     // wall time per shard
)

// Engine is a compiled fleet simulation: config plus per-policy cell
// models. Create with New; an Engine is immutable and safe for
// concurrent Run calls.
type Engine struct {
	cfg      Config
	policies []compiledPolicy
	models   []*core.LifetimeModel // parallel to policies (report metadata)
	invBeta  [numCells]float64

	tracer  *obs.Tracer
	runs    *obs.Counter
	chips   *obs.Counter
	shards  *obs.Counter
	shardUS *obs.Histogram
}

// New validates cfg and compiles the policies.
func New(cfg Config, policies []Policy) (*Engine, error) {
	if cfg.Chips < 1 {
		return nil, fmt.Errorf("fleet: Chips %d < 1", cfg.Chips)
	}
	if cfg.ShardSize < 1 {
		return nil, fmt.Errorf("fleet: ShardSize %d < 1", cfg.ShardSize)
	}
	if cfg.Bins < 1 || cfg.Bins > 4096 {
		return nil, fmt.Errorf("fleet: Bins %d outside [1, 4096]", cfg.Bins)
	}
	if !(cfg.HorizonYears > 0 && cfg.HorizonYears <= 1000) {
		return nil, fmt.Errorf("fleet: HorizonYears %v outside (0, 1000]", cfg.HorizonYears)
	}
	if err := cfg.Variation.Validate(); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("fleet: no policies")
	}
	if len(policies) > 64 {
		return nil, fmt.Errorf("fleet: %d policies (max 64)", len(policies))
	}
	if len(cfg.Scenarios) == 0 {
		return nil, fmt.Errorf("fleet: no scenarios")
	}
	if len(cfg.Scenarios) > 16 {
		return nil, fmt.Errorf("fleet: %d scenarios (max 16)", len(cfg.Scenarios))
	}
	for _, sc := range cfg.Scenarios {
		if !(sc.Duty > 0 && sc.Duty <= 1) {
			return nil, fmt.Errorf("fleet: scenario %q duty %v outside (0, 1]", sc.Name, sc.Duty)
		}
		if sc.Spares < 0 || sc.Spares > 16 {
			return nil, fmt.Errorf("fleet: scenario %q spares %d outside [0, 16]", sc.Name, sc.Spares)
		}
	}
	e := &Engine{cfg: cfg}
	var err error
	if e.invBeta, err = invBetaGrid(cfg.Shapes); err != nil {
		return nil, err
	}
	for _, p := range policies {
		cp, lm, err := compilePolicy(p.Name, p.Assessment, cfg.Shapes)
		if err != nil {
			return nil, err
		}
		e.policies = append(e.policies, cp)
		e.models = append(e.models, lm)
	}
	return e, nil
}

// Instrument attaches observability: a span per run and per shard on
// tr, and the fleet_* metrics on reg. Either may be nil. Observational
// only — results are byte-identical with it on or off.
func (e *Engine) Instrument(tr *obs.Tracer, reg *obs.Registry) *Engine {
	e.tracer = tr
	e.runs = reg.Counter(MetricRuns)
	e.chips = reg.Counter(MetricChips)
	e.shards = reg.Counter(MetricShards)
	e.shardUS = reg.Histogram(MetricShardUS)
	return e
}

// ScenarioReport is one (policy, scenario) row of the fleet outcome.
type ScenarioReport struct {
	Policy   string
	Scenario string
	Chips    int

	// MeanYears and StdYears summarize the sampled calendar-lifetime
	// distribution (all chips, including beyond-horizon survivors).
	MeanYears float64
	StdYears  float64

	// Return7 and Return11 are the exact fractions of the fleet failed
	// by the 7- and 11-year warranty horizons.
	Return7  float64
	Return11 float64

	// SurvivalYears[k] / Survival[k] trace the fleet survival curve:
	// Survival[k] is the fraction still alive at SurvivalYears[k]
	// (failures at exactly the edge count as still alive there; the
	// warranty fields above use inclusive comparisons instead).
	SurvivalYears []float64
	Survival      []float64

	// FailMix is the fraction of chips whose terminal failure (the one
	// no spare covered) came from each mechanism.
	FailMix [core.NumMechanisms]float64
}

// Report is the outcome of one fleet run.
type Report struct {
	Chips     int
	Seed      uint64
	Shards    int
	ShardSize int

	// MTTFYears is the per-policy analytic series-system MTTF of the
	// nominal (unvaried) chip — the single-chip number the paper
	// reports, carried alongside the population view for context.
	Policies  []string
	MTTFYears []float64

	// Results holds one row per (policy, scenario), policy-major in
	// input order.
	Results []ScenarioReport
}

// accum is one shard's tallies for one (policy, scenario) pair. Plain
// integers plus one float sum per shard: merging across shards in
// shard-index order is associative for the integers and fixes the float
// rounding order.
type accum struct {
	bins      []int64 // len Bins+1; last slot = survived past horizon
	fail7     int64
	fail11    int64
	mech      [core.NumMechanisms]int64
	sumYears  float64
	sumYears2 float64
}

// shardState is one worker's per-chip scratch, reused across every chip
// the worker processes — the chip loop allocates nothing.
type shardState struct {
	k    [numCells]float64 // per-chip variation multipliers
	z    [numCells]float64 // per-chip draw transform (−ln u)^(1/β) / k
	t    [numCells]float64 // per-policy intrinsic failure times
	work [numCells]float64 // scenario scratch (mutated by repairs)
}

// Run simulates the fleet. ctx is checked at every shard boundary, so a
// cancelled caller stops within one shard (ShardSize chips) of work.
func (e *Engine) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	ctx, span := e.tracer.StartTrack(ctx, "fleet.run")
	if span.Enabled() {
		span.AnnotateInt("chips", int64(e.cfg.Chips))
		span.AnnotateInt("policies", int64(len(e.policies)))
		span.AnnotateInt("scenarios", int64(len(e.cfg.Scenarios)))
	}
	defer span.End()

	nShards := (e.cfg.Chips + e.cfg.ShardSize - 1) / e.cfg.ShardSize
	rows := len(e.policies) * len(e.cfg.Scenarios)
	// One flat accumulator block per shard, allocated up front so the
	// simulation itself is allocation-free.
	accs := make([][]accum, nShards)
	binBacking := make([]int64, nShards*rows*(e.cfg.Bins+1))
	for sh := range accs {
		accs[sh] = make([]accum, rows)
		for r := range accs[sh] {
			off := (sh*rows + r) * (e.cfg.Bins + 1)
			accs[sh][r].bins = binBacking[off : off+e.cfg.Bins+1]
		}
	}

	if err := e.runShards(ctx, nShards, accs); err != nil {
		return nil, err
	}

	// Merge in shard-index order (the determinism contract).
	merged := make([]accum, rows)
	for r := range merged {
		merged[r].bins = make([]int64, e.cfg.Bins+1)
	}
	for sh := 0; sh < nShards; sh++ {
		for r := range merged {
			m, a := &merged[r], &accs[sh][r]
			for b := range m.bins {
				m.bins[b] += a.bins[b]
			}
			m.fail7 += a.fail7
			m.fail11 += a.fail11
			for i := range m.mech {
				m.mech[i] += a.mech[i]
			}
			m.sumYears += a.sumYears
			m.sumYears2 += a.sumYears2
		}
	}

	rep := e.buildReport(merged, nShards)
	e.runs.Inc()
	e.chips.Add(int64(e.cfg.Chips))
	if span.Enabled() {
		span.AnnotateInt("elapsed_us", time.Since(start).Microseconds())
	}
	return rep, nil
}

// runShards drains the shard indices through a bounded worker pool,
// checking ctx at every shard boundary. Worker count never influences
// results: each shard writes only its own accs slot.
func (e *Engine) runShards(ctx context.Context, nShards int, accs [][]accum) error {
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, nShards)
	idx := make(chan int)
	var wg sync.WaitGroup
	// Each worker is joined via the WaitGroup, bounded by the range
	// over idx (closed by the feeder), and stopped by the per-shard ctx
	// check.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st shardState
			for sh := range idx {
				if ctx.Err() != nil {
					return
				}
				shardStart := time.Now()
				_, ss := e.tracer.Start(ctx, "fleet.shard")
				ss.AnnotateInt("shard", int64(sh))
				lo := sh * e.cfg.ShardSize
				hi := min(lo+e.cfg.ShardSize, e.cfg.Chips)
				e.simulateShard(&st, accs[sh], lo, hi)
				ss.End()
				e.shards.Inc()
				e.shardUS.Observe(time.Since(shardStart).Microseconds())
			}
		}()
	}
	var err error
feed:
	for sh := 0; sh < nShards; sh++ {
		select {
		case idx <- sh:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	return err
}

// simulateShard runs chips [lo, hi) into acc. Zero allocations per chip
// (TestSimulateShardZeroAlloc); everything it touches lives in st, acc
// or the engine's immutable tables.
func (e *Engine) simulateShard(st *shardState, acc []accum, lo, hi int) {
	binW := e.cfg.HorizonYears / float64(e.cfg.Bins)
	for chip := lo; chip < hi; chip++ {
		e.simulateChip(st, uint64(chip), acc, binW)
	}
}

// simulateChip draws one chip's process variation, samples its
// component lifetimes once, and plays them through every
// (policy, scenario) pair under common random numbers.
//
//ramp:hot
func (e *Engine) simulateChip(st *shardState, chip uint64, acc []accum, binW float64) {
	vr := chipStream(e.cfg.Seed, saltVariation, chip)
	sampleVariation(&vr, e.cfg.Variation, &st.k)

	// One uniform per cell, transformed once and shared across every
	// policy: z = (−ln u)^(1/β) / k, so a policy's intrinsic failure
	// time for the cell is just eta·z.
	lr := chipStream(e.cfg.Seed, saltLifetime, chip)
	for c := 0; c < numCells; c++ {
		u := lr.uniform()
		st.z[c] = math.Exp(e.invBeta[c]*math.Log(-math.Log(u))) / st.k[c]
	}

	nscen := len(e.cfg.Scenarios)
	for pi := range e.policies {
		eta := &e.policies[pi].eta
		for c := 0; c < numCells; c++ {
			st.t[c] = eta[c] * st.z[c]
		}
		for si := range e.cfg.Scenarios {
			sc := &e.cfg.Scenarios[si]
			var tFail float64
			var cFail int
			if sc.Spares == 0 {
				tFail, cFail = minCell(&st.t)
			} else {
				st.work = st.t
				tFail, cFail = minCell(&st.work)
				// Repairs draw from a substream split by (policy,
				// scenario): the failing component differs across
				// policies, so sharing one stream would let one
				// policy's repair count shift another's draws.
				rr := chipStream(e.cfg.Seed, saltRepair^mix64(uint64(pi)<<32|uint64(si)), chip)
				for rep := 0; rep < sc.Spares; rep++ {
					u := rr.uniform()
					w := math.Exp(e.invBeta[cFail] * math.Log(-math.Log(u)))
					st.work[cFail] = tFail + eta[cFail]*(w/st.k[cFail])
					tFail, cFail = minCell(&st.work)
				}
			}
			years := tFail / (HoursPerYear * sc.Duty)
			a := &acc[pi*nscen+si]
			if years <= Warranty7Years {
				a.fail7++
			}
			if years <= Warranty11Years {
				a.fail11++
			}
			a.mech[cellMechanism(cFail)]++
			a.sumYears += years
			a.sumYears2 += years * years
			idx := int(years / binW)
			if idx >= e.cfg.Bins {
				idx = e.cfg.Bins // survived past the horizon
			}
			a.bins[idx]++
		}
	}
}

// minCell returns the smallest cell time and its index. At least one
// cell is finite (New rejects assessments with no active component).
//
//ramp:hot
func minCell(t *[numCells]float64) (float64, int) {
	best, arg := t[0], 0
	for c := 1; c < numCells; c++ {
		if t[c] < best {
			best, arg = t[c], c
		}
	}
	return best, arg
}

// buildReport turns merged tallies into the public Report.
func (e *Engine) buildReport(merged []accum, nShards int) *Report {
	rep := &Report{
		Chips:     e.cfg.Chips,
		Seed:      e.cfg.Seed,
		Shards:    nShards,
		ShardSize: e.cfg.ShardSize,
	}
	for pi, p := range e.policies {
		rep.Policies = append(rep.Policies, p.name)
		rep.MTTFYears = append(rep.MTTFYears, e.models[pi].MTTFYears())
	}
	n := float64(e.cfg.Chips)
	binW := e.cfg.HorizonYears / float64(e.cfg.Bins)
	nscen := len(e.cfg.Scenarios)
	for pi := range e.policies {
		for si := range e.cfg.Scenarios {
			a := &merged[pi*nscen+si]
			sr := ScenarioReport{
				Policy:    e.policies[pi].name,
				Scenario:  e.cfg.Scenarios[si].Name,
				Chips:     e.cfg.Chips,
				MeanYears: a.sumYears / n,
				Return7:   float64(a.fail7) / n,
				Return11:  float64(a.fail11) / n,
			}
			variance := a.sumYears2/n - (a.sumYears/n)*(a.sumYears/n)
			if variance > 0 {
				sr.StdYears = math.Sqrt(variance)
			}
			var cum int64
			sr.SurvivalYears = make([]float64, e.cfg.Bins)
			sr.Survival = make([]float64, e.cfg.Bins)
			for k := 0; k < e.cfg.Bins; k++ {
				cum += a.bins[k]
				sr.SurvivalYears[k] = float64(k+1) * binW
				sr.Survival[k] = 1 - float64(cum)/n
			}
			for m := range sr.FailMix {
				sr.FailMix[m] = float64(a.mech[m]) / n
			}
			rep.Results = append(rep.Results, sr)
		}
	}
	return rep
}

// SurvivalAt returns the curve's survival fraction at the last edge not
// after years (1 before the first edge).
func (sr *ScenarioReport) SurvivalAt(years float64) float64 {
	s := 1.0
	for k, ty := range sr.SurvivalYears {
		if ty > years {
			break
		}
		s = sr.Survival[k]
	}
	return s
}

// WriteTable renders the report as a fixed-width table (golden-stable:
// every number prints through explicit precision).
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "Fleet Monte Carlo: %d chips, seed %d, %d shards x %d\n",
		r.Chips, r.Seed, r.Shards, r.ShardSize)
	for i, p := range r.Policies {
		fmt.Fprintf(w, "  policy %-18s nominal-chip MTTF %8.2f years\n", p, r.MTTFYears[i])
	}
	fmt.Fprintf(w, "%-18s %-12s %9s %9s %8s %8s %8s %8s %8s  %s\n",
		"policy", "scenario", "mean-y", "std-y", "ret7%", "ret11%", "S(11y)", "S(15y)", "S(20y)", "fail-mix EM/SM/TDDB/TC %")
	for i := range r.Results {
		sr := &r.Results[i]
		fmt.Fprintf(w, "%-18s %-12s %9.2f %9.2f %8.3f %8.3f %8.4f %8.4f %8.4f  %.1f/%.1f/%.1f/%.1f\n",
			sr.Policy, sr.Scenario, sr.MeanYears, sr.StdYears,
			100*sr.Return7, 100*sr.Return11,
			sr.SurvivalAt(11), sr.SurvivalAt(15), sr.SurvivalAt(20),
			100*sr.FailMix[core.EM], 100*sr.FailMix[core.SM],
			100*sr.FailMix[core.TDDB], 100*sr.FailMix[core.TC])
	}
}
