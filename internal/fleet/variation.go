// Per-chip process variation.
//
// The paper's RAMP model (and our exp pipeline) computes the FIT of one
// nominal chip. Real fleets spread around that nominal: line-width and
// via geometry vary per die and per structure (shifting EM/SM/TDDB
// rates), and leakage varies chip-to-chip (a leaky chip runs hotter,
// which accelerates every thermally activated mechanism). We model both
// as multiplicative FIT-rate perturbations drawn per chip:
//
//   - a per-structure lognormal multiplier (geometry/local variation),
//     independent across structures within a chip, and
//   - one chip-level lognormal leakage factor L mapped onto each
//     mechanism as L^gamma_m — thermally driven mechanisms (TDDB
//     strongest, then EM, then SM) feel the leakage-induced temperature
//     shift; thermal cycling's package fatigue does not.
//
// Both lognormals are mean-one, so the fleet-average rate matches the
// nominal RAMP assessment and survival deltas come from spread, not
// from a hidden rate shift. A FIT multiplier k scales a component's
// failure rate by k, i.e. divides its Weibull scale by k.
package fleet

import (
	"fmt"
	"math"

	"ramp/internal/core"
)

// VariationParams describes the per-chip process-variation model.
// The zero value disables variation (every multiplier is exactly 1).
type VariationParams struct {
	// StructSigma is the log-scale sigma of the per-structure FIT-rate
	// multiplier (geometry variation). 0 disables it.
	StructSigma float64
	// LeakSigma is the log-scale sigma of the chip-level leakage spread
	// factor L. 0 disables it.
	LeakSigma float64
	// LeakGamma maps L onto per-mechanism FIT multipliers as L^gamma.
	LeakGamma [core.NumMechanisms]float64
}

// DefaultVariation returns a moderate 65 nm-era spread: ~8% sigma on
// per-structure rates, ~12% sigma on chip leakage, with TDDB most
// sensitive to the leakage-induced temperature shift and thermal
// cycling insensitive to it.
func DefaultVariation() VariationParams {
	var g [core.NumMechanisms]float64
	g[core.EM] = 0.6
	g[core.SM] = 0.4
	g[core.TDDB] = 1.0
	g[core.TC] = 0
	return VariationParams{StructSigma: 0.08, LeakSigma: 0.12, LeakGamma: g}
}

// NoVariation returns parameters under which every chip is the nominal
// chip (all multipliers exactly 1) — the configuration the statistical
// test suite uses to compare samples against the closed-form
// LifetimeModel.Reliability curve.
func NoVariation() VariationParams { return VariationParams{} }

// Validate bounds the parameters to physically plausible spreads.
func (p VariationParams) Validate() error {
	if !(p.StructSigma >= 0 && p.StructSigma <= 1) {
		return fmt.Errorf("fleet: StructSigma %v outside [0, 1]", p.StructSigma)
	}
	if !(p.LeakSigma >= 0 && p.LeakSigma <= 1) {
		return fmt.Errorf("fleet: LeakSigma %v outside [0, 1]", p.LeakSigma)
	}
	for m, g := range p.LeakGamma {
		if !(g >= 0 && g <= 4) {
			return fmt.Errorf("fleet: LeakGamma[%v] = %v outside [0, 4]", core.Mechanism(m), g)
		}
	}
	return nil
}

// sampleVariation fills k with one chip's per-cell FIT-rate multipliers
// from the chip's variation substream. Every multiplier is finite and
// strictly positive (FuzzVariationSampler holds this over the whole
// valid parameter space).
//
//ramp:hot
func sampleVariation(r *rng, p VariationParams, k *[numCells]float64) {
	// Chip-level leakage factor, folded per mechanism.
	var lg [int(core.NumMechanisms)]float64
	if p.LeakSigma > 0 {
		lnL := math.Log(r.lognormal(p.LeakSigma))
		for m := range lg {
			lg[m] = math.Exp(p.LeakGamma[m] * lnL)
		}
	} else {
		for m := range lg {
			lg[m] = 1
		}
	}
	nm := int(core.NumMechanisms)
	for s := 0; s < numCells/nm; s++ {
		sv := 1.0
		if p.StructSigma > 0 {
			sv = r.lognormal(p.StructSigma)
		}
		for m := 0; m < nm; m++ {
			k[s*nm+m] = sv * lg[m]
		}
	}
}
