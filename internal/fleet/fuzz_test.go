package fleet

import (
	"context"
	"math"
	"testing"

	"ramp/internal/core"
)

// FuzzVariationSampler drives the process-variation sampler across the
// whole accepted parameter space: every multiplier it produces must be
// finite and strictly positive (a zero or NaN multiplier would poison
// the inverse-CDF transform), and the fleet survival curve built on top
// of it must stay a monotone probability.
func FuzzVariationSampler(f *testing.F) {
	f.Add(uint64(1), 0.08, 0.12, 0.6, 0.4, 1.0, 0.0)
	f.Add(uint64(99), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(7), 1.0, 1.0, 4.0, 4.0, 4.0, 4.0)
	f.Add(uint64(0), 0.5, 0.01, 2.0, 0.1, 3.3, 0.7)
	f.Fuzz(func(t *testing.T, seed uint64, ss, ls, g0, g1, g2, g3 float64) {
		p := VariationParams{StructSigma: ss, LeakSigma: ls}
		p.LeakGamma[core.EM] = g0
		p.LeakGamma[core.SM] = g1
		p.LeakGamma[core.TDDB] = g2
		p.LeakGamma[core.TC] = g3
		if p.Validate() != nil {
			t.Skip()
		}

		var k [numCells]float64
		for chip := uint64(0); chip < 64; chip++ {
			r := chipStream(seed, saltVariation, chip)
			sampleVariation(&r, p, &k)
			for c, v := range k {
				if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
					t.Fatalf("chip %d cell %d: multiplier %v not finite positive", chip, c, v)
				}
			}
		}

		cfg := DefaultConfig(1_000, seed)
		cfg.Variation = p
		rep := runFleetF(t, cfg)
		for _, sr := range rep.Results {
			prev := 1.0
			for b, s := range sr.Survival {
				if s < 0 || s > prev {
					t.Fatalf("survival not monotone in [0,1] at bin %d: %v (prev %v)", b, s, prev)
				}
				prev = s
			}
		}
	})
}

// runFleetF is runFleet for fuzz targets (testing.F passes *testing.T
// into the fuzz function, so the helper is shared by signature).
func runFleetF(t *testing.T, cfg Config) *Report {
	t.Helper()
	eng, err := New(cfg, []Policy{{Name: "base", Assessment: multiCell()}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}
