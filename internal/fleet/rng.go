// Deterministic stream-split pseudo-random numbers for the fleet Monte
// Carlo engine.
//
// Every virtual chip owns independent random streams derived purely
// from (engine seed, stream salt, chip index) via splitmix64 mixing.
// A chip's draws therefore never depend on which worker shard processes
// it or on how many workers run: shard results are sums of per-chip
// outcomes, each a pure function of (seed, chip), merged in fixed shard
// order — bitwise identical at any worker count.
//
// Three salted substreams separate concerns so that adding draws to one
// never perturbs another (common-random-numbers across configurations):
//
//	saltVariation  per-chip process-variation multipliers
//	saltLifetime   per-cell inverse-CDF Weibull lifetime uniforms
//	saltRepair     spare-unit repair resamples, split further by
//	               (policy, scenario) because the failing component —
//	               and hence the number of repair draws — differs
package fleet

import "math"

// golden is the splitmix64 stream increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// Substream salts. Arbitrary odd constants, distinct so the mixed
// starting states decorrelate.
const (
	saltVariation uint64 = 0xa5a5a5a5_0badf00d
	saltLifetime  uint64 = 0x5ee5_1ee7_cafe_f00f
	saltRepair    uint64 = 0xdead_beef_1234_5679
)

// mix64 is the splitmix64 finalizer: an invertible avalanche that maps
// a weak counter state to a well-distributed 64-bit value.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rng is a splitmix64 generator. The zero value is a valid (seed-0)
// stream, but chips always construct theirs through chipStream.
type rng struct{ s uint64 }

// chipStream derives the chip's substream for one salt. The chip index
// is spread by the golden-ratio stride and avalanched before the salt
// folds in, so neighbouring chips and neighbouring salts land in
// unrelated regions of the state space.
func chipStream(seed, salt, chip uint64) rng {
	return rng{s: mix64(mix64(seed+golden*chip) ^ salt)}
}

// next advances the stream and returns 64 uniform bits.
func (r *rng) next() uint64 {
	r.s += golden
	return mix64(r.s)
}

// uniform returns a draw in the open interval (0, 1): the 53-bit
// mantissa is offset by half an ulp so neither endpoint is reachable,
// keeping -log(u) finite and strictly positive for the inverse-CDF
// transform.
func (r *rng) uniform() float64 {
	return (float64(r.next()>>11) + 0.5) * (1.0 / (1 << 53))
}

// normal returns one standard normal draw (Box-Muller, cosine branch).
// Always exactly two uniforms, so draw counts stay static.
func (r *rng) normal() float64 {
	u1 := r.uniform()
	u2 := r.uniform()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// lognormal returns a mean-one lognormal draw with log-scale sigma:
// exp(sigma·N − sigma²/2) has expectation exactly 1, so variation
// multipliers spread the fleet without shifting its average rate.
func (r *rng) lognormal(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma*r.normal() - sigma*sigma/2)
}
