// Statistical verification of the sampling layer: the engine's
// inverse-CDF Weibull draws are compared against the closed-form
// moments and quantiles of the distributions they claim to sample, and
// the empirical fleet survival curve is KS-checked against the analytic
// core.LifetimeModel.Reliability series product. All tests run at
// pinned seeds with CLT-derived tolerances, so they are deterministic:
// a failure means the sampler is wrong, not that the dice were unlucky.
package fleet

import (
	"context"
	"math"
	"reflect"
	"testing"

	"ramp/internal/core"
	"ramp/internal/floorplan"
)

// singleCell returns an assessment with exactly one active
// (structure, mechanism) component at the given FIT rate.
func singleCell(s floorplan.Structure, m core.Mechanism, fit float64) core.Assessment {
	var a core.Assessment
	a.FIT[s][m] = fit
	return a
}

// multiCell returns an assessment with a handful of active components
// spanning all four mechanisms — small enough to reason about, rich
// enough that the series-system minimum is non-trivial.
func multiCell() core.Assessment {
	var a core.Assessment
	a.FIT[floorplan.IntALU][core.EM] = 900
	a.FIT[floorplan.FPU][core.EM] = 400
	a.FIT[floorplan.IntRF][core.SM] = 600
	a.FIT[floorplan.L1D][core.TDDB] = 700
	a.FIT[floorplan.Window][core.TC] = 500
	return a
}

// runFleet builds and runs an engine over one policy.
func runFleet(t *testing.T, cfg Config, a core.Assessment) *Report {
	t.Helper()
	eng, err := New(cfg, []Policy{{Name: "base", Assessment: a}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestWeibullMomentsSingleCell pins the sampler to the analytic mean,
// standard deviation, and median of a single Weibull component. With
// one active cell and no process variation the chip lifetime IS one
// inverse-CDF Weibull draw, so the fleet statistics are direct sampler
// statistics.
func TestWeibullMomentsSingleCell(t *testing.T) {
	const (
		n   = 200_000
		fit = 3805.2 // => MTTF = 1e9/fit hours ~ 30 years
	)
	for _, m := range core.Mechanisms() {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			shapes := core.DefaultShapes()
			beta := shapes[m]
			mttfH := 1e9 / fit
			eta := mttfH / math.Gamma(1+1/beta)

			meanY := eta * math.Gamma(1+1/beta) / HoursPerYear
			varY := eta * eta * (math.Gamma(1+2/beta) - math.Gamma(1+1/beta)*math.Gamma(1+1/beta)) /
				(HoursPerYear * HoursPerYear)
			sdY := math.Sqrt(varY)
			medianY := eta * math.Pow(math.Ln2, 1/beta) / HoursPerYear

			cfg := DefaultConfig(n, 7)
			cfg.Variation = NoVariation()
			cfg.HorizonYears = 120
			cfg.Bins = 2400 // 0.05-year resolution for the quantile check
			rep := runFleet(t, cfg, singleCell(floorplan.IntALU, m, fit))
			sr := &rep.Results[0]

			// Mean within 5 CLT standard errors of the analytic mean.
			seMean := sdY / math.Sqrt(n)
			if d := math.Abs(sr.MeanYears - meanY); d > 5*seMean {
				t.Errorf("mean = %.4f years, want %.4f ± %.4f", sr.MeanYears, meanY, 5*seMean)
			}
			// Standard deviation within 2% relative (generous vs the
			// ~sd/sqrt(2n) sampling error of the estimator).
			if d := math.Abs(sr.StdYears-sdY) / sdY; d > 0.02 {
				t.Errorf("std = %.4f years, want %.4f (rel err %.4f)", sr.StdYears, sdY, d)
			}
			// Survival at the analytic median is 1/2 within binomial
			// noise plus one bin of discretization.
			if s := sr.SurvivalAt(medianY); math.Abs(s-0.5) > 0.01 {
				t.Errorf("S(median %.2fy) = %.4f, want 0.5 ± 0.01", medianY, s)
			}
			// And the warranty-horizon fractions match the closed-form
			// CDF exactly (same tolerance).
			wantRet11 := 1 - math.Exp(-math.Pow(11*HoursPerYear/eta, beta))
			if d := math.Abs(sr.Return11 - wantRet11); d > 0.005 {
				t.Errorf("Return11 = %.5f, want %.5f", sr.Return11, wantRet11)
			}
		})
	}
}

// TestSurvivalMatchesReliability KS-checks the empirical survival curve
// of an unvaried fleet against the closed-form series-system
// core.LifetimeModel.Reliability at every bin edge.
func TestSurvivalMatchesReliability(t *testing.T) {
	const n = 100_000
	a := multiCell()
	lm, err := core.NewLifetimeModel(a, core.DefaultShapes())
	if err != nil {
		t.Fatalf("NewLifetimeModel: %v", err)
	}

	cfg := DefaultConfig(n, 11)
	cfg.Variation = NoVariation()
	cfg.HorizonYears = 60
	cfg.Bins = 600
	rep := runFleet(t, cfg, a)
	sr := &rep.Results[0]

	// KS statistic over the binned curve. 2.5/sqrt(n) is past the 99.9%
	// KS quantile (1.95/sqrt(n)); at pinned seed the observed D is far
	// below even that, so this guards real sampler bugs, not noise.
	maxD, maxAt := 0.0, 0.0
	for k, ty := range sr.SurvivalYears {
		want := lm.Reliability(ty * HoursPerYear)
		if d := math.Abs(sr.Survival[k] - want); d > maxD {
			maxD, maxAt = d, ty
		}
	}
	if limit := 2.5 / math.Sqrt(n); maxD > limit {
		t.Errorf("KS distance %.5f at %.1f years exceeds %.5f", maxD, maxAt, limit)
	}
}

// TestMeanOneVariationPreservesRate checks that process variation does
// not smuggle in a fleet-wide rate shift: the mean-one multipliers must
// leave the average failure rate near nominal, so the fleet mean
// lifetime moves only modestly (Jensen effects on the minimum) while
// the spread widens.
func TestMeanOneVariationPreservesRate(t *testing.T) {
	const n = 100_000
	a := multiCell()

	cfg := DefaultConfig(n, 3)
	cfg.Variation = NoVariation()
	plain := runFleet(t, cfg, a).Results[0]

	cfg.Variation = DefaultVariation()
	varied := runFleet(t, cfg, a).Results[0]

	if d := math.Abs(varied.MeanYears-plain.MeanYears) / plain.MeanYears; d > 0.05 {
		t.Errorf("variation shifted mean lifetime by %.1f%% (plain %.2f, varied %.2f)",
			100*d, plain.MeanYears, varied.MeanYears)
	}
	if varied.StdYears <= plain.StdYears {
		t.Errorf("variation did not widen spread: std %.3f -> %.3f", plain.StdYears, varied.StdYears)
	}
}

// TestWorkerCountInvariance is the determinism contract: the same
// configuration produces bitwise-identical reports at 1 and 8 workers,
// with variation, repair, and checkpointing all in play.
func TestWorkerCountInvariance(t *testing.T) {
	a := multiCell()
	base := DefaultConfig(50_000, 42)
	base.ShardSize = 1024 // many shards so scheduling actually varies
	base.Scenarios = []Scenario{
		NominalScenario(),
		{Name: "checkpoint", Duty: 0.8},
		{Name: "repair", Duty: 1, Spares: 2},
	}

	cfg1 := base
	cfg1.Workers = 1
	rep1 := runFleet(t, cfg1, a)

	cfg8 := base
	cfg8.Workers = 8
	rep8 := runFleet(t, cfg8, a)

	if !reflect.DeepEqual(rep1, rep8) {
		t.Fatalf("reports differ between 1 and 8 workers")
	}
}
