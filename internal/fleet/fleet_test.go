package fleet

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"ramp/internal/core"
	"ramp/internal/obs"
)

func TestSeedDeterminismAndSensitivity(t *testing.T) {
	a := multiCell()
	cfg := DefaultConfig(20_000, 9)
	r1 := runFleet(t, cfg, a)
	r2 := runFleet(t, cfg, a)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("same seed produced different reports")
	}
	cfg.Seed = 10
	r3 := runFleet(t, cfg, a)
	if reflect.DeepEqual(r1.Results[0].Survival, r3.Results[0].Survival) {
		t.Fatal("different seeds produced identical survival curves")
	}
}

// TestCheckpointDutyScalesLifetimes: under common random numbers a chip
// fails at the same intrinsic stress time under any duty cycle, so
// halving the duty exactly doubles every calendar statistic.
func TestCheckpointDutyScalesLifetimes(t *testing.T) {
	a := multiCell()
	cfg := DefaultConfig(20_000, 5)
	cfg.HorizonYears = 60 // keep the doubled lifetimes inside the curve
	cfg.Scenarios = []Scenario{
		NominalScenario(),
		{Name: "ckpt50", Duty: 0.5},
	}
	rep := runFleet(t, cfg, a)
	nom, ck := &rep.Results[0], &rep.Results[1]
	if d := math.Abs(ck.MeanYears-2*nom.MeanYears) / nom.MeanYears; d > 1e-12 {
		t.Errorf("duty 0.5 mean %.6f != 2 x nominal %.6f", ck.MeanYears, nom.MeanYears)
	}
	// Calendar survival at 2t under half duty equals nominal survival
	// at t: compare aligned bins (bin 2k+1 of ckpt covers twice the
	// years of nominal bin k).
	for k := 0; k < cfg.Bins/2; k++ {
		if ck.Survival[2*k+1] != nom.Survival[k] {
			t.Fatalf("S curves misaligned at bin %d: %v vs %v", k, ck.Survival[2*k+1], nom.Survival[k])
		}
	}
	if ck.Return7 >= nom.Return7 {
		t.Errorf("checkpointing did not reduce 7-year returns: %v >= %v", ck.Return7, nom.Return7)
	}
}

// TestSparesExtendLifetime: each spare strictly improves every summary
// statistic, and more spares never hurt.
func TestSparesExtendLifetime(t *testing.T) {
	a := multiCell()
	cfg := DefaultConfig(20_000, 6)
	cfg.Scenarios = []Scenario{
		NominalScenario(),
		{Name: "spare1", Duty: 1, Spares: 1},
		{Name: "spare2", Duty: 1, Spares: 2},
	}
	rep := runFleet(t, cfg, a)
	for i := 1; i < len(rep.Results); i++ {
		prev, cur := &rep.Results[i-1], &rep.Results[i]
		if cur.MeanYears <= prev.MeanYears {
			t.Errorf("%s mean %.3f <= %s mean %.3f", cur.Scenario, cur.MeanYears, prev.Scenario, prev.MeanYears)
		}
		if cur.Return11 >= prev.Return11 {
			t.Errorf("%s Return11 %.4f >= %s %.4f", cur.Scenario, cur.Return11, prev.Scenario, prev.Return11)
		}
	}
}

func TestSurvivalCurveShape(t *testing.T) {
	rep := runFleet(t, DefaultConfig(20_000, 2), multiCell())
	for _, sr := range rep.Results {
		prev := 1.0
		for k, s := range sr.Survival {
			if s < 0 || s > prev {
				t.Fatalf("survival not a monotone probability at bin %d: %v (prev %v)", k, s, prev)
			}
			prev = s
		}
		var mix float64
		for _, f := range sr.FailMix {
			mix += f
		}
		failed := 1 - sr.Survival[len(sr.Survival)-1]
		// Every failing chip has exactly one terminal mechanism; chips
		// surviving past the horizon still failed eventually in-model,
		// so the mix sums to 1 over all chips.
		if math.Abs(mix-1) > 1e-9 {
			t.Errorf("%s/%s: FailMix sums to %v, want 1 (failed-by-horizon %v)", sr.Policy, sr.Scenario, mix, failed)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	a := multiCell()
	good := DefaultConfig(100, 1)
	bad := []func(*Config){
		func(c *Config) { c.Chips = 0 },
		func(c *Config) { c.ShardSize = 0 },
		func(c *Config) { c.Bins = 0 },
		func(c *Config) { c.Bins = 5000 },
		func(c *Config) { c.HorizonYears = 0 },
		func(c *Config) { c.Variation.StructSigma = 2 },
		func(c *Config) { c.Variation.LeakSigma = -0.1 },
		func(c *Config) { c.Scenarios = nil },
		func(c *Config) { c.Scenarios = []Scenario{{Name: "x", Duty: 0}} },
		func(c *Config) { c.Scenarios = []Scenario{{Name: "x", Duty: 1.5}} },
		func(c *Config) { c.Scenarios = []Scenario{{Name: "x", Duty: 1, Spares: 99}} },
		func(c *Config) { c.Shapes = core.WeibullShapes{} },
	}
	for i, mutate := range bad {
		cfg := good
		cfg.Scenarios = append([]Scenario(nil), good.Scenarios...)
		mutate(&cfg)
		if _, err := New(cfg, []Policy{{Name: "p", Assessment: a}}); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("empty policy list accepted")
	}
	if _, err := New(good, []Policy{{Name: "empty"}}); err == nil {
		t.Error("assessment with no active components accepted")
	}
}

func TestRunCancellation(t *testing.T) {
	eng, err := New(DefaultConfig(100_000, 1), []Policy{{Name: "p", Assessment: multiCell()}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx); err == nil {
		t.Fatal("cancelled Run returned nil error")
	}
}

// TestSimulateShardZeroAlloc proves the per-chip hot path allocates
// nothing: all scratch lives in shardState and the preallocated
// accumulators.
func TestSimulateShardZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(4096, 1)
	cfg.Scenarios = []Scenario{NominalScenario(), {Name: "repair", Duty: 0.9, Spares: 2}}
	eng, err := New(cfg, []Policy{{Name: "p", Assessment: multiCell()}})
	if err != nil {
		t.Fatal(err)
	}
	rows := len(eng.policies) * len(cfg.Scenarios)
	acc := make([]accum, rows)
	for r := range acc {
		acc[r].bins = make([]int64, cfg.Bins+1)
	}
	var st shardState
	allocs := testing.AllocsPerRun(10, func() {
		eng.simulateShard(&st, acc, 0, 512)
	})
	if allocs != 0 {
		t.Fatalf("simulateShard allocates %v per run, want 0", allocs)
	}
}

func TestInstrumentedRun(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	cfg := DefaultConfig(10_000, 4)
	cfg.ShardSize = 2048
	eng, err := New(cfg, []Policy{{Name: "p", Assessment: multiCell()}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := eng.Instrument(tr, reg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, inst) {
		t.Fatal("instrumentation changed results")
	}
	if got := reg.Counter(MetricChips).Value(); got != 10_000 {
		t.Errorf("%s = %d, want 10000", MetricChips, got)
	}
	if got := reg.Counter(MetricShards).Value(); got != 5 {
		t.Errorf("%s = %d, want 5", MetricShards, got)
	}
	if tr.Len() == 0 {
		t.Error("no spans recorded")
	}
}

func TestWriteTable(t *testing.T) {
	rep := runFleet(t, DefaultConfig(5_000, 1), multiCell())
	var buf bytes.Buffer
	rep.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"Fleet Monte Carlo", "base", "nominal", "ret7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	rep.WriteTable(&buf2)
	if buf.String() != buf2.String() {
		t.Error("WriteTable is not deterministic")
	}
}
