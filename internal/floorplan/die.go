package floorplan

import (
	"fmt"
	"math"
)

// Die is a manycore die: n copies of a single-core floorplan tiled on a
// rows × cols grid. Every tile is geometrically identical to the base
// floorplan; tiles only differ by their (x, y) offset on the die.
// Structure addressing becomes (core, Structure), flattened to a single
// block index core·NumStructures + Structure wherever a dense vector or
// matrix is indexed (thermal conductance, per-block power).
//
// Adjacency is computed in global die coordinates, so blocks of
// neighbouring cores that meet at a tile seam are adjacent exactly like
// blocks inside one core: the cores thermally couple through shared
// silicon, which is what makes placement a lifetime decision on a
// manycore die (hot neighbours heat each other).
//
// A Die with n = 1 reproduces the single-core floorplan bit for bit —
// the offsets are exactly zero, so areas, shared edges and centre
// distances match the base floorplan's own adjacency computation.
type Die struct {
	Base   *Floorplan
	NCores int
	// Grid shape: NCores = Rows·Cols with Rows ≤ Cols (wide dies). Core
	// k sits at column k%Cols, row k/Cols.
	Rows, Cols int
	// Die envelope in mm.
	WidthMM, HeightMM float64

	offX, offY  []float64 // per-core tile offsets, mm
	adjacencies []DieAdjacency
}

// DieAdjacency records that two blocks on the die share an edge. For
// blocks of the same core it mirrors the base floorplan's Adjacency;
// across cores it captures the tile-seam coupling.
type DieAdjacency struct {
	CoreA, CoreB int
	A, B         Structure
	SharedMM     float64 // length of the shared edge, mm
	CenterDist   float64 // centre-to-centre distance, mm
}

// NewDie tiles base into an n-core die. n must be at least 1; the grid
// is the most square rows × cols factorisation of n (rows is the
// largest divisor of n not exceeding √n), so n ∈ {1, 2, 4, 8, 16}
// yields 1×1, 1×2, 2×2, 2×4 and 4×4 grids.
func NewDie(base *Floorplan, n int) (*Die, error) {
	if n < 1 {
		return nil, fmt.Errorf("floorplan: die needs at least one core, got %d", n)
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: die base: %w", err)
	}
	rows := 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	cols := n / rows
	d := &Die{
		Base:     base,
		NCores:   n,
		Rows:     rows,
		Cols:     cols,
		WidthMM:  float64(cols) * base.DieWidthMM,
		HeightMM: float64(rows) * base.DieHeightMM,
		offX:     make([]float64, n),
		offY:     make([]float64, n),
	}
	for k := 0; k < n; k++ {
		d.offX[k] = float64(k%cols) * base.DieWidthMM
		d.offY[k] = float64(k/cols) * base.DieHeightMM
	}
	d.computeAdjacencies()
	return d, nil
}

// MustNewDie is NewDie, panicking on invalid inputs.
func MustNewDie(base *Floorplan, n int) *Die {
	d, err := NewDie(base, n)
	if err != nil {
		panic(err)
	}
	return d
}

// NumBlocks returns the total block count across all cores.
func (d *Die) NumBlocks() int { return d.NCores * int(NumStructures) }

// Index flattens a (core, structure) address into a dense block index.
func (d *Die) Index(core int, s Structure) int {
	return core*int(NumStructures) + int(s)
}

// CoreOf inverts Index: the core and structure of a flat block index.
func (d *Die) CoreOf(i int) (core int, s Structure) {
	return i / int(NumStructures), Structure(i % int(NumStructures))
}

// BlockRect returns a block's rectangle in global die coordinates.
func (d *Die) BlockRect(core int, s Structure) Rect {
	r := d.Base.Blocks[s].Rect
	return Rect{
		X0: r.X0 + d.offX[core], Y0: r.Y0 + d.offY[core],
		X1: r.X1 + d.offX[core], Y1: r.Y1 + d.offY[core],
	}
}

// AreaMM2 returns the area of structure s on any core; tiles are
// replicas, so it equals the base floorplan's.
func (d *Die) AreaMM2(core int, s Structure) float64 {
	return d.Base.AreaMM2(s)
}

// Adjacencies returns every pair of blocks on the die that share an
// edge, intra-core and across tile seams, in deterministic flat-index
// order.
func (d *Die) Adjacencies() []DieAdjacency {
	return d.adjacencies
}

// computeAdjacencies finds shared edges between all block pairs in
// global coordinates. The i < j loop over flat indices visits same-core
// pairs in the base floorplan's own order, so an n = 1 die reproduces
// Floorplan.Adjacencies exactly; cross-core pairs only appear for
// blocks meeting at a tile seam.
func (d *Die) computeAdjacencies() {
	nb := d.NumBlocks()
	d.adjacencies = d.adjacencies[:0]
	for i := 0; i < nb; i++ {
		ci, si := d.CoreOf(i)
		a := d.BlockRect(ci, si)
		for j := i + 1; j < nb; j++ {
			cj, sj := d.CoreOf(j)
			// Blocks further than one tile apart can never touch; skip
			// the rectangle test for those (pure speed, same result).
			if abs(ci%d.Cols-cj%d.Cols) > 1 || abs(ci/d.Cols-cj/d.Cols) > 1 {
				continue
			}
			b := d.BlockRect(cj, sj)
			shared := sharedEdge(a, b)
			if shared <= adjacencyEps {
				continue
			}
			dx := a.CenterX() - b.CenterX()
			dy := a.CenterY() - b.CenterY()
			d.adjacencies = append(d.adjacencies, DieAdjacency{
				CoreA: ci, A: si,
				CoreB: cj, B: sj,
				SharedMM:   shared,
				CenterDist: math.Hypot(dx, dy),
			})
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Validate checks the tiled die geometrically: every block lies within
// the die envelope, no two blocks overlap (including across tile
// seams), block areas sum to exactly n times the base floorplan's, and
// the adjacency relation is symmetric and irredundant.
func (d *Die) Validate() error {
	nb := d.NumBlocks()
	var sum float64
	for i := 0; i < nb; i++ {
		ci, si := d.CoreOf(i)
		r := d.BlockRect(ci, si)
		if r.X0 < -adjacencyEps || r.Y0 < -adjacencyEps ||
			r.X1 > d.WidthMM+adjacencyEps || r.Y1 > d.HeightMM+adjacencyEps {
			return fmt.Errorf("floorplan: die core %d %v outside envelope: %+v", ci, si, r)
		}
		sum += r.AreaMM2()
		for j := 0; j < i; j++ {
			cj, sj := d.CoreOf(j)
			o := d.BlockRect(cj, sj)
			if r.X0 < o.X1-adjacencyEps && o.X0 < r.X1-adjacencyEps &&
				r.Y0 < o.Y1-adjacencyEps && o.Y0 < r.Y1-adjacencyEps {
				return fmt.Errorf("floorplan: die core %d %v overlaps core %d %v", ci, si, cj, sj)
			}
		}
	}
	die := d.WidthMM * d.HeightMM
	if diff := sum - die; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("floorplan: die block areas sum to %.6f mm^2, envelope is %.6f mm^2", sum, die)
	}
	// Adjacency symmetry: each unordered pair must appear exactly once,
	// and the relation A~B implies B~A by construction of that single
	// record; a duplicate (in either order) breaks the conductance
	// assembly, which adds each pair once.
	seen := make(map[[2]int]bool, len(d.adjacencies))
	for _, adj := range d.adjacencies {
		a := d.Index(adj.CoreA, adj.A)
		b := d.Index(adj.CoreB, adj.B)
		if a == b {
			return fmt.Errorf("floorplan: die self-adjacency at block %d", a)
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if seen[[2]int{lo, hi}] {
			return fmt.Errorf("floorplan: duplicate die adjacency %d~%d", lo, hi)
		}
		seen[[2]int{lo, hi}] = true
	}
	return nil
}
