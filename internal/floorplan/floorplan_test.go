package floorplan

import (
	"math"
	"strings"
	"testing"
)

func TestR10000LikeValidates(t *testing.T) {
	fp := R10000Like()
	if err := fp.Validate(); err != nil {
		t.Fatalf("default floorplan invalid: %v", err)
	}
}

func TestAreasMatchPaper(t *testing.T) {
	fp := R10000Like()
	// The paper's core is 4.5mm x 4.5mm = 20.25 mm^2 at 65nm (Table 1).
	if got := fp.TotalAreaMM2(); math.Abs(got-20.25) > 1e-9 {
		t.Fatalf("total area = %v, want 20.25", got)
	}
	var fracSum float64
	for _, s := range Structures() {
		a := fp.AreaMM2(s)
		if a <= 0 {
			t.Errorf("%v has non-positive area", s)
		}
		fracSum += fp.AreaFraction(s)
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Fatalf("area fractions sum to %v", fracSum)
	}
}

func TestStructureString(t *testing.T) {
	if Fetch.String() != "Fetch" || L1D.String() != "L1D" {
		t.Fatalf("structure names broken: %v %v", Fetch, L1D)
	}
	if !strings.Contains(Structure(99).String(), "99") {
		t.Fatalf("out-of-range structure name: %v", Structure(99))
	}
}

func TestStructuresList(t *testing.T) {
	ss := Structures()
	if len(ss) != int(NumStructures) {
		t.Fatalf("Structures() len = %d, want %d", len(ss), NumStructures)
	}
	for i, s := range ss {
		if int(s) != i {
			t.Fatalf("Structures()[%d] = %v", i, s)
		}
	}
}

func TestAdjacencySymmetricAndPositive(t *testing.T) {
	fp := R10000Like()
	adj := fp.Adjacencies()
	if len(adj) == 0 {
		t.Fatal("no adjacencies found")
	}
	seen := map[[2]Structure]bool{}
	for _, a := range adj {
		if a.A == a.B {
			t.Errorf("self adjacency %v", a)
		}
		if a.SharedMM <= 0 {
			t.Errorf("non-positive shared edge: %+v", a)
		}
		if a.CenterDist <= 0 {
			t.Errorf("non-positive centre distance: %+v", a)
		}
		key := [2]Structure{a.A, a.B}
		if seen[key] {
			t.Errorf("duplicate adjacency %v-%v", a.A, a.B)
		}
		seen[key] = true
	}
}

func TestEveryBlockHasNeighbour(t *testing.T) {
	fp := R10000Like()
	deg := map[Structure]int{}
	for _, a := range fp.Adjacencies() {
		deg[a.A]++
		deg[a.B]++
	}
	for _, s := range Structures() {
		if deg[s] == 0 {
			t.Errorf("%v has no neighbours — lateral heat path missing", s)
		}
	}
}

func TestKnownAdjacencies(t *testing.T) {
	fp := R10000Like()
	want := map[[2]Structure]bool{
		{L1I, Fetch}:   true, // side by side in the top band
		{Fetch, BPred}: true,
		{IntALU, AGU}:  true,
		{AGU, FPU}:     true,
	}
	found := map[[2]Structure]bool{}
	for _, a := range fp.Adjacencies() {
		found[[2]Structure{a.A, a.B}] = true
		found[[2]Structure{a.B, a.A}] = true
	}
	for k := range want {
		if !found[k] {
			t.Errorf("expected adjacency %v-%v missing", k[0], k[1])
		}
	}
	// L1D spans the bottom; the whole execution band must touch it.
	for _, s := range []Structure{IntALU, AGU, FPU} {
		if !found[[2]Structure{s, L1D}] {
			t.Errorf("expected %v adjacent to L1D", s)
		}
	}
}

func TestSharedEdge(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{1, 0, 2, 1}, 1},         // full right edge
		{Rect{1, 0.5, 2, 2}, 0.5},     // partial right edge
		{Rect{0, 1, 1, 2}, 1},         // full top edge
		{Rect{1, 1, 2, 2}, 0},         // corner touch only
		{Rect{2, 0, 3, 1}, 0},         // disjoint
		{Rect{0.25, 1, 0.75, 2}, 0.5}, // partial top edge
	}
	for _, c := range cases {
		if got := sharedEdge(a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("sharedEdge(%+v) = %v, want %v", c.b, got, c.want)
		}
		if got := sharedEdge(c.b, a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("sharedEdge reversed (%+v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	fp := R10000Like()
	fp.Blocks[Fetch].Rect = Rect{0, 3.2, 2.5, 4.5} // now overlaps L1I
	if err := fp.Validate(); err == nil {
		t.Fatal("Validate missed an overlap")
	}
}

func TestValidateCatchesOutOfDie(t *testing.T) {
	fp := R10000Like()
	fp.Blocks[BPred].Rect = Rect{3.4, 3.2, 5.0, 4.5}
	if err := fp.Validate(); err == nil {
		t.Fatal("Validate missed an out-of-die block")
	}
}

func TestValidateCatchesAreaGap(t *testing.T) {
	fp := R10000Like()
	fp.Blocks[BPred].Rect = Rect{3.4, 3.2, 4.4, 4.5} // leaves a sliver
	if err := fp.Validate(); err == nil {
		t.Fatal("Validate missed an area gap")
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{1, 2, 3, 6}
	if r.Width() != 2 || r.Height() != 4 || r.AreaMM2() != 8 {
		t.Fatalf("rect helpers broken: %+v", r)
	}
	if r.CenterX() != 2 || r.CenterY() != 4 {
		t.Fatalf("rect centre broken: %v %v", r.CenterX(), r.CenterY())
	}
}
