// Package floorplan models the chip floorplan used by the power, thermal
// and reliability (RAMP) models.
//
// The floorplan follows the paper's setup (Section 6.1/6.3): a MIPS
// R10000-like core without the L2 cache, scaled to a 65 nm process with a
// 4.5 mm x 4.5 mm (20.25 mm^2) die. The core is divided into the discrete
// microarchitectural structures RAMP reasons about: ALUs, FPUs, register
// files, branch predictor, L1 caches, load-store queue and instruction
// window (Section 3). Geometry is expressed as axis-aligned rectangles;
// block adjacency (shared edge length) is derived from the rectangles and
// feeds the lateral thermal resistances of the RC model.
package floorplan

import (
	"fmt"
	"math"
)

// Structure identifies one microarchitectural structure on the die.
type Structure int

// The structures RAMP divides the processor into. The order is stable and
// used as an array index throughout the repository.
const (
	Fetch         Structure = iota // fetch + decode + rename front end
	BPred                          // branch predictor (2KB bimodal agree) + RAS
	Window                         // unified instruction window (issue queue + ROB)
	IntRF                          // integer physical register file
	FPRF                           // floating-point physical register file
	IntALU                         // integer ALUs (adders, multiplier, divider)
	AGU                            // address-generation units
	FPU                            // floating-point units
	LSQ                            // load-store (memory) queue
	L1I                            // L1 instruction cache
	L1D                            // L1 data cache
	NumStructures                  // count sentinel; not a structure
)

var structureNames = [NumStructures]string{
	Fetch:  "Fetch",
	BPred:  "BPred",
	Window: "Window",
	IntRF:  "IntRF",
	FPRF:   "FPRF",
	IntALU: "IntALU",
	AGU:    "AGU",
	FPU:    "FPU",
	LSQ:    "LSQ",
	L1I:    "L1I",
	L1D:    "L1D",
}

// String returns the structure's short name.
func (s Structure) String() string {
	if s < 0 || s >= NumStructures {
		return fmt.Sprintf("Structure(%d)", int(s))
	}
	return structureNames[s]
}

// Structures returns all structures in index order.
func Structures() []Structure {
	out := make([]Structure, NumStructures)
	for i := range out {
		out[i] = Structure(i)
	}
	return out
}

// Rect is an axis-aligned rectangle on the die, in millimetres.
// (X0,Y0) is the lower-left corner, (X1,Y1) the upper-right corner.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Width returns the rectangle's extent along x, in mm.
func (r Rect) Width() float64 { return r.X1 - r.X0 }

// Height returns the rectangle's extent along y, in mm.
func (r Rect) Height() float64 { return r.Y1 - r.Y0 }

// AreaMM2 returns the rectangle's area in mm^2.
func (r Rect) AreaMM2() float64 { return r.Width() * r.Height() }

// CenterX returns the x coordinate of the rectangle's centre, in mm.
func (r Rect) CenterX() float64 { return (r.X0 + r.X1) / 2 }

// CenterY returns the y coordinate of the rectangle's centre, in mm.
func (r Rect) CenterY() float64 { return (r.Y0 + r.Y1) / 2 }

// Block is one placed structure.
type Block struct {
	Structure Structure
	Rect      Rect
}

// Adjacency records that two blocks share an edge of the given length.
type Adjacency struct {
	A, B       Structure
	SharedMM   float64 // length of the shared edge, mm
	CenterDist float64 // centre-to-centre distance, mm
}

// Floorplan is a complete die floorplan.
type Floorplan struct {
	DieWidthMM  float64
	DieHeightMM float64
	Blocks      [NumStructures]Block
	adjacencies []Adjacency
}

// R10000Like returns the floorplan used throughout the paper's
// evaluation: an R10000-resembling core layout scaled to 4.5 mm x 4.5 mm
// at 65 nm, without the L2 cache (the paper models L2 performance but not
// L2 reliability because it runs much cooler than the core).
func R10000Like() *Floorplan {
	fp := &Floorplan{DieWidthMM: 4.5, DieHeightMM: 4.5}
	place := func(s Structure, x0, y0, x1, y1 float64) {
		fp.Blocks[s] = Block{Structure: s, Rect: Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}}
	}
	// Top band: instruction cache and front end.
	place(L1I, 0.0, 3.2, 2.2, 4.5)
	place(Fetch, 2.2, 3.2, 3.4, 4.5)
	place(BPred, 3.4, 3.2, 4.5, 4.5)
	// Middle band: window, register files, LSQ.
	place(Window, 0.0, 1.8, 1.3, 3.2)
	place(IntRF, 1.3, 1.8, 2.3, 3.2)
	place(FPRF, 2.3, 1.8, 3.3, 3.2)
	place(LSQ, 3.3, 1.8, 4.5, 3.2)
	// Execution band.
	place(IntALU, 0.0, 0.9, 1.8, 1.8)
	place(AGU, 1.8, 0.9, 2.7, 1.8)
	place(FPU, 2.7, 0.9, 4.5, 1.8)
	// Bottom band: data cache.
	place(L1D, 0.0, 0.0, 4.5, 0.9)
	fp.computeAdjacencies()
	return fp
}

// Scale returns a copy of the floorplan with every linear dimension
// multiplied by factor (areas scale by factor squared). Used by the
// technology-scaling study: the same microarchitecture occupies a
// factor-of-(lambda ratio) larger die at an older node.
func (fp *Floorplan) Scale(factor float64) (*Floorplan, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("floorplan: non-positive scale factor %v", factor)
	}
	out := &Floorplan{
		DieWidthMM:  fp.DieWidthMM * factor,
		DieHeightMM: fp.DieHeightMM * factor,
	}
	for i, b := range fp.Blocks {
		out.Blocks[i] = Block{
			Structure: b.Structure,
			Rect: Rect{
				X0: b.Rect.X0 * factor, Y0: b.Rect.Y0 * factor,
				X1: b.Rect.X1 * factor, Y1: b.Rect.Y1 * factor,
			},
		}
	}
	out.computeAdjacencies()
	return out, nil
}

// Validate checks that the blocks tile the die exactly: every block lies
// within the die, blocks do not overlap, and areas sum to the die area.
func (fp *Floorplan) Validate() error {
	var sum float64
	for i := 0; i < int(NumStructures); i++ {
		b := fp.Blocks[i]
		r := b.Rect
		if b.Structure != Structure(i) {
			return fmt.Errorf("floorplan: block %d has structure %v", i, b.Structure)
		}
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > fp.DieWidthMM || r.Y1 > fp.DieHeightMM {
			return fmt.Errorf("floorplan: %v outside die: %+v", b.Structure, r)
		}
		if r.Width() <= 0 || r.Height() <= 0 {
			return fmt.Errorf("floorplan: %v has non-positive extent: %+v", b.Structure, r)
		}
		sum += r.AreaMM2()
		for j := 0; j < i; j++ {
			o := fp.Blocks[j].Rect
			if r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1 {
				return fmt.Errorf("floorplan: %v overlaps %v", b.Structure, fp.Blocks[j].Structure)
			}
		}
	}
	die := fp.DieWidthMM * fp.DieHeightMM
	if d := sum - die; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("floorplan: block areas sum to %.6f mm^2, die is %.6f mm^2", sum, die)
	}
	return nil
}

// AreaMM2 returns the area of structure s in mm^2.
func (fp *Floorplan) AreaMM2(s Structure) float64 {
	return fp.Blocks[s].Rect.AreaMM2()
}

// TotalAreaMM2 returns the summed area of all blocks in mm^2.
func (fp *Floorplan) TotalAreaMM2() float64 {
	var sum float64
	for _, b := range fp.Blocks {
		sum += b.Rect.AreaMM2()
	}
	return sum
}

// AreaFraction returns structure s's fraction of the total block area.
func (fp *Floorplan) AreaFraction(s Structure) float64 {
	return fp.AreaMM2(s) / fp.TotalAreaMM2()
}

// Adjacencies returns every pair of blocks that share an edge, with the
// shared edge length and centre distance used to build lateral thermal
// resistances.
func (fp *Floorplan) Adjacencies() []Adjacency {
	return fp.adjacencies
}

const adjacencyEps = 1e-9

func (fp *Floorplan) computeAdjacencies() {
	fp.adjacencies = fp.adjacencies[:0]
	for i := 0; i < int(NumStructures); i++ {
		for j := i + 1; j < int(NumStructures); j++ {
			a, b := fp.Blocks[i].Rect, fp.Blocks[j].Rect
			shared := sharedEdge(a, b)
			if shared <= adjacencyEps {
				continue
			}
			dx := a.CenterX() - b.CenterX()
			dy := a.CenterY() - b.CenterY()
			fp.adjacencies = append(fp.adjacencies, Adjacency{
				A:          Structure(i),
				B:          Structure(j),
				SharedMM:   shared,
				CenterDist: math.Hypot(dx, dy),
			})
		}
	}
}

// sharedEdge returns the length of the boundary shared by two
// non-overlapping rectangles (0 if they only touch at a corner or not at
// all).
func sharedEdge(a, b Rect) float64 {
	// Vertical shared edge: a's right side against b's left side (or vice
	// versa) with overlapping y ranges.
	if eq(a.X1, b.X0) || eq(b.X1, a.X0) {
		return overlap(a.Y0, a.Y1, b.Y0, b.Y1)
	}
	// Horizontal shared edge.
	if eq(a.Y1, b.Y0) || eq(b.Y1, a.Y0) {
		return overlap(a.X0, a.X1, b.X0, b.X1)
	}
	return 0
}

func eq(a, b float64) bool {
	d := a - b
	return d < adjacencyEps && d > -adjacencyEps
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo := a0
	if b0 > lo {
		lo = b0
	}
	hi := a1
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
