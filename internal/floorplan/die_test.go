package floorplan

import (
	"math"
	"testing"
)

func TestDieGridShapes(t *testing.T) {
	base := R10000Like()
	cases := []struct {
		n, rows, cols int
	}{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {3, 1, 3}, {6, 2, 3}, {9, 3, 3},
	}
	for _, c := range cases {
		d, err := NewDie(base, c.n)
		if err != nil {
			t.Fatalf("NewDie(%d): %v", c.n, err)
		}
		if d.Rows != c.rows || d.Cols != c.cols {
			t.Errorf("NewDie(%d): grid %dx%d, want %dx%d", c.n, d.Rows, d.Cols, c.rows, c.cols)
		}
		wantW := float64(c.cols) * base.DieWidthMM
		wantH := float64(c.rows) * base.DieHeightMM
		if d.WidthMM != wantW || d.HeightMM != wantH {
			t.Errorf("NewDie(%d): envelope %gx%g, want %gx%g", c.n, d.WidthMM, d.HeightMM, wantW, wantH)
		}
	}
	if _, err := NewDie(base, 0); err == nil {
		t.Fatal("NewDie(0) should fail")
	}
}

// TestDieN1MatchesBase pins the N=1 special case: the one-core die must
// reproduce the base floorplan's adjacency list bit for bit (same
// pairs, same order, identical shared edges and centre distances), so
// every consumer built on the die — the thermal conductance assembly in
// particular — is byte-identical to the single-core path.
func TestDieN1MatchesBase(t *testing.T) {
	base := R10000Like()
	d := MustNewDie(base, 1)
	ba := base.Adjacencies()
	da := d.Adjacencies()
	if len(ba) != len(da) {
		t.Fatalf("N=1 die has %d adjacencies, base has %d", len(da), len(ba))
	}
	for i := range ba {
		if da[i].CoreA != 0 || da[i].CoreB != 0 {
			t.Fatalf("N=1 die adjacency %d crosses cores: %+v", i, da[i])
		}
		if da[i].A != ba[i].A || da[i].B != ba[i].B ||
			da[i].SharedMM != ba[i].SharedMM || da[i].CenterDist != ba[i].CenterDist {
			t.Fatalf("N=1 die adjacency %d = %+v, base = %+v", i, da[i], ba[i])
		}
	}
	for s := Structure(0); s < NumStructures; s++ {
		if d.AreaMM2(0, s) != base.AreaMM2(s) {
			t.Fatalf("N=1 die area for %v differs from base", s)
		}
		if d.BlockRect(0, s) != base.Blocks[s].Rect {
			t.Fatalf("N=1 die rect for %v differs from base", s)
		}
	}
}

// TestDieAreaConservation checks area conservation under tiling: n
// replicated cores occupy exactly n times the base block area, and the
// blocks tile the die envelope exactly.
func TestDieAreaConservation(t *testing.T) {
	base := R10000Like()
	for _, n := range []int{1, 2, 4, 8, 16} {
		d := MustNewDie(base, n)
		var sum float64
		for k := 0; k < n; k++ {
			for s := Structure(0); s < NumStructures; s++ {
				sum += d.BlockRect(k, s).AreaMM2()
			}
		}
		want := float64(n) * base.TotalAreaMM2()
		if diff := math.Abs(sum - want); diff > 1e-6 {
			t.Errorf("N=%d: tiled block area %.9f, want %.9f", n, sum, want)
		}
		if diff := math.Abs(sum - d.WidthMM*d.HeightMM); diff > 1e-6 {
			t.Errorf("N=%d: tiled block area %.9f does not fill envelope %.9f", n, sum, d.WidthMM*d.HeightMM)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("N=%d: Validate: %v", n, err)
		}
	}
}

// TestDieAdjacencySymmetry checks A adjacent to B ⇒ B adjacent to A:
// the unordered pair appears exactly once, and looking the relation up
// from either endpoint yields the same shared edge.
func TestDieAdjacencySymmetry(t *testing.T) {
	d := MustNewDie(R10000Like(), 8)
	type edge struct{ lo, hi int }
	seen := make(map[edge]float64)
	for _, adj := range d.Adjacencies() {
		a := d.Index(adj.CoreA, adj.A)
		b := d.Index(adj.CoreB, adj.B)
		if a == b {
			t.Fatalf("self adjacency: %+v", adj)
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if _, dup := seen[edge{lo, hi}]; dup {
			t.Fatalf("duplicate adjacency %d~%d", lo, hi)
		}
		seen[edge{lo, hi}] = adj.SharedMM
	}
	// Symmetric lookup: a directed neighbour map built from both ends of
	// every pair must answer A->B and B->A with the same shared edge.
	neighbours := make(map[[2]int]float64)
	for _, adj := range d.Adjacencies() {
		a := d.Index(adj.CoreA, adj.A)
		b := d.Index(adj.CoreB, adj.B)
		neighbours[[2]int{a, b}] = adj.SharedMM
		neighbours[[2]int{b, a}] = adj.SharedMM
	}
	for _, adj := range d.Adjacencies() {
		a := d.Index(adj.CoreA, adj.A)
		b := d.Index(adj.CoreB, adj.B)
		fwd, fok := neighbours[[2]int{a, b}]
		back, bok := neighbours[[2]int{b, a}]
		if !fok || !bok || fwd != back {
			t.Fatalf("asymmetric adjacency %d~%d: %.6f/%v vs %.6f/%v", a, b, fwd, fok, back, bok)
		}
	}
}

// TestDieCrossCoreSeams checks the tile-seam coupling: on a 1×2 die the
// right-edge blocks of core 0 must be adjacent to the left-edge blocks
// of core 1, and the seam's total shared edge must equal the die
// height (the tiles abut along their full side).
func TestDieCrossCoreSeams(t *testing.T) {
	base := R10000Like()
	d := MustNewDie(base, 2)
	var seam float64
	cross := 0
	for _, adj := range d.Adjacencies() {
		if adj.CoreA == adj.CoreB {
			continue
		}
		cross++
		seam += adj.SharedMM
	}
	if cross == 0 {
		t.Fatal("1x2 die has no cross-core adjacency")
	}
	if math.Abs(seam-base.DieHeightMM) > 1e-9 {
		t.Fatalf("seam shared edge %.9f mm, want die height %.9f mm", seam, base.DieHeightMM)
	}
	// Known seam pair: L1D spans the full die width on the bottom band,
	// so core 0's L1D must touch core 1's L1D across the seam.
	found := false
	for _, adj := range d.Adjacencies() {
		if adj.CoreA != adj.CoreB && adj.A == L1D && adj.B == L1D {
			found = true
		}
	}
	if !found {
		t.Fatal("L1D~L1D seam adjacency missing on 1x2 die")
	}
}

// TestFloorplanOverlapDetection checks that block-overlap validation
// catches a bad floorplan at both the single-core and die level.
func TestFloorplanOverlapDetection(t *testing.T) {
	bad := R10000Like()
	// Stretch the FPU into the LSQ's band: a genuine overlap.
	r := bad.Blocks[FPU].Rect
	bad.Blocks[FPU].Rect = Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1 + 0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted an overlapping floorplan")
	}
	if _, err := NewDie(bad, 2); err == nil {
		t.Fatal("NewDie accepted an overlapping base floorplan")
	}
}

func TestDieIndexRoundTrip(t *testing.T) {
	d := MustNewDie(R10000Like(), 4)
	for k := 0; k < d.NCores; k++ {
		for s := Structure(0); s < NumStructures; s++ {
			i := d.Index(k, s)
			ck, cs := d.CoreOf(i)
			if ck != k || cs != s {
				t.Fatalf("Index/CoreOf round trip broke: (%d,%v) -> %d -> (%d,%v)", k, s, i, ck, cs)
			}
		}
	}
	if d.NumBlocks() != 4*int(NumStructures) {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
}
