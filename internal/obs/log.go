package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a RAMP_LOG value ("debug", "info", "warn", "error",
// case-insensitive) to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger builds the module's standard logger writing to w at the
// given level, as text (human terminals) or JSON (log pipelines).
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// discardHandler drops every record. Hand-rolled rather than using
// slog.DiscardHandler, which did not exist in the module's minimum Go
// version.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything — the default for
// library code (e.g. serve.Config.Log) when the caller wires nothing.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type requestIDKey struct{}

// WithRequestID stores a request ID in ctx for spans and access logs.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID stored in ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
