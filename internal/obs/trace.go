package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans. The nil *Tracer is the disabled tracer: Start
// returns the context unchanged and a disabled Span, and every Span
// method on a disabled span is a nil-check no-op that performs no
// allocation — instrumentation stays in hot paths unconditionally and
// costs nothing when tracing is off (verified by
// TestDisabledEpochPathZeroAlloc).
//
// A Tracer is safe for concurrent use: spans may start and end on any
// goroutine; finished spans are appended to an internal buffer under a
// mutex and exported once at the end of the run (WriteChromeTrace).
type Tracer struct {
	start time.Time
	ids   atomic.Uint64 // span + track ID source (1-based)

	mu     sync.Mutex
	events []SpanEvent
}

// NewTracer returns an enabled tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// SpanEvent is one finished span as recorded by the tracer.
type SpanEvent struct {
	Name   string
	ID     uint64
	Parent uint64 // 0 = root
	Track  uint64 // virtual thread: spans on one track are strictly nested
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Attr is one typed span attribute. Typed constructors (not `any`)
// keep attribute construction allocation-free at disabled call sites.
type Attr struct {
	Key  string
	kind uint8
	str  string
	num  int64
	f    float64
}

const (
	attrStr = iota
	attrInt
	attrFloat
)

// Str returns a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrStr, str: v} }

// Int returns an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, num: v} }

// Float returns a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Value returns the attribute's value as an any (export and tests).
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.num
	case attrFloat:
		return a.f
	default:
		return a.str
	}
}

// Span is a handle to one in-flight span. The zero Span is disabled.
// Spans are values: copy freely, End exactly once.
type Span struct {
	t *Tracer
	d *spanData
}

type spanData struct {
	name   string
	id     uint64
	parent uint64
	track  uint64
	start  time.Time
	attrs  []Attr
}

type spanCtxKey struct{}

// SpanFromContext returns the span stored in ctx, or a disabled Span.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}

// Enabled reports whether the span records anything.
func (s Span) Enabled() bool { return s.d != nil }

// Start begins a span named name as a child of the span in ctx (if
// any), on the parent's track: same-track spans must strictly nest, so
// use Start for sequential work within one logical thread of execution.
// It returns a context carrying the new span. On a nil tracer it
// returns ctx unchanged and a disabled span without allocating.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	return t.startSpan(ctx, name, false)
}

// StartTrack is Start on a fresh track (virtual thread). Use it for
// spans that run concurrently with their siblings — each HTTP request,
// each exp evaluation inside a sweep — so exported tracks only ever
// contain properly nested spans. The parent link still records where
// the work was spawned from.
func (t *Tracer) StartTrack(ctx context.Context, name string) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	return t.startSpan(ctx, name, true)
}

func (t *Tracer) startSpan(ctx context.Context, name string, newTrack bool) (context.Context, Span) {
	parent := SpanFromContext(ctx)
	d := &spanData{
		name:  name,
		id:    t.ids.Add(1),
		start: time.Now(),
	}
	if parent.d != nil {
		d.parent = parent.d.id
		d.track = parent.d.track
	}
	if newTrack || d.track == 0 {
		d.track = t.ids.Add(1)
	}
	s := Span{t: t, d: d}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// Annotate appends attributes to the span. No-op (and, with inlining,
// allocation-free) when disabled; prefer the typed single-attribute
// helpers on hot paths.
func (s Span) Annotate(attrs ...Attr) {
	if s.d == nil {
		return
	}
	s.d.attrs = append(s.d.attrs, attrs...)
}

// AnnotateInt appends one integer attribute without building a slice.
func (s Span) AnnotateInt(key string, v int64) {
	if s.d == nil {
		return
	}
	s.d.attrs = append(s.d.attrs, Int(key, v))
}

// End finishes the span and records it on the tracer. Calling End on a
// disabled span is a no-op.
func (s Span) End() {
	if s.d == nil {
		return
	}
	end := time.Now()
	ev := SpanEvent{
		Name:   s.d.name,
		ID:     s.d.id,
		Parent: s.d.parent,
		Track:  s.d.track,
		Start:  s.d.start.Sub(s.t.start),
		Dur:    end.Sub(s.d.start),
		Attrs:  s.d.attrs,
	}
	if ev.Start < 0 {
		ev.Start = 0
	}
	if ev.Dur < 0 {
		ev.Dur = 0
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// Events snapshots the finished spans in End order (tests and export).
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanEvent(nil), t.events...)
}

// Len reports how many spans have finished.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
