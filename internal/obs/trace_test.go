package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndIdentity(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()

	ctx1, root := tr.Start(ctx, "evaluate")
	ctx2, epoch := tr.Start(ctx1, "epoch")
	epoch.AnnotateInt("epoch", 3)
	_, fp := tr.Start(ctx2, "fixedpoint")
	fp.AnnotateInt("iters", 7)
	fp.End()
	epoch.End()
	root.Annotate(Str("app", "gcc"), Float("fit", 12.5))
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// End order: fixedpoint, epoch, evaluate.
	byName := map[string]SpanEvent{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	rootEv, epochEv, fpEv := byName["evaluate"], byName["epoch"], byName["fixedpoint"]
	if rootEv.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootEv.Parent)
	}
	if epochEv.Parent != rootEv.ID {
		t.Errorf("epoch parent = %d, want root ID %d", epochEv.Parent, rootEv.ID)
	}
	if fpEv.Parent != epochEv.ID {
		t.Errorf("fixedpoint parent = %d, want epoch ID %d", fpEv.Parent, epochEv.ID)
	}
	// Start inherits the parent's track.
	if epochEv.Track != rootEv.Track || fpEv.Track != rootEv.Track {
		t.Errorf("tracks differ: root=%d epoch=%d fp=%d", rootEv.Track, epochEv.Track, fpEv.Track)
	}
	if got := len(rootEv.Attrs); got != 2 {
		t.Errorf("root attrs = %d, want 2", got)
	}
	if fpEv.Attrs[0].Key != "iters" || fpEv.Attrs[0].Value() != int64(7) {
		t.Errorf("fixedpoint attr = %+v", fpEv.Attrs[0])
	}
	if fpEv.Start < epochEv.Start || fpEv.Start+fpEv.Dur > epochEv.Start+epochEv.Dur+time.Millisecond {
		t.Errorf("fixedpoint [%v,%v] escapes epoch [%v,%v]",
			fpEv.Start, fpEv.Start+fpEv.Dur, epochEv.Start, epochEv.Start+epochEv.Dur)
	}
}

func TestStartTrackAllocatesFreshTrack(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.Start(context.Background(), "sweep")
	_, a := tr.StartTrack(ctx, "point")
	_, b := tr.StartTrack(ctx, "point")
	a.End()
	b.End()
	root.End()

	evs := tr.Events()
	tracks := map[uint64]bool{}
	for _, ev := range evs {
		if ev.Name == "point" {
			tracks[ev.Track] = true
			if ev.Parent == 0 {
				t.Errorf("point span lost its parent link")
			}
		}
	}
	if len(tracks) != 2 {
		t.Errorf("concurrent siblings share a track: %v", tracks)
	}
}

func TestNilTracerAndDisabledSpan(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	ctx2, s := tr.Start(ctx, "anything")
	if ctx2 != ctx {
		t.Error("nil tracer modified the context")
	}
	if s.Enabled() {
		t.Error("nil tracer returned an enabled span")
	}
	// All methods must be safe no-ops.
	s.Annotate(Str("k", "v"))
	s.AnnotateInt("n", 1)
	s.End()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	if got := SpanFromContext(ctx); got.Enabled() {
		t.Error("empty context produced an enabled span")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, s := tr.StartTrack(context.Background(), "worker")
			_, child := tr.Start(ctx, "step")
			child.End()
			s.End()
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 32 {
		t.Fatalf("got %d events, want 32", got)
	}
	ids := map[uint64]bool{}
	for _, ev := range tr.Events() {
		if ids[ev.ID] {
			t.Fatalf("duplicate span ID %d", ev.ID)
		}
		ids[ev.ID] = true
	}
}

func TestWriteChromeTraceRoundTrip(t *testing.T) {
	tr := NewTracer()
	ctx, root := tr.Start(context.Background(), "evaluate")
	for i := 0; i < 3; i++ {
		_, epoch := tr.Start(ctx, "epoch")
		epoch.AnnotateInt("epoch", int64(i))
		epoch.End()
	}
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace failed validation: %v", err)
	}
	if n != 5 { // 1 metadata + 4 spans
		t.Errorf("validated %d events, want 5", n)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	var sawMeta, sawEpoch bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			sawMeta = true
		case "X":
			if ev["name"] == "epoch" {
				sawEpoch = true
				args := ev["args"].(map[string]any)
				if args["parent_id"] == nil || args["span_id"] == nil || args["epoch"] == nil {
					t.Errorf("epoch args missing fields: %v", args)
				}
			}
		}
	}
	if !sawMeta || !sawEpoch {
		t.Errorf("missing events: meta=%v epoch=%v", sawMeta, sawEpoch)
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, data, wantErr string
	}{
		{"not json", `{{`, "neither"},
		{"unknown phase", `[{"name":"a","ph":"Z","ts":0,"pid":1,"tid":1}]`, "unknown phase"},
		{"empty name", `[{"name":"","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]`, "empty name"},
		{"negative ts", `[{"name":"a","ph":"X","ts":-5,"dur":1,"pid":1,"tid":1}]`, "negative ts"},
		{"negative dur", `[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]`, "negative dur"},
		{"backwards ts", `[{"name":"a","ph":"X","ts":10,"dur":1,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":1,"pid":1,"tid":2}]`, "goes backwards"},
		{"partial overlap", `[{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]`, "partially overlaps"},
		{"unmatched E", `[{"name":"a","ph":"E","ts":0,"pid":1,"tid":1}]`, "without matching B"},
		{"mismatched E", `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},{"name":"b","ph":"E","ts":1,"pid":1,"tid":1}]`, "closes B event"},
		{"unclosed B", `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1}]`, "never closed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateChromeTrace([]byte(tc.data))
			if err == nil {
				t.Fatalf("validation accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateChromeTraceAcceptsValidForms(t *testing.T) {
	cases := []struct {
		name, data string
		want       int
	}{
		{"bare array", `[{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1}]`, 1},
		{"proper nesting", `[{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},{"name":"b","ph":"X","ts":2,"dur":3,"pid":1,"tid":1}]`, 2},
		{"sequential", `[{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":5,"pid":1,"tid":1}]`, 2},
		{"matched BE", `[{"name":"a","ph":"B","ts":0,"pid":1,"tid":1},{"name":"a","ph":"E","ts":10,"pid":1,"tid":1}]`, 2},
		{"same start parent first", `[{"name":"p","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},{"name":"c","ph":"X","ts":0,"dur":4,"pid":1,"tid":1}]`, 2},
		{"different tracks overlap", `[{"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},{"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":2}]`, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := ValidateChromeTrace([]byte(tc.data))
			if err != nil {
				t.Fatalf("validation rejected %s: %v", tc.name, err)
			}
			if n != tc.want {
				t.Errorf("validated %d events, want %d", n, tc.want)
			}
		})
	}
}

// TestDisabledEpochPathZeroAlloc proves the acceptance criterion that a
// disabled tracer + nil metrics make the epoch hot-path instrumentation
// free: no allocations per epoch.
func TestDisabledEpochPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	epochs := reg.Counter("exp_epochs_simulated_total")
	iters := reg.Histogram("exp_fixedpoint_iters")
	ctx := context.Background()

	allocs := testing.AllocsPerRun(100, func() {
		ctx2, span := tr.Start(ctx, "epoch")
		span.AnnotateInt("epoch", 1)
		_, fp := tr.Start(ctx2, "fixedpoint")
		fp.AnnotateInt("iters", 12)
		fp.End()
		span.End()
		epochs.Inc()
		iters.Observe(12)
	})
	if allocs != 0 {
		t.Errorf("disabled epoch path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkDisabledEpochPath reports the per-epoch cost of disabled
// instrumentation (expected: a few ns, 0 allocs/op).
func BenchmarkDisabledEpochPath(b *testing.B) {
	var tr *Tracer
	var reg *Registry
	epochs := reg.Counter("exp_epochs_simulated_total")
	iters := reg.Histogram("exp_fixedpoint_iters")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx2, span := tr.Start(ctx, "epoch")
		span.AnnotateInt("epoch", int64(i))
		_, fp := tr.Start(ctx2, "fixedpoint")
		fp.AnnotateInt("iters", 12)
		fp.End()
		span.End()
		epochs.Inc()
		iters.Observe(12)
	}
}

func BenchmarkEnabledEpochPath(b *testing.B) {
	tr := NewTracer()
	reg := NewRegistry()
	epochs := reg.Counter("exp_epochs_simulated_total")
	iters := reg.Histogram("exp_fixedpoint_iters")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx2, span := tr.Start(ctx, "epoch")
		_, fp := tr.Start(ctx2, "fixedpoint")
		fp.End()
		span.End()
		epochs.Inc()
		iters.Observe(12)
	}
}
