package obs

import (
	"bytes"
	"context"
	"flag"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAddFlagsAndSetup(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	traceFile := filepath.Join(t.TempDir(), "t.json")
	if err := fs.Parse([]string{"-trace", traceFile, "-stats", "-v"}); err != nil {
		t.Fatal(err)
	}
	if f.TracePath != traceFile || !f.Stats || !f.Verbose {
		t.Fatalf("flags not parsed: %+v", f)
	}
	rt, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Tracer == nil {
		t.Error("Setup with -trace did not build a tracer")
	}
	if rt.Metrics == nil || rt.Log == nil {
		t.Error("Setup missing metrics or logger")
	}

	var stats bytes.Buffer
	rt.statsOut = &stats
	rt.Metrics.Counter("exp_epochs_simulated_total").Add(42)
	_, s := rt.Tracer.Start(context.Background(), "run")
	s.End()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	if _, err := ValidateChromeTrace(data); err != nil {
		t.Errorf("written trace invalid: %v", err)
	}
	if !strings.Contains(stats.String(), "exp_epochs_simulated_total") {
		t.Errorf("stats summary missing counter:\n%s", stats.String())
	}
	if !strings.Contains(stats.String(), "== ramp stats ==") {
		t.Errorf("stats summary missing header:\n%s", stats.String())
	}
}

func TestSetupWithoutTraceFlag(t *testing.T) {
	f := &Flags{}
	rt, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Tracer != nil {
		t.Error("Setup without -trace built a tracer")
	}
	if err := rt.Close(); err != nil {
		t.Errorf("Close without trace/stats: %v", err)
	}
}

func TestSetupRejectsBadRAMPLOG(t *testing.T) {
	t.Setenv("RAMP_LOG", "chatty")
	f := &Flags{}
	if _, err := f.Setup(); err == nil {
		t.Error("Setup accepted RAMP_LOG=chatty")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"INFO":  slog.LevelInfo,
		" warn": slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted 'loud'")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	NewLogger(&buf, slog.LevelInfo, false).Info("hello", "k", "v")
	if out := buf.String(); !strings.Contains(out, "msg=hello") || !strings.Contains(out, "k=v") {
		t.Errorf("text logger output: %q", out)
	}
	buf.Reset()
	NewLogger(&buf, slog.LevelInfo, true).Info("hello", "k", "v")
	if out := buf.String(); !strings.Contains(out, `"msg":"hello"`) {
		t.Errorf("json logger output: %q", out)
	}
	buf.Reset()
	NewLogger(&buf, slog.LevelWarn, false).Info("dropped")
	if buf.Len() != 0 {
		t.Errorf("info leaked through warn level: %q", buf.String())
	}
}

func TestDiscardLogger(t *testing.T) {
	l := Discard()
	l.Info("nothing")
	l.With("k", "v").WithGroup("g").Error("still nothing")
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger claims to be enabled")
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty context request ID = %q", got)
	}
	ctx = WithRequestID(ctx, "req-42")
	if got := RequestID(ctx); got != "req-42" {
		t.Errorf("request ID = %q, want req-42", got)
	}
}
