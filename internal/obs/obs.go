// Package obs is the pipeline-wide observability layer: spans, metrics
// and structured logging for every stage of the RAMP evaluation chain
// (trace generation → OoO sim epochs → power → thermal fixed point →
// failure-mechanism FIT → DRM/DTM sweeps → the rampserve HTTP service).
// It is stdlib-only, like everything else in the module.
//
// Three pillars:
//
//   - Tracer/Span (trace.go, chrome.go): a lightweight span tracer with
//     trace/span/parent IDs, typed attributes and monotonic durations,
//     exported as Chrome trace_event JSON that loads directly into
//     chrome://tracing or Perfetto. A nil *Tracer is the disabled
//     tracer: every operation is a nil-check no-op and allocates
//     nothing, so instrumentation can stay in the epoch hot path
//     unconditionally.
//
//   - Registry (metrics.go): named atomic counters, gauges and
//     log2-bucketed histograms that the pipeline stages register into
//     (epochs simulated, fixed-point iterations, cache hits/misses,
//     LU solves, sweep points, per-mechanism FIT compute time). One
//     registry feeds both the end-of-run `-stats` summary and
//     rampserve's /metrics (JSON and Prometheus text exposition).
//
//   - log/slog setup (log.go): a shared logger (level from -v /
//     RAMP_LOG, text or JSON handler from RAMP_LOG_FORMAT) replacing
//     ad-hoc fmt.Fprintf(os.Stderr, ...) diagnostics, plus request-ID
//     context plumbing for rampserve's per-request access logs.
//
// Command binaries wire all three through AddFlags/Setup:
//
//	obsFlags := obs.AddFlags(flag.CommandLine)
//	flag.Parse()
//	rt, err := obsFlags.Setup()
//	// ...
//	defer rt.Close() // writes -trace JSON, prints the -stats summary
package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Flags holds the observability command-line configuration shared by
// every cmd binary: -trace, -stats and -v, mirroring how
// internal/profiling shares -cpuprofile/-memprofile.
type Flags struct {
	TracePath string
	Stats     bool
	Verbose   bool
}

// AddFlags registers -trace, -stats and -v on fs and returns the Flags
// that will receive their values after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.TracePath, "trace", "", "write a Chrome trace_event JSON span trace to `file` (load in chrome://tracing or Perfetto)")
	fs.BoolVar(&f.Stats, "stats", false, "print the pipeline metrics summary to stderr on exit")
	fs.BoolVar(&f.Verbose, "v", false, "verbose logging (debug level; RAMP_LOG overrides)")
	return f
}

// Runtime bundles one process's observability state: the span tracer
// (nil unless -trace was given), the metrics registry (always present)
// and the configured logger (also installed as slog's default).
type Runtime struct {
	Tracer  *Tracer
	Metrics *Registry
	Log     *slog.Logger

	tracePath string
	stats     bool
	statsOut  io.Writer
}

// Setup builds the process observability runtime from the parsed flags
// and environment (RAMP_LOG, RAMP_LOG_FORMAT) and installs the logger
// as slog's default.
func (f *Flags) Setup() (*Runtime, error) {
	level := slog.LevelInfo
	if f.Verbose {
		level = slog.LevelDebug
	}
	if env := os.Getenv("RAMP_LOG"); env != "" {
		l, err := ParseLevel(env)
		if err != nil {
			return nil, err
		}
		level = l
	}
	logger := NewLogger(os.Stderr, level, os.Getenv("RAMP_LOG_FORMAT") == "json")
	slog.SetDefault(logger)

	rt := &Runtime{
		Metrics:   NewRegistry(),
		Log:       logger,
		tracePath: f.TracePath,
		stats:     f.Stats,
		statsOut:  os.Stderr,
	}
	if f.TracePath != "" {
		rt.Tracer = NewTracer()
	}
	return rt, nil
}

// Close flushes the runtime: the span trace is written to the -trace
// file and, with -stats, the metrics summary is printed to stderr. Safe
// to call once at process exit (typically deferred right after Setup).
func (r *Runtime) Close() error {
	if r.Tracer != nil && r.tracePath != "" {
		f, err := os.Create(r.tracePath)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		werr := r.Tracer.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("obs: write trace %s: %w", r.tracePath, werr)
		}
		r.Log.Debug("trace written", "path", r.tracePath, "spans", r.Tracer.Len())
	}
	if r.stats {
		fmt.Fprintf(r.statsOut, "== ramp stats ==\n")
		r.Metrics.WriteSummary(r.statsOut)
	}
	return nil
}

// CloseOrLog is Close for deferred use in command mains: a flush error
// is logged rather than returned (there is nowhere else for it to go at
// process exit).
func (r *Runtime) CloseOrLog() {
	if err := r.Close(); err != nil {
		r.Log.Error("close observability runtime", "err", err)
	}
}

// Fatal logs err at error level, flushes the runtime (so a partial
// trace and the stats summary still land on disk) and exits 1. It is
// the cmd binaries' uniform fatal-error path.
func (r *Runtime) Fatal(msg string, err error) {
	r.Log.Error(msg, "err", err)
	if cerr := r.Close(); cerr != nil {
		r.Log.Error("close observability runtime", "err", cerr)
	}
	os.Exit(1)
}
