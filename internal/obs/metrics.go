package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry is a named set of atomic instruments the pipeline stages
// register into. Lookup is get-or-create and idempotent, so every stage
// can resolve its instruments independently by name; hot paths resolve
// once and keep the pointer. A nil *Registry is the disabled registry:
// lookups return nil instruments whose methods are nil-check no-ops, so
// instrumented code needs no enabled/disabled branches.
//
// Instrument names must match Prometheus conventions
// ([a-zA-Z_][a-zA-Z0-9_]*) so one registry can feed the -stats summary,
// the /metrics JSON document and the Prometheus text exposition without
// renaming. Registering one name as two different instrument kinds
// panics — it is a programming error, caught by any test that touches
// the path.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing atomic counter. The nil
// *Counter discards updates.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil *Gauge discards
// updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histogramBuckets is the number of power-of-two histogram buckets.
// Bucket i counts observations v with v < 2^i (the last bucket is a
// catch-all), covering 1 .. 2^62 — wide enough for nanosecond latencies
// and for small counts alike.
const histogramBuckets = 64

// Histogram is a lock-free log2-bucketed histogram of non-negative
// int64 observations (iteration counts, microsecond latencies, ...).
// Writers atomically increment; readers snapshot. The nil *Histogram
// discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histogramBuckets]atomic.Int64
}

// Observe records one sample (negative samples clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := 0
	for b := v; b > 0 && i < histogramBuckets-1; b >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reads the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Counter returns the named counter, creating it on first use. Nil
// registries return the nil (discarding) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		r.checkName(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		r.checkName(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		r.checkName(name, "histogram")
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// checkName panics on malformed or cross-kind duplicate names (called
// with r.mu held for writing).
func (r *Registry) checkName(name, kind string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-zA-Z_][a-zA-Z0-9_]*)", name))
	}
	for k, exists := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.histograms[name] != nil,
	} {
		if exists && k != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s (requested %s)", name, k, kind))
		}
	}
}

// validMetricName reports whether name is a legal Prometheus metric
// name (without the colon extension).
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// HistogramSnapshot is one histogram's point-in-time state. Buckets are
// cumulative counts keyed by upper bound ("2", "4", ..., "+Inf"), the
// Prometheus le convention; empty prefixes are omitted.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets_le,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values (JSON /metrics and the
// -stats summary both render from this).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count == 0 {
		return s
	}
	s.Buckets = make(map[string]int64)
	var cum int64
	for i := 0; i < histogramBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum == 0 {
			continue
		}
		le := "+Inf"
		if i < histogramBuckets-1 {
			le = strconv.FormatInt(1<<i, 10)
		}
		s.Buckets[le] = cum
		if cum == s.Count {
			break // every remaining bucket repeats the total
		}
	}
	return s
}

// WriteSummary prints a human-readable table of every instrument,
// sorted by name — the `-stats` end-of-run report.
func (r *Registry) WriteSummary(w io.Writer) {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "%-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "%-40s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			fmt.Fprintf(w, "%-40s count=0 sum=0 mean=0.00\n", name)
			continue
		}
		mean := float64(h.Sum) / float64(h.Count)
		fmt.Fprintf(w, "%-40s count=%d sum=%d mean=%.2f p50=%g p95=%g p99=%g\n",
			name, h.Count, h.Sum, mean,
			h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
	}
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative _bucket series plus _sum and
// _count. prefix (e.g. "ramp_") namespaces every family.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(w, "# TYPE %s%s counter\n%s%s %d\n", prefix, name, prefix, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(w, "# TYPE %s%s gauge\n%s%s %d\n", prefix, name, prefix, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s%s histogram\n", prefix, name)
		writePromHistogram(w, prefix+name, "", h)
	}
}

// writePromHistogram emits one histogram family's _bucket/_sum/_count
// samples. labels, when non-empty, is a rendered label set without
// braces (e.g. `route="evaluate"`).
func writePromHistogram(w io.Writer, family, labels string, h HistogramSnapshot) {
	bounds := make([]string, 0, len(h.Buckets))
	for le := range h.Buckets {
		if le != "+Inf" {
			bounds = append(bounds, le)
		}
	}
	sort.Slice(bounds, func(i, j int) bool {
		a, _ := strconv.ParseInt(bounds[i], 10, 64)
		b, _ := strconv.ParseInt(bounds[j], 10, 64)
		return a < b
	})
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, le := range bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", family, labels, sep, le, h.Buckets[le])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", family, labels, sep, h.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %d\n", family, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", family, h.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %d\n", family, labels, h.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, h.Count)
	}
}

// WritePromHistogram is the labeled-histogram helper the serve layer
// uses to render its hand-rolled latency histograms alongside the
// registry's instruments.
func WritePromHistogram(w io.Writer, family, labels string, h HistogramSnapshot) {
	writePromHistogram(w, family, labels, h)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
