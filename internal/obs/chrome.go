package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event. The exporter emits complete
// ("X") events plus one metadata ("M") event naming the process; the
// validator additionally accepts matched begin/end ("B"/"E") pairs, the
// other spelling of the same format.
//
// Reference: the Trace Event Format document (the format consumed by
// chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds, X only
	PID   uint64         `json:"pid"`
	TID   uint64         `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of a trace file.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace exports every finished span as Chrome trace_event
// JSON. Each span becomes an "X" (complete) event: ts/dur are in
// microseconds relative to the tracer's start, tid is the span's track
// (so concurrently running spans never partially overlap on one
// timeline row), and span/parent IDs ride in args for tooling that
// wants to rebuild the tree across tracks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	// Parent-before-child order: by start time, longer span first on
	// ties (a parent sharing its child's start tick must precede it so
	// same-track nesting reads correctly).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Dur > events[j].Dur
	})
	out := chromeTrace{
		TraceEvents: []chromeEvent{{
			Name:  "process_name",
			Phase: "M",
			PID:   1,
			Args:  map[string]any{"name": "ramp"},
		}},
		DisplayTimeUnit: "ms",
	}
	for _, ev := range events {
		args := map[string]any{"span_id": ev.ID}
		if ev.Parent != 0 {
			args["parent_id"] = ev.Parent
		}
		for _, a := range ev.Attrs {
			args[a.Key] = a.Value()
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  ev.Name,
			Phase: "X",
			TS:    float64(ev.Start.Nanoseconds()) / 1e3,
			Dur:   float64(ev.Dur.Nanoseconds()) / 1e3,
			PID:   1,
			TID:   ev.Track,
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateChromeTrace parses data as a Chrome trace and checks the
// minimal schema contract the exporter promises (and chrome://tracing /
// Perfetto require to render sanely):
//
//   - the document is a JSON object with a traceEvents array (the bare
//     JSON-array spelling is accepted too);
//   - every event has a known phase; X/B/E events have a name;
//   - timestamps are finite and non-negative, X durations non-negative;
//   - per (pid, tid), B/E events match like brackets and, with events
//     sorted by ts, X spans nest strictly — a span either contains the
//     next one or ends before it starts, never a partial overlap.
//
// It returns the number of validated events.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		// Accept the bare-array spelling of the format.
		if aerr := json.Unmarshal(data, &doc.TraceEvents); aerr != nil {
			return 0, fmt.Errorf("obs: trace is neither a trace object nor an event array: %v", err)
		}
	}
	type track struct{ pid, tid uint64 }
	byTrack := map[track][]chromeEvent{}
	lastTS := -1.0
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X", "B", "E", "M", "I", "C":
		default:
			return 0, fmt.Errorf("obs: event %d: unknown phase %q", i, ev.Phase)
		}
		if ev.Phase == "M" || ev.Phase == "I" || ev.Phase == "C" {
			continue // metadata/instant/counter events carry no duration
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("obs: event %d: %s event with empty name", i, ev.Phase)
		}
		if ev.TS < 0 {
			return 0, fmt.Errorf("obs: event %d (%s): negative ts %v", i, ev.Name, ev.TS)
		}
		if ev.Phase == "X" && ev.Dur < 0 {
			return 0, fmt.Errorf("obs: event %d (%s): negative dur %v", i, ev.Name, ev.Dur)
		}
		// The exporter emits events sorted by start time; require that
		// monotonicity so a scrambled or clock-skewed trace fails fast.
		if ev.TS < lastTS {
			return 0, fmt.Errorf("obs: event %d (%s): ts %v goes backwards (previous %v)", i, ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		k := track{ev.PID, ev.TID}
		byTrack[k] = append(byTrack[k], ev)
	}
	for k, evs := range byTrack {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].TS < evs[j].TS {
				return true
			}
			if evs[j].TS < evs[i].TS {
				return false
			}
			return evs[i].Dur > evs[j].Dur // parent before child on ties
		})
		var stack []chromeEvent // open B events and containing X spans
		for _, ev := range evs {
			// Pop X spans that ended before this event starts.
			for len(stack) > 0 {
				top := stack[len(stack)-1]
				if top.Phase == "X" && top.TS+top.Dur <= ev.TS {
					stack = stack[:len(stack)-1]
					continue
				}
				break
			}
			switch ev.Phase {
			case "B":
				stack = append(stack, ev)
			case "E":
				if len(stack) == 0 || stack[len(stack)-1].Phase != "B" {
					return 0, fmt.Errorf("obs: tid %d: E event %q at ts %v without matching B", k.tid, ev.Name, ev.TS)
				}
				if open := stack[len(stack)-1]; open.Name != ev.Name {
					return 0, fmt.Errorf("obs: tid %d: E event %q at ts %v closes B event %q", k.tid, ev.Name, ev.TS, open.Name)
				}
				stack = stack[:len(stack)-1]
			case "X":
				if len(stack) > 0 {
					top := stack[len(stack)-1]
					if top.Phase == "X" && ev.TS+ev.Dur > top.TS+top.Dur {
						return 0, fmt.Errorf("obs: tid %d: span %q [%v,%v] partially overlaps %q [%v,%v]",
							k.tid, ev.Name, ev.TS, ev.TS+ev.Dur, top.Name, top.TS, top.TS+top.Dur)
					}
				}
				stack = append(stack, ev)
			}
		}
		for _, open := range stack {
			if open.Phase == "B" {
				return 0, fmt.Errorf("obs: tid %d: B event %q at ts %v never closed", k.tid, open.Name, open.TS)
			}
		}
	}
	return len(doc.TraceEvents), nil
}
