package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("hits_total") != c {
		t.Error("Counter lookup not idempotent")
	}

	g := r.Gauge("entries")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}

	h := r.Histogram("iters")
	for _, v := range []int64{1, 2, 3, 5, 100, -4} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("histogram count = %d, want 6", got)
	}
	if got := h.Sum(); got != 111 { // -4 clamps to 0
		t.Errorf("histogram sum = %d, want 111", got)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments recorded values")
	}
	s := r.Snapshot()
	if s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	r.WritePrometheus(&buf, "ramp_")
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote output: %q", buf.String())
	}
}

func TestRegistryPanicsOnBadNames(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("invalid name", func() { r.Counter("bad-name") })
	mustPanic("leading digit", func() { r.Counter("9lives") })
	mustPanic("empty", func() { r.Gauge("") })
	r.Counter("dual")
	mustPanic("cross-kind duplicate", func() { r.Histogram("dual") })
}

func TestHistogramSnapshotBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(0) // bucket 0 (v < 1)
	h.Observe(1) // bucket 1 (v < 2)
	h.Observe(3) // bucket 2 (v < 4)
	h.Observe(3)
	s := h.snapshot()
	if s.Count != 4 || s.Sum != 7 {
		t.Fatalf("snapshot count=%d sum=%d, want 4/7", s.Count, s.Sum)
	}
	// Cumulative: le=1 → 1, le=2 → 2, le=4 → 4 (= count, so +Inf omitted
	// past saturation is fine as long as ordering is cumulative).
	if s.Buckets["1"] != 1 || s.Buckets["2"] != 2 || s.Buckets["4"] != 4 {
		t.Errorf("buckets = %v", s.Buckets)
	}
	prev := int64(0)
	for _, le := range []string{"1", "2", "4"} {
		if s.Buckets[le] < prev {
			t.Errorf("bucket le=%s not cumulative: %v", le, s.Buckets)
		}
		prev = s.Buckets[le]
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("entries").Set(3)
	r.Histogram("iters").Observe(4)
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"a_total", "b_total", "entries", "count=1 sum=4 mean=4.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("counters not sorted by name")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(7)
	r.Gauge("cache_entries").Set(3)
	h := r.Histogram("fixedpoint_iters")
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var buf bytes.Buffer
	r.WritePrometheus(&buf, "ramp_")
	out := buf.String()

	for _, want := range []string{
		"# TYPE ramp_requests_total counter",
		"ramp_requests_total 7",
		"# TYPE ramp_cache_entries gauge",
		"ramp_cache_entries 3",
		"# TYPE ramp_fixedpoint_iters histogram",
		`ramp_fixedpoint_iters_bucket{le="2"} 1`,
		`ramp_fixedpoint_iters_bucket{le="4"} 2`,
		`ramp_fixedpoint_iters_bucket{le="16"} 3`,
		`ramp_fixedpoint_iters_bucket{le="+Inf"} 3`,
		"ramp_fixedpoint_iters_sum 13",
		"ramp_fixedpoint_iters_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// le bounds must appear in ascending order within the family.
	if strings.Index(out, `le="2"`) > strings.Index(out, `le="4"`) ||
		strings.Index(out, `le="4"`) > strings.Index(out, `le="+Inf"`) {
		t.Errorf("histogram buckets out of order:\n%s", out)
	}
}

func TestWritePromHistogramLabeled(t *testing.T) {
	var h Histogram
	h.Observe(2)
	h.Observe(5)
	var buf bytes.Buffer
	WritePromHistogram(&buf, "srv_latency_us", `route="evaluate"`, h.snapshot())
	out := buf.String()
	for _, want := range []string{
		`srv_latency_us_bucket{route="evaluate",le="4"} 1`,
		`srv_latency_us_bucket{route="evaluate",le="+Inf"} 2`,
		`srv_latency_us_sum{route="evaluate"} 7`,
		`srv_latency_us_count{route="evaluate"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared_total").Inc()
				r.Histogram("shared_hist").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if got := r.Histogram("shared_hist").Count(); got != 800 {
		t.Errorf("histogram count = %d, want 800", got)
	}
}
