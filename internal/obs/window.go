// Windowed instruments: time-sliced views over the cumulative metrics
// Registry. The registry's counters and histograms only ever go up —
// perfect for end-of-run summaries, useless for "what is the shed rate
// *right now*". A Window turns the cumulative snapshots into a ring of
// timestamped deltas: each Advance subtracts the previous cumulative
// snapshot from the current one, yielding a per-window Snapshot whose
// counters are "events this window" and whose histograms hold only this
// window's observations (a delta of cumulative bucket counts is itself
// a valid cumulative-bucket histogram). rampserve's /v1/metrics/stream
// and rampload's NDJSON telemetry are both Window consumers; the SLO
// burn-rate gate (internal/slo) evaluates objectives over the retained
// ring.
//
// The clock is injectable so tests (and the deterministic plan mode)
// can drive windows without wall time. None of this touches the
// lock-free write paths: windows only read Registry.Snapshot.
package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// leBounds returns the histogram's finite bucket upper bounds in
// increasing order (the "+Inf" catch-all is excluded).
func (h HistogramSnapshot) leBounds() []int64 {
	bounds := make([]int64, 0, len(h.Buckets))
	for le := range h.Buckets {
		if le == "+Inf" {
			continue
		}
		if b, err := strconv.ParseInt(le, 10, 64); err == nil {
			bounds = append(bounds, b)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return bounds
}

// bucketLow returns the lower edge of the log2 bucket with upper bound
// ub: Observe puts v in the bucket [2^(i-1), 2^i) (the first bucket,
// upper bound 1, holds v = 0).
func bucketLow(ub int64) float64 {
	if ub <= 1 {
		return 0
	}
	return float64(ub) / 2
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observed
// values by linear interpolation inside the log2 buckets — the same
// estimate Prometheus' histogram_quantile computes. The estimate is
// exact at bucket edges and within a factor of 2 anywhere else (log2
// buckets); tests pin it against synthetic bucket contents. An empty
// histogram returns NaN. Observations in the catch-all bucket saturate
// the estimate at the largest finite bucket bound.
func (h HistogramSnapshot) Quantile(p float64) float64 {
	if h.Count <= 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(h.Count)
	var cumBelow float64
	var last float64
	for _, ub := range h.leBounds() {
		cum := float64(h.Buckets[strconv.FormatInt(ub, 10)])
		if rank <= cum && cum > cumBelow {
			low := bucketLow(ub)
			frac := (rank - cumBelow) / (cum - cumBelow)
			return low + frac*(float64(ub)-low)
		}
		cumBelow = cum
		last = float64(ub)
	}
	// The remaining rank lives in the +Inf catch-all: report its lower
	// edge (the largest finite bound) — the estimate cannot do better.
	if last > 0 {
		return last
	}
	return float64(int64(1) << 62)
}

// FractionAbove estimates the fraction of observations strictly above
// v, interpolating linearly inside the bucket containing v. This is how
// a latency SLO ("p99 ≤ 200ms") becomes a countable bad-event rate
// ("fraction of requests slower than 200ms must stay under 1%") for the
// burn-rate math in internal/slo. An empty histogram returns 0.
func (h HistogramSnapshot) FractionAbove(v float64) float64 {
	if h.Count <= 0 {
		return 0
	}
	var below float64
	var cumBelow float64
	for _, ub := range h.leBounds() {
		cum := float64(h.Buckets[strconv.FormatInt(ub, 10)])
		if v >= float64(ub) {
			below = cum
			cumBelow = cum
			continue
		}
		low := bucketLow(ub)
		in := cum - cumBelow
		if v > low && in > 0 {
			below = cumBelow + in*(v-low)/(float64(ub)-low)
		}
		break
	}
	frac := 1 - below/float64(h.Count)
	if frac < 0 {
		return 0
	}
	return frac
}

// prevCumAt reconstructs a snapshot's cumulative count at bucket bound
// ub from its (possibly trimmed) bucket map: snapshot() omits leading
// all-zero buckets and stops once the cumulative count saturates, so a
// missing bound below the first present one is 0 and a missing bound
// above the last present one is Count.
func (h HistogramSnapshot) prevCumAt(ub int64, bounds []int64) int64 {
	if h.Count == 0 || len(bounds) == 0 {
		return 0
	}
	if ub < bounds[0] {
		return 0
	}
	if c, ok := h.Buckets[strconv.FormatInt(ub, 10)]; ok {
		return c
	}
	return h.Count
}

// sub returns the histogram delta h − prev (prev must be an earlier
// snapshot of the same histogram, so every cumulative value of h is ≥
// the corresponding value of prev). The delta is itself a well-formed
// HistogramSnapshot over just the observations between the two
// snapshots, so Quantile and FractionAbove work per window.
func (h HistogramSnapshot) sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
	if d.Count <= 0 || len(h.Buckets) == 0 {
		return d
	}
	prevBounds := prev.leBounds()
	d.Buckets = make(map[string]int64)
	var wrote int64
	for _, ub := range h.leBounds() {
		le := strconv.FormatInt(ub, 10)
		cum := h.Buckets[le] - prev.prevCumAt(ub, prevBounds)
		if cum <= 0 {
			continue
		}
		d.Buckets[le] = cum
		wrote = cum
		if cum == d.Count {
			break
		}
	}
	if inf, ok := h.Buckets["+Inf"]; ok && wrote < d.Count {
		prevInf := prev.Count // saturation: prev's +Inf cum is its total
		if c, ok := prev.Buckets["+Inf"]; ok {
			prevInf = c
		}
		if cum := inf - prevInf; cum > 0 {
			d.Buckets["+Inf"] = cum
		}
	}
	return d
}

// Merge returns one histogram holding both snapshots' observations
// (used to combine per-window deltas back into a multi-window view).
func (h HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if o.Count == 0 {
		return h
	}
	if h.Count == 0 {
		return o
	}
	m := HistogramSnapshot{Count: h.Count + o.Count, Sum: h.Sum + o.Sum}
	hb, ob := h.leBounds(), o.leBounds()
	seen := make(map[int64]bool, len(hb)+len(ob))
	bounds := make([]int64, 0, len(hb)+len(ob))
	for _, b := range append(append([]int64{}, hb...), ob...) {
		if !seen[b] {
			seen[b] = true
			bounds = append(bounds, b)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	m.Buckets = make(map[string]int64)
	var wrote int64
	for _, ub := range bounds {
		cum := h.prevCumAt(ub, hb) + o.prevCumAt(ub, ob)
		if cum <= 0 {
			continue
		}
		m.Buckets[strconv.FormatInt(ub, 10)] = cum
		wrote = cum
		if cum == m.Count {
			break
		}
	}
	if wrote < m.Count {
		m.Buckets["+Inf"] = m.Count
	}
	return m
}

// Delta returns the change from prev to s: counters and histograms
// subtract (prev must be an earlier snapshot of the same registry);
// gauges carry s's latest value — a gauge has no meaningful rate.
// Instruments absent from prev (registered mid-flight) delta against
// zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var d Snapshot
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			d.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			d.Histograms[name] = h.sub(prev.Histograms[name])
		}
	}
	return d
}

// WindowDelta is one window's worth of change: the instruments' deltas
// between two timestamped cumulative snapshots.
type WindowDelta struct {
	Seq   int64     `json:"seq"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	Delta Snapshot  `json:"delta"`
}

// Seconds returns the window length.
func (d WindowDelta) Seconds() float64 { return d.End.Sub(d.Start).Seconds() }

// Rate returns the named counter's per-second rate over this window (0
// for a zero-length window).
func (d WindowDelta) Rate(counter string) float64 {
	sec := d.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(d.Delta.Counters[counter]) / sec
}

// Window retains a bounded ring of timestamped Snapshot deltas. One
// goroutine Advances it on a cadence (a ticker, or an injected clock in
// tests); any goroutine may read the retained deltas. The zero Window
// is not usable; construct with NewWindow.
type Window struct {
	mu     sync.Mutex
	clock  func() time.Time
	ring   []WindowDelta
	head   int // index of the oldest retained delta
	n      int // retained count
	seq    int64
	prev   Snapshot
	prevAt time.Time
	primed bool
}

// NewWindow returns a window retaining up to capacity deltas (minimum
// 1). clock supplies timestamps; nil means time.Now.
func NewWindow(capacity int, clock func() time.Time) *Window {
	if capacity < 1 {
		capacity = 1
	}
	if clock == nil {
		clock = time.Now
	}
	return &Window{clock: clock, ring: make([]WindowDelta, capacity)}
}

// Prime records s as the baseline cumulative snapshot without emitting
// a delta, so the first Advance measures only what happened after
// Prime. An unprimed window's first Advance deltas against the zero
// snapshot (process start).
func (w *Window) Prime(s Snapshot) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.prev = s
	w.prevAt = w.clock()
	w.primed = true
}

// Advance ingests the next cumulative snapshot, appends the delta since
// the previous one to the ring (evicting the oldest past capacity) and
// returns it.
func (w *Window) Advance(s Snapshot) WindowDelta {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.clock()
	if !w.primed {
		w.prevAt = now
		w.primed = true
	}
	w.seq++
	d := WindowDelta{Seq: w.seq, Start: w.prevAt, End: now, Delta: s.Delta(w.prev)}
	w.prev = s
	w.prevAt = now
	if w.n < len(w.ring) {
		w.ring[(w.head+w.n)%len(w.ring)] = d
		w.n++
	} else {
		w.ring[w.head] = d
		w.head = (w.head + 1) % len(w.ring)
	}
	return d
}

// Observe snapshots the registry and Advances the window.
func (w *Window) Observe(r *Registry) WindowDelta { return w.Advance(r.Snapshot()) }

// Len returns the number of retained deltas.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Deltas returns the retained deltas, oldest first (a copy; safe to
// hold across further Advances).
func (w *Window) Deltas() []WindowDelta {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]WindowDelta, w.n)
	for i := 0; i < w.n; i++ {
		out[i] = w.ring[(w.head+i)%len(w.ring)]
	}
	return out
}

// Tail returns the most recent n retained deltas, oldest first.
func (w *Window) Tail(n int) []WindowDelta {
	all := w.Deltas()
	if n >= len(all) {
		return all
	}
	return all[len(all)-n:]
}

// Rate returns the named counter's per-second rate across every
// retained window (total delta over total retained time).
func (w *Window) Rate(counter string) float64 {
	all := w.Deltas()
	if len(all) == 0 {
		return 0
	}
	var total int64
	for _, d := range all {
		total += d.Delta.Counters[counter]
	}
	sec := all[len(all)-1].End.Sub(all[0].Start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(total) / sec
}
