package obs

import (
	"math"
	"testing"
	"time"
)

// synthetic histogram: 2 obs in [0,1), 2 in [1,2), 4 in [2,4), 2 in [4,8).
func synthHist() HistogramSnapshot {
	return HistogramSnapshot{
		Count: 10, Sum: 30,
		Buckets: map[string]int64{"1": 2, "2": 4, "4": 8, "8": 10},
	}
}

func TestQuantileInterpolationExact(t *testing.T) {
	h := synthHist()
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 0},     // rank 0: lower edge of the first bucket
		{0.2, 1},   // rank 2: exactly the first bucket's upper edge
		{0.4, 2},   // rank 4: upper edge of [1,2)
		{0.5, 2.5}, // rank 5: 1/4 into [2,4)
		{0.8, 4},   // rank 8: upper edge of [2,4)
		{0.9, 6},   // rank 9: halfway into [4,8)
		{1, 8},     // rank 10: top of the last occupied bucket
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty Quantile = %g, want NaN", got)
	}
	h := synthHist()
	if got := h.Quantile(-1); math.Abs(got) > 1e-12 {
		t.Errorf("Quantile(-1) = %g, want 0 (clamped)", got)
	}
	if got := h.Quantile(2); math.Abs(got-8) > 1e-12 {
		t.Errorf("Quantile(2) = %g, want 8 (clamped)", got)
	}
	// All mass beyond the finite bounds saturates at the largest bound.
	inf := HistogramSnapshot{Count: 4, Buckets: map[string]int64{"16": 2, "+Inf": 4}}
	if got := inf.Quantile(0.99); math.Abs(got-16) > 1e-12 {
		t.Errorf("catch-all Quantile = %g, want 16 (saturated)", got)
	}
}

func TestQuantileMatchesObservations(t *testing.T) {
	// A real histogram over 1..1000: the p50 estimate must land within
	// the log2 bucket containing the true median.
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	snap := h.snapshot()
	p50 := snap.Quantile(0.5)
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %g, want within the bucket containing 500 ([256,1024))", p50)
	}
	p100 := snap.Quantile(1)
	if p100 < 1000 || p100 > 1024 {
		t.Errorf("p100 = %g, want in [1000, 1024]", p100)
	}
}

func TestFractionAbove(t *testing.T) {
	h := synthHist()
	cases := []struct {
		v    float64
		want float64
	}{
		{0, 0.8},  // 2 of 10 are in [0,1) with interpolated mass 0 at edge... exact: below=0 at v=0 within first bucket, so 1-0.2*0 — see pinned value
		{2, 0.6},  // cum at 2 is 4
		{3, 0.4},  // 4 + half of [2,4)'s 4 = 6 below
		{8, 0},    // everything is ≤ 8
		{100, 0},  // beyond every bucket
		{-1, 1.0}, // below every bucket
	}
	for _, tc := range cases {
		got := h.FractionAbove(tc.v)
		want := tc.want
		if tc.v == 0 {
			// v=0 sits at the first bucket's lower edge: nothing is
			// interpolated below it, so everything counts as above.
			want = 1
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("FractionAbove(%g) = %g, want %g", tc.v, got, want)
		}
	}
	var empty HistogramSnapshot
	if got := empty.FractionAbove(1); got != 0 {
		t.Errorf("empty FractionAbove = %g, want 0", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs").Add(10)
	reg.Gauge("inflight").Set(3)
	reg.Histogram("lat").Observe(5)
	prev := reg.Snapshot()

	reg.Counter("reqs").Add(7)
	reg.Gauge("inflight").Set(1)
	reg.Histogram("lat").Observe(100)
	reg.Counter("fresh").Add(2) // registered mid-flight
	cur := reg.Snapshot()

	d := cur.Delta(prev)
	if d.Counters["reqs"] != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counters["reqs"])
	}
	if d.Counters["fresh"] != 2 {
		t.Errorf("mid-flight counter delta = %d, want 2", d.Counters["fresh"])
	}
	if d.Gauges["inflight"] != 1 {
		t.Errorf("gauge delta carries latest = %d, want 1", d.Gauges["inflight"])
	}
	dh := d.Histograms["lat"]
	if dh.Count != 1 || dh.Sum != 100 {
		t.Errorf("histogram delta count=%d sum=%d, want 1/100", dh.Count, dh.Sum)
	}
	// The delta histogram holds only the new observation (100 lands in
	// the [64,128) bucket, upper bound 128).
	if q := dh.Quantile(0.5); q < 64 || q > 128 {
		t.Errorf("delta histogram p50 = %g, want within [64,128]", q)
	}
}

// TestHistogramDeltaTrimmedPrev exercises the snapshot trim: a previous
// snapshot that saturated early (and therefore omitted trailing bounds)
// must still delta correctly.
func TestHistogramDeltaTrimmedPrev(t *testing.T) {
	prev := HistogramSnapshot{Count: 5, Sum: 0, Buckets: map[string]int64{"1": 5}}
	cur := HistogramSnapshot{Count: 9, Sum: 12, Buckets: map[string]int64{"1": 5, "2": 9}}
	d := cur.sub(prev)
	if d.Count != 4 || d.Sum != 12 {
		t.Fatalf("delta count=%d sum=%d, want 4/12", d.Count, d.Sum)
	}
	if d.Buckets["2"] != 4 {
		t.Errorf("delta bucket le=2 = %d, want 4", d.Buckets["2"])
	}
	if _, ok := d.Buckets["1"]; ok {
		t.Errorf("delta bucket le=1 should be omitted (zero)")
	}
}

// fakeClock yields t0, t0+1s, t0+2s, ... on successive calls.
func fakeClock() func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * time.Second)
		n++
		return t
	}
}

func TestWindowRingAndRates(t *testing.T) {
	reg := NewRegistry()
	w := NewWindow(2, fakeClock())
	w.Prime(reg.Snapshot()) // t=0

	reg.Counter("reqs").Add(10)
	d1 := w.Observe(reg) // t=1
	if d1.Seq != 1 || d1.Delta.Counters["reqs"] != 10 {
		t.Fatalf("first delta = %+v", d1)
	}
	if r := d1.Rate("reqs"); math.Abs(r-10) > 1e-9 {
		t.Errorf("window rate = %g, want 10/s", r)
	}

	reg.Counter("reqs").Add(20)
	w.Observe(reg) // t=2
	reg.Counter("reqs").Add(30)
	d3 := w.Observe(reg) // t=3
	if d3.Delta.Counters["reqs"] != 30 {
		t.Errorf("third delta = %d, want 30", d3.Delta.Counters["reqs"])
	}

	// Capacity 2: the first delta was evicted.
	all := w.Deltas()
	if len(all) != 2 || all[0].Seq != 2 || all[1].Seq != 3 {
		t.Fatalf("ring = %+v, want seqs [2 3]", all)
	}
	if got := w.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
	// Retained rate: (20+30) events over 2 seconds.
	if r := w.Rate("reqs"); math.Abs(r-25) > 1e-9 {
		t.Errorf("retained rate = %g, want 25/s", r)
	}
	if tail := w.Tail(1); len(tail) != 1 || tail[0].Seq != 3 {
		t.Errorf("Tail(1) = %+v, want seq 3", tail)
	}
}

func TestWindowUnprimedFirstAdvance(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(5)
	w := NewWindow(4, fakeClock())
	d := w.Observe(reg)
	if d.Delta.Counters["c"] != 5 {
		t.Errorf("unprimed first delta = %d, want 5 (vs zero baseline)", d.Delta.Counters["c"])
	}
	if d.Seconds() != 0 {
		t.Errorf("unprimed first window length = %gs, want 0 (primed at first advance)", d.Seconds())
	}
}
