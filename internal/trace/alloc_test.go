package trace

import (
	"testing"
)

// TestResetMatchesFreshGenerator rebuilds one pooled generator in place
// for every profile — after it has generated from a *different* profile,
// the hardest reuse case — and checks the instruction stream against a
// fresh generator's. Reseeding plus the deterministic rebuild must
// restore the exact post-construction RNG state.
func TestResetMatchesFreshGenerator(t *testing.T) {
	apps := Apps()
	reused := MustNewGenerator(apps[len(apps)-1], 99)
	var scratch Instr
	for i := 0; i < 10_000; i++ { // advance deep into the stream
		reused.Next(&scratch)
	}
	for _, app := range apps {
		fresh := MustNewGenerator(app, 42)
		if err := reused.Reset(app, 42); err != nil {
			t.Fatalf("%s: Reset: %v", app.Name, err)
		}
		var want, got Instr
		for i := 0; i < 50_000; i++ {
			fresh.Next(&want)
			reused.Next(&got)
			if got != want {
				t.Fatalf("%s: instr %d diverged after Reset:\n got %+v\nwant %+v",
					app.Name, i, got, want)
			}
		}
	}
}

// TestGeneratorSteadyStateZeroAlloc is the allocation budget for
// generator reuse: once a generator has built a profile's phase state,
// re-Resetting to the same profile and generating must not allocate.
func TestGeneratorSteadyStateZeroAlloc(t *testing.T) {
	app := Gzip()
	g := MustNewGenerator(app, 1)
	if err := g.Reset(app, 1); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	var in Instr
	if allocs := testing.AllocsPerRun(5, func() {
		if err := g.Reset(app, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5_000; i++ {
			g.Next(&in)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state Reset+Next allocated %.0f objects/op, want 0", allocs)
	}
}
