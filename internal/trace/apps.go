// Built-in application profiles approximating the paper's workload suite
// (Table 2). The knob values below were calibrated against this
// repository's simulator so that base-processor IPC and power land near
// the paper's (see EXPERIMENTS.md, Table 2); they are not measurements of
// the original binaries.
package trace

import "fmt"

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Apps returns the nine-application suite in the paper's order:
// three multimedia codes, three SpecInt and three SpecFP applications.
func Apps() []Profile {
	return []Profile{
		MPGdec(), MP3dec(), H263enc(),
		Bzip2(), Gzip(), Twolf(),
		Art(), Equake(), Ammp(),
	}
}

// AppByName returns the built-in profile with the given name.
func AppByName(name string) (Profile, error) {
	for _, p := range Apps() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown application %q", name)
}

// MPGdec models an MPEG-2 video decoder: very high ILP dataflow (IDCT,
// motion compensation) over frame buffers that largely fit in L1/L2, with
// highly predictable loop branches — the suite's highest IPC and power.
func MPGdec() Profile {
	return Profile{
		Name: "MPGdec", Class: "multimedia",
		PaperIPC: 3.2, PaperPowerW: 36.5,
		PhaseLen: 120_000,
		Phases: []Phase{
			{
				Name: "idct", Weight: 1.2,
				Mix:      Mix{IntAlu: 0.44, IntMul: 0.04, FPOp: 0.13, Load: 0.22, Store: 0.11, Branch: 0.06},
				DepGeomP: 0.06, NoDepFrac: 0.66,
				CodeBytes: 12 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 16 * kb, StrideBytes: 8, Weight: 0.55},
					{Kind: RandomInSet, WorkingSet: 8 * kb, Weight: 0.35},
					{Kind: Strided, WorkingSet: 96 * kb, StrideBytes: 8, Weight: 0.08},
				},
				PredictableFrac: 0.97, CallFrac: 0.05,
			},
			{
				Name: "mc", Weight: 0.8,
				Mix:      Mix{IntAlu: 0.47, IntMul: 0.03, FPOp: 0.08, Load: 0.25, Store: 0.11, Branch: 0.06},
				DepGeomP: 0.07, NoDepFrac: 0.64,
				CodeBytes: 10 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 24 * kb, StrideBytes: 8, Weight: 0.55},
					{Kind: RandomInSet, WorkingSet: 12 * kb, Weight: 0.33},
					{Kind: Strided, WorkingSet: 96 * kb, StrideBytes: 8, Weight: 0.08},
				},
				PredictableFrac: 0.97, CallFrac: 0.05,
			},
		},
	}
}

// MP3dec models an MP3 audio decoder: FP-heavy filterbank/IMDCT loops on
// small buffers, nearly perfect branch prediction.
func MP3dec() Profile {
	return Profile{
		Name: "MP3dec", Class: "multimedia",
		PaperIPC: 2.8, PaperPowerW: 34.7,
		PhaseLen: 100_000,
		Phases: []Phase{
			{
				Name: "filterbank", Weight: 1.0,
				Mix:      Mix{IntAlu: 0.31, IntMul: 0.03, FPOp: 0.27, Load: 0.23, Store: 0.09, Branch: 0.07},
				DepGeomP: 0.06, NoDepFrac: 0.64,
				CodeBytes: 10 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 12 * kb, StrideBytes: 8, Weight: 0.6},
					{Kind: RandomInSet, WorkingSet: 8 * kb, Weight: 0.33},
					{Kind: Strided, WorkingSet: 96 * kb, StrideBytes: 8, Weight: 0.05},
				},
				PredictableFrac: 0.97, CallFrac: 0.05,
			},
			{
				Name: "huffman", Weight: 0.5,
				Mix:      Mix{IntAlu: 0.53, IntMul: 0.02, FPOp: 0.05, Load: 0.23, Store: 0.07, Branch: 0.10},
				DepGeomP: 0.08, NoDepFrac: 0.60,
				CodeBytes: 14 * kb,
				Streams: []Stream{
					{Kind: RandomInSet, WorkingSet: 20 * kb, Weight: 0.7},
					{Kind: Strided, WorkingSet: 64 * kb, StrideBytes: 8, Weight: 0.3},
				},
				PredictableFrac: 0.92, CallFrac: 0.05,
			},
		},
	}
}

// H263enc models an H.263 video encoder: motion estimation with
// data-dependent branches (SAD early exits) lowers both predictability
// and ILP relative to the decoders.
func H263enc() Profile {
	return Profile{
		Name: "H263enc", Class: "multimedia",
		PaperIPC: 1.9, PaperPowerW: 30.8,
		PhaseLen: 120_000,
		Phases: []Phase{
			{
				Name: "motionest", Weight: 1.3,
				Mix:      Mix{IntAlu: 0.48, IntMul: 0.02, FPOp: 0.05, Load: 0.26, Store: 0.08, Branch: 0.11},
				DepGeomP: 0.12, NoDepFrac: 0.55,
				CodeBytes: 16 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 40 * kb, StrideBytes: 8, Weight: 0.55},
					{Kind: RandomInSet, WorkingSet: 16 * kb, Weight: 0.35},
					{Kind: Strided, WorkingSet: 128 * kb, StrideBytes: 8, Weight: 0.07},
				},
				PredictableFrac: 0.90, CallFrac: 0.04,
			},
			{
				Name: "dct", Weight: 0.7,
				Mix:      Mix{IntAlu: 0.41, IntMul: 0.04, FPOp: 0.13, Load: 0.24, Store: 0.10, Branch: 0.08},
				DepGeomP: 0.08, NoDepFrac: 0.60,
				CodeBytes: 10 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 20 * kb, StrideBytes: 8, Weight: 0.62},
					{Kind: RandomInSet, WorkingSet: 10 * kb, Weight: 0.3},
					{Kind: Strided, WorkingSet: 96 * kb, StrideBytes: 8, Weight: 0.06},
				},
				PredictableFrac: 0.96, CallFrac: 0.04,
			},
		},
	}
}

// Bzip2 models SPEC bzip2: integer compression with a mix of sorting
// (cache-resident, branchy) and move-to-front coding over an L2-sized
// block.
func Bzip2() Profile {
	return Profile{
		Name: "bzip2", Class: "SpecInt",
		PaperIPC: 1.7, PaperPowerW: 23.9,
		PhaseLen: 150_000,
		Phases: []Phase{
			{
				Name: "sort", Weight: 1.1,
				Mix:      Mix{IntAlu: 0.50, IntMul: 0.01, Load: 0.26, Store: 0.09, Branch: 0.14},
				DepGeomP: 0.14, NoDepFrac: 0.50,
				CodeBytes: 18 * kb,
				Streams: []Stream{
					{Kind: RandomInSet, WorkingSet: 24 * kb, Weight: 0.68},
					{Kind: RandomInSet, WorkingSet: 900 * kb, Weight: 0.02},
					{Kind: Strided, WorkingSet: 96 * kb, StrideBytes: 8, Weight: 0.30},
				},
				PredictableFrac: 0.88, CallFrac: 0.03,
			},
			{
				Name: "mtf", Weight: 0.9,
				Mix:      Mix{IntAlu: 0.53, Load: 0.25, Store: 0.10, Branch: 0.12},
				DepGeomP: 0.17, NoDepFrac: 0.47,
				CodeBytes: 12 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 128 * kb, StrideBytes: 8, Weight: 0.3},
					{Kind: RandomInSet, WorkingSet: 24 * kb, Weight: 0.6},
				},
				PredictableFrac: 0.90, CallFrac: 0.03,
			},
		},
	}
}

// Gzip models SPEC gzip: LZ77 string matching with hash-table lookups
// (mildly irregular) over a window that spills past L1.
func Gzip() Profile {
	return Profile{
		Name: "gzip", Class: "SpecInt",
		PaperIPC: 1.5, PaperPowerW: 23.4,
		PhaseLen: 140_000,
		Phases: []Phase{
			{
				Name: "deflate", Weight: 1.0,
				Mix:      Mix{IntAlu: 0.49, IntMul: 0.01, Load: 0.28, Store: 0.08, Branch: 0.14},
				DepGeomP: 0.15, NoDepFrac: 0.50,
				CodeBytes: 16 * kb,
				Streams: []Stream{
					{Kind: RandomInSet, WorkingSet: 28 * kb, Weight: 0.6},
					{Kind: Strided, WorkingSet: 96 * kb, StrideBytes: 8, Weight: 0.3},
					{Kind: RandomInSet, WorkingSet: 160 * kb, Weight: 0.04},
					{Kind: RandomInSet, WorkingSet: 2 * mb, Weight: 0.01},
				},
				PredictableFrac: 0.90, CallFrac: 0.03,
			},
			{
				Name: "longmatch", Weight: 0.6,
				Mix:      Mix{IntAlu: 0.46, Load: 0.31, Store: 0.07, Branch: 0.16},
				DepGeomP: 0.15, NoDepFrac: 0.50,
				CodeBytes: 12 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 128 * kb, StrideBytes: 8, Weight: 0.33},
					{Kind: RandomInSet, WorkingSet: 24 * kb, Weight: 0.55},
					{Kind: RandomInSet, WorkingSet: 160 * kb, Weight: 0.12},
				},
				PredictableFrac: 0.92, CallFrac: 0.03,
			},
		},
	}
}

// Twolf models SPEC twolf: place-and-route with pointer-chasing over a
// multi-megabyte netlist and poorly predictable branches — the paper's
// coolest, lowest-IPC integer application.
func Twolf() Profile {
	return Profile{
		Name: "twolf", Class: "SpecInt",
		PaperIPC: 0.8, PaperPowerW: 15.6,
		PhaseLen: 150_000,
		Phases: []Phase{
			{
				Name: "newpos", Weight: 1.0,
				Mix:      Mix{IntAlu: 0.44, IntMul: 0.02, IntDiv: 0.01, Load: 0.30, Store: 0.07, Branch: 0.16},
				DepGeomP: 0.30, NoDepFrac: 0.32,
				CodeBytes: 40 * kb,
				Streams: []Stream{
					{Kind: RandomInSet, WorkingSet: 3 * mb, Weight: 0.035},
					{Kind: RandomInSet, WorkingSet: 256 * kb, Weight: 0.10},
					{Kind: RandomInSet, WorkingSet: 32 * kb, Weight: 0.88},
				},
				PredictableFrac: 0.62, CallFrac: 0.05,
			},
		},
	}
}

// Art models SPEC art: a neural-network simulator streaming over
// matrices far larger than L2 — memory-bound FP with the suite's lowest
// IPC.
func Art() Profile {
	return Profile{
		Name: "art", Class: "SpecFP",
		PaperIPC: 0.7, PaperPowerW: 17.0,
		PhaseLen: 150_000,
		Phases: []Phase{
			{
				Name: "f1scan", Weight: 1.0,
				Mix:      Mix{IntAlu: 0.24, FPOp: 0.30, FPDiv: 0.01, Load: 0.33, Store: 0.06, Branch: 0.06},
				DepGeomP: 0.18, NoDepFrac: 0.42,
				CodeBytes: 8 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 6 * mb, StrideBytes: 16, Weight: 0.30},
					{Kind: RandomInSet, WorkingSet: 4 * mb, Weight: 0.06},
					{Kind: Strided, WorkingSet: 24 * kb, StrideBytes: 8, Weight: 0.64},
				},
				PredictableFrac: 0.95, CallFrac: 0.03,
			},
		},
	}
}

// Equake models SPEC equake: sparse matrix-vector FP computation with a
// mix of streaming and indirect accesses that partially fit in L2.
func Equake() Profile {
	return Profile{
		Name: "equake", Class: "SpecFP",
		PaperIPC: 1.4, PaperPowerW: 20.9,
		PhaseLen: 130_000,
		Phases: []Phase{
			{
				Name: "smvp", Weight: 1.0,
				Mix:      Mix{IntAlu: 0.28, FPOp: 0.26, Load: 0.31, Store: 0.08, Branch: 0.07},
				DepGeomP: 0.11, NoDepFrac: 0.52,
				CodeBytes: 10 * kb,
				Streams: []Stream{
					{Kind: Strided, WorkingSet: 128 * kb, StrideBytes: 8, Weight: 0.28},
					{Kind: RandomInSet, WorkingSet: 1536 * kb, Weight: 0.03},
					{Kind: Strided, WorkingSet: 32 * kb, StrideBytes: 8, Weight: 0.35},
					{Kind: RandomInSet, WorkingSet: 20 * kb, Weight: 0.29},
				},
				PredictableFrac: 0.94, CallFrac: 0.03,
			},
		},
	}
}

// Ammp models SPEC ammp: molecular dynamics with FP divides and
// neighbour-list gathers over an L2-straining working set.
func Ammp() Profile {
	return Profile{
		Name: "ammp", Class: "SpecFP",
		PaperIPC: 1.1, PaperPowerW: 19.7,
		PhaseLen: 130_000,
		Phases: []Phase{
			{
				Name: "mmfv", Weight: 1.0,
				Mix:      Mix{IntAlu: 0.26, FPOp: 0.30, FPDiv: 0.02, Load: 0.28, Store: 0.07, Branch: 0.07},
				DepGeomP: 0.17, NoDepFrac: 0.45,
				CodeBytes: 14 * kb,
				Streams: []Stream{
					{Kind: RandomInSet, WorkingSet: 1200 * kb, Weight: 0.06},
					{Kind: Strided, WorkingSet: 128 * kb, StrideBytes: 8, Weight: 0.34},
					{Kind: RandomInSet, WorkingSet: 28 * kb, Weight: 0.58},
					{Kind: RandomInSet, WorkingSet: 3 * mb, Weight: 0.02},
				},
				PredictableFrac: 0.93, CallFrac: 0.03,
			},
		},
	}
}
