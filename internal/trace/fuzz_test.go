package trace_test

// Fuzz coverage for the synthetic trace generator: arbitrary (but
// Validate-accepted) profiles must yield well-formed instruction streams
// — valid op codes, addresses only on memory ops, targets on control
// ops — must be deterministic per (profile, seed), and must drive the
// timing simulator to a finite, positive, bounded IPC. The CI fuzz lane
// runs this for a few seconds on every push; longer local runs:
//
//	go test -fuzz FuzzTraceGenerator -fuzztime 60s ./internal/trace/
import (
	"math"
	"testing"

	"ramp/internal/config"
	"ramp/internal/sim"
	"ramp/internal/trace"
)

// fuzzProfile derives a syntactically valid profile from raw fuzz bytes.
// Mix weights are normalised so the fractions sum to 1; sizes are folded
// into ranges Validate accepts, so almost every input exercises the
// generator rather than the validator.
func fuzzProfile(wAlu, wMul, wDiv, wFP, wFPDiv, wLoad, wStore, wBranch uint8,
	depP, noDep, predictable, callFrac uint8,
	codeKB uint8, wsKB uint16, stride uint8, phaseLen uint16) (trace.Profile, bool) {

	total := float64(wAlu) + float64(wMul) + float64(wDiv) + float64(wFP) +
		float64(wFPDiv) + float64(wLoad) + float64(wStore) + float64(wBranch)
	if total == 0 {
		return trace.Profile{}, false
	}
	mix := trace.Mix{
		IntAlu: float64(wAlu) / total,
		IntMul: float64(wMul) / total,
		IntDiv: float64(wDiv) / total,
		FPOp:   float64(wFP) / total,
		FPDiv:  float64(wFPDiv) / total,
		Load:   float64(wLoad) / total,
		Store:  float64(wStore) / total,
		Branch: float64(wBranch) / total,
	}
	p := trace.Profile{
		Name:     "fuzz",
		Class:    "fuzz",
		PhaseLen: 1 + int(phaseLen),
		Phases: []trace.Phase{{
			Name:      "p0",
			Weight:    1,
			Mix:       mix,
			DepGeomP:  0.05 + 0.9*float64(depP)/255,
			NoDepFrac: float64(noDep) / 255,
			CodeBytes: 256 * (1 + uint64(codeKB)%64),
			Streams: []trace.Stream{{
				Kind:        trace.Strided,
				WorkingSet:  1024 * (1 + uint64(wsKB)%4096),
				StrideBytes: 8 * (1 + uint64(stride)%64),
				Weight:      1,
			}},
			PredictableFrac: float64(predictable) / 255,
			CallFrac:        float64(callFrac%64) / 255,
		}},
	}
	return p, true
}

func FuzzTraceGenerator(f *testing.F) {
	// Seeds: an even mix, a branch-heavy integer code, an FP stream code,
	// and a degenerate all-load profile.
	f.Add(uint8(40), uint8(2), uint8(1), uint8(10), uint8(1), uint8(25), uint8(10), uint8(11),
		uint8(128), uint8(80), uint8(200), uint8(10), uint8(16), uint16(64), uint8(8), uint16(10000), int64(1))
	f.Add(uint8(50), uint8(0), uint8(0), uint8(0), uint8(0), uint8(20), uint8(10), uint8(20),
		uint8(40), uint8(30), uint8(255), uint8(63), uint8(4), uint16(8), uint8(1), uint16(500), int64(7))
	f.Add(uint8(10), uint8(0), uint8(0), uint8(60), uint8(5), uint8(15), uint8(5), uint8(5),
		uint8(220), uint8(120), uint8(0), uint8(0), uint8(63), uint16(4095), uint8(63), uint16(65535), int64(-3))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(255), uint8(0), uint8(0),
		uint8(1), uint8(255), uint8(128), uint8(32), uint8(0), uint16(0), uint8(0), uint16(1), int64(0))

	f.Fuzz(func(t *testing.T,
		wAlu, wMul, wDiv, wFP, wFPDiv, wLoad, wStore, wBranch uint8,
		depP, noDep, predictable, callFrac uint8,
		codeKB uint8, wsKB uint16, stride uint8, phaseLen uint16, seed int64) {

		prof, ok := fuzzProfile(wAlu, wMul, wDiv, wFP, wFPDiv, wLoad, wStore, wBranch,
			depP, noDep, predictable, callFrac, codeKB, wsKB, stride, phaseLen)
		if !ok {
			t.Skip("all mix weights zero")
		}
		if err := prof.Validate(); err != nil {
			t.Skipf("profile rejected: %v", err)
		}
		gen, err := trace.NewGenerator(prof, seed)
		if err != nil {
			t.Fatalf("Validate accepted but NewGenerator failed: %v", err)
		}
		ref, err := trace.NewGenerator(prof, seed)
		if err != nil {
			t.Fatal(err)
		}

		const n = 4096
		var in, in2 trace.Instr
		for i := 0; i < n; i++ {
			gen.Next(&in)
			ref.Next(&in2)
			if in != in2 {
				t.Fatalf("instr %d: generator not deterministic for seed %d:\n%+v\nvs\n%+v", i, seed, in, in2)
			}
			if in.Op >= trace.NumOps {
				t.Fatalf("instr %d: invalid op %d", i, in.Op)
			}
			if in.Op.IsMem() && in.Addr == 0 {
				t.Fatalf("instr %d: %v with zero address", i, in.Op)
			}
			if !in.Op.IsMem() && in.Addr != 0 {
				t.Fatalf("instr %d: %v carries address %#x", i, in.Op, in.Addr)
			}
			if in.Op.IsBranch() && in.Target == 0 {
				t.Fatalf("instr %d: %v with zero target", i, in.Op)
			}
			if in.PC == 0 {
				t.Fatalf("instr %d: zero PC", i)
			}
		}
		if got := gen.Generated(); got != n {
			t.Fatalf("Generated() = %d, want %d", got, n)
		}

		// The stream must drive the timing simulator to a sane result: IPC
		// finite, positive and bounded by the fetch width.
		proc := config.Base()
		core, err := sim.New(proc, trace.MustNewGenerator(prof, seed))
		if err != nil {
			t.Fatalf("sim.New: %v", err)
		}
		res := core.Run(2000)
		if math.IsNaN(res.IPC) || math.IsInf(res.IPC, 0) {
			t.Fatalf("IPC is %v", res.IPC)
		}
		if res.IPC <= 0 {
			t.Fatalf("non-positive IPC %v (retired %d in %d cycles)", res.IPC, res.Retired, res.Cycles)
		}
		if res.IPC > float64(proc.FetchWidth) {
			t.Fatalf("IPC %v exceeds fetch width %d", res.IPC, proc.FetchWidth)
		}
		for i, a := range res.Activity {
			if math.IsNaN(a) || a < 0 || a > 1 {
				t.Fatalf("activity[%d] = %v out of [0,1]", i, a)
			}
		}
	})
}

// FuzzMixSum pins the Mix.Sum contract Validate relies on: the sum of a
// normalised mix is within the validator's tolerance band for any
// weight vector.
func FuzzMixSum(f *testing.F) {
	f.Add(uint8(40), uint8(2), uint8(1), uint8(10), uint8(1), uint8(25), uint8(10), uint8(11))
	f.Add(uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, wAlu, wMul, wDiv, wFP, wFPDiv, wLoad, wStore, wBranch uint8) {
		prof, ok := fuzzProfile(wAlu, wMul, wDiv, wFP, wFPDiv, wLoad, wStore, wBranch,
			128, 128, 128, 0, 1, 1, 1, 100)
		if !ok {
			t.Skip()
		}
		if s := prof.Phases[0].Mix.Sum(); s < 0.999 || s > 1.001 {
			t.Fatalf("normalised mix sums to %v", s)
		}
	})
}
