package trace

import (
	"testing"
	"testing/quick"
)

// testProfile is a small single-phase profile for focused tests.
func testProfile() Profile {
	return Profile{
		Name: "test", Class: "test", PhaseLen: 10_000,
		Phases: []Phase{{
			Name: "p", Weight: 1,
			Mix: Mix{IntAlu: 0.50, IntMul: 0.02, IntDiv: 0.01, FPOp: 0.08,
				FPDiv: 0.01, Load: 0.20, Store: 0.08, Branch: 0.10},
			DepGeomP: 0.2, NoDepFrac: 0.4,
			CodeBytes: 8 << 10,
			Streams: []Stream{
				{Kind: Strided, WorkingSet: 16 << 10, StrideBytes: 8, Weight: 0.7},
				{Kind: RandomInSet, WorkingSet: 1 << 20, Weight: 0.3},
			},
			PredictableFrac: 0.9, CallFrac: 0.05,
		}},
	}
}

func collect(t *testing.T, p Profile, seed int64, n int) []Instr {
	t.Helper()
	g, err := NewGenerator(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Instr, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestGeneratorDeterministic(t *testing.T) {
	a := collect(t, testProfile(), 7, 20_000)
	b := collect(t, testProfile(), 7, 20_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := collect(t, testProfile(), 1, 5_000)
	b := collect(t, testProfile(), 2, 5_000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestMixApproximatelyHonoured(t *testing.T) {
	p := testProfile()
	instrs := collect(t, p, 3, 200_000)
	counts := map[Op]int{}
	for _, in := range instrs {
		counts[in.Op]++
	}
	n := float64(len(instrs))
	mix := p.Phases[0].Mix
	// The dynamic mix tracks the static mix loosely (loops reweight
	// blocks), so allow generous tolerance.
	checks := []struct {
		got  float64
		want float64
	}{
		{float64(counts[IntAlu]), mix.IntAlu},
		{float64(counts[Load]), mix.Load},
		{float64(counts[Store]), mix.Store},
		{float64(counts[Branch] + counts[Call] + counts[Ret]), mix.Branch},
		{float64(counts[FPOp]), mix.FPOp},
	}
	for i, c := range checks {
		frac := c.got / n
		if frac < c.want*0.5 || frac > c.want*1.8 {
			t.Errorf("check %d: dynamic fraction %.3f vs static %.3f", i, frac, c.want)
		}
	}
}

func TestPCsStayInCodeFootprint(t *testing.T) {
	p := testProfile()
	code := p.Phases[0].CodeBytes
	for _, in := range collect(t, p, 5, 50_000) {
		off := in.PC - (1 << 32)
		if off >= code {
			t.Fatalf("PC offset %d outside code footprint %d", off, code)
		}
		if in.PC%4 != 0 {
			t.Fatalf("unaligned PC %x", in.PC)
		}
	}
}

func TestBranchTargetsInFootprint(t *testing.T) {
	p := testProfile()
	code := p.Phases[0].CodeBytes
	for _, in := range collect(t, p, 11, 50_000) {
		if !in.Op.IsBranch() {
			continue
		}
		off := in.Target - (1 << 32)
		if off >= code {
			t.Fatalf("branch target offset %d outside code", off)
		}
	}
}

func TestCallRetPairing(t *testing.T) {
	p := testProfile()
	var stack []uint64
	orphanRets := 0
	for _, in := range collect(t, p, 13, 100_000) {
		switch in.Op {
		case Call:
			if !in.Taken {
				t.Fatal("call not taken")
			}
			stack = append(stack, in.PC+4)
		case Ret:
			if len(stack) == 0 {
				orphanRets++
				continue
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if in.Target != want {
				t.Fatalf("ret to %x, want %x", in.Target, want)
			}
		}
	}
	if orphanRets > 2 {
		t.Fatalf("%d orphan returns", orphanRets)
	}
}

func TestAddressesWithinStreams(t *testing.T) {
	p := testProfile()
	for _, in := range collect(t, p, 17, 50_000) {
		if !in.Op.IsMem() {
			continue
		}
		if in.Addr == 0 {
			t.Fatal("memory op without address")
		}
		// Addresses live in the per-phase data region, far above code.
		if in.Addr < 1<<39 {
			t.Fatalf("address %x below data region", in.Addr)
		}
	}
}

func TestDepDistancesBounded(t *testing.T) {
	for _, in := range collect(t, testProfile(), 19, 50_000) {
		if in.Dep1 > 256 || in.Dep2 > 256 {
			t.Fatalf("dependency distance too large: %d %d", in.Dep1, in.Dep2)
		}
	}
}

func TestPhaseCycling(t *testing.T) {
	p := testProfile()
	p.Phases = append(p.Phases, p.Phases[0])
	p.Phases[1].Name = "q"
	p.PhaseLen = 1000
	g := MustNewGenerator(p, 1)
	basesSeen := map[uint64]bool{}
	var in Instr
	for i := 0; i < 5000; i++ {
		g.Next(&in)
		basesSeen[in.PC>>32] = true
	}
	if len(basesSeen) != 2 {
		t.Fatalf("saw %d phase code bases, want 2", len(basesSeen))
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	mods := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Phases = nil },
		func(p *Profile) { p.PhaseLen = 0 },
		func(p *Profile) { p.Phases[0].Mix.IntAlu = 0.9 }, // sum > 1
		func(p *Profile) { p.Phases[0].DepGeomP = 0 },
		func(p *Profile) { p.Phases[0].CodeBytes = 8 },
		func(p *Profile) { p.Phases[0].Streams = nil },
		func(p *Profile) { p.Phases[0].Streams[0].WorkingSet = 0 },
		func(p *Profile) {
			p.Phases[0].Streams[0] = Stream{Kind: Strided, WorkingSet: 64, StrideBytes: 0, Weight: 1}
		},
		func(p *Profile) { p.Phases[0].PredictableFrac = 1.5 },
		func(p *Profile) {
			for i := range p.Phases[0].Streams {
				p.Phases[0].Streams[i].Weight = 0
			}
		},
	}
	for i, mod := range mods {
		p := testProfile()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
	if _, err := NewGenerator(Profile{}, 1); err == nil {
		t.Error("NewGenerator accepted empty profile")
	}
}

func TestBuiltinAppsValid(t *testing.T) {
	apps := Apps()
	if len(apps) != 9 {
		t.Fatalf("suite has %d apps, want 9", len(apps))
	}
	classes := map[string]int{}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s invalid: %v", a.Name, err)
		}
		if a.PaperIPC <= 0 || a.PaperPowerW <= 0 {
			t.Errorf("%s missing paper reference values", a.Name)
		}
		classes[a.Class]++
	}
	if classes["multimedia"] != 3 || classes["SpecInt"] != 3 || classes["SpecFP"] != 3 {
		t.Fatalf("class split %v, want 3/3/3", classes)
	}
}

func TestAppByName(t *testing.T) {
	a, err := AppByName("twolf")
	if err != nil || a.Name != "twolf" {
		t.Fatalf("AppByName(twolf) = %v, %v", a.Name, err)
	}
	if _, err := AppByName("nosuch"); err == nil {
		t.Fatal("AppByName accepted unknown name")
	}
}

func TestOpPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() || IntAlu.IsMem() {
		t.Fatal("IsMem broken")
	}
	if !Branch.IsBranch() || !Call.IsBranch() || !Ret.IsBranch() || Load.IsBranch() {
		t.Fatal("IsBranch broken")
	}
	if !FPOp.IsFP() || !FPDiv.IsFP() || IntMul.IsFP() {
		t.Fatal("IsFP broken")
	}
	if Load.String() != "Load" || Op(200).String() == "" {
		t.Fatal("String broken")
	}
}

// Property: any seed yields a generator whose first 1000 instructions
// respect basic invariants (taken branches have targets, mem ops have
// addresses, ops are in range).
func TestGeneratorInvariantsQuick(t *testing.T) {
	p := testProfile()
	f := func(seed int64) bool {
		g, err := NewGenerator(p, seed)
		if err != nil {
			return false
		}
		var in Instr
		for i := 0; i < 1000; i++ {
			g.Next(&in)
			if in.Op >= NumOps {
				return false
			}
			if in.Op.IsMem() && in.Addr == 0 {
				return false
			}
			if in.Taken && in.Target == 0 {
				return false
			}
		}
		return g.Generated() == 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStridedStreamWraps(t *testing.T) {
	p := testProfile()
	p.Phases[0].Mix = Mix{Load: 0.9, IntAlu: 0.1}
	p.Phases[0].Streams = []Stream{{Kind: Strided, WorkingSet: 1024, StrideBytes: 8, Weight: 1}}
	g := MustNewGenerator(p, 1)
	seen := map[uint64]bool{}
	var in Instr
	for i := 0; i < 5000; i++ {
		g.Next(&in)
		if in.Op == Load {
			seen[in.Addr] = true
		}
	}
	// A 1 KB working set walked with stride 8 has exactly 128 distinct
	// addresses; thousands of loads must wrap and reuse them.
	if len(seen) != 128 {
		t.Fatalf("strided stream touched %d addresses, want 128", len(seen))
	}
}
