// Package trace generates synthetic instruction traces that stand in for
// the paper's workloads (three multimedia codes, three SpecInt and three
// SpecFP applications, Table 2).
//
// We do not have the SPEC2000/multimedia binaries or an ISA front end, so
// each application is modelled as a statistical program. For every phase
// the generator synthesizes a *static* program once — functions made of
// basic blocks; straightline slots drawn from the phase's instruction mix
// with fixed register dependency distances; memory sites bound to data
// reference streams; branch sites with fixed taken-probability biases and
// targets — and then produces the dynamic stream by executing that
// program. Static structure is what lets a real branch predictor train,
// gives the I-cache a stable code footprint, and gives the data caches
// stream locality, while the knobs (mix, dependency distances, working
// sets, branch bias distribution) set the IPC and per-structure activity
// the paper's evaluation depends on.
//
// Profiles are calibrated so the base-processor IPC and power approximate
// Table 2 (see EXPERIMENTS.md). Generators are deterministic for a given
// (profile, seed) pair.
package trace

import (
	"fmt"
	"math/rand"
)

// Op is an instruction class. Latencies and functional-unit bindings are
// the simulator's concern; the trace only carries the class.
type Op uint8

// Instruction classes.
const (
	IntAlu Op = iota // single-cycle integer op
	IntMul           // integer multiply
	IntDiv           // integer divide
	FPOp             // pipelined FP op (add/mul/...)
	FPDiv            // FP divide (not pipelined)
	Load
	Store
	Branch // conditional branch
	Call   // call (pushes the return address)
	Ret    // return
	NumOps
)

var opNames = [NumOps]string{
	IntAlu: "IntAlu", IntMul: "IntMul", IntDiv: "IntDiv",
	FPOp: "FPOp", FPDiv: "FPDiv", Load: "Load", Store: "Store",
	Branch: "Branch", Call: "Call", Ret: "Ret",
}

// String returns the op's name.
func (o Op) String() string {
	if o >= NumOps {
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
	return opNames[o]
}

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == Load || o == Store }

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool { return o == Branch || o == Call || o == Ret }

// IsFP reports whether the op uses the floating-point pipeline.
func (o Op) IsFP() bool { return o == FPOp || o == FPDiv }

// Instr is one dynamic instruction.
type Instr struct {
	PC uint64
	Op Op

	// Dep1/Dep2 are register dependency distances: the producing
	// instruction is DepN dynamic instructions earlier (1 = the previous
	// instruction). 0 means no register dependence for that operand.
	Dep1, Dep2 uint16

	// Addr is the effective address for Load/Store.
	Addr uint64

	// Taken and Target describe the actual outcome for branch ops.
	Taken  bool
	Target uint64
}

// Mix is an instruction-class mix; entries must sum to ~1. The Branch
// share covers conditional branches, calls and returns together.
type Mix struct {
	IntAlu, IntMul, IntDiv float64
	FPOp, FPDiv            float64
	Load, Store            float64
	Branch                 float64
}

// Sum returns the total of all mix fractions.
func (m Mix) Sum() float64 {
	return m.IntAlu + m.IntMul + m.IntDiv + m.FPOp + m.FPDiv + m.Load + m.Store + m.Branch
}

// StreamKind selects a data reference pattern.
type StreamKind uint8

// Data reference stream kinds.
const (
	// Strided walks an array with a fixed stride, wrapping at the
	// working-set boundary; it has high spatial locality when the stride
	// is below the line size.
	Strided StreamKind = iota
	// RandomInSet touches uniformly random words within the working set;
	// its hit ratio is governed by how much of the set fits in the cache.
	RandomInSet
)

// Stream describes one data reference stream.
type Stream struct {
	Kind        StreamKind
	WorkingSet  uint64  // bytes
	StrideBytes uint64  // for Strided
	Weight      float64 // share of static memory sites bound to this stream
}

// Phase is a stationary program phase.
type Phase struct {
	Name string
	// Weight is the relative dynamic-instruction share of this phase.
	Weight float64
	Mix    Mix
	// DepGeomP is the parameter of the geometric dependency-distance
	// distribution; larger P means shorter distances and less ILP.
	DepGeomP float64
	// NoDepFrac is the probability that an operand has no register
	// dependence (immediate/loop-invariant value).
	NoDepFrac float64
	// CodeBytes is the static code footprint of this phase (4 bytes per
	// instruction).
	CodeBytes uint64
	// Streams describe data references; weights are normalised.
	Streams []Stream
	// PredictableFrac is the fraction of static branch sites with a
	// heavily biased outcome (taken with probability 0.015 or 0.985); the
	// rest are weakly biased and hard to predict.
	PredictableFrac float64
	// CallFrac is the probability that a block terminator is a call site.
	CallFrac float64
}

// Profile is a complete synthetic application.
type Profile struct {
	Name string
	// Class is a free-form label ("multimedia", "SpecInt", "SpecFP").
	Class string
	// PhaseLen is the number of dynamic instructions per phase visit
	// (scaled by each phase's weight).
	PhaseLen int
	Phases   []Phase

	// PaperIPC and PaperPowerW record Table 2 for calibration reporting.
	PaperIPC    float64
	PaperPowerW float64
}

// Validate checks the profile's internal consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile without name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("trace: profile %s has no phases", p.Name)
	}
	if p.PhaseLen <= 0 {
		return fmt.Errorf("trace: profile %s has non-positive phase length", p.Name)
	}
	for _, ph := range p.Phases {
		if s := ph.Mix.Sum(); s < 0.999 || s > 1.001 {
			return fmt.Errorf("trace: profile %s phase %s mix sums to %v", p.Name, ph.Name, s)
		}
		if ph.DepGeomP <= 0 || ph.DepGeomP >= 1 {
			return fmt.Errorf("trace: profile %s phase %s DepGeomP %v out of (0,1)", p.Name, ph.Name, ph.DepGeomP)
		}
		if ph.CodeBytes < 256 {
			return fmt.Errorf("trace: profile %s phase %s code footprint %d too small", p.Name, ph.Name, ph.CodeBytes)
		}
		if len(ph.Streams) == 0 {
			return fmt.Errorf("trace: profile %s phase %s has no data streams", p.Name, ph.Name)
		}
		var w float64
		for _, st := range ph.Streams {
			if st.WorkingSet == 0 {
				return fmt.Errorf("trace: profile %s phase %s stream with zero working set", p.Name, ph.Name)
			}
			if st.Kind == Strided && st.StrideBytes == 0 {
				return fmt.Errorf("trace: profile %s phase %s strided stream with zero stride", p.Name, ph.Name)
			}
			w += st.Weight
		}
		if w <= 0 {
			return fmt.Errorf("trace: profile %s phase %s has zero stream weight", p.Name, ph.Name)
		}
		if ph.PredictableFrac < 0 || ph.PredictableFrac > 1 {
			return fmt.Errorf("trace: profile %s phase %s PredictableFrac out of [0,1]", p.Name, ph.Name)
		}
	}
	return nil
}

// staticInstr is one slot of a phase's synthesized static program.
type staticInstr struct {
	op         Op
	dep1, dep2 uint16
	stream     uint16  // memory ops: index into the phase's streams
	bias       float32 // Branch: probability taken
	target     uint32  // Branch/Call: target instruction index
}

// streamState is the dynamic cursor of one data stream.
type streamState struct {
	spec Stream
	base uint64
	pos  uint64
}

// phaseRT is the per-phase runtime: the synthesized program plus dynamic
// execution state, persisted across phase visits.
type phaseRT struct {
	prog      []staticInstr
	codeBase  uint64
	streams   []streamState
	pc        uint32
	callStack []uint32
}

const maxCallDepth = 24

// Generator produces the dynamic instruction stream of a profile.
type Generator struct {
	prof Profile
	rng  *rand.Rand

	phases    []phaseRT
	phaseIdx  int
	phaseLeft int
	generated uint64

	// Program-synthesis scratch, reused across Reset calls so a pooled
	// generator rebuilds without allocating.
	funcScratch  []uint32
	blockScratch []uint32
}

// NewGenerator returns a deterministic generator for profile p and seed.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	g := &Generator{rng: rand.New(rand.NewSource(seed))}
	if err := g.Reset(p, seed); err != nil {
		return nil, err
	}
	return g, nil
}

// Reset reinitialises the generator in place for profile p and seed,
// after which its output is bit-identical to a fresh
// NewGenerator(p, seed). Program synthesis is deterministic in
// (profile, seed), so re-seeding the source and rebuilding every phase
// restores both the static programs and the generator's stream state
// exactly; phase runtimes (program slots, stream cursors, call stacks)
// reuse their previous allocations whenever the shapes match, making a
// same-profile Reset allocation-free in steady state.
func (g *Generator) Reset(p Profile, seed int64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	g.prof = p
	g.rng.Seed(seed)
	if len(g.phases) != len(p.Phases) {
		g.phases = make([]phaseRT, len(p.Phases))
	}
	for i := range p.Phases {
		g.buildPhase(i)
	}
	g.phaseIdx = 0
	g.phaseLeft = g.phaseLen(0)
	g.generated = 0
	return nil
}

// MustNewGenerator is NewGenerator, panicking on invalid profiles. It is
// intended for the built-in profiles, which are validated by tests.
func MustNewGenerator(p Profile, seed int64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Generated returns the number of instructions generated so far.
func (g *Generator) Generated() uint64 { return g.generated }

// phaseLen returns the visit length for phase idx, scaled by its weight.
func (g *Generator) phaseLen(idx int) int {
	ph := g.prof.Phases[idx]
	w := ph.Weight
	if w <= 0 {
		w = 1
	}
	n := int(float64(g.prof.PhaseLen) * w)
	if n < 1 {
		n = 1
	}
	return n
}

// buildPhase synthesizes phase idx's static program and stream state.
func (g *Generator) buildPhase(idx int) {
	ph := &g.prof.Phases[idx]
	rt := &g.phases[idx]
	rt.codeBase = uint64(idx+1) << 32

	// Streams: distinct address regions per phase and per stream.
	var wsum float64
	for _, s := range ph.Streams {
		wsum += s.Weight
	}
	dataBase := uint64(idx+1)<<40 | 1<<39
	if len(rt.streams) != len(ph.Streams) {
		rt.streams = make([]streamState, len(ph.Streams))
	}
	for i, s := range ph.Streams {
		rt.streams[i] = streamState{spec: s, base: dataBase + uint64(i)<<34}
	}

	n := int(ph.CodeBytes / 4)
	if n < 64 {
		n = 64
	}
	var prog []staticInstr
	if cap(rt.prog) >= n {
		// Rebuild in place; clear first so slots the fill passes only
		// partially write (e.g. a terminator over a former memory op)
		// match a freshly allocated program exactly.
		prog = rt.prog[:n]
		clear(prog)
	} else {
		prog = make([]staticInstr, n)
	}

	// Partition the program into functions of contiguous blocks.
	numFuncs := n / 600
	if numFuncs < 2 {
		numFuncs = 2
	}
	if numFuncs > 48 {
		numFuncs = 48
	}
	if cap(g.funcScratch) < numFuncs {
		g.funcScratch = make([]uint32, numFuncs)
	}
	funcStart := g.funcScratch[:numFuncs]
	for f := 0; f < numFuncs; f++ {
		funcStart[f] = uint32(f * n / numFuncs)
	}
	funcEnd := func(f int) uint32 {
		if f == numFuncs-1 {
			return uint32(n)
		}
		return funcStart[f+1]
	}

	bf := ph.Mix.Branch
	meanBlock := 8.0
	if bf > 0 {
		meanBlock = 1/bf - 1
	}
	if meanBlock < 1 {
		meanBlock = 1
	}

	// Cumulative mix for straightline ops (branch share excluded).
	type opw struct {
		op Op
		w  float64
	}
	ops := []opw{
		{IntAlu, ph.Mix.IntAlu}, {IntMul, ph.Mix.IntMul}, {IntDiv, ph.Mix.IntDiv},
		{FPOp, ph.Mix.FPOp}, {FPDiv, ph.Mix.FPDiv},
		{Load, ph.Mix.Load}, {Store, ph.Mix.Store},
	}
	var slSum float64
	for _, o := range ops {
		slSum += o.w
	}

	pickStream := func() uint16 {
		r := g.rng.Float64() * wsum
		var acc float64
		for i, s := range ph.Streams {
			acc += s.Weight
			if r <= acc {
				return uint16(i)
			}
		}
		return uint16(len(ph.Streams) - 1)
	}
	depDist := func() uint16 {
		if g.rng.Float64() < ph.NoDepFrac {
			return 0
		}
		d := 1
		for d < 192 && g.rng.Float64() > ph.DepGeomP {
			d++
		}
		return uint16(d)
	}

	fillStraightline := func(i uint32) {
		si := &prog[i]
		r := g.rng.Float64() * slSum
		var acc float64
		si.op = IntAlu
		for _, o := range ops {
			acc += o.w
			if r <= acc {
				si.op = o.op
				break
			}
		}
		si.dep1 = depDist()
		si.dep2 = depDist()
		if si.op.IsMem() {
			si.stream = pickStream()
		}
	}

	// Control-flow structure: each function's blocks execute mostly in
	// sequence; conditional branches are forward skips of a few blocks
	// ("if" patterns) or short self-loops ("inner loops"), and the
	// function's tail branches back to its start with high probability
	// (the iterating outer loop). This keeps the dynamic instruction
	// distribution close to the static one, which is what makes the
	// profile knobs (mix, streams, biases) controllable.
	for f := 0; f < numFuncs; f++ {
		start, end := funcStart[f], funcEnd(f)

		// Pass 1: lay out basic-block boundaries.
		blockStarts := g.blockScratch[:0]
		i := start
		for i < end {
			blockStarts = append(blockStarts, i)
			blockLen := 1
			for float64(blockLen) < meanBlock*6 && g.rng.Float64() > 1/(meanBlock+1) {
				blockLen++
			}
			i += uint32(blockLen) + 1 // +1 for the terminator slot
		}
		nb := len(blockStarts)
		blockEnd := func(b int) uint32 {
			if b == nb-1 {
				return end - 1
			}
			return blockStarts[b+1] - 1
		}

		// Pass 2: fill blocks and terminators.
		for b := 0; b < nb; b++ {
			for i := blockStarts[b]; i < blockEnd(b); i++ {
				fillStraightline(i)
			}
			term := blockEnd(b)
			si := &prog[term]
			si.dep1 = depDist()
			last := b == nb-1
			switch {
			case last && f == 0:
				// Main outer loop: strongly taken back edge.
				si.op = Branch
				si.bias = 0.98
				si.target = start
			case last:
				si.op = Ret
			case g.rng.Float64() < ph.CallFrac:
				si.op = Call
				callee := g.rng.Intn(numFuncs)
				if callee == f {
					callee = (callee + 1) % numFuncs
				}
				si.target = funcStart[callee]
			case g.rng.Float64() < 0.15:
				// Inner loop: branch back to this block's own start. High
				// trip counts keep loop back edges predictor-friendly, as
				// in real hot loops.
				si.op = Branch
				si.target = blockStarts[b]
				if g.rng.Float64() < ph.PredictableFrac {
					si.bias = 0.985 // ~66 iterations
				} else {
					si.bias = float32(0.3 + 0.4*g.rng.Float64())
				}
			default:
				// Forward skip of 1-4 blocks.
				skip := 1 + g.rng.Intn(4)
				tb := b + 1 + skip
				if tb >= nb {
					tb = nb - 1
				}
				si.op = Branch
				si.target = blockStarts[tb]
				if g.rng.Float64() < ph.PredictableFrac {
					if g.rng.Float64() < 0.8 {
						si.bias = 0.015 // almost always falls through
					} else {
						si.bias = 0.985 // dead-code skip
					}
				} else {
					si.bias = float32(0.3 + 0.4*g.rng.Float64())
				}
			}
		}
		g.blockScratch = blockStarts // keep the grown backing array
	}
	rt.prog = prog
	rt.pc = 0
	rt.callStack = rt.callStack[:0]
}

// Next fills out with the next dynamic instruction.
func (g *Generator) Next(out *Instr) {
	if g.phaseLeft <= 0 {
		g.phaseIdx = (g.phaseIdx + 1) % len(g.phases)
		g.phaseLeft = g.phaseLen(g.phaseIdx)
	}
	g.phaseLeft--
	g.generated++

	rt := &g.phases[g.phaseIdx]
	if rt.pc >= uint32(len(rt.prog)) {
		rt.pc = 0
	}
	si := &rt.prog[rt.pc]
	*out = Instr{
		PC:   rt.codeBase + uint64(rt.pc)*4,
		Op:   si.op,
		Dep1: si.dep1,
		Dep2: si.dep2,
	}
	switch si.op {
	case Branch:
		out.Taken = g.rng.Float64() < float64(si.bias)
		out.Target = rt.codeBase + uint64(si.target)*4
		if out.Taken {
			rt.pc = si.target
		} else {
			rt.pc++
		}
	case Call:
		if len(rt.callStack) < maxCallDepth {
			out.Taken = true
			out.Target = rt.codeBase + uint64(si.target)*4
			rt.callStack = append(rt.callStack, rt.pc+1)
			rt.pc = si.target
		} else {
			// Depth cap: degrade to a predictable not-taken branch.
			out.Op = Branch
			out.Taken = false
			out.Target = rt.codeBase + uint64(si.target)*4
			rt.pc++
		}
	case Ret:
		out.Taken = true
		if n := len(rt.callStack); n > 0 {
			ret := rt.callStack[n-1]
			rt.callStack = rt.callStack[:n-1]
			out.Target = rt.codeBase + uint64(ret)*4
			rt.pc = ret
		} else {
			// Underflow (phase was entered mid-function): restart the
			// main loop; the RAS will mispredict this one.
			out.Target = rt.codeBase
			rt.pc = 0
		}
	case Load, Store:
		out.Addr = g.nextAddr(rt, int(si.stream))
		rt.pc++
	default:
		rt.pc++
	}
}

func (g *Generator) nextAddr(rt *phaseRT, idx int) uint64 {
	st := &rt.streams[idx]
	switch st.spec.Kind {
	case Strided:
		st.pos = (st.pos + st.spec.StrideBytes) % st.spec.WorkingSet
		return st.base + st.pos
	default: // RandomInSet
		off := g.rng.Uint64() % st.spec.WorkingSet
		return st.base + (off &^ 7) // 8-byte aligned
	}
}
