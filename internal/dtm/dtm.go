// Package dtm implements DVS-based Dynamic Thermal Management for the
// DRM-vs-DTM comparison of Section 7.3.
//
// DTM enforces a thermal design point T_max: the processor must never
// exceed it. The oracular controller here mirrors the paper's: for each
// application it picks the highest DVS operating point whose peak on-chip
// temperature stays at or below T_max. Unlike DRM's T_qual, T_max is a
// hard instantaneous constraint — reliability cannot be banked over time
// against it (Section 4), which is precisely why neither technique
// subsumes the other.
package dtm

import (
	"context"
	"fmt"

	"ramp/internal/config"
	"ramp/internal/exp"
	"ramp/internal/obs"
	"ramp/internal/trace"
)

// Metric names the DTM oracle registers on an instrumented Env.
const (
	MetricSweepPoints = "dtm_sweep_points_total" // operating points queued by sweeps
	MetricSelects     = "dtm_selects_total"      // thermal-design-point selections
)

// Choice is the DTM controller's decision.
type Choice struct {
	Proc     config.Proc
	Result   exp.Result
	MaxTempK float64
	RelPerf  float64 // BIPS relative to the base machine
	// Feasible reports whether any operating point respected T_max; if
	// none did, the choice is the coolest one.
	Feasible bool
}

// Oracle is the once-per-application oracular DTM controller.
type Oracle struct {
	Env        *exp.Env
	FreqStepHz float64
}

// NewOracle returns a DTM oracle with the default DVS grid.
func NewOracle(env *exp.Env) *Oracle {
	return &Oracle{Env: env, FreqStepHz: 0.125e9}
}

// Sweep holds evaluated DVS operating points for one application,
// reusable across thermal design points.
type Sweep struct {
	App        trace.Profile
	Base       exp.Result
	Candidates []exp.Result
}

// Sweep evaluates the base machine and the full DVS ladder for app.
func (o *Oracle) Sweep(app trace.Profile) (*Sweep, error) {
	return o.SweepCtx(context.Background(), app)
}

// SweepCtx is Sweep with cancellation: once ctx is done, queued ladder
// evaluations never start and in-flight ones stop at their next epoch
// boundary.
func (o *Oracle) SweepCtx(ctx context.Context, app trace.Profile) (*Sweep, error) {
	qual := o.Env.Qualification(400) // DTM ignores reliability; any point works
	jobs := []exp.EvalJob{{App: app, Proc: o.Env.Base, Qual: qual}}
	for _, f := range config.DVSFrequencies(o.FreqStepHz) {
		jobs = append(jobs, exp.EvalJob{App: app, Proc: o.Env.Base.WithOperatingPoint(f), Qual: qual})
	}
	ctx, span := o.Env.Trace.Start(ctx, "dtm.sweep")
	if span.Enabled() {
		span.Annotate(obs.Str("app", app.Name), obs.Int("points", int64(len(jobs))))
	}
	defer span.End()
	o.Env.Metrics.Counter(MetricSweepPoints).Add(int64(len(jobs)))
	results, err := o.Env.EvaluateAllCtx(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return &Sweep{App: app, Base: results[0], Candidates: results[1:]}, nil
}

// Select picks the best-performing operating point whose peak
// temperature respects tmaxK. The scan tracks indices rather than
// copying each candidate Result (a large struct) into a Choice; a DVS
// ladder is consulted once per thermal design point across every
// figure regeneration.
func (s *Sweep) Select(tmaxK float64) (Choice, error) {
	if len(s.Candidates) == 0 {
		return Choice{}, fmt.Errorf("dtm: empty candidate set")
	}
	best, coolest := -1, 0
	var bestRel float64
	for i := range s.Candidates {
		r := &s.Candidates[i]
		if r.MaxTempK <= tmaxK {
			rel := r.BIPS / s.Base.BIPS
			if best < 0 || rel > bestRel {
				best, bestRel = i, rel
			}
		}
		if r.MaxTempK < s.Candidates[coolest].MaxTempK {
			coolest = i
		}
	}
	pick, feasible := coolest, false
	if best >= 0 {
		pick, feasible = best, true
	}
	r := s.Candidates[pick]
	return Choice{
		Proc:     r.Proc,
		Result:   r,
		MaxTempK: r.MaxTempK,
		RelPerf:  r.BIPS / s.Base.BIPS,
		Feasible: feasible,
	}, nil
}

// Best runs a sweep and selects for one thermal design point.
func (o *Oracle) Best(app trace.Profile, tmaxK float64) (Choice, error) {
	return o.BestCtx(context.Background(), app, tmaxK)
}

// BestCtx is Best with cancellation (Select itself is a pure in-memory
// scan; the sweep is the part worth aborting).
func (o *Oracle) BestCtx(ctx context.Context, app trace.Profile, tmaxK float64) (Choice, error) {
	s, err := o.SweepCtx(ctx, app)
	if err != nil {
		return Choice{}, err
	}
	o.Env.Metrics.Counter(MetricSelects).Inc()
	return s.Select(tmaxK)
}
