package dtm

import (
	"testing"

	"ramp/internal/config"
	"ramp/internal/exp"
	"ramp/internal/trace"
)

func quickOracle() *Oracle {
	o := NewOracle(exp.NewEnv(exp.QuickOptions()))
	o.FreqStepHz = 0.5e9
	return o
}

func TestSelectRespectsTmax(t *testing.T) {
	o := quickOracle()
	sweep, err := o.Sweep(trace.Bzip2())
	if err != nil {
		t.Fatal(err)
	}
	c, err := sweep.Select(355)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Feasible {
		t.Fatal("355K should be attainable for bzip2 at some frequency")
	}
	if c.MaxTempK > 355 {
		t.Fatalf("selected point peaks at %v K > 355 K", c.MaxTempK)
	}
}

func TestHigherTmaxAllowsHigherFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	sweep, err := o.Sweep(trace.Equake())
	if err != nil {
		t.Fatal(err)
	}
	prevF := 0.0
	for _, tmax := range []float64{335, 350, 365, 400} {
		c, err := sweep.Select(tmax)
		if err != nil {
			t.Fatal(err)
		}
		if c.Proc.FreqHz < prevF {
			t.Fatalf("frequency not monotone in Tmax at %vK", tmax)
		}
		prevF = c.Proc.FreqHz
	}
}

func TestImpossibleTmaxFallsBackToCoolest(t *testing.T) {
	o := quickOracle()
	sweep, err := o.Sweep(trace.MP3dec())
	if err != nil {
		t.Fatal(err)
	}
	c, err := sweep.Select(300) // below ambient: unattainable
	if err != nil {
		t.Fatal(err)
	}
	if c.Feasible {
		t.Fatal("sub-ambient Tmax reported feasible")
	}
	if c.Proc.FreqHz != config.MinFreqHz {
		t.Fatalf("fallback %v GHz, want the coolest %v", c.Proc.FreqHz/1e9, config.MinFreqHz/1e9)
	}
}

func TestGenerousTmaxUnlocksPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	sweep, err := o.Sweep(trace.Twolf())
	if err != nil {
		t.Fatal(err)
	}
	c, err := sweep.Select(450)
	if err != nil {
		t.Fatal(err)
	}
	if c.Proc.FreqHz != config.MaxFreqHz {
		t.Fatalf("unconstrained DTM should max the clock, got %v GHz", c.Proc.FreqHz/1e9)
	}
	if c.RelPerf <= 1 {
		t.Fatalf("max clock should beat base: %v", c.RelPerf)
	}
}

func TestSelectEmptySweepErrors(t *testing.T) {
	s := &Sweep{}
	if _, err := s.Select(360); err == nil {
		t.Fatal("empty sweep did not error")
	}
}

func TestBestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptation sweep; skipped in -short (race lane)")
	}
	o := quickOracle()
	c, err := o.Best(trace.Art(), 350)
	if err != nil {
		t.Fatal(err)
	}
	if c.Result.App != "art" {
		t.Fatalf("choice for %s", c.Result.App)
	}
}
