// Package ramp is a from-scratch reproduction of "The Case for Lifetime
// Reliability-Aware Microprocessors" (Srinivasan, Adve, Bose, Rivers —
// ISCA 2004): the RAMP architecture-level lifetime reliability model,
// Dynamic Reliability Management (DRM), and the full evaluation stack the
// paper runs on — an out-of-order timing simulator, a Wattch-style power
// model, a HotSpot-style RC thermal model, and a nine-application
// synthetic workload suite calibrated to the paper's Table 2.
//
// This package is the public facade: it re-exports the library's types
// and constructors so downstream users never import internal packages.
//
// Quick start:
//
//	env := ramp.NewEnv(ramp.DefaultOptions())
//	app, _ := ramp.AppByName("MP3dec")
//	res, _ := env.Evaluate(app, env.Base, env.Qualification(400))
//	fmt.Println(res.IPC, res.AvgW, res.FIT(), res.Assessment.MTTFYears)
//
// The experiment drivers that regenerate every table and figure of the
// paper live behind the cmd/ binaries (rampsim, ramptables, drmexplore,
// drmdtm) and the benchmarks in bench_test.go.
package ramp

import (
	"ramp/internal/config"
	"ramp/internal/core"
	"ramp/internal/drm"
	"ramp/internal/dtm"
	"ramp/internal/exp"
	"ramp/internal/floorplan"
	"ramp/internal/power"
	"ramp/internal/sensor"
	"ramp/internal/sim"
	"ramp/internal/thermal"
	"ramp/internal/trace"
)

// Processor and technology configuration (Table 1).
type (
	// Proc is a complete processor configuration: microarchitecture plus
	// operating point.
	Proc = config.Proc
	// Tech holds technology-level parameters (65 nm by default).
	Tech = config.Tech
	// CacheConfig describes one cache level.
	CacheConfig = config.CacheConfig
)

// Workloads (Table 2).
type (
	// Profile is a synthetic application workload.
	Profile = trace.Profile
	// Phase is one stationary phase of a Profile.
	Phase = trace.Phase
	// Mix is an instruction-class mix.
	Mix = trace.Mix
	// Stream describes a data reference stream.
	Stream = trace.Stream
	// Instr is one dynamic instruction.
	Instr = trace.Instr
	// Generator produces a Profile's dynamic instruction stream.
	Generator = trace.Generator
)

// Simulation substrate.
type (
	// Core is the cycle-level out-of-order processor simulator.
	Core = sim.Core
	// SimResult summarises one simulated epoch.
	SimResult = sim.Result
	// Floorplan is the die floorplan shared by the power, thermal and
	// reliability models.
	Floorplan = floorplan.Floorplan
	// Structure identifies one microarchitectural structure on the die.
	Structure = floorplan.Structure
	// PowerModel computes per-structure dynamic and leakage power.
	PowerModel = power.Model
	// PowerVector holds one value per structure.
	PowerVector = power.Vector
	// ThermalModel is the RC thermal network.
	ThermalModel = thermal.Model
	// ThermalState integrates the network through time.
	ThermalState = thermal.State
)

// RAMP — the paper's reliability model.
type (
	// ReliabilityParams holds the failure-mechanism constants.
	ReliabilityParams = core.Params
	// Mechanism identifies a wear-out failure mechanism (EM, SM, TDDB, TC).
	Mechanism = core.Mechanism
	// Conditions describe a structure's operating point.
	Conditions = core.Conditions
	// Qualification is a reliability qualification point (T_qual etc.).
	Qualification = core.Qualification
	// Budget is the per-structure, per-mechanism FIT allocation.
	Budget = core.Budget
	// Engine accumulates intervals into an application FIT value.
	Engine = core.Engine
	// Assessment is the engine's verdict for a run.
	Assessment = core.Assessment
	// Interval is one observation fed to the engine.
	Interval = core.Interval
	// LifetimeModel extends SOFR with Weibull wear-out distributions
	// (the paper's time-dependence future work, Sections 3.5/8).
	LifetimeModel = core.LifetimeModel
	// WeibullShapes holds per-mechanism Weibull shape parameters.
	WeibullShapes = core.WeibullShapes
	// WorkloadComponent is one application's share of a workload mix.
	WorkloadComponent = core.WorkloadComponent
	// TechNode is one CMOS generation of the scaling ladder.
	TechNode = config.TechNode
	// TempSensorSpec describes an on-die thermal sensor (hardware RAMP).
	TempSensorSpec = sensor.TempSensorSpec
	// TempArray is a bank of per-structure thermal sensors.
	TempArray = sensor.TempArray
	// CounterSpec describes activity-counter hardware.
	CounterSpec = sensor.CounterSpec
	// SensorHarness drives a RAMP engine through emulated sensors.
	SensorHarness = sensor.Harness
)

// Evaluation harness and management policies.
type (
	// Env bundles the models of one experimental setup.
	Env = exp.Env
	// Options controls simulation lengths and methodology knobs.
	Options = exp.Options
	// Result is the outcome of one (application, configuration) run.
	Result = exp.Result
	// EvalJob names one evaluation for batch runs.
	EvalJob = exp.EvalJob
	// DRMOracle explores adaptation spaces for dynamic reliability
	// management.
	DRMOracle = drm.Oracle
	// DRMSweep is an evaluated adaptation space, reusable across T_qual.
	DRMSweep = drm.Sweep
	// DRMChoice is the DRM oracle's decision.
	DRMChoice = drm.Choice
	// Adaptation selects a DRM adaptation space (Arch, DVS, ArchDVS).
	Adaptation = drm.Adaptation
	// Controller is the reactive interval-based DRM controller (the
	// paper's proposed future work: online control without an oracle).
	Controller = drm.Controller
	// ControlPolicy selects how the controller interprets the target
	// (Instantaneous or Banked).
	ControlPolicy = drm.ControlPolicy
	// ControlTrace records one reactively controlled run.
	ControlTrace = drm.ControlTrace
	// DTMOracle picks operating points under a thermal constraint.
	DTMOracle = dtm.Oracle
	// DTMSweep is an evaluated DVS ladder, reusable across T_max.
	DTMSweep = dtm.Sweep
	// DTMChoice is the DTM oracle's decision.
	DTMChoice = dtm.Choice
)

// Failure mechanisms.
const (
	EM   = core.EM
	SM   = core.SM
	TDDB = core.TDDB
	TC   = core.TC
)

// DRM adaptation spaces (Section 5).
const (
	Arch    = drm.Arch
	DVS     = drm.DVS
	ArchDVS = drm.ArchDVS
)

// Reactive control policies.
const (
	Instantaneous = drm.Instantaneous
	Banked        = drm.Banked
)

// StandardTargetFIT is the paper's qualification target: 4000 FIT
// (roughly a 30-year MTTF).
const StandardTargetFIT = core.StandardTargetFIT

// BaseProcessor returns the paper's Table 1 base non-adaptive processor.
func BaseProcessor() Proc { return config.Base() }

// Technology65nm returns the paper's 65 nm technology point.
func Technology65nm() Tech { return config.Tech65nm() }

// ArchConfigs returns the 18 microarchitectural adaptation
// configurations of Section 6.1.
func ArchConfigs() []Proc { return config.ArchConfigs() }

// DVSFrequencies returns the 2.5-5.0 GHz DVS grid with the given step.
func DVSFrequencies(stepHz float64) []float64 { return config.DVSFrequencies(stepHz) }

// VoltageForFreq returns the supply voltage the DVS curve requires for a
// frequency.
func VoltageForFreq(freqHz float64) float64 { return config.VoltageForFreq(freqHz) }

// Apps returns the paper's nine-application workload suite.
func Apps() []Profile { return trace.Apps() }

// AppByName returns a built-in application profile by name.
func AppByName(name string) (Profile, error) { return trace.AppByName(name) }

// NewGenerator builds a deterministic trace generator for a profile.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	return trace.NewGenerator(p, seed)
}

// NewCore builds a cycle-level simulator for a configuration and trace.
func NewCore(cfg Proc, gen *Generator) (*Core, error) { return sim.New(cfg, gen) }

// R10000Floorplan returns the paper's R10000-like 4.5mm x 4.5mm core
// floorplan.
func R10000Floorplan() *Floorplan { return floorplan.R10000Like() }

// DefaultReliabilityParams returns the paper's failure-model constants;
// ambientK is the thermal cycle's cold end (core.TCAmbientK = 293 K for
// the power-off cycle the paper models).
func DefaultReliabilityParams(ambientK float64) ReliabilityParams {
	return core.DefaultParams(ambientK)
}

// TCAmbientK is the default cold end of the modelled thermal cycle.
const TCAmbientK = core.TCAmbientK

// NewEngine builds a RAMP engine for a floorplan, parameter set and
// qualification point.
func NewEngine(fp *Floorplan, p ReliabilityParams, q Qualification) (*Engine, error) {
	return core.NewEngine(fp, p, q)
}

// NewLifetimeModel builds the time-dependent (Weibull wear-out) lifetime
// model from an assessment; use DefaultWeibullShapes for representative
// wear-out hazards.
func NewLifetimeModel(a Assessment, shapes WeibullShapes) (*LifetimeModel, error) {
	return core.NewLifetimeModel(a, shapes)
}

// DefaultWeibullShapes returns representative per-mechanism wear-out
// shape parameters.
func DefaultWeibullShapes() WeibullShapes { return core.DefaultShapes() }

// WorkloadFIT combines application FIT values by time-weighted averaging
// (Section 3.6).
func WorkloadFIT(components []WorkloadComponent) (float64, error) {
	return core.WorkloadFIT(components)
}

// TechLadder returns the 180/130/90/65 nm generation ladder used by the
// technology-scaling study.
func TechLadder() []TechNode { return config.TechLadder() }

// NewTempSensors builds a bank of emulated on-die thermal sensors.
func NewTempSensors(spec TempSensorSpec, seed int64) (*TempArray, error) {
	return sensor.NewTempArray(spec, seed)
}

// DefaultTempSensors returns a realistic thermal-sensor specification.
func DefaultTempSensors() TempSensorSpec { return sensor.DefaultTempSensors() }

// DefaultCounters returns 8-bit activity-counter readouts.
func DefaultCounters() CounterSpec { return sensor.DefaultCounters() }

// NewSensorHarness wires emulated sensors to a RAMP engine: the engine
// only ever sees sensed temperatures and quantised activities, as a
// hardware implementation of RAMP would (Section 3).
func NewSensorHarness(temps *TempArray, counters CounterSpec, engine *Engine) (*SensorHarness, error) {
	return sensor.NewHarness(temps, counters, engine)
}

// DefaultOptions returns full-length simulation options; QuickOptions
// returns short runs for tests and exploration.
func DefaultOptions() Options { return exp.DefaultOptions() }

// QuickOptions returns much shorter runs for tests and benchmarks.
func QuickOptions() Options { return exp.QuickOptions() }

// NewEnv builds the standard experimental environment (Table 1 base
// machine, R10000-like floorplan, default power budget and package).
func NewEnv(opts Options) *Env { return exp.NewEnv(opts) }

// NewDRMOracle returns the once-per-application oracular DRM controller
// of Section 5.
func NewDRMOracle(env *Env) *DRMOracle { return drm.NewOracle(env) }

// NewController returns the reactive interval-based DRM controller: it
// adapts the DVS operating point online from RAMP's running FIT
// estimate, with no oracle knowledge of the application.
func NewController(env *Env, qual Qualification, policy ControlPolicy) *Controller {
	return drm.NewController(env, qual, policy)
}

// NewDTMOracle returns the DVS-based dynamic thermal management
// controller used in the Section 7.3 comparison.
func NewDTMOracle(env *Env) *DTMOracle { return dtm.NewOracle(env) }

// DTMSweepFrom reuses a DRM DVS sweep's evaluations for DTM selection —
// the same candidates judged on peak temperature instead of FIT.
func DTMSweepFrom(s *DRMSweep) *DTMSweep {
	return &DTMSweep{App: s.App, Base: s.Base, Candidates: s.Candidates}
}
