// Command drmexplore regenerates the DRM evaluation figures:
// Figure 2 (ArchDVS DRM performance for the whole suite across
// qualification temperatures) and Figure 3 (Arch vs DVS vs ArchDVS for
// one application).
//
// Examples:
//
//	drmexplore -figure 2
//	drmexplore -figure 2 -apps MP3dec,twolf -quick
//	drmexplore -figure 3 -app bzip2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/obs"
	"ramp/internal/profiling"
	"ramp/internal/trace"
)

func main() {
	var (
		figure  = flag.Int("figure", 2, "figure to regenerate (2 or 3)")
		appList = flag.String("apps", "", "comma-separated application subset for figure 2 (default: all nine)")
		appName = flag.String("app", "bzip2", "application for figure 3")
		quick   = flag.Bool("quick", false, "use short simulation runs")
		step    = flag.Float64("step", 0.125e9, "DVS frequency grid step in Hz")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "drmexplore:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()
	defer prof.MustStart()()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)

	switch *figure {
	case 2:
		var apps []trace.Profile
		if *appList != "" {
			for _, name := range strings.Split(*appList, ",") {
				a, err := trace.AppByName(strings.TrimSpace(name))
				if err != nil {
					rt.Fatal("unknown application", err)
				}
				apps = append(apps, a)
			}
		}
		rows, err := figures.Figure2(env, apps, *step)
		if err != nil {
			rt.Fatal("figure 2 failed", err)
		}
		figures.WriteFigure2(os.Stdout, rows)
		fmt.Println("\nChosen configurations:")
		for _, r := range rows {
			fmt.Printf("  %-8s", r.App)
			for i := range r.ChosenArch {
				fmt.Printf("  %s", r.ChosenArch[i])
			}
			fmt.Println()
		}
	case 3:
		app, err := trace.AppByName(*appName)
		if err != nil {
			rt.Fatal("unknown application", err)
		}
		rows, err := figures.Figure3(env, app, *step)
		if err != nil {
			rt.Fatal("figure 3 failed", err)
		}
		figures.WriteFigure3(os.Stdout, app.Name, rows)
	default:
		rt.Fatal("unknown figure", fmt.Errorf("figure %d (want 2 or 3)", *figure))
	}
}
