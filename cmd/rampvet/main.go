// Command rampvet is RAMP's domain-specific static-analysis suite: it
// type-checks the module's packages with the standard library's go/ast,
// go/parser and go/types and applies the reliability-math analyzers in
// internal/lint:
//
//	floatcmp    ==/!= between floating-point expressions
//	unitsafety  sub-200 literals flowing into Kelvin-named slots
//	expguard    unguarded temperature denominators in math.Exp
//	seeddet     non-deterministic RNG construction outside tests
//	errdrop     statement-position calls silently dropping errors
//	obsguard    raw fmt.Fprint*(os.Stderr, ...) in internal packages
//
// Usage:
//
//	rampvet [-analyzers list] [-list] [packages]
//
// Packages default to ./... relative to the working directory, which
// must be inside the module. rampvet exits 0 if no diagnostics were
// reported, 1 if any were, and 2 on usage or load errors — the same
// contract as go vet, so it slots into scripts/ci.sh unchanged.
//
// rampvet is the static half of RAMP's correctness tooling; the runtime
// half is internal/check, enabled with `go test -tags rampdebug ./...`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ramp/internal/lint"
	"ramp/internal/obs"
)

func main() {
	listFlag := flag.Bool("list", false, "list available analyzers and exit")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rampvet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rampvet:", err)
		os.Exit(2)
	}
	defer rt.CloseOrLog()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *analyzersFlag != "" {
		analyzers, err = lint.ByName(strings.Split(*analyzersFlag, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(cwd, flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rampvet: %d issue(s) found\n", len(diags))
		os.Exit(1)
	}
}
