// Command rampvet is RAMP's domain-specific static-analysis suite: it
// type-checks the module's packages with the standard library's go/ast,
// go/parser and go/types and applies the reliability-math analyzers in
// internal/lint:
//
//	floatcmp    ==/!= between floating-point expressions
//	unitsafety  sub-200 literals flowing into Kelvin-named slots
//	expguard    unguarded temperature denominators in math.Exp
//	seeddet     non-deterministic RNG construction outside tests
//	errdrop     statement-position calls silently dropping errors
//	obsguard    raw fmt.Fprint*(os.Stderr, ...) in internal packages
//	detmap      map iteration order reaching output or FP accumulation
//	ctxflow     ctx-bearing functions severing cancellation from long-running work
//	hotalloc    allocation sources inside //ramp:hot functions
//	goroleak    goroutines with no ctx/channel/WaitGroup escape route
//
// The last four are flow-aware: they consult the package call graph and
// per-function control-flow graphs built by internal/lint/flow.
//
// Usage:
//
//	rampvet [flags] [packages]
//
// Packages default to ./... relative to the working directory, which
// must be inside the module. Findings are compared against the
// module-root .rampvet-baseline (override with -baseline): baselined
// findings are grandfathered and reported only in the exit-0 summary,
// fresh findings fail the run. -write-baseline regenerates the file
// from the current tree; -json emits machine-readable findings;
// -lint-stats prints per-analyzer counts. rampvet exits 0 if every finding is
// baselined, 1 if any fresh finding was reported, and 2 on usage or
// load errors — the same contract as go vet, so it slots into
// scripts/ci.sh unchanged.
//
// rampvet is the static half of RAMP's correctness tooling; the runtime
// half is internal/check, enabled with `go test -tags rampdebug ./...`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ramp/internal/lint"
	"ramp/internal/obs"
)

// jsonDiagnostic is the -json wire shape for one finding: the flat,
// stable subset of lint.Diagnostic that external tooling keys on.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fresh    bool   `json:"fresh"`
}

func main() {
	os.Exit(run())
}

func run() int {
	listFlag := flag.Bool("list", false, "list available analyzers and exit")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	disableFlag := flag.String("disable", "", "comma-separated analyzers to exclude from the run")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	statsFlag := flag.Bool("lint-stats", false, "print per-analyzer finding counts after the run (-stats is the obs metrics summary)")
	baselineFlag := flag.String("baseline", "", "baseline file grandfathering known findings (default: <module root>/"+lint.BaselineName+")")
	writeBaselineFlag := flag.Bool("write-baseline", false, "rewrite the baseline from the current tree's findings and exit")
	tagsFlag := flag.String("tags", "", "comma-separated extra build tags (e.g. rampdebug)")
	workersFlag := flag.Int("workers", 0, "concurrent package analyses (default: GOMAXPROCS)")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rampvet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rampvet:", err)
		return 2
	}
	defer rt.CloseOrLog()

	if *listFlag {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *analyzersFlag != "" {
		analyzers, err = lint.ByName(strings.Split(*analyzersFlag, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if *disableFlag != "" {
		// Validate the names first so a typo fails loudly instead of
		// silently disabling nothing.
		if _, err := lint.ByName(strings.Split(*disableFlag, ",")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		disabled := map[string]bool{}
		for _, name := range strings.Split(*disableFlag, ",") {
			disabled[strings.TrimSpace(name)] = true
		}
		kept := analyzers[:0:0]
		for _, a := range analyzers {
			if !disabled[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "rampvet: every analyzer is disabled")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	baselinePath := *baselineFlag
	if baselinePath == "" {
		baselinePath = filepath.Join(root, lint.BaselineName)
	}

	cfg := lint.Config{Workers: *workersFlag}
	if *tagsFlag != "" {
		cfg.Tags = strings.Split(*tagsFlag, ",")
	}
	diags, err := lint.RunConfigured(cfg, cwd, flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	if *writeBaselineFlag {
		if err := lint.WriteBaseline(baselinePath, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "rampvet: wrote %d finding(s) to %s\n", len(diags), baselinePath)
		return 0
	}

	base, err := lint.LoadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fresh, grandfathered := base.Filter(root, diags)

	if *jsonFlag {
		freshSet := map[lint.Diagnostic]bool{}
		for _, d := range fresh {
			freshSet[d] = true
		}
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Fresh:    freshSet[d],
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		for _, d := range fresh {
			fmt.Println(d)
		}
	}

	if *statsFlag {
		for _, s := range lint.Stats(analyzers, diags) {
			fmt.Fprintf(os.Stderr, "%-12s %d\n", s.Name, s.Count)
		}
	}

	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "rampvet: %d fresh issue(s) found (%d grandfathered by %s)\n",
			len(fresh), grandfathered, baselinePath)
		return 1
	}
	if grandfathered > 0 {
		fmt.Fprintf(os.Stderr, "rampvet: clean (%d grandfathered finding(s) in %s)\n", grandfathered, baselinePath)
	}
	return 0
}
