// Command rampsim runs one application on one processor configuration
// through the full pipeline (timing simulation, power, thermal, RAMP)
// and reports performance, power, temperature and lifetime reliability.
//
// Examples:
//
//	rampsim -app MP3dec
//	rampsim -app twolf -freq 4.5e9 -tqual 370
//	rampsim -app bzip2 -window 32 -alus 2 -fpus 1 -detail
package main

import (
	"flag"
	"fmt"
	"os"

	"ramp/internal/core"
	"ramp/internal/exp"
	"ramp/internal/floorplan"
	"ramp/internal/obs"
	"ramp/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "MP3dec", "application (MPGdec MP3dec H263enc bzip2 gzip twolf art equake ammp)")
		freqHz  = flag.Float64("freq", 4e9, "clock frequency in Hz (voltage follows the DVS curve)")
		tqual   = flag.Float64("tqual", 400, "qualification temperature T_qual in K")
		window  = flag.Int("window", 0, "instruction window size override (0 = base 128)")
		alus    = flag.Int("alus", 0, "integer ALU count override (0 = base 6)")
		fpus    = flag.Int("fpus", 0, "FPU count override (0 = base 4)")
		warm    = flag.Uint64("warmup", 0, "warmup instructions (0 = default)")
		epochN  = flag.Int("epochs", 0, "measured epochs (0 = default)")
		epochI  = flag.Uint64("epoch-instrs", 0, "instructions per epoch (0 = default)")
		seed    = flag.Int64("seed", 1, "trace generator seed")
		detail  = flag.Bool("detail", false, "print per-structure FIT and temperature breakdown")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rampsim:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()

	opts := exp.DefaultOptions()
	opts.Seed = *seed
	if *warm > 0 {
		opts.WarmupInstrs = *warm
	}
	if *epochN > 0 {
		opts.Epochs = *epochN
	}
	if *epochI > 0 {
		opts.EpochInstrs = *epochI
	}
	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)

	app, err := trace.AppByName(*appName)
	if err != nil {
		rt.Fatal("unknown application", err)
	}
	proc := env.Base
	if *window > 0 {
		proc.WindowSize = *window
	}
	if *alus > 0 {
		proc.IntALUs = *alus
	}
	if *fpus > 0 {
		proc.FPUs = *fpus
	}
	if *freqHz > 0 {
		proc = proc.WithOperatingPoint(*freqHz)
	}

	r, err := env.Evaluate(app, proc, env.Qualification(*tqual))
	if err != nil {
		rt.Fatal("evaluation failed", err)
	}

	fmt.Printf("app          %s (%s)\n", app.Name, app.Class)
	fmt.Printf("config       %s: window=%d ALUs=%d FPUs=%d @ %.2f GHz, %.3f V\n",
		proc.Name, proc.WindowSize, proc.IntALUs, proc.FPUs, proc.FreqHz/1e9, proc.VddV)
	fmt.Printf("performance  IPC=%.3f  BIPS=%.3f\n", r.IPC, r.BIPS)
	fmt.Printf("power        %.1f W average\n", r.AvgW)
	fmt.Printf("temperature  max %.1f K, die avg %.1f K, sink %.1f K\n", r.MaxTempK, r.AvgTempK, r.SinkK)
	a := r.Assessment
	fmt.Printf("reliability  FIT=%.0f (target %d at Tqual=%.0fK)  MTTF=%.1f years\n",
		a.TotalFIT, core.StandardTargetFIT, *tqual, a.MTTFYears)
	bm := a.ByMechanism()
	fmt.Printf("             EM=%.0f  SM=%.0f  TDDB=%.0f  TC=%.0f FIT\n",
		bm[core.EM], bm[core.SM], bm[core.TDDB], bm[core.TC])
	if a.TotalFIT <= core.StandardTargetFIT {
		fmt.Printf("             meets the lifetime target\n")
	} else {
		fmt.Printf("             EXCEEDS the lifetime target (DRM would throttle)\n")
	}
	if *detail {
		fmt.Printf("\n%-8s %8s %8s %8s %8s %8s %8s\n", "struct", "T(K)", "EM", "SM", "TDDB", "TC", "total")
		bs := a.ByStructure()
		for s := floorplan.Structure(0); s < floorplan.NumStructures; s++ {
			fmt.Printf("%-8s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n",
				s, a.AvgTempK[s], a.FIT[s][core.EM], a.FIT[s][core.SM],
				a.FIT[s][core.TDDB], a.FIT[s][core.TC], bs[s])
		}
	}
}
