// Command tracecheck validates a Chrome trace_event JSON file produced
// by the -trace flag of the RAMP binaries (or by hand): it checks the
// schema (known phases, non-empty names, non-negative timestamps and
// durations), file-order timestamp monotonicity, B/E bracket matching
// and X-event nesting per (pid, tid) track — the invariants Perfetto
// and chrome://tracing rely on to render a trace sensibly.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
//
// Exits 0 when every file validates, 1 otherwise — scripts/ci.sh's
// observability lane runs it on a freshly captured trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"ramp/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracecheck trace.json [more.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			failed = true
			continue
		}
		n, err := obs.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("tracecheck: %s: ok (%d events)\n", path, n)
	}
	if failed {
		os.Exit(1)
	}
}
