// Command scaling runs the technology-scaling study behind Section 1.2
// (and the paper's companion DSN 2004 work): the base microarchitecture
// ported across the 180/130/90/65 nm generations with a fixed cooling
// solution and qualification methodology, reported per core and per
// constant-area die.
package main

import (
	"flag"
	"fmt"
	"os"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "use short simulation runs")
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	rows, err := figures.ScalingStudyObs(opts, rt.Tracer, rt.Metrics)
	if err != nil {
		rt.Fatal("scaling study failed", err)
	}
	figures.WriteScaling(os.Stdout, rows)
}
