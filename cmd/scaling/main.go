// Command scaling runs the technology-scaling study behind Section 1.2
// (and the paper's companion DSN 2004 work): the base microarchitecture
// ported across the 180/130/90/65 nm generations with a fixed cooling
// solution and qualification methodology, reported per core and per
// constant-area die.
package main

import (
	"flag"
	"fmt"
	"os"

	"ramp/internal/exp"
	"ramp/internal/figures"
)

func main() {
	quick := flag.Bool("quick", false, "use short simulation runs")
	flag.Parse()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	rows, err := figures.ScalingStudy(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	figures.WriteScaling(os.Stdout, rows)
}
