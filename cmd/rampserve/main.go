// Command rampserve runs the reliability-evaluation service: the
// experiment pipeline behind every table and figure, exposed as a
// long-running HTTP API with a shared result cache, bounded concurrency
// and graceful shutdown.
//
// Examples:
//
//	rampserve                       # serve on :8080 with full-length runs
//	rampserve -addr :9000 -quick    # short simulation runs (tests/demos)
//
//	curl localhost:8080/v1/healthz
//	curl -X POST localhost:8080/v1/evaluate \
//	     -d '{"app":"twolf","freq_hz":4.5e9,"tqual_k":370}'
//	curl -X POST localhost:8080/v1/sweep \
//	     -d '{"app":"bzip2","adaptation":"DVS","tquals_k":[400,370,345]}'
//	curl localhost:8080/metrics
//
// SIGTERM or SIGINT stops accepting new requests, finishes in-flight
// evaluations (up to -drain), then exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ramp/internal/exp"
	"ramp/internal/obs"
	"ramp/internal/serve"
)

func main() {
	cfg := serve.DefaultConfig()
	var (
		addr    = flag.String("addr", cfg.Addr, "listen address (host:port; port 0 picks a free port)")
		quick   = flag.Bool("quick", false, "use short simulation runs")
		workers = flag.Int("workers", cfg.Workers, "max concurrently running evaluations")
		queue   = flag.Int("queue", cfg.QueueDepth, "max queued jobs beyond the workers (overflow sheds 429)")
		timeout = flag.Duration("timeout", cfg.RequestTimeout, "per-request evaluation deadline (0 = none)")
		drain   = flag.Duration("drain", cfg.DrainTimeout, "graceful-shutdown drain window")
		step    = flag.Float64("step", cfg.FreqStepHz, "default DVS frequency grid step in Hz for sweeps")
		pprofOn = flag.Bool("pprof", true, "mount /debug/pprof/ handlers")
		seed    = flag.Int64("seed", 1, "trace generator seed")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rampserve:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed

	cfg.Addr = *addr
	cfg.Workers = *workers
	cfg.QueueDepth = *queue
	cfg.RequestTimeout = *timeout
	cfg.DrainTimeout = *drain
	cfg.FreqStepHz = *step
	cfg.EnablePprof = *pprofOn
	cfg.Log = rt.Log

	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)
	srv := serve.New(env, cfg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		rt.Fatal("listen failed", err)
	}
	// The smoke test (and any supervisor binding port 0) parses this line.
	fmt.Printf("rampserve: listening on %s (workers=%d queue=%d timeout=%s)\n",
		ln.Addr(), cfg.Workers, cfg.QueueDepth, fmtTimeout(cfg.RequestTimeout))

	if err := srv.Serve(ctx, ln); err != nil {
		rt.Fatal("serve failed", err)
	}
	fmt.Println("rampserve: drained, bye")
}

func fmtTimeout(d time.Duration) string {
	if d <= 0 {
		return "none"
	}
	return d.String()
}
