// Command ramptables regenerates the paper's tables and its motivating
// figure: Table 1 (base processor), Table 2 (per-application IPC and
// power) and Figure 1 (FIT vs qualification cost).
//
// Examples:
//
//	ramptables                 # everything
//	ramptables -table 2        # just Table 2
//	ramptables -figure 1       # just Figure 1
package main

import (
	"flag"
	"fmt"
	"os"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/profiling"
)

func main() {
	var (
		table  = flag.Int("table", 0, "print only this table (1 or 2)")
		figure = flag.Int("figure", 0, "print only this figure (1)")
		quick  = flag.Bool("quick", false, "use short simulation runs")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	defer prof.MustStart()()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	env := exp.NewEnv(opts)

	all := *table == 0 && *figure == 0
	if all || *table == 1 {
		figures.NewTable1(env).Write(os.Stdout)
		fmt.Println()
	}
	if all || *table == 2 {
		rows, err := figures.Table2(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		figures.WriteTable2(os.Stdout, rows)
		fmt.Println()
	}
	if all || *figure == 1 {
		rows, err := figures.Figure1(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		figures.WriteFigure1(os.Stdout, rows)
	}
}
