// Command ramptables regenerates the paper's tables and its motivating
// figure: Table 1 (base processor), Table 2 (per-application IPC and
// power) and Figure 1 (FIT vs qualification cost).
//
// Examples:
//
//	ramptables                 # everything
//	ramptables -table 2        # just Table 2
//	ramptables -figure 1       # just Figure 1
//	ramptables -quick -trace t.json -stats   # observability demo
package main

import (
	"flag"
	"fmt"
	"os"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/obs"
	"ramp/internal/profiling"
)

func main() {
	var (
		table  = flag.Int("table", 0, "print only this table (1 or 2)")
		figure = flag.Int("figure", 0, "print only this figure (1)")
		quick  = flag.Bool("quick", false, "use short simulation runs")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ramptables:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()
	defer prof.MustStart()()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)

	all := *table == 0 && *figure == 0
	if all || *table == 1 {
		figures.NewTable1(env).Write(os.Stdout)
		fmt.Println()
	}
	if all || *table == 2 {
		rows, err := figures.Table2(env)
		if err != nil {
			rt.Fatal("table 2 failed", err)
		}
		figures.WriteTable2(os.Stdout, rows)
		fmt.Println()
	}
	if all || *figure == 1 {
		rows, err := figures.Figure1(env)
		if err != nil {
			rt.Fatal("figure 1 failed", err)
		}
		figures.WriteFigure1(os.Stdout, rows)
	}
}
