// Command fleetmc simulates a shipped fleet of processors to first
// failure: it evaluates one (application, configuration) through the
// full pipeline, requalifies the RAMP assessment at each requested
// T_qual (one DRM policy per temperature), then runs the deterministic
// fleet Monte Carlo engine over millions of virtual chips with per-chip
// process variation, reporting survival curves, 7/11-year warranty
// return rates and failure-mechanism mix per (policy, scenario).
//
// Examples:
//
//	fleetmc -app MP3dec -quick
//	fleetmc -app twolf -chips 2000000 -tquals 400,370,345
//	fleetmc -app gzip -duty 0.8 -spares 2 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ramp/internal/exp"
	"ramp/internal/fleet"
	"ramp/internal/obs"
	"ramp/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "MP3dec", "application (MPGdec MP3dec H263enc bzip2 gzip twolf art equake ammp)")
		chips   = flag.Int("chips", 2_000_000, "fleet population size")
		seed    = flag.Uint64("seed", 1, "Monte Carlo seed (per-chip streams derive from it)")
		tquals  = flag.String("tquals", "400", "comma-separated qualification temperatures in K (one policy each)")
		freqHz  = flag.Float64("freq", 4e9, "clock frequency in Hz (voltage follows the DVS curve)")
		duty    = flag.Float64("duty", 1, "stress duty cycle; < 1 adds a checkpointing scenario")
		spares  = flag.Int("spares", 0, "in-field spare units; > 0 adds a repair scenario")
		horizon = flag.Float64("horizon", 30, "survival-curve horizon in years")
		bins    = flag.Int("bins", 60, "survival-curve bins across the horizon")
		workers = flag.Int("workers", 0, "shard workers (0 = GOMAXPROCS; results never depend on it)")
		quick   = flag.Bool("quick", false, "quick mode: 1M chips and the short simulation options")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetmc:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
		if !flagSet("chips") {
			*chips = 1_000_000
		}
	}
	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)

	app, err := trace.AppByName(*appName)
	if err != nil {
		rt.Fatal("unknown application", err)
	}
	proc := env.Base
	if *freqHz > 0 {
		proc = proc.WithOperatingPoint(*freqHz)
	}

	tqs, err := parseTquals(*tquals)
	if err != nil {
		rt.Fatal("bad -tquals", err)
	}

	// One pipeline evaluation feeds every policy; per-T_qual assessments
	// are cheap requalifications of the same simulated run.
	res, err := env.Evaluate(app, proc, env.Qualification(tqs[0]))
	if err != nil {
		rt.Fatal("evaluation failed", err)
	}
	var policies []fleet.Policy
	for _, tq := range tqs {
		a, err := env.Requalify(res, env.Qualification(tq))
		if err != nil {
			rt.Fatal("requalification failed", err)
		}
		policies = append(policies, fleet.Policy{Name: fmt.Sprintf("tq%gK", tq), Assessment: a})
	}

	cfg := fleet.DefaultConfig(*chips, *seed)
	cfg.Workers = *workers
	cfg.HorizonYears = *horizon
	cfg.Bins = *bins
	if *duty < 1 {
		cfg.Scenarios = append(cfg.Scenarios, fleet.Scenario{Name: "checkpoint", Duty: *duty})
	}
	if *spares > 0 {
		cfg.Scenarios = append(cfg.Scenarios, fleet.Scenario{Name: "repair", Duty: 1, Spares: *spares})
	}
	if *duty < 1 && *spares > 0 {
		cfg.Scenarios = append(cfg.Scenarios, fleet.Scenario{Name: "checkpoint+repair", Duty: *duty, Spares: *spares})
	}

	eng, err := fleet.New(cfg, policies)
	if err != nil {
		rt.Fatal("fleet configuration rejected", err)
	}
	eng.Instrument(rt.Tracer, rt.Metrics)

	start := time.Now()
	rep, err := eng.Run(context.Background())
	if err != nil {
		rt.Fatal("fleet run failed", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("app %s (%s), config %s\n", app.Name, app.Class, proc.Name)
	rep.WriteTable(os.Stdout)
	fmt.Printf("simulated %d chips in %.2fs (%.1f Mchips/s)\n",
		*chips, elapsed.Seconds(), float64(*chips)/elapsed.Seconds()/1e6)
}

// parseTquals parses the comma-separated -tquals list.
func parseTquals(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("tqual %q: %w", f, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no qualification temperatures in %q", s)
	}
	return out, nil
}

// flagSet reports whether the named flag was set explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
