// Command drmdtm regenerates Figure 4: for every application and every
// temperature point, the DVS frequency chosen by DRM (interpreting the
// temperature as T_qual) versus DTM (interpreting it as T_max), plus the
// cross-violation analysis showing that neither policy subsumes the
// other (Section 7.3).
//
// Examples:
//
//	drmdtm
//	drmdtm -apps MP3dec,twolf -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/obs"
	"ramp/internal/profiling"
	"ramp/internal/trace"
)

func main() {
	var (
		appList = flag.String("apps", "", "comma-separated application subset (default: all nine)")
		quick   = flag.Bool("quick", false, "use short simulation runs")
		step    = flag.Float64("step", 0.125e9, "DVS frequency grid step in Hz")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "drmdtm:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()
	defer prof.MustStart()()

	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)

	var apps []trace.Profile
	if *appList != "" {
		for _, name := range strings.Split(*appList, ",") {
			a, err := trace.AppByName(strings.TrimSpace(name))
			if err != nil {
				rt.Fatal("unknown application", err)
			}
			apps = append(apps, a)
		}
	}
	rows, err := figures.Figure4(env, apps, *step)
	if err != nil {
		rt.Fatal("figure 4 failed", err)
	}
	figures.WriteFigure4(os.Stdout, rows)
}
