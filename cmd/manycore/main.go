// Command manycore sweeps die sizes and scheduling policies: it tiles
// the R10000-like core into N-core dies, schedules the nine-application
// suite under the static, coolest-core and wear-leveling policies, and
// prints the lifetime-at-iso-performance comparison against the paper's
// single-core DRM baseline.
//
// Examples:
//
//	manycore
//	manycore -cores 4,16 -tqual 370
//	manycore -cores 2 -quick          # short run, used by smoke.sh/CI
//	manycore -cores 8 -trace out.json # per-epoch scheduling spans
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/obs"
)

func main() {
	var (
		coresCSV = flag.String("cores", "1,2,4,8,16", "comma-separated die sizes to sweep")
		tqual    = flag.Float64("tqual", 400, "qualification temperature T_qual in K")
		epochs   = flag.Int("epochs", 0, "scheduling epochs per run (0 = twice the evaluation epochs)")
		seed     = flag.Int64("seed", 1, "trace generator seed")
		quick    = flag.Bool("quick", false, "short evaluation runs (smoke tests)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	rt, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, "manycore:", err)
		os.Exit(1)
	}
	defer rt.CloseOrLog()

	ns, err := parseCores(*coresCSV)
	if err != nil {
		rt.Fatal("bad -cores", err)
	}
	opts := exp.DefaultOptions()
	if *quick {
		opts = exp.QuickOptions()
	}
	opts.Seed = *seed
	env := exp.NewEnv(opts).Instrument(rt.Tracer, rt.Metrics)

	table, err := sweep(env, ns, *tqual, *epochs)
	if err != nil {
		rt.Fatal("sweep failed", err)
	}
	table.Write(os.Stdout)
}

// sweep runs the standard figures driver, optionally overriding the
// scheduling-epoch count per die size.
func sweep(env *exp.Env, ns []int, tqualK float64, epochs int) (figures.ManycoreTable, error) {
	if epochs <= 0 {
		return figures.ManycoreSweep(env, ns, tqualK)
	}
	return figures.ManycoreSweepEpochs(env, ns, tqualK, epochs)
}

// parseCores parses the -cores list.
func parseCores(csv string) ([]int, error) {
	parts := strings.Split(csv, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad core count %q", p)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("empty core list")
	}
	return ns, nil
}
