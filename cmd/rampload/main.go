// Command rampload drives deterministic load against a running
// rampserve and gates the result on declarative SLOs — the closed loop
// that turns the serving layer's telemetry into a CI verdict.
//
// Examples:
//
//	rampload -url http://127.0.0.1:8080 -n 100000 -profile constant:5000
//	rampload -profile 'spike:2000,20000@5s+3s' -ndjson run.ndjson
//	rampload -plan -seed 7 -n 1000            # deterministic dry render
//	rampload -slo objectives.json -out LOAD_1.json
//
// Exit codes: 0 success, 1 usage or runtime error, 2 client/server
// count reconciliation mismatch, 3 SLO breach.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ramp/internal/load"
	"ramp/internal/obs"
	"ramp/internal/slo"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "rampserve base URL")
		n        = flag.Int("n", 10000, "total arrivals to schedule")
		profile  = flag.String("profile", "constant:2000", "arrival profile: constant:R | poisson:R | step:R1,R2@T | spike:R1,R2@T+D")
		mixFlag  = flag.String("mix", "evaluate=8,sweep=1,fleet=1", "route mix weights")
		seed     = flag.Int64("seed", 1, "schedule + sampler seed")
		inflight = flag.Int("inflight", 256, "open-loop in-flight budget (arrivals beyond it are dropped)")
		closed   = flag.Bool("closed", false, "closed-loop mode: -workers goroutines back to back (saturation probing)")
		workers  = flag.Int("workers", 32, "closed-loop concurrency")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-request client timeout")
		window   = flag.Duration("window", time.Second, "telemetry window length (<0 disables windows)")
		ndjson   = flag.String("ndjson", "", "write per-window NDJSON frames to this file (- for stdout)")
		out      = flag.String("out", "", "write the full run report (LOAD_<n>.json shape) to this file")
		sloPath  = flag.String("slo", "", "gate on this JSON objectives file (exit 3 on breach)")
		sloDef   = flag.Bool("slo-default", false, "gate on the built-in objectives (p99≤2s, shed≤5%, errors≤1%)")
		plan     = flag.Bool("plan", false, "print the deterministic run plan and exit (no server needed)")
	)
	obsFlags := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "rampload:", err)
		return 1
	}

	prof, err := load.ParseProfile(*profile)
	if err != nil {
		return fail(err)
	}
	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		return fail(err)
	}

	if *plan {
		if err := load.WritePlan(os.Stdout, *seed, *n, prof, mix); err != nil {
			return fail(err)
		}
		return 0
	}

	var objectives []slo.Objective
	if *sloPath != "" {
		data, err := os.ReadFile(*sloPath)
		if err != nil {
			return fail(err)
		}
		if objectives, err = slo.Parse(data); err != nil {
			return fail(err)
		}
	} else if *sloDef {
		objectives = load.DefaultObjectives()
	}

	rt, err := obsFlags.Setup()
	if err != nil {
		return fail(err)
	}
	defer rt.CloseOrLog()

	var ndjsonW io.Writer
	if *ndjson == "-" {
		ndjsonW = os.Stdout
	} else if *ndjson != "" {
		f, err := os.Create(*ndjson)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		ndjsonW = f
	}

	runner, err := load.New(load.Config{
		BaseURL:     *url,
		Seed:        *seed,
		Requests:    *n,
		Profile:     prof,
		Mix:         mix,
		MaxInflight: *inflight,
		Closed:      *closed,
		Workers:     *workers,
		Timeout:     *timeout,
		WindowEvery: *window,
		NDJSON:      ndjsonW,
		Log:         rt.Log,
		Registry:    rt.Metrics,
	})
	if err != nil {
		return fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	rep, err := runner.Run(ctx)
	if err != nil {
		return fail(err)
	}

	if len(objectives) > 0 {
		results, err := slo.Evaluate(objectives, runner.Snapshot(), runner.Deltas())
		if err != nil {
			return fail(err)
		}
		rep.SLO = results
	}

	rep.WriteSummary(os.Stdout)

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return fail(err)
		}
	}

	switch {
	case slo.Breached(rep.SLO):
		fmt.Fprintln(os.Stderr, "rampload: SLO breach")
		return 3
	case rep.Reconcile.Enabled && !rep.Reconcile.Pass:
		fmt.Fprintln(os.Stderr, "rampload: client/server count reconciliation mismatch")
		return 2
	}
	return 0
}
