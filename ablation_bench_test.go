// Ablation benchmarks for the methodology choices DESIGN.md calls out:
// the two-pass heat-sink initialisation, the leakage-temperature
// feedback, the DVS grid granularity, and reactive-control policies.
// Each reports the quantity the ablation changes via b.ReportMetric, so
// `go test -bench=Ablation -benchmem` doubles as a sensitivity study.
package ramp_test

import (
	"testing"

	"ramp"
	"ramp/internal/drm"
	"ramp/internal/exp"
	"ramp/internal/trace"
)

// BenchmarkAblationSinkPasses compares the paper's two-pass heat-sink
// initialisation (Section 6.3) against a single pass: one pass leaves
// the sink at its initial guess and misestimates FIT.
func BenchmarkAblationSinkPasses(b *testing.B) {
	run := func(passes int) float64 {
		opts := exp.QuickOptions()
		opts.SinkPasses = passes
		env := exp.NewEnv(opts)
		r, err := env.Evaluate(trace.MP3dec(), env.Base, env.Qualification(400))
		if err != nil {
			b.Fatal(err)
		}
		return r.FIT()
	}
	var one, two float64
	for i := 0; i < b.N; i++ {
		one = run(1)
		two = run(2)
	}
	b.ReportMetric(one, "FIT-1pass")
	b.ReportMetric(two, "FIT-2pass")
}

// BenchmarkAblationLeakageFeedback quantifies the leakage-temperature
// loop: without iteration (leakage computed at the first guess), power
// and FIT are underestimated.
func BenchmarkAblationLeakageFeedback(b *testing.B) {
	run := func(iters int) (float64, float64) {
		opts := exp.QuickOptions()
		opts.LeakageIters = iters
		env := exp.NewEnv(opts)
		r, err := env.Evaluate(trace.MP3dec(), env.Base, env.Qualification(400))
		if err != nil {
			b.Fatal(err)
		}
		return r.AvgW, r.FIT()
	}
	var w1, f1, w4, f4 float64
	for i := 0; i < b.N; i++ {
		w1, f1 = run(1)
		w4, f4 = run(4)
	}
	b.ReportMetric(w1, "W-1iter")
	b.ReportMetric(w4, "W-4iter")
	b.ReportMetric(f1, "FIT-1iter")
	b.ReportMetric(f4, "FIT-4iter")
}

// BenchmarkAblationDVSGranularity compares the oracle's harvested
// performance on coarse vs fine DVS grids at T_qual = 400 K.
func BenchmarkAblationDVSGranularity(b *testing.B) {
	env := exp.NewEnv(exp.QuickOptions())
	qual := env.Qualification(400)
	run := func(step float64) float64 {
		o := drm.NewOracle(env)
		o.FreqStepHz = step
		sweep, err := o.Sweep(trace.Twolf(), drm.DVS)
		if err != nil {
			b.Fatal(err)
		}
		c, err := sweep.Select(env, qual)
		if err != nil {
			b.Fatal(err)
		}
		return c.RelPerf
	}
	var coarse, fine float64
	for i := 0; i < b.N; i++ {
		coarse = run(0.5e9)
		fine = run(0.125e9)
	}
	b.ReportMetric(coarse, "relperf-0.5GHz-grid")
	b.ReportMetric(fine, "relperf-0.125GHz-grid")
}

// BenchmarkAblationControlPolicy compares the reactive controller's two
// policies on a phased workload (Section 4's banking argument).
func BenchmarkAblationControlPolicy(b *testing.B) {
	env := exp.NewEnv(exp.QuickOptions())
	qual := env.Qualification(360)
	run := func(p ramp.ControlPolicy) (float64, float64) {
		ctrl := ramp.NewController(env, qual, p)
		tr, err := ctrl.Run(trace.MPGdec(), 20)
		if err != nil {
			b.Fatal(err)
		}
		return tr.BIPS, tr.FinalFIT
	}
	var bipsI, fitI, bipsB, fitB float64
	for i := 0; i < b.N; i++ {
		bipsI, fitI = run(ramp.Instantaneous)
		bipsB, fitB = run(ramp.Banked)
	}
	b.ReportMetric(bipsI, "BIPS-instantaneous")
	b.ReportMetric(bipsB, "BIPS-banked")
	b.ReportMetric(fitI, "FIT-instantaneous")
	b.ReportMetric(fitB, "FIT-banked")
}

// BenchmarkAblationGatingFITCredit isolates the Section 6.1 rule that
// powered-down area contributes no EM/TDDB failures: the same downsized
// configuration with and without the credit.
func BenchmarkAblationGatingFITCredit(b *testing.B) {
	env := exp.NewEnv(exp.QuickOptions())
	qual := env.Qualification(370)
	small := env.Base
	small.WindowSize = 32
	small.IntALUs = 2
	small.FPUs = 1
	small.Name = "w32-a2-f1"

	var with, without float64
	for i := 0; i < b.N; i++ {
		r, err := env.Evaluate(trace.Bzip2(), small, qual)
		if err != nil {
			b.Fatal(err)
		}
		with = r.FIT()
		// Without the credit: re-run RAMP pretending everything stayed
		// powered (recompute with the base machine's on-fractions by
		// evaluating the result rows as if proc were base-sized).
		fullOn := r
		fullOn.Proc.WindowSize = env.Base.WindowSize
		fullOn.Proc.IntALUs = env.Base.IntALUs
		fullOn.Proc.FPUs = env.Base.FPUs
		a, err := env.Requalify(fullOn, qual)
		if err != nil {
			b.Fatal(err)
		}
		without = a.TotalFIT
	}
	b.ReportMetric(with, "FIT-with-gating-credit")
	b.ReportMetric(without, "FIT-without-credit")
}
