module ramp

go 1.22
