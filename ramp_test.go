package ramp_test

import (
	"testing"

	"ramp"
)

// The facade test exercises the library exactly as a downstream user
// would: only through package ramp.

func TestFacadeQuickstartFlow(t *testing.T) {
	env := ramp.NewEnv(ramp.QuickOptions())
	app, err := ramp.AppByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Evaluate(app, env.Base, env.Qualification(400))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.AvgW <= 0 || res.FIT() <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if res.Assessment.MTTFYears <= 0 {
		t.Fatal("missing MTTF")
	}
}

func TestFacadeConfigSurface(t *testing.T) {
	base := ramp.BaseProcessor()
	if base.FreqHz != 4e9 || base.WindowSize != 128 {
		t.Fatalf("base processor %+v", base)
	}
	if got := len(ramp.ArchConfigs()); got != 18 {
		t.Fatalf("arch configs %d", got)
	}
	if v := ramp.VoltageForFreq(4e9); v != 1.0 {
		t.Fatalf("V(4GHz) = %v", v)
	}
	if got := len(ramp.DVSFrequencies(0.5e9)); got != 6 {
		t.Fatalf("DVS grid %d", got)
	}
	if len(ramp.Apps()) != 9 {
		t.Fatal("suite size")
	}
	if ramp.StandardTargetFIT != 4000 {
		t.Fatal("target FIT")
	}
}

func TestFacadeLowLevelPipeline(t *testing.T) {
	// Drive the substrates directly: trace -> core -> RAMP engine.
	app, err := ramp.AppByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ramp.NewGenerator(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	core, err := ramp.NewCore(ramp.BaseProcessor(), gen)
	if err != nil {
		t.Fatal(err)
	}
	r := core.Run(20_000)
	if r.IPC <= 0 {
		t.Fatal("no progress")
	}

	fp := ramp.R10000Floorplan()
	engine, err := ramp.NewEngine(fp, ramp.DefaultReliabilityParams(ramp.TCAmbientK),
		ramp.Qualification{TqualK: 400, VqualV: 1, FqualHz: 4e9, Aqual: 0.5, TargetFIT: ramp.StandardTargetFIT})
	if err != nil {
		t.Fatal(err)
	}
	iv := ramp.Interval{DurationSec: r.TimeSec}
	for s := range iv.Structures {
		iv.Structures[s] = ramp.Conditions{
			TempK: 360, VddV: 1, FreqHz: 4e9,
			Activity: r.Activity[s], OnFraction: 1,
		}
	}
	if err := engine.Observe(iv); err != nil {
		t.Fatal(err)
	}
	a, err := engine.Assess()
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFIT <= 0 {
		t.Fatal("zero FIT")
	}
}

func TestFacadeDRMAndDTM(t *testing.T) {
	env := ramp.NewEnv(ramp.QuickOptions())
	oracle := ramp.NewDRMOracle(env)
	oracle.FreqStepHz = 1.25e9 // 3-point grid; this is a smoke test
	app, err := ramp.AppByName("art")
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := oracle.Sweep(app, ramp.DVS)
	if err != nil {
		t.Fatal(err)
	}
	choice, err := sweep.Select(env, env.Qualification(370))
	if err != nil {
		t.Fatal(err)
	}
	if choice.Proc.FreqHz == 0 {
		t.Fatal("no DRM choice")
	}
	dtmChoice, err := ramp.DTMSweepFrom(sweep).Select(360)
	if err != nil {
		t.Fatal(err)
	}
	if dtmChoice.Proc.FreqHz == 0 {
		t.Fatal("no DTM choice")
	}
}
