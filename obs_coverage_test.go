package ramp_test

// Instrument-coverage audit: every instrument registered anywhere in
// the pipeline must actually render on every human- and
// machine-readable surface — the -stats summary (obs.WriteSummary), the
// Prometheus exposition (obs.WritePrometheus and rampserve's
// /metrics?format=prom scrape), and the JSON snapshot. An instrument
// that exists but never renders is a silent observability hole: the
// code pays the bookkeeping cost and a dashboard can never see it. The
// audit is registry-driven, so an instrument added next month is
// covered the day it is registered, with no test edit.
import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ramp/internal/exp"
	"ramp/internal/obs"
	"ramp/internal/serve"
)

// driveInstrumentedServer runs one request against every route of an
// instrumented rampserve so both the server's own counters and the
// pipeline registry hold non-trivial values.
func driveInstrumentedServer(t *testing.T) (*obs.Registry, *httptest.Server) {
	t.Helper()
	opts := exp.QuickOptions()
	opts.WarmupInstrs = 4_000
	opts.EpochInstrs = 4_000
	opts.Epochs = 2

	reg := obs.NewRegistry()
	env := exp.NewEnv(opts).Instrument(obs.NewTracer(), reg)
	cfg := serve.DefaultConfig()
	cfg.EnablePprof = false
	srv := serve.New(env, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	for _, req := range []struct{ path, body string }{
		{"/v1/evaluate", `{"app":"twolf"}`},
		{"/v1/sweep", `{"app":"twolf","adaptation":"DVS","tquals_k":[400]}`},
		{"/v1/fleet", `{"app":"twolf","chips":1000,"seed":1}`},
	} {
		resp, err := http.Post(hs.URL+req.path, "application/json", strings.NewReader(req.body))
		if err != nil {
			t.Fatalf("POST %s: %v", req.path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", req.path, resp.StatusCode, b)
		}
	}
	return reg, hs
}

// registeredNames returns every instrument name in the registry's
// snapshot, labeled by kind.
func registeredNames(s obs.Snapshot) map[string]string {
	names := map[string]string{}
	for name := range s.Counters {
		names[name] = "counter"
	}
	for name := range s.Gauges {
		names[name] = "gauge"
	}
	for name := range s.Histograms {
		names[name] = "histogram"
	}
	return names
}

func TestEveryInstrumentRendersEverywhere(t *testing.T) {
	reg, hs := driveInstrumentedServer(t)
	snap := reg.Snapshot()
	names := registeredNames(snap)
	if len(names) < 8 {
		t.Fatalf("suspiciously few instruments registered (%d): %v", len(names), names)
	}

	// Surface 1: the -stats summary every cmd prints via obs.Runtime.
	var summary bytes.Buffer
	reg.WriteSummary(&summary)
	sumText := summary.String()

	// Surface 2: the registry's own Prometheus exposition.
	var prom bytes.Buffer
	reg.WritePrometheus(&prom, "ramp_")
	promText := prom.String()

	// Surface 3: rampserve's /metrics?format=prom scrape (server families
	// plus the pipeline registry under the ramp_ prefix).
	resp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom scrape: status %d", resp.StatusCode)
	}
	scrapeText := string(scrape)

	// Surface 4: rampserve's JSON /metrics document (pipeline section).
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		Pipeline *obs.Snapshot `json:"pipeline"`
	}
	if err := json.Unmarshal(jsonBody, &doc); err != nil {
		t.Fatalf("decode /metrics JSON: %v", err)
	}
	if doc.Pipeline == nil {
		t.Fatal("instrumented server's /metrics JSON has no pipeline section")
	}
	pipelineNames := registeredNames(*doc.Pipeline)

	for name, kind := range names {
		if !strings.Contains(sumText, name) {
			t.Errorf("%s %q missing from the -stats summary", kind, name)
		}
		if !strings.Contains(promText, "ramp_"+name) {
			t.Errorf("%s %q missing from WritePrometheus output", kind, name)
		}
		if !strings.Contains(scrapeText, "ramp_"+name) {
			t.Errorf("%s %q missing from the /metrics?format=prom scrape", kind, name)
		}
		if _, ok := pipelineNames[name]; !ok {
			t.Errorf("%s %q missing from the /metrics JSON pipeline section", kind, name)
		}
	}

	// Histograms additionally render quantile estimates in the summary
	// (the Quantile-powered p50/p95/p99 columns).
	for name, kind := range names {
		if kind != "histogram" || snap.Histograms[name].Count == 0 {
			continue
		}
		idx := strings.Index(sumText, name)
		if idx < 0 {
			continue // already reported above
		}
		line := sumText[idx:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
		}
		for _, col := range []string{"p50=", "p95=", "p99="} {
			if !strings.Contains(line, col) {
				t.Errorf("histogram %q summary line lacks %s: %q", name, col, line)
			}
		}
	}
}

// TestSummaryQuantileColumns pins the quantile columns on a synthetic
// histogram: the summary must print interpolated values, not bucket
// indices.
func TestSummaryQuantileColumns(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("probe_us")
	// 100 observations at 3µs: every quantile interpolates inside the
	// (2, 4] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	var buf bytes.Buffer
	reg.WriteSummary(&buf)
	out := buf.String()
	want := fmt.Sprintf("p50=%g p95=%g p99=%g", 3.0, 3.9, 3.98)
	if !strings.Contains(out, want) {
		t.Errorf("summary quantiles wrong:\nwant substring %q\ngot %s", want, out)
	}
}
