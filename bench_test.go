// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Tables 1-2, Figures 1-4), plus micro-benchmarks of
// the substrates. Each experiment benchmark regenerates its table/figure
// rows (with reduced simulation lengths so the full suite stays
// tractable) and logs them; run with -v to see the series, or use the
// cmd/ binaries (ramptables, drmexplore, drmdtm) for full-length runs.
//
//	go test -bench=. -benchmem
package ramp_test

import (
	"context"
	"strings"
	"testing"

	"ramp"
	"ramp/internal/exp"
	"ramp/internal/figures"
	"ramp/internal/fleet"
	"ramp/internal/sched"
	"ramp/internal/trace"
)

func quickEnv() *exp.Env { return exp.NewEnv(exp.QuickOptions()) }

// BenchmarkTable1 regenerates Table 1 (base processor parameters).
func BenchmarkTable1(b *testing.B) {
	env := quickEnv()
	var out string
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		figures.NewTable1(env).Write(&sb)
		out = sb.String()
	}
	b.Log("\n" + out)
}

// BenchmarkTable2 regenerates Table 2 (per-application IPC and power on
// the base processor).
func BenchmarkTable2(b *testing.B) {
	env := quickEnv()
	var rows []figures.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Table2(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	figures.WriteTable2(&sb, rows)
	b.Log("\n" + sb.String())
	for _, r := range rows {
		if r.App == "MP3dec" {
			b.ReportMetric(r.IPC, "MP3dec-IPC")
			b.ReportMetric(r.PowerW, "MP3dec-W")
		}
	}
}

// BenchmarkFigure1 regenerates Figure 1 (application FIT values across
// three qualification cost points).
func BenchmarkFigure1(b *testing.B) {
	env := quickEnv()
	var rows []figures.Figure1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Figure1(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	figures.WriteFigure1(&sb, rows)
	b.Log("\n" + sb.String())
}

// BenchmarkFigure2 regenerates Figure 2 (ArchDVS DRM performance vs
// T_qual) on a reduced setup: two contrasting applications and a coarse
// DVS grid. Use cmd/drmexplore for the full nine-application figure.
func BenchmarkFigure2(b *testing.B) {
	env := quickEnv()
	apps := []trace.Profile{trace.MP3dec(), trace.Twolf()}
	var rows []figures.Figure2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Figure2(env, apps, 0.5e9)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	figures.WriteFigure2(&sb, rows)
	b.Log("\n" + sb.String())
	b.ReportMetric(rows[0].RelPerf[0], "hotApp-relperf@400K")
	b.ReportMetric(rows[0].RelPerf[len(rows[0].RelPerf)-1], "hotApp-relperf@325K")
}

// BenchmarkFigure3 regenerates Figure 3 (Arch vs DVS vs ArchDVS for
// bzip2) on a coarse DVS grid.
func BenchmarkFigure3(b *testing.B) {
	env := quickEnv()
	var rows []figures.Figure3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Figure3(env, trace.Bzip2(), 0.5e9)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	figures.WriteFigure3(&sb, "bzip2", rows)
	b.Log("\n" + sb.String())
}

// BenchmarkFigure4 regenerates Figure 4 (DRM vs DTM DVS frequencies) for
// two contrasting applications on a coarse grid.
func BenchmarkFigure4(b *testing.B) {
	env := quickEnv()
	apps := []trace.Profile{trace.Gzip(), trace.Art()}
	var rows []figures.Figure4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Figure4(env, apps, 0.5e9)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	figures.WriteFigure4(&sb, rows)
	b.Log("\n" + sb.String())
}

// BenchmarkDieEvaluate measures one manycore schedule evaluation on a
// four-core die at quick settings: per-epoch wear-leveling assignment,
// the tiled-die leakage-temperature fixed point (LU fast path on the
// 46-node system), and per-core RAMP observation. The suite evaluations
// are cached in the Env, so the number is the cost of the die run
// itself.
func BenchmarkDieEvaluate(b *testing.B) {
	env := quickEnv()
	sim, err := sched.New(env, sched.DefaultConfig(4, env.Opts))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var r sched.Result
	for i := 0; i < b.N; i++ {
		r, err = sim.Run(sched.WearLevel)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.LifetimeYears, "lifetime-years")
}

// ---- substrate micro-benchmarks ----

// BenchmarkSimulator measures raw simulation speed (instructions/op).
func BenchmarkSimulator(b *testing.B) {
	gen, err := ramp.NewGenerator(trace.Bzip2(), 1)
	if err != nil {
		b.Fatal(err)
	}
	core, err := ramp.NewCore(ramp.BaseProcessor(), gen)
	if err != nil {
		b.Fatal(err)
	}
	core.Run(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(10_000)
	}
	b.ReportMetric(10_000, "instrs/op")
}

// BenchmarkTraceGeneration measures the synthetic workload generator.
func BenchmarkTraceGeneration(b *testing.B) {
	gen, err := ramp.NewGenerator(trace.MPGdec(), 1)
	if err != nil {
		b.Fatal(err)
	}
	var in ramp.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&in)
	}
}

// BenchmarkThermalSolve measures one quasi-steady thermal solve.
func BenchmarkThermalSolve(b *testing.B) {
	env := quickEnv()
	pw := powerVector(2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Thermal.QuasiSteady(pw, 340)
	}
}

// BenchmarkThermalQuasiSteady measures the pre-factorized quasi-steady
// solve — the innermost call of every evaluation — and reports
// allocations, which must be zero (the matrix is factorized once at
// construction; each call is two triangular substitutions on the
// stack).
func BenchmarkThermalQuasiSteady(b *testing.B) {
	env := quickEnv()
	pw := powerVector(2.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Thermal.QuasiSteady(pw, 340)
	}
}

func powerVector(x float64) ramp.PowerVector {
	var v ramp.PowerVector
	for i := range v {
		v[i] = x
	}
	return v
}

// BenchmarkRAMPObserve measures folding one interval into the engine.
func BenchmarkRAMPObserve(b *testing.B) {
	env := quickEnv()
	engine, err := ramp.NewEngine(env.FP, env.Params, env.Qualification(400))
	if err != nil {
		b.Fatal(err)
	}
	iv := ramp.Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = ramp.Conditions{
			TempK: 370, VddV: 1.0, FreqHz: 4e9, Activity: 0.4, OnFraction: 1,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Observe(iv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate measures one full cold pipeline evaluation
// (simulate, power, thermal, RAMP) at quick settings. A fresh Env per
// iteration defeats the result cache so the number stays the cost of
// actually simulating.
func BenchmarkEvaluate(b *testing.B) {
	app := trace.Twolf()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := quickEnv()
		if _, err := env.Evaluate(app, env.Base, qualAt(env, 400)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateCacheHit measures the memoized path: the same
// (app, proc) on a warm Env, requalified to a different T_qual each
// iteration so the RAMP re-assessment is included.
func BenchmarkEvaluateCacheHit(b *testing.B) {
	env := quickEnv()
	app := trace.Twolf()
	if _, err := env.Evaluate(app, env.Base, qualAt(env, 400)); err != nil {
		b.Fatal(err)
	}
	quals := []float64{400, 370, 345, 325}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Evaluate(app, env.Base, qualAt(env, quals[i%len(quals)])); err != nil {
			b.Fatal(err)
		}
	}
}

func qualAt(env *exp.Env, tqualK float64) ramp.Qualification {
	return env.Qualification(tqualK)
}

// BenchmarkScalingStudy regenerates the Section 1.2 technology-scaling
// trend (per-core and per-die FIT across 180-65 nm).
func BenchmarkScalingStudy(b *testing.B) {
	var rows []figures.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.ScalingStudy(exp.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	figures.WriteScaling(&sb, rows)
	b.Log("\n" + sb.String())
	b.ReportMetric(rows[0].FullDieFIT, "dieFIT-180nm")
	b.ReportMetric(rows[len(rows)-1].FullDieFIT, "dieFIT-65nm")
}

// BenchmarkLifetimeModel measures the Weibull series-system solver.
func BenchmarkLifetimeModel(b *testing.B) {
	env := quickEnv()
	r, err := env.Evaluate(trace.Twolf(), env.Base, env.Qualification(400))
	if err != nil {
		b.Fatal(err)
	}
	lm, err := ramp.NewLifetimeModel(r.Assessment, ramp.DefaultWeibullShapes())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var years float64
	for i := 0; i < b.N; i++ {
		years = lm.MTTFYears()
	}
	b.ReportMetric(years, "weibull-MTTF-years")
}

// BenchmarkFleetMC measures the fleet Monte Carlo engine: chips
// simulated to first failure per op, with process variation, two DRM
// policies and a repair scenario in play. Allocations per op are the
// run's fixed setup (shard accumulators + report); the per-chip loop
// itself is allocation-free (fleet's TestSimulateShardZeroAlloc).
func BenchmarkFleetMC(b *testing.B) {
	const chips = 50_000
	env := quickEnv()
	res, err := env.Evaluate(trace.Twolf(), env.Base, qualAt(env, 400))
	if err != nil {
		b.Fatal(err)
	}
	var policies []fleet.Policy
	for _, tq := range []float64{400, 370} {
		a, err := env.Requalify(res, qualAt(env, tq))
		if err != nil {
			b.Fatal(err)
		}
		policies = append(policies, fleet.Policy{Name: "tq", Assessment: a})
	}
	cfg := fleet.DefaultConfig(chips, 1)
	cfg.Scenarios = []fleet.Scenario{
		fleet.NominalScenario(),
		{Name: "repair", Duty: 1, Spares: 2},
	}
	eng, err := fleet.New(cfg, policies)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var rep *fleet.Report
	for i := 0; i < b.N; i++ {
		rep, err = eng.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(chips, "chips/op")
	b.ReportMetric(float64(chips)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mchips/s")
	b.ReportMetric(rep.Results[0].MeanYears, "fleet-mean-years")
}

// BenchmarkSensorHarness measures RAMP observation through the emulated
// hardware sensor stack.
func BenchmarkSensorHarness(b *testing.B) {
	env := quickEnv()
	engine, err := ramp.NewEngine(env.FP, env.Params, env.Qualification(400))
	if err != nil {
		b.Fatal(err)
	}
	temps, err := ramp.NewTempSensors(ramp.DefaultTempSensors(), 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := ramp.NewSensorHarness(temps, ramp.DefaultCounters(), engine)
	if err != nil {
		b.Fatal(err)
	}
	iv := ramp.Interval{DurationSec: 1}
	for s := range iv.Structures {
		iv.Structures[s] = ramp.Conditions{
			TempK: 370, VddV: 1, FreqHz: 4e9, Activity: 0.4, OnFraction: 1,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Observe(iv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReactiveController measures one controlled epoch (simulate +
// sense + assess + act).
func BenchmarkReactiveController(b *testing.B) {
	env := quickEnv()
	ctrl := ramp.NewController(env, env.Qualification(370), ramp.Banked)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctrl.Run(trace.Gzip(), 4); err != nil {
			b.Fatal(err)
		}
	}
}
