#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of every cmd/ binary.
#
# Builds all binaries, checks that each one prints usage and exits 0 on
# -h, runs a tiny real invocation of each batch tool (including a span
# trace captured with -trace and validated with tracecheck), and drives
# the rampserve service over HTTP: healthz, an evaluate request, metrics
# in both JSON and Prometheus form, request-ID echo, then SIGTERM and a
# clean-drain exit check. Fast by construction (short runs, coarse
# grids); CI runs it on every push.
set -eu
cd "$(dirname "$0")/.."

bindir=$(mktemp -d)
logdir=$(mktemp -d)
server_pid=""
cleanup() {
	if [ -n "${server_pid}" ] && kill -0 "${server_pid}" 2>/dev/null; then
		kill -KILL "${server_pid}" 2>/dev/null || true
	fi
	rm -rf "${bindir}" "${logdir}"
}
trap cleanup EXIT

step() { echo "==> $*"; }

binaries="rampsim ramptables drmexplore drmdtm scaling manycore rampvet rampserve tracecheck fleetmc rampload"

step "build all binaries"
for b in ${binaries}; do
	go build -o "${bindir}/${b}" "./cmd/${b}"
done

step "-h prints usage and exits 0"
for b in ${binaries}; do
	# flag.Parse exits 2 on -h by default unless the command overrides
	# Usage; accept 0 or 2 but require usage text on stderr.
	if "${bindir}/${b}" -h >"${logdir}/${b}.h" 2>&1; then
		:
	elif [ $? -ne 2 ]; then
		echo "FAIL: ${b} -h exited with unexpected status" >&2
		exit 1
	fi
	grep -qi "usage" "${logdir}/${b}.h" || {
		echo "FAIL: ${b} -h printed no usage text" >&2
		cat "${logdir}/${b}.h" >&2
		exit 1
	}
done

step "rampsim: single short evaluation with span trace and stats"
"${bindir}/rampsim" -app twolf -warmup 20000 -epochs 3 -epoch-instrs 50000 \
	-trace "${logdir}/rampsim.trace.json" -stats \
	>"${logdir}/rampsim.out" 2>"${logdir}/rampsim.err"
grep -q "FIT" "${logdir}/rampsim.out"
grep -q "exp_epochs_simulated_total" "${logdir}/rampsim.err"

step "tracecheck: captured trace is valid Chrome trace_event JSON"
"${bindir}/tracecheck" "${logdir}/rampsim.trace.json"

step "ramptables: Table 1 (configuration only, no simulation)"
"${bindir}/ramptables" -quick -table 1 >"${logdir}/ramptables.out"
grep -q "Table 1" "${logdir}/ramptables.out"

step "drmexplore: Figure 3, one app, coarse grid"
"${bindir}/drmexplore" -quick -figure 3 -app bzip2 -step 1.25e9 >"${logdir}/drmexplore.out"
grep -q "Figure 3" "${logdir}/drmexplore.out"

step "drmdtm: Figure 4, one app, coarse grid"
"${bindir}/drmdtm" -quick -apps twolf -step 1.25e9 >"${logdir}/drmdtm.out"
grep -q "Figure 4" "${logdir}/drmdtm.out"

step "scaling: quick technology-scaling sweep"
"${bindir}/scaling" -quick >"${logdir}/scaling.out"
grep -q "nm" "${logdir}/scaling.out"

step "manycore: quick N=2 policy sweep"
"${bindir}/manycore" -quick -cores 2 -epochs 4 >"${logdir}/manycore.out"
grep -q "single-core DRM baseline" "${logdir}/manycore.out"
grep -q "wearlevel" "${logdir}/manycore.out"

step "fleetmc: quick fleet Monte Carlo (1M chips, two policies)"
"${bindir}/fleetmc" -quick -tquals 400,370 >"${logdir}/fleetmc.out"
grep -q "Fleet Monte Carlo: 1000000 chips" "${logdir}/fleetmc.out"
grep -q "tq370K" "${logdir}/fleetmc.out"

step "rampvet: lint the RAMP core and the manycore scheduler stack"
"${bindir}/rampvet" ./internal/core ./internal/sched ./cmd/manycore

step "rampserve: serve, evaluate over HTTP, drain on SIGTERM"
"${bindir}/rampserve" -addr 127.0.0.1:0 -quick >"${logdir}/rampserve.out" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/^rampserve: listening on \([^ ]*\).*/\1/p' "${logdir}/rampserve.out")
	[ -n "${addr}" ] && break
	kill -0 "${server_pid}" 2>/dev/null || {
		echo "FAIL: rampserve died on startup" >&2
		cat "${logdir}/rampserve.out" >&2
		exit 1
	}
	sleep 0.1
done
[ -n "${addr}" ] || { echo "FAIL: rampserve never reported its address" >&2; exit 1; }

curl -sSf "http://${addr}/v1/healthz" | grep -q '"ok"'
curl -sSf -X POST "http://${addr}/v1/evaluate" \
	-d '{"app":"twolf","freq_hz":4.5e9,"tqual_k":370}' >"${logdir}/evaluate.json"
grep -q '"fit"' "${logdir}/evaluate.json"
curl -sSf "http://${addr}/metrics" | grep -q '"requests_total"'
curl -sSf -X POST "http://${addr}/v1/fleet" \
	-d '{"app":"twolf","chips":2000,"tquals_k":[400,370],"spares":1}' >"${logdir}/fleet.json"
grep -q '"return_rate_11y"' "${logdir}/fleet.json"
grep -q '"scenario":"repair"' "${logdir}/fleet.json"

step "rampserve: request-ID echo (inbound honored, generated otherwise)"
curl -sSf -D "${logdir}/rid.h" -o /dev/null \
	-H 'X-Request-ID: smoke-probe-1' "http://${addr}/v1/healthz"
grep -qi '^x-request-id: smoke-probe-1' "${logdir}/rid.h"
curl -sSf -D "${logdir}/rid2.h" -o /dev/null "http://${addr}/v1/healthz"
grep -qi '^x-request-id: ramp-' "${logdir}/rid2.h"

step "rampserve: windowed metrics stream (one NDJSON frame)"
curl -sSf "http://${addr}/v1/metrics/stream?window=100ms&n=1&format=ndjson" \
	>"${logdir}/frame.json"
grep -q '"request_id"' "${logdir}/frame.json"
grep -q '"delta"' "${logdir}/frame.json"

step "rampload: deterministic plan render (no traffic)"
"${bindir}/rampload" -plan -seed 5 -n 1000 >"${logdir}/plan.out"
grep -q 'stream fnv64a' "${logdir}/plan.out"

step "rampserve: /metrics Prometheus text exposition"
curl -sSf "http://${addr}/metrics?format=prom" >"${logdir}/metrics.prom"
grep -q '# TYPE rampserve_requests_total counter' "${logdir}/metrics.prom"
grep -q 'rampserve_requests_total{route="evaluate"} 1' "${logdir}/metrics.prom"
grep -q 'rampserve_latency_us_bucket{route="evaluate",le="+Inf"} 1' "${logdir}/metrics.prom"
curl -sSf -H 'Accept: text/plain' "http://${addr}/metrics" \
	| grep -q '# TYPE rampserve_uptime_seconds gauge'

kill -TERM "${server_pid}"
status=0
wait "${server_pid}" || status=$?
server_pid=""
if [ "${status}" -ne 0 ]; then
	echo "FAIL: rampserve exited ${status} after SIGTERM" >&2
	cat "${logdir}/rampserve.out" >&2
	exit 1
fi
grep -q "drained, bye" "${logdir}/rampserve.out"

echo "smoke: all good"
