#!/usr/bin/env bash
# obscheck.sh — the observability CI lane.
#
# Proves the three obs pillars end to end on real binaries:
#
#   1. A quick evaluation run with -trace and -stats produces a span
#      trace that tracecheck validates against the Chrome trace_event
#      schema, and a stats summary carrying the pipeline counters.
#   2. The same run with observability enabled prints byte-identical
#      results (instrumentation observes, never perturbs).
#   3. rampvet's obsguard analyzer holds: no internal package writes raw
#      diagnostics to stderr around the structured logger.
set -eu
cd "$(dirname "$0")/.."

bindir=$(mktemp -d)
logdir=$(mktemp -d)
trap 'rm -rf "${bindir}" "${logdir}"' EXIT

step() { echo "==> $*"; }

step "build ramptables, tracecheck, rampvet"
go build -o "${bindir}/ramptables" ./cmd/ramptables
go build -o "${bindir}/tracecheck" ./cmd/tracecheck
go build -o "${bindir}/rampvet" ./cmd/rampvet

step "quick run with -trace and -stats"
"${bindir}/ramptables" -quick -table 2 \
	-trace "${logdir}/t.json" -stats \
	>"${logdir}/table2.obs.out" 2>"${logdir}/table2.obs.err"

step "trace validates against the Chrome trace_event schema"
"${bindir}/tracecheck" "${logdir}/t.json"

step "stats summary carries the pipeline counters"
for metric in exp_epochs_simulated_total exp_evaluations_total \
	thermal_solves_total core_fit_compute_ns_em exp_fixedpoint_iters; do
	grep -q "${metric}" "${logdir}/table2.obs.err" || {
		echo "FAIL: -stats summary missing ${metric}" >&2
		cat "${logdir}/table2.obs.err" >&2
		exit 1
	}
done

step "observability changes no output byte"
"${bindir}/ramptables" -quick -table 2 >"${logdir}/table2.plain.out"
cmp "${logdir}/table2.obs.out" "${logdir}/table2.plain.out" || {
	echo "FAIL: instrumented run diverged from plain run" >&2
	exit 1
}

step "obsguard: internal packages use the structured logger"
"${bindir}/rampvet" -analyzers obsguard ./...

echo "obscheck: all good"
