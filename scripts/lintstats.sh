#!/usr/bin/env bash
# lintstats.sh — per-analyzer finding counts for the rampvet suite.
#
# Runs every analyzer over the whole module and prints one line per
# analyzer with its raw finding count (before baseline filtering), so a
# grandfathering burn-down is a diff of two runs of this script. Extra
# arguments are passed through to rampvet (e.g. -tags rampdebug, or a
# package pattern narrower than ./...).
set -eu
cd "$(dirname "$0")/.."

# -lint-stats prints counts to stderr and findings to stdout; the counts
# are the product here, so keep stderr and drop the finding listing.
# rampvet exits 1 when fresh findings exist — still a successful stats
# run, so tolerate it (but not exit 2: usage/load errors must fail).
status=0
go run ./cmd/rampvet -lint-stats "$@" ./... >/dev/null || status=$?
if [ "${status}" -gt 1 ]; then
	exit "${status}"
fi
