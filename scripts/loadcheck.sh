#!/usr/bin/env bash
# loadcheck.sh — smoke lane for the rampload harness and the SLO gate.
#
# Four checks, all fast by construction:
#   1. plan determinism: the same seed must render a byte-identical plan
#      (the plan embeds an FNV-1a stream hash, so one flipped arrival or
#      body would show up here);
#   2. a short deterministic burst against a quick-mode rampserve with
#      the built-in (generous) objectives must exit 0 and reconcile
#      client counts against the server's /metrics;
#   3. an impossible objectives file against the same server must make
#      rampload exit exactly 3 — the CI-visible SLO-breach code;
#   4. the metrics stream: one curl'd NDJSON frame with a request_id,
#      proving the windowed telemetry endpoint serves during load.
set -eu
cd "$(dirname "$0")/.."

bindir=$(mktemp -d)
logdir=$(mktemp -d)
server_pid=""
cleanup() {
	if [ -n "${server_pid}" ] && kill -0 "${server_pid}" 2>/dev/null; then
		kill -KILL "${server_pid}" 2>/dev/null || true
	fi
	rm -rf "${bindir}" "${logdir}"
}
trap cleanup EXIT

step() { echo "==> $*"; }

step "build rampload + rampserve"
go build -o "${bindir}/rampload" ./cmd/rampload
go build -o "${bindir}/rampserve" ./cmd/rampserve

step "plan: fixed seed renders byte-identically"
"${bindir}/rampload" -plan -seed 7 -n 5000 -profile 'spike:2000,20000@1s+500ms' \
	>"${logdir}/plan.a"
"${bindir}/rampload" -plan -seed 7 -n 5000 -profile 'spike:2000,20000@1s+500ms' \
	>"${logdir}/plan.b"
cmp "${logdir}/plan.a" "${logdir}/plan.b"
grep -q 'stream fnv64a' "${logdir}/plan.a"
# A different seed must move the stream hash.
"${bindir}/rampload" -plan -seed 8 -n 5000 -profile 'spike:2000,20000@1s+500ms' \
	>"${logdir}/plan.c"
if cmp -s "${logdir}/plan.a" "${logdir}/plan.c"; then
	echo "FAIL: seeds 7 and 8 rendered identical plans" >&2
	exit 1
fi

step "rampserve: start quick-mode server"
"${bindir}/rampserve" -addr 127.0.0.1:0 -quick >"${logdir}/rampserve.out" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/^rampserve: listening on \([^ ]*\).*/\1/p' "${logdir}/rampserve.out")
	[ -n "${addr}" ] && break
	kill -0 "${server_pid}" 2>/dev/null || {
		echo "FAIL: rampserve died on startup" >&2
		cat "${logdir}/rampserve.out" >&2
		exit 1
	}
	sleep 0.1
done
[ -n "${addr}" ] || { echo "FAIL: rampserve never reported its address" >&2; exit 1; }

step "warm: closed-loop pass over the burst's exact request stream"
# The sampler is seed-deterministic, so a closed-loop run with the same
# seed and count touches exactly the cache keys the gated burst will
# hit. Warming first makes the burst measure the cache-warm steady
# state a resident service actually serves — and keeps this lane
# honest on one-core CI runners, where a cold sweep costs seconds.
"${bindir}/rampload" -url "http://${addr}" -seed 11 -n 600 \
	-closed -workers 2 -window -1ms >"${logdir}/warm.out" 2>&1 || {
	echo "FAIL: warmup run exited non-zero" >&2
	cat "${logdir}/warm.out" >&2
	exit 1
}

step "burst: deterministic open-loop run passes the default SLO gate"
# Modest rate on purpose: this lane verifies the gate machinery
# (windows, reconciliation, exit codes), not peak throughput.
"${bindir}/rampload" -url "http://${addr}" -seed 11 -n 600 \
	-profile constant:150 -window 250ms -slo-default \
	-ndjson "${logdir}/frames.ndjson" -out "${logdir}/load.json" \
	>"${logdir}/burst.out" 2>"${logdir}/burst.err" || {
	echo "FAIL: burst run exited non-zero" >&2
	cat "${logdir}/burst.out" "${logdir}/burst.err" >&2
	exit 1
}
grep -q '"achieved_rps"' "${logdir}/load.json"
grep -q '"pass": true' "${logdir}/load.json"
# Windows streamed: at least one NDJSON frame with a latency estimate.
grep -q '"p50_us"' "${logdir}/frames.ndjson"

step "gate: impossible objectives make rampload exit 3"
cat >"${logdir}/impossible.json" <<'EOF'
[
  {"name": "impossible-p50", "hist": "load_latency_us", "p": 0.5, "max_us": 0.001}
]
EOF
status=0
"${bindir}/rampload" -url "http://${addr}" -seed 11 -n 200 \
	-profile constant:100 -slo "${logdir}/impossible.json" \
	>"${logdir}/breach.out" 2>"${logdir}/breach.err" || status=$?
if [ "${status}" -ne 3 ]; then
	echo "FAIL: impossible SLO exited ${status}, want 3" >&2
	cat "${logdir}/breach.out" "${logdir}/breach.err" >&2
	exit 1
fi
grep -q 'BREACH' "${logdir}/breach.out"

step "stream: one windowed NDJSON frame over HTTP"
curl -sSf "http://${addr}/v1/metrics/stream?window=100ms&n=1&format=ndjson" \
	>"${logdir}/frame.json"
grep -q '"request_id"' "${logdir}/frame.json"
grep -q '"window_sec"' "${logdir}/frame.json"

kill -TERM "${server_pid}"
status=0
wait "${server_pid}" || status=$?
server_pid=""
if [ "${status}" -ne 0 ]; then
	echo "FAIL: rampserve exited ${status} after SIGTERM" >&2
	cat "${logdir}/rampserve.out" >&2
	exit 1
fi

echo "loadcheck: all good"
