#!/usr/bin/env bash
# ci.sh — the repo's single verification entry point.
#
# Runs the same lanes as .github/workflows/ci.yml: formatting, vet,
# build, the full test suite (including the golden snapshot compare),
# the rampdebug invariant lane, the race lane (with -short so it stays
# fast), short fuzz bursts on the trace generator and the cache key, the
# end-to-end smoke script, and the rampvet domain linter. Every lane
# runs even if an earlier one fails; the exit status is the number of
# failed lanes. The obscheck lane exercises the observability layer
# (-trace/-stats on a real run, trace validation, obsguard).
set -u
cd "$(dirname "$0")/.."

failures=0

lane() {
	local name=$1
	shift
	echo "==> ${name}"
	if "$@"; then
		echo "    ok"
	else
		echo "    FAIL: ${name}" >&2
		failures=$((failures + 1))
	fi
}

check_gofmt() {
	local out
	out=$(gofmt -l .)
	if [ -n "${out}" ]; then
		echo "gofmt needs to be run on:" >&2
		echo "${out}" >&2
		return 1
	fi
}

lane "gofmt" check_gofmt
lane "go vet" go vet ./...
lane "go build" go build ./...
lane "go test" go test ./...
lane "go test -tags rampdebug" go test -tags rampdebug ./...
lane "go test -race (short)" go test -race -short ./internal/...
# Short fuzz bursts: enough to catch shallow regressions on every push;
# run `-fuzztime 60s` (or longer) locally when touching these packages.
lane "fuzz trace" go test -fuzz FuzzTraceGenerator -fuzztime 5s -run '^$' ./internal/trace/
lane "fuzz cachekey" go test -fuzz FuzzCacheKey -fuzztime 5s -run '^$' ./internal/exp/
lane "fuzz variation" go test -fuzz FuzzVariationSampler -fuzztime 5s -run '^$' ./internal/fleet/
lane "fuzz fleetreq" go test -fuzz FuzzFleetRequest -fuzztime 5s -run '^$' ./internal/serve/
lane "smoke" ./scripts/smoke.sh
lane "obscheck" ./scripts/obscheck.sh
lane "loadcheck" ./scripts/loadcheck.sh
# The domain linter runs against the committed baseline: grandfathered
# findings pass, anything fresh fails the lane. Regenerate the file with
# `go run ./cmd/rampvet -write-baseline ./...` only when grandfathering
# is the deliberate choice; the default fix is the code.
lane "rampvet" go run ./cmd/rampvet -baseline .rampvet-baseline ./...

if [ "${failures}" -ne 0 ]; then
	echo "${failures} lane(s) failed" >&2
fi
exit "${failures}"
