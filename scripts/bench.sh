#!/usr/bin/env bash
# bench.sh — run the benchmark suite and snapshot the numbers as a
# BENCH_<n>.json entry in the repo's perf trajectory (repo root).
#
#   scripts/bench.sh              # auto-numbered: one past the highest BENCH_<n>.json
#   scripts/bench.sh 2            # explicit index -> BENCH_2.json
#   scripts/bench.sh ci           # CI snapshot   -> BENCH_ci.json (not part of the trajectory)
#   BENCH_PATTERN='Thermal|Figure2' scripts/bench.sh   # restrict to a subset
#
# Each snapshot records go/OS/CPU metadata, the commit, and every
# benchmark's iterations and metrics (ns/op, B/op, allocs/op, plus any
# b.ReportMetric series), so successive PRs can diff perf without
# re-running old commits.
set -euo pipefail
cd "$(dirname "$0")/.."

index="${1:-}"
if [ -z "${index}" ]; then
	index=0
	for f in BENCH_*.json; do
		[ -e "${f}" ] || continue
		i="${f#BENCH_}"
		i="${i%.json}"
		case "${i}" in *[!0-9]*) continue ;; esac
		if [ "${i}" -ge "${index}" ]; then index=$((i + 1)); fi
	done
fi
out="BENCH_${index}.json"
pattern="${BENCH_PATTERN:-.}"

raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT
go test -run '^$' -bench "${pattern}" -benchmem -count 1 . | tee "${raw}"

{
	printf '{\n'
	printf '  "schema": 1,\n'
	printf '  "index": "%s",\n' "${index}"
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go version | awk '{print $3}')"
	printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	awk '
		/^goos:/ { goos = $2 }
		/^goarch:/ { goarch = $2 }
		/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
		/^Benchmark/ && NF >= 4 {
			name = $1
			sub(/-[0-9]+$/, "", name)
			line = sprintf("    {\"name\":\"%s\",\"iterations\":%s,\"metrics\":{", name, $2)
			first = 1
			for (i = 3; i + 1 <= NF; i += 2) {
				line = line sprintf("%s\"%s\":%s", (first ? "" : ","), $(i + 1), $i)
				first = 0
			}
			benches[n++] = line "}}"
		}
		END {
			printf "  \"goos\": \"%s\",\n", goos
			printf "  \"goarch\": \"%s\",\n", goarch
			printf "  \"cpu\": \"%s\",\n", cpu
			printf "  \"benchmarks\": [\n"
			for (i = 0; i < n; i++) printf "%s%s\n", benches[i], (i + 1 < n ? "," : "")
			printf "  ]\n"
		}' "${raw}"
	printf '}\n'
} >"${out}"
echo "wrote ${out}"
