#!/usr/bin/env bash
# benchdiff.sh — diff two BENCH_*.json perf snapshots (see bench.sh) and
# flag regressions in ns/op, B/op and allocs/op.
#
#   scripts/benchdiff.sh                        # BENCH_<n-1>.json vs BENCH_<n>.json
#   scripts/benchdiff.sh BENCH_ci.json          # highest BENCH_<n>.json vs BENCH_ci.json
#   scripts/benchdiff.sh OLD.json NEW.json      # explicit pair (old first)
#
# A benchmark regresses when a metric grows beyond its threshold:
#   ns/op      +15%  (timing is noisy; override with BENCHDIFF_NS_PCT)
#   B/op        +5%  (BENCHDIFF_B_PCT)
#   allocs/op   +1%  (allocation counts are deterministic; BENCHDIFF_ALLOCS_PCT)
# Exit status is 1 if any benchmark regressed. Benchmarks present in only
# one snapshot are listed but never fail the diff.
set -euo pipefail
cd "$(dirname "$0")/.."

highest() { # prints the BENCH_<n>.json with the largest n, skipping "$1"
	local best=-1 f i
	for f in BENCH_*.json; do
		[ -e "${f}" ] || continue
		[ "${f}" = "${1:-}" ] && continue
		i="${f#BENCH_}"
		i="${i%.json}"
		case "${i}" in *[!0-9]*) continue ;; esac
		if [ "${i}" -gt "${best}" ]; then best="${i}"; fi
	done
	[ "${best}" -ge 0 ] && echo "BENCH_${best}.json"
}

old="${1:-}"
new="${2:-}"
if [ -z "${old}" ]; then
	new="$(highest)" || true
	old="$(highest "${new}")" || true
elif [ -z "${new}" ]; then
	new="${old}"
	old="$(highest "${new}")" || true
fi
if [ -z "${old}" ] || [ -z "${new}" ] || [ ! -e "${old}" ] || [ ! -e "${new}" ]; then
	echo "benchdiff: need two snapshots to compare (old='${old:-}' new='${new:-}')" >&2
	exit 2
fi

echo "benchdiff: ${old} -> ${new}"
awk -v ns_pct="${BENCHDIFF_NS_PCT:-15}" -v b_pct="${BENCHDIFF_B_PCT:-5}" \
	-v allocs_pct="${BENCHDIFF_ALLOCS_PCT:-1}" '
	function metric(s, key,    pat) {
		pat = "\"" key "\":[0-9.eE+-]+"
		if (match(s, pat)) return substr(s, RSTART + length(key) + 3, RLENGTH - length(key) - 3) + 0
		return -1
	}
	function fmt(old, new,    pct) {
		if (old < 0 || new < 0) return "        -"
		if (old == 0) return new == 0 ? "       0%" : "     new>0"
		pct = (new - old) * 100 / old
		return sprintf("%+8.1f%%", pct)
	}
	function regressed(old, new, limit) {
		if (old <= 0 || new < 0) return 0
		return (new - old) * 100 / old > limit
	}
	/"name":/ {
		if (!match($0, /"name":"[^"]*"/)) next
		name = substr($0, RSTART + 8, RLENGTH - 9)
		if (FNR == NR) {
			ons[name] = metric($0, "ns/op")
			ob[name] = metric($0, "B/op")
			oa[name] = metric($0, "allocs/op")
			seen[name] = 1
			next
		}
		order[n++] = name
		nns[name] = metric($0, "ns/op")
		nb[name] = metric($0, "B/op")
		na[name] = metric($0, "allocs/op")
	}
	END {
		printf "%-36s %9s %9s %9s\n", "benchmark", "ns/op", "B/op", "allocs/op"
		bad = 0
		for (i = 0; i < n; i++) {
			name = order[i]
			if (!(name in seen)) {
				printf "%-36s %9s %9s %9s  (new benchmark)\n", name, "-", "-", "-"
				continue
			}
			mark = ""
			if (regressed(ons[name], nns[name], ns_pct) ||
				regressed(ob[name], nb[name], b_pct) ||
				regressed(oa[name], na[name], allocs_pct)) {
				mark = "  REGRESSED"
				bad++
			}
			printf "%-36s %9s %9s %9s%s\n", name,
				fmt(ons[name], nns[name]), fmt(ob[name], nb[name]),
				fmt(oa[name], na[name]), mark
			delete seen[name]
		}
		for (name in seen) printf "%-36s (dropped from new snapshot)\n", name
		if (bad) {
			printf "benchdiff: %d benchmark(s) regressed beyond thresholds (ns/op +%s%%, B/op +%s%%, allocs/op +%s%%)\n",
				bad, ns_pct, b_pct, allocs_pct
			exit 1
		}
	}' "${old}" "${new}"
